(* Coverage-guided config fuzzing: mutation catalog, clause coverage,
   scenario integration, minimizer stage, and the guidance loop. *)

module M = Confuzz.Mutation
module Cov = Bgp.Clause_cov

let check = Alcotest.check
let p = Bgp.Prefix.of_string_exn

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Mutation catalog                                                    *)
(* ------------------------------------------------------------------ *)

let pfx = p "192.0.2.0/24"

(* At least one value of every catalog kind, including optional-field
   variants. *)
let specimens =
  [ M.Pref_const { node = 1; map = "M"; seq = 10; value = 250 };
    M.Pref_swap { node = 1; map_a = "A"; seq_a = 10; map_b = "B"; seq_b = 20 };
    M.Med_const { node = 2; map = "M"; seq = 10; value = Some 40 };
    M.Med_const { node = 2; map = "M"; seq = 10; value = None };
    M.Action_flip { node = 0; map = "M"; seq = 5 };
    M.Match_drop { node = 3; map = "M"; seq = 10; idx = 1 };
    M.Match_dup { node = 3; map = "M"; seq = 10; idx = 0 };
    M.Match_reorder { node = 4; map = "M"; seq = 10 };
    M.Entry_shadow { node = 4; map = "M"; seq = 10 };
    M.Community_rewrite
      { node = 5; map = "M"; seq = 10; community = Bgp.Community.make 65000 999 };
    M.Community_strip { node = 5; map = "M"; seq = 10 };
    M.Prefix_widen { node = 6; map = "M"; seq = 10; idx = 0; ge = Some 0; le = Some 32 };
    M.Prefix_widen { node = 6; map = "M"; seq = 10; idx = 0; ge = None; le = None };
    M.Ref_dangle { node = 7; neighbor = 0; dir = M.Import };
    M.Ref_dangle { node = 7; neighbor = 1; dir = M.Export };
    M.Ref_swap { node = 8; neighbor = 0 };
    M.Originate_foreign { node = 9; prefix = pfx };
    M.Network_drop { node = 9; prefix = pfx };
    M.Te_pin { node = 1; map = "FROM-PEER"; prefix = pfx; via_asn = 1002; pref = 300 } ]

let mutation_json_roundtrip () =
  List.iter
    (fun m ->
      match M.of_json (M.to_json m) with
      | Ok m' ->
          if m <> m' then
            Alcotest.failf "round-trip changed %s into %s" (M.describe m)
              (M.describe m')
      | Error e -> Alcotest.failf "decode of %s failed: %s" (M.describe m) e)
    specimens;
  Alcotest.(check bool) "every kind described" true
    (List.for_all (fun m -> String.length (M.describe m) > 0) specimens);
  check Alcotest.int "catalog coverage: 16 distinct kinds" 16
    (List.length (List.sort_uniq String.compare (List.map M.kind_name specimens)));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (M.of_json (Telemetry.Json.String "nope")));
  Alcotest.(check bool) "unknown kind rejected" true
    (Result.is_error
       (M.of_json (Telemetry.Json.Obj [ ("kind", Telemetry.Json.String "frob") ])))

(* A small config to mutate: one neighbor, one referenced two-entry map. *)
let sample_config () =
  let c = Bgp.Community.make 65001 100 in
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~matches:
          [ Bgp.Policy.Match_prefix [ Bgp.Policy.prefix_rule ~le:24 (p "10.0.0.0/8") ];
            Bgp.Policy.Match_community c ]
        ~sets:[ Bgp.Policy.Set_local_pref 100; Bgp.Policy.Add_community c ];
      Bgp.Policy.entry 20 Bgp.Policy.Deny ]
  in
  Bgp.Config.make ~asn:1
    ~router_id:(Bgp.Ipv4.of_string_exn "10.0.0.1")
    ~networks:[ p "192.0.2.0/24" ]
    ~neighbors:
      [ Bgp.Config.neighbor (Bgp.Ipv4.of_string_exn "10.0.0.2") ~remote_as:2
          ~import_map:"IN" ]
    ~route_maps:[ ("IN", map) ]
    ()

let apply_exn m cfg =
  match M.apply_config m cfg with
  | Ok cfg' -> cfg'
  | Error e -> Alcotest.failf "%s failed: %s" (M.describe m) e

let entry_of cfg map seq =
  match Bgp.Config.find_route_map cfg map with
  | None -> Alcotest.failf "map %s vanished" map
  | Some entries -> (
      match List.find_opt (fun (e : Bgp.Policy.entry) -> e.Bgp.Policy.seq = seq) entries with
      | Some e -> e
      | None -> Alcotest.failf "entry %d vanished from %s" seq map)

let mutation_apply_semantics () =
  let cfg = sample_config () in
  (* Action flip turns the deny into a permit. *)
  let flipped = apply_exn (M.Action_flip { node = 0; map = "IN"; seq = 20 }) cfg in
  Alcotest.(check bool) "entry 20 now permits" true
    ((entry_of flipped "IN" 20).Bgp.Policy.action = Bgp.Policy.Permit);
  (* Dropping match 0 leaves a one-clause conjunction. *)
  let dropped = apply_exn (M.Match_drop { node = 0; map = "IN"; seq = 10; idx = 0 }) cfg in
  check Alcotest.int "one match left" 1
    (List.length (entry_of dropped "IN" 10).Bgp.Policy.matches);
  (* Shadowing inserts a match-anything copy ahead of the whole map. *)
  let shadowed = apply_exn (M.Entry_shadow { node = 0; map = "IN"; seq = 10 }) cfg in
  let first =
    List.hd (Option.get (Bgp.Config.find_route_map shadowed "IN"))
  in
  Alcotest.(check bool) "shadow entry is first and matches anything" true
    (first.Bgp.Policy.seq < 10 && first.Bgp.Policy.matches = []);
  Alcotest.(check bool) "shadow copies the action" true
    (first.Bgp.Policy.action = Bgp.Policy.Permit);
  (* Foreign origination adds the network once and refuses a repeat. *)
  let stolen = p "203.0.113.0/24" in
  let orig = apply_exn (M.Originate_foreign { node = 0; prefix = stolen }) cfg in
  Alcotest.(check bool) "network added" true
    (List.exists (Bgp.Prefix.equal stolen) orig.Bgp.Config.networks);
  Alcotest.(check bool) "already-originated prefix refused" true
    (Result.is_error (M.apply_config (M.Originate_foreign { node = 0; prefix = stolen }) orig));
  (* Network drop is the exact inverse: removing the stolen prefix gives
     the original networks back, and a second drop is inapplicable. *)
  let dropped_net = apply_exn (M.Network_drop { node = 0; prefix = stolen }) orig in
  Alcotest.(check bool) "drop restores the original networks" true
    (dropped_net.Bgp.Config.networks = cfg.Bgp.Config.networks);
  Alcotest.(check bool) "dropping a non-originated prefix refused" true
    (Result.is_error
       (M.apply_config (M.Network_drop { node = 0; prefix = stolen }) dropped_net));
  (* A dangled reference is exactly the kind of config validate rejects. *)
  let dangled = apply_exn (M.Ref_dangle { node = 0; neighbor = 0; dir = M.Import }) cfg in
  Alcotest.(check bool) "dangling import flagged by validate" true
    (Result.is_error (Bgp.Config.validate dangled));
  Alcotest.(check bool) "original still validates" true
    (Result.is_ok (Bgp.Config.validate cfg));
  (* TE pin prepends a high-pref entry on the via-neighbor's import map. *)
  let pinned =
    apply_exn
      (M.Te_pin { node = 0; map = "IN"; prefix = stolen; via_asn = 2; pref = 300 })
      cfg
  in
  let pin = List.hd (Option.get (Bgp.Config.find_route_map pinned "IN")) in
  Alcotest.(check bool) "pin runs first at pref 300" true
    (pin.Bgp.Policy.seq < 10
    && List.mem (Bgp.Policy.Set_local_pref 300) pin.Bgp.Policy.sets);
  (* Mutations name their target; a missing map is a clean error. *)
  match M.apply_config (M.Action_flip { node = 0; map = "NOPE"; seq = 10 }) cfg with
  | Ok _ -> Alcotest.fail "missing map must not apply"
  | Error e -> Alcotest.(check bool) "error names the map" true (contains_substring e "NOPE")

(* ------------------------------------------------------------------ *)
(* Clause coverage                                                     *)
(* ------------------------------------------------------------------ *)

let coverage_registry () =
  let cfg = sample_config () in
  Cov.reset ();
  Cov.register_config ~node:1 cfg;
  (* Entry 10: 2 match clauses x 2 outcomes + action + 2 sets = 7.
     Entry 20: action only = 1.  Map fallthrough = 1.  Total 9. *)
  check Alcotest.int "universe from config" 9 (Cov.universe_size ());
  check Alcotest.int "nothing covered yet" 0 (Cov.covered ());
  Cov.enable ();
  Fun.protect ~finally:Cov.disable @@ fun () ->
  let map = Option.get (Bgp.Config.find_route_map cfg "IN") in
  let site = Cov.site ~node:1 (Some "IN") in
  Alcotest.(check bool) "site resolves while enabled" true (site <> None);
  Alcotest.(check bool) "accept-all has no site" true (Cov.site ~node:1 None = None);
  let c = Bgp.Community.make 65001 100 in
  let attrs ~tagged =
    let a =
      Bgp.Attr.make ~as_path:[ Bgp.As_path.Seq [ 2 ] ]
        ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.2") ()
    in
    if tagged then Bgp.Attr.add_community c a else a
  in
  (* Full permit path: both matches true, action, both sets. *)
  ignore (Bgp.Policy.apply ?site map (p "10.1.0.0/16") (attrs ~tagged:true));
  check Alcotest.int "permit path covers 5 points" 5 (Cov.covered ());
  (* Short-circuit: the community clause after a failing prefix clause
     is never evaluated, so only m0=F is new. *)
  ignore (Bgp.Policy.apply ?site map (p "172.16.0.0/12") (attrs ~tagged:true));
  let after_miss = Cov.covered () in
  check Alcotest.int "miss adds m0=F and entry-20 action" 7 after_miss;
  Alcotest.(check bool) "m1=F still uncovered (short-circuit)" true
    (List.exists
       (fun pt -> pt.Cov.pt_seq = 10 && pt.Cov.pt_what = Cov.Wmatch (1, false))
       (Cov.uncovered ()));
  (* In-block route without the community: m1=F finally covered. *)
  ignore (Bgp.Policy.apply ?site map (p "10.1.0.0/16") (attrs ~tagged:false));
  check Alcotest.int "m1=F covered" 8 (Cov.covered ());
  (* The deny-all tail entry always decides, so the per-map
     fallthrough is unreachable in this map — left uncovered. *)
  Alcotest.(check bool) "fallthrough uncovered" true
    (List.exists (fun pt -> pt.Cov.pt_what = Cov.Wfall) (Cov.uncovered ()));
  let hit =
    { Cov.pt_node = 1; pt_map = "IN"; pt_seq = 10; pt_what = Cov.Wmatch (0, true) }
  in
  check Alcotest.int "hit counter" 2 (Cov.hits hit);
  check Alcotest.string "stable point id" "n1/IN/e10/m0=T" (Cov.id_of hit)

let coverage_never_changes_results () =
  let cfg = sample_config () in
  let map = Option.get (Bgp.Config.find_route_map cfg "IN") in
  let attrs =
    Bgp.Attr.add_community (Bgp.Community.make 65001 100)
      (Bgp.Attr.make ~as_path:[ Bgp.As_path.Seq [ 2 ] ]
         ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.2") ())
  in
  let routes = [ p "10.1.0.0/16"; p "10.1.1.0/25"; p "172.16.0.0/12" ] in
  let plain = List.map (fun r -> Bgp.Policy.apply map r attrs) routes in
  Cov.reset ();
  Cov.register_config ~node:1 cfg;
  Cov.enable ();
  let observed =
    Fun.protect ~finally:Cov.disable @@ fun () ->
    let site = Cov.site ~node:1 (Some "IN") in
    List.map (fun r -> Bgp.Policy.apply ?site map r attrs) routes
  in
  Alcotest.(check bool) "instrumented results identical" true (plain = observed);
  Alcotest.(check bool) "observer uninstalled" false (Bgp.Policy.cov_on ())

(* ------------------------------------------------------------------ *)
(* Scenario integration                                                *)
(* ------------------------------------------------------------------ *)

let deploy ~confuzz =
  Triage.Scenario.Deploy
    { Triage.Scenario.dp_topo = Triage.Scenario.Gadget;
      dp_keep = None;
      dp_seed = 1;
      dp_inject = None;
      dp_settle_sec = 5.;
      dp_churn = [];
      dp_mangle = None;
      dp_confuzz = confuzz;
      dp_cascade = false;
      dp_mode =
        Triage.Scenario.Direct { dr_node = 4; dr_peer = 0; dr_input = None } }

let scenario_confuzz_roundtrip () =
  let s =
    deploy
      ~confuzz:
        [ M.Originate_foreign { node = 4; prefix = p "192.0.6.0/24" };
          M.Te_pin
            { node = 1; map = "FROM-PEER"; prefix = p "192.0.0.0/24";
              via_asn = 1002; pref = 300 } ]
  in
  (match Triage.Scenario.of_string (Triage.Scenario.to_string s) with
  | Ok s' -> Alcotest.(check bool) "round-trips" true (Triage.Scenario.equal s s')
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* Corpus entries written before the confuzz field existed decode to
     an empty mutation list. *)
  let legacy =
    {|{"scenario":"deploy","topo":{"name":"gadget"},"keep":null,"seed":1,
      "inject":null,"settle_sec":5.0,"churn":[],"mangle":null,
      "run":{"mode":"direct","node":4,"peer":0,"input":null}}|}
  in
  match Triage.Scenario.of_string legacy with
  | Error e -> Alcotest.failf "legacy decode failed: %s" e
  | Ok legacy_s ->
      Alcotest.(check bool) "legacy == explicit empty list" true
        (Triage.Scenario.equal legacy_s (deploy ~confuzz:[]))

let signature_strings o =
  List.sort_uniq String.compare
    (List.map Dice.Signature.to_string o.Triage.Scenario.o_signatures)

let empty_stack_identity () =
  (* An empty mutation list is exactly the unfuzzed scenario: same
     replay, same outcome, and a legacy (pre-confuzz) encoding of the
     same deployment replays identically. *)
  let o_base = Triage.Scenario.run (deploy ~confuzz:[]) in
  let o_again = Triage.Scenario.run (deploy ~confuzz:[]) in
  check (Alcotest.option Alcotest.string) "clean deploy" None
    o_base.Triage.Scenario.o_error;
  check Alcotest.(list string) "deterministic" (signature_strings o_base)
    (signature_strings o_again);
  (* The guidance loop with a zero budget runs the baseline once and
     draws nothing from its RNG: no rounds, no findings, coverage
     frozen at the baseline. *)
  let ctx = M.ctx_of_graph (Topology.Gadget.embedded ()) in
  let calls = ref 0 in
  let r =
    Confuzz.Loop.run
      ~params:
        { Confuzz.Loop.p_budget = 0; p_seed = 1; p_guided = true; p_max_stack = 4 }
      ~ctx
      ~run_mutant:(fun stack ->
        incr calls;
        check Alcotest.int "only the empty stack runs" 0 (List.length stack);
        [])
      ()
  in
  check Alcotest.int "baseline only" 1 !calls;
  check Alcotest.int "no rounds" 0 (List.length r.Confuzz.Loop.rs_rounds);
  check Alcotest.int "no findings" 0 (List.length r.Confuzz.Loop.rs_findings);
  check Alcotest.int "coverage frozen at baseline"
    r.Confuzz.Loop.rs_baseline_covered r.Confuzz.Loop.rs_covered;
  Alcotest.(check bool) "observer removed after the campaign" false
    (Bgp.Policy.cov_on ())

let minimize_keeps_only_faulty_mutation () =
  (* Three stacked operator errors, one fault: ddmin over the mutation
     list keeps exactly the foreign origination. *)
  let stack =
    [ M.Pref_const { node = 9; map = "FROM-PROVIDER"; seq = 10; value = 100 };
      M.Originate_foreign { node = 4; prefix = p "192.0.6.0/24" };
      M.Med_const { node = 9; map = "TO-PROVIDER"; seq = 10; value = Some 7 } ]
  in
  let s = deploy ~confuzz:stack in
  let o = Triage.Scenario.run s in
  let target =
    match
      List.find_opt
        (fun sg -> sg.Dice.Signature.sg_class = Dice.Fault.Operator_mistake)
        o.Triage.Scenario.o_signatures
    with
    | Some sg -> sg
    | None -> Alcotest.fail "foreign origination must trip a baseline check"
  in
  let r = Triage.Minimize.run ~max_tests:80 ~target s in
  (match r.Triage.Minimize.r_minimized with
  | Triage.Scenario.Deploy d ->
      (match d.Triage.Scenario.dp_confuzz with
      | [ M.Originate_foreign _ ] -> ()
      | ms ->
          Alcotest.failf "expected the lone foreign origination, got [%s]"
            (String.concat "; " (List.map M.describe ms)))
  | Triage.Scenario.Wire _ -> Alcotest.fail "minimized into a wire scenario");
  Alcotest.(check bool) "minimized scenario still detects" true
    (Triage.Scenario.detects r.Triage.Minimize.r_minimized target)

(* ------------------------------------------------------------------ *)
(* Guidance                                                            *)
(* ------------------------------------------------------------------ *)

(* A cheap stand-in for a full deployment: evaluate every import policy
   over every originated prefix.  Enough signal for coverage guidance
   to steer by, and three orders of magnitude faster than the network. *)
let cheap_run_mutant ctx stack =
  let configs =
    List.fold_left
      (fun cfgs m ->
        List.map
          (fun (n, c) ->
            if n = M.node_of m then
              (n, match M.apply_config m c with Ok c' -> c' | Error _ -> c)
            else (n, c))
          cfgs)
      ctx.M.cx_configs stack
  in
  let prefixes = List.map snd ctx.M.cx_prefixes in
  List.iter
    (fun (node, cfg) ->
      List.iter
        (fun (nb : Bgp.Config.neighbor) ->
          let pol = Bgp.Config.import_policy cfg nb in
          let site = Cov.site ~node nb.Bgp.Config.import_map in
          let attrs =
            Bgp.Attr.make
              ~as_path:[ Bgp.As_path.Seq [ nb.Bgp.Config.remote_as ] ]
              ~next_hop:nb.Bgp.Config.addr ()
          in
          List.iter (fun pf -> ignore (Bgp.Policy.apply ?site pol pf attrs)) prefixes)
        cfg.Bgp.Config.neighbors)
    configs;
  []

let guided_beats_random () =
  let ctx = M.ctx_of_graph (Topology.Gadget.embedded ()) in
  let arm guided =
    Confuzz.Loop.run
      ~params:
        { Confuzz.Loop.p_budget = 40; p_seed = 3; p_guided = guided; p_max_stack = 4 }
      ~ctx
      ~run_mutant:(cheap_run_mutant ctx)
      ()
  in
  let random = arm false in
  let guided = arm true in
  Alcotest.(check bool) "campaign covers more than the baseline" true
    (guided.Confuzz.Loop.rs_covered > guided.Confuzz.Loop.rs_baseline_covered);
  Alcotest.(check bool)
    (Printf.sprintf "guided (%d) covers more than random (%d) at equal budget"
       guided.Confuzz.Loop.rs_covered random.Confuzz.Loop.rs_covered)
    true
    (guided.Confuzz.Loop.rs_covered > random.Confuzz.Loop.rs_covered)

let suite =
  [ ("confuzz: mutation json round-trip", `Quick, mutation_json_roundtrip);
    ("confuzz: apply_config semantics", `Quick, mutation_apply_semantics);
    ("confuzz: coverage registry", `Quick, coverage_registry);
    ("confuzz: coverage preserves results", `Quick, coverage_never_changes_results);
    ("confuzz: scenario codec", `Quick, scenario_confuzz_roundtrip);
    ("confuzz: empty stack is the unfuzzed run", `Quick, empty_stack_identity);
    ("confuzz: minimizer prunes innocent mutations", `Slow, minimize_keeps_only_faulty_mutation);
    ("confuzz: guided beats random", `Quick, guided_beats_random) ]
