(* The DiCE core: instrumented handlers vs. concrete semantics,
   property checkers, fault injection, exploration end-to-end. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let p = Bgp.Prefix.of_string_exn

(* A small deployed Internet used by most tests here. *)
let small_build () =
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 5) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  (graph, build)

let make_cut build =
  Snapshot.Cut.create
    ~speakers:(fun id -> Topology.Build.speaker build id)
    build.Topology.Build.net

let fast_params =
  { Dice.Explorer.default_params with
    Dice.Explorer.limits =
      { Concolic.Engine.max_inputs = 24; max_branches = 32; solver_nodes = 10_000 };
    fuzz_extra = 6;
    shadow_budget = 15_000 }

(* ------------------------------------------------------------------ *)
(* Sym_policy agrees with the concrete policy engine                   *)
(* ------------------------------------------------------------------ *)

let arb_field_input =
  (* Random assignments over the Sym_route field space (path length
     >= 2 so the neighbor/origin split is faithful). *)
  let open QCheck.Gen in
  let gen =
    let* nlri_a = oneofl [ 0; 10; 127; 192; 203; 240 ] in
    let* nlri_b = int_bound 255 in
    let* nlri_len = int_bound 32 in
    let* origin = int_bound 2 in
    let* path_len = int_range 2 6 in
    let* origin_as = int_range 998 1012 in
    let* neighbor_as = int_range 998 1012 in
    let* contains_self = int_bound 1 in
    let* med = int_bound 300 in
    let* community = int_bound 6 in
    return
      [ ("nlri_a", nlri_a); ("nlri_b", nlri_b); ("nlri_len", nlri_len);
        ("origin", origin); ("path_len", path_len); ("origin_as", origin_as);
        ("neighbor_as", neighbor_as); ("contains_self", contains_self);
        ("med", med); ("community", community) ]
  in
  QCheck.make ~print:Concolic.Ctx.input_to_string gen

let lazy_build = lazy (small_build ())

let sym_policy_matches_concrete =
  QCheck.Test.make
    ~name:"sym-policy: symbolic evaluation agrees with the concrete engine" ~count:300
    arb_field_input
    (fun input ->
      let graph, build = Lazy.force lazy_build in
      ignore graph;
      let node = 1 in
      let sp = Topology.Build.speaker build node in
      let cfg = sp.Bgp.Speaker.sp_config () in
      let peer = List.hd cfg.Bgp.Config.neighbors in
      let view = Dice.Sym_handler.view_of_speaker sp ~peer:peer.Bgp.Config.addr in
      let policy = Bgp.Config.import_policy cfg peer in
      (* Symbolic run. *)
      let ctx = Concolic.Ctx.create input in
      let sr =
        Dice.Sym_route.read ctx ~asn_lo:view.Dice.Sym_handler.sh_asn_lo
          ~asn_hi:view.Dice.Sym_handler.sh_asn_hi
          ~universe_size:(List.length view.Dice.Sym_handler.sh_universe)
      in
      let sym =
        Dice.Sym_policy.eval ctx ~own_asn:cfg.Bgp.Config.asn
          ~universe:view.Dice.Sym_handler.sh_universe policy sr
      in
      (* Concrete run over the concretized message. *)
      let u = Dice.Sym_handler.update_of_input view input in
      let attrs = Option.get u.Bgp.Msg.attrs in
      let prefix = List.hd u.Bgp.Msg.nlri in
      let conc = Bgp.Policy.apply policy prefix attrs in
      match (sym, conc) with
      | Dice.Sym_policy.Denied, None -> true
      | Dice.Sym_policy.Accepted sr', Some attrs' ->
          Concolic.Cval.to_int sr'.Dice.Sym_route.sr_local_pref
          = Bgp.Attr.effective_local_pref attrs'
          && Concolic.Cval.to_int sr'.Dice.Sym_route.sr_path_len
             = Bgp.As_path.length attrs'.Bgp.Attr.as_path
        && Concolic.Cval.to_int sr'.Dice.Sym_route.sr_med
             = Option.value attrs'.Bgp.Attr.med ~default:0
      | Dice.Sym_policy.Denied, Some _ | Dice.Sym_policy.Accepted _, None -> false)

(* The instrumented mirror agrees with reality: its verdict about an
   input matches what the concrete pipeline does with the concretized
   bytes on a fresh clone. *)
let arb_mirror_input =
  let open QCheck.Gen in
  let gen =
    let* withdraw = frequency [ (5, return 0); (1, return 1) ] in
    let* malform = frequency [ (6, return 0); (1, return 1); (1, return 2) ] in
    let* nlri_a = oneofl [ 0; 127; 192; 203; 240 ] in
    let* nlri_b = int_bound 255 in
    let* nlri_len = int_bound 32 in
    let* origin = int_bound 3 in
    let* path_len = int_range 2 5 in
    let* origin_as = int_range 998 1012 in
    let* med = int_bound 300 in
    let* community = int_bound 6 in
    return
      [ ("withdraw", withdraw); ("malform", malform); ("nlri_a", nlri_a);
        ("nlri_b", nlri_b); ("nlri_len", nlri_len); ("origin", origin);
        ("path_len", path_len); ("origin_as", origin_as);
        ("contains_self", 0); ("med", med); ("community", community) ]
  in
  QCheck.make ~print:Concolic.Ctx.input_to_string gen

let mirror_matches_reality =
  QCheck.Test.make
    ~name:"sym-handler: mirror verdicts match the concrete pipeline" ~count:250
    arb_mirror_input
    (fun input ->
      let _, build = Lazy.force lazy_build in
      let node = 1 in
      let sp = Topology.Build.speaker build node in
      let peer = List.hd (sp.Bgp.Speaker.sp_config ()).Bgp.Config.neighbors in
      let peer_addr = peer.Bgp.Config.addr in
      let view = Dice.Sym_handler.view_of_speaker sp ~peer:peer_addr in
      (* Fill in the peer's AS so the benign path reflects real traffic. *)
      let input = Concolic.Ctx.input_update input [ ("neighbor_as", peer.Bgp.Config.remote_as) ] in
      let verdict = Dice.Sym_handler.run view (Concolic.Ctx.create input) in
      let raw = Dice.Sym_handler.concretize view input in
      let decoded = Bgp.Wire.decode raw in
      match verdict with
      | Dice.Sym_handler.Malformed -> Result.is_error decoded
      | Dice.Sym_handler.Withdrawal _ -> (
          match decoded with
          | Ok (Bgp.Msg.Update u) -> u.Bgp.Msg.nlri = [] && u.Bgp.Msg.withdrawn <> []
          | _ -> false)
      | Dice.Sym_handler.Rejected_loop -> true (* excluded by the generator *)
      | Dice.Sym_handler.Rejected_policy | Dice.Sym_handler.Accepted _ -> (
          match decoded with
          | Error _ -> false
          | Ok (Bgp.Msg.Update u) -> (
              (* Replay on a fresh clone of the live system and inspect
                 the node's Adj-RIB-In. *)
              let cut = make_cut build in
              let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node ()) in
              let shadow = Snapshot.Store.spawn snap in
              let target = Snapshot.Store.speaker shadow node in
              target.Bgp.Speaker.sp_process_raw
                ~from_node:(Bgp.Router.node_of_addr peer_addr) raw;
              let prefix = List.hd u.Bgp.Msg.nlri in
              let entry =
                Bgp.Rib.adj_in_get peer_addr prefix (target.Bgp.Speaker.sp_rib ())
              in
              match verdict with
              | Dice.Sym_handler.Rejected_policy -> entry = None
              | Dice.Sym_handler.Accepted _ -> entry <> None
              | _ -> false)
          | Ok _ -> false))

(* ------------------------------------------------------------------ *)
(* Sym_handler concretization                                          *)
(* ------------------------------------------------------------------ *)

let view_for_node node =
  let _, build = Lazy.force lazy_build in
  let sp = Topology.Build.speaker build node in
  let peer = List.hd (sp.Bgp.Speaker.sp_config ()).Bgp.Config.neighbors in
  Dice.Sym_handler.view_of_speaker sp ~peer:peer.Bgp.Config.addr

let concretize_wellformed () =
  let view = view_for_node 1 in
  let raw = Dice.Sym_handler.concretize view [] in
  match Bgp.Wire.decode raw with
  | Ok (Bgp.Msg.Update u) ->
      check Alcotest.int "one nlri" 1 (List.length u.Bgp.Msg.nlri);
      Alcotest.(check bool) "attrs present" true (u.Bgp.Msg.attrs <> None)
  | Ok m -> Alcotest.failf "expected UPDATE, got %a" Bgp.Msg.pp m
  | Error e -> Alcotest.failf "benign input must decode: %a" Bgp.Wire.pp_error e

let concretize_malformed_origin () =
  let view = view_for_node 1 in
  let raw = Dice.Sym_handler.concretize view [ ("malform", 1) ] in
  match Bgp.Wire.decode raw with
  | Error e ->
      check Alcotest.int "invalid origin subcode" Bgp.Msg.Error.invalid_origin
        e.Bgp.Wire.subcode
  | Ok _ -> Alcotest.fail "malform=1 must not decode"

let concretize_malformed_length () =
  let view = view_for_node 1 in
  let raw = Dice.Sym_handler.concretize view [ ("malform", 2) ] in
  match Bgp.Wire.decode raw with
  | Error e ->
      check Alcotest.int "update-message error" Bgp.Msg.Error.update_message e.Bgp.Wire.code
  | Ok _ -> Alcotest.fail "malform=2 must not decode"

let handler_outcomes () =
  let view = view_for_node 1 in
  let run input =
    Dice.Sym_handler.run view (Concolic.Ctx.create input)
  in
  check Alcotest.string "malformed input" "malformed"
    (Dice.Sym_handler.outcome_to_string (run [ ("malform", 2) ]));
  check Alcotest.string "looped path rejected" "rejected-loop"
    (Dice.Sym_handler.outcome_to_string (run [ ("contains_self", 1) ]));
  (* A martian announcement is rejected by the import map. *)
  check Alcotest.string "martian rejected by policy" "rejected-policy"
    (Dice.Sym_handler.outcome_to_string (run [ ("nlri_a", 127); ("nlri_len", 8) ]))

(* ------------------------------------------------------------------ *)
(* Checks and ground truth                                             *)
(* ------------------------------------------------------------------ *)

let ground_truth_subsumption () =
  let graph, _ = Lazy.force lazy_build in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  check (Alcotest.option Alcotest.int) "owner of node 2's /24"
    (Some (Topology.Gao_rexford.asn_of_node 2))
    (gt.Dice.Checks.owner_of (Topology.Gao_rexford.prefix_of_node 2));
  (* More specific prefixes belong to the covering owner. *)
  let sub =
    Bgp.Prefix.make (Bgp.Prefix.addr (Topology.Gao_rexford.prefix_of_node 2)) 28
  in
  check (Alcotest.option Alcotest.int) "sub-prefix same owner"
    (Some (Topology.Gao_rexford.asn_of_node 2))
    (gt.Dice.Checks.owner_of sub);
  check (Alcotest.option Alcotest.int) "unowned space" None
    (gt.Dice.Checks.owner_of (p "8.8.8.0/24"))

let checks_clean_on_healthy_system () =
  let graph, build = Lazy.force lazy_build in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let cut = make_cut build in
  let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node:0 ()) in
  let shadow = Snapshot.Store.spawn snap in
  ignore (Snapshot.Store.run_to_quiescence shadow);
  List.iter
    (fun (c : Dice.Checks.checker) ->
      List.iter
        (fun (v : Dice.Checks.verdict) ->
          if not v.Dice.Checks.v_ok then
            Alcotest.failf "healthy system violates %s at node %d: %s"
              v.Dice.Checks.v_property v.Dice.Checks.v_node v.Dice.Checks.v_evidence)
        (c.Dice.Checks.run shadow))
    (Dice.Checks.standard_suite gt)

let privacy_digest_opacity () =
  let d =
    Dice.Privacy.digest ~node:3 ~property:"origin-authenticity" ~ok:false
      ~evidence:"192.0.2.0/24 originated by AS1009"
  in
  Alcotest.(check bool) "violated recorded" false d.Dice.Privacy.d_ok;
  Alcotest.(check bool) "contract" true
    (Dice.Privacy.leaks_nothing d "192.0.2.0/24 originated by AS1009");
  let agg = Dice.Privacy.aggregate [ d ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "aggregate lists violation" [ (3, "origin-authenticity") ] agg.Dice.Privacy.violations;
  Alcotest.(check bool) "not all ok" false (Dice.Privacy.all_ok agg)

let fault_dedupe () =
  let at = Netsim.Time.zero in
  let f1 = Dice.Fault.make ~at ~node:1 ~property:"x" Dice.Fault.Operator_mistake "a" in
  let f2 = Dice.Fault.make ~at ~node:1 ~property:"x" Dice.Fault.Operator_mistake "b" in
  let f3 = Dice.Fault.make ~at ~node:2 ~property:"x" Dice.Fault.Operator_mistake "c" in
  check Alcotest.int "dedupes same root" 2 (List.length (Dice.Fault.dedupe [ f1; f2; f3 ]))

(* ------------------------------------------------------------------ *)
(* Injection scenarios                                                 *)
(* ------------------------------------------------------------------ *)

let inject_validation () =
  let _, build = Lazy.force lazy_build in
  Alcotest.(check bool) "non-peer cycle rejected" true
    (try
       Dice.Inject.apply build
         (Dice.Inject.Policy_dispute { cycle = [ 0; 1; 2 ]; victim = 3 });
       false
     with Invalid_argument _ -> true);
  check Alcotest.string "class of hijack" "operator-mistake"
    (Dice.Fault.class_to_string
       (Dice.Inject.fault_class (Dice.Inject.Prefix_hijack { at = 1; victim = 2 })));
  check Alcotest.string "class of dispute" "policy-conflict"
    (Dice.Fault.class_to_string
       (Dice.Inject.fault_class (Dice.Inject.Policy_dispute { cycle = []; victim = 0 })));
  check Alcotest.string "class of bug" "programming-error"
    (Dice.Fault.class_to_string
       (Dice.Inject.fault_class (Dice.Inject.Loop_check_bug { at = 0 })))

(* ------------------------------------------------------------------ *)
(* End-to-end detections (fast parameters)                             *)
(* ------------------------------------------------------------------ *)

let detects_hijack () =
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 9) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build (Dice.Inject.Prefix_hijack { at = 5; victim = 4 });
  Topology.Build.run_for build (Netsim.Time.span_sec 30.);
  let _, hit =
    Dice.Orchestrator.run_until_detection ~params:fast_params ~build ~gt
      ~expect:Dice.Fault.Operator_mistake ()
  in
  Alcotest.(check bool) "hijack detected" true (hit <> None)

let detects_build_fresh () =
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 13) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  (graph, build)

let detects_crash_bug () =
  let graph, build = detects_build_fresh () in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let poison = Bgp.Community.make 64111 1 in
  Dice.Inject.apply build (Dice.Inject.Crash_bug { at = 1; community = poison });
  let _, hit =
    Dice.Orchestrator.run_until_detection ~params:fast_params ~build ~gt ~nodes:[ 1 ]
      ~expect:Dice.Fault.Programming_error ()
  in
  match hit with
  | Some round ->
      Alcotest.(check bool) "crash property named" true
        (List.exists
           (fun (f : Dice.Fault.t) ->
             String.equal f.Dice.Fault.f_property "handler-crash")
           (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults)
  | None -> Alcotest.fail "crash bug not detected"

let detects_loop_bug () =
  let graph, build = detects_build_fresh () in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build (Dice.Inject.Loop_check_bug { at = 1 });
  let _, hit =
    Dice.Orchestrator.run_until_detection ~params:fast_params ~build ~gt ~nodes:[ 1 ]
      ~expect:Dice.Fault.Programming_error ()
  in
  match hit with
  | Some round ->
      Alcotest.(check bool) "loop property named" true
        (List.exists
           (fun (f : Dice.Fault.t) ->
             String.equal f.Dice.Fault.f_property "no-own-as-in-path")
           (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults)
  | None -> Alcotest.fail "loop bug not detected"

let detects_dispute_wheel () =
  let graph = Topology.Gadget.bad_gadget () in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build
    (Dice.Inject.Policy_dispute
       { cycle = Topology.Gadget.wheel; victim = Topology.Gadget.victim });
  Topology.Build.run_for build (Netsim.Time.span_sec 5.);
  let _, hit =
    Dice.Orchestrator.run_until_detection ~params:fast_params ~build ~gt
      ~nodes:Topology.Gadget.wheel ~expect:Dice.Fault.Policy_conflict ()
  in
  Alcotest.(check bool) "oscillation detected" true (hit <> None)

let no_false_positives_on_healthy_system () =
  let graph, build = detects_build_fresh () in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let summary =
    Dice.Orchestrator.run ~params:fast_params ~build ~gt ~rounds:3 ()
  in
  check (Alcotest.list Alcotest.string) "no faults reported" []
    (List.map
       (fun (f : Dice.Fault.t) -> Format.asprintf "%a" Dice.Fault.pp f)
       summary.Dice.Orchestrator.faults)

let exploration_metrics_consistent () =
  let graph, build = detects_build_fresh () in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let cut = make_cut build in
  let x = Dice.Explorer.explore_node ~params:fast_params ~build ~cut ~gt ~node:0 () in
  Alcotest.(check bool) "ran inputs" true (x.Dice.Explorer.x_inputs > 0);
  Alcotest.(check bool) "paths bounded by inputs" true
    (x.Dice.Explorer.x_distinct_paths <= x.Dice.Explorer.x_inputs);
  Alcotest.(check bool) "shadows cover concolic + fuzz" true
    (x.Dice.Explorer.x_shadow_runs >= x.Dice.Explorer.x_inputs);
  check Alcotest.int "snapshot covered all nodes" 6
    (List.length x.Dice.Explorer.x_snapshot.Snapshot.Cut.checkpoints)

let suite =
  [ qtest sym_policy_matches_concrete;
    qtest mirror_matches_reality;
    ("sym-handler: benign concretization decodes", `Quick, concretize_wellformed);
    ("sym-handler: malformed origin byte", `Quick, concretize_malformed_origin);
    ("sym-handler: malformed attribute length", `Quick, concretize_malformed_length);
    ("sym-handler: outcome paths", `Quick, handler_outcomes);
    ("checks: ground truth subsumption", `Quick, ground_truth_subsumption);
    ("checks: healthy system is clean", `Quick, checks_clean_on_healthy_system);
    ("privacy: digest opacity and aggregation", `Quick, privacy_digest_opacity);
    ("fault: dedupe", `Quick, fault_dedupe);
    ("inject: validation and classes", `Quick, inject_validation);
    ("e2e: detects prefix hijack", `Slow, detects_hijack);
    ("e2e: detects crash bug", `Slow, detects_crash_bug);
    ("e2e: detects loop-check bug", `Slow, detects_loop_bug);
    ("e2e: detects dispute wheel", `Slow, detects_dispute_wheel);
    ("e2e: no false positives when healthy", `Slow, no_false_positives_on_healthy_system);
    ("explorer: metrics consistency", `Quick, exploration_metrics_consistent) ]
