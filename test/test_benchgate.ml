(* The CI regression gate must actually fail on a regression: these
   tests feed synthetic BENCH.json documents through Benchgate.Gate and
   check each direction, the margins, and the missing-metric rule. *)

module Json = Telemetry.Json
open Benchgate

let doc ~decode ~shadows ?(extra = []) () =
  Json.Obj
    ([ ( "micro_ns_per_op",
         Json.Obj [ ("dice/wire/decode-update", Json.Float decode) ] );
       ( "scale",
         Json.Obj
           [ ( "lite",
               Json.Obj [ ("shadows_per_s", Json.Float shadows) ] ) ] ) ]
    @ extra)

let baseline = doc ~decode:800. ~shadows:3. ()

let verdicts fresh = Gate.check ~baseline ~fresh ()

let find metric vs =
  match List.find_opt (fun v -> v.Gate.metric = metric) vs with
  | Some v -> v
  | None -> Alcotest.failf "no verdict for %s" metric

let gate_passes_identical_run () =
  let vs = verdicts baseline in
  Alcotest.(check int) "both families gated" 2 (List.length vs);
  Alcotest.(check bool) "identical run passes" true (Gate.all_ok vs)

let gate_passes_within_margin () =
  (* 2.0x with 50ns slack on micro; shadows may sag to base/1.6 - 0.5. *)
  let vs = verdicts (doc ~decode:1200. ~shadows:1.5 ()) in
  Alcotest.(check bool) "noise-sized drift passes" true (Gate.all_ok vs)

let gate_fails_slower_micro () =
  let vs = verdicts (doc ~decode:2500. ~shadows:3. ()) in
  Alcotest.(check bool) "regressed decode fails" false
    (find "micro_ns_per_op.dice/wire/decode-update" vs).Gate.ok;
  Alcotest.(check bool) "throughput still ok" true
    (find "scale.lite.shadows_per_s" vs).Gate.ok;
  Alcotest.(check bool) "all_ok reports the failure" false (Gate.all_ok vs)

let gate_fails_lower_throughput () =
  (* Higher-is-better: limit is 3/1.6 - 0.5 = 1.375. *)
  let vs = verdicts (doc ~decode:800. ~shadows:1.0 ()) in
  Alcotest.(check bool) "collapsed shadows/s fails" false
    (find "scale.lite.shadows_per_s" vs).Gate.ok

let gate_fails_missing_metric () =
  let fresh =
    Json.Obj
      [ ("micro_ns_per_op",
         Json.Obj [ ("dice/wire/decode-update", Json.Float 800.) ]) ]
  in
  let v = find "scale.lite.shadows_per_s" (verdicts fresh) in
  Alcotest.(check bool) "gated metric absent from fresh run fails" false v.Gate.ok;
  Alcotest.(check bool) "reported as missing" true (v.Gate.fresh = None)

let gate_ignores_fresh_only_metrics () =
  let fresh =
    doc ~decode:800. ~shadows:3.
      ~extra:
        [ ( "micro_minor_words_per_op",
            Json.Obj [ ("dice/wire/decode-update", Json.Float 1e9) ] ) ]
      ()
  in
  (* A metric with no baseline cannot regress; it starts gating once
     the baseline is refreshed to include it. *)
  let vs = verdicts fresh in
  Alcotest.(check int) "only baseline metrics gated" 2 (List.length vs);
  Alcotest.(check bool) "fresh-only metric ignored" true (Gate.all_ok vs)

let gate_ungated_names_pass_through () =
  let baseline =
    Json.Obj
      [ ( "scale",
          Json.Obj [ ("lite", Json.Obj [ ("routes", Json.Int 62_500) ]) ] ) ]
  in
  let fresh =
    Json.Obj
      [ ("scale", Json.Obj [ ("lite", Json.Obj [ ("routes", Json.Int 10) ]) ]) ]
  in
  Alcotest.(check int) "descriptive fields have no rule" 0
    (List.length (Gate.check ~baseline ~fresh ()))

let suite =
  [ ("gate: identical run passes", `Quick, gate_passes_identical_run);
    ("gate: drift within margin passes", `Quick, gate_passes_within_margin);
    ("gate: slower micro fails", `Quick, gate_fails_slower_micro);
    ("gate: lower throughput fails", `Quick, gate_fails_lower_throughput);
    ("gate: missing gated metric fails", `Quick, gate_fails_missing_metric);
    ("gate: fresh-only metrics ignored", `Quick, gate_ignores_fresh_only_metrics);
    ("gate: descriptive fields ungated", `Quick, gate_ungated_names_pass_through) ]
