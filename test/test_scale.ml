(* Scale-facing correctness: the 100k-prefix trie against a naive
   oracle, RIB coherence at table size, and the property that pins the
   incremental decision process to a full recompute. *)

open Bgp

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Prefix_trie at 100k entries vs a linear-scan oracle                 *)
(* ------------------------------------------------------------------ *)

let random_prefix st =
  let len = 8 + Random.State.int st 17 (* /8 .. /24 *) in
  let addr =
    Ipv4.of_octets
      (1 + Random.State.int st 223)
      (Random.State.int st 256) (Random.State.int st 256)
      (Random.State.int st 256)
  in
  Prefix.make addr len

let trie_100k_matches_naive_oracle () =
  let st = Random.State.make [| 0x5ca1e |] in
  let n = 100_000 in
  let prefixes = Array.init n (fun i -> (random_prefix st, i)) in
  let trie =
    Array.fold_left (fun t (p, v) -> Prefix_trie.add p v t) Prefix_trie.empty
      prefixes
  in
  (* Duplicates collapse: the trie's cardinal is the distinct count. *)
  let distinct =
    Array.fold_left (fun s (p, _) -> Prefix.Set.add p s) Prefix.Set.empty
      prefixes
    |> Prefix.Set.cardinal
  in
  Alcotest.(check int) "cardinal counts distinct prefixes" distinct
    (Prefix_trie.cardinal trie);
  let naive_longest addr =
    Array.fold_left
      (fun acc (p, _) ->
        if Prefix.mem addr p then
          match acc with
          | Some q when Prefix.len q >= Prefix.len p -> acc
          | _ -> Some p
        else acc)
      None prefixes
  in
  for _ = 1 to 1_000 do
    let addr =
      Ipv4.of_octets
        (1 + Random.State.int st 223)
        (Random.State.int st 256) (Random.State.int st 256)
        (Random.State.int st 256)
    in
    let got = Option.map fst (Prefix_trie.longest_match addr trie) in
    let want = naive_longest addr in
    (* Two distinct prefixes of equal length cannot both contain one
       address, so the longest match is unique and comparable. *)
    let pp_prefix = Fmt.of_to_string (fun p -> Prefix.to_string p) in
    Alcotest.(check (option (testable pp_prefix Prefix.equal)))
      (Ipv4.to_string addr) want got
  done

let rib_coherent_at_100k () =
  let peer = Router.addr_of_node 1 in
  let source =
    { Rib.peer_addr = peer; peer_as = 65002; peer_bgp_id = peer; ebgp = true;
      igp_metric = 0 }
  in
  let n = 100_000 in
  let nth_prefix i =
    Prefix.make
      (Ipv4.of_octets (10 + (i lsr 16)) ((i lsr 8) land 255) (i land 255) 0)
      24
  in
  let rib = ref Rib.empty in
  for i = 0 to n - 1 do
    let attrs = Attr.make ~as_path:[ As_path.Seq [ 65002 ] ] ~next_hop:peer () in
    let next, changed =
      Rib.adj_in_update peer (nth_prefix i) (Some { Rib.attrs; source }) !rib
    in
    assert changed;
    rib := next
  done;
  Alcotest.(check int) "adj-in holds the full table" n (Rib.total_adj_in !rib);
  Alcotest.(check int) "candidate trie covers every prefix" n
    (Prefix_trie.cardinal !rib.Rib.cands);
  (* Candidate lookup and longest-match stay exact at table size. *)
  for k = 0 to 99 do
    let i = k * 997 mod n in
    let p = nth_prefix i in
    Alcotest.(check int)
      (Prefix.to_string p ^ " has one candidate")
      1
      (List.length (Rib.candidates p !rib));
    let addr =
      Ipv4.of_octets (10 + (i lsr 16)) ((i lsr 8) land 255) (i land 255) 42
    in
    match Prefix_trie.longest_match addr !rib.Rib.cands with
    | Some (q, _) ->
        Alcotest.(check bool) "longest match is the covering /24" true
          (Prefix.equal p q)
    | None -> Alcotest.fail "longest_match missed a filled /24"
  done

(* ------------------------------------------------------------------ *)
(* Incremental decision == full recompute                              *)
(* ------------------------------------------------------------------ *)

(* A standalone router with three eBGP peers; random UPDATE/WITHDRAW
   interleavings go through [inject_update], which only re-runs the
   decision process on dirty prefixes.  The oracle recomputes every
   prefix from the candidate index with [Decision.select] — the same
   selection entry point — so any divergence means the dirty-prefix
   worklist dropped or double-counted something. *)

let local_as = 65001

let peers =
  [ (Router.addr_of_node 1, 65011); (Router.addr_of_node 2, 65012);
    (Router.addr_of_node 3, 65013) ]

let universe = Array.init 12 (fun i -> Prefix.of_string_exn (Printf.sprintf "10.%d.0.0/16" i))

type op = { o_peer : int; o_prefix : int; o_route : (int * int * int) option }
(** [o_route = Some (lpref, med, pad)] announces, [None] withdraws. *)

let gen_ops =
  let open QCheck.Gen in
  let op =
    map3
      (fun o_peer o_prefix o_route -> { o_peer; o_prefix; o_route })
      (int_bound 2)
      (int_bound (Array.length universe - 1))
      (option (triple (int_bound 3) (int_bound 3) (int_bound 2)))
  in
  list_size (int_range 1 60) op

let print_op o =
  Printf.sprintf "{peer=%d; prefix=%d; %s}" o.o_peer o.o_prefix
    (match o.o_route with
    | None -> "withdraw"
    | Some (l, m, p) -> Printf.sprintf "announce lpref=%d med=%d pad=%d" l m p)

let apply_op r op =
  let addr, asn = List.nth peers op.o_peer in
  let prefix = universe.(op.o_prefix) in
  match op.o_route with
  | None ->
      Router.inject_update r ~from:addr
        { Msg.withdrawn = [ prefix ]; attrs = None; nlri = [] }
  | Some (lpref, med, pad) ->
      let as_path =
        [ As_path.Seq (asn :: List.init pad (fun k -> 64900 + k)) ]
      in
      let attrs =
        Attr.make ~as_path
          ~local_pref:(Some (100 + (10 * lpref)))
          ~med:(Some med) ~next_hop:addr ()
      in
      Router.inject_update r ~from:addr
        { Msg.withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }

let full_recompute rib =
  Array.to_list universe
  |> List.filter_map (fun prefix ->
         let candidates =
           Rib.candidates prefix rib
           |> List.filter (Decision.acceptable ~local_as)
         in
         Option.map
           (fun r -> (prefix, r))
           (Decision.select Decision.default_config candidates))

let incremental_matches_full =
  QCheck.Test.make ~name:"router: incremental decision == full recompute"
    ~count:200
    (QCheck.make ~print:(fun ops -> String.concat "; " (List.map print_op ops))
       gen_ops)
    (fun ops ->
      let eng = Netsim.Engine.create () in
      let net = Netsim.Network.create eng in
      for node = 0 to 3 do
        Netsim.Network.add_node net node (fun ~src:_ _ -> ())
      done;
      let cfg =
        Config.make ~asn:local_as
          ~router_id:(Router.addr_of_node 0)
          ~neighbors:
            (List.map (fun (a, asn) -> Config.neighbor a ~remote_as:asn) peers)
          ()
      in
      let r = Router.create ~net ~node:0 cfg in
      List.iter (apply_op r) ops;
      let rib = Router.rib r in
      let expected = full_recompute rib in
      let got = Prefix.Map.bindings (Router.loc_rib r) in
      List.length expected = List.length got
      && List.for_all2
           (fun (p, (want : Rib.route)) (q, (have : Rib.route)) ->
             Prefix.equal p q && want = have)
           expected got)

let suite =
  [ ("trie: 100k longest-match vs naive oracle", `Slow,
     trie_100k_matches_naive_oracle);
    ("rib: coherent at 100k prefixes", `Slow, rib_coherent_at_100k);
    qtest incremental_matches_full ]
