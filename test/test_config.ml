(* Configuration language: parsing, rendering, validation. *)

let check = Alcotest.check

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let sample =
  {|# DiCE sample configuration
router bgp 65001
router-id 10.0.0.1
hold-time 30
network 192.0.2.0/24
network 198.51.100.0/24
neighbor 10.0.0.2 remote-as 65002 import PEER-IN export PEER-OUT
neighbor 10.0.0.3 remote-as 65003
route-map PEER-IN
  entry 5 deny
    match prefix 127.0.0.0/8 le 32
  entry 10 permit
    match prefix 192.0.0.0/8 ge 16 le 24
    match community 65001:100
    set local-pref 200
    set prepend 65001 2
  entry 20 permit
    match as-path originated-by 65009
    set med 40
    set community add no-export
end
route-map PEER-OUT
  entry 10 permit
end
|}

let parse_basics () =
  let cfg = Bgp.Config.parse_exn sample in
  check Alcotest.int "asn" 65001 cfg.Bgp.Config.asn;
  check Alcotest.int "hold" 30 cfg.Bgp.Config.hold_time;
  check Alcotest.int "networks" 2 (List.length cfg.Bgp.Config.networks);
  check Alcotest.int "neighbors" 2 (List.length cfg.Bgp.Config.neighbors);
  check Alcotest.int "route maps" 2 (List.length cfg.Bgp.Config.route_maps);
  let n1 = List.hd cfg.Bgp.Config.neighbors in
  check (Alcotest.option Alcotest.string) "import" (Some "PEER-IN") n1.Bgp.Config.import_map;
  check (Alcotest.option Alcotest.string) "export" (Some "PEER-OUT") n1.Bgp.Config.export_map;
  match Bgp.Config.find_route_map cfg "PEER-IN" with
  | Some entries -> check Alcotest.int "entries" 3 (List.length entries)
  | None -> Alcotest.fail "PEER-IN must exist"

let parse_roundtrip () =
  let cfg = Bgp.Config.parse_exn sample in
  let text = Bgp.Config.to_text cfg in
  let cfg2 = Bgp.Config.parse_exn text in
  Alcotest.(check bool) "to_text/parse fixpoint" true (cfg = cfg2)

let parse_policy_semantics () =
  (* The parsed map behaves like the hand-built equivalent. *)
  let cfg = Bgp.Config.parse_exn sample in
  let map = Option.get (Bgp.Config.find_route_map cfg "PEER-IN") in
  let attrs =
    Bgp.Attr.add_community (Bgp.Community.make 65001 100)
      (Bgp.Attr.make
         ~as_path:[ Bgp.As_path.Seq [ 65002 ] ]
         ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.2")
         ())
  in
  (match Bgp.Policy.apply map (Bgp.Prefix.of_string_exn "192.0.2.0/24") attrs with
  | Some a ->
      check Alcotest.int "local-pref set" 200 (Bgp.Attr.effective_local_pref a);
      check Alcotest.int "prepended" 3 (Bgp.As_path.length a.Bgp.Attr.as_path)
  | None -> Alcotest.fail "entry 10 must permit");
  (match Bgp.Policy.apply map (Bgp.Prefix.of_string_exn "127.0.0.0/8") attrs with
  | None -> ()
  | Some _ -> Alcotest.fail "martian must be denied");
  match
    Bgp.Policy.apply map (Bgp.Prefix.of_string_exn "203.0.113.0/24")
      (Bgp.Attr.make
         ~as_path:[ Bgp.As_path.Seq [ 65002; 65009 ] ]
         ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.2")
         ())
  with
  | Some a ->
      check (Alcotest.option Alcotest.int) "med set" (Some 40) a.Bgp.Attr.med;
      Alcotest.(check bool) "no-export added" true
        (Bgp.Attr.has_community Bgp.Community.no_export a)
  | None -> Alcotest.fail "entry 20 must permit"

let error_reporting () =
  let cases =
    [ ("router bgp abc\nrouter-id 1.1.1.1\n", "integer");
      ("router-id 1.1.1.1\n", "router bgp");
      ("router bgp 1\n", "router-id");
      ("router bgp 1\nrouter-id 1.1.1.1\nroute-map X\n  entry 10 permit\n", "end");
      ("router bgp 1\nrouter-id 1.1.1.1\nnonsense here\n", "unexpected") ]
  in
  List.iter
    (fun (text, expect_substr) ->
      match Bgp.Config.parse text with
      | Ok _ -> Alcotest.failf "expected error for %S" text
      | Error e ->
          let msg = Format.asprintf "%a" Bgp.Config.pp_parse_error e in
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %S (got %S)" expect_substr msg)
            true
            (contains_substring msg expect_substr))
    cases

let validate_catches () =
  let rid = Bgp.Ipv4.of_string_exn "10.0.0.1" in
  let bad_ref =
    Bgp.Config.make ~asn:1 ~router_id:rid
      ~neighbors:[ Bgp.Config.neighbor (Bgp.Ipv4.of_string_exn "10.0.0.2") ~remote_as:2 ~import_map:"NOPE" ]
      ()
  in
  (match Bgp.Config.validate bad_ref with
  | Error [ e ] ->
      Alcotest.(check bool) "mentions route-map" true (contains_substring e "NOPE")
  | Error _ | Ok () -> Alcotest.fail "expected exactly one error");
  let dup =
    Bgp.Config.make ~asn:1 ~router_id:rid
      ~neighbors:
        [ Bgp.Config.neighbor (Bgp.Ipv4.of_string_exn "10.0.0.2") ~remote_as:2;
          Bgp.Config.neighbor (Bgp.Ipv4.of_string_exn "10.0.0.2") ~remote_as:3 ]
      ()
  in
  Alcotest.(check bool) "duplicate neighbor flagged" true
    (Result.is_error (Bgp.Config.validate dup));
  Alcotest.(check bool) "valid config passes" true
    (Result.is_ok (Bgp.Config.validate (Bgp.Config.make ~asn:1 ~router_id:rid ())))

let lint_warnings () =
  let rid = Bgp.Ipv4.of_string_exn "10.0.0.1" in
  let entry seq = Bgp.Policy.entry seq Bgp.Policy.Permit in
  let cfg =
    Bgp.Config.make ~asn:1 ~router_id:rid
      ~neighbors:
        [ Bgp.Config.neighbor (Bgp.Ipv4.of_string_exn "10.0.0.2") ~remote_as:2
            ~import_map:"USED" ]
      ~route_maps:
        [ ("USED", [ entry 10; entry 10; entry 20 ]); ("ORPHAN", [ entry 5 ]) ]
      ()
  in
  (* Both findings are warnings, not validation errors: routers accept
     such configs. *)
  Alcotest.(check bool) "validate accepts" true
    (Result.is_ok (Bgp.Config.validate cfg));
  let warns = Bgp.Config.lint cfg in
  check Alcotest.int "two warnings" 2 (List.length warns);
  Alcotest.(check bool) "unused map named" true
    (List.exists
       (fun w -> contains_substring w "ORPHAN" && contains_substring w "never referenced")
       warns);
  Alcotest.(check bool) "duplicate seq named" true
    (List.exists
       (fun w -> contains_substring w "USED" && contains_substring w "duplicate entry sequence 10")
       warns);
  check Alcotest.int "clean config lints clean" 0
    (List.length
       (Bgp.Config.lint
          (Bgp.Config.make ~asn:1 ~router_id:rid
             ~neighbors:
               [ Bgp.Config.neighbor (Bgp.Ipv4.of_string_exn "10.0.0.2")
                   ~remote_as:2 ~import_map:"USED" ]
             ~route_maps:[ ("USED", [ entry 10; entry 20 ]) ]
             ())))

let gao_rexford_configs_valid () =
  (* Every generated configuration passes its own validation. *)
  let graph = Topology.Demo27.graph in
  List.iter
    (fun id ->
      let cfg = Topology.Gao_rexford.config_of graph id in
      match Bgp.Config.validate cfg with
      | Ok () -> ()
      | Error errs ->
          Alcotest.failf "node %d invalid: %s" id (String.concat "; " errs))
    (Topology.Graph.node_ids graph)

let gao_rexford_configs_roundtrip () =
  let graph = Topology.Demo27.graph in
  List.iter
    (fun id ->
      let cfg = Topology.Gao_rexford.config_of graph id in
      let cfg2 = Bgp.Config.parse_exn (Bgp.Config.to_text cfg) in
      if cfg <> cfg2 then Alcotest.failf "node %d config does not roundtrip" id)
    (Topology.Graph.node_ids graph)

let suite =
  [ ("config: parse basics", `Quick, parse_basics);
    ("config: to_text/parse roundtrip", `Quick, parse_roundtrip);
    ("config: parsed policy semantics", `Quick, parse_policy_semantics);
    ("config: parse error reporting", `Quick, error_reporting);
    ("config: validation", `Quick, validate_catches);
    ("config: lint warnings", `Quick, lint_warnings);
    ("config: generated configs validate", `Quick, gao_rexford_configs_valid);
    ("config: generated configs roundtrip", `Quick, gao_rexford_configs_roundtrip) ]
