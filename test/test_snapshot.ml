(* Checkpoints, Chandy-Lamport cuts, and shadow isolation. *)

let check = Alcotest.check

let deploy_line n =
  (* A line of n ASes under Gao-Rexford configs. *)
  let nodes =
    List.init n (fun i ->
        (i, if i = 0 then Topology.Graph.Tier1 else Topology.Graph.Transit))
  in
  let edges =
    List.init (n - 1) (fun i ->
        { Topology.Graph.a = i + 1; b = i; rel = Topology.Graph.Customer_provider })
  in
  let g = Topology.Graph.make ~nodes ~edges in
  let build = Topology.Build.deploy g in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  build

let make_cut build =
  Snapshot.Cut.create
    ~speakers:(fun id -> Topology.Build.speaker build id)
    build.Topology.Build.net

let take_result ?deadline build cut node =
  let result = ref None in
  ignore
    (Snapshot.Cut.initiate ?deadline cut ~initiator:node
       ~on_result:(fun r -> result := Some r));
  let eng = build.Topology.Build.engine in
  let rec wait n =
    match !result with
    | Some r -> r
    | None ->
        if n = 0 then Alcotest.fail "cut did not settle"
        else begin
          ignore (Netsim.Engine.step eng);
          wait (n - 1)
        end
  in
  wait 1_000_000

let take build cut node =
  match take_result build cut node with
  | Snapshot.Cut.Complete s -> s
  | Snapshot.Cut.Partial _ -> Alcotest.fail "cut unexpectedly partial"

let checkpoint_captures_state () =
  let build = deploy_line 3 in
  let sp = Topology.Build.speaker build 1 in
  let cp = Snapshot.Checkpoint.take ~at:Netsim.Time.zero sp in
  let rib = sp.Bgp.Speaker.sp_rib () in
  check Alcotest.int "route count counts loc + adj-in"
    (Bgp.Rib.loc_cardinal rib + Bgp.Rib.total_adj_in rib)
    (Snapshot.Checkpoint.route_count cp);
  (* Mutating the speaker does not change the checkpoint. *)
  sp.Bgp.Speaker.sp_inject_update ~from:(Bgp.Router.addr_of_node 0)
    { Bgp.Msg.withdrawn = [ Topology.Gao_rexford.prefix_of_node 0 ]; attrs = None; nlri = [] };
  let cp2 = Snapshot.Checkpoint.take ~at:Netsim.Time.zero sp in
  Alcotest.(check bool) "checkpoint immutable" true
    (Snapshot.Checkpoint.route_count cp > Snapshot.Checkpoint.route_count cp2)

let cut_completes_with_all_nodes () =
  let build = deploy_line 4 in
  let cut = make_cut build in
  let snap = take build cut 0 in
  check Alcotest.int "all nodes checkpointed" 4 (List.length snap.Snapshot.Cut.checkpoints);
  check Alcotest.int "all directed channels closed" 6 (List.length snap.Snapshot.Cut.channels);
  Alcotest.(check bool) "markers bounded by channels" true
    (snap.Snapshot.Cut.control_messages <= 6);
  check Alcotest.int "controller idle" 0 (Snapshot.Cut.active cut)

let concurrent_cuts () =
  let build = deploy_line 3 in
  let cut = make_cut build in
  let done1 = ref false and done2 = ref false in
  ignore (Snapshot.Cut.initiate cut ~initiator:0 ~on_result:(fun _ -> done1 := true));
  ignore (Snapshot.Cut.initiate cut ~initiator:2 ~on_result:(fun _ -> done2 := true));
  Topology.Build.run_for build (Netsim.Time.span_sec 10.);
  Alcotest.(check bool) "both complete" true (!done1 && !done2);
  check Alcotest.int "two snapshots recorded" 2 (List.length (Snapshot.Cut.completed cut))

let cut_captures_in_flight () =
  (* Stimulate traffic, then snapshot while UPDATEs are mid-flight: the
     union of node states and channel states must contain the change. *)
  let build = deploy_line 4 in
  let cut = make_cut build in
  let sp3 = Topology.Build.speaker build 3 in
  (* Withdraw node 3's prefix: UPDATEs start propagating up the line. *)
  let cfg = sp3.Bgp.Speaker.sp_config () in
  sp3.Bgp.Speaker.sp_set_config { cfg with Bgp.Config.networks = [] };
  (* Snapshot immediately, while withdrawals are in flight. *)
  let snap = take build cut 0 in
  let in_flight = Snapshot.Cut.in_flight_total snap in
  (* Spawn the clone and let it quiesce: it must reach the same
     conclusion as the live system eventually does. *)
  let shadow = Snapshot.Store.spawn snap in
  Alcotest.(check bool) "shadow quiesces" true (Snapshot.Store.run_to_quiescence shadow);
  assert (Topology.Build.converge build);
  let withdrawn_prefix = Topology.Gao_rexford.prefix_of_node 3 in
  List.iter
    (fun (id, shadow_speaker) ->
      let live_speaker = Topology.Build.speaker build id in
      let live_has = Bgp.Prefix.Map.mem withdrawn_prefix (Bgp.Speaker.loc_rib live_speaker) in
      let shadow_has = Bgp.Prefix.Map.mem withdrawn_prefix (Bgp.Speaker.loc_rib shadow_speaker) in
      check Alcotest.bool
        (Printf.sprintf "node %d: shadow agrees with eventual live state (in_flight=%d)" id in_flight)
        live_has shadow_has)
    shadow.Snapshot.Store.sh_speakers

let shadow_isolation () =
  let build = deploy_line 3 in
  let cut = make_cut build in
  let snap = take build cut 0 in
  let live_before = Topology.Build.loc_rib_snapshot build in
  let live_msgs = Netsim.Network.messages_sent build.Topology.Build.net in
  let shadow = Snapshot.Store.spawn snap in
  (* Hammer the clone. *)
  let sp0 = Snapshot.Store.speaker shadow 0 in
  sp0.Bgp.Speaker.sp_inject_update ~from:(Bgp.Router.addr_of_node 1)
    { Bgp.Msg.withdrawn = [];
      attrs =
        Some
          (Bgp.Attr.make ~origin:Bgp.Attr.Igp
             ~as_path:[ Bgp.As_path.Seq [ Topology.Gao_rexford.asn_of_node 1 ] ]
             ~next_hop:(Bgp.Router.addr_of_node 1) ());
      nlri = [ Bgp.Prefix.of_string_exn "203.0.113.0/24" ] };
  ignore (Snapshot.Store.run_to_quiescence shadow);
  (* The live system is untouched: same RIBs, no extra messages. *)
  Alcotest.(check bool) "live RIBs unchanged" true
    (Topology.Build.loc_rib_snapshot build = live_before);
  check Alcotest.int "no live messages sent" live_msgs
    (Netsim.Network.messages_sent build.Topology.Build.net);
  (* And the clone did change. *)
  Alcotest.(check bool) "clone accepted the route" true
    (Bgp.Prefix.Map.mem (Bgp.Prefix.of_string_exn "203.0.113.0/24") (Bgp.Speaker.loc_rib sp0))

let clones_are_independent () =
  let build = deploy_line 3 in
  let cut = make_cut build in
  let snap = take build cut 0 in
  let s1 = Snapshot.Store.spawn snap in
  let s2 = Snapshot.Store.spawn snap in
  let inject shadow prefix =
    (Snapshot.Store.speaker shadow 0).Bgp.Speaker.sp_inject_update
      ~from:(Bgp.Router.addr_of_node 1)
      { Bgp.Msg.withdrawn = [];
        attrs =
          Some
            (Bgp.Attr.make ~origin:Bgp.Attr.Igp
               ~as_path:[ Bgp.As_path.Seq [ Topology.Gao_rexford.asn_of_node 1 ] ]
               ~next_hop:(Bgp.Router.addr_of_node 1) ());
        nlri = [ Bgp.Prefix.of_string_exn prefix ] }
  in
  inject s1 "203.0.113.0/24";
  inject s2 "198.51.100.0/24";
  ignore (Snapshot.Store.run_to_quiescence s1);
  ignore (Snapshot.Store.run_to_quiescence s2);
  let has shadow prefix =
    Bgp.Prefix.Map.mem (Bgp.Prefix.of_string_exn prefix)
      (Bgp.Speaker.loc_rib (Snapshot.Store.speaker shadow 0))
  in
  Alcotest.(check bool) "s1 sees its input only" true
    (has s1 "203.0.113.0/24" && not (has s1 "198.51.100.0/24"));
  Alcotest.(check bool) "s2 sees its input only" true
    (has s2 "198.51.100.0/24" && not (has s2 "203.0.113.0/24"))

let checkpoint_cost_constant () =
  (* O(1) checkpointing: time to checkpoint must not scale with RIB
     size.  We assert a generous bound rather than measuring ratios. *)
  let build = deploy_line 3 in
  let sp = Topology.Build.speaker build 1 in
  (* Grow the RIB substantially. *)
  for i = 0 to 499 do
    sp.Bgp.Speaker.sp_inject_update ~from:(Bgp.Router.addr_of_node 0)
      { Bgp.Msg.withdrawn = [];
        attrs =
          Some
            (Bgp.Attr.make ~origin:Bgp.Attr.Igp
               ~as_path:[ Bgp.As_path.Seq [ Topology.Gao_rexford.asn_of_node 0 ] ]
               ~next_hop:(Bgp.Router.addr_of_node 0) ());
        nlri = [ Bgp.Prefix.make (Bgp.Ipv4.of_octets 203 (i lsr 8) (i land 255) 0) 24 ] }
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 1000 do
    ignore (Snapshot.Checkpoint.take ~at:Netsim.Time.zero sp)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "1000 checkpoints of a 500-route RIB in <0.1s (took %.4fs)" dt)
    true (dt < 0.1)

(* --- checkpoint serialization --- *)

let codec_roundtrip () =
  let build = deploy_line 3 in
  let sp = Topology.Build.speaker build 1 in
  let text = Snapshot.Codec.export sp in
  Alcotest.(check bool) "has route entries" true (Snapshot.Codec.route_entries text > 0);
  (* Import onto a fresh isolated network with the same node ids. *)
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  List.iter (fun id -> Netsim.Network.add_node net id (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.connect_sym net 1 2 Netsim.Link.ideal;
  match Snapshot.Codec.import ~net text with
  | Error msg -> Alcotest.fail msg
  | Ok clone ->
      (* Compare canonical bindings: Map structural equality depends on
         insertion order. *)
      let canon (rib : Bgp.Rib.t) =
        ( Bgp.Prefix.Map.bindings rib.Bgp.Rib.loc,
          List.map
            (fun (peer, pm) -> (peer, Bgp.Prefix.Map.bindings pm))
            (Bgp.Ipv4.Map.bindings rib.Bgp.Rib.adj_in),
          List.map
            (fun (peer, pm) -> (peer, Bgp.Prefix.Map.bindings pm))
            (Bgp.Ipv4.Map.bindings rib.Bgp.Rib.adj_out) )
      in
      Alcotest.(check bool) "identical rib view" true
        (canon (clone.Bgp.Speaker.sp_rib ()) = canon (sp.Bgp.Speaker.sp_rib ()));
      check (Alcotest.list (Alcotest.testable Bgp.Ipv4.pp Bgp.Ipv4.equal))
        "sessions restored"
        (sp.Bgp.Speaker.sp_established ())
        (clone.Bgp.Speaker.sp_established ())

let codec_cross_implementation () =
  (* Export a bird-like node, import it as a Sparrow: the selected
     routes survive the implementation change. *)
  let build = deploy_line 3 in
  let sp = Topology.Build.speaker build 1 in
  let text = Snapshot.Codec.export sp in
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  List.iter (fun id -> Netsim.Network.add_node net id (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.connect_sym net 1 2 Netsim.Link.ideal;
  match Snapshot.Codec.import ~impl:`Sparrow ~net text with
  | Error msg -> Alcotest.fail msg
  | Ok clone ->
      check Alcotest.string "implementation switched" "sparrow" clone.Bgp.Speaker.sp_impl;
      Alcotest.(check bool) "same Loc-RIB prefixes" true
        (List.map fst (Bgp.Prefix.Map.bindings (Bgp.Speaker.loc_rib clone))
        = List.map fst (Bgp.Prefix.Map.bindings (Bgp.Speaker.loc_rib sp)))

(* --- cuts under churn --- *)

let cut_aborts_on_dead_peer () =
  (* Node 2 (middle of the line) dies before the markers reach it: the
     deadline must fire and name every channel the sweep lost. *)
  let build = deploy_line 4 in
  let cut = make_cut build in
  Netsim.Network.set_node_down build.Topology.Build.net 2;
  match take_result ~deadline:(Netsim.Time.span_sec 30.) build cut 0 with
  | Snapshot.Cut.Complete _ -> Alcotest.fail "cut completed across a dead node"
  | Snapshot.Cut.Partial (snap, stalled) ->
      Alcotest.(check bool) "initiator checkpointed" true
        (List.mem_assoc 0 snap.Snapshot.Cut.checkpoints);
      Alcotest.(check bool) "dead node not checkpointed" false
        (List.mem_assoc 2 snap.Snapshot.Cut.checkpoints);
      (* Markers to and through node 2 never arrived: at least the two
         channels into the dead node's neighbors stall. *)
      Alcotest.(check bool) "stalled channels named" true
        (List.mem (2, 1) stalled && List.mem (2, 3) stalled);
      check Alcotest.int "controller idle after abort" 0 (Snapshot.Cut.active cut);
      check Alcotest.int "recorded as aborted" 1
        (List.length (Snapshot.Cut.aborted cut))

let partial_cut_spawns_shadow () =
  (* A partial snapshot must still be explorable: spawn it, replay, and
     let checkpointed speakers talk toward the missing (black-hole)
     nodes without raising. *)
  let build = deploy_line 4 in
  let cut = make_cut build in
  Netsim.Network.set_node_down build.Topology.Build.net 3;
  match take_result ~deadline:(Netsim.Time.span_sec 30.) build cut 0 with
  | Snapshot.Cut.Complete _ -> Alcotest.fail "cut completed across a dead node"
  | Snapshot.Cut.Partial (snap, _) ->
      let shadow = Snapshot.Store.spawn snap in
      let sp0 = Snapshot.Store.speaker shadow 0 in
      sp0.Bgp.Speaker.sp_inject_update ~from:(Bgp.Router.addr_of_node 1)
        { Bgp.Msg.withdrawn = [ Topology.Gao_rexford.prefix_of_node 3 ];
          attrs = None; nlri = [] };
      Alcotest.(check bool) "partial shadow quiesces" true
        (Snapshot.Store.run_to_quiescence shadow)

let cut_deadline_property =
  QCheck.Test.make ~count:30 ~name:"every cut settles by its deadline"
    QCheck.(pair (int_range 0 3) (int_range 0 4))
    (fun (initiator, victim) ->
      (* Kill an arbitrary node (possibly none, possibly the initiator's
         neighbor) mid-deployment, then initiate with a deadline: the
         cut must settle — Complete or Partial — and leave the active
         table empty. *)
      let build = deploy_line 4 in
      let cut = make_cut build in
      if victim < 4 && victim <> initiator then
        Netsim.Network.set_node_down build.Topology.Build.net victim;
      let settled = ref None in
      ignore
        (Snapshot.Cut.initiate cut ~deadline:(Netsim.Time.span_sec 20.)
           ~initiator ~on_result:(fun r -> settled := Some r));
      Topology.Build.run_for build (Netsim.Time.span_sec 60.);
      match !settled with
      | None -> false
      | Some r ->
          let ok_kind =
            match r with
            | Snapshot.Cut.Complete _ -> victim >= 4 || victim = initiator
            | Snapshot.Cut.Partial (_, stalled) -> stalled <> []
          in
          ok_kind && Snapshot.Cut.active cut = 0)

let codec_rejects_garbage () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Alcotest.(check bool) "bad header" true
    (Result.is_error (Snapshot.Codec.import ~net "not a checkpoint"));
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Snapshot.Codec.import ~net "dice-checkpoint v1\nnode 0\n"))

let suite =
  [ ("checkpoint: captures state immutably", `Quick, checkpoint_captures_state);
    ("codec: export/import roundtrip", `Quick, codec_roundtrip);
    ("codec: cross-implementation import", `Quick, codec_cross_implementation);
    ("codec: rejects garbage", `Quick, codec_rejects_garbage);
    ("cut: completes over all nodes", `Quick, cut_completes_with_all_nodes);
    ("cut: concurrent snapshots", `Quick, concurrent_cuts);
    ("cut: consistency with in-flight messages", `Quick, cut_captures_in_flight);
    ("cut: aborts on dead peer, names stalled channels", `Quick, cut_aborts_on_dead_peer);
    ("cut: partial snapshot still spawns a shadow", `Quick, partial_cut_spawns_shadow);
    QCheck_alcotest.to_alcotest cut_deadline_property;
    ("store: shadow isolation", `Quick, shadow_isolation);
    ("store: clones are independent", `Quick, clones_are_independent);
    ("checkpoint: O(1) cost", `Quick, checkpoint_cost_constant) ]
