(* Unit and property tests for the discrete-event simulator. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Time                                                                *)
(* ------------------------------------------------------------------ *)

let time_units () =
  check Alcotest.int "ms" 5_000 (Netsim.Time.to_us (Netsim.Time.of_ms 5));
  check Alcotest.int "sec" 1_500_000 (Netsim.Time.to_us (Netsim.Time.of_sec 1.5));
  check (Alcotest.float 1e-9) "roundtrip" 2.25
    (Netsim.Time.to_sec (Netsim.Time.of_sec 2.25))

let time_add_clips () =
  let t = Netsim.Time.of_us 100 in
  check Alcotest.int "negative span clips at zero" 0
    (Netsim.Time.to_us (Netsim.Time.add t (-500)));
  check Alcotest.int "diff" 70 (Netsim.Time.diff t (Netsim.Time.of_us 30))

let time_rejects_negative () =
  Alcotest.check_raises "of_us" (Invalid_argument "Time.of_us: negative") (fun () ->
      ignore (Netsim.Time.of_us (-1)))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Netsim.Rng.create 7 and b = Netsim.Rng.create 7 in
  let xs = List.init 20 (fun _ -> Netsim.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Netsim.Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" xs ys

let rng_split_independent () =
  let root = Netsim.Rng.create 7 in
  let child = Netsim.Rng.split root in
  let xs = List.init 10 (fun _ -> Netsim.Rng.int child 1000) in
  (* Splitting again from the advanced root gives a different child. *)
  let child2 = Netsim.Rng.split root in
  let ys = List.init 10 (fun _ -> Netsim.Rng.int child2 1000) in
  Alcotest.(check bool) "children differ" true (xs <> ys)

let rng_bounds =
  QCheck.Test.make ~name:"rng: int_in stays in range" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Netsim.Rng.create seed in
      let v = Netsim.Rng.int_in rng lo hi in
      v >= lo && v <= hi)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let pqueue_orders () =
  let q = Netsim.Pqueue.create () in
  List.iter (fun p -> Netsim.Pqueue.push q ~prio:p p) [ 5; 1; 4; 1; 3 ];
  let rec drain acc =
    match Netsim.Pqueue.pop q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 1; 3; 4; 5 ] (drain [])

let pqueue_stable () =
  let q = Netsim.Pqueue.create () in
  List.iteri (fun i name -> ignore i; Netsim.Pqueue.push q ~prio:7 name)
    [ "a"; "b"; "c"; "d" ];
  let rec drain acc =
    match Netsim.Pqueue.pop q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  check (Alcotest.list Alcotest.string) "insertion order on ties" [ "a"; "b"; "c"; "d" ]
    (drain [])

let pqueue_model =
  QCheck.Test.make ~name:"pqueue: pop sequence equals stable sort" ~count:200
    QCheck.(list small_int)
    (fun prios ->
      let q = Netsim.Pqueue.create () in
      List.iteri (fun i p -> Netsim.Pqueue.push q ~prio:p (p, i)) prios;
      let rec drain acc =
        match Netsim.Pqueue.pop q with
        | Some (_, v) -> drain (v :: acc)
        | None -> List.rev acc
      in
      let got = drain [] in
      let expected =
        List.stable_sort
          (fun (p1, _) (p2, _) -> Int.compare p1 p2)
          (List.mapi (fun i p -> (p, i)) prios)
      in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let engine_ordering () =
  let eng = Netsim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Netsim.Engine.schedule eng ~after:300 (note "c"));
  ignore (Netsim.Engine.schedule eng ~after:100 (note "a"));
  ignore (Netsim.Engine.schedule eng ~after:200 (note "b"));
  Netsim.Engine.run eng;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  check Alcotest.int "clock at last event" 300 (Netsim.Time.to_us (Netsim.Engine.now eng))

let engine_cancel () =
  let eng = Netsim.Engine.create () in
  let fired = ref false in
  let timer = Netsim.Engine.schedule eng ~after:100 (fun () -> fired := true) in
  check Alcotest.int "pending before" 1 (Netsim.Engine.pending eng);
  Netsim.Engine.cancel timer;
  check Alcotest.int "pending after cancel" 0 (Netsim.Engine.pending eng);
  Netsim.Engine.run eng;
  Alcotest.(check bool) "did not fire" false !fired

let engine_until () =
  let eng = Netsim.Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Netsim.Engine.schedule eng ~after:1000 tick)
  in
  ignore (Netsim.Engine.schedule eng ~after:1000 tick);
  Netsim.Engine.run ~until:(Netsim.Time.of_us 5500) eng;
  check Alcotest.int "5 ticks within horizon" 5 !count;
  check Alcotest.int "clock advanced to horizon" 5500
    (Netsim.Time.to_us (Netsim.Engine.now eng))

let engine_nested_schedule () =
  let eng = Netsim.Engine.create () in
  let log = ref [] in
  ignore
    (Netsim.Engine.schedule eng ~after:10 (fun () ->
         log := "outer" :: !log;
         ignore (Netsim.Engine.schedule eng ~after:0 (fun () -> log := "inner" :: !log))));
  Netsim.Engine.run eng;
  check (Alcotest.list Alcotest.string) "inner after outer" [ "outer"; "inner" ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Link                                                                *)
(* ------------------------------------------------------------------ *)

let link_delay_bounds () =
  let rng = Netsim.Rng.create 3 in
  let link = Netsim.Link.make ~jitter:500 ~loss:0.2 ~retransmit:1000 2000 in
  for _ = 1 to 200 do
    let d = Netsim.Link.delay link rng in
    Alcotest.(check bool) "within [lat, lat+jit+8*rtx]" true (d >= 2000 && d <= 2000 + 500 + (8 * 1000))
  done

let link_rejects_bad_loss () =
  Alcotest.check_raises "loss 1.0" (Invalid_argument "Link.make: loss must be in [0,1)")
    (fun () -> ignore (Netsim.Link.make ~loss:1.0 100))

let link_max_retries () =
  (* The retry cap bounds loss-induced delay: with max_retries = 0 a
     lossy link degenerates to latency+jitter; a custom cap raises the
     worst case proportionally. *)
  let rng = Netsim.Rng.create 5 in
  let none = Netsim.Link.make ~loss:0.9 ~retransmit:1000 ~max_retries:0 2000 in
  for _ = 1 to 100 do
    check Alcotest.int "no retries, pure latency" 2000 (Netsim.Link.delay none rng)
  done;
  let capped = Netsim.Link.make ~loss:0.9 ~retransmit:1000 ~max_retries:3 2000 in
  for _ = 1 to 200 do
    let d = Netsim.Link.delay capped rng in
    Alcotest.(check bool) "within [lat, lat+3*rtx]" true (d >= 2000 && d <= 2000 + (3 * 1000))
  done;
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Link.make: negative max_retries") (fun () ->
      ignore (Netsim.Link.make ~max_retries:(-1) 100))

(* ------------------------------------------------------------------ *)
(* Trace / Stats                                                       *)
(* ------------------------------------------------------------------ *)

let trace_ring () =
  let tr = Netsim.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Netsim.Trace.emit tr ~at:(Netsim.Time.of_us i) ~node:0 ~kind:"k" (string_of_int i)
  done;
  check Alcotest.int "total counts all" 6 (Netsim.Trace.total tr);
  check Alcotest.int "retains capacity" 4 (Netsim.Trace.length tr);
  let kept = List.map (fun (r : Netsim.Trace.record) -> r.Netsim.Trace.detail) (Netsim.Trace.to_list tr) in
  check (Alcotest.list Alcotest.string) "oldest evicted" [ "3"; "4"; "5"; "6" ] kept

let stats_basics () =
  let s = Netsim.Stats.create () in
  Netsim.Stats.incr s "x";
  Netsim.Stats.add s "x" 4;
  check Alcotest.int "counter" 5 (Netsim.Stats.get s "x");
  check Alcotest.int "absent counter" 0 (Netsim.Stats.get s "y");
  List.iter (Netsim.Stats.observe s "d") [ 1.; 2.; 3.; 4. ];
  check (Alcotest.float 1e-9) "mean" 2.5 (Netsim.Stats.mean s "d");
  check (Alcotest.float 1e-9) "p50" 2. (Netsim.Stats.percentile s "d" 0.5);
  check (Alcotest.float 1e-9) "max" 4. (Netsim.Stats.max_value s "d")

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let network_fifo =
  QCheck.Test.make ~name:"network: channels are FIFO under jitter" ~count:50
    QCheck.(pair small_int (int_bound 30))
    (fun (seed, n) ->
      let n = max 2 n in
      let eng = Netsim.Engine.create ~seed () in
      let net = Netsim.Network.create eng in
      let received = ref [] in
      Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
      Netsim.Network.add_node net 1 (fun ~src:_ m -> received := m :: !received);
      Netsim.Network.connect net 0 1
        (Netsim.Link.make ~jitter:(Netsim.Time.span_ms 50) (Netsim.Time.span_ms 10));
      for i = 1 to n do
        Netsim.Network.send net ~src:0 ~dst:1 (string_of_int i)
      done;
      Netsim.Engine.run eng;
      List.rev !received = List.init n (fun i -> string_of_int (i + 1)))

let network_counts () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ _ -> ());
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.send net ~src:0 ~dst:1 "hello";
  check Alcotest.int "in flight" 1 (Netsim.Network.in_flight net);
  Netsim.Engine.run eng;
  check Alcotest.int "delivered" 1 (Netsim.Network.messages_delivered net);
  check Alcotest.int "in flight drained" 0 (Netsim.Network.in_flight net);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "channels"
    [ (0, 1); (1, 0) ] (Netsim.Network.channels net)

let network_tap_and_control () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ _ -> ());
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  let tapped = ref [] and controls = ref [] in
  Netsim.Network.set_delivery_tap net (Some (fun ~dst ~src msg -> tapped := (src, dst, msg) :: !tapped));
  Netsim.Network.set_control_handler net (fun ~self ~src c ->
      match c with
      | Netsim.Network.Marker { snapshot; _ } -> controls := (src, self, snapshot) :: !controls);
  Netsim.Network.send net ~src:0 ~dst:1 "data";
  Netsim.Network.send_control net ~src:0 ~dst:1
    (Netsim.Network.Marker { snapshot = 42; initiator = 0 });
  Netsim.Engine.run eng;
  check (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.string))
    "tap saw the data message" [ (0, 1, "data") ] !tapped;
  check (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int))
    "control handler saw the marker" [ (0, 1, 42) ] !controls;
  check Alcotest.int "marker not counted as data" 1 (Netsim.Network.messages_delivered net)

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let churn_rig () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  let received = ref [] in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ m -> received := m :: !received);
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  (eng, net, received)

let node_down_drops () =
  let eng, net, received = churn_rig () in
  (* Down destination: deliveries vanish. *)
  Netsim.Network.set_node_down net 1;
  Netsim.Network.send net ~src:0 ~dst:1 "a";
  Netsim.Engine.run eng;
  check Alcotest.int "nothing delivered" 0 (Netsim.Network.messages_delivered net);
  check Alcotest.int "drop counted" 1 (Netsim.Network.messages_dropped net);
  (* Down source: sends are silenced even though its timers run. *)
  Netsim.Network.set_node_up net 1;
  Netsim.Network.set_node_down net 0;
  Netsim.Network.send net ~src:0 ~dst:1 "b";
  Netsim.Engine.run eng;
  check Alcotest.int "still nothing" 0 (Netsim.Network.messages_delivered net);
  (* Recovery restores normal delivery; nothing lost is replayed. *)
  Netsim.Network.set_node_up net 0;
  Netsim.Network.send net ~src:0 ~dst:1 "c";
  Netsim.Engine.run eng;
  check (Alcotest.list Alcotest.string) "only the post-recovery message" [ "c" ]
    (List.rev !received)

let node_down_mid_flight () =
  (* The destination fails while the message is on the wire: delivery
     consults node state at arrival time, not send time. *)
  let eng, net, _received = churn_rig () in
  Netsim.Network.send net ~src:0 ~dst:1 "doomed";
  Netsim.Network.set_node_down net 1;
  Netsim.Engine.run eng;
  check Alcotest.int "dropped at arrival" 1 (Netsim.Network.messages_dropped net);
  check Alcotest.int "in-flight accounting drained" 0 (Netsim.Network.in_flight net)

let link_down_policies () =
  let eng, net, received = churn_rig () in
  (* Drop policy: traffic on a down link is lost. *)
  Netsim.Network.set_link_down net 0 1;
  Alcotest.(check bool) "link reported down" false (Netsim.Network.link_is_up net 0 1);
  Alcotest.(check bool) "reverse direction untouched" true
    (Netsim.Network.link_is_up net 1 0);
  Netsim.Network.send net ~src:0 ~dst:1 "lost";
  Netsim.Engine.run eng;
  check Alcotest.int "dropped" 1 (Netsim.Network.messages_dropped net);
  Netsim.Network.set_link_up net 0 1;
  (* Queue policy: traffic is held and redelivered in order on recovery. *)
  Netsim.Network.set_link_down ~policy:Netsim.Network.Queue_while_down net 0 1;
  List.iter (fun m -> Netsim.Network.send net ~src:0 ~dst:1 m) [ "1"; "2"; "3" ];
  Netsim.Engine.run eng;
  check (Alcotest.list Alcotest.string) "held while down" [] (List.rev !received);
  Netsim.Network.set_link_up net 0 1;
  Netsim.Engine.run eng;
  check (Alcotest.list Alcotest.string) "flushed in FIFO order" [ "1"; "2"; "3" ]
    (List.rev !received)

let queue_policy_preserves_fifo_with_in_flight () =
  (* A message already in flight when the link fails is queued at its
     arrival instant; messages sent while down queue behind it; the
     flush keeps the original order. *)
  let eng, net, received = churn_rig () in
  Netsim.Network.send net ~src:0 ~dst:1 "a";
  Netsim.Network.set_link_down ~policy:Netsim.Network.Queue_while_down net 0 1;
  Netsim.Network.send net ~src:0 ~dst:1 "b";
  Netsim.Network.send net ~src:0 ~dst:1 "c";
  Netsim.Engine.run eng;
  check (Alcotest.list Alcotest.string) "all held" [] (List.rev !received);
  Netsim.Network.set_link_up net 0 1;
  Netsim.Engine.run eng;
  check (Alcotest.list Alcotest.string) "order preserved across the outage"
    [ "a"; "b"; "c" ] (List.rev !received);
  check Alcotest.int "nothing dropped" 0 (Netsim.Network.messages_dropped net)

let partition_and_heal () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  let got = ref [] in
  List.iter
    (fun id -> Netsim.Network.add_node net id (fun ~src m -> got := (src, id, m) :: !got))
    [ 0; 1; 2; 3 ];
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.connect_sym net 1 2 Netsim.Link.ideal;
  Netsim.Network.connect_sym net 2 3 Netsim.Link.ideal;
  Netsim.Network.partition net [ 0; 1 ] [ 2; 3 ];
  (* Intra-side channel unaffected, cross-side channels cut both ways. *)
  Alcotest.(check bool) "0->1 up" true (Netsim.Network.link_is_up net 0 1);
  Alcotest.(check bool) "1->2 down" false (Netsim.Network.link_is_up net 1 2);
  Alcotest.(check bool) "2->1 down" false (Netsim.Network.link_is_up net 2 1);
  Netsim.Network.send net ~src:1 ~dst:2 "cross";
  Netsim.Network.send net ~src:0 ~dst:1 "intra";
  Netsim.Engine.run eng;
  check Alcotest.int "cross-partition message dropped" 1
    (Netsim.Network.messages_dropped net);
  check Alcotest.int "intra-side message delivered" 1
    (Netsim.Network.messages_delivered net);
  Netsim.Network.heal net;
  Alcotest.(check bool) "healed" true (Netsim.Network.link_is_up net 1 2);
  Netsim.Network.send net ~src:1 ~dst:2 "after";
  Netsim.Engine.run eng;
  check Alcotest.int "delivered after heal" 2 (Netsim.Network.messages_delivered net)

let churn_schedule_timing () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ _ -> ());
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  let schedule =
    Netsim.Churn.crash ~node:1 ~at:(Netsim.Time.span_ms 10)
      ~restore_after:(Netsim.Time.span_ms 10) ()
    @ Netsim.Churn.flap ~a:0 ~b:1 ~from_:(Netsim.Time.span_ms 40)
        ~every:(Netsim.Time.span_ms 20) ~down_for:(Netsim.Time.span_ms 5) ~times:2
  in
  check Alcotest.int "one crash" 1 (Netsim.Churn.node_crashes schedule);
  check Alcotest.int "two flaps" 2 (Netsim.Churn.link_downs schedule);
  ignore (Netsim.Churn.apply net schedule);
  let up_at ms =
    Netsim.Engine.run ~until:(Netsim.Time.of_ms ms) eng;
    (Netsim.Network.node_is_up net 1, Netsim.Network.link_is_up net 0 1)
  in
  check (Alcotest.pair Alcotest.bool Alcotest.bool) "t=5ms: healthy" (true, true) (up_at 5);
  check (Alcotest.pair Alcotest.bool Alcotest.bool) "t=15ms: node down" (false, true) (up_at 15);
  check (Alcotest.pair Alcotest.bool Alcotest.bool) "t=25ms: node restored" (true, true) (up_at 25);
  check (Alcotest.pair Alcotest.bool Alcotest.bool) "t=42ms: link flapped down" (true, false) (up_at 42);
  check (Alcotest.pair Alcotest.bool Alcotest.bool) "t=47ms: link back" (true, true) (up_at 47);
  check (Alcotest.pair Alcotest.bool Alcotest.bool) "t=62ms: second flap" (true, false) (up_at 62);
  check (Alcotest.pair Alcotest.bool Alcotest.bool) "t=70ms: stable" (true, true) (up_at 70);
  (* Symmetric application. *)
  Netsim.Engine.run ~until:(Netsim.Time.of_ms 62) eng;
  Alcotest.(check bool) "flap was symmetric" true
    (Netsim.Network.link_is_up net 1 0)

let churn_random_deterministic () =
  let mk () =
    Netsim.Churn.random
      ~rng:(Netsim.Rng.create 99)
      ~nodes:[ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
      ~links:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
      ~start:0
      ~duration:(Netsim.Time.span_sec 10.)
      ~node_fraction:0.3 ~link_fraction:0.4 ()
  in
  let s1 = mk () and s2 = mk () in
  Alcotest.(check bool) "same seed, same schedule" true (s1 = s2);
  check Alcotest.int "30% of 10 nodes crash" 3 (Netsim.Churn.node_crashes s1);
  check Alcotest.int "2 links x 2 flaps" 4 (Netsim.Churn.link_downs s1)

let suite =
  [ ("time: units", `Quick, time_units);
    ("time: add clips, diff", `Quick, time_add_clips);
    ("time: rejects negative", `Quick, time_rejects_negative);
    ("rng: deterministic", `Quick, rng_deterministic);
    ("rng: split independence", `Quick, rng_split_independent);
    qtest rng_bounds;
    ("pqueue: orders by priority", `Quick, pqueue_orders);
    ("pqueue: stable on ties", `Quick, pqueue_stable);
    qtest pqueue_model;
    ("engine: time ordering", `Quick, engine_ordering);
    ("engine: cancel", `Quick, engine_cancel);
    ("engine: bounded run", `Quick, engine_until);
    ("engine: nested scheduling", `Quick, engine_nested_schedule);
    ("link: delay bounds", `Quick, link_delay_bounds);
    ("link: rejects loss >= 1", `Quick, link_rejects_bad_loss);
    ("link: max_retries cap", `Quick, link_max_retries);
    ("trace: bounded ring", `Quick, trace_ring);
    ("stats: counters and distributions", `Quick, stats_basics);
    qtest network_fifo;
    ("network: counters and channels", `Quick, network_counts);
    ("network: tap and control plane", `Quick, network_tap_and_control);
    ("churn: node down drops and silences", `Quick, node_down_drops);
    ("churn: node fails mid-flight", `Quick, node_down_mid_flight);
    ("churn: link drop and queue policies", `Quick, link_down_policies);
    ("churn: queue policy keeps FIFO", `Quick, queue_policy_preserves_fifo_with_in_flight);
    ("churn: partition and heal", `Quick, partition_and_heal);
    ("churn: schedule fires on time", `Quick, churn_schedule_timing);
    ("churn: random schedule deterministic", `Quick, churn_random_deterministic) ]
