(* The diagnosis-and-repair engine: localization, symbolization, the
   solver-driven patch search, and the dice-repair/1 record. *)

let check = Alcotest.check
let p = Bgp.Prefix.of_string_exn

(* The minimized origin-hijack repro the fuzzer files: two gadget
   nodes, one operator-error mutation originating someone else's
   prefix. *)
let hijack_scenario =
  Triage.Scenario.Deploy
    { Triage.Scenario.dp_topo = Triage.Scenario.Gadget;
      dp_keep = Some [ 0; 9 ];
      dp_seed = 1;
      dp_inject = None;
      dp_settle_sec = 0.;
      dp_churn = [];
      dp_mangle = None;
      dp_confuzz =
        [ Confuzz.Mutation.Originate_foreign
            { node = 9; prefix = p "192.0.0.0/24" } ];
      dp_cascade = false;
      dp_mode = Triage.Scenario.Direct { dr_node = 9; dr_peer = 0; dr_input = None } }

(* The bad-gadget dispute wheel: the injected pin entries (seq 5 on
   each cycle node's FROM-PEER map) sustain the oscillation. *)
let dispute_scenario =
  Triage.Scenario.Deploy
    { Triage.Scenario.dp_topo = Triage.Scenario.Bad_gadget;
      dp_keep = None;
      dp_seed = 7;
      dp_inject =
        Some (Dice.Inject.Policy_dispute { cycle = [ 1; 2; 3 ]; victim = 0 });
      dp_settle_sec = 0.;
      dp_churn = [];
      dp_mangle = None;
      dp_confuzz = [];
      dp_cascade = false;
      dp_mode = Triage.Scenario.Direct { dr_node = 0; dr_peer = 0; dr_input = None } }

let find_target cls scenario =
  let outcome = Triage.Scenario.run scenario in
  match
    List.find_opt
      (fun sg -> sg.Dice.Signature.sg_class = cls)
      outcome.Triage.Scenario.o_signatures
  with
  | Some sg -> sg
  | None -> Alcotest.failf "scenario does not detect a %s fault"
              (Dice.Fault.class_to_string cls)

let localize_finds_mutated_site () =
  let target = find_target Dice.Fault.Operator_mistake hijack_scenario in
  match Repair.Localize.run ~target hijack_scenario with
  | Error e -> Alcotest.failf "localize failed: %s" e
  | Ok ev ->
      Alcotest.(check bool) "baseline contains the target" true
        (List.exists (Dice.Signature.equal target) ev.Repair.Localize.ev_baseline);
      (match ev.Repair.Localize.ev_suspects with
      | top :: _ ->
          check Alcotest.string "mutated network statement ranked first"
            "n9/net/192.0.0.0/24"
            (Repair.Localize.site_id top.Repair.Localize.su_site)
      | [] -> Alcotest.fail "no suspects")

let localize_negative_evidence () =
  let target = find_target Dice.Fault.Policy_conflict dispute_scenario in
  match Repair.Localize.run ~target dispute_scenario with
  | Error e -> Alcotest.failf "localize failed: %s" e
  | Ok ev -> (
      let policy_sites =
        List.filter_map
          (fun su ->
            match su.Repair.Localize.su_site with
            | Repair.Localize.Policy_site { ps_node; ps_map; ps_seq } ->
                Some (su.Repair.Localize.su_site, (ps_node, ps_map, ps_seq))
            | _ -> None)
          ev.Repair.Localize.ev_suspects
      in
      match policy_sites with
      | [] -> Alcotest.fail "no policy suspects"
      | (site, (node, map, seq)) :: _ -> (
          (* a coverage report claiming the entry's action never fired
             excludes it outright *)
          let action_id = Printf.sprintf "n%d/%s/e%d/act" node map seq in
          match
            Repair.Localize.run ~negative:[ action_id ] ~target dispute_scenario
          with
          | Error e -> Alcotest.failf "negative localize failed: %s" e
          | Ok ev' ->
              Alcotest.(check bool) "uncovered site excluded" false
                (List.exists
                   (fun su ->
                     Repair.Localize.compare_site su.Repair.Localize.su_site site
                     = 0)
                   ev'.Repair.Localize.ev_suspects)))

let repair_hijack_end_to_end () =
  let target = find_target Dice.Fault.Operator_mistake hijack_scenario in
  match Repair.Search.run ~target hijack_scenario with
  | Error e -> Alcotest.failf "search failed: %s" e
  | Ok o -> (
      match o.Repair.Search.re_verified with
      | None -> Alcotest.fail "hijack must be repairable"
      | Some c ->
          Alcotest.(check bool) "patch is the inverse network-drop" true
            (c.Repair.Search.ca_patch
            = [ Confuzz.Mutation.Network_drop
                  { node = 9; prefix = p "192.0.0.0/24" } ]);
          (* the verifier's claim holds on an independent replay *)
          let o' =
            Triage.Scenario.run
              (Repair.Search.patched_scenario hijack_scenario
                 c.Repair.Search.ca_patch)
          in
          Alcotest.(check bool) "target signature gone" false
            (List.exists (Dice.Signature.equal target)
               o'.Triage.Scenario.o_signatures))

let repair_dispute_end_to_end () =
  let target = find_target Dice.Fault.Policy_conflict dispute_scenario in
  match Repair.Search.run ~target dispute_scenario with
  | Error e -> Alcotest.failf "search failed: %s" e
  | Ok o -> (
      match o.Repair.Search.re_verified with
      | None -> Alcotest.fail "dispute wheel must be repairable"
      | Some c ->
          Alcotest.(check bool) "patch is non-empty" true
            (c.Repair.Search.ca_patch <> []);
          let o' =
            Triage.Scenario.run
              (Repair.Search.patched_scenario dispute_scenario
                 c.Repair.Search.ca_patch)
          in
          Alcotest.(check bool) "oscillation repaired" false
            (List.exists (Dice.Signature.equal target)
               o'.Triage.Scenario.o_signatures);
          Alcotest.(check bool) "no new signatures" true
            (List.for_all
               (fun sg ->
                 List.exists (Dice.Signature.equal sg)
                   o.Repair.Search.re_evidence.Repair.Localize.ev_baseline)
               o'.Triage.Scenario.o_signatures))

let repair_deterministic () =
  let target = find_target Dice.Fault.Operator_mistake hijack_scenario in
  let record () =
    match Repair.Search.run ~target hijack_scenario with
    | Error e -> Alcotest.failf "search failed: %s" e
    | Ok o -> Telemetry.Json.to_string (Repair.Report.of_outcome o)
  in
  let r1 = record () in
  let r2 = record () in
  check Alcotest.string "repair twice, byte-identical records" r1 r2

let report_record_validates () =
  let target = find_target Dice.Fault.Operator_mistake hijack_scenario in
  match Repair.Search.run ~target hijack_scenario with
  | Error e -> Alcotest.failf "search failed: %s" e
  | Ok o ->
      let r = Repair.Report.of_outcome o in
      (match Repair.Report.validate r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "record invalid: %s" e);
      check Alcotest.string "status" "verified" (Repair.Report.status r);
      Alcotest.(check bool) "schema mismatch rejected" true
        (Result.is_error
           (Repair.Report.validate
              (Telemetry.Json.Obj
                 [ ("schema", Telemetry.Json.String "dice-repair/0") ])));
      Alcotest.(check bool) "status enum enforced" true
        (Result.is_error
           (Repair.Report.validate
              (Telemetry.Json.Obj
                 [ ("schema", Telemetry.Json.String "dice-repair/1");
                   ("status", Telemetry.Json.String "maybe") ])))

let unrepairable_class_rejected () =
  let bogus =
    Dice.Signature.make ~node:1 ~property:"handler-crash"
      Dice.Fault.Programming_error "crash"
  in
  Alcotest.(check bool) "programming errors are not config bugs" true
    (Result.is_error (Repair.Search.run ~target:bogus hijack_scenario));
  let cascade =
    Dice.Signature.make ~node:1 ~property:"route-oscillation" Dice.Fault.Cascade
      "flap"
  in
  Alcotest.(check bool) "cascades are diagnosed, not patched" true
    (Result.is_error (Repair.Search.run ~target:cascade hijack_scenario))

let with_temp_dir f =
  let dir = Filename.temp_file "repair-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let auto_triage_repairs_after_filing () =
  with_temp_dir @@ fun dir ->
  let outcome = Triage.Scenario.run hijack_scenario in
  let fault =
    match
      List.find_opt
        (fun f -> f.Dice.Fault.f_class = Dice.Fault.Operator_mistake)
        outcome.Triage.Scenario.o_faults
    with
    | Some f -> f
    | None -> Alcotest.fail "hijack fault not detected"
  in
  let repair scenario sg =
    match Repair.Search.run ~target:sg scenario with
    | Ok o -> Some (Repair.Report.of_outcome o)
    | Error _ -> None
  in
  let graph =
    match hijack_scenario with
    | Triage.Scenario.Deploy d -> Triage.Scenario.graph_of d
    | _ -> assert false
  in
  let collector =
    Triage.Auto.collector ~minimize:false ~repair ~corpus_dir:dir
      ~scenario:hijack_scenario ~graph ()
  in
  match Triage.Auto.file_fault collector fault with
  | None -> Alcotest.fail "collector skipped a fresh fault"
  | Some filed -> (
      match filed.Triage.Auto.fd_entry with
      | None -> Alcotest.fail "fault not filed"
      | Some entry ->
          check Alcotest.string "entry carries a verified repair" "verified"
            (Triage.Corpus.repair_status_name
               (Triage.Corpus.repair_status entry));
          (* and the patched scenario decodes straight from the corpus *)
          (match Triage.Corpus.patched_scenario entry with
          | Some patched ->
              let o = Triage.Scenario.run patched in
              Alcotest.(check bool) "corpus patch kills the signature" false
                (List.exists
                   (Dice.Signature.equal filed.Triage.Auto.fd_signature)
                   o.Triage.Scenario.o_signatures)
          | None -> Alcotest.fail "verified entry must yield a patched scenario"))

let suite =
  [ ("localize: hijack names the network statement", `Quick,
     localize_finds_mutated_site);
    ("localize: uncovered clause ids exclude sites", `Quick,
     localize_negative_evidence);
    ("search: origin hijack repaired end-to-end", `Quick,
     repair_hijack_end_to_end);
    ("search: dispute wheel repaired end-to-end", `Quick,
     repair_dispute_end_to_end);
    ("search: repair is deterministic", `Quick, repair_deterministic);
    ("report: record validates", `Quick, report_record_validates);
    ("search: unrepairable classes rejected", `Quick,
     unrepairable_class_rejected);
    ("auto: repair hook runs after filing", `Slow,
     auto_triage_repairs_after_filing) ]
