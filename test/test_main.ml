let () =
  Alcotest.run "dice"
    [ ("netsim", Test_netsim.suite);
      ("prefix", Test_prefix.suite);
      ("attrs", Test_attrs.suite);
      ("wire", Test_wire.suite);
      ("fsm", Test_fsm.suite);
      ("policy", Test_policy.suite);
      ("decision", Test_decision.suite);
      ("config", Test_config.suite);
      ("rib", Test_rib.suite);
      ("router", Test_router.suite);
      ("sparrow", Test_sparrow.suite);
      ("topology", Test_topology.suite);
      ("concolic", Test_concolic.suite);
      ("snapshot", Test_snapshot.suite);
      ("dice", Test_dice.suite);
      ("parallel", Test_parallel.suite);
      ("churn", Test_churn.suite);
      ("mangler", Test_mangler.suite);
      ("misc", Test_misc.suite);
      ("triage", Test_triage.suite);
      ("confuzz", Test_confuzz.suite);
      ("telemetry", Test_telemetry.suite);
      ("scale", Test_scale.suite);
      ("benchgate", Test_benchgate.suite);
      ("cascade", Test_cascade.suite);
      ("campaign", Test_campaign.suite);
      ("repair", Test_repair.suite) ]
