(* Heterogeneity: the Sparrow implementation, alone and in mixed
   deployments with the bird-like reference implementation. *)

let check = Alcotest.check

let p = Bgp.Prefix.of_string_exn

(* A line of n ASes; [sparrow_nodes] run the second implementation. *)
let deploy_line ?(sparrow_nodes = []) n =
  let nodes =
    List.init n (fun i ->
        (i, if i = 0 then Topology.Graph.Tier1 else Topology.Graph.Transit))
  in
  let edges =
    List.init (n - 1) (fun i ->
        { Topology.Graph.a = i + 1; b = i; rel = Topology.Graph.Customer_provider })
  in
  let g = Topology.Graph.make ~nodes ~edges in
  let build = Topology.Build.deploy ~sparrow_nodes g in
  Topology.Build.start_all build;
  (g, build)

let sparrow_pair_converges () =
  let _, build = deploy_line ~sparrow_nodes:[ 0; 1 ] 2 in
  Alcotest.(check bool) "converges" true (Topology.Build.converge build);
  check Alcotest.int "both learn both prefixes" 4 (Topology.Build.total_loc_routes build);
  check Alcotest.int "sessions up" 2 (Topology.Build.established_sessions build)

let mixed_chain_converges () =
  let _, build = deploy_line ~sparrow_nodes:[ 1; 3 ] 5 in
  Alcotest.(check bool) "converges" true (Topology.Build.converge build);
  check Alcotest.int "full reachability" 25 (Topology.Build.total_loc_routes build);
  List.iter
    (fun (id, sp) ->
      check Alcotest.string
        (Printf.sprintf "node %d implementation" id)
        (if List.mem id [ 1; 3 ] then "sparrow" else "bird-like")
        sp.Bgp.Speaker.sp_impl)
    build.Topology.Build.speakers

let mixed_withdrawal_propagates () =
  let _, build = deploy_line ~sparrow_nodes:[ 1; 3 ] 5 in
  assert (Topology.Build.converge build);
  (* Withdraw the far end's prefix; it crosses both implementations. *)
  let sp4 = Topology.Build.speaker build 4 in
  let cfg = sp4.Bgp.Speaker.sp_config () in
  sp4.Bgp.Speaker.sp_set_config { cfg with Bgp.Config.networks = [] };
  assert (Topology.Build.converge build);
  let sp0 = Topology.Build.speaker build 0 in
  Alcotest.(check bool) "withdrawal crossed a sparrow hop" false
    (Bgp.Prefix.Map.mem (Topology.Gao_rexford.prefix_of_node 4) (Bgp.Speaker.loc_rib sp0))

let mixed_demo27_converges () =
  let graph = Topology.Demo27.graph in
  (* Run every third AS on Sparrow. *)
  let sparrow_nodes = List.filter (fun i -> i mod 3 = 1) (Topology.Graph.node_ids graph) in
  let build = Topology.Build.deploy ~sparrow_nodes graph in
  Topology.Build.start_all build;
  Alcotest.(check bool) "mixed 27-AS deployment converges" true
    (Topology.Build.converge build);
  check Alcotest.int "full reachability" (27 * 27) (Topology.Build.total_loc_routes build)

(* A corrupted UPDATE that still frames correctly: the bad byte is the
   ORIGIN value, a path-attribute error (RFC 7606 territory). *)
let corrupt_origin_update () =
  let attrs =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq [ Topology.Gao_rexford.asn_of_node 0 ] ]
      ~next_hop:(Bgp.Router.addr_of_node 0) ()
  in
  let raw =
    Bgp.Wire.encode
      (Bgp.Msg.Update { withdrawn = []; attrs = Some attrs; nlri = [ p "203.0.113.0/24" ] })
  in
  let b = Bytes.of_string raw in
  Bytes.set b 26 '\xee';
  Bytes.to_string b

let sparrow_treats_malformed_as_withdraw () =
  let _, build = deploy_line ~sparrow_nodes:[ 1 ] 2 in
  assert (Topology.Build.converge build);
  let sp1 = Topology.Build.speaker build 1 in
  (* Attribute error on a live session: Sparrow must withdraw the NLRI
     and keep the session, like the reference implementation. *)
  sp1.Bgp.Speaker.sp_process_raw ~from_node:0 (corrupt_origin_update ());
  check Alcotest.int "treat-as-withdraw counted" 1
    (Netsim.Stats.get (sp1.Bgp.Speaker.sp_stats ()) "rx_treat_as_withdraw");
  check Alcotest.int "not counted as malformed" 0
    (Netsim.Stats.get (sp1.Bgp.Speaker.sp_stats ()) "rx_malformed");
  check (Alcotest.list Alcotest.int) "session survives" [ 0 ]
    (List.map Bgp.Router.node_of_addr (sp1.Bgp.Speaker.sp_established ()))

let sparrow_corrupt_header_drops_session () =
  let _, build = deploy_line ~sparrow_nodes:[ 1 ] 2 in
  assert (Topology.Build.converge build);
  let sp1 = Topology.Build.speaker build 1 in
  (* Header corruption cannot be localized to an attribute: Sparrow
     answers with a NOTIFICATION and drops the session. *)
  let b = Bytes.of_string (corrupt_origin_update ()) in
  Bytes.set b 0 '\x00' (* break the marker *);
  sp1.Bgp.Speaker.sp_process_raw ~from_node:0 (Bytes.to_string b);
  check Alcotest.int "malformed counted" 1
    (Netsim.Stats.get (sp1.Bgp.Speaker.sp_stats ()) "rx_malformed");
  check (Alcotest.list Alcotest.int) "session dropped" []
    (List.map Bgp.Router.node_of_addr (sp1.Bgp.Speaker.sp_established ()))

let sparrow_capture_respawn () =
  let _, build = deploy_line ~sparrow_nodes:[ 1 ] 3 in
  assert (Topology.Build.converge build);
  let sp1 = Topology.Build.speaker build 1 in
  let capture = Bgp.Speaker.capture sp1 in
  check Alcotest.string "impl recorded" "sparrow" capture.Bgp.Speaker.cap_impl;
  Alcotest.(check bool) "route count positive" true
    (Lazy.force capture.Bgp.Speaker.cap_route_count > 0);
  (* Respawn on an isolated net and compare Loc-RIBs. *)
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  List.iter (fun id -> Netsim.Network.add_node net id (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.connect_sym net 1 2 Netsim.Link.ideal;
  let clone = capture.Bgp.Speaker.cap_respawn ~net ~bugs:Bgp.Router.no_bugs in
  Alcotest.(check bool) "same Loc-RIB" true
    (Bgp.Prefix.Map.bindings (Bgp.Speaker.loc_rib clone)
    = Bgp.Prefix.Map.bindings (Bgp.Speaker.loc_rib sp1))

let sparrow_decision_matches_spec () =
  (* The independently written decision logic agrees with the reference
     decision process on a converged mixed deployment. *)
  let graph = Topology.Gadget.embedded () in
  let sparrow_nodes = [ 0; 2; 5; 8 ] in
  let build = Topology.Build.deploy ~sparrow_nodes graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node:0 ()) in
  let shadow = Snapshot.Store.spawn snap in
  ignore (Snapshot.Store.run_to_quiescence shadow);
  List.iter
    (fun (c : Dice.Checks.checker) ->
      List.iter
        (fun (v : Dice.Checks.verdict) ->
          if not v.Dice.Checks.v_ok then
            Alcotest.failf "mixed healthy system violates %s at node %d: %s"
              v.Dice.Checks.v_property v.Dice.Checks.v_node v.Dice.Checks.v_evidence)
        (c.Dice.Checks.run shadow))
    (Dice.Checks.standard_suite gt);
  ignore gt

let heterogeneous_shadow_preserves_impls () =
  let _, build = deploy_line ~sparrow_nodes:[ 1 ] 3 in
  assert (Topology.Build.converge build);
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let snap = Snapshot.Cut.snapshot_of (Dice.Explorer.take_snapshot ~build ~cut ~node:0 ()) in
  let shadow = Snapshot.Store.spawn snap in
  List.iter
    (fun (id, sp) ->
      check Alcotest.string
        (Printf.sprintf "clone %d keeps its implementation" id)
        (if id = 1 then "sparrow" else "bird-like")
        sp.Bgp.Speaker.sp_impl)
    shadow.Snapshot.Store.sh_speakers

let dice_detects_sparrow_crash () =
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 31) in
  let build = Topology.Build.deploy ~sparrow_nodes:[ 1 ] graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build
    (Dice.Inject.Crash_bug { at = 1; community = Bgp.Community.make 64998 7 });
  let _, hit =
    Dice.Orchestrator.run_until_detection ~build ~gt ~nodes:[ 1 ]
      ~expect:Dice.Fault.Programming_error ()
  in
  match hit with
  | Some round ->
      Alcotest.(check bool) "sparrow crash found by exploration" true
        (List.exists
           (fun (f : Dice.Fault.t) ->
             String.equal f.Dice.Fault.f_property "handler-crash")
           (Dice.Orchestrator.round_exploration_exn round).Dice.Explorer.x_faults)
  | None -> Alcotest.fail "sparrow crash bug not detected"

(* Differential property: Sparrow's independently written selection
   logic agrees with the reference decision process on random
   candidate sets. *)
let arb_announcements =
  let open QCheck.Gen in
  let attrs =
    let* lp = opt (int_range 50 300) in
    let* path = list_size (int_range 1 4) (int_range 64000 64010) in
    let* origin = oneofl [ Bgp.Attr.Igp; Bgp.Attr.Egp; Bgp.Attr.Incomplete ] in
    let* med = opt (int_bound 500) in
    return (lp, path, origin, med)
  in
  let event =
    let* peer = int_bound 2 in
    let* withdraw = frequency [ (4, return false); (1, return true) ] in
    let* a = attrs in
    return (peer, withdraw, a)
  in
  QCheck.make
    ~print:(fun evs -> Printf.sprintf "%d events" (List.length evs))
    (list_size (int_range 1 12) event)

let sparrow_selection_spec =
  QCheck.Test.make ~name:"sparrow: selection agrees with the reference decision process"
    ~count:200 arb_announcements
    (fun events ->
      let eng = Netsim.Engine.create () in
      let net = Netsim.Network.create eng in
      List.iter (fun id -> Netsim.Network.add_node net id (fun ~src:_ _ -> ())) [ 0; 1; 2; 3 ];
      List.iter (fun i -> Netsim.Network.connect_sym net 0 i Netsim.Link.ideal) [ 1; 2; 3 ];
      let cfg =
        Bgp.Config.make ~asn:65100 ~router_id:(Bgp.Router.addr_of_node 0)
          ~neighbors:
            (List.map
               (fun i ->
                 Bgp.Config.neighbor (Bgp.Router.addr_of_node i) ~remote_as:(64000 + i))
               [ 1; 2; 3 ])
          ()
      in
      let s = Bgp.Sparrow.create ~net ~node:0 cfg in
      let prefix = p "203.0.113.0/24" in
      List.iter
        (fun (peer, withdraw, (lp, path, origin, med)) ->
          let from = Bgp.Router.addr_of_node (peer + 1) in
          if withdraw then
            Bgp.Sparrow.inject_update s ~from
              { Bgp.Msg.withdrawn = [ prefix ]; attrs = None; nlri = [] }
          else
            Bgp.Sparrow.inject_update s ~from
              { Bgp.Msg.withdrawn = [];
                attrs =
                  Some
                    (Bgp.Attr.make ~origin ~as_path:[ Bgp.As_path.Seq path ] ~med
                       ~local_pref:lp ~next_hop:from ());
                nlri = [ prefix ] })
        events;
      let rib = Bgp.Sparrow.rib_view s in
      let candidates =
        Bgp.Rib.candidates prefix rib
        |> List.filter (Bgp.Decision.acceptable ~local_as:65100)
      in
      let reference = Bgp.Decision.best Bgp.Decision.default_config candidates in
      let actual = Bgp.Rib.loc_get prefix rib in
      reference = actual)

let sparrow_hold_reaps_dead_neighbor () =
  (* 0 (bird) — 1 (sparrow) — 2 (bird); node 2 dies silently.  Sparrow
     has no FSM hold timer of its own design, so this exercises the
     watchdog added for churn. *)
  let _, build = deploy_line ~sparrow_nodes:[ 1 ] 3 in
  assert (Topology.Build.converge build);
  let sp0 = Topology.Build.speaker build 0 in
  let sp1 = Topology.Build.speaker build 1 in
  Netsim.Network.set_node_down build.Topology.Build.net 2;
  Topology.Build.run_for build (Netsim.Time.span_sec 120.);
  Alcotest.(check bool) "sparrow dropped the dead session" false
    (List.mem 2
       (List.map Bgp.Router.node_of_addr (sp1.Bgp.Speaker.sp_established ())));
  Alcotest.(check bool) "watchdog fired" true
    (Netsim.Stats.get (sp1.Bgp.Speaker.sp_stats ()) "hold_expired" >= 1);
  Alcotest.(check bool) "withdrawal propagated upstream" false
    (Bgp.Prefix.Map.mem (Topology.Gao_rexford.prefix_of_node 2)
       (Bgp.Speaker.loc_rib sp0))

let sparrow_reestablishes_after_recovery () =
  let _, build = deploy_line ~sparrow_nodes:[ 1 ] 3 in
  assert (Topology.Build.converge build);
  let sp0 = Topology.Build.speaker build 0 in
  let sp1 = Topology.Build.speaker build 1 in
  Netsim.Network.set_node_down build.Topology.Build.net 2;
  Topology.Build.run_for build (Netsim.Time.span_sec 120.);
  Alcotest.(check bool) "down while peer dead" false
    (List.mem 2
       (List.map Bgp.Router.node_of_addr (sp1.Bgp.Speaker.sp_established ())));
  Netsim.Network.set_node_up build.Topology.Build.net 2;
  Topology.Build.run_for build (Netsim.Time.span_sec 300.);
  Alcotest.(check bool) "sparrow re-established" true
    (List.mem 2
       (List.map Bgp.Router.node_of_addr (sp1.Bgp.Speaker.sp_established ())));
  Alcotest.(check bool) "routes relearned end to end" true
    (Bgp.Prefix.Map.mem (Topology.Gao_rexford.prefix_of_node 2)
       (Bgp.Speaker.loc_rib sp0))

let bird_reaps_dead_sparrow () =
  (* The other direction of the interop: a reference router notices a
     silently dead Sparrow peer through its own hold timer. *)
  let _, build = deploy_line ~sparrow_nodes:[ 1 ] 3 in
  assert (Topology.Build.converge build);
  let sp0 = Topology.Build.speaker build 0 in
  Netsim.Network.set_node_down build.Topology.Build.net 1;
  Topology.Build.run_for build (Netsim.Time.span_sec 120.);
  Alcotest.(check bool) "bird dropped the dead sparrow" false
    (List.mem 1
       (List.map Bgp.Router.node_of_addr (sp0.Bgp.Speaker.sp_established ())));
  Alcotest.(check bool) "routes behind it flushed" false
    (Bgp.Prefix.Map.mem (Topology.Gao_rexford.prefix_of_node 2)
       (Bgp.Speaker.loc_rib sp0));
  Netsim.Network.set_node_up build.Topology.Build.net 1;
  Topology.Build.run_for build (Netsim.Time.span_sec 300.);
  Alcotest.(check bool) "interop session recovered" true
    (List.mem 1
       (List.map Bgp.Router.node_of_addr (sp0.Bgp.Speaker.sp_established ())))

let suite =
  [ ("sparrow: pair converges", `Quick, sparrow_pair_converges);
    ("mixed: chain converges", `Quick, mixed_chain_converges);
    ("mixed: withdrawal crosses implementations", `Quick, mixed_withdrawal_propagates);
    ("mixed: 27-AS demo converges", `Slow, mixed_demo27_converges);
    ("sparrow: malformed attrs treated as withdraw", `Quick, sparrow_treats_malformed_as_withdraw);
    ("sparrow: corrupt header drops session", `Quick, sparrow_corrupt_header_drops_session);
    ("sparrow: capture/respawn", `Quick, sparrow_capture_respawn);
    ("mixed: checks clean when healthy", `Slow, sparrow_decision_matches_spec);
    ("mixed: shadows preserve implementations", `Quick, heterogeneous_shadow_preserves_impls);
    ("mixed: DiCE finds a sparrow crash bug", `Slow, dice_detects_sparrow_crash);
    ("sparrow: hold watchdog reaps dead peer", `Quick, sparrow_hold_reaps_dead_neighbor);
    ("sparrow: re-establishes after recovery", `Quick, sparrow_reestablishes_after_recovery);
    ("mixed: bird reaps dead sparrow and recovers", `Quick, bird_reaps_dead_sparrow);
    QCheck_alcotest.to_alcotest sparrow_selection_spec ]
