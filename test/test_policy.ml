(* Route-map semantics. *)

let check = Alcotest.check

let nh = Bgp.Ipv4.of_string_exn "10.0.0.9"
let p = Bgp.Prefix.of_string_exn

let base_attrs =
  Bgp.Attr.make ~origin:Bgp.Attr.Igp
    ~as_path:[ Bgp.As_path.Seq [ 65002; 65003 ] ]
    ~next_hop:nh ()

let prefix_rule_semantics () =
  let r_exact = Bgp.Policy.prefix_rule (p "10.0.0.0/8") in
  Alcotest.(check bool) "exact hits" true (Bgp.Policy.prefix_rule_matches r_exact (p "10.0.0.0/8"));
  Alcotest.(check bool) "exact misses longer" false
    (Bgp.Policy.prefix_rule_matches r_exact (p "10.1.0.0/16"));
  let r_le = Bgp.Policy.prefix_rule ~le:24 (p "10.0.0.0/8") in
  Alcotest.(check bool) "le hits /16" true (Bgp.Policy.prefix_rule_matches r_le (p "10.1.0.0/16"));
  Alcotest.(check bool) "le misses /25" false
    (Bgp.Policy.prefix_rule_matches r_le (p "10.1.1.0/25"));
  let r_ge = Bgp.Policy.prefix_rule ~ge:24 (p "10.0.0.0/8") in
  Alcotest.(check bool) "ge alone opens to /32" true
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.1.128/25"));
  Alcotest.(check bool) "ge excludes shorter" false
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.0.0/16"));
  Alcotest.(check bool) "outside the block never matches" false
    (Bgp.Policy.prefix_rule_matches r_le (p "11.0.0.0/16"))

let prefix_rule_boundaries () =
  (* ge = le = the rule's own length is the same as an exact match. *)
  let r_pin = Bgp.Policy.prefix_rule ~ge:8 ~le:8 (p "10.0.0.0/8") in
  Alcotest.(check bool) "ge=le=len hits itself" true
    (Bgp.Policy.prefix_rule_matches r_pin (p "10.0.0.0/8"));
  Alcotest.(check bool) "ge=le=len misses longer" false
    (Bgp.Policy.prefix_rule_matches r_pin (p "10.1.0.0/16"));
  (* An inverted ge > le window matches nothing inside the block. *)
  let r_empty = Bgp.Policy.prefix_rule ~ge:24 ~le:16 (p "10.0.0.0/8") in
  List.iter
    (fun pf ->
      Alcotest.(check bool)
        (Printf.sprintf "ge>le empty on %s" (Bgp.Prefix.to_string pf))
        false
        (Bgp.Policy.prefix_rule_matches r_empty pf))
    [ p "10.0.0.0/8"; p "10.1.0.0/16"; p "10.1.1.0/24"; p "10.1.1.1/32" ];
  (* le = 32 covers down to host routes, boundary included. *)
  let r_host = Bgp.Policy.prefix_rule ~le:32 (p "10.0.0.0/8") in
  Alcotest.(check bool) "le=32 hits /32" true
    (Bgp.Policy.prefix_rule_matches r_host (p "10.1.1.1/32"));
  Alcotest.(check bool) "le=32 hits own length" true
    (Bgp.Policy.prefix_rule_matches r_host (p "10.0.0.0/8"));
  (* ge at the boundary: /24 is in, /23 is out. *)
  let r_ge = Bgp.Policy.prefix_rule ~ge:24 (p "10.0.0.0/8") in
  Alcotest.(check bool) "ge=24 includes /24" true
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.1.0/24"));
  Alcotest.(check bool) "ge=24 excludes /23" false
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.2.0/23"))

let community_sets_idempotent () =
  let c = Bgp.Community.make 65000 100 in
  let apply sets attrs =
    match
      Bgp.Policy.apply [ Bgp.Policy.entry 10 Bgp.Policy.Permit ~sets ] (p "192.0.2.0/24") attrs
    with
    | Some a -> a
    | None -> Alcotest.fail "must permit"
  in
  (* Adding a community a route already carries changes nothing. *)
  let once = apply [ Bgp.Policy.Add_community c ] base_attrs in
  let twice = apply [ Bgp.Policy.Add_community c ] once in
  Alcotest.(check bool) "add is idempotent" true (Bgp.Attr.equal once twice);
  let dup = apply [ Bgp.Policy.Add_community c; Bgp.Policy.Add_community c ] base_attrs in
  Alcotest.(check bool) "double add in one entry" true (Bgp.Attr.equal once dup);
  (* Deleting an absent community changes nothing. *)
  let del = apply [ Bgp.Policy.Del_community c ] once in
  Alcotest.(check bool) "del removes" false (Bgp.Attr.has_community c del);
  let del2 = apply [ Bgp.Policy.Del_community c ] del in
  Alcotest.(check bool) "del is idempotent" true (Bgp.Attr.equal del del2);
  Alcotest.(check bool) "del of absent is identity" true
    (Bgp.Attr.equal base_attrs (apply [ Bgp.Policy.Del_community c ] base_attrs))

let first_match_wins () =
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Deny
        ~matches:[ Bgp.Policy.Match_prefix [ Bgp.Policy.prefix_rule ~le:32 (p "10.0.0.0/8") ] ];
      Bgp.Policy.entry 20 Bgp.Policy.Permit ]
  in
  check (Alcotest.option Alcotest.reject) "denied by entry 10" None
    (Option.map ignore (Bgp.Policy.apply map (p "10.1.0.0/16") base_attrs));
  Alcotest.(check bool) "other prefixes permitted" true
    (Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs <> None)

let default_deny () =
  check (Alcotest.option Alcotest.reject) "empty map rejects" None
    (Option.map ignore (Bgp.Policy.apply Bgp.Policy.deny_all (p "192.0.2.0/24") base_attrs));
  let no_match =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~matches:[ Bgp.Policy.Match_origin Bgp.Attr.Egp ] ]
  in
  check (Alcotest.option Alcotest.reject) "unmatched rejects" None
    (Option.map ignore (Bgp.Policy.apply no_match (p "192.0.2.0/24") base_attrs))

let sets_applied_in_order () =
  let c = Bgp.Community.make 65001 7 in
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~sets:
          [ Bgp.Policy.Set_local_pref 200;
            Bgp.Policy.Add_community c;
            Bgp.Policy.Prepend_as (65001, 2);
            Bgp.Policy.Set_med (Some 50) ] ]
  in
  match Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs with
  | None -> Alcotest.fail "must permit"
  | Some a ->
      check Alcotest.int "local-pref" 200 (Bgp.Attr.effective_local_pref a);
      Alcotest.(check bool) "community added" true (Bgp.Attr.has_community c a);
      check Alcotest.int "prepended twice" 4 (Bgp.As_path.length a.Bgp.Attr.as_path);
      check (Alcotest.option Alcotest.int) "med" (Some 50) a.Bgp.Attr.med

let as_path_matches () =
  let matches test = Bgp.Policy.matches_route (Bgp.Policy.Match_as_path test) (p "192.0.2.0/24") base_attrs in
  Alcotest.(check bool) "contains 65003" true (matches (Bgp.Policy.Path_contains 65003));
  Alcotest.(check bool) "not contains 1" false (matches (Bgp.Policy.Path_contains 1));
  Alcotest.(check bool) "originated by 65003" true (matches (Bgp.Policy.Path_originated_by 65003));
  Alcotest.(check bool) "not originated by 65002" false
    (matches (Bgp.Policy.Path_originated_by 65002));
  Alcotest.(check bool) "neighbor is 65002" true (matches (Bgp.Policy.Path_neighbor_is 65002));
  Alcotest.(check bool) "length <= 2" true (matches (Bgp.Policy.Path_length_at_most 2));
  Alcotest.(check bool) "length >= 3 fails" false (matches (Bgp.Policy.Path_length_at_least 3))

let entries_sorted_by_seq () =
  let map =
    Bgp.Policy.normalize
      [ Bgp.Policy.entry 20 Bgp.Policy.Permit;
        Bgp.Policy.entry 10 Bgp.Policy.Deny ]
  in
  check (Alcotest.option Alcotest.reject) "entry 10 deny runs first" None
    (Option.map ignore (Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs))

let community_match_and_delete () =
  let c = Bgp.Community.make 65000 100 in
  let attrs = Bgp.Attr.add_community c base_attrs in
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~matches:[ Bgp.Policy.Match_community c ]
        ~sets:[ Bgp.Policy.Del_community c ] ]
  in
  (match Bgp.Policy.apply map (p "192.0.2.0/24") attrs with
  | Some a -> Alcotest.(check bool) "deleted" false (Bgp.Attr.has_community c a)
  | None -> Alcotest.fail "must match");
  check (Alcotest.option Alcotest.reject) "without the community: default deny" None
    (Option.map ignore (Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs))

(* --- symbolize: constant lifting for the repair engine --------------- *)

let qtest = QCheck_alcotest.to_alcotest

let all_seqs map =
  List.sort_uniq Int.compare (List.map (fun e -> e.Bgp.Policy.seq) map)

let symbolize_identity_full_suite () =
  (* Identity pin: over every entry of every route map the Gao-Rexford
     generator produces, rebuilding with the identity substitution is
     the original map, byte for byte. *)
  let graph = Topology.Demo27.graph in
  List.iter
    (fun id ->
      let cfg = Topology.Gao_rexford.config_of graph id in
      List.iter
        (fun (name, map) ->
          List.iter
            (fun seq ->
              match Bgp.Policy.symbolize ~seq map with
              | None ->
                  Alcotest.failf "node %d %s seq %d: symbolize refused" id name
                    seq
              | Some (slots, rebuild) ->
                  if slots = [] then
                    Alcotest.failf "node %d %s seq %d: no slots" id name seq;
                  if rebuild (fun _ v -> v) <> map then
                    Alcotest.failf "node %d %s seq %d: identity rebuild differs"
                      id name seq)
            (all_seqs map))
        cfg.Bgp.Config.route_maps)
    (Topology.Graph.node_ids graph)

let symbolize_substitutes () =
  let c = Bgp.Community.make 65000 100 in
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~matches:
          [ Bgp.Policy.Match_prefix
              [ Bgp.Policy.prefix_rule ~ge:16 ~le:24 (p "10.0.0.0/8") ];
            Bgp.Policy.Match_community c ]
        ~sets:
          [ Bgp.Policy.Set_local_pref 200;
            Bgp.Policy.Set_med (Some 30);
            Bgp.Policy.Add_community c ] ]
  in
  match Bgp.Policy.symbolize ~seq:10 map with
  | None -> Alcotest.fail "symbolize must find seq 10"
  | Some (slots, rebuild) -> (
      check Alcotest.int "slot count" 7 (List.length slots);
      check Alcotest.int "permit encodes as 1" 1
        (List.assoc Bgp.Policy.S_action slots);
      check Alcotest.int "local-pref constant" 200
        (List.assoc (Bgp.Policy.S_local_pref 0) slots);
      check Alcotest.int "ge bound" 16
        (List.assoc (Bgp.Policy.S_match_ge (0, 0)) slots);
      let map' =
        rebuild (fun s v ->
            match s with
            | Bgp.Policy.S_action -> 0
            | Bgp.Policy.S_local_pref _ -> 999
            | _ -> v)
      in
      match map' with
      | [ e ] ->
          Alcotest.(check bool) "action flipped to deny" true
            (e.Bgp.Policy.action = Bgp.Policy.Deny);
          Alcotest.(check bool) "local-pref rewritten" true
            (List.mem (Bgp.Policy.Set_local_pref 999) e.Bgp.Policy.sets);
          Alcotest.(check bool) "med untouched" true
            (List.mem (Bgp.Policy.Set_med (Some 30)) e.Bgp.Policy.sets)
      | _ -> Alcotest.fail "rebuild must keep one entry")

let arb_map =
  let open QCheck.Gen in
  let prefix =
    oneofl [ p "10.0.0.0/8"; p "192.0.2.0/24"; p "172.16.0.0/12" ]
  in
  let bound = opt (int_bound 32) in
  let rule =
    map3
      (fun pf ge le -> { Bgp.Policy.rule_prefix = pf; ge; le })
      prefix bound bound
  in
  let community = map2 Bgp.Community.make (int_range 1 65535) (int_bound 65535) in
  let matches =
    oneof
      [ return [];
        map (fun r -> [ Bgp.Policy.Match_prefix [ r ] ]) rule;
        map (fun c -> [ Bgp.Policy.Match_community c ]) community;
        map2
          (fun r c ->
            [ Bgp.Policy.Match_prefix [ r ]; Bgp.Policy.Match_community c ])
          rule community ]
  in
  let sets =
    oneof
      [ return [];
        map (fun v -> [ Bgp.Policy.Set_local_pref v ]) (int_bound 1000);
        map2
          (fun v m ->
            [ Bgp.Policy.Set_local_pref v; Bgp.Policy.Set_med (Some m) ])
          (int_bound 1000) (int_bound 65535);
        map (fun c -> [ Bgp.Policy.Add_community c ]) community ]
  in
  let entry =
    let* seq = oneofl [ 0; 10; 20 ] in
    let* action = oneofl [ Bgp.Policy.Permit; Bgp.Policy.Deny ] in
    let* matches = matches in
    let* sets = sets in
    return (Bgp.Policy.entry seq action ~matches ~sets)
  in
  QCheck.make (list_size (int_range 1 3) entry)

let symbolize_roundtrip =
  QCheck.Test.make ~name:"policy: symbolize identity round-trip" ~count:300
    arb_map (fun map ->
      List.for_all
        (fun seq ->
          match Bgp.Policy.symbolize ~seq map with
          | None -> false
          | Some (slots, rebuild) ->
              rebuild (fun _ v -> v) = map
              &&
              (* re-symbolizing the rebuilt map yields the same slots *)
              (match Bgp.Policy.symbolize ~seq (rebuild (fun _ v -> v)) with
              | Some (slots', _) -> slots = slots'
              | None -> false))
        (all_seqs map))

let suite =
  [ ("policy: prefix-rule le/ge semantics", `Quick, prefix_rule_semantics);
    ("policy: prefix-rule ge/le boundaries", `Quick, prefix_rule_boundaries);
    ("policy: community add/del idempotence", `Quick, community_sets_idempotent);
    ("policy: first match wins", `Quick, first_match_wins);
    ("policy: default deny", `Quick, default_deny);
    ("policy: set clauses", `Quick, sets_applied_in_order);
    ("policy: as-path matches", `Quick, as_path_matches);
    ("policy: normalize sorts by seq", `Quick, entries_sorted_by_seq);
    ("policy: community match/delete", `Quick, community_match_and_delete);
    ("policy: symbolize identity on generated maps", `Quick,
     symbolize_identity_full_suite);
    ("policy: symbolize substitutes constants", `Quick, symbolize_substitutes);
    qtest symbolize_roundtrip ]
