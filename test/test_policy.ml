(* Route-map semantics. *)

let check = Alcotest.check

let nh = Bgp.Ipv4.of_string_exn "10.0.0.9"
let p = Bgp.Prefix.of_string_exn

let base_attrs =
  Bgp.Attr.make ~origin:Bgp.Attr.Igp
    ~as_path:[ Bgp.As_path.Seq [ 65002; 65003 ] ]
    ~next_hop:nh ()

let prefix_rule_semantics () =
  let r_exact = Bgp.Policy.prefix_rule (p "10.0.0.0/8") in
  Alcotest.(check bool) "exact hits" true (Bgp.Policy.prefix_rule_matches r_exact (p "10.0.0.0/8"));
  Alcotest.(check bool) "exact misses longer" false
    (Bgp.Policy.prefix_rule_matches r_exact (p "10.1.0.0/16"));
  let r_le = Bgp.Policy.prefix_rule ~le:24 (p "10.0.0.0/8") in
  Alcotest.(check bool) "le hits /16" true (Bgp.Policy.prefix_rule_matches r_le (p "10.1.0.0/16"));
  Alcotest.(check bool) "le misses /25" false
    (Bgp.Policy.prefix_rule_matches r_le (p "10.1.1.0/25"));
  let r_ge = Bgp.Policy.prefix_rule ~ge:24 (p "10.0.0.0/8") in
  Alcotest.(check bool) "ge alone opens to /32" true
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.1.128/25"));
  Alcotest.(check bool) "ge excludes shorter" false
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.0.0/16"));
  Alcotest.(check bool) "outside the block never matches" false
    (Bgp.Policy.prefix_rule_matches r_le (p "11.0.0.0/16"))

let prefix_rule_boundaries () =
  (* ge = le = the rule's own length is the same as an exact match. *)
  let r_pin = Bgp.Policy.prefix_rule ~ge:8 ~le:8 (p "10.0.0.0/8") in
  Alcotest.(check bool) "ge=le=len hits itself" true
    (Bgp.Policy.prefix_rule_matches r_pin (p "10.0.0.0/8"));
  Alcotest.(check bool) "ge=le=len misses longer" false
    (Bgp.Policy.prefix_rule_matches r_pin (p "10.1.0.0/16"));
  (* An inverted ge > le window matches nothing inside the block. *)
  let r_empty = Bgp.Policy.prefix_rule ~ge:24 ~le:16 (p "10.0.0.0/8") in
  List.iter
    (fun pf ->
      Alcotest.(check bool)
        (Printf.sprintf "ge>le empty on %s" (Bgp.Prefix.to_string pf))
        false
        (Bgp.Policy.prefix_rule_matches r_empty pf))
    [ p "10.0.0.0/8"; p "10.1.0.0/16"; p "10.1.1.0/24"; p "10.1.1.1/32" ];
  (* le = 32 covers down to host routes, boundary included. *)
  let r_host = Bgp.Policy.prefix_rule ~le:32 (p "10.0.0.0/8") in
  Alcotest.(check bool) "le=32 hits /32" true
    (Bgp.Policy.prefix_rule_matches r_host (p "10.1.1.1/32"));
  Alcotest.(check bool) "le=32 hits own length" true
    (Bgp.Policy.prefix_rule_matches r_host (p "10.0.0.0/8"));
  (* ge at the boundary: /24 is in, /23 is out. *)
  let r_ge = Bgp.Policy.prefix_rule ~ge:24 (p "10.0.0.0/8") in
  Alcotest.(check bool) "ge=24 includes /24" true
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.1.0/24"));
  Alcotest.(check bool) "ge=24 excludes /23" false
    (Bgp.Policy.prefix_rule_matches r_ge (p "10.1.2.0/23"))

let community_sets_idempotent () =
  let c = Bgp.Community.make 65000 100 in
  let apply sets attrs =
    match
      Bgp.Policy.apply [ Bgp.Policy.entry 10 Bgp.Policy.Permit ~sets ] (p "192.0.2.0/24") attrs
    with
    | Some a -> a
    | None -> Alcotest.fail "must permit"
  in
  (* Adding a community a route already carries changes nothing. *)
  let once = apply [ Bgp.Policy.Add_community c ] base_attrs in
  let twice = apply [ Bgp.Policy.Add_community c ] once in
  Alcotest.(check bool) "add is idempotent" true (Bgp.Attr.equal once twice);
  let dup = apply [ Bgp.Policy.Add_community c; Bgp.Policy.Add_community c ] base_attrs in
  Alcotest.(check bool) "double add in one entry" true (Bgp.Attr.equal once dup);
  (* Deleting an absent community changes nothing. *)
  let del = apply [ Bgp.Policy.Del_community c ] once in
  Alcotest.(check bool) "del removes" false (Bgp.Attr.has_community c del);
  let del2 = apply [ Bgp.Policy.Del_community c ] del in
  Alcotest.(check bool) "del is idempotent" true (Bgp.Attr.equal del del2);
  Alcotest.(check bool) "del of absent is identity" true
    (Bgp.Attr.equal base_attrs (apply [ Bgp.Policy.Del_community c ] base_attrs))

let first_match_wins () =
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Deny
        ~matches:[ Bgp.Policy.Match_prefix [ Bgp.Policy.prefix_rule ~le:32 (p "10.0.0.0/8") ] ];
      Bgp.Policy.entry 20 Bgp.Policy.Permit ]
  in
  check (Alcotest.option Alcotest.reject) "denied by entry 10" None
    (Option.map ignore (Bgp.Policy.apply map (p "10.1.0.0/16") base_attrs));
  Alcotest.(check bool) "other prefixes permitted" true
    (Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs <> None)

let default_deny () =
  check (Alcotest.option Alcotest.reject) "empty map rejects" None
    (Option.map ignore (Bgp.Policy.apply Bgp.Policy.deny_all (p "192.0.2.0/24") base_attrs));
  let no_match =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~matches:[ Bgp.Policy.Match_origin Bgp.Attr.Egp ] ]
  in
  check (Alcotest.option Alcotest.reject) "unmatched rejects" None
    (Option.map ignore (Bgp.Policy.apply no_match (p "192.0.2.0/24") base_attrs))

let sets_applied_in_order () =
  let c = Bgp.Community.make 65001 7 in
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~sets:
          [ Bgp.Policy.Set_local_pref 200;
            Bgp.Policy.Add_community c;
            Bgp.Policy.Prepend_as (65001, 2);
            Bgp.Policy.Set_med (Some 50) ] ]
  in
  match Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs with
  | None -> Alcotest.fail "must permit"
  | Some a ->
      check Alcotest.int "local-pref" 200 (Bgp.Attr.effective_local_pref a);
      Alcotest.(check bool) "community added" true (Bgp.Attr.has_community c a);
      check Alcotest.int "prepended twice" 4 (Bgp.As_path.length a.Bgp.Attr.as_path);
      check (Alcotest.option Alcotest.int) "med" (Some 50) a.Bgp.Attr.med

let as_path_matches () =
  let matches test = Bgp.Policy.matches_route (Bgp.Policy.Match_as_path test) (p "192.0.2.0/24") base_attrs in
  Alcotest.(check bool) "contains 65003" true (matches (Bgp.Policy.Path_contains 65003));
  Alcotest.(check bool) "not contains 1" false (matches (Bgp.Policy.Path_contains 1));
  Alcotest.(check bool) "originated by 65003" true (matches (Bgp.Policy.Path_originated_by 65003));
  Alcotest.(check bool) "not originated by 65002" false
    (matches (Bgp.Policy.Path_originated_by 65002));
  Alcotest.(check bool) "neighbor is 65002" true (matches (Bgp.Policy.Path_neighbor_is 65002));
  Alcotest.(check bool) "length <= 2" true (matches (Bgp.Policy.Path_length_at_most 2));
  Alcotest.(check bool) "length >= 3 fails" false (matches (Bgp.Policy.Path_length_at_least 3))

let entries_sorted_by_seq () =
  let map =
    Bgp.Policy.normalize
      [ Bgp.Policy.entry 20 Bgp.Policy.Permit;
        Bgp.Policy.entry 10 Bgp.Policy.Deny ]
  in
  check (Alcotest.option Alcotest.reject) "entry 10 deny runs first" None
    (Option.map ignore (Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs))

let community_match_and_delete () =
  let c = Bgp.Community.make 65000 100 in
  let attrs = Bgp.Attr.add_community c base_attrs in
  let map =
    [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~matches:[ Bgp.Policy.Match_community c ]
        ~sets:[ Bgp.Policy.Del_community c ] ]
  in
  (match Bgp.Policy.apply map (p "192.0.2.0/24") attrs with
  | Some a -> Alcotest.(check bool) "deleted" false (Bgp.Attr.has_community c a)
  | None -> Alcotest.fail "must match");
  check (Alcotest.option Alcotest.reject) "without the community: default deny" None
    (Option.map ignore (Bgp.Policy.apply map (p "192.0.2.0/24") base_attrs))

let suite =
  [ ("policy: prefix-rule le/ge semantics", `Quick, prefix_rule_semantics);
    ("policy: prefix-rule ge/le boundaries", `Quick, prefix_rule_boundaries);
    ("policy: community add/del idempotence", `Quick, community_sets_idempotent);
    ("policy: first match wins", `Quick, first_match_wins);
    ("policy: default deny", `Quick, default_deny);
    ("policy: set clauses", `Quick, sets_applied_in_order);
    ("policy: as-path matches", `Quick, as_path_matches);
    ("policy: normalize sorts by seq", `Quick, entries_sorted_by_seq);
    ("policy: community match/delete", `Quick, community_match_and_delete) ]
