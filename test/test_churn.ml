(* Churn resilience end-to-end: the supervised orchestrator keeps
   detecting all three fault classes on Demo27 while routers crash and
   links flap; quarantine kicks in after repeated failures; and the
   default (churn-free) path is pinned to the unsupervised behavior. *)

let check = Alcotest.check

let fast_params =
  { Dice.Explorer.default_params with
    Dice.Explorer.limits =
      { Concolic.Engine.max_inputs = 24; max_branches = 32; solver_nodes = 10_000 };
    fuzz_extra = 6;
    shadow_budget = 15_000 }

let churn_params =
  { fast_params with
    Dice.Explorer.snapshot_deadline = Some (Netsim.Time.span_sec 30.) }

let class_names faults =
  List.sort_uniq String.compare
    (List.map
       (fun (f : Dice.Fault.t) -> Dice.Fault.class_to_string f.Dice.Fault.f_class)
       faults)

(* ------------------------------------------------------------------ *)
(* The headline: Demo27 under churn                                    *)
(* ------------------------------------------------------------------ *)

let demo27_detects_under_churn () =
  let graph = Topology.Demo27.graph in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  ignore (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  (* One fault of each class.  Victim 13 homes to tier-1s 0 (via 4) and
     1 (via 5); hijacking its prefix at stub 20 (under tier-1 2) gives
     every member of the tier-1 clique a customer route to it, so the
     dispute wheel over [0;1;2] is a true BAD GADGET — and the hijack
     itself is the operator mistake. *)
  Dice.Inject.apply build (Dice.Inject.Prefix_hijack { at = 20; victim = 13 });
  Dice.Inject.apply build
    (Dice.Inject.Policy_dispute { cycle = [ 0; 1; 2 ]; victim = 13 });
  Dice.Inject.apply build
    (Dice.Inject.Crash_bug { at = 3; community = Bgp.Community.make 64111 1 });
  Topology.Build.run_for build (Netsim.Time.span_sec 30.);
  (* Churn away from the faults under test: three stub/transit-edge
     crashes (restored before hold expiry) and five link flaps. *)
  let s = Netsim.Time.span_sec in
  let schedule =
    Netsim.Churn.crash ~node:22 ~at:(s 5.) ~restore_after:(s 40.) ()
    @ Netsim.Churn.crash ~node:24 ~at:(s 20.) ~restore_after:(s 40.) ()
    @ Netsim.Churn.crash ~node:17 ~at:(s 45.) ~restore_after:(s 40.) ()
    @ Netsim.Churn.flap ~a:9 ~b:23 ~from_:(s 10.) ~every:(s 30.) ~down_for:(s 10.)
        ~times:2
    @ Netsim.Churn.flap ~a:6 ~b:18 ~from_:(s 25.) ~every:(s 30.) ~down_for:(s 10.)
        ~times:2
    @ Netsim.Churn.flap ~a:10 ~b:25 ~from_:(s 55.) ~every:(s 20.) ~down_for:(s 5.)
        ~times:1
  in
  Alcotest.(check bool) "schedule has >= 3 node crashes" true
    (Netsim.Churn.node_crashes schedule >= 3);
  Alcotest.(check bool) "schedule has >= 3 link flaps" true
    (Netsim.Churn.link_downs schedule >= 3);
  ignore (Netsim.Churn.apply build.Topology.Build.net schedule);
  (* One pass over the fault sites plus the dispute wheel. *)
  let rounds = 6 in
  let summary =
    Dice.Orchestrator.run ~params:churn_params ~build ~gt
      ~nodes:[ 3; 0; 20; 1; 13; 2 ] ~rounds ()
  in
  check Alcotest.int "every requested round accounted for" rounds
    (List.length summary.Dice.Orchestrator.rounds);
  check Alcotest.int "outcome counts partition the rounds" rounds
    (summary.Dice.Orchestrator.ok_rounds
    + summary.Dice.Orchestrator.degraded_rounds
    + summary.Dice.Orchestrator.failed_rounds);
  check Alcotest.int "no round raised" 0 summary.Dice.Orchestrator.failed_rounds;
  check Alcotest.int "no snapshot leaked" 0
    summary.Dice.Orchestrator.leaked_snapshots;
  check
    (Alcotest.list Alcotest.string)
    "all three fault classes detected under churn"
    [ "operator-mistake"; "policy-conflict"; "programming-error" ]
    (class_names summary.Dice.Orchestrator.faults);
  (* first_detection mirrors the detected classes. *)
  check Alcotest.int "first_detection covers each class" 3
    (List.length summary.Dice.Orchestrator.first_detection)

(* ------------------------------------------------------------------ *)
(* Quarantine policy                                                   *)
(* ------------------------------------------------------------------ *)

let quarantine_after_strikes () =
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 5) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  (* Node 999 does not exist: every round on it fails, so two strikes
     quarantine it and the scheduler falls back to node 0. *)
  let supervisor =
    { Dice.Orchestrator.max_strikes = 2; backoff_rounds = 1;
      round_wall_budget = None }
  in
  let summary =
    Dice.Orchestrator.run ~params:fast_params ~supervisor ~build ~gt
      ~nodes:[ 0; 999 ] ~rounds:8 ()
  in
  check Alcotest.int "all rounds ran" 8 (List.length summary.Dice.Orchestrator.rounds);
  Alcotest.(check bool) "failures recorded, not raised" true
    (summary.Dice.Orchestrator.failed_rounds >= 2);
  Alcotest.(check bool) "healthy node kept exploring" true
    (summary.Dice.Orchestrator.ok_rounds >= 4);
  (match summary.Dice.Orchestrator.quarantines with
  | [] -> Alcotest.fail "expected a quarantine event"
  | q :: _ ->
      check Alcotest.int "quarantined the failing node" 999
        q.Dice.Orchestrator.q_node;
      check Alcotest.int "after max_strikes failures" 2
        q.Dice.Orchestrator.q_strikes;
      Alcotest.(check bool) "backoff extends past the trigger round" true
        (q.Dice.Orchestrator.q_until_round > q.Dice.Orchestrator.q_round));
  (* Rounds scheduled while quarantined must not run on the bad node. *)
  List.iter
    (fun (q : Dice.Orchestrator.quarantine_event) ->
      List.iter
        (fun (r : Dice.Orchestrator.round) ->
          if
            r.Dice.Orchestrator.rd_index > q.Dice.Orchestrator.q_round
            && r.Dice.Orchestrator.rd_index < q.Dice.Orchestrator.q_until_round
          then
            Alcotest.(check bool) "quarantined node skipped" false
              (r.Dice.Orchestrator.rd_node = q.Dice.Orchestrator.q_node))
        summary.Dice.Orchestrator.rounds)
    summary.Dice.Orchestrator.quarantines;
  check Alcotest.int "failed initiations do not leak snapshots" 0
    summary.Dice.Orchestrator.leaked_snapshots

(* ------------------------------------------------------------------ *)
(* Default path pinned                                                 *)
(* ------------------------------------------------------------------ *)

let fault_strings x =
  List.sort String.compare
    (List.map
       (fun (f : Dice.Fault.t) -> Format.asprintf "%a" Dice.Fault.pp f)
       x.Dice.Explorer.x_faults)

let pin_deploy () =
  let graph = Topology.Gadget.embedded () in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  Dice.Inject.apply build
    (Dice.Inject.Crash_bug
       { at = Topology.Gadget.victim; community = Bgp.Community.make 64111 1 });
  (build, gt)

let default_path_pinned () =
  (* With no churn schedule and no deadlines, the supervised run must
     produce exactly what the bare exploration loop produces on an
     identically-seeded deployment: same faults, inputs, paths. *)
  let nodes = [ 0; Topology.Gadget.victim; 2 ] in
  let rounds = 3 in
  let interval = Netsim.Time.span_sec 5. in
  let build_a, gt_a = pin_deploy () in
  let summary =
    Dice.Orchestrator.run ~params:fast_params ~interval ~build:build_a ~gt:gt_a
      ~nodes ~rounds ()
  in
  let build_b, gt_b = pin_deploy () in
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build_b id)
      build_b.Topology.Build.net
  in
  let reference =
    List.init rounds (fun i ->
        let node = List.nth nodes (i mod List.length nodes) in
        let x =
          Dice.Explorer.explore_node ~params:fast_params ~build:build_b ~cut
            ~gt:gt_b ~node ()
        in
        Topology.Build.run_for build_b interval;
        x)
  in
  check Alcotest.int "every round Ok" rounds summary.Dice.Orchestrator.ok_rounds;
  List.iteri
    (fun i (r, x_ref) ->
      let x = Dice.Orchestrator.round_exploration_exn r in
      check Alcotest.int
        (Printf.sprintf "round %d: same node" i)
        x_ref.Dice.Explorer.x_node x.Dice.Explorer.x_node;
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "round %d: identical fault set" i)
        (fault_strings x_ref) (fault_strings x);
      check Alcotest.int
        (Printf.sprintf "round %d: identical input count" i)
        x_ref.Dice.Explorer.x_inputs x.Dice.Explorer.x_inputs;
      check Alcotest.int
        (Printf.sprintf "round %d: identical distinct-path count" i)
        x_ref.Dice.Explorer.x_distinct_paths x.Dice.Explorer.x_distinct_paths;
      Alcotest.(check bool)
        (Printf.sprintf "round %d: complete cut" i)
        false x.Dice.Explorer.x_partial)
    (List.combine summary.Dice.Orchestrator.rounds reference);
  check Alcotest.int "no snapshots left active" 0
    summary.Dice.Orchestrator.leaked_snapshots;
  check Alcotest.int "reference loop left none either" 0
    (Snapshot.Cut.active cut)

let suite =
  [ ("churn: Demo27 detects all classes under churn", `Slow,
     demo27_detects_under_churn);
    ("churn: quarantine after repeated failures", `Slow, quarantine_after_strikes);
    ("churn: default path identical to bare loop", `Slow, default_path_pinned) ]
