(* The cascade analyzer: flap spectrum, state-graph cycles, the three
   classifiers on hand-built timelines, the live oscillation gadget
   (detects under a dispute, stays silent without one), the online
   monitor's once-per-root dedupe, report validation, and the pin that
   a pooled and a sequential run serialize byte-identical reports. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Hand-built timelines                                                *)
(* ------------------------------------------------------------------ *)

let ev l = List.mapi (fun i e -> (i, e)) l

let flip ~t ~node ~prefix ~state =
  Telemetry.Sink.Trace
    { t_us = t; node; kind = "loc-rib"; detail = prefix ^ " " ^ state }

let sys ~t ~kind ~node =
  Telemetry.Sink.Sys { t_us = t; kind; nodes = [ node ]; detail = "test" }

(* A regular A -> B -> A -> B ... flip train for one (node, prefix). *)
let train ?(t0 = 0) ?(period = 1000) ~node ~prefix n =
  List.init n (fun i ->
      flip ~t:(t0 + (i * period)) ~node ~prefix
        ~state:(if i land 1 = 0 then "via 2" else "unreachable"))

(* ------------------------------------------------------------------ *)
(* Spectrum                                                            *)
(* ------------------------------------------------------------------ *)

let spectrum_regular_beat () =
  let s = Cascade.Spectrum.of_times [ 0; 1000; 2000; 3000; 4000 ] in
  check Alcotest.int "n" 5 s.Cascade.Spectrum.n;
  check Alcotest.(option int) "steady beat has a period" (Some 1000)
    s.Cascade.Spectrum.period_us;
  (* A burst followed by silence is not a beat: the max gap blows the
     4x-median regularity bound. *)
  let burst = Cascade.Spectrum.of_times [ 0; 10; 20; 30; 1_000_000 ] in
  check Alcotest.(option int) "burst has no period" None
    burst.Cascade.Spectrum.period_us;
  (* Too short to call. *)
  check Alcotest.(option int) "two points have no period" None
    (Cascade.Spectrum.of_times [ 0; 5 ]).Cascade.Spectrum.period_us;
  check Alcotest.int "empty" 0 Cascade.Spectrum.empty.Cascade.Spectrum.n

(* ------------------------------------------------------------------ *)
(* Graph: cycles vs one-way convergence                                *)
(* ------------------------------------------------------------------ *)

let graph_cycle_requires_revisit () =
  (* Revisiting a state closes a cycle... *)
  let tl = Cascade.Timeline.of_events (ev (train ~node:1 ~prefix:"10.0.0.0/24" 4)) in
  let g = Cascade.Graph.build tl in
  check Alcotest.int "two rib states" 2 (Cascade.Graph.vertex_count g);
  check Alcotest.bool "flip train closes a cycle" true (Cascade.Graph.sccs g <> []);
  (* ...while one-way convergence, however long, stays acyclic. *)
  let oneway =
    List.mapi
      (fun i via ->
        flip ~t:(i * 1000) ~node:1 ~prefix:"10.0.0.0/24" ~state:("via " ^ via))
      [ "2"; "3"; "4"; "5"; "6"; "7"; "8"; "9" ]
  in
  let g1 = Cascade.Graph.build (Cascade.Timeline.of_events (ev oneway)) in
  check Alcotest.int "eight rib states" 8 (Cascade.Graph.vertex_count g1);
  check Alcotest.bool "no cycle" true (Cascade.Graph.sccs g1 = [])

(* ------------------------------------------------------------------ *)
(* Classifiers on synthetic timelines                                  *)
(* ------------------------------------------------------------------ *)

let detect_route_oscillation () =
  let tl = Cascade.Timeline.of_events (ev (train ~node:3 ~prefix:"10.0.0.0/24" 9)) in
  let _g, cascades = Cascade.Detect.run tl in
  match cascades with
  | [ c ] ->
      check Alcotest.bool "kind" true
        (c.Cascade.Detect.c_kind = Cascade.Detect.Route_oscillation);
      check Alcotest.(list int) "node" [ 3 ] c.Cascade.Detect.c_nodes;
      check Alcotest.(list string) "prefix" [ "10.0.0.0/24" ]
        c.Cascade.Detect.c_prefixes;
      check Alcotest.int "flip count" 9 c.Cascade.Detect.c_count;
      check Alcotest.(option int) "steady period" (Some 1000)
        c.Cascade.Detect.c_period_us
  | l -> Alcotest.failf "expected one cascade, got %d" (List.length l)

let short_train_is_clean () =
  (* Below min_flips: a convergence transient, not an oscillation. *)
  let tl = Cascade.Timeline.of_events (ev (train ~node:3 ~prefix:"10.0.0.0/24" 5)) in
  check Alcotest.int "no cascade below min_flips" 0
    (List.length (Cascade.Detect.detect tl));
  (* Same length qualifies once min_flips is lowered. *)
  let params = { Cascade.Detect.default_params with Cascade.Detect.min_flips = 4 } in
  check Alcotest.int "tunable floor" 1
    (List.length (Cascade.Detect.detect ~params tl))

(* auto_params scales min_flips to the observed round cadence, with the
   fixed floor pinned as the lower bound: short timelines must keep the
   exact default classification, long ones must demand more evidence. *)
let auto_params_floor_and_scaling () =
  let rounds n =
    List.concat
      (List.init n (fun i ->
           [ Telemetry.Sink.Span_start
               { id = i + 1; parent = None; name = "round";
                 t_us = i * 1000; attrs = [ ("index", Telemetry.Json.Int i) ] };
             Telemetry.Sink.Span_end
               { id = i + 1; t_us = (i * 1000) + 500; attrs = [] } ]))
  in
  let base = Cascade.Detect.default_params in
  let short = Cascade.Timeline.of_events (ev (rounds 4)) in
  check Alcotest.int "short timeline pins the fixed floor"
    base.Cascade.Detect.min_flips
    (Cascade.Detect.auto_params short).Cascade.Detect.min_flips;
  let long = Cascade.Timeline.of_events (ev (rounds 40)) in
  check Alcotest.int "40 rounds demand rounds/2 flips" 20
    (Cascade.Detect.auto_params long).Cascade.Detect.min_flips;
  (* A raised floor stays the lower bound even on long timelines. *)
  let strict = { base with Cascade.Detect.min_flips = 25 } in
  check Alcotest.int "explicit floor survives auto-tuning" 25
    (Cascade.Detect.auto_params ~base:strict long).Cascade.Detect.min_flips;
  (* Monotone: more rounds never lower the bar. *)
  let f n =
    (Cascade.Detect.auto_params (Cascade.Timeline.of_events (ev (rounds n))))
      .Cascade.Detect.min_flips
  in
  List.iter
    (fun (a, b) ->
      check Alcotest.bool
        (Printf.sprintf "min_flips(%d) <= min_flips(%d)" a b)
        true
        (f a <= f b))
    [ (1, 8); (8, 16); (16, 64) ]

let detect_flap_storm () =
  let trains =
    List.concat
      (List.init 9 (fun p ->
           train ~t0:(p * 17) ~node:p ~prefix:(Printf.sprintf "10.%d.0.0/24" p) 8))
  in
  let _g, cascades = Cascade.Detect.run (Cascade.Timeline.of_events (ev trains)) in
  match cascades with
  | [ c ] ->
      check Alcotest.bool "storm, not nine reports" true
        (c.Cascade.Detect.c_kind = Cascade.Detect.Flap_storm);
      check Alcotest.int "all prefixes aggregated" 9
        (List.length c.Cascade.Detect.c_prefixes)
  | l -> Alcotest.failf "expected one storm, got %d cascade(s)" (List.length l)

let detect_quarantine_pingpong () =
  let pingpong =
    [ sys ~t:0 ~kind:"quarantine" ~node:4;
      sys ~t:1_000_000 ~kind:"unquarantine" ~node:4;
      sys ~t:2_000_000 ~kind:"quarantine" ~node:4 ]
  in
  let _g, cascades =
    Cascade.Detect.run (Cascade.Timeline.of_events (ev pingpong))
  in
  (match cascades with
  | [ c ] ->
      check Alcotest.bool "kind" true
        (c.Cascade.Detect.c_kind = Cascade.Detect.Quarantine_pingpong);
      check Alcotest.(list int) "node" [ 4 ] c.Cascade.Detect.c_nodes;
      check Alcotest.int "two quarantines" 2 c.Cascade.Detect.c_count
  | l -> Alcotest.failf "expected ping-pong, got %d cascade(s)" (List.length l));
  (* One quarantine that sticks is the supervisor working as designed. *)
  let once =
    [ sys ~t:0 ~kind:"quarantine" ~node:4;
      sys ~t:1_000_000 ~kind:"unquarantine" ~node:4 ]
  in
  check Alcotest.int "single quarantine is clean" 0
    (List.length (Cascade.Detect.detect (Cascade.Timeline.of_events (ev once))))

let cascade_fault_signature_is_stable () =
  let tl = Cascade.Timeline.of_events (ev (train ~node:3 ~prefix:"10.0.0.0/24" 9)) in
  let tl' =
    Cascade.Timeline.of_events
      (ev (train ~t0:500 ~period:2000 ~node:3 ~prefix:"10.0.0.0/24" 11))
  in
  let sig_of tl =
    match Cascade.Detect.detect tl with
    | [ c ] -> Dice.Signature.to_string (Dice.Signature.of_fault (Cascade.Detect.to_fault c))
    | l -> Alcotest.failf "expected one cascade, got %d" (List.length l)
  in
  (* Counts and timing differ between the two runs; the normalized
     signature must not. *)
  check Alcotest.string "identical signature across timings"
    "cascade|route-oscillation|-|3|prefix # flip-flopped # times across # \
     node(s) (period ~#s)"
    (sig_of tl);
  check Alcotest.string "byte-identical" (sig_of tl) (sig_of tl')

(* ------------------------------------------------------------------ *)
(* Streaming reader + sys records                                      *)
(* ------------------------------------------------------------------ *)

let reader_reports_line_numbers () =
  let path = Filename.temp_file "cascade-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "{\"type\":\"run\",\"seq\":0,\"schema\":\"dice-telemetry/1\",\"attrs\":{}}\n\
         this is not json\n\
         {\"seq\":1,\"type\":\"trace\",\"t_us\":5,\"node\":1,\"kind\":\"loc-rib\",\
         \"detail\":\"10.0.0.0/24 unreachable\"}\n\
         {\"seq\":2,\"type\":\"nonsense\"}\n";
      close_out oc;
      match Cascade.Timeline.of_file path with
      | Ok _ -> Alcotest.fail "malformed artifact accepted"
      | Error msgs ->
          check Alcotest.int "both bad lines reported" 2 (List.length msgs);
          List.iter2
            (fun want got ->
              check Alcotest.bool
                (Printf.sprintf "%S names its line" got)
                true
                (String.length got >= String.length want
                && String.equal (String.sub got 0 (String.length want)) want))
            [ "line 2:"; "line 4:" ]
            msgs)

let sys_records_roundtrip_and_validate () =
  let event =
    Telemetry.Sink.Sys
      { t_us = 42; kind = "churn.node-down"; nodes = [ 3; 5 ]; detail = "d" }
  in
  (match Telemetry.Sink.(of_json (to_json ~seq:7 event)) with
  | Ok (seq, ev) ->
      check Alcotest.int "seq" 7 seq;
      check Alcotest.bool "event" true (ev = event)
  | Error e -> Alcotest.failf "sys event did not round-trip: %s" e);
  (* A JSONL artifact carrying sys records passes schema validation
     and the stats count them. *)
  let path = Filename.temp_file "cascade-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.with_jsonl path (fun () ->
          Telemetry.sys_event ~kind:"quarantine" ~nodes:[ 1 ] ~detail:"t" ();
          Telemetry.sys_event ~kind:"unquarantine" ~nodes:[ 1 ] ~detail:"t" ());
      match Telemetry.Schema.validate_file path with
      | Ok stats -> check Alcotest.int "sys counted" 2 stats.Telemetry.Schema.v_sys
      | Error msgs -> Alcotest.failf "invalid: %s" (String.concat "; " msgs))

(* ------------------------------------------------------------------ *)
(* Online monitor                                                      *)
(* ------------------------------------------------------------------ *)

let online_monitor_reports_once () =
  Cascade.Online.with_monitor @@ fun mon ->
  check Alcotest.(list string) "clean window probes empty" []
    (List.map Dice.Fault.root (Cascade.Online.probe mon));
  List.iter (Telemetry.Sink.emit (Telemetry.sink ()))
    (train ~node:2 ~prefix:"10.0.0.0/24" 10);
  (match Cascade.Online.probe mon with
  | [ f ] ->
      check Alcotest.bool "cascade class" true
        (f.Dice.Fault.f_class = Dice.Fault.Cascade)
  | l -> Alcotest.failf "expected one fault, got %d" (List.length l));
  (* The window still holds the same evidence: the root was already
     reported, so the next probe must swallow it. *)
  check Alcotest.int "same root reported once" 0
    (List.length (Cascade.Online.probe mon))

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let report_roundtrip_and_validation () =
  let tl = Cascade.Timeline.of_events (ev (train ~node:3 ~prefix:"10.0.0.0/24" 9)) in
  let propagation, cascades = Cascade.Detect.run tl in
  let doc = Cascade.Report.to_json ~timeline:tl ~propagation cascades in
  (match Cascade.Report.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report invalid: %s" e);
  let path = Filename.temp_file "cascade-test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cascade.Report.write ~path doc;
      match Cascade.Report.validate_file path with
      | Ok _ -> ()
      | Error msgs -> Alcotest.failf "written report invalid: %s" (String.concat "; " msgs));
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Cascade.Report.validate (Telemetry.Json.String "nope")));
  check Alcotest.bool "wrong schema rejected" true
    (Result.is_error
       (Cascade.Report.validate
          (Telemetry.Json.Obj [ ("schema", Telemetry.Json.String "dice-telemetry/1") ])))

(* ------------------------------------------------------------------ *)
(* Scenario field                                                      *)
(* ------------------------------------------------------------------ *)

let legacy_scenario_decodes_without_cascade () =
  (* A pre-cascade corpus entry has no "cascade" field: it must decode
     (as false) so old corpora keep replaying. *)
  let legacy =
    {|{"scenario":"deploy","topo":{"name":"bad-gadget"},"keep":null,"seed":7,"inject":{"kind":"policy-dispute","cycle":[1,2,3],"victim":0},"settle_sec":0.0,"churn":[],"mangle":null,"run":{"mode":"direct","node":0,"peer":0,"input":null}}|}
  in
  match Triage.Scenario.of_string legacy with
  | Error e -> Alcotest.failf "legacy scenario rejected: %s" e
  | Ok (Triage.Scenario.Deploy d) ->
      check Alcotest.bool "defaults to false" false d.Triage.Scenario.dp_cascade
  | Ok (Triage.Scenario.Wire _) -> Alcotest.fail "decoded as wire"

(* ------------------------------------------------------------------ *)
(* The live gadget                                                     *)
(* ------------------------------------------------------------------ *)

(* Deploy Griffin's bare BAD GADGET, optionally inject the dispute
   wheel, record telemetry into a ring, and analyze it. *)
let run_gadget ?pool ~dispute () =
  let graph = Topology.Gadget.bad_gadget () in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  if dispute then
    Dice.Inject.apply build
      (Dice.Inject.Policy_dispute
         { cycle = Topology.Gadget.wheel; victim = Topology.Gadget.victim });
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let ring = Telemetry.Sink.ring ~capacity:65536 in
  let saved_sink = Telemetry.sink () in
  let saved_clock = Telemetry.current_clock () in
  Telemetry.set_sink ring;
  Telemetry.set_clock (fun () ->
      Netsim.Time.to_us (Netsim.Engine.now build.Topology.Build.engine));
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_sink saved_sink;
      Telemetry.set_clock saved_clock)
    (fun () ->
      Topology.Build.run_for build (Netsim.Time.span_sec 5.);
      let _summary =
        Dice.Orchestrator.run ?pool ~nodes:Topology.Gadget.wheel ~build ~gt
          ~rounds:3 ()
      in
      Cascade.Timeline.of_events (Telemetry.Sink.events ring))

let oscillation_gadget_detects () =
  let tl = run_gadget ~dispute:true () in
  let propagation, cascades = Cascade.Detect.run tl in
  let oscillations =
    List.filter
      (fun c -> c.Cascade.Detect.c_kind = Cascade.Detect.Route_oscillation)
      cascades
  in
  check Alcotest.bool "dispute wheel oscillates" true (oscillations <> []);
  check Alcotest.bool "cycle evidence in the graph" true
    (Cascade.Graph.sccs propagation <> []);
  let c = List.hd oscillations in
  check Alcotest.string "victim prefix" "192.0.0.0/24"
    (List.hd c.Cascade.Detect.c_prefixes);
  check Alcotest.string "pinned signature"
    "cascade|route-oscillation|-|1|prefix # flip-flopped # times across # node(s)"
    (Dice.Signature.to_string (Dice.Signature.of_fault (Cascade.Detect.to_fault c)))

let dispute_free_gadget_is_clean () =
  let tl = run_gadget ~dispute:false () in
  let _propagation, cascades = Cascade.Detect.run tl in
  check Alcotest.int "no cascades without a dispute" 0 (List.length cascades)

let seq_and_pooled_reports_identical () =
  let report_with pool =
    let tl = run_gadget ?pool ~dispute:true () in
    let propagation, cascades = Cascade.Detect.run tl in
    Telemetry.Json.to_string
      (Cascade.Report.to_json ~timeline:tl ~propagation cascades)
  in
  let seq = report_with None in
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let pooled = report_with (Some pool) in
      check Alcotest.string "byte-identical reports" seq pooled)

let suite =
  [ ("spectrum: regular beat vs burst", `Quick, spectrum_regular_beat);
    ("graph: cycle requires a revisit", `Quick, graph_cycle_requires_revisit);
    ("detect: route oscillation", `Quick, detect_route_oscillation);
    ("detect: short train is clean", `Quick, short_train_is_clean);
    ("detect: auto_params floor + scaling", `Quick, auto_params_floor_and_scaling);
    ("detect: flap storm aggregates", `Quick, detect_flap_storm);
    ("detect: quarantine ping-pong", `Quick, detect_quarantine_pingpong);
    ("detect: stable cascade signature", `Quick, cascade_fault_signature_is_stable);
    ("reader: malformed lines are numbered", `Quick, reader_reports_line_numbers);
    ("sys: codec round-trip + validation", `Quick, sys_records_roundtrip_and_validate);
    ("online: one report per root", `Quick, online_monitor_reports_once);
    ("report: round-trip + validation", `Quick, report_roundtrip_and_validation);
    ("scenario: legacy entries decode", `Quick, legacy_scenario_decodes_without_cascade);
    ("gadget: dispute oscillates", `Slow, oscillation_gadget_detects);
    ("gadget: dispute-free is clean", `Slow, dispute_free_gadget_is_clean);
    ("gadget: seq == pooled report", `Slow, seq_and_pooled_reports_identical) ]
