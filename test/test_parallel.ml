(* The parallel exploration engine: pool semantics (ordering, exception
   propagation, nested submission), solver memoization, and the
   sequential/parallel determinism contract of explore_node. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Parallel.Pool                                                       *)
(* ------------------------------------------------------------------ *)

let pool_map_list_ordering () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 200 Fun.id in
      check (Alcotest.list Alcotest.int) "results in input order"
        (List.map (fun i -> i * i) xs)
        (Parallel.Pool.map_list pool (fun i -> i * i) xs));
  (* Degenerate pool: everything runs inline on the caller. *)
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      check (Alcotest.list Alcotest.int) "sequential pool preserves order"
        [ 0; 2; 4; 6 ]
        (Parallel.Pool.map_list pool (fun i -> 2 * i) [ 0; 1; 2; 3 ]))

let pool_exception_propagation () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "lowest-index failure is re-raised" (Failure "boom7")
        (fun () ->
          ignore
            (Parallel.Pool.map_list pool
               (fun i -> if i >= 7 then failwith (Printf.sprintf "boom%d" i) else i)
               (List.init 32 Fun.id)));
      (* The pool survives a failed batch. *)
      check (Alcotest.list Alcotest.int) "pool usable after failure" [ 1; 2; 3 ]
        (Parallel.Pool.map_list pool Fun.id [ 1; 2; 3 ]))

(* Chunking is a throughput knob, not a semantics knob: every chunk
   size must produce the sequential result, in order, with the same
   exception choice. *)
let pool_chunk_determinism () =
  let xs = List.init 203 (fun i -> i - 100) in
  let f i = (i * i) + (3 * i) in
  let want = List.map f xs in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun chunk ->
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "chunk=%d equals sequential map" chunk)
            want
            (Parallel.Pool.map_list ~chunk pool f xs))
        [ 1; 7; 64 ];
      (* Exception semantics: the first failing element in input order
         wins regardless of how the list was chunked. *)
      List.iter
        (fun chunk ->
          Alcotest.check_raises
            (Printf.sprintf "chunk=%d raises first failure" chunk)
            (Failure "boom11")
            (fun () ->
              ignore
                (Parallel.Pool.map_list ~chunk pool
                   (fun i ->
                     if i >= 11 then failwith (Printf.sprintf "boom%d" i)
                     else i)
                   (List.init 40 Fun.id))))
        [ 1; 7; 64 ]);
  (* Chunked dispatch composes with the inline degenerate pool too. *)
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      check (Alcotest.list Alcotest.int) "chunk=7 on a sequential pool" want
        (Parallel.Pool.map_list ~chunk:7 pool f xs))

(* A job that fans out on the same pool and awaits: help-first await
   must keep this deadlock-free even with every worker occupied. *)
let pool_nested_submission () =
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      let outer =
        Parallel.Pool.map_list pool
          (fun i ->
            let inner =
              Parallel.Pool.map_list pool (fun j -> (10 * i) + j) [ 0; 1; 2 ]
            in
            List.fold_left ( + ) 0 inner)
          (List.init 8 Fun.id)
      in
      check (Alcotest.list Alcotest.int) "nested fan-out"
        (List.init 8 (fun i -> (30 * i) + 3))
        outer)

let pool_submit_await () =
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      let tasks =
        List.init 16 (fun i -> Parallel.Pool.submit pool (fun () -> i * 3))
      in
      check (Alcotest.list Alcotest.int) "await returns job results"
        (List.init 16 (fun i -> i * 3))
        (List.map Parallel.Pool.await tasks);
      check Alcotest.int "pool size" 3 (Parallel.Pool.size pool))

let pool_await_timeout () =
  Parallel.Pool.with_pool ~domains:2 (fun pool ->
      (* A finished job: timeout path returns the value. *)
      let quick = Parallel.Pool.submit pool (fun () -> 41 + 1) in
      check (Alcotest.option Alcotest.int) "completed job" (Some 42)
        (Parallel.Pool.await_timeout quick ~timeout_s:5.0);
      (* A job that outlives its deadline: None, and the pool survives.
         Wait for a worker to pick it up first — the timed wait helps
         with queued jobs, and the caller must not adopt this one. *)
      let started = Atomic.make false in
      let gate = Atomic.make false in
      let slow =
        Parallel.Pool.submit pool
          (fun () ->
            Atomic.set started true;
            while not (Atomic.get gate) do Domain.cpu_relax () done;
            "done")
      in
      while not (Atomic.get started) do Domain.cpu_relax () done;
      check (Alcotest.option Alcotest.string) "deadline expired" None
        (Parallel.Pool.await_timeout slow ~timeout_s:0.05);
      Atomic.set gate true;
      (* The job was not cancelled — a later await still collects it. *)
      check Alcotest.string "job finished after release" "done"
        (Parallel.Pool.await slow);
      (* Failures propagate through the timed wait too. *)
      let bad = Parallel.Pool.submit pool (fun () -> failwith "timed boom") in
      Alcotest.check_raises "exception re-raised" (Failure "timed boom")
        (fun () -> ignore (Parallel.Pool.await_timeout bad ~timeout_s:5.0));
      (* Helping: the timed wait drains queued work instead of spinning,
         so a single-worker backlog still completes within the deadline. *)
      let tasks =
        List.init 64 (fun i -> Parallel.Pool.submit pool (fun () -> i))
      in
      List.iteri
        (fun i task ->
          check (Alcotest.option Alcotest.int) "backlog drained via helping"
            (Some i)
            (Parallel.Pool.await_timeout task ~timeout_s:5.0))
        tasks)

(* ------------------------------------------------------------------ *)
(* Solver memoization                                                  *)
(* ------------------------------------------------------------------ *)

let random_constraint_set rng =
  let open Concolic.Expr in
  let x = var "memo_x" ~lo:0 ~hi:1023 in
  let y = var "memo_y" ~lo:0 ~hi:255 in
  let c () = Const (Netsim.Rng.int_in rng 0 300) in
  let base =
    [ Lt (Var x, c ()); Le (c (), Var y); Eq (Add (Var x, Var y), c ()) ]
  in
  (* Sometimes add a contradiction-prone conjunct for Unsat coverage. *)
  if Netsim.Rng.int_in rng 0 1 = 0 then Lt (Var y, Const 0) :: base else base

let outcome_equal (a : Concolic.Solver.outcome) (b : Concolic.Solver.outcome) =
  match (a, b) with
  | Concolic.Solver.Sat m1, Concolic.Solver.Sat m2 -> m1 = m2
  | Concolic.Solver.Unsat, Concolic.Solver.Unsat -> true
  | Concolic.Solver.Unknown, Concolic.Solver.Unknown -> true
  | _ -> false

let solver_cache_transparent () =
  let rng = Netsim.Rng.create 0xCAFE in
  let sets = List.init 50 (fun _ -> random_constraint_set rng) in
  Concolic.Solver.clear_cache ();
  List.iter
    (fun constraints ->
      Concolic.Solver.set_cache_enabled false;
      let off = Concolic.Solver.solve constraints in
      Concolic.Solver.set_cache_enabled true;
      let cold = Concolic.Solver.solve constraints in
      let warm = Concolic.Solver.solve constraints in
      Alcotest.(check bool) "cache off vs cold miss" true (outcome_equal off cold);
      Alcotest.(check bool) "cold miss vs warm hit" true (outcome_equal cold warm))
    sets

let solver_cache_hit_rate () =
  let open Concolic.Expr in
  let x = var "memo_p" ~lo:0 ~hi:65535 in
  let y = var "memo_q" ~lo:0 ~hi:255 in
  (* A generational-search-shaped workload: a shared prefix of path
     conditions, re-solved with successive flipped tails, then the
     whole batch re-solved (as the next exploration round would). *)
  let prefix = [ Lt (Var x, Const 4096); Le (Const 3, Var y) ] in
  let tails = List.init 8 (fun i -> Eq (Var y, Const (i + 3))) in
  let batch = List.map (fun t -> t :: prefix) tails in
  Concolic.Solver.clear_cache ();
  Concolic.Solver.reset_stats ();
  List.iter (fun c -> ignore (Concolic.Solver.solve c)) batch;
  let misses_after_first = (Concolic.Solver.stats ()).Concolic.Solver.cache_misses in
  List.iter (fun c -> ignore (Concolic.Solver.solve c)) batch;
  (* Permutations of a set share the entry: order canonicalization. *)
  List.iter (fun c -> ignore (Concolic.Solver.solve (List.rev c))) batch;
  let hits = (Concolic.Solver.stats ()).Concolic.Solver.cache_hits in
  check Alcotest.int "first pass is all misses" (List.length batch) misses_after_first;
  check Alcotest.int "repeat passes are all hits" (2 * List.length batch) hits;
  check Alcotest.int "no extra solves"
    misses_after_first
    (Concolic.Solver.stats ()).Concolic.Solver.cache_misses

let solver_stats_race_free () =
  (* Concurrent solves from pool workers must not lose increments. *)
  let open Concolic.Expr in
  Concolic.Solver.set_cache_enabled false;
  Concolic.Solver.reset_stats ();
  let n = 64 in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Parallel.Pool.map_list pool
           (fun i ->
             let x = var "race_x" ~lo:0 ~hi:4095 in
             Concolic.Solver.solve
               [ Eq (Var x, Const (i mod 17)); Lt (Var x, Const 4096) ])
           (List.init n Fun.id)));
  Concolic.Solver.set_cache_enabled true;
  let st = Concolic.Solver.stats () in
  let total =
    st.Concolic.Solver.solved_sat + st.Concolic.Solver.solved_unsat
    + st.Concolic.Solver.solved_unknown
  in
  check Alcotest.int "every solve counted exactly once" n total

(* ------------------------------------------------------------------ *)
(* Parallel exploration determinism                                    *)
(* ------------------------------------------------------------------ *)

let fault_strings x =
  List.sort String.compare
    (List.map
       (fun (f : Dice.Fault.t) -> Format.asprintf "%a" Dice.Fault.pp f)
       x.Dice.Explorer.x_faults)

let explore_gadget ~domains =
  (* Quiescent gadget deployment with a seeded crash bug: exploration
     finds real faults, and the live system does not drift between the
     sequential and the parallel run. *)
  let graph = Topology.Gadget.embedded () in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let node = Topology.Gadget.victim in
  Dice.Inject.apply build
    (Dice.Inject.Crash_bug { at = node; community = Bgp.Community.make 64111 1 });
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let params =
    { Dice.Explorer.default_params with
      Dice.Explorer.limits =
        { Concolic.Engine.max_inputs = 16; max_branches = 24; solver_nodes = 8_000 };
      fuzz_extra = 4;
      shadow_budget = 15_000;
      domains }
  in
  Dice.Explorer.explore_node ~params ~build ~cut ~gt ~node ()

let explore_node_parallel_deterministic () =
  let seq = explore_gadget ~domains:1 in
  let par = explore_gadget ~domains:4 in
  check Alcotest.int "reported pool size" 4 par.Dice.Explorer.x_domains;
  Alcotest.(check bool) "exploration found faults" true
    (seq.Dice.Explorer.x_faults <> []);
  check (Alcotest.list Alcotest.string) "identical deduped fault set"
    (fault_strings seq) (fault_strings par);
  check Alcotest.int "identical input count" seq.Dice.Explorer.x_inputs
    par.Dice.Explorer.x_inputs;
  check Alcotest.int "identical distinct-path count"
    seq.Dice.Explorer.x_distinct_paths par.Dice.Explorer.x_distinct_paths;
  check Alcotest.int "identical shadow-run count" seq.Dice.Explorer.x_shadow_runs
    par.Dice.Explorer.x_shadow_runs;
  check Alcotest.int "identical crash count" seq.Dice.Explorer.x_crashes
    par.Dice.Explorer.x_crashes

let suite =
  [ ("pool: map_list ordering", `Quick, pool_map_list_ordering);
    ("pool: chunk sizes are semantically invisible", `Quick,
     pool_chunk_determinism);
    ("pool: exception propagation", `Quick, pool_exception_propagation);
    ("pool: nested submission is deadlock-free", `Quick, pool_nested_submission);
    ("pool: submit/await", `Quick, pool_submit_await);
    ("pool: await_timeout", `Quick, pool_await_timeout);
    ("solver: cache is semantically transparent", `Quick, solver_cache_transparent);
    ("solver: repeated-prefix workload hit rate", `Quick, solver_cache_hit_rate);
    ("solver: atomic stats under the pool", `Quick, solver_stats_race_free);
    ("explorer: domains=4 matches domains=1 on the gadget", `Slow,
     explore_node_parallel_deterministic) ]
