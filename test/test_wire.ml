(* RFC 4271 wire codec: golden bytes, round-trips, and the
   notification codes produced for malformed input. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (List.init (String.length s) (String.get s)))

let msg_testable =
  Alcotest.testable (fun ppf m -> Bgp.Msg.pp ppf m) ( = )

let decode_ok raw =
  match Bgp.Wire.decode raw with
  | Ok m -> m
  | Error e -> Alcotest.failf "decode failed: %a" Bgp.Wire.pp_error e

let decode_err raw =
  match Bgp.Wire.decode raw with
  | Ok m -> Alcotest.failf "expected decode error, got %a" Bgp.Msg.pp m
  | Error e -> e

(* --- golden bytes --- *)

let golden_keepalive () =
  let raw = Bgp.Wire.encode Bgp.Msg.Keepalive in
  check Alcotest.string "19 bytes: marker + len 19 + type 4"
    ("ffffffffffffffffffffffffffffffff" ^ "0013" ^ "04")
    (hex raw);
  check msg_testable "roundtrip" Bgp.Msg.Keepalive (decode_ok raw)

let golden_open () =
  let m =
    Bgp.Msg.Open
      { version = 4; my_as = 65001; hold_time = 90;
        bgp_id = Bgp.Ipv4.of_string_exn "10.0.0.1" }
  in
  let raw = Bgp.Wire.encode m in
  (* body: 04 | fde9 | 005a | 0a000001 | 00 *)
  check Alcotest.string "golden OPEN"
    ("ffffffffffffffffffffffffffffffff" ^ "001d" ^ "01" ^ "04" ^ "fde9" ^ "005a"
   ^ "0a000001" ^ "00")
    (hex raw);
  check msg_testable "roundtrip" m (decode_ok raw)

let golden_update () =
  let attrs =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq [ 65001; 65002 ] ]
      ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.1")
      ()
  in
  let m =
    Bgp.Msg.Update
      { withdrawn = []; attrs = Some attrs;
        nlri = [ Bgp.Prefix.of_string_exn "192.0.2.0/24" ] }
  in
  let raw = Bgp.Wire.encode m in
  (* attrs: origin 40 01 01 00 | as_path 40 02 06 02 02 fde9 fdea
            | next_hop 40 03 04 0a000001 *)
  check Alcotest.string "golden UPDATE"
    ("ffffffffffffffffffffffffffffffff" ^ "002f" ^ "02" ^ "0000" ^ "0014"
   ^ "400101" ^ "00" ^ "400206" ^ "0202fde9fdea" ^ "400304" ^ "0a000001"
   ^ "18c00002")
    (hex raw);
  check msg_testable "roundtrip" m (decode_ok raw)

let golden_notification () =
  let m = Bgp.Msg.Notification { code = 6; subcode = 0; data = "" } in
  let raw = Bgp.Wire.encode m in
  check Alcotest.string "golden NOTIFICATION"
    ("ffffffffffffffffffffffffffffffff" ^ "0015" ^ "03" ^ "06" ^ "00")
    (hex raw);
  check msg_testable "roundtrip" m (decode_ok raw)

(* --- error paths --- *)

let patch raw pos byte =
  let b = Bytes.of_string raw in
  Bytes.set b pos (Char.chr byte);
  Bytes.to_string b

let bad_marker () =
  let raw = patch (Bgp.Wire.encode Bgp.Msg.Keepalive) 3 0x00 in
  let e = decode_err raw in
  check Alcotest.int "code" Bgp.Msg.Error.message_header e.Bgp.Wire.code;
  check Alcotest.int "subcode" Bgp.Msg.Error.bad_marker e.Bgp.Wire.subcode

let bad_length_field () =
  let raw = patch (Bgp.Wire.encode Bgp.Msg.Keepalive) 17 0x20 in
  let e = decode_err raw in
  check Alcotest.int "subcode" Bgp.Msg.Error.bad_length e.Bgp.Wire.subcode

let bad_type () =
  let raw = patch (Bgp.Wire.encode Bgp.Msg.Keepalive) 18 9 in
  let e = decode_err raw in
  check Alcotest.int "subcode" Bgp.Msg.Error.bad_type e.Bgp.Wire.subcode

let update_raw () =
  let attrs =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq [ 65001 ] ]
      ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.1")
      ()
  in
  Bgp.Wire.encode
    (Bgp.Msg.Update
       { withdrawn = []; attrs = Some attrs;
         nlri = [ Bgp.Prefix.of_string_exn "192.0.2.0/24" ] })

let invalid_origin_value () =
  (* origin attribute value sits at offset 19+2+2+3 *)
  let e = decode_err (patch (update_raw ()) 26 0xEE) in
  check Alcotest.int "code" Bgp.Msg.Error.update_message e.Bgp.Wire.code;
  check Alcotest.int "subcode" Bgp.Msg.Error.invalid_origin e.Bgp.Wire.subcode

let bad_attr_flags () =
  (* origin flags at offset 23: well-known must be transitive, 0x80 is
     optional -> attribute-flags error *)
  let e = decode_err (patch (update_raw ()) 23 0x80) in
  check Alcotest.int "subcode" Bgp.Msg.Error.attribute_flags e.Bgp.Wire.subcode

let missing_wellknown () =
  (* Craft an UPDATE with NLRI but an empty attribute section. *)
  let b = Buffer.create 32 in
  for _ = 1 to 16 do Buffer.add_char b '\xff' done;
  let body = "\x00\x00" ^ "\x00\x00" ^ "\x18\xc0\x00\x02" in
  let len = 19 + String.length body in
  Buffer.add_char b (Char.chr (len lsr 8));
  Buffer.add_char b (Char.chr (len land 0xFF));
  Buffer.add_char b '\x02';
  Buffer.add_string b body;
  let e = decode_err (Buffer.contents b) in
  check Alcotest.int "subcode" Bgp.Msg.Error.missing_wellknown e.Bgp.Wire.subcode

let open_version_check () =
  let raw =
    Bgp.Wire.encode
      (Bgp.Msg.Open
         { version = 4; my_as = 1; hold_time = 90;
           bgp_id = Bgp.Ipv4.of_string_exn "1.1.1.1" })
  in
  (* version byte at 19 *)
  let e = decode_err (patch raw 19 5) in
  check Alcotest.int "code" Bgp.Msg.Error.open_message e.Bgp.Wire.code;
  check Alcotest.int "subcode" Bgp.Msg.Error.unsupported_version e.Bgp.Wire.subcode

let hold_time_check () =
  let raw =
    Bgp.Wire.encode
      (Bgp.Msg.Open
         { version = 4; my_as = 1; hold_time = 2;
           bgp_id = Bgp.Ipv4.of_string_exn "1.1.1.1" })
  in
  let e = decode_err raw in
  check Alcotest.int "subcode" Bgp.Msg.Error.unacceptable_hold_time e.Bgp.Wire.subcode

let truncated () =
  let raw = Bgp.Wire.encode Bgp.Msg.Keepalive in
  let e = decode_err (String.sub raw 0 10) in
  check Alcotest.int "code" Bgp.Msg.Error.message_header e.Bgp.Wire.code

let pure_withdrawal () =
  let m =
    Bgp.Msg.Update
      { withdrawn = [ Bgp.Prefix.of_string_exn "192.0.2.0/24" ]; attrs = None; nlri = [] }
  in
  check msg_testable "withdrawal roundtrip" m (decode_ok (Bgp.Wire.encode m))

let unknown_transitive_attr () =
  (* An optional transitive attribute the decoder does not know: kept,
     with the Partial bit set. *)
  let attrs =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq [ 65001 ] ]
      ~unknown:[ { Bgp.Attr.u_type = 99; u_flags = 0xC0; u_value = "\x01\x02" } ]
      ~next_hop:(Bgp.Ipv4.of_string_exn "10.0.0.1")
      ()
  in
  let m =
    Bgp.Msg.Update
      { withdrawn = []; attrs = Some attrs; nlri = [ Bgp.Prefix.of_string_exn "192.0.2.0/24" ] }
  in
  match decode_ok (Bgp.Wire.encode m) with
  | Bgp.Msg.Update { attrs = Some a; _ } -> (
      match a.Bgp.Attr.unknown with
      | [ u ] ->
          check Alcotest.int "type kept" 99 u.Bgp.Attr.u_type;
          Alcotest.(check bool) "partial bit set" true
            (u.Bgp.Attr.u_flags land Bgp.Attr.flag_partial <> 0);
          check Alcotest.string "value kept" "\x01\x02" u.Bgp.Attr.u_value
      | _ -> Alcotest.fail "expected one unknown attribute")
  | _ -> Alcotest.fail "expected UPDATE"

(* --- property: roundtrip over random well-formed updates --- *)

let arb_attrs =
  let open QCheck.Gen in
  let gen =
    let* origin = oneofl [ Bgp.Attr.Igp; Bgp.Attr.Egp; Bgp.Attr.Incomplete ] in
    let* path = list_size (int_bound 4) (int_range 1 65535) in
    let* med = opt (int_bound 0xFFFF) in
    let* lp = opt (int_bound 1000) in
    let* atomic = bool in
    let* coms = list_size (int_bound 3) (map2 Bgp.Community.make (int_bound 0xFFFF) (int_bound 0xFFFF)) in
    let* nh = map (fun x -> Bgp.Ipv4.of_int32_exn (abs x land 0xFFFF_FFFF)) int in
    let coms = List.sort_uniq Bgp.Community.compare coms in
    let as_path = if path = [] then [] else [ Bgp.As_path.Seq path ] in
    return
      (Bgp.Attr.make ~origin ~as_path ~med ~local_pref:lp ~atomic_aggregate:atomic
         ~communities:coms ~next_hop:nh ())
  in
  gen

let arb_update =
  let open QCheck.Gen in
  let prefix =
    map2
      (fun addr len -> Bgp.Prefix.make (Bgp.Ipv4.of_int32_exn (abs addr land 0xFFFF_FFFF)) len)
      int (int_bound 32)
  in
  let gen =
    let* withdrawn = list_size (int_bound 3) prefix in
    let* nlri = list_size (int_range 1 4) prefix in
    let* attrs = arb_attrs in
    return { Bgp.Msg.withdrawn; attrs = Some attrs; nlri }
  in
  QCheck.make
    ~print:(fun u -> Format.asprintf "%a" Bgp.Msg.pp (Bgp.Msg.Update u))
    gen

let roundtrip_prop =
  QCheck.Test.make ~name:"wire: encode/decode roundtrip on random updates" ~count:300
    arb_update
    (fun u ->
      (* Communities are kept sorted by the codec's producer side. *)
      let m = Bgp.Msg.Update u in
      match Bgp.Wire.decode (Bgp.Wire.encode m) with
      | Ok m' -> m = m'
      | Error _ -> false)

let decode_never_crashes =
  QCheck.Test.make ~name:"wire: decode never raises on fuzz bytes" ~count:10_000
    QCheck.(string_of_size (QCheck.Gen.int_bound 128))
    (fun s ->
      match Bgp.Wire.decode s with Ok _ | Error _ -> true)

(* Mangled valid messages: run every corpus fault kind over random
   well-formed UPDATEs.  Decode must stay total and must never report
   the reserved codec-crash error — that code only exists for decoder
   bugs caught at the boundary. *)
let mangled_corpus_graceful =
  QCheck.Test.make
    ~name:"wire: mangled valid messages decode gracefully" ~count:2_000
    QCheck.(pair arb_update (int_bound 0xFFFF))
    (fun (u, seed) ->
      let raw = Bgp.Wire.encode (Bgp.Msg.Update u) in
      let rng = Netsim.Rng.create seed in
      List.for_all
        (fun kind ->
          let s = Netsim.Mangler.mutate rng kind raw in
          match Bgp.Wire.decode s with
          | Ok _ -> true
          | Error e -> not (Bgp.Wire.is_codec_crash e))
        Netsim.Mangler.corpus_kinds)

(* --- decode_graceful: RFC 7606 dispositions --- *)

let graceful_valid_is_msg () =
  match Bgp.Wire.decode_graceful (update_raw ()) with
  | Bgp.Wire.Msg (Bgp.Msg.Update _) -> ()
  | _ -> Alcotest.fail "expected Msg (Update _)"

let graceful_attr_error_is_withdraw () =
  (* Invalid ORIGIN is a path-attribute error: the session survives and
     the affected NLRI is handed back for withdrawal. *)
  match Bgp.Wire.decode_graceful (patch (update_raw ()) 26 0xEE) with
  | Bgp.Wire.Treat_as_withdraw { withdrawn; nlri; err } ->
      check Alcotest.int "error code" Bgp.Msg.Error.update_message err.Bgp.Wire.code;
      check (Alcotest.list Alcotest.string) "affected nlri" [ "192.0.2.0/24" ]
        (List.map Bgp.Prefix.to_string nlri);
      check Alcotest.int "no withdrawn routes in message" 0 (List.length withdrawn)
  | Bgp.Wire.Msg _ -> Alcotest.fail "corrupted ORIGIN decoded as a message"
  | Bgp.Wire.Reset _ -> Alcotest.fail "attribute error must not reset"

let graceful_header_error_is_reset () =
  match Bgp.Wire.decode_graceful (patch (update_raw ()) 3 0x00) with
  | Bgp.Wire.Reset err ->
      check Alcotest.int "error code" Bgp.Msg.Error.message_header err.Bgp.Wire.code
  | _ -> Alcotest.fail "marker corruption must reset the session"

let strict_decode_still_rejects_attr_errors () =
  (* The strict entry point is unchanged: any error, attribute or
     envelope, is an [Error]. *)
  let e = decode_err (patch (update_raw ()) 26 0xEE) in
  check Alcotest.int "code" Bgp.Msg.Error.update_message e.Bgp.Wire.code;
  Alcotest.(check bool) "not a codec crash" false (Bgp.Wire.is_codec_crash e)

(* Single-byte mutations of valid messages either decode to *some*
   message or fail with a well-formed notification code — never an
   exception, and never a code outside RFC 4271's range. *)
let mutation_robustness =
  QCheck.Test.make ~name:"wire: single-byte mutations are handled gracefully" ~count:500
    QCheck.(pair (int_bound 1000) (int_bound 255))
    (fun (pos_seed, byte) ->
      let raw = update_raw () in
      let pos = pos_seed mod String.length raw in
      let b = Bytes.of_string raw in
      Bytes.set b pos (Char.chr byte);
      match Bgp.Wire.decode (Bytes.to_string b) with
      | Ok _ -> true
      | Error e -> e.Bgp.Wire.code >= 1 && e.Bgp.Wire.code <= 6)

let suite =
  [ ("golden: KEEPALIVE", `Quick, golden_keepalive);
    qtest mutation_robustness;
    ("golden: OPEN", `Quick, golden_open);
    ("golden: UPDATE", `Quick, golden_update);
    ("golden: NOTIFICATION", `Quick, golden_notification);
    ("error: bad marker", `Quick, bad_marker);
    ("error: bad length", `Quick, bad_length_field);
    ("error: bad type", `Quick, bad_type);
    ("error: invalid ORIGIN value", `Quick, invalid_origin_value);
    ("error: bad attribute flags", `Quick, bad_attr_flags);
    ("error: missing well-known attribute", `Quick, missing_wellknown);
    ("error: unsupported version", `Quick, open_version_check);
    ("error: unacceptable hold time", `Quick, hold_time_check);
    ("error: truncated buffer", `Quick, truncated);
    ("update: pure withdrawal", `Quick, pure_withdrawal);
    ("update: unknown transitive attribute", `Quick, unknown_transitive_attr);
    ("graceful: valid message is Msg", `Quick, graceful_valid_is_msg);
    ("graceful: attribute error is treat-as-withdraw", `Quick, graceful_attr_error_is_withdraw);
    ("graceful: header error is reset", `Quick, graceful_header_error_is_reset);
    ("graceful: strict decode still rejects", `Quick, strict_decode_still_rejects_attr_errors);
    qtest roundtrip_prop;
    qtest decode_never_crashes;
    qtest mangled_corpus_graceful ]
