(* The fault-triage engine: stable signatures, the delta-debugging
   minimizer, and the persistent regression corpus. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Shared scenarios                                                    *)
(* ------------------------------------------------------------------ *)

(* The same 6-node Internet as test_dice's [small_build]. *)
let small_random =
  Triage.Scenario.Random { r_seed = 5; r_tier1 = 1; r_transit = 2; r_stub = 3 }

let fast_exploration =
  { Triage.Scenario.default_exploration with
    Triage.Scenario.ex_max_inputs = 24;
    ex_max_branches = 32;
    ex_solver_nodes = 10_000;
    ex_fuzz_extra = 6;
    ex_shadow_budget = 15_000 }

let hijack_explore =
  Triage.Scenario.Deploy
    { Triage.Scenario.dp_topo = small_random;
      dp_keep = None;
      dp_seed = 5;
      dp_inject = Some (Dice.Inject.Prefix_hijack { at = 5; victim = 4 });
      dp_settle_sec = 5.;
      dp_churn = [];
      dp_mangle = None;
      dp_confuzz = [];
      dp_cascade = false;
      dp_mode = Triage.Scenario.Explore fast_exploration }

let dispute_direct =
  Triage.Scenario.Deploy
    { Triage.Scenario.dp_topo = Triage.Scenario.Bad_gadget;
      dp_keep = None;
      dp_seed = 7;
      dp_inject =
        Some (Dice.Inject.Policy_dispute { cycle = [ 1; 2; 3 ]; victim = 0 });
      dp_settle_sec = 5.;
      dp_churn = [];
      dp_mangle = None;
      dp_confuzz = [];
      dp_cascade = false;
      dp_mode = Triage.Scenario.Direct { dr_node = 0; dr_peer = 0; dr_input = None } }

let signature_strings outcome =
  List.sort_uniq String.compare
    (List.map Triage.Signature.to_string outcome.Triage.Scenario.o_signatures)

let with_temp_dir f =
  let dir = Filename.temp_file "triage-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Signatures                                                          *)
(* ------------------------------------------------------------------ *)

let signature_roundtrip () =
  let graph = Topology.Gadget.bad_gadget () in
  let sigs =
    [ Triage.Signature.make ~graph ~node:2 ~property:"origin-authenticity"
        Dice.Fault.Operator_mistake "node 7 originated 10.0.0.0/8 owned by 3";
      Triage.Signature.make ~role:Triage.Signature.wire_role ~node:(-1)
        ~property:"codec-crash" Dice.Fault.Programming_error "len 4097 > max";
      (* detail containing the field separator must survive *)
      Triage.Signature.make ~node:0 ~property:"p" Dice.Fault.Policy_conflict
        "evidence | with | pipes" ]
  in
  List.iter
    (fun sg ->
      match Triage.Signature.of_string (Triage.Signature.to_string sg) with
      | Ok sg' ->
          check Alcotest.string "round-trips"
            (Triage.Signature.to_string sg)
            (Triage.Signature.to_string sg')
      | Error e -> Alcotest.failf "of_string failed: %s" e)
    sigs;
  Alcotest.(check bool)
    "garbage rejected" true
    (Result.is_error (Triage.Signature.of_string "not-a-signature"))

(* Same detections, same fingerprints, whether the exploration runs
   sequentially or fanned out over a domain pool. *)
let signature_stability_across_domains () =
  let run_with domains =
    let params =
      { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
    in
    let graph = Topology.Generate.generate ~params (Netsim.Rng.create 5) in
    let build = Topology.Build.deploy ~seed:5 graph in
    Topology.Build.start_all build;
    assert (Topology.Build.converge build);
    Dice.Inject.apply build (Dice.Inject.Prefix_hijack { at = 5; victim = 4 });
    Topology.Build.run_for build (Netsim.Time.span_sec 5.);
    let gt = Dice.Checks.ground_truth_of_graph graph in
    let params =
      { Dice.Explorer.default_params with
        Dice.Explorer.limits =
          { Concolic.Engine.max_inputs = 24; max_branches = 32; solver_nodes = 10_000 };
        fuzz_extra = 6;
        shadow_budget = 15_000;
        domains }
    in
    let summary = Dice.Orchestrator.run ~params ~build ~gt ~rounds:6 () in
    List.sort_uniq String.compare
      (List.map
         (fun (sg, _) -> Triage.Signature.to_string sg)
         summary.Dice.Orchestrator.signatures)
  in
  let seq = run_with 1 in
  let pooled = run_with 2 in
  Alcotest.(check bool) "sequential run detects something" true (seq <> []);
  Alcotest.(check (list string)) "identical signature sets" seq pooled

(* ------------------------------------------------------------------ *)
(* ddmin                                                               *)
(* ------------------------------------------------------------------ *)

let ddmin_generic () =
  let wanted = [ 3; 7; 15 ] in
  let test subset = List.for_all (fun w -> List.mem w subset) wanted in
  let items = List.init 20 (fun i -> i) in
  let r1 = Triage.Minimize.ddmin ~test items in
  let r2 = Triage.Minimize.ddmin ~test items in
  check Alcotest.(list int) "exactly the needed elements" wanted r1;
  check Alcotest.(list int) "deterministic" r1 r2;
  check Alcotest.(list int) "vacuous test -> empty" []
    (Triage.Minimize.ddmin ~test:(fun _ -> true) items);
  (* duplicates are handled positionally *)
  let dup = [ 1; 1; 2; 1 ] in
  let test subset = List.mem 2 subset in
  check Alcotest.(list int) "duplicates" [ 2 ] (Triage.Minimize.ddmin ~test dup)

(* ------------------------------------------------------------------ *)
(* Scenario codec and replay                                           *)
(* ------------------------------------------------------------------ *)

let scenario_json_roundtrip () =
  let rich =
    Triage.Scenario.Deploy
      { Triage.Scenario.dp_topo = small_random;
        dp_keep = Some [ 0; 2; 4 ];
        dp_seed = 11;
        dp_inject =
          Some
            (Dice.Inject.Crash_bug
               { at = 1; community = Bgp.Community.make 64999 13 });
        dp_settle_sec = 2.5;
        dp_churn =
          [ Netsim.Churn.entry ~at:(Netsim.Time.span_sec 1.) (Netsim.Churn.Node_down 2);
            Netsim.Churn.entry ~at:(Netsim.Time.span_sec 2.)
              (Netsim.Churn.Link_down (0, 4));
            Netsim.Churn.entry ~at:(Netsim.Time.span_sec 3.)
              (Netsim.Churn.Partition ([ 0; 2 ], [ 4 ]));
            Netsim.Churn.entry ~at:(Netsim.Time.span_sec 4.) Netsim.Churn.Heal ];
        dp_mangle =
          Some
            { Triage.Scenario.mg_seed = 9;
              mg_rate = 0.25;
              mg_kinds = [ Netsim.Mangler.Bit_flip; Netsim.Mangler.Truncate ];
              mg_schedule =
                [ Netsim.Mangler.entry ~at:(Netsim.Time.span_sec 1.)
                    (Netsim.Mangler.Set_rate 0.5);
                  Netsim.Mangler.entry ~at:(Netsim.Time.span_sec 2.)
                    (Netsim.Mangler.Set_kinds [ Netsim.Mangler.Drop ]);
                  Netsim.Mangler.entry ~at:(Netsim.Time.span_sec 3.)
                    (Netsim.Mangler.Set_links (Some [ (0, 2); (2, 4) ])) ];
              mg_fragile_node = Some 2 };
        dp_confuzz =
          [ Confuzz.Mutation.Action_flip { node = 0; map = "FROM-PEER"; seq = 10 };
            Confuzz.Mutation.Te_pin
              { node = 1;
                map = "FROM-PEER";
                prefix = Bgp.Prefix.of_string_exn "192.0.0.0/24";
                via_asn = 1002;
                pref = 300 } ];
        dp_cascade = true;
        dp_mode =
          Triage.Scenario.Direct
            { dr_node = 0; dr_peer = 1; dr_input = Some [ ("community", 3) ] } }
  in
  let wire = Triage.Scenario.Wire "\x00\xff\x7f framed \n bytes" in
  List.iter
    (fun s ->
      match Triage.Scenario.of_string (Triage.Scenario.to_string s) with
      | Ok s' ->
          Alcotest.(check bool) "round-trips" true (Triage.Scenario.equal s s')
      | Error e -> Alcotest.failf "scenario decode failed: %s" e)
    [ rich; wire; hijack_explore; dispute_direct ];
  Alcotest.(check bool)
    "garbage rejected" true
    (Result.is_error (Triage.Scenario.of_string "{\"scenario\":\"nope\"}"))

let scenario_replay_deterministic () =
  let o1 = Triage.Scenario.run dispute_direct in
  let o2 = Triage.Scenario.run dispute_direct in
  Alcotest.(check (list string))
    "same signatures on every replay" (signature_strings o1) (signature_strings o2);
  Alcotest.(check bool) "detects the dispute" true (signature_strings o1 <> [])

(* ------------------------------------------------------------------ *)
(* Minimizer end-to-end                                                *)
(* ------------------------------------------------------------------ *)

let minimize_hijack_end_to_end () =
  let outcome = Triage.Scenario.run hijack_explore in
  let sg =
    match outcome.Triage.Scenario.o_signatures with
    | sg :: _ -> sg
    | [] -> Alcotest.fail "hijack exploration detected nothing"
  in
  let r1 = Triage.Minimize.run ~max_tests:80 ~target:sg hijack_explore in
  let r2 = Triage.Minimize.run ~max_tests:80 ~target:sg hijack_explore in
  Alcotest.(check bool)
    "strictly smaller" true
    (r1.Triage.Minimize.r_minimized_size < r1.Triage.Minimize.r_original_size);
  check Alcotest.string "byte-identical across runs"
    (Triage.Scenario.to_string r1.Triage.Minimize.r_minimized)
    (Triage.Scenario.to_string r2.Triage.Minimize.r_minimized);
  check Alcotest.int "same replay count" r1.Triage.Minimize.r_tests
    r2.Triage.Minimize.r_tests;
  Alcotest.(check bool)
    "minimized repro still detects the signature" true
    (Triage.Scenario.detects r1.Triage.Minimize.r_minimized sg)

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let corpus_roundtrip () =
  with_temp_dir @@ fun dir ->
  let outcome = Triage.Scenario.run dispute_direct in
  let sg = List.hd outcome.Triage.Scenario.o_signatures in
  let e1 = Triage.Corpus.add ~dir ~now:100. sg dispute_direct in
  check Alcotest.int "first filing" 1 e1.Triage.Corpus.e_hits;
  (* a re-filing with a larger repro bumps hits but keeps the smaller
     scenario *)
  let bigger =
    match dispute_direct with
    | Triage.Scenario.Deploy d ->
        Triage.Scenario.Deploy
          { d with Triage.Scenario.dp_mode = Triage.Scenario.Explore fast_exploration }
    | w -> w
  in
  let e2 = Triage.Corpus.add ~dir ~now:200. sg bigger in
  check Alcotest.int "hits bumped" 2 e2.Triage.Corpus.e_hits;
  Alcotest.(check bool)
    "kept the smaller repro" true
    (Triage.Scenario.equal e2.Triage.Corpus.e_scenario dispute_direct);
  check (Alcotest.float 0.01) "first_seen preserved" 100. e2.Triage.Corpus.e_first_seen;
  check (Alcotest.float 0.01) "last_seen bumped" 200. e2.Triage.Corpus.e_last_seen;
  (match Triage.Corpus.load ~dir with
  | [ (_, Ok e) ] ->
      check Alcotest.string "loads back" (Triage.Signature.to_string sg)
        (Triage.Signature.to_string e.Triage.Corpus.e_signature)
  | other -> Alcotest.failf "expected one valid entry, got %d" (List.length other));
  (match Triage.Corpus.find ~dir sg with
  | Some e -> (
      match Triage.Corpus.replay e with
      | Triage.Corpus.Confirmed _ -> ()
      | v -> Alcotest.failf "expected Confirmed, got %a" Triage.Corpus.pp_verdict v)
  | None -> Alcotest.fail "find missed the entry");
  Alcotest.(check bool) "remove" true (Triage.Corpus.remove ~dir sg);
  check Alcotest.int "empty after remove" 0 (List.length (Triage.Corpus.load ~dir))

let corpus_validator_rejects () =
  let ok_entry =
    Triage.Corpus.entry_to_json
      { Triage.Corpus.e_signature =
          Triage.Signature.make ~node:0 ~property:"p" Dice.Fault.Operator_mistake "d";
        e_scenario = Triage.Scenario.Wire "x";
        e_first_seen = 1.;
        e_last_seen = 2.;
        e_hits = 1;
        e_env = [];
        e_repair = None }
  in
  Alcotest.(check bool) "well-formed accepted" true
    (Result.is_ok (Triage.Corpus.validate ok_entry));
  let patch name v =
    match ok_entry with
    | Telemetry.Json.Obj fields ->
        Telemetry.Json.Obj
          (List.map (fun (k, old) -> (k, if k = name then v else old)) fields)
    | _ -> assert false
  in
  let drop name =
    match ok_entry with
    | Telemetry.Json.Obj fields ->
        Telemetry.Json.Obj (List.filter (fun (k, _) -> k <> name) fields)
    | _ -> assert false
  in
  List.iter
    (fun (label, broken) ->
      Alcotest.(check bool) label true
        (Result.is_error (Triage.Corpus.validate broken)))
    [ ("wrong schema", patch "schema" (Telemetry.Json.String "dice-corpus/0"));
      ("missing signature", drop "signature");
      ("bad signature", patch "signature" (Telemetry.Json.String "junk"));
      ("missing scenario", drop "scenario");
      ("bad scenario", patch "scenario" (Telemetry.Json.String "junk"));
      ("zero hits", patch "hits" (Telemetry.Json.Int 0));
      ("missing first_seen", drop "first_seen") ]

let corpus_repair_record () =
  let module J = Telemetry.Json in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let base =
    { Triage.Corpus.e_signature =
        Triage.Signature.make ~node:0 ~property:"p" Dice.Fault.Operator_mistake "d";
      e_scenario = Triage.Scenario.Wire "x";
      e_first_seen = 1.;
      e_last_seen = 2.;
      e_hits = 1;
      e_env = [];
      e_repair = None }
  in
  (* Legacy pin: a record-less entry encodes without the member and
     round-trips byte-unchanged through decode/encode. *)
  let legacy = J.to_string (Triage.Corpus.entry_to_json base) in
  Alcotest.(check bool) "legacy encoding has no repair member" false
    (contains legacy "\"repair\"");
  (match Triage.Corpus.entry_of_string legacy with
  | Ok e ->
      Alcotest.(check bool) "decodes with no record" true
        (e.Triage.Corpus.e_repair = None);
      check Alcotest.string "legacy round-trips byte-unchanged" legacy
        (J.to_string (Triage.Corpus.entry_to_json e))
  | Error e -> Alcotest.failf "legacy entry rejected: %s" e);
  let record status =
    J.Obj [ ("schema", J.String "dice-repair/1"); ("status", J.String status) ]
  in
  List.iter
    (fun (status, expect) ->
      let json =
        Triage.Corpus.entry_to_json
          { base with Triage.Corpus.e_repair = Some (record status) }
      in
      match Triage.Corpus.validate json with
      | Ok e ->
          check Alcotest.string
            (Printf.sprintf "status %s maps to %s" status expect)
            expect
            (Triage.Corpus.repair_status_name (Triage.Corpus.repair_status e));
          check Alcotest.string "repair entry round-trips"
            (J.to_string json)
            (J.to_string (Triage.Corpus.entry_to_json e))
      | Error e -> Alcotest.failf "repair entry rejected: %s" e)
    [ ("verified", "verified"); ("candidate", "candidate");
      ("none-found", "none") ];
  Alcotest.(check bool) "wrong repair schema rejected" true
    (Result.is_error
       (Triage.Corpus.validate
          (Triage.Corpus.entry_to_json
             { base with
               Triage.Corpus.e_repair =
                 Some (J.Obj [ ("schema", J.String "dice-repair/0") ]) })))

let corpus_set_repair_and_patched_scenario () =
  let module J = Telemetry.Json in
  with_temp_dir @@ fun dir ->
  let sg =
    Triage.Signature.make ~node:3 ~property:"convergence"
      Dice.Fault.Policy_conflict "d"
  in
  let entry = Triage.Corpus.add ~dir ~now:1. sg dispute_direct in
  let drop =
    Confuzz.Mutation.Network_drop
      { node = 9; prefix = Bgp.Prefix.of_string_exn "192.0.0.0/24" }
  in
  let record =
    J.Obj
      [ ("schema", J.String "dice-repair/1");
        ("status", J.String "verified");
        ("patch", J.List [ Confuzz.Mutation.to_json drop ]) ]
  in
  let entry' = Triage.Corpus.set_repair ~dir entry record in
  (* persisted: a fresh load sees the record *)
  (match Triage.Corpus.find ~dir sg with
  | Some e ->
      Alcotest.(check bool) "record persisted" true
        (e.Triage.Corpus.e_repair = Some record)
  | None -> Alcotest.fail "entry vanished after set_repair");
  (match Triage.Corpus.patched_scenario entry' with
  | Some (Triage.Scenario.Deploy d) -> (
      match List.rev d.Triage.Scenario.dp_confuzz with
      | last :: _ ->
          Alcotest.(check bool) "patch appended to dp_confuzz" true (last = drop)
      | [] -> Alcotest.fail "patched scenario has no mutations")
  | _ -> Alcotest.fail "patched_scenario must produce a deploy");
  (* re-filing a smaller repro drops the now-unverified record *)
  let e2 = Triage.Corpus.add ~dir ~now:2. sg dispute_direct in
  Alcotest.(check bool) "same-scenario refile keeps the record" true
    (e2.Triage.Corpus.e_repair = Some record)

let corpus_gc () =
  with_temp_dir @@ fun dir ->
  let outcome = Triage.Scenario.run dispute_direct in
  let sg = List.hd outcome.Triage.Scenario.o_signatures in
  ignore (Triage.Corpus.add ~dir ~now:1. sg dispute_direct);
  (* a signature whose repro no longer detects it *)
  let stale_sig =
    Triage.Signature.make ~node:42 ~property:"never-detected"
      Dice.Fault.Programming_error "gone"
  in
  ignore (Triage.Corpus.add ~dir ~now:1. stale_sig dispute_direct);
  (* a torn file *)
  let oc = open_out (Filename.concat dir "torn.json") in
  output_string oc "{\"schema\":";
  close_out oc;
  let removed = Triage.Corpus.gc ~dir in
  check Alcotest.int "two entries dropped" 2 (List.length removed);
  match Triage.Corpus.load ~dir with
  | [ (_, Ok e) ] ->
      check Alcotest.string "survivor is the confirmed one"
        (Triage.Signature.to_string sg)
        (Triage.Signature.to_string e.Triage.Corpus.e_signature)
  | other -> Alcotest.failf "expected one survivor, got %d" (List.length other)

(* A torn entry (kill -9 racing the atomic rename, manual truncation)
   must never abort the whole load: it is skipped and reported while
   every intact entry still loads. *)
let corpus_load_skips_torn_entries () =
  with_temp_dir @@ fun dir ->
  let outcome = Triage.Scenario.run dispute_direct in
  let sg = List.hd outcome.Triage.Scenario.o_signatures in
  ignore (Triage.Corpus.add ~dir ~now:1. sg dispute_direct);
  (* Truncate a copy of the valid entry to simulate a torn write. *)
  let valid = Filename.concat dir (Triage.Corpus.filename_of sg) in
  let contents =
    let ic = open_in_bin valid in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  let torn = Filename.concat dir "00000000000000000000000000000000.json" in
  let oc = open_out_bin torn in
  output_string oc (String.sub contents 0 (String.length contents / 2));
  close_out oc;
  let entries = Triage.Corpus.load ~dir in
  check Alcotest.int "both files surface" 2 (List.length entries);
  let oks, errors =
    List.partition (fun (_, r) -> Result.is_ok r) entries
  in
  (match oks with
  | [ (_, Ok e) ] ->
      check Alcotest.string "intact entry loads" (Triage.Signature.to_string sg)
        (Triage.Signature.to_string e.Triage.Corpus.e_signature)
  | _ -> Alcotest.failf "expected exactly one intact entry");
  match errors with
  | [ (file, Error msg) ] ->
      check Alcotest.string "torn file named" "00000000000000000000000000000000.json"
        (Filename.basename file);
      check Alcotest.bool "error is reported, not raised" true (String.length msg > 0)
  | _ -> Alcotest.failf "expected exactly one torn entry"

(* Template expansion: with_seed re-seeds every derived stream of a
   deploy scenario deterministically and leaves wire cases alone. *)
let scenario_with_seed () =
  let reseeded = Triage.Scenario.with_seed 99 hijack_explore in
  (match reseeded with
  | Triage.Scenario.Deploy d ->
      check Alcotest.int "deploy seed replaced" 99 d.Triage.Scenario.dp_seed
  | _ -> Alcotest.fail "expected a deploy scenario");
  Alcotest.(check bool)
    "same seed is the identity on the seed" true
    (Triage.Scenario.equal
       (Triage.Scenario.with_seed 5 hijack_explore)
       hijack_explore);
  let wire = Triage.Scenario.Wire "\x01\x02" in
  Alcotest.(check bool) "wire scenarios unchanged" true
    (Triage.Scenario.equal (Triage.Scenario.with_seed 99 wire) wire)

(* ------------------------------------------------------------------ *)
(* Dedupe keeps the earliest representative (regression pin)           *)
(* ------------------------------------------------------------------ *)

let dedupe_keeps_earliest () =
  let mk at detail =
    Dice.Fault.make ~at:(Netsim.Time.of_us at) ~node:1 ~property:"x"
      Dice.Fault.Operator_mistake detail
  in
  let late = mk 900 "late" in
  let early = mk 100 "early" in
  let mid = mk 500 "mid" in
  match Dice.Fault.dedupe [ late; early; mid ] with
  | [ f ] ->
      check Alcotest.int "earliest detection time" 100
        (Netsim.Time.to_us f.Dice.Fault.f_detected_at);
      check Alcotest.string "earliest representative" "early" f.Dice.Fault.f_detail
  | l -> Alcotest.failf "expected one representative, got %d" (List.length l)

let suite =
  [ ("signature: round-trip", `Quick, signature_roundtrip);
    ("signature: stable across domain counts", `Slow, signature_stability_across_domains);
    ("ddmin: minimal and deterministic", `Quick, ddmin_generic);
    ("scenario: JSON round-trip", `Quick, scenario_json_roundtrip);
    ("scenario: deterministic replay", `Slow, scenario_replay_deterministic);
    ("minimize: hijack end-to-end", `Slow, minimize_hijack_end_to_end);
    ("corpus: add/load/replay/remove", `Slow, corpus_roundtrip);
    ("corpus: validator rejects", `Quick, corpus_validator_rejects);
    ("corpus: repair record optional and pinned", `Quick, corpus_repair_record);
    ("corpus: set_repair and patched_scenario", `Quick,
     corpus_set_repair_and_patched_scenario);
    ("corpus: gc drops stale entries", `Slow, corpus_gc);
    ("corpus: load skips torn entries", `Slow, corpus_load_skips_torn_entries);
    ("scenario: with_seed expansion", `Quick, scenario_with_seed);
    ("fault: dedupe keeps earliest", `Quick, dedupe_keeps_earliest) ]
