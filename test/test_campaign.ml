(* The campaign subsystem: spec codec + expansion, the fsync'd journal
   (torn-tail tolerance), the supervising driver (watchdog, exception
   absorption, retry, template quarantine, signature dedupe, health
   gate), and the kill-and-resume determinism guarantee. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "campaign-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* A cheap self-contained deploy scenario: the driver is exercised with
   injected runners, so the scenario is only ever decoded, re-seeded and
   filed — never actually deployed. *)
let base_scenario =
  Triage.Scenario.Deploy
    { Triage.Scenario.dp_topo = Triage.Scenario.Bad_gadget;
      dp_keep = None;
      dp_seed = 0;
      dp_inject = None;
      dp_settle_sec = 1.;
      dp_churn = [];
      dp_mangle = None;
      dp_confuzz = [];
      dp_cascade = false;
      dp_mode =
        Triage.Scenario.Direct { dr_node = 0; dr_peer = 0; dr_input = None } }

let seed_of = function
  | Triage.Scenario.Deploy d -> d.Triage.Scenario.dp_seed
  | Triage.Scenario.Wire _ -> 0

let sig_a =
  Triage.Signature.make ~node:1 ~property:"origin" Dice.Fault.Operator_mistake
    "alpha"

let sig_b =
  Triage.Signature.make ~node:2 ~property:"convergence"
    Dice.Fault.Policy_conflict "beta"

let ok_outcome sigs =
  { Triage.Scenario.o_signatures = sigs; o_faults = []; o_error = None }

(* Deterministic fake runner: odd seeds detect one extra signature. *)
let fake_runner scenario =
  let seed = seed_of scenario in
  ok_outcome (if seed mod 2 = 0 then [ sig_a ] else [ sig_a; sig_b ])

let mk_template name seeds =
  { Campaign.Spec.t_name = name; t_seeds = seeds; t_scenario = base_scenario }

let mk_spec ?(budget = 0.) ?(retries = 0) ?(max_strikes = 2) ?(backoff = 2)
    ?(checkpoint_every = 2) templates =
  Campaign.Spec.make ~name:"test" ~scenario_budget_s:budget ~retries
    ~max_strikes ~backoff ~checkpoint_every templates

let corpus_files dir =
  let corpus = Filename.concat dir "corpus" in
  if Sys.file_exists corpus then
    List.sort String.compare (Array.to_list (Sys.readdir corpus))
  else []

let get_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

let spec_roundtrip_and_expansion () =
  let spec = mk_spec [ mk_template "a" [ 10; 11 ]; mk_template "b" [ 20 ] ] in
  let spec' =
    get_ok (Campaign.Spec.of_string (Telemetry.Json.to_string (Campaign.Spec.to_json spec)))
  in
  check Alcotest.string "digest survives the round-trip"
    (Campaign.Spec.digest spec) (Campaign.Spec.digest spec');
  let jobs = Campaign.Spec.jobs spec in
  check Alcotest.(list int) "dense template-major ids" [ 0; 1; 2 ]
    (List.map (fun j -> j.Campaign.Spec.j_id) jobs);
  check Alcotest.(list string) "template order preserved" [ "a"; "a"; "b" ]
    (List.map (fun j -> j.Campaign.Spec.j_template) jobs);
  check Alcotest.(list int) "seeds applied to the scenarios" [ 10; 11; 20 ]
    (List.map (fun j -> seed_of j.Campaign.Spec.j_scenario) jobs)

let spec_seed_ranges () =
  let scenario = Triage.Scenario.to_string base_scenario in
  let text =
    Printf.sprintf
      {|{"schema":"dice-campaign/1","name":"r","templates":[{"name":"t","seeds":{"from":7,"count":3},"scenario":%s}]}|}
      scenario
  in
  let spec = get_ok (Campaign.Spec.of_string text) in
  check Alcotest.(list int) "range expands" [ 7; 8; 9 ]
    (List.map (fun j -> j.Campaign.Spec.j_seed) (Campaign.Spec.jobs spec));
  (* Defaults fill in when knobs are absent. *)
  check Alcotest.int "default retries" 1 spec.Campaign.Spec.c_retries;
  check (Alcotest.float 0.001) "default watchdog" 60.
    spec.Campaign.Spec.c_scenario_budget_s

let spec_validation_rejects () =
  let scenario = Triage.Scenario.to_string base_scenario in
  let cases =
    [ ("wrong schema", {|{"schema":"nope/9","name":"x","templates":[]}|});
      ( "report document",
        {|{"schema":"dice-campaign/1","doc":"report","name":"x","templates":[]}|}
      );
      ("no templates", {|{"schema":"dice-campaign/1","name":"x","templates":[]}|});
      ( "empty seeds",
        Printf.sprintf
          {|{"schema":"dice-campaign/1","name":"x","templates":[{"name":"t","seeds":[],"scenario":%s}]}|}
          scenario );
      ( "duplicate template names",
        Printf.sprintf
          {|{"schema":"dice-campaign/1","name":"x","templates":[{"name":"t","seeds":[1],"scenario":%s},{"name":"t","seeds":[2],"scenario":%s}]}|}
          scenario scenario );
      ( "negative retries",
        Printf.sprintf
          {|{"schema":"dice-campaign/1","name":"x","retries":-1,"templates":[{"name":"t","seeds":[1],"scenario":%s}]}|}
          scenario ) ]
  in
  List.iter
    (fun (what, text) ->
      match Campaign.Spec.of_string text with
      | Ok _ -> Alcotest.failf "%s was accepted" what
      | Error _ -> ())
    cases

(* [make] clamps programmatic knobs to the validator's bounds — a
   checkpoint_every of 0 must not divide the driver by zero. *)
let spec_make_clamps () =
  let spec =
    Campaign.Spec.make ~name:"c" ~scenario_budget_s:0. ~retries:(-3)
      ~max_strikes:0 ~backoff:0 ~checkpoint_every:0
      [ mk_template "t" [ 1 ] ]
  in
  check Alcotest.int "retries clamped" 0 spec.Campaign.Spec.c_retries;
  check Alcotest.int "max_strikes clamped" 1 spec.Campaign.Spec.c_max_strikes;
  check Alcotest.int "backoff clamped" 1 spec.Campaign.Spec.c_backoff;
  check Alcotest.int "checkpoint_every clamped" 1
    spec.Campaign.Spec.c_checkpoint_every;
  (* And the clamped spec drives a campaign without raising. *)
  with_temp_dir @@ fun dir ->
  let r = get_ok (Campaign.Run.start ~runner:fake_runner ~dir spec) in
  check Alcotest.int "campaign completes" 1 r.Campaign.Run.r_completed

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let all_records =
  [ Campaign.Journal.Campaign { name = "n"; spec_digest = "d"; jobs = 3 };
    Campaign.Journal.Scheduled { job = 0; template = "t"; seed = 4 };
    Campaign.Journal.Started { job = 0; attempt = 1 };
    Campaign.Journal.Verdict
      { job = 0; attempt = 1; status = Campaign.Journal.Passed;
        signatures = [ "s1"; "s2" ]; cascades = []; final = true;
        wall_s = 0.25 };
    Campaign.Journal.Verdict
      { job = 1; attempt = 2; status = Campaign.Journal.Failed "boom";
        signatures = []; cascades = [ "cascade|flap-storm|3" ]; final = false;
        wall_s = 1.5 };
    Campaign.Journal.Verdict
      { job = 2; attempt = 1; status = Campaign.Journal.Hung; signatures = [];
        cascades = []; final = true; wall_s = 60. };
    Campaign.Journal.Quarantined
      { template = "t"; step = 5; strikes = 2; until = 9 };
    Campaign.Journal.Unquarantined { template = "t"; step = 9 };
    Campaign.Journal.Filed { job = 0; signature = "s1"; file = "ab.json" };
    Campaign.Journal.Checkpoint { completed = 2; filed = 1; digest = "x" };
    Campaign.Journal.End { outcome = "degraded" } ]

let journal_codec_roundtrip () =
  List.iteri
    (fun i r ->
      let json = Campaign.Journal.to_json r in
      match Campaign.Journal.of_json json with
      | Error e -> Alcotest.failf "record %d failed to decode: %s" i e
      | Ok r' ->
          check Alcotest.bool
            (Printf.sprintf "record %d round-trips" i)
            true
            (Telemetry.Json.equal json (Campaign.Journal.to_json r')))
    all_records

let journal_write_read_torn () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "journal.jsonl" in
  let w = Campaign.Journal.open_writer path in
  List.iter (Campaign.Journal.append w) all_records;
  Campaign.Journal.close w;
  (* Clean read: everything back, no warnings, the whole file committed. *)
  let contents = read_file path in
  let records, warnings, committed = get_ok (Campaign.Journal.read path) in
  check Alcotest.int "all records read" (List.length all_records)
    (List.length records);
  check Alcotest.int "no warnings" 0 (List.length warnings);
  check Alcotest.int "whole file committed" (String.length contents) committed;
  (* A torn final line (kill -9 mid-append) is dropped and reported,
     and the committed length stops before it — the truncation point
     resume uses. *)
  write_file path (contents ^ {|{"rec":"verdict","job":9,"att|});
  let records, warnings, committed = get_ok (Campaign.Journal.read path) in
  check Alcotest.int "torn tail dropped" (List.length all_records)
    (List.length records);
  check Alcotest.int "torn tail reported" 1 (List.length warnings);
  check Alcotest.int "committed length excludes the torn tail"
    (String.length contents) committed;
  (* A final line whose '\n' never hit the disk was never committed,
     even if the JSON itself parses. *)
  write_file path (String.sub contents 0 (String.length contents - 1));
  let records, warnings, committed = get_ok (Campaign.Journal.read path) in
  check Alcotest.int "unterminated final record dropped"
    (List.length all_records - 1)
    (List.length records);
  check Alcotest.int "unterminated final record reported" 1
    (List.length warnings);
  check Alcotest.bool "committed length stops at the last newline" true
    (committed < String.length contents - 1);
  (* Reopening with [truncate_at] cuts the torn tail so appends start a
     fresh line: the journal stays readable afterwards. *)
  write_file path (contents ^ {|{"rec":"verdict","job":9,"att|});
  let _, _, committed = get_ok (Campaign.Journal.read path) in
  let w = Campaign.Journal.open_writer ~truncate_at:committed path in
  Campaign.Journal.append w (List.nth all_records (List.length all_records - 1));
  Campaign.Journal.close w;
  let records, warnings, _ = get_ok (Campaign.Journal.read path) in
  check Alcotest.int "append after truncation is readable"
    (List.length all_records + 1)
    (List.length records);
  check Alcotest.int "no warnings after truncation" 0 (List.length warnings);
  (* The same damage mid-file is corruption, not a torn tail. *)
  let lines = String.split_on_char '\n' contents in
  let broken =
    String.concat "\n"
      (List.mapi (fun i l -> if i = 3 then "{\"rec\":\"verd" else l) lines)
  in
  write_file path broken;
  (match Campaign.Journal.read path with
  | Ok _ -> Alcotest.fail "interior corruption was accepted"
  | Error _ -> ());
  (* A journal must start with the campaign header. *)
  write_file path
    (Telemetry.Json.to_string
       (Campaign.Journal.to_json (List.nth all_records 1))
    ^ "\n");
  match Campaign.Journal.read path with
  | Ok _ -> Alcotest.fail "headerless journal was accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Driver: happy path, filing, idempotent resume                       *)
(* ------------------------------------------------------------------ *)

let campaign_runs_and_reports () =
  with_temp_dir @@ fun dir ->
  let spec = mk_spec [ mk_template "a" [ 2; 3 ]; mk_template "b" [ 5 ] ] in
  let r = get_ok (Campaign.Run.start ~runner:fake_runner ~dir spec) in
  check Alcotest.int "all jobs complete" 3 r.Campaign.Run.r_completed;
  check Alcotest.int "all executed live" 3 r.Campaign.Run.r_executed;
  check Alcotest.string "outcome" "passed"
    r.Campaign.Run.r_report.Campaign.Report.r_outcome;
  check Alcotest.bool "health gate clean" false
    r.Campaign.Run.r_report.Campaign.Report.r_gate_failed;
  (* Signatures deduplicate campaign-wide before filing: 3 jobs detect
     sig_a but it is filed exactly once. *)
  check Alcotest.int "two distinct signatures filed" 2
    (List.length r.Campaign.Run.r_filed);
  check Alcotest.int "two corpus entries" 2 (List.length (corpus_files dir));
  (* The report validates as a dice-campaign/1 document. *)
  (match Campaign.Report.validate_file (Filename.concat dir "report.json") with
  | Ok _ -> ()
  | Error msgs -> Alcotest.failf "report invalid: %s" (List.hd msgs));
  (* The journal replays to the same state: resuming a finished campaign
     executes nothing and rewrites the identical report. *)
  let report_1 = read_file (Filename.concat dir "report.json") in
  let r2 = get_ok (Campaign.Run.resume ~runner:fake_runner ~dir ()) in
  check Alcotest.int "nothing re-executed" 0 r2.Campaign.Run.r_executed;
  check Alcotest.int "everything replayed" 3 r2.Campaign.Run.r_replayed;
  check Alcotest.string "report byte-identical" report_1
    (read_file (Filename.concat dir "report.json"));
  (* A second start into the same directory is refused. *)
  match Campaign.Run.start ~runner:fake_runner ~dir spec with
  | Ok _ -> Alcotest.fail "start over an existing journal was accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Kill-and-resume determinism                                         *)
(* ------------------------------------------------------------------ *)

(* Simulate kill -9 at an arbitrary journal offset: the survivor is a
   byte prefix of the journal (possibly torn mid-line) plus the corpus
   files whose [filed] records made it into that prefix.  Resume must
   reconstruct the exact final state: byte-identical report, same
   corpus file set. *)
let kill_and_resume_determinism () =
  with_temp_dir @@ fun dir_a ->
  let spec =
    mk_spec ~checkpoint_every:2
      [ mk_template "a" [ 2; 3; 4 ]; mk_template "b" [ 5; 6 ] ]
  in
  let _ = get_ok (Campaign.Run.start ~runner:fake_runner ~dir:dir_a spec) in
  let report_a = read_file (Filename.concat dir_a "report.json") in
  let journal_a = read_file (Filename.concat dir_a "journal.jsonl") in
  let lines = String.split_on_char '\n' journal_a in
  let n_lines = List.length lines - 1 (* trailing newline *) in
  let prefix_of_lines k =
    String.concat "\n" (List.filteri (fun i _ -> i < k) lines) ^ "\n"
  in
  let try_cut label prefix =
    with_temp_dir @@ fun dir_b ->
    write_file (Filename.concat dir_b "spec.json")
      (read_file (Filename.concat dir_a "spec.json"));
    write_file (Filename.concat dir_b "journal.jsonl") prefix;
    (* Corpus files whose [filed] records survived the cut were already
       on disk at kill time. *)
    Unix.mkdir (Filename.concat dir_b "corpus") 0o755;
    let records, _, _ =
      get_ok (Campaign.Journal.read (Filename.concat dir_b "journal.jsonl"))
    in
    List.iter
      (function
        | Campaign.Journal.Filed { file; _ } ->
            write_file
              (Filename.concat (Filename.concat dir_b "corpus") file)
              (read_file (Filename.concat (Filename.concat dir_a "corpus") file))
        | _ -> ())
      records;
    let r = get_ok (Campaign.Run.resume ~runner:fake_runner ~dir:dir_b ()) in
    check Alcotest.int (label ^ ": all jobs complete") 5
      r.Campaign.Run.r_completed;
    check Alcotest.string
      (label ^ ": report byte-identical to the uninterrupted run")
      report_a
      (read_file (Filename.concat dir_b "report.json"));
    check
      Alcotest.(list string)
      (label ^ ": same corpus file set")
      (corpus_files dir_a) (corpus_files dir_b)
    ;
    (* The resumed journal must itself stay recoverable: if resume
       appended onto a torn tail instead of truncating it, this read
       fails with "malformed interior line" and the directory is
       permanently unresumable. *)
    let _, warnings, _ =
      get_ok (Campaign.Journal.read (Filename.concat dir_b "journal.jsonl"))
    in
    check Alcotest.int (label ^ ": resumed journal has no torn residue") 0
      (List.length warnings);
    let r2 = get_ok (Campaign.Run.resume ~runner:fake_runner ~dir:dir_b ()) in
    check Alcotest.int (label ^ ": second resume executes nothing") 0
      r2.Campaign.Run.r_executed;
    check Alcotest.string
      (label ^ ": second resume rewrites the identical report")
      report_a
      (read_file (Filename.concat dir_b "report.json"))
  in
  (* Whole-line cuts at every point after the header, including between
     a verdict and its filed record. *)
  for k = 1 to n_lines - 1 do
    try_cut (Printf.sprintf "cut@%d" k) (prefix_of_lines k)
  done;
  (* A torn cut mid-way through the final surviving line. *)
  let torn =
    let p = prefix_of_lines (n_lines - 2) in
    String.sub journal_a 0 (String.length p + 17)
  in
  try_cut "torn" torn

(* ------------------------------------------------------------------ *)
(* Fault isolation: hangs, crashes, quarantine, fleet progress         *)
(* ------------------------------------------------------------------ *)

let isolation_runner scenario =
  let seed = seed_of scenario in
  if seed >= 100 && seed < 200 then begin
    (* A wedged replay: longer than the watchdog, but finite so the
       leaked worker domain unwinds after the test. *)
    Unix.sleepf 0.4;
    ok_outcome []
  end
  else if seed >= 200 then failwith "injected crash"
  else ok_outcome [ sig_a ]

let faulty_templates_quarantined_fleet_progresses () =
  with_temp_dir @@ fun dir ->
  let spec =
    mk_spec ~budget:0.05 ~max_strikes:1 ~backoff:2
      [ mk_template "hang" [ 100; 101 ]; mk_template "boom" [ 200; 201 ];
        mk_template "good" [ 1; 2; 3 ] ]
  in
  let r = get_ok (Campaign.Run.start ~runner:isolation_runner ~dir spec) in
  (* The fleet progressed: every job got a final verdict, no exception
     escaped, and the healthy template's detections were filed. *)
  check Alcotest.int "all jobs complete" 7 r.Campaign.Run.r_completed;
  check Alcotest.(list string) "healthy detections filed"
    [ Triage.Signature.to_string sig_a ]
    r.Campaign.Run.r_filed;
  let report = r.Campaign.Run.r_report in
  check Alcotest.string "outcome degraded" "degraded"
    report.Campaign.Report.r_outcome;
  (* Per-template verdicts from the report document. *)
  let tpl name field =
    match Telemetry.Json.member "templates" report.Campaign.Report.r_json with
    | Some (Telemetry.Json.List ts) -> (
        match
          List.find_opt
            (fun t ->
              Telemetry.Json.member "name" t
              = Some (Telemetry.Json.String name))
            ts
        with
        | Some t -> (
            match Telemetry.Json.member field t with
            | Some (Telemetry.Json.Int n) -> n
            | _ -> Alcotest.failf "missing %s.%s" name field)
        | None -> Alcotest.failf "missing template %s" name)
    | _ -> Alcotest.fail "missing templates section"
  in
  check Alcotest.int "good: all ok" 3 (tpl "good" "ok");
  check Alcotest.int "hang: all hung" 2 (tpl "hang" "hung");
  check Alcotest.int "boom: all absorbed as errors" 2 (tpl "boom" "error");
  check Alcotest.bool "hang was quarantined" true (tpl "hang" "quarantines" >= 1);
  check Alcotest.bool "boom was quarantined" true (tpl "boom" "quarantines" >= 1);
  (* Quarantine backoff is exponential: each successive park of the same
     template is longer than the one before. *)
  let records, _, _ =
    get_ok (Campaign.Journal.read (Filename.concat dir "journal.jsonl"))
  in
  let parks =
    List.filter_map
      (function
        | Campaign.Journal.Quarantined { template = "boom"; step; until; _ } ->
            Some (until - step)
        | _ -> None)
      records
  in
  check Alcotest.bool "two parks for boom" true (List.length parks >= 2);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check Alcotest.bool "backoff grows" true (increasing parks)

(* ------------------------------------------------------------------ *)
(* Retry for flaky verdicts                                            *)
(* ------------------------------------------------------------------ *)

let retry_flaky_jobs () =
  with_temp_dir @@ fun dir ->
  let attempts = Hashtbl.create 4 in
  let flaky_runner scenario =
    let seed = seed_of scenario in
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts seed) in
    Hashtbl.replace attempts seed n;
    if n = 1 then
      { Triage.Scenario.o_signatures = []; o_faults = [];
        o_error = Some "flaky deploy" }
    else ok_outcome [ sig_a ]
  in
  let spec = mk_spec ~retries:1 [ mk_template "t" [ 1; 2 ] ] in
  let r = get_ok (Campaign.Run.start ~runner:flaky_runner ~dir spec) in
  let report = r.Campaign.Run.r_report in
  check Alcotest.string "second attempts rescue the campaign" "passed"
    report.Campaign.Report.r_outcome;
  (match Telemetry.Json.member "jobs" report.Campaign.Report.r_json with
  | Some jobs -> (
      match Telemetry.Json.member "retried" jobs with
      | Some (Telemetry.Json.Int n) -> check Alcotest.int "both jobs retried" 2 n
      | _ -> Alcotest.fail "missing jobs.retried")
  | None -> Alcotest.fail "missing jobs section");
  (* The journal shows the non-final first attempts. *)
  let records, _, _ =
    get_ok (Campaign.Journal.read (Filename.concat dir "journal.jsonl"))
  in
  let non_final =
    List.length
      (List.filter
         (function
           | Campaign.Journal.Verdict { final = false; _ } -> true | _ -> false)
         records)
  in
  check Alcotest.int "two non-final verdicts journaled" 2 non_final

(* ------------------------------------------------------------------ *)
(* Health gate                                                         *)
(* ------------------------------------------------------------------ *)

(* The runner emits a quarantine ping-pong into whatever sink is
   current: the driver's per-job online monitor must catch it, journal
   the cascade root with the verdict, and fail the health gate. *)
let pingpong_runner _scenario =
  Telemetry.sys_event ~t_us:1_000 ~kind:"quarantine" ~nodes:[ 7 ] ~detail:"t" ();
  Telemetry.sys_event ~t_us:2_000 ~kind:"unquarantine" ~nodes:[ 7 ] ~detail:"t" ();
  Telemetry.sys_event ~t_us:3_000 ~kind:"quarantine" ~nodes:[ 7 ] ~detail:"t" ();
  ok_outcome []

let health_gate_fails_on_cascade () =
  with_temp_dir @@ fun dir ->
  let spec = mk_spec [ mk_template "t" [ 1 ] ] in
  let r = get_ok (Campaign.Run.start ~runner:pingpong_runner ~dir spec) in
  let report = r.Campaign.Run.r_report in
  check Alcotest.bool "gate failed" true report.Campaign.Report.r_gate_failed;
  check Alcotest.string "outcome failed" "failed"
    report.Campaign.Report.r_outcome;
  (* The gate decision is part of the journaled verdict, so a resume
     reproduces it without re-running the monitor. *)
  let report_1 = read_file (Filename.concat dir "report.json") in
  let r2 = get_ok (Campaign.Run.resume ~runner:(fun _ -> ok_outcome []) ~dir ()) in
  check Alcotest.bool "gate failure survives resume" true
    r2.Campaign.Run.r_report.Campaign.Report.r_gate_failed;
  check Alcotest.string "report byte-identical" report_1
    (read_file (Filename.concat dir "report.json"))

(* ------------------------------------------------------------------ *)
(* Report validation                                                   *)
(* ------------------------------------------------------------------ *)

let report_validator_rejects () =
  with_temp_dir @@ fun dir ->
  let spec = mk_spec [ mk_template "t" [ 1 ] ] in
  let r = get_ok (Campaign.Run.start ~runner:fake_runner ~dir spec) in
  let json = r.Campaign.Run.r_report.Campaign.Report.r_json in
  check Alcotest.bool "driver report accepted" true
    (Result.is_ok (Campaign.Report.validate json));
  let patch name v =
    match json with
    | Telemetry.Json.Obj fields ->
        Telemetry.Json.Obj
          (List.map (fun (k, old) -> (k, if k = name then v else old)) fields)
    | _ -> assert false
  in
  List.iter
    (fun (what, doc) ->
      match Campaign.Report.validate doc with
      | Ok () -> Alcotest.failf "%s was accepted" what
      | Error _ -> ())
    [ ("wrong schema", patch "schema" (Telemetry.Json.String "nope/1"));
      ("spec document", patch "doc" (Telemetry.Json.String "spec"));
      ("unknown outcome", patch "outcome" (Telemetry.Json.String "maybe"));
      ( "outcome contradicting the gate",
        patch "outcome" (Telemetry.Json.String "failed") );
      ( "health gate contradicting cascades",
        patch "health"
          (Telemetry.Json.Obj
             [ ("cascades", Telemetry.Json.List []);
               ("gate", Telemetry.Json.String "failed") ]) ) ]

(* ------------------------------------------------------------------ *)

let suite =
  [ ("spec: round-trip + expansion", `Quick, spec_roundtrip_and_expansion);
    ("spec: seed ranges + defaults", `Quick, spec_seed_ranges);
    ("spec: validator rejects", `Quick, spec_validation_rejects);
    ("spec: make clamps knobs", `Quick, spec_make_clamps);
    ("journal: codec round-trip", `Quick, journal_codec_roundtrip);
    ("journal: torn tail tolerated, corruption fatal", `Quick,
     journal_write_read_torn);
    ("driver: runs, files, reports, idempotent resume", `Quick,
     campaign_runs_and_reports);
    ("driver: kill-and-resume is deterministic", `Quick,
     kill_and_resume_determinism);
    ("driver: faulty templates quarantined, fleet progresses", `Slow,
     faulty_templates_quarantined_fleet_progresses);
    ("driver: flaky verdicts retry", `Quick, retry_flaky_jobs);
    ("driver: cascade health gate", `Quick, health_gate_fails_on_cascade);
    ("report: validator rejects", `Quick, report_validator_rejects) ]
