(* Router integration: multi-router convergence over the simulator. *)

let check = Alcotest.check

let p = Bgp.Prefix.of_string_exn

(* A linear chain of [n] eBGP routers, each originating one prefix. *)
let chain n =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  for i = 0 to n - 1 do
    Netsim.Network.add_node net i (fun ~src:_ _ -> ())
  done;
  for i = 0 to n - 2 do
    Netsim.Network.connect_sym net i (i + 1) Netsim.Link.ideal
  done;
  let routers =
    List.init n (fun i ->
        let neighbors =
          (if i > 0 then
             [ Bgp.Config.neighbor (Bgp.Router.addr_of_node (i - 1)) ~remote_as:(1000 + i - 1) ]
           else [])
          @
          if i < n - 1 then
            [ Bgp.Config.neighbor (Bgp.Router.addr_of_node (i + 1)) ~remote_as:(1000 + i + 1) ]
          else []
        in
        let cfg =
          Bgp.Config.make ~asn:(1000 + i)
            ~router_id:(Bgp.Router.addr_of_node i)
            ~networks:[ p (Printf.sprintf "192.0.%d.0/24" i) ]
            ~neighbors ()
        in
        Bgp.Router.create ~net ~node:i cfg)
  in
  List.iter Bgp.Router.start routers;
  Netsim.Engine.run ~until:(Netsim.Time.of_sec 30.) eng;
  (eng, net, routers)

let chain_converges () =
  let _, _, routers = chain 4 in
  List.iteri
    (fun i r ->
      check Alcotest.int
        (Printf.sprintf "router %d sees all prefixes" i)
        4
        (Bgp.Prefix.Map.cardinal (Bgp.Router.loc_rib r)))
    routers;
  (* path lengths grow with distance *)
  let r0 = List.hd routers in
  match Bgp.Prefix.Map.find_opt (p "192.0.3.0/24") (Bgp.Router.loc_rib r0) with
  | Some route ->
      check Alcotest.int "3 hops away" 3
        (Bgp.As_path.length route.Bgp.Rib.attrs.Bgp.Attr.as_path)
  | None -> Alcotest.fail "distant prefix must be known"

let withdrawal_propagates () =
  let eng, _, routers = chain 3 in
  let r2 = List.nth routers 2 in
  (* Remove router 2's network statement: it withdraws its prefix. *)
  let cfg = Bgp.Router.config r2 in
  Bgp.Router.set_config r2 { cfg with Bgp.Config.networks = [] };
  Netsim.Engine.run ~until:(Netsim.Time.add (Netsim.Engine.now eng) (Netsim.Time.span_sec 10.)) eng;
  let r0 = List.hd routers in
  check (Alcotest.option Alcotest.reject) "r0 lost the prefix" None
    (Option.map ignore (Bgp.Prefix.Map.find_opt (p "192.0.2.0/24") (Bgp.Router.loc_rib r0)))

let session_down_flushes_routes () =
  let eng, _, routers = chain 3 in
  let r1 = List.nth routers 1 in
  Bgp.Router.stop_session r1 (Bgp.Router.addr_of_node 2);
  Netsim.Engine.run ~until:(Netsim.Time.add (Netsim.Engine.now eng) (Netsim.Time.span_sec 5.)) eng;
  let r0 = List.hd routers in
  check (Alcotest.option Alcotest.reject) "r0 lost routes behind the dead session" None
    (Option.map ignore (Bgp.Prefix.Map.find_opt (p "192.0.2.0/24") (Bgp.Router.loc_rib r0)))

let session_restarts_automatically () =
  let eng, _, routers = chain 2 in
  let r0 = List.hd routers and r1 = List.nth routers 1 in
  Bgp.Router.stop_session r0 (Bgp.Router.addr_of_node 1);
  (* auto_restart kicks in after its idle delay *)
  Netsim.Engine.run ~until:(Netsim.Time.add (Netsim.Engine.now eng) (Netsim.Time.span_sec 60.)) eng;
  check (Alcotest.list Alcotest.int) "session back up" [ 0 ]
    (List.map Bgp.Router.node_of_addr (Bgp.Router.established_peers r1));
  check Alcotest.int "routes relearned" 2 (Bgp.Prefix.Map.cardinal (Bgp.Router.loc_rib r0))

let no_export_respected () =
  let eng, _, routers = chain 3 in
  let r2 = List.nth routers 2 in
  (* r2 re-announces its prefix tagged no-export; r1 must keep it local. *)
  let cfg = Bgp.Router.config r2 in
  let tag_map =
    [ ("TAG-NE",
       [ Bgp.Policy.entry 10 Bgp.Policy.Permit
           ~sets:[ Bgp.Policy.Add_community Bgp.Community.no_export ] ]) ]
  in
  let neighbors =
    List.map
      (fun (n : Bgp.Config.neighbor) -> { n with Bgp.Config.export_map = Some "TAG-NE" })
      cfg.Bgp.Config.neighbors
  in
  Bgp.Router.set_config r2 { cfg with Bgp.Config.route_maps = tag_map; neighbors };
  Netsim.Engine.run ~until:(Netsim.Time.add (Netsim.Engine.now eng) (Netsim.Time.span_sec 10.)) eng;
  let r1 = List.nth routers 1 and r0 = List.hd routers in
  Alcotest.(check bool) "r1 still has it" true
    (Bgp.Prefix.Map.mem (p "192.0.2.0/24") (Bgp.Router.loc_rib r1));
  Alcotest.(check bool) "r0 does not (no-export stopped it)" false
    (Bgp.Prefix.Map.mem (p "192.0.2.0/24") (Bgp.Router.loc_rib r0))

let loop_prevention () =
  (* A triangle: routes must never be accepted back by their origin. *)
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  for i = 0 to 2 do Netsim.Network.add_node net i (fun ~src:_ _ -> ()) done;
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.connect_sym net 1 2 Netsim.Link.ideal;
  Netsim.Network.connect_sym net 0 2 Netsim.Link.ideal;
  let mk i others =
    Bgp.Config.make ~asn:(1000 + i) ~router_id:(Bgp.Router.addr_of_node i)
      ~networks:[ p (Printf.sprintf "192.0.%d.0/24" i) ]
      ~neighbors:
        (List.map (fun j -> Bgp.Config.neighbor (Bgp.Router.addr_of_node j) ~remote_as:(1000 + j)) others)
      ()
  in
  let routers = [ Bgp.Router.create ~net ~node:0 (mk 0 [ 1; 2 ]);
                  Bgp.Router.create ~net ~node:1 (mk 1 [ 0; 2 ]);
                  Bgp.Router.create ~net ~node:2 (mk 2 [ 0; 1 ]) ] in
  List.iter Bgp.Router.start routers;
  Netsim.Engine.run ~until:(Netsim.Time.of_sec 30.) eng;
  List.iteri
    (fun i r ->
      Bgp.Prefix.Map.iter
        (fun _ (route : Bgp.Rib.route) ->
          if Bgp.As_path.contains (1000 + i) route.Bgp.Rib.attrs.Bgp.Attr.as_path then
            Alcotest.failf "router %d accepted a looped path" i)
        (Bgp.Router.loc_rib r))
    routers

(* A corrupted UPDATE that still frames correctly.  The bad byte is the
   ORIGIN value (offset 26 = 19 header + 2 withdrawn-len + 2 attr-len +
   flags/type/len), a path-attribute error: RFC 7606 semantics. *)
let corrupt_origin_update () =
  let attrs =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq [ 1000 ] ]
      ~next_hop:(Bgp.Router.addr_of_node 0) ()
  in
  let raw =
    Bgp.Wire.encode
      (Bgp.Msg.Update
         { withdrawn = []; attrs = Some attrs; nlri = [ p "192.0.0.0/24" ] })
  in
  let b = Bytes.of_string raw in
  Bytes.set b 26 '\xee' (* invalid ORIGIN *);
  Bytes.to_string b

let malformed_update_treated_as_withdraw () =
  let eng, net, routers = chain 2 in
  ignore net;
  let r1 = List.nth routers 1 in
  (* r1 learned 192.0.0.0/24 from node 0 during convergence. *)
  Alcotest.(check bool) "prefix learned" true
    (Bgp.Prefix.Map.mem (p "192.0.0.0/24") (Bgp.Router.loc_rib r1));
  Bgp.Router.process_raw r1 ~from_node:0 (corrupt_origin_update ());
  (* Attribute error on an Established session: withdraw the NLRI,
     count it, keep the session up (treat-as-withdraw). *)
  check (Alcotest.option (Alcotest.testable Bgp.Fsm.pp_state ( = )))
    "session stays Established" (Some Bgp.Fsm.Established)
    (Bgp.Router.session_state r1 (Bgp.Router.addr_of_node 0));
  check Alcotest.int "treat-as-withdraw counted" 1
    (Netsim.Stats.get (Bgp.Router.stats r1) "rx_treat_as_withdraw");
  check Alcotest.int "not counted as malformed" 0
    (Netsim.Stats.get (Bgp.Router.stats r1) "rx_malformed");
  Alcotest.(check bool) "affected prefix withdrawn" false
    (Bgp.Prefix.Map.mem (p "192.0.0.0/24") (Bgp.Router.loc_rib r1));
  ignore eng

let corrupt_header_resets_session () =
  let eng, net, routers = chain 2 in
  ignore net;
  let r1 = List.nth routers 1 in
  (* Header corruption is not recoverable: NOTIFICATION + reset. *)
  let b = Bytes.of_string (corrupt_origin_update ()) in
  Bytes.set b 0 '\x00' (* break the marker *);
  Bgp.Router.process_raw r1 ~from_node:0 (Bytes.to_string b);
  check (Alcotest.option (Alcotest.testable Bgp.Fsm.pp_state ( = )))
    "session reset to Idle" (Some Bgp.Fsm.Idle)
    (Bgp.Router.session_state r1 (Bgp.Router.addr_of_node 0));
  check Alcotest.int "malformed counted" 1
    (Netsim.Stats.get (Bgp.Router.stats r1) "rx_malformed");
  check Alcotest.int "no treat-as-withdraw" 0
    (Netsim.Stats.get (Bgp.Router.stats r1) "rx_treat_as_withdraw");
  ignore eng

let state_is_persistent () =
  let _, _, routers = chain 3 in
  let r0 = List.hd routers in
  let before = Bgp.Router.state r0 in
  let loc_before = Bgp.Prefix.Map.cardinal before.Bgp.Router.rib.Bgp.Rib.loc in
  (* Mutate the router; the captured state must not change. *)
  Bgp.Router.inject_update r0 ~from:(Bgp.Router.addr_of_node 1)
    { Bgp.Msg.withdrawn = [ p "192.0.1.0/24"; p "192.0.2.0/24" ]; attrs = None; nlri = [] };
  Alcotest.(check bool) "live state changed" true
    (Bgp.Prefix.Map.cardinal (Bgp.Router.rib r0).Bgp.Rib.loc < loc_before);
  check Alcotest.int "captured state unchanged" loc_before
    (Bgp.Prefix.Map.cardinal before.Bgp.Router.rib.Bgp.Rib.loc);
  Bgp.Router.restore r0 before;
  check Alcotest.int "restore brings it back" loc_before
    (Bgp.Prefix.Map.cardinal (Bgp.Router.rib r0).Bgp.Rib.loc)

let hold_timer_tears_down_dead_peer () =
  let eng, net, routers = chain 3 in
  let r0 = List.hd routers and r1 = List.nth routers 1 in
  (* Node 2 fails silently: no NOTIFICATION, no withdrawal — only the
     hold timer can notice. *)
  Netsim.Network.set_node_down net 2;
  Netsim.Engine.run
    ~until:(Netsim.Time.add (Netsim.Engine.now eng) (Netsim.Time.span_sec 120.)) eng;
  Alcotest.(check bool) "r1 dropped the dead session" false
    (List.mem (Bgp.Router.addr_of_node 2) (Bgp.Router.established_peers r1));
  Alcotest.(check bool) "r0 lost routes behind the dead peer" false
    (Bgp.Prefix.Map.mem (p "192.0.2.0/24") (Bgp.Router.loc_rib r0));
  Alcotest.(check bool) "hold expiry recorded" true
    (Netsim.Stats.get (Bgp.Router.stats r1) "session_down" >= 1)

let dead_peer_recovers () =
  let eng, net, routers = chain 3 in
  let r0 = List.hd routers and r1 = List.nth routers 1 in
  Netsim.Network.set_node_down net 2;
  Netsim.Engine.run
    ~until:(Netsim.Time.add (Netsim.Engine.now eng) (Netsim.Time.span_sec 120.)) eng;
  Alcotest.(check bool) "prefix gone while down" false
    (Bgp.Prefix.Map.mem (p "192.0.2.0/24") (Bgp.Router.loc_rib r0));
  Netsim.Network.set_node_up net 2;
  Netsim.Engine.run
    ~until:(Netsim.Time.add (Netsim.Engine.now eng) (Netsim.Time.span_sec 300.)) eng;
  Alcotest.(check bool) "session re-established" true
    (List.mem (Bgp.Router.addr_of_node 2) (Bgp.Router.established_peers r1));
  Alcotest.(check bool) "routes relearned" true
    (Bgp.Prefix.Map.mem (p "192.0.2.0/24") (Bgp.Router.loc_rib r0))

let stuck_open_times_out () =
  (* A peer that is down from the very start: the session attempt parks
     in OpenSent and must be reaped by the hold timer, not hang. *)
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ _ -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ _ -> ());
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.set_node_down net 1;
  let cfg =
    Bgp.Config.make ~asn:1000 ~router_id:(Bgp.Router.addr_of_node 0)
      ~networks:[ p "192.0.0.0/24" ]
      ~neighbors:[ Bgp.Config.neighbor (Bgp.Router.addr_of_node 1) ~remote_as:1001 ]
      ()
  in
  let r0 = Bgp.Router.create ~net ~node:0 cfg in
  Bgp.Router.start r0;
  Netsim.Engine.run ~until:(Netsim.Time.of_sec 95.) eng;
  (* 90 s hold expired: the FSM must have cycled out of its first
     OpenSent rather than waiting forever on the silent peer. *)
  (match Bgp.Router.session_state r0 (Bgp.Router.addr_of_node 1) with
  | Some Bgp.Fsm.Established -> Alcotest.fail "cannot establish with a dead peer"
  | Some _ | None -> ());
  Alcotest.(check bool) "session torn down at least once" true
    (Netsim.Stats.get (Bgp.Router.stats r0) "session_down" >= 1
    || Netsim.Stats.get (Bgp.Router.stats r0) "tx_notification" >= 1)

let suite =
  [ ("router: chain convergence", `Quick, chain_converges);
    ("router: withdrawal propagates", `Quick, withdrawal_propagates);
    ("router: session down flushes", `Quick, session_down_flushes_routes);
    ("router: auto restart", `Quick, session_restarts_automatically);
    ("router: no-export respected", `Quick, no_export_respected);
    ("router: loop prevention", `Quick, loop_prevention);
    ("router: malformed attrs treated as withdraw", `Quick, malformed_update_treated_as_withdraw);
    ("router: corrupt header resets session", `Quick, corrupt_header_resets_session);
    ("router: state is persistent", `Quick, state_is_persistent);
    ("router: hold timer reaps dead peer", `Quick, hold_timer_tears_down_dead_peer);
    ("router: dead peer recovers", `Quick, dead_peer_recovers);
    ("router: stuck OpenSent times out", `Quick, stuck_open_times_out) ]
