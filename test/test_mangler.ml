(* Adversarial wire-fault injection: the Mangler transform, crash
   absorption, RFC 7606 interop across implementations, and mangled
   exploration seeds. *)

let check = Alcotest.check

let p = Bgp.Prefix.of_string_exn

let span_sec = Netsim.Time.span_sec

(* Registry counters are global for the test binary, so every assertion
   works on deltas around the operation under test. *)
let totals_delta f =
  let m0, d0, u0, p0 = Netsim.Mangler.totals () in
  let r = f () in
  let m1, d1, u1, p1 = Netsim.Mangler.totals () in
  (r, (m1 - m0, d1 - d0, u1 - u0, p1 - p0))

(* --- byte-level mutations --- *)

let mutate_deterministic () =
  let raw = String.init 64 (fun i -> Char.chr (i * 7 land 0xFF)) in
  let run seed =
    let rng = Netsim.Rng.create seed in
    List.map (fun k -> Netsim.Mangler.mutate rng k raw) Netsim.Mangler.corpus_kinds
  in
  check (Alcotest.list Alcotest.string) "same seed, same mutations" (run 42) (run 42)

let mutate_total () =
  let rng = Netsim.Rng.create 7 in
  List.iter
    (fun k ->
      (* Total on any string, including the empty one. *)
      ignore (Netsim.Mangler.mutate rng k "");
      ignore (Netsim.Mangler.mutate rng k "x"))
    Netsim.Mangler.all_kinds;
  let raw = Bgp.Wire.encode Bgp.Msg.Keepalive in
  let trunc = Netsim.Mangler.mutate rng Netsim.Mangler.Truncate raw in
  Alcotest.(check bool) "truncate strictly shorter" true
    (String.length trunc < String.length raw);
  let marker = Netsim.Mangler.mutate rng Netsim.Mangler.Corrupt_marker raw in
  Alcotest.(check bool) "marker byte no longer 0xff" true
    (String.exists (fun c -> c <> '\xff') (String.sub marker 0 16))

(* --- the transform --- *)

let rate0_is_identity () =
  let t = Netsim.Mangler.create ~seed:1 () in
  let msg = "hello wire" in
  let out, (m, d, u, passed) =
    totals_delta (fun () -> Netsim.Mangler.transform t ~src:0 ~dst:1 msg)
  in
  check (Alcotest.list Alcotest.string) "untouched singleton" [ msg ] out;
  (* The idle path touches nothing at all — not even the passed
     counter — so an installed-but-idle mangler is free. *)
  check Alcotest.int "nothing mangled" 0 m;
  check Alcotest.int "nothing dropped" 0 d;
  check Alcotest.int "nothing duplicated" 0 u;
  check Alcotest.int "nothing counted" 0 passed

let drop_and_duplicate () =
  let msg = "payload" in
  let t = Netsim.Mangler.create ~seed:2 ~rate:1.0 ~kinds:[ Netsim.Mangler.Drop ] () in
  let out, (_, dropped, _, _) =
    totals_delta (fun () -> Netsim.Mangler.transform t ~src:0 ~dst:1 msg)
  in
  check (Alcotest.list Alcotest.string) "dropped" [] out;
  check Alcotest.int "drop counted" 1 dropped;
  Netsim.Mangler.set_kinds t [ Netsim.Mangler.Duplicate ];
  let out, (_, _, duplicated, _) =
    totals_delta (fun () -> Netsim.Mangler.transform t ~src:0 ~dst:1 msg)
  in
  check (Alcotest.list Alcotest.string) "delivered twice" [ msg; msg ] out;
  check Alcotest.int "duplicate counted" 1 duplicated

let link_restriction () =
  let t =
    Netsim.Mangler.create ~seed:3 ~rate:1.0 ~links:[ (0, 1) ]
      ~kinds:[ Netsim.Mangler.Drop ] ()
  in
  check (Alcotest.list Alcotest.string) "other direction untouched" [ "m" ]
    (Netsim.Mangler.transform t ~src:1 ~dst:0 "m");
  check (Alcotest.list Alcotest.string) "targeted link mangled" []
    (Netsim.Mangler.transform t ~src:0 ~dst:1 "m")

let per_link_streams_deterministic () =
  let run () =
    let t = Netsim.Mangler.create ~seed:9 ~rate:0.5 () in
    List.concat_map
      (fun (s, d) ->
        List.init 20 (fun i ->
            Netsim.Mangler.transform t ~src:s ~dst:d (Printf.sprintf "msg%d" i)))
      [ (0, 1); (1, 0); (2, 3) ]
  in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "same seed, same fault pattern" (run ()) (run ())

let schedule_window () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ (_ : string) -> ());
  let t = Netsim.Mangler.create ~seed:4 () in
  let sched = Netsim.Mangler.window ~rate:0.25 ~from_:(span_sec 5.) ~until_:(span_sec 10.) () in
  let timers = Netsim.Mangler.apply t net sched in
  Netsim.Engine.run ~until:(Netsim.Time.of_sec 7.) eng;
  check (Alcotest.float 1e-9) "window open" 0.25 (Netsim.Mangler.rate t);
  Netsim.Engine.run ~until:(Netsim.Time.of_sec 12.) eng;
  check (Alcotest.float 1e-9) "window closed" 0. (Netsim.Mangler.rate t);
  Netsim.Mangler.cancel timers

(* --- crash absorption --- *)

exception Boom

let absorb_restarts_node () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ (_ : string) -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ msg -> if msg = "boom" then raise Boom);
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.set_crash_policy net
    (Netsim.Network.Absorb { restart_after = Some (span_sec 5.) });
  Netsim.Network.send net ~src:0 ~dst:1 "boom";
  Netsim.Engine.run ~until:(Netsim.Time.of_sec 1.) eng;
  (match Netsim.Network.crashes net with
  | [ c ] ->
      check Alcotest.int "crashed node" 1 c.Netsim.Network.cr_node;
      check Alcotest.int "fatal sender" 0 c.Netsim.Network.cr_src
  | l -> Alcotest.failf "expected one absorbed crash, got %d" (List.length l));
  Alcotest.(check bool) "node taken down" false (Netsim.Network.node_is_up net 1);
  Netsim.Engine.run ~until:(Netsim.Time.of_sec 10.) eng;
  Alcotest.(check bool) "node restarted" true (Netsim.Network.node_is_up net 1)

let propagate_is_default () =
  let eng = Netsim.Engine.create () in
  let net = Netsim.Network.create eng in
  Netsim.Network.add_node net 0 (fun ~src:_ (_ : string) -> ());
  Netsim.Network.add_node net 1 (fun ~src:_ _ -> raise Boom);
  Netsim.Network.connect_sym net 0 1 Netsim.Link.ideal;
  Netsim.Network.send net ~src:0 ~dst:1 "boom";
  Alcotest.check_raises "handler exception escapes" Boom (fun () ->
      Netsim.Engine.run ~until:(Netsim.Time.of_sec 1.) eng)

(* --- link retransmit cap accounting --- *)

let retransmit_cap_counted () =
  let link = Netsim.Link.make ~loss:0.9 ~max_retries:2 (span_sec 0.001) in
  let rng = Netsim.Rng.create 5 in
  let c = Telemetry.Metrics.counter "link.retransmit_cap_hits" in
  let before = Telemetry.Metrics.value c in
  for _ = 1 to 200 do
    ignore (Netsim.Link.delay link rng)
  done;
  (* loss 0.9 with a cap of 2 truncates ~81% of draws. *)
  Alcotest.(check bool) "cap hits counted" true (Telemetry.Metrics.value c > before)

(* --- RFC 7606 interop: both implementation pairings --- *)

let deploy_pair ~sparrow_nodes =
  let nodes = [ (0, Topology.Graph.Tier1); (1, Topology.Graph.Transit) ] in
  let edges = [ { Topology.Graph.a = 1; b = 0; rel = Topology.Graph.Customer_provider } ] in
  let g = Topology.Graph.make ~nodes ~edges in
  let build = Topology.Build.deploy ~sparrow_nodes g in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  build

let corrupt_origin_update ~from_node =
  let attrs =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq [ Topology.Gao_rexford.asn_of_node from_node ] ]
      ~next_hop:(Bgp.Router.addr_of_node from_node) ()
  in
  let raw =
    Bgp.Wire.encode
      (Bgp.Msg.Update { withdrawn = []; attrs = Some attrs; nlri = [ p "203.0.113.0/24" ] })
  in
  let b = Bytes.of_string raw in
  Bytes.set b 26 '\xee' (* invalid ORIGIN: a path-attribute error *);
  Bytes.to_string b

(* Both directions of the heterogeneous pairing agree on RFC 7606:
   attribute errors from the *other* implementation are treated as
   withdraw, not as session resets. *)
let interop_treat_as_withdraw () =
  List.iter
    (fun (sparrow_nodes, victim, peer) ->
      let build = deploy_pair ~sparrow_nodes in
      let sp = Topology.Build.speaker build victim in
      sp.Bgp.Speaker.sp_process_raw ~from_node:peer (corrupt_origin_update ~from_node:peer);
      check Alcotest.int
        (Printf.sprintf "%s treat-as-withdraw counted" sp.Bgp.Speaker.sp_impl)
        1
        (Netsim.Stats.get (sp.Bgp.Speaker.sp_stats ()) "rx_treat_as_withdraw");
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "%s session survives" sp.Bgp.Speaker.sp_impl)
        [ peer ]
        (List.map Bgp.Router.node_of_addr (sp.Bgp.Speaker.sp_established ())))
    [ (* bird-like victim, sparrow peer *) ([ 1 ], 0, 1);
      (* sparrow victim, bird-like peer *) ([ 1 ], 1, 0) ]

(* --- a fragile decoder under live mangling --- *)

let mangled_wire_crashes_absorbed () =
  let build = deploy_pair ~sparrow_nodes:[] in
  let net = build.Topology.Build.net in
  Netsim.Network.set_crash_policy net
    (Netsim.Network.Absorb { restart_after = Some (span_sec 10.) });
  let sp = Topology.Build.speaker build 1 in
  sp.Bgp.Speaker.sp_set_bugs
    { (sp.Bgp.Speaker.sp_bugs ()) with Bgp.Router.fragile_decode = true };
  (* Corrupt_marker breaks framing on every message, so the first
     UPDATE node 0 sends after the mangler goes live kills the fragile
     decoder on node 1. *)
  let t =
    Netsim.Mangler.create ~seed:0xBEEF ~rate:1.0
      ~kinds:[ Netsim.Mangler.Corrupt_marker ] ()
  in
  Netsim.Mangler.install t net;
  let sp0 = Topology.Build.speaker build 0 in
  let cfg = sp0.Bgp.Speaker.sp_config () in
  sp0.Bgp.Speaker.sp_set_config { cfg with Bgp.Config.networks = [] };
  Topology.Build.run_for build (span_sec 5.);
  Netsim.Mangler.remove net;
  Alcotest.(check bool) "fragile decoder crashed and was absorbed" true
    (List.exists (fun c -> c.Netsim.Network.cr_node = 1) (Netsim.Network.crashes net));
  Alcotest.(check bool) "node taken down by the crash" false
    (Netsim.Network.node_is_up net 1);
  (* The absorb policy schedules a restart. *)
  Topology.Build.run_for build (span_sec 20.);
  Alcotest.(check bool) "node restarted" true (Netsim.Network.node_is_up net 1)

(* --- mangled exploration seeds --- *)

let explorer_detects_codec_crash () =
  let nodes =
    [ (0, Topology.Graph.Tier1); (1, Topology.Graph.Transit); (2, Topology.Graph.Stub) ]
  in
  let edges =
    [ { Topology.Graph.a = 1; b = 0; rel = Topology.Graph.Customer_provider };
      { Topology.Graph.a = 2; b = 1; rel = Topology.Graph.Customer_provider } ]
  in
  let g = Topology.Graph.make ~nodes ~edges in
  let build = Topology.Build.deploy g in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  let sp = Topology.Build.speaker build 1 in
  sp.Bgp.Speaker.sp_set_bugs
    { (sp.Bgp.Speaker.sp_bugs ()) with Bgp.Router.fragile_decode = true };
  let gt = Dice.Checks.ground_truth_of_graph g in
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let params =
    { Dice.Explorer.default_params with
      Dice.Explorer.mangle_extra = 8;
      mangle_seed = 0x5EED }
  in
  let x = Dice.Explorer.explore_node ~params ~build ~cut ~gt ~node:1 () in
  Alcotest.(check bool) "mangled seeds were replayed" true
    (x.Dice.Explorer.x_mangled > 0);
  Alcotest.(check bool) "codec crash detected as a programming error" true
    (List.exists
       (fun f ->
         f.Dice.Fault.f_class = Dice.Fault.Programming_error
         && f.Dice.Fault.f_property = "codec-crash")
       x.Dice.Explorer.x_faults)

let suite =
  [ ("mangler: mutate is deterministic", `Quick, mutate_deterministic);
    ("mangler: mutate is total", `Quick, mutate_total);
    ("mangler: rate 0 is identity", `Quick, rate0_is_identity);
    ("mangler: drop and duplicate", `Quick, drop_and_duplicate);
    ("mangler: link restriction", `Quick, link_restriction);
    ("mangler: per-link streams deterministic", `Quick, per_link_streams_deterministic);
    ("mangler: schedule window", `Quick, schedule_window);
    ("network: absorbed crash restarts node", `Quick, absorb_restarts_node);
    ("network: propagate is the default", `Quick, propagate_is_default);
    ("link: retransmit cap hits counted", `Quick, retransmit_cap_counted);
    ("interop: treat-as-withdraw both directions", `Quick, interop_treat_as_withdraw);
    ("adversary: fragile decoder crash absorbed", `Quick, mangled_wire_crashes_absorbed);
    ("adversary: explorer finds codec crash", `Slow, explorer_detects_codec_crash) ]
