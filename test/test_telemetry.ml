(* The flight recorder: histogram semantics, JSONL codec round-trips,
   span causality (sequential and across pool domains), artifact
   validation, and the pin that a disabled sink changes nothing. *)

let check = Alcotest.check

let with_memory_sink f =
  let sink = Telemetry.Sink.memory () in
  Telemetry.set_sink sink;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_sink Telemetry.Sink.noop)
    (fun () -> f sink)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let histogram_bucket_boundaries () =
  let h = Telemetry.Histogram.create ~buckets:[| 1.; 10.; 100. |] "t" in
  List.iter (Telemetry.Histogram.observe h) [ 0.5; 1.0; 1.5; 10.0; 10.1; 1000. ];
  (* Bucket rule is [v <= le]: boundary values land in their bucket,
     not the next one; values above the last edge go to overflow. *)
  (match Telemetry.Histogram.buckets h with
  | [ (le1, n1); (le10, n2); (le100, n3); (inf, n4) ] ->
      check (Alcotest.float 0.) "first edge" 1. le1;
      check Alcotest.int "v <= 1" 2 n1;
      check (Alcotest.float 0.) "second edge" 10. le10;
      check Alcotest.int "1 < v <= 10" 2 n2;
      check (Alcotest.float 0.) "third edge" 100. le100;
      check Alcotest.int "10 < v <= 100" 1 n3;
      check Alcotest.bool "last bucket is +inf" true (inf = infinity);
      check Alcotest.int "overflow" 1 n4
  | l -> Alcotest.failf "expected 4 buckets, got %d" (List.length l));
  check Alcotest.int "count" 6 (Telemetry.Histogram.count h)

let percentile_edges () =
  let h = Telemetry.Histogram.create "p" in
  List.iter (Telemetry.Histogram.observe h) [ 3.; 1.; 4.; 2. ];
  let p q = Telemetry.Histogram.percentile h q in
  (* Nearest-rank with the rank clamped into [1, n]: p=0 is exactly the
     minimum and p=1 exactly the maximum (the old ceil-only formula
     indexed rank 0 at p=0). *)
  check (Alcotest.float 0.) "p=0 is the minimum" 1. (p 0.);
  check (Alcotest.float 0.) "p=1 is the maximum" 4. (p 1.);
  check (Alcotest.float 0.) "p50 nearest-rank" 2. (p 0.5);
  check (Alcotest.float 0.) "p99 on 4 samples" 4. (p 0.99);
  (try
     ignore (p 1.5);
     Alcotest.fail "p > 1 must raise"
   with Invalid_argument _ -> ());
  (try
     ignore (p nan);
     Alcotest.fail "NaN p must raise"
   with Invalid_argument _ -> ())

let percentile_empty_is_nan () =
  let h = Telemetry.Histogram.create "e" in
  check Alcotest.bool "empty histogram percentile is NaN" true
    (Float.is_nan (Telemetry.Histogram.percentile h 0.5));
  (* The same contract surfaces through the Netsim.Stats shim. *)
  let s = Netsim.Stats.create () in
  check Alcotest.bool "stats shim: no samples -> NaN" true
    (Float.is_nan (Netsim.Stats.percentile s "missing" 0.5));
  Netsim.Stats.observe s "d" 7.;
  check (Alcotest.float 0.) "stats shim: p=0 is min" 7.
    (Netsim.Stats.percentile s "d" 0.)

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)
(* ------------------------------------------------------------------ *)

let sample_events =
  let open Telemetry.Sink in
  let open Telemetry.Json in
  [ Run { schema = Telemetry.Schema.version; attrs = [ ("seed", Int 42) ] };
    Span_start
      { id = 1; parent = None; name = "round";
        t_us = 70_000_000;
        attrs = [ ("index", Int 0); ("label", String "a \"quoted\" one") ] };
    Span_start
      { id = 2; parent = Some 1; name = "cut"; t_us = 70_000_001; attrs = [] };
    Fault
      { t_us = 70_000_002; fault_class = "operator-mistake";
        property = "origin-authenticity"; node = 11;
        detail = "hijacked\nprefix"; input = Some "nlri_a=10";
        span_path = [ 1; 2 ] };
    Fault
      { t_us = 70_000_003; fault_class = "programming-error";
        property = "handler-crash"; node = -1; detail = "boom"; input = None;
        span_path = [] };
    Metric { t_us = 70_000_004; name = "solver.sat"; value = Int 21 };
    Metric
      { t_us = 70_000_005; name = "net.live.node_downtime_us";
        value = Obj [ ("count", Int 0); ("p50", Null); ("frac", Float 0.25) ] };
    Trace { t_us = 70_000_006; node = 3; kind = "churn"; detail = "node down" };
    Span_end { id = 2; t_us = 70_000_007; attrs = [ ("ok", Bool true) ] };
    Span_end { id = 1; t_us = 70_000_008; attrs = [] } ]

let jsonl_roundtrip () =
  List.iteri
    (fun seq ev ->
      let line = Telemetry.Json.to_string (Telemetry.Sink.to_json ~seq ev) in
      match Telemetry.Json.of_string line with
      | Error e -> Alcotest.failf "line %d failed to parse: %s (%s)" seq e line
      | Ok j -> (
          match Telemetry.Sink.of_json j with
          | Error e -> Alcotest.failf "line %d failed to decode: %s (%s)" seq e line
          | Ok (seq', ev') ->
              check Alcotest.int "seq survives" seq seq';
              (* Compare via re-encoding: event has functional values
                 nowhere, but Json.equal gives order-insensitive
                 object comparison for free. *)
              check Alcotest.bool
                (Printf.sprintf "event %d round-trips" seq)
                true
                (Telemetry.Json.equal
                   (Telemetry.Sink.to_json ~seq ev)
                   (Telemetry.Sink.to_json ~seq:seq' ev'))))
    sample_events

let json_parser_rejects_garbage () =
  List.iter
    (fun s ->
      match Telemetry.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" s)
    [ ""; "{"; "{\"a\":}"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span_names_and_parents sink =
  let spans =
    List.filter_map
      (fun (_, ev) ->
        match ev with
        | Telemetry.Sink.Span_start { id; parent; name; _ } ->
            Some (id, parent, name)
        | _ -> None)
      (Telemetry.Sink.events sink)
  in
  (* (name, parent-name) pairs: stable across interleavings and id
     assignment order. *)
  List.map
    (fun (_, parent, name) ->
      let pname =
        match parent with
        | None -> "<root>"
        | Some pid -> (
            match List.find_opt (fun (id, _, _) -> id = pid) spans with
            | Some (_, _, n) -> n
            | None -> "<missing>")
      in
      (name, pname))
    spans

let span_nesting () =
  let pairs =
    with_memory_sink (fun sink ->
        Telemetry.with_span "outer" (fun _ ->
            Telemetry.with_span "inner" (fun _ -> ());
            Telemetry.with_span "inner" (fun _ -> ()));
        span_names_and_parents sink)
  in
  check
    Alcotest.(list (pair string string))
    "nesting recorded"
    [ ("outer", "<root>"); ("inner", "outer"); ("inner", "outer") ]
    pairs

let span_closes_on_exception () =
  with_memory_sink (fun sink ->
      (try Telemetry.with_span "bomb" (fun _ -> failwith "boom")
       with Failure _ -> ());
      let starts, ends =
        List.fold_left
          (fun (s, e) (_, ev) ->
            match ev with
            | Telemetry.Sink.Span_start _ -> (s + 1, e)
            | Telemetry.Sink.Span_end { attrs; _ } ->
                check Alcotest.bool "error attr present" true
                  (List.mem_assoc "error" attrs);
                (s, e + 1)
            | _ -> (s, e))
          (0, 0) (Telemetry.Sink.events sink)
      in
      check Alcotest.int "span started" 1 starts;
      check Alcotest.int "span closed despite raise" 1 ends)

(* Spans recorded from pool workers (via with_path) carry the same
   causal chain as a sequential run: equal (name, parent) multisets,
   only the interleaving may differ. *)
let spans_seq_eq_par () =
  let work record =
    Telemetry.with_span "batch" (fun _ ->
        let path = Telemetry.span_path () in
        record path (List.init 8 (fun i -> i)))
  in
  let seq_pairs =
    with_memory_sink (fun sink ->
        work (fun _path items ->
            List.iter
              (fun i ->
                Telemetry.with_span "item" (fun sp ->
                    Telemetry.add_attr sp [ ("i", Telemetry.Json.Int i) ]))
              items);
        span_names_and_parents sink)
  in
  let par_pairs =
    with_memory_sink (fun sink ->
        Parallel.Pool.with_pool ~domains:4 (fun pool ->
            work (fun path items ->
                ignore
                  (Parallel.Pool.map_list pool
                     (fun i ->
                       Telemetry.with_path path (fun () ->
                           Telemetry.with_span "item" (fun sp ->
                               Telemetry.add_attr sp
                                 [ ("i", Telemetry.Json.Int i) ])))
                     items)));
        span_names_and_parents sink)
  in
  let sort = List.sort compare in
  check
    Alcotest.(list (pair string string))
    "same span causality, sequential or pooled" (sort seq_pairs)
    (sort par_pairs);
  check Alcotest.int "one batch + 8 items" 9 (List.length par_pairs)

(* ------------------------------------------------------------------ *)
(* Validator                                                           *)
(* ------------------------------------------------------------------ *)

let lines_of_events events =
  List.mapi
    (fun seq ev -> Telemetry.Json.to_string (Telemetry.Sink.to_json ~seq ev))
    events

let validator_accepts_valid () =
  match Telemetry.Schema.validate_lines (lines_of_events sample_events) with
  | Ok stats ->
      check Alcotest.int "lines" (List.length sample_events)
        stats.Telemetry.Schema.v_lines;
      check Alcotest.int "spans" 2 stats.Telemetry.Schema.v_spans;
      check Alcotest.int "faults" 2 stats.Telemetry.Schema.v_faults
  | Error msgs -> Alcotest.failf "valid artifact rejected: %s" (List.hd msgs)

let validator_rejects_broken () =
  let open Telemetry.Sink in
  let run = Run { schema = Telemetry.Schema.version; attrs = [] } in
  let span ?parent id =
    Span_start { id; parent; name = "s"; t_us = 0; attrs = [] }
  in
  let close id = Span_end { id; t_us = 1; attrs = [] } in
  let cases =
    [ ("unclosed span", lines_of_events [ run; span 1 ]);
      ("duplicate span id", lines_of_events [ run; span 1; span 1; close 1 ]);
      ("end without start", lines_of_events [ run; close 7 ]);
      ("missing header", lines_of_events [ span 1; close 1 ]);
      ( "fault references unknown span",
        lines_of_events
          [ run;
            Fault
              { t_us = 0; fault_class = "c"; property = "p"; node = 0;
                detail = "d"; input = None; span_path = [ 99 ] } ] );
      ("unparseable line", [ "{\"type\":\"run\""; "" ]);
      ( "seq not increasing",
        (* Hand-number both lines 0. *)
        let l = Telemetry.Json.to_string (Telemetry.Sink.to_json ~seq:0 run) in
        [ l; l ] ) ]
  in
  List.iter
    (fun (what, lines) ->
      match Telemetry.Schema.validate_lines lines with
      | Ok _ -> Alcotest.failf "validator accepted artifact with %s" what
      | Error msgs -> check Alcotest.bool what true (msgs <> []))
    cases

(* ------------------------------------------------------------------ *)
(* Determinism pin: recording must never change what DiCE finds        *)
(* ------------------------------------------------------------------ *)

(* A kill -9 (or a full disk) tears the artifact's final line mid-byte.
   The streaming reader must surface that line as a per-line [Error]
   and keep every record before it — a torn tail is the caller's
   policy decision, never a fatal parse. *)
let with_torn_artifact f =
  let path = Filename.temp_file "telemetry-test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let lines = lines_of_events sample_events in
  let whole = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  let torn =
    let last = List.nth lines (List.length lines - 1) in
    String.sub last 0 (String.length last / 2)
  in
  let oc = open_out path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') whole;
  output_string oc torn;
  close_out oc;
  f path (List.length whole)

let fold_file_truncated_tail () =
  with_torn_artifact @@ fun path whole ->
  let ok, errors, last_line =
    Telemetry.Sink.fold_file path ~init:(0, 0, 0)
      ~f:(fun (ok, errors, _) ~line r ->
        match r with
        | Ok _ -> (ok + 1, errors, line)
        | Error _ -> (ok, errors + 1, line))
  in
  check Alcotest.int "every whole line decodes" whole ok;
  check Alcotest.int "exactly the torn line errors" 1 errors;
  check Alcotest.int "torn line is the final line" (whole + 1) last_line

let iter_file_truncated_tail () =
  with_torn_artifact @@ fun path whole ->
  let ok = ref 0 and errors = ref [] in
  Telemetry.Sink.iter_file path ~f:(fun ~line r ->
      match r with
      | Ok _ -> incr ok
      | Error msg -> errors := (line, msg) :: !errors);
  check Alcotest.int "every whole line decodes" whole !ok;
  match !errors with
  | [ (line, _) ] -> check Alcotest.int "error names the torn line" (whole + 1) line
  | es -> Alcotest.failf "expected one per-line error, got %d" (List.length es)

let exploration_fingerprint (x : Dice.Explorer.exploration) =
  ( x.Dice.Explorer.x_inputs,
    x.Dice.Explorer.x_distinct_paths,
    x.Dice.Explorer.x_shadow_runs,
    List.map
      (fun (f : Dice.Fault.t) ->
        (Dice.Fault.class_to_string f.Dice.Fault.f_class,
         f.Dice.Fault.f_property, f.Dice.Fault.f_node))
      x.Dice.Explorer.x_faults )

let explore_once () =
  let params =
    { Topology.Generate.default_params with n_tier1 = 1; n_transit = 2; n_stub = 3 }
  in
  let graph = Topology.Generate.generate ~params (Netsim.Rng.create 5) in
  let build = Topology.Build.deploy graph in
  Topology.Build.start_all build;
  assert (Topology.Build.converge build);
  Dice.Inject.apply build
    (Dice.Inject.Prefix_hijack { at = 5; victim = 1 });
  Topology.Build.run_for build (Netsim.Time.span_sec 10.);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let cut =
    Snapshot.Cut.create
      ~speakers:(fun id -> Topology.Build.speaker build id)
      build.Topology.Build.net
  in
  let params =
    { Dice.Explorer.default_params with
      Dice.Explorer.limits =
        { Concolic.Engine.max_inputs = 24; max_branches = 32; solver_nodes = 10_000 };
      fuzz_extra = 6;
      shadow_budget = 15_000 }
  in
  Dice.Explorer.explore_node ~params ~build ~cut ~gt ~node:2 ()

let disabled_sink_changes_nothing () =
  (* Memoized solver answers could mask divergence; drop them. *)
  Concolic.Solver.clear_cache ();
  Telemetry.set_sink Telemetry.Sink.noop;
  let baseline = exploration_fingerprint (explore_once ()) in
  Concolic.Solver.clear_cache ();
  let recorded =
    with_memory_sink (fun sink ->
        let fp = exploration_fingerprint (explore_once ()) in
        check Alcotest.bool "recording actually happened" true
          (Telemetry.Sink.events sink <> []);
        fp)
  in
  check Alcotest.bool "recording changes no exploration result" true
    (baseline = recorded)

let suite =
  [ Alcotest.test_case "histogram: bucket boundaries" `Quick
      histogram_bucket_boundaries;
    Alcotest.test_case "histogram: percentile edges p=0 and p=1" `Quick
      percentile_edges;
    Alcotest.test_case "histogram: empty distributions are NaN" `Quick
      percentile_empty_is_nan;
    Alcotest.test_case "jsonl: every event round-trips" `Quick jsonl_roundtrip;
    Alcotest.test_case "jsonl: parser rejects garbage" `Quick
      json_parser_rejects_garbage;
    Alcotest.test_case "spans: nesting and parents" `Quick span_nesting;
    Alcotest.test_case "spans: closed with error attr on raise" `Quick
      span_closes_on_exception;
    Alcotest.test_case "spans: pool workers keep the causal chain" `Quick
      spans_seq_eq_par;
    Alcotest.test_case "validator: accepts a well-formed artifact" `Quick
      validator_accepts_valid;
    Alcotest.test_case "validator: rejects broken artifacts" `Quick
      validator_rejects_broken;
    Alcotest.test_case "fold_file: torn final line is per-line, not fatal"
      `Quick fold_file_truncated_tail;
    Alcotest.test_case "iter_file: torn final line is per-line, not fatal"
      `Quick iter_file_truncated_tail;
    Alcotest.test_case "pin: disabled sink changes no exploration results"
      `Slow disabled_sink_changes_nothing ]
