type common = { cl_budget : int; cl_seed : int; cl_corpus : string }

type spec =
  | Flag of string * (unit -> unit) * string
  | Int of string * (int -> unit) * string
  | Str of string * (string -> unit) * string

let spec_name = function Flag (n, _, _) | Int (n, _, _) | Str (n, _, _) -> n
let spec_doc = function Flag (_, _, d) | Int (_, _, d) | Str (_, _, d) -> d

let spec_arg = function
  | Flag _ -> ""
  | Int _ -> " N"
  | Str _ -> " ARG"

let usage ~prog ~defaults ~specs =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "usage: %s [BUDGET [SEED [CORPUS_DIR]]] [flags]\n" prog);
  Buffer.add_string b
    (Printf.sprintf
       "  defaults: budget %d, seed %d, corpus dir %S\n\nflags:\n"
       defaults.cl_budget defaults.cl_seed defaults.cl_corpus);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  %s%s\t%s\n" (spec_name s) (spec_arg s) (spec_doc s)))
    ([ Int ("--budget", ignore, "fuzzing budget (cases / mutant runs)");
       Int ("--seed", ignore, "RNG seed");
       Str ("--corpus", ignore, "corpus directory for minimized findings") ]
    @ specs);
  Buffer.contents b

let parse ~prog ~defaults ?(specs = []) argv =
  let budget = ref defaults.cl_budget in
  let seed = ref defaults.cl_seed in
  let corpus = ref defaults.cl_corpus in
  let die msg =
    Printf.eprintf "%s: %s\n%s" prog msg (usage ~prog ~defaults ~specs);
    exit 2
  in
  let int_of name v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> die (Printf.sprintf "%s: expected an integer, got %S" name v)
  in
  let all_specs =
    [ Int ("--budget", (fun n -> budget := n), "");
      Int ("--seed", (fun n -> seed := n), "");
      Str ("--corpus", (fun s -> corpus := s), "") ]
    @ specs
  in
  let positional = ref 0 in
  let n = Array.length argv in
  let rec go i =
    if i < n then begin
      let a = argv.(i) in
      if String.equal a "--help" || String.equal a "-h" then begin
        print_string (usage ~prog ~defaults ~specs);
        exit 0
      end
      else if String.length a > 1 && a.[0] = '-' && not (String.length a > 1 && a.[1] >= '0' && a.[1] <= '9')
      then begin
        match List.find_opt (fun s -> String.equal (spec_name s) a) all_specs with
        | None -> die (Printf.sprintf "unknown flag %s" a)
        | Some (Flag (_, f, _)) ->
            f ();
            go (i + 1)
        | Some (Int (name, f, _)) ->
            if i + 1 >= n then die (Printf.sprintf "%s needs an argument" name);
            f (int_of name argv.(i + 1));
            go (i + 2)
        | Some (Str (name, f, _)) ->
            if i + 1 >= n then die (Printf.sprintf "%s needs an argument" name);
            f argv.(i + 1);
            go (i + 2)
      end
      else begin
        (match !positional with
        | 0 -> budget := int_of "BUDGET" a
        | 1 -> seed := int_of "SEED" a
        | 2 -> corpus := a
        | _ -> die (Printf.sprintf "surplus positional argument %S" a));
        incr positional;
        go (i + 1)
      end
    end
  in
  go 1;
  { cl_budget = !budget; cl_seed = !seed; cl_corpus = !corpus }
