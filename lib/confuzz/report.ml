module J = Telemetry.Json

let version = "dice-confuzz-cov/1"

let curve (r : Loop.result) =
  List.map (fun (rd : Loop.round) -> J.Int rd.Loop.r_covered) r.Loop.rs_rounds

let arm_to_json (r : Loop.result) =
  let p = r.Loop.rs_params in
  J.Obj
    [ ("budget", J.Int p.Loop.p_budget);
      ("seed", J.Int p.Loop.p_seed);
      ("guided", J.Bool p.Loop.p_guided);
      ("universe", J.Int r.Loop.rs_universe);
      ("baseline_covered", J.Int r.Loop.rs_baseline_covered);
      ("covered", J.Int r.Loop.rs_covered);
      ("curve", J.List (curve r));
      ("kept",
       J.Int (List.length (List.filter (fun (rd : Loop.round) -> rd.Loop.r_kept) r.Loop.rs_rounds)));
      ("findings", J.Int (List.length r.Loop.rs_findings));
      ("uncovered",
       J.List (List.map (fun pt -> J.String (Bgp.Clause_cov.id_of pt)) r.Loop.rs_uncovered)) ]

let to_json ~guided ?random () =
  J.Obj
    [ ("version", J.String version);
      ("guided", arm_to_json guided);
      ("random", (match random with Some r -> arm_to_json r | None -> J.Null));
      ("metrics", J.Obj (Telemetry.Metrics.filtered ~prefix:"confuzz." ())) ]

let write ~path json =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (J.to_string json);
  output_char oc '\n'

let pp_arm ppf name (r : Loop.result) =
  Format.fprintf ppf "%s: coverage %d/%d -> %d/%d, %d finding(s) in %d round(s)@ "
    name r.Loop.rs_baseline_covered r.Loop.rs_universe r.Loop.rs_covered
    r.Loop.rs_universe
    (List.length r.Loop.rs_findings)
    (List.length r.Loop.rs_rounds)

let pp_summary ppf ~guided ?random () =
  Format.fprintf ppf "@[<v>";
  pp_arm ppf "guided" guided;
  Option.iter (pp_arm ppf "random") random;
  Format.fprintf ppf "@]"
