module Cov = Bgp.Clause_cov

type params = {
  p_budget : int;
  p_seed : int;
  p_guided : bool;
  p_max_stack : int;
}

let default_params = { p_budget = 60; p_seed = 1; p_guided = true; p_max_stack = 4 }

type finding = {
  f_mutations : Mutation.t list;
  f_signatures : Dice.Signature.t list;
}

type round = {
  r_index : int;
  r_mutations : Mutation.t list;
  r_new_signatures : Dice.Signature.t list;
  r_covered : int;
  r_kept : bool;
}

type result = {
  rs_params : params;
  rs_universe : int;
  rs_baseline_covered : int;
  rs_covered : int;
  rs_rounds : round list;
  rs_findings : finding list;
  rs_uncovered : Cov.point list;
}

let m_rounds = Telemetry.Metrics.counter "confuzz.rounds"
let m_kept = Telemetry.Metrics.counter "confuzz.kept"
let m_findings = Telemetry.Metrics.counter "confuzz.findings"

(* A stack applies iff folding it over the base configs succeeds; a
   config-less mutation target (pruned map, already-stripped entry)
   makes the whole stack inapplicable. *)
let applies ctx stack =
  let by_node = Hashtbl.create 8 in
  List.iter (fun (n, c) -> Hashtbl.replace by_node n c) ctx.Mutation.cx_configs;
  List.for_all
    (fun m ->
      let n = Mutation.node_of m in
      match Hashtbl.find_opt by_node n with
      | None -> false
      | Some cfg -> (
          match Mutation.apply_config m cfg with
          | Ok cfg' ->
              Hashtbl.replace by_node n cfg';
              true
          | Error _ -> false))
    stack

(* One more mutation for [parent].  Under guidance, half the draws aim
   at a random uncovered point and half explore the full catalog —
   pure exploitation would starve the mutation kinds (foreign
   origination, TE pins) that cause faults without touching uncovered
   clauses.  A parent that already carries a pin chain skips targeting
   altogether: the chain extension inside {!Mutation.random} is the
   only path to a closed dispute wheel, and a targeted detour wastes
   the visit. *)
let pin_count stack =
  List.length
    (List.filter (function Mutation.Te_pin _ -> true | _ -> false) stack)

let next_mutation rng ~guided ctx parent =
  let targeted () =
    match Cov.uncovered () with
    | [] -> None
    | pts -> Mutation.targeted ~rng ctx (Netsim.Rng.pick rng pts)
  in
  let aim = guided && pin_count parent = 0 && Netsim.Rng.chance rng 0.5 in
  match (if aim then targeted () else None) with
  | Some m -> Some m
  | None -> Mutation.random ~rng ~parent ctx

(* Parent selection: usually uniform over the kept pool, but an
   in-progress pin chain is the rarest structure in it — about a third
   of the draws resume the longest extensible chain so dispute wheels
   actually assemble within a CI-sized budget. *)
let pick_parent rng pool ~max_stack =
  let extensible s = List.length s < max_stack in
  let chains = List.filter (fun s -> pin_count s > 0 && extensible s) pool in
  match chains with
  | c :: cs when Netsim.Rng.chance rng 0.35 ->
      List.fold_left (fun a b -> if pin_count b > pin_count a then b else a) c cs
  | _ ->
      let p = Netsim.Rng.pick rng pool in
      if extensible p then p else []

let run ?(params = default_params) ~ctx ~run_mutant () =
  let rng = Netsim.Rng.create params.p_seed in
  Cov.reset ();
  List.iter (fun (node, cfg) -> Cov.register_config ~node cfg) ctx.Mutation.cx_configs;
  Cov.enable ();
  Fun.protect ~finally:Cov.disable @@ fun () ->
  let baseline_sigs = run_mutant [] in
  let baseline_covered = Cov.covered () in
  let seen = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace seen (Dice.Signature.to_string s) ()) baseline_sigs;
  let pool = ref [ [] ] in
  let best_covered = ref baseline_covered in
  let rounds = ref [] in
  let findings = ref [] in
  for i = 1 to params.p_budget do
    Telemetry.Metrics.incr m_rounds;
    let parent = pick_parent rng !pool ~max_stack:params.p_max_stack in
    (* A few attempts to extend [parent] into an applicable stack. *)
    let rec candidate tries =
      if tries = 0 then None
      else
        match next_mutation rng ~guided:params.p_guided ctx parent with
        | None -> None
        | Some m ->
            let stack = parent @ [ m ] in
            if applies ctx stack then Some stack else candidate (tries - 1)
    in
    match candidate 8 with
    | None -> ()
    | Some stack ->
        if Sys.getenv_opt "CONFUZZ_TRACE" <> None then
          Printf.eprintf "round %d: %s\n%!" i
            (String.concat " + " (List.map Mutation.describe stack));
        let sigs = run_mutant stack in
        let fresh =
          List.filter
            (fun s ->
              let k = Dice.Signature.to_string s in
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.replace seen k ();
                true
              end)
            sigs
        in
        let covered = Cov.covered () in
        let kept = covered > !best_covered || fresh <> [] in
        if covered > !best_covered then best_covered := covered;
        if kept then begin
          Telemetry.Metrics.incr m_kept;
          pool := stack :: !pool
        end;
        if fresh <> [] then begin
          Telemetry.Metrics.add m_findings (List.length fresh);
          findings := { f_mutations = stack; f_signatures = fresh } :: !findings
        end;
        rounds :=
          { r_index = i;
            r_mutations = stack;
            r_new_signatures = fresh;
            r_covered = covered;
            r_kept = kept }
          :: !rounds
  done;
  { rs_params = params;
    rs_universe = Cov.universe_size ();
    rs_baseline_covered = baseline_covered;
    rs_covered = Cov.covered ();
    rs_rounds = List.rev !rounds;
    rs_findings = List.rev !findings;
    rs_uncovered = Cov.uncovered () }
