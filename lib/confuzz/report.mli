(** Machine-readable coverage report for a fuzzing campaign
    ([dice-confuzz-cov/1]).

    The report carries the guided campaign and, optionally, an
    unguided comparison arm run under the same seed and budget — the
    artifact CI uploads so the "guidance beats random" property is
    inspectable per run. *)

val arm_to_json : Loop.result -> Telemetry.Json.t
(** One campaign arm: budget/seed/guided, universe, baseline and final
    coverage, the per-round cumulative coverage curve, kept-stack and
    finding counts, and the uncovered point ids. *)

val to_json : guided:Loop.result -> ?random:Loop.result -> unit -> Telemetry.Json.t
(** Full report: version header, both arms, and the
    [confuzz.*] metric snapshot ({!Telemetry.Metrics.filtered}). *)

val write : path:string -> Telemetry.Json.t -> unit

val pp_summary :
  Format.formatter -> guided:Loop.result -> ?random:Loop.result -> unit -> unit
(** Two-line human summary for the console. *)
