module J = Telemetry.Json
module P = Bgp.Policy
module C = Bgp.Config

type dir = Import | Export

type t =
  | Pref_const of { node : int; map : string; seq : int; value : int }
  | Pref_swap of
      { node : int; map_a : string; seq_a : int; map_b : string; seq_b : int }
  | Med_const of { node : int; map : string; seq : int; value : int option }
  | Action_flip of { node : int; map : string; seq : int }
  | Match_drop of { node : int; map : string; seq : int; idx : int }
  | Match_dup of { node : int; map : string; seq : int; idx : int }
  | Match_reorder of { node : int; map : string; seq : int }
  | Entry_shadow of { node : int; map : string; seq : int }
  | Community_rewrite of
      { node : int; map : string; seq : int; community : Bgp.Community.t }
  | Community_strip of { node : int; map : string; seq : int }
  | Prefix_widen of
      { node : int; map : string; seq : int; idx : int; ge : int option; le : int option }
  | Ref_dangle of { node : int; neighbor : int; dir : dir }
  | Ref_swap of { node : int; neighbor : int }
  | Originate_foreign of { node : int; prefix : Bgp.Prefix.t }
  | Network_drop of { node : int; prefix : Bgp.Prefix.t }
  | Te_pin of
      { node : int; map : string; prefix : Bgp.Prefix.t; via_asn : int; pref : int }

let node_of = function
  | Pref_const { node; _ }
  | Pref_swap { node; _ }
  | Med_const { node; _ }
  | Action_flip { node; _ }
  | Match_drop { node; _ }
  | Match_dup { node; _ }
  | Match_reorder { node; _ }
  | Entry_shadow { node; _ }
  | Community_rewrite { node; _ }
  | Community_strip { node; _ }
  | Prefix_widen { node; _ }
  | Ref_dangle { node; _ }
  | Ref_swap { node; _ }
  | Originate_foreign { node; _ }
  | Network_drop { node; _ }
  | Te_pin { node; _ } -> node

let nodes_of m = [ node_of m ]

let kind_name = function
  | Pref_const _ -> "pref-const"
  | Pref_swap _ -> "pref-swap"
  | Med_const _ -> "med-const"
  | Action_flip _ -> "action-flip"
  | Match_drop _ -> "match-drop"
  | Match_dup _ -> "match-dup"
  | Match_reorder _ -> "match-reorder"
  | Entry_shadow _ -> "entry-shadow"
  | Community_rewrite _ -> "community-rewrite"
  | Community_strip _ -> "community-strip"
  | Prefix_widen _ -> "prefix-widen"
  | Ref_dangle _ -> "ref-dangle"
  | Ref_swap _ -> "ref-swap"
  | Originate_foreign _ -> "originate-foreign"
  | Network_drop _ -> "network-drop"
  | Te_pin _ -> "te-pin"

let dir_name = function Import -> "import" | Export -> "export"

let describe = function
  | Pref_const { node; map; seq; value } ->
      Printf.sprintf "router %d: %s entry %d: set local-pref %d" node map seq value
  | Pref_swap { node; map_a; seq_a; map_b; seq_b } ->
      Printf.sprintf "router %d: swap local-pref of %s entry %d and %s entry %d"
        node map_a seq_a map_b seq_b
  | Med_const { node; map; seq; value } ->
      Printf.sprintf "router %d: %s entry %d: set med %s" node map seq
        (match value with Some v -> string_of_int v | None -> "none")
  | Action_flip { node; map; seq } ->
      Printf.sprintf "router %d: %s entry %d: flip permit/deny" node map seq
  | Match_drop { node; map; seq; idx } ->
      Printf.sprintf "router %d: %s entry %d: drop match clause %d" node map seq idx
  | Match_dup { node; map; seq; idx } ->
      Printf.sprintf "router %d: %s entry %d: duplicate match clause %d" node map
        seq idx
  | Match_reorder { node; map; seq } ->
      Printf.sprintf "router %d: %s entry %d: reorder match clauses" node map seq
  | Entry_shadow { node; map; seq } ->
      Printf.sprintf
        "router %d: %s: shadow the map behind a match-anything copy of entry %d"
        node map seq
  | Community_rewrite { node; map; seq; community } ->
      Printf.sprintf "router %d: %s entry %d: rewrite communities to %s" node map
        seq
        (Bgp.Community.to_string community)
  | Community_strip { node; map; seq } ->
      Printf.sprintf "router %d: %s entry %d: strip community sets" node map seq
  | Prefix_widen { node; map; seq; idx; ge; le } ->
      Printf.sprintf "router %d: %s entry %d: prefix clause %d bounds ge=%s le=%s"
        node map seq idx
        (match ge with Some v -> string_of_int v | None -> "-")
        (match le with Some v -> string_of_int v | None -> "-")
  | Ref_dangle { node; neighbor; dir } ->
      Printf.sprintf "router %d: neighbor #%d: typo %s map reference (dangles)"
        node neighbor (dir_name dir)
  | Ref_swap { node; neighbor } ->
      Printf.sprintf "router %d: neighbor #%d: swap import/export map references"
        node neighbor
  | Originate_foreign { node; prefix } ->
      Printf.sprintf "router %d: originate foreign prefix %s" node
        (Bgp.Prefix.to_string prefix)
  | Network_drop { node; prefix } ->
      Printf.sprintf "router %d: stop originating %s" node
        (Bgp.Prefix.to_string prefix)
  | Te_pin { node; map; prefix; via_asn; pref } ->
      Printf.sprintf
        "router %d: %s: pin %s via AS %d at local-pref %d (mis-tagged peer)" node
        map
        (Bgp.Prefix.to_string prefix)
        via_asn pref

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let to_json m =
  let base = [ ("kind", J.String (kind_name m)); ("node", J.Int (node_of m)) ] in
  let rest =
    match m with
    | Pref_const { map; seq; value; _ } ->
        [ ("map", J.String map); ("seq", J.Int seq); ("value", J.Int value) ]
    | Pref_swap { map_a; seq_a; map_b; seq_b; _ } ->
        [ ("map_a", J.String map_a); ("seq_a", J.Int seq_a);
          ("map_b", J.String map_b); ("seq_b", J.Int seq_b) ]
    | Med_const { map; seq; value; _ } ->
        [ ("map", J.String map); ("seq", J.Int seq);
          ("value", match value with Some v -> J.Int v | None -> J.Null) ]
    | Action_flip { map; seq; _ }
    | Match_reorder { map; seq; _ }
    | Entry_shadow { map; seq; _ }
    | Community_strip { map; seq; _ } ->
        [ ("map", J.String map); ("seq", J.Int seq) ]
    | Match_drop { map; seq; idx; _ } | Match_dup { map; seq; idx; _ } ->
        [ ("map", J.String map); ("seq", J.Int seq); ("idx", J.Int idx) ]
    | Community_rewrite { map; seq; community; _ } ->
        [ ("map", J.String map); ("seq", J.Int seq);
          ("community", J.String (Bgp.Community.to_string community)) ]
    | Prefix_widen { map; seq; idx; ge; le; _ } ->
        [ ("map", J.String map); ("seq", J.Int seq); ("idx", J.Int idx);
          ("ge", match ge with Some v -> J.Int v | None -> J.Null);
          ("le", match le with Some v -> J.Int v | None -> J.Null) ]
    | Ref_dangle { neighbor; dir; _ } ->
        [ ("neighbor", J.Int neighbor); ("dir", J.String (dir_name dir)) ]
    | Ref_swap { neighbor; _ } -> [ ("neighbor", J.Int neighbor) ]
    | Originate_foreign { prefix; _ } | Network_drop { prefix; _ } ->
        [ ("prefix", J.String (Bgp.Prefix.to_string prefix)) ]
    | Te_pin { map; prefix; via_asn; pref; _ } ->
        [ ("map", J.String map);
          ("prefix", J.String (Bgp.Prefix.to_string prefix));
          ("via_asn", J.Int via_asn); ("pref", J.Int pref) ]
  in
  J.Obj (base @ rest)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "mutation: missing field %S" name)

let int_field name j =
  let* v = field name j in
  match v with
  | J.Int n -> Ok n
  | _ -> Error (Printf.sprintf "mutation: field %S: expected int" name)

let string_field name j =
  let* v = field name j in
  match v with
  | J.String s -> Ok s
  | _ -> Error (Printf.sprintf "mutation: field %S: expected string" name)

let opt_int_field name j =
  let* v = field name j in
  match v with
  | J.Int n -> Ok (Some n)
  | J.Null -> Ok None
  | _ -> Error (Printf.sprintf "mutation: field %S: expected int or null" name)

let prefix_field name j =
  let* s = string_field name j in
  Bgp.Prefix.of_string s

let of_json j =
  let* kind = string_field "kind" j in
  let* node = int_field "node" j in
  let entry_target () =
    let* map = string_field "map" j in
    let* seq = int_field "seq" j in
    Ok (map, seq)
  in
  match kind with
  | "pref-const" ->
      let* map, seq = entry_target () in
      let* value = int_field "value" j in
      Ok (Pref_const { node; map; seq; value })
  | "pref-swap" ->
      let* map_a = string_field "map_a" j in
      let* seq_a = int_field "seq_a" j in
      let* map_b = string_field "map_b" j in
      let* seq_b = int_field "seq_b" j in
      Ok (Pref_swap { node; map_a; seq_a; map_b; seq_b })
  | "med-const" ->
      let* map, seq = entry_target () in
      let* value = opt_int_field "value" j in
      Ok (Med_const { node; map; seq; value })
  | "action-flip" ->
      let* map, seq = entry_target () in
      Ok (Action_flip { node; map; seq })
  | "match-drop" ->
      let* map, seq = entry_target () in
      let* idx = int_field "idx" j in
      Ok (Match_drop { node; map; seq; idx })
  | "match-dup" ->
      let* map, seq = entry_target () in
      let* idx = int_field "idx" j in
      Ok (Match_dup { node; map; seq; idx })
  | "match-reorder" ->
      let* map, seq = entry_target () in
      Ok (Match_reorder { node; map; seq })
  | "entry-shadow" ->
      let* map, seq = entry_target () in
      Ok (Entry_shadow { node; map; seq })
  | "community-rewrite" ->
      let* map, seq = entry_target () in
      let* c = string_field "community" j in
      let* community = Bgp.Community.of_string c in
      Ok (Community_rewrite { node; map; seq; community })
  | "community-strip" ->
      let* map, seq = entry_target () in
      Ok (Community_strip { node; map; seq })
  | "prefix-widen" ->
      let* map, seq = entry_target () in
      let* idx = int_field "idx" j in
      let* ge = opt_int_field "ge" j in
      let* le = opt_int_field "le" j in
      Ok (Prefix_widen { node; map; seq; idx; ge; le })
  | "ref-dangle" ->
      let* neighbor = int_field "neighbor" j in
      let* d = string_field "dir" j in
      let* dir =
        match d with
        | "import" -> Ok Import
        | "export" -> Ok Export
        | _ -> Error (Printf.sprintf "mutation: unknown dir %S" d)
      in
      Ok (Ref_dangle { node; neighbor; dir })
  | "ref-swap" ->
      let* neighbor = int_field "neighbor" j in
      Ok (Ref_swap { node; neighbor })
  | "originate-foreign" ->
      let* prefix = prefix_field "prefix" j in
      Ok (Originate_foreign { node; prefix })
  | "network-drop" ->
      let* prefix = prefix_field "prefix" j in
      Ok (Network_drop { node; prefix })
  | "te-pin" ->
      let* map = string_field "map" j in
      let* prefix = prefix_field "prefix" j in
      let* via_asn = int_field "via_asn" j in
      let* pref = int_field "pref" j in
      Ok (Te_pin { node; map; prefix; via_asn; pref })
  | other -> Error (Printf.sprintf "mutation: unknown kind %S" other)

(* ------------------------------------------------------------------ *)
(* Application                                                         *)
(* ------------------------------------------------------------------ *)

let update_map cfg name f =
  match C.find_route_map cfg name with
  | None -> Error (Printf.sprintf "route-map %s not found" name)
  | Some m ->
      let* m' = f m in
      let replaced = ref false in
      Ok
        { cfg with
          C.route_maps =
            List.map
              (fun (n, old) ->
                if String.equal n name && not !replaced then begin
                  replaced := true;
                  (n, m')
                end
                else (n, old))
              cfg.C.route_maps }

let update_entry map name seq f =
  match List.find_opt (fun (e : P.entry) -> e.P.seq = seq) map with
  | None -> Error (Printf.sprintf "route-map %s: entry %d not found" name seq)
  | Some e ->
      let* e' = f e in
      Ok (List.map (fun (x : P.entry) -> if x.P.seq = seq then e' else x) map)

let on_entry cfg name seq f =
  update_map cfg name (fun m -> update_entry m name seq f)

let min_seq map =
  List.fold_left (fun acc (e : P.entry) -> min acc e.P.seq) max_int map

let update_neighbor cfg i f =
  match List.nth_opt cfg.C.neighbors i with
  | None -> Error (Printf.sprintf "neighbor #%d not found" i)
  | Some n ->
      let* n' = f n in
      Ok
        { cfg with
          C.neighbors = List.mapi (fun k old -> if k = i then n' else old) cfg.C.neighbors }

let set_pref value (e : P.entry) =
  { e with
    P.sets =
      List.filter (function P.Set_local_pref _ -> false | _ -> true) e.P.sets
      @ [ P.Set_local_pref value ] }

let pref_of (e : P.entry) =
  List.find_map (function P.Set_local_pref v -> Some v | _ -> None) e.P.sets

let clamp_rule ge le (r : P.prefix_rule) =
  let base = Bgp.Prefix.len r.P.rule_prefix in
  let clamp v = min 32 (max base v) in
  { r with P.ge = Option.map clamp ge; le = Option.map clamp le }

let apply_config m cfg =
  match m with
  | Pref_const { map; seq; value; _ } ->
      on_entry cfg map seq (fun e -> Ok (set_pref value e))
  | Pref_swap { map_a; seq_a; map_b; seq_b; _ } ->
      let read name seq =
        match C.find_route_map cfg name with
        | None -> Error (Printf.sprintf "route-map %s not found" name)
        | Some m -> (
            match List.find_opt (fun (e : P.entry) -> e.P.seq = seq) m with
            | None -> Error (Printf.sprintf "route-map %s: entry %d not found" name seq)
            | Some e -> (
                match pref_of e with
                | Some v -> Ok v
                | None ->
                    Error
                      (Printf.sprintf "route-map %s entry %d sets no local-pref"
                         name seq)))
      in
      let* va = read map_a seq_a in
      let* vb = read map_b seq_b in
      let* cfg = on_entry cfg map_a seq_a (fun e -> Ok (set_pref vb e)) in
      on_entry cfg map_b seq_b (fun e -> Ok (set_pref va e))
  | Med_const { map; seq; value; _ } ->
      on_entry cfg map seq (fun e ->
          Ok
            { e with
              P.sets =
                List.filter (function P.Set_med _ -> false | _ -> true) e.P.sets
                @ [ P.Set_med value ] })
  | Action_flip { map; seq; _ } ->
      on_entry cfg map seq (fun e ->
          Ok
            { e with
              P.action = (match e.P.action with P.Permit -> P.Deny | P.Deny -> P.Permit) })
  | Match_drop { map; seq; idx; _ } ->
      on_entry cfg map seq (fun e ->
          if idx < 0 || idx >= List.length e.P.matches then
            Error (Printf.sprintf "entry %d has no match clause %d" seq idx)
          else Ok { e with P.matches = List.filteri (fun i _ -> i <> idx) e.P.matches })
  | Match_dup { map; seq; idx; _ } ->
      on_entry cfg map seq (fun e ->
          match List.nth_opt e.P.matches idx with
          | None -> Error (Printf.sprintf "entry %d has no match clause %d" seq idx)
          | Some m -> Ok { e with P.matches = e.P.matches @ [ m ] })
  | Match_reorder { map; seq; _ } ->
      on_entry cfg map seq (fun e ->
          if List.length e.P.matches < 2 then
            Error (Printf.sprintf "entry %d has fewer than 2 match clauses" seq)
          else Ok { e with P.matches = List.rev e.P.matches })
  | Entry_shadow { map; seq; _ } ->
      update_map cfg map (fun m ->
          match List.find_opt (fun (e : P.entry) -> e.P.seq = seq) m with
          | None -> Error (Printf.sprintf "route-map %s: entry %d not found" map seq)
          | Some e ->
              let shadow =
                { P.seq = min_seq m - 1; action = e.P.action; matches = []; sets = e.P.sets }
              in
              Ok (P.normalize (shadow :: m)))
  | Community_rewrite { map; seq; community; _ } ->
      on_entry cfg map seq (fun e ->
          let hit = ref false in
          let matches =
            List.map
              (function
                | P.Match_community _ ->
                    hit := true;
                    P.Match_community community
                | m -> m)
              e.P.matches
          in
          let sets =
            List.map
              (function
                | P.Add_community _ ->
                    hit := true;
                    P.Add_community community
                | s -> s)
              e.P.sets
          in
          if !hit then Ok { e with P.matches; sets }
          else Error (Printf.sprintf "entry %d references no community" seq))
  | Community_strip { map; seq; _ } ->
      on_entry cfg map seq (fun e ->
          let keep =
            List.filter
              (function P.Add_community _ | P.Del_community _ -> false | _ -> true)
              e.P.sets
          in
          if List.length keep = List.length e.P.sets then
            Error (Printf.sprintf "entry %d sets no community" seq)
          else Ok { e with P.sets = keep })
  | Prefix_widen { map; seq; idx; ge; le; _ } ->
      on_entry cfg map seq (fun e ->
          match List.nth_opt e.P.matches idx with
          | Some (P.Match_prefix rules) ->
              let widened = P.Match_prefix (List.map (clamp_rule ge le) rules) in
              Ok
                { e with
                  P.matches = List.mapi (fun i m -> if i = idx then widened else m) e.P.matches }
          | Some _ -> Error (Printf.sprintf "entry %d clause %d is not a prefix match" seq idx)
          | None -> Error (Printf.sprintf "entry %d has no match clause %d" seq idx))
  | Ref_dangle { neighbor; dir; _ } ->
      update_neighbor cfg neighbor (fun n ->
          match dir with
          | Import -> (
              match n.C.import_map with
              | Some m -> Ok { n with C.import_map = Some (m ^ "-TYPO") }
              | None -> Error (Printf.sprintf "neighbor #%d has no import map" neighbor))
          | Export -> (
              match n.C.export_map with
              | Some m -> Ok { n with C.export_map = Some (m ^ "-TYPO") }
              | None -> Error (Printf.sprintf "neighbor #%d has no export map" neighbor)))
  | Ref_swap { neighbor; _ } ->
      update_neighbor cfg neighbor (fun n ->
          if n.C.import_map = None && n.C.export_map = None then
            Error (Printf.sprintf "neighbor #%d references no maps" neighbor)
          else Ok { n with C.import_map = n.C.export_map; export_map = n.C.import_map })
  | Originate_foreign { prefix; _ } ->
      if List.exists (Bgp.Prefix.equal prefix) cfg.C.networks then
        Error
          (Printf.sprintf "%s is already originated" (Bgp.Prefix.to_string prefix))
      else Ok { cfg with C.networks = cfg.C.networks @ [ prefix ] }
  | Network_drop { prefix; _ } ->
      (* The repair engine's inverse of [Originate_foreign]: withdraw a
         network statement.  Not in the random catalog — a fuzzer that
         silently un-announces prefixes finds only trivial reachability
         holes. *)
      if not (List.exists (Bgp.Prefix.equal prefix) cfg.C.networks) then
        Error (Printf.sprintf "%s is not originated" (Bgp.Prefix.to_string prefix))
      else
        Ok
          { cfg with
            C.networks =
              List.filter (fun p -> not (Bgp.Prefix.equal prefix p)) cfg.C.networks }
  | Te_pin { map; prefix; via_asn; pref; _ } ->
      update_map cfg map (fun m ->
          let pin =
            P.entry (min_seq m - 1) P.Permit
              ~matches:
                [ P.Match_prefix [ P.prefix_rule ~le:32 prefix ];
                  P.Match_as_path (P.Path_neighbor_is via_asn) ]
              ~sets:
                [ P.Del_community Topology.Gao_rexford.community_customer;
                  P.Del_community Topology.Gao_rexford.community_provider;
                  P.Add_community Topology.Gao_rexford.community_peer;
                  P.Set_local_pref pref ]
          in
          Ok (P.normalize (pin :: m)))

let apply_speaker speaker m =
  let sp = speaker (node_of m) in
  let* cfg = apply_config m (sp.Bgp.Speaker.sp_config ()) in
  sp.Bgp.Speaker.sp_set_config cfg;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Seeded generation                                                   *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cx_configs : (int * Bgp.Config.t) list;
  cx_peers : (int * int list) list;
  cx_customers : (int * int list) list;
  cx_prefixes : (int * Bgp.Prefix.t) list;
}

let ctx_of_graph graph =
  let ids = Topology.Graph.node_ids graph in
  { cx_configs = List.map (fun id -> (id, Topology.Gao_rexford.config_of graph id)) ids;
    cx_peers = List.map (fun id -> (id, Topology.Graph.peers_of graph id)) ids;
    cx_customers =
      List.map (fun id -> (id, Topology.Graph.customers_of graph id)) ids;
    cx_prefixes = List.map (fun id -> (id, Topology.Gao_rexford.prefix_of_node id)) ids }

let entries_of cfg =
  List.concat_map
    (fun (name, m) -> List.map (fun (e : P.entry) -> (name, e)) m)
    (C.referenced_maps cfg)

let communities_of ctx =
  let fresh = Bgp.Community.make 65000 999 in
  let seen =
    List.concat_map
      (fun (_, cfg) ->
        List.concat_map
          (fun (_, m) ->
            List.concat_map
              (fun (e : P.entry) ->
                List.filter_map
                  (function P.Match_community c -> Some c | _ -> None)
                  e.P.matches
                @ List.filter_map
                    (function
                      | P.Add_community c | P.Del_community c -> Some c
                      | _ -> None)
                    e.P.sets)
              m)
          cfg.C.route_maps)
      ctx.cx_configs
  in
  List.sort_uniq compare (fresh :: seen)

let rng_pick_opt rng = function [] -> None | l -> Some (Netsim.Rng.pick rng l)

(* Instantiate a TE pin on [node].  [prefix] and [via] are fixed when
   chaining onto a parent pin; a fresh pin picks a peer-role neighbor
   and, by preference, a prefix originated under that peer's customer
   cone — the only pins that can actually redirect traffic (a pin for
   a prefix the peer never exports matches nothing, which is still a
   legitimate operator error, just an inert one). *)
let te_pin_on rng ctx node ?prefix ?via () =
  let cfg = List.assoc node ctx.cx_configs in
  let peers = try List.assoc node ctx.cx_peers with Not_found -> [] in
  let via =
    match via with Some v when List.mem v peers -> Some v | Some _ -> None
    | None -> rng_pick_opt rng peers
  in
  match via with
  | None -> None
  | Some via ->
      let via_asn =
        match List.assoc_opt via ctx.cx_configs with
        | Some c -> c.C.asn
        | None -> Topology.Gao_rexford.asn_of_node via
      in
      let victim =
        match prefix with
        | Some p -> Some p
        | None -> (
            let customers_of n =
              try List.assoc n ctx.cx_customers with Not_found -> []
            in
            let prefixes_of cs =
              List.filter_map (fun c -> List.assoc_opt c ctx.cx_prefixes) cs
            in
            (* A customer both ends route to directly is the pin that
               bites: the pin then overrides [node]'s own customer
               route with the peer-learned one — the dispute-wheel
               tension.  Fall back to the via's cone, then anywhere. *)
            let shared =
              List.filter (fun c -> List.mem c (customers_of node)) (customers_of via)
            in
            match prefixes_of shared with
            | _ :: _ as l -> Some (Netsim.Rng.pick rng l)
            | [] -> (
                match prefixes_of (customers_of via) with
                | _ :: _ as l -> Some (Netsim.Rng.pick rng l)
                | [] ->
                    rng_pick_opt rng
                      (List.filter_map
                         (fun (owner, p) -> if owner <> node then Some p else None)
                         ctx.cx_prefixes)))
      in
      let map =
        List.find_map
          (fun (n : C.neighbor) ->
            if n.C.remote_as = via_asn then n.C.import_map else None)
          cfg.C.neighbors
      in
      (match (victim, map) with
      | Some prefix, Some map ->
          Some (Te_pin { node; map; prefix; via_asn; pref = 300 })
      | _ -> None)

(* Extend a parent pin chain one hop toward a dispute wheel: the next
   pin lands on the node the previous pin routes through, and once the
   chain is two pins long it prefers pointing back at the first pinned
   node — the shape of {!Dice.Inject.Policy_dispute}'s wheel. *)
let te_pin_related rng ctx parent =
  let pins =
    List.filter_map
      (function
        | Te_pin z ->
            Some (z.node, Topology.Gao_rexford.node_of_asn z.via_asn, z.prefix)
        | _ -> None)
      parent
  in
  match pins with
  | [] -> None
  | (first, _, _) :: _ -> (
      let _, last_via, prefix = List.nth pins (List.length pins - 1) in
      let pinned = List.map (fun (n, _, _) -> n) pins in
      if List.mem last_via pinned || not (List.mem_assoc last_via ctx.cx_configs)
      then None
      else
        let peers = try List.assoc last_via ctx.cx_peers with Not_found -> [] in
        let close_cycle = List.length pins >= 2 && List.mem first peers in
        let via =
          if close_cycle then Some first
          else
            match List.filter (fun p -> not (List.mem p pinned)) peers with
            | [] -> if List.mem first peers then Some first else None
            | cands -> Some (Netsim.Rng.pick rng cands)
        in
        match via with
        | None -> None
        | Some via -> te_pin_on rng ctx last_via ~prefix ~via ())

let instantiate rng ?(parent = []) ctx node cfg kind =
  let entries = entries_of cfg in
  let pick_entry () = rng_pick_opt rng entries in
  let neighbors = List.length cfg.C.neighbors in
  let pick_neighbor () =
    if neighbors = 0 then None else Some (Netsim.Rng.int rng neighbors)
  in
  match kind with
  | 0 ->
      Option.map
        (fun (map, (e : P.entry)) ->
          Pref_const
            { node; map; seq = e.P.seq;
              value = Netsim.Rng.pick rng [ 0; 50; 100; 150; 200; 250; 300 ] })
        (pick_entry ())
  | 1 -> (
      let withpref =
        List.filter (fun (_, e) -> pref_of e <> None) entries
      in
      match withpref with
      | (_ :: _ :: _) ->
          let map_a, (ea : P.entry) = Netsim.Rng.pick rng withpref in
          let rest =
            List.filter
              (fun (m, (e : P.entry)) -> not (String.equal m map_a && e.P.seq = ea.P.seq))
              withpref
          in
          Option.map
            (fun (map_b, (eb : P.entry)) ->
              Pref_swap { node; map_a; seq_a = ea.P.seq; map_b; seq_b = eb.P.seq })
            (rng_pick_opt rng rest)
      | _ -> None)
  | 2 ->
      Option.map
        (fun (map, (e : P.entry)) ->
          Med_const
            { node; map; seq = e.P.seq;
              value =
                (match Netsim.Rng.int rng 3 with
                | 0 -> None
                | 1 -> Some 0
                | _ -> Some (Netsim.Rng.pick rng [ 10; 100; 1000 ])) })
        (pick_entry ())
  | 3 ->
      Option.map
        (fun (map, (e : P.entry)) -> Action_flip { node; map; seq = e.P.seq })
        (pick_entry ())
  | 4 ->
      Option.map
        (fun (map, (e : P.entry), idx) -> Match_drop { node; map; seq = e.P.seq; idx })
        (rng_pick_opt rng
           (List.concat_map
              (fun (m, (e : P.entry)) ->
                List.mapi (fun i _ -> (m, e, i)) e.P.matches)
              entries))
  | 5 ->
      Option.map
        (fun (map, (e : P.entry), idx) -> Match_dup { node; map; seq = e.P.seq; idx })
        (rng_pick_opt rng
           (List.concat_map
              (fun (m, (e : P.entry)) ->
                List.mapi (fun i _ -> (m, e, i)) e.P.matches)
              entries))
  | 6 ->
      Option.map
        (fun (map, (e : P.entry)) -> Match_reorder { node; map; seq = e.P.seq })
        (rng_pick_opt rng
           (List.filter (fun (_, (e : P.entry)) -> List.length e.P.matches >= 2) entries))
  | 7 ->
      Option.map
        (fun (map, (e : P.entry)) -> Entry_shadow { node; map; seq = e.P.seq })
        (pick_entry ())
  | 8 ->
      let has_community (e : P.entry) =
        List.exists (function P.Match_community _ -> true | _ -> false) e.P.matches
        || List.exists (function P.Add_community _ -> true | _ -> false) e.P.sets
      in
      Option.map
        (fun (map, (e : P.entry)) ->
          Community_rewrite
            { node; map; seq = e.P.seq;
              community = Netsim.Rng.pick rng (communities_of ctx) })
        (rng_pick_opt rng (List.filter (fun (_, e) -> has_community e) entries))
  | 9 ->
      let has_set (e : P.entry) =
        List.exists
          (function P.Add_community _ | P.Del_community _ -> true | _ -> false)
          e.P.sets
      in
      Option.map
        (fun (map, (e : P.entry)) -> Community_strip { node; map; seq = e.P.seq })
        (rng_pick_opt rng (List.filter (fun (_, e) -> has_set e) entries))
  | 10 ->
      Option.map
        (fun (map, (e : P.entry), idx) ->
          Prefix_widen
            { node; map; seq = e.P.seq; idx;
              ge = Some (Netsim.Rng.pick rng [ 0; 8; 16; 24 ]);
              le = Some (Netsim.Rng.pick rng [ 24; 32 ]) })
        (rng_pick_opt rng
           (List.concat_map
              (fun (m, (e : P.entry)) ->
                List.concat
                  (List.mapi
                     (fun i c ->
                       match c with P.Match_prefix _ -> [ (m, e, i) ] | _ -> [])
                     e.P.matches))
              entries))
  | 11 ->
      Option.bind (pick_neighbor ()) (fun neighbor ->
          let dir = if Netsim.Rng.bool rng then Import else Export in
          let n = List.nth cfg.C.neighbors neighbor in
          let ref_of = function Import -> n.C.import_map | Export -> n.C.export_map in
          let dir =
            if ref_of dir <> None then Some dir
            else if ref_of Import <> None then Some Import
            else if ref_of Export <> None then Some Export
            else None
          in
          Option.map (fun dir -> Ref_dangle { node; neighbor; dir }) dir)
  | 12 ->
      Option.bind (pick_neighbor ()) (fun neighbor ->
          let n = List.nth cfg.C.neighbors neighbor in
          if n.C.import_map = None && n.C.export_map = None then None
          else Some (Ref_swap { node; neighbor }))
  | 13 ->
      Option.map
        (fun prefix -> Originate_foreign { node; prefix })
        (rng_pick_opt rng
           (List.filter_map
              (fun (owner, p) ->
                if owner <> node && not (List.exists (Bgp.Prefix.equal p) cfg.C.networks)
                then Some p
                else None)
              ctx.cx_prefixes))
  | _ -> (
      (* TE pin: prefer extending a parent pin chain toward a dispute
         wheel; otherwise start a fresh pin. *)
      match te_pin_related rng ctx parent with
      | Some m -> Some m
      | None -> te_pin_on rng ctx node ())

let n_kinds = 15

let random ~rng ?(parent = []) ctx =
  match ctx.cx_configs with
  | [] -> None
  | configs -> (
      (* An in-progress pin chain is the most promising thing in the
         pool: usually extend it rather than mutate somewhere else. *)
      let chain =
        if List.exists (function Te_pin _ -> true | _ -> false) parent
           && Netsim.Rng.chance rng 0.6
        then te_pin_related rng ctx parent
        else None
      in
      match chain with
      | Some m -> Some m
      | None ->
          let rec attempt tries =
            if tries = 0 then None
            else
              let node, cfg = Netsim.Rng.pick rng configs in
              match
                instantiate rng ~parent ctx node cfg (Netsim.Rng.int rng n_kinds)
              with
              | Some m -> Some m
              | None -> attempt (tries - 1)
          in
          attempt 8)

let targeted ~rng ctx (pt : Bgp.Clause_cov.point) =
  match List.assoc_opt pt.Bgp.Clause_cov.pt_node ctx.cx_configs with
  | None -> None
  | Some cfg -> (
      let node = pt.Bgp.Clause_cov.pt_node in
      let map = pt.Bgp.Clause_cov.pt_map in
      match C.find_route_map cfg map with
      | None -> None
      | Some m -> (
          let entry_opt =
            List.find_opt (fun (e : P.entry) -> e.P.seq = pt.Bgp.Clause_cov.pt_seq) m
          in
          let widen idx =
            Some
              (Prefix_widen
                 { node; map; seq = pt.Bgp.Clause_cov.pt_seq; idx; ge = Some 0;
                   le = Some 32 })
          in
          let narrow idx =
            Some
              (Prefix_widen
                 { node; map; seq = pt.Bgp.Clause_cov.pt_seq; idx; ge = Some 32;
                   le = Some 32 })
          in
          let clause (e : P.entry) idx = List.nth_opt e.P.matches idx in
          match (pt.Bgp.Clause_cov.pt_what, entry_opt) with
          | Bgp.Clause_cov.Wmatch (idx, true), Some e -> (
              (* Make the clause hold where it currently never does. *)
              match clause e idx with
              | Some (P.Match_prefix _) -> widen idx
              | Some (P.Match_community _) ->
                  Some
                    (Community_rewrite
                       { node; map; seq = e.P.seq;
                         community = Netsim.Rng.pick rng (communities_of ctx) })
              | Some _ | None ->
                  if List.length e.P.matches >= 2 then
                    Some
                      (Match_drop
                         { node; map; seq = e.P.seq;
                           idx = (idx + 1) mod List.length e.P.matches })
                  else None)
          | Bgp.Clause_cov.Wmatch (idx, false), Some e -> (
              (* Make the clause fail at least once. *)
              match clause e idx with
              | Some (P.Match_prefix _) -> narrow idx
              | Some (P.Match_community _) ->
                  Some
                    (Community_rewrite
                       { node; map; seq = e.P.seq;
                         community = Bgp.Community.make 65000 999 })
              | Some _ | None -> None)
          | (Bgp.Clause_cov.Waction | Bgp.Clause_cov.Wset _), Some e ->
              (* The entry never decided: widen its conjunction. *)
              if e.P.matches <> [] then
                Some
                  (Match_drop
                     { node; map; seq = e.P.seq;
                       idx = Netsim.Rng.int rng (List.length e.P.matches) })
              else None
          | _ -> None))
