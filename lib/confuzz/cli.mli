(** Shared command-line handling for the fuzzer binaries.

    [fuzz_wire] and [fuzz_config] take the same three knobs — budget,
    seed, corpus directory — accepted both positionally
    ([BUDGET [SEED [CORPUS_DIR]]], the historical [fuzz_wire]
    interface CI relies on) and as [--budget]/[--seed]/[--corpus]
    flags.  Binary-specific flags ride along via [specs]. *)

type common = { cl_budget : int; cl_seed : int; cl_corpus : string }

type spec =
  | Flag of string * (unit -> unit) * string  (** name, action, doc *)
  | Int of string * (int -> unit) * string
  | Str of string * (string -> unit) * string

val parse :
  prog:string -> defaults:common -> ?specs:spec list -> string array -> common
(** Parses [argv] (element 0 ignored).  [--help] prints usage and
    exits 0; unknown flags, malformed integers and surplus positionals
    print usage to stderr and exit 2. *)

val usage : prog:string -> defaults:common -> specs:spec list -> string
