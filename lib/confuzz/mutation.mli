(** Semantic configuration mutations — the operator-error catalog.

    Each mutation is one plausible operator mistake over {!Bgp.Config}
    / {!Bgp.Policy}: a fat-fingered constant, a flipped action, a
    dropped or shadowed clause, a typo'd map reference, a
    traffic-engineering pin with the wrong community tag.  Mutations
    are concrete values (no RNG at application time), carry a
    machine-readable description, round-trip through JSON, and apply
    to a configuration either functionally ({!apply_config}) or to a
    live speaker ({!apply_speaker}) — so a minimized repro names the
    exact config edit that caused the fault.

    A mutation may produce a configuration that {!Bgp.Config.validate}
    rejects (e.g. {!Ref_dangle} references an undefined map) — that is
    the point: routers accept such configs at runtime (a dangling map
    reference silently becomes deny-all), which is itself an operator
    error worth finding.  Use [validate]/[lint] to classify a mutant as
    invalid vs valid-but-wrong. *)

type dir = Import | Export

type t =
  | Pref_const of { node : int; map : string; seq : int; value : int }
      (** overwrite the entry's [set local-pref] with [value] *)
  | Pref_swap of
      { node : int; map_a : string; seq_a : int; map_b : string; seq_b : int }
      (** swap the local-pref constants of two entries *)
  | Med_const of { node : int; map : string; seq : int; value : int option }
      (** overwrite the entry's [set med] *)
  | Action_flip of { node : int; map : string; seq : int }  (** permit <-> deny *)
  | Match_drop of { node : int; map : string; seq : int; idx : int }
      (** delete match clause [idx] (widens the conjunction) *)
  | Match_dup of { node : int; map : string; seq : int; idx : int }
      (** duplicate match clause [idx] (redundant, semantics-preserving) *)
  | Match_reorder of { node : int; map : string; seq : int }
      (** reverse the entry's match clauses *)
  | Entry_shadow of { node : int; map : string; seq : int }
      (** insert a match-anything copy of the entry's action/sets ahead
          of the whole map, deadening every later entry *)
  | Community_rewrite of
      { node : int; map : string; seq : int; community : Bgp.Community.t }
      (** rewrite the entry's community references (match + add) *)
  | Community_strip of { node : int; map : string; seq : int }
      (** delete the entry's community set clauses *)
  | Prefix_widen of
      { node : int; map : string; seq : int; idx : int; ge : int option; le : int option }
      (** rewrite the ge/le bounds of every rule in prefix-match clause
          [idx]; bounds are clamped per rule to the valid
          [[len, 32]] range *)
  | Ref_dangle of { node : int; neighbor : int; dir : dir }
      (** typo the neighbor's map reference so it dangles (deny-all) *)
  | Ref_swap of { node : int; neighbor : int }
      (** swap the neighbor's import and export map references *)
  | Originate_foreign of { node : int; prefix : Bgp.Prefix.t }
      (** network-statement typo: originate someone else's prefix *)
  | Te_pin of
      { node : int; map : string; prefix : Bgp.Prefix.t; via_asn : int; pref : int }
      (** traffic-engineering pin: prepend a high-preference entry
          pinning [prefix] via neighbor [via_asn], mis-tagged as
          peer-learned (the Gao-Rexford dispute-wheel building block) *)

val node_of : t -> int
val nodes_of : t -> int list
(** Nodes a replay must keep for the mutation to apply ([node], plus
    the owner-independent prefix carries no node). *)

val kind_name : t -> string
val describe : t -> string
(** One line, machine-readable: router, map/entry and the edit. *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result
(** Round-trip guarantee: [of_json (to_json m) = Ok m]. *)

val apply_config : t -> Bgp.Config.t -> (Bgp.Config.t, string) result
(** [Error] when the target (map, entry, clause, neighbor) does not
    exist in the configuration — the mutation is inapplicable. *)

val apply_speaker : (int -> Bgp.Speaker.t) -> t -> (unit, string) result
(** Apply to a live network: read the target speaker's config, mutate,
    [sp_set_config].  The speaker lookup may raise (pruned node); that
    propagates. *)

(** {1 Seeded generation} *)

type ctx = {
  cx_configs : (int * Bgp.Config.t) list;  (** node id, deployed config *)
  cx_peers : (int * int list) list;  (** node id -> peer-role neighbor ids *)
  cx_customers : (int * int list) list;  (** node id -> customer neighbor ids *)
  cx_prefixes : (int * Bgp.Prefix.t) list;  (** owner node, originated prefix *)
}

val ctx_of_graph : Topology.Graph.t -> ctx
(** Context for a Gao-Rexford deployment of [graph]. *)

val random : rng:Netsim.Rng.t -> ?parent:t list -> ctx -> t option
(** One seeded mutation, uniform over the instantiable catalog.
    [parent] is the mutant being extended: a new {!Te_pin} chains onto
    parent pins (same victim, adjacent peer) so dispute wheels can
    assemble under coverage guidance.  [None] when nothing in the
    catalog applies (e.g. empty configs).  Deterministic in [rng]. *)

val targeted :
  rng:Netsim.Rng.t -> ctx -> Bgp.Clause_cov.point -> t option
(** A mutation chosen to flip the uncovered coverage point: widen the
    prefix rule / rewrite the community a never-true match tests, drop
    a blocking sibling clause for a never-decided entry, narrow an
    always-true clause.  Falls back to [None] when no catalog edit can
    plausibly reach the point (the caller then falls back to
    {!random}). *)
