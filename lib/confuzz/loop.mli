(** The coverage-guided fuzzing loop.

    One campaign: seed the {!Bgp.Clause_cov} universe from the deployed
    configurations, run an unmutated baseline to establish base
    coverage and the baseline fault signatures, then spend the budget
    evolving a pool of mutation stacks.  Each round extends a pool
    member (or starts fresh) with one mutation — targeted at an
    uncovered clause when guided, drawn uniformly otherwise — runs it
    through the caller's [run_mutant], and keeps the stack iff it
    increased cumulative clause coverage or surfaced a signature not
    seen before (baseline signatures never count as findings).

    The loop owns coverage enablement: it resets, registers and enables
    the registry on entry and always disables it on exit, so a
    campaign leaves policy evaluation on the uninstrumented path. *)

type params = {
  p_budget : int;  (** mutant executions after the baseline *)
  p_seed : int;
  p_guided : bool;
      (** target uncovered clauses; [false] = uniform random mutation
          (the comparison arm of the coverage report) *)
  p_max_stack : int;  (** mutations per mutant cap *)
}

val default_params : params
(** budget 60, seed 1, guided, max stack 4. *)

type finding = {
  f_mutations : Mutation.t list;
  f_signatures : Dice.Signature.t list;
      (** signatures new to the campaign (not baseline, not earlier
          rounds) *)
}

type round = {
  r_index : int;  (** 1-based *)
  r_mutations : Mutation.t list;
  r_new_signatures : Dice.Signature.t list;
  r_covered : int;  (** cumulative covered points after this round *)
  r_kept : bool;
}

type result = {
  rs_params : params;
  rs_universe : int;  (** final universe size (baseline + discovered) *)
  rs_baseline_covered : int;
  rs_covered : int;
  rs_rounds : round list;  (** chronological *)
  rs_findings : finding list;  (** chronological *)
  rs_uncovered : Bgp.Clause_cov.point list;
}

val run :
  ?params:params ->
  ctx:Mutation.ctx ->
  run_mutant:(Mutation.t list -> Dice.Signature.t list) ->
  unit ->
  result
(** [run_mutant ms] must deploy a fresh network from the same
    topology as [ctx], apply [ms] to the live speakers, exercise it
    (converge / explore) and return every detected fault signature.
    It is called once with [[]] for the baseline.  Candidate stacks
    are pre-validated with {!Mutation.apply_config} against [ctx], so
    [run_mutant] never sees an inapplicable mutation. *)
