(** Fault localization: rank the config sites that can explain a
    confirmed fault.

    One instrumented deterministic replay of the minimized scenario —
    {!Bgp.Clause_cov} armed for clause coverage, a {!Bgp.Policy}
    trace observer harvesting every policy evaluation of a contested
    prefix — yields, per candidate site, the witness routes it decided
    and the strongest competing route at the same router.  Suspects are
    scored by how directly they sit on the fault's propagation path:
    the node the signature names, nodes any replay fault names (for a
    cascade-rooted outcome these are exactly the cascade graph's root
    vertices, reused here), mutated routers, local-pref setters for
    convergence faults.  Clause coverage is the pruning dual: an entry
    whose action point never fired decided nothing and is never a
    suspect, and externally supplied uncovered point ids (a
    [dice-confuzz-cov/1] report's) are negative evidence that excludes
    a site outright. *)

type site =
  | Policy_site of { ps_node : int; ps_map : string; ps_seq : int }
      (** one route-map entry on one router *)
  | Network_site of { ns_node : int; ns_prefix : Bgp.Prefix.t }
      (** a network statement originating a prefix the node does not
          own — the hijack-shaped suspect *)

val site_id : site -> string
(** Stable id: ["n4/FROM-PEER/e10"] / ["n9/net/192.0.0.0/24"]. *)

val compare_site : site -> site -> int
val site_to_json : site -> Telemetry.Json.t

type witness = {
  w_prefix : Bgp.Prefix.t;
  w_attrs_in : Bgp.Attr.t;  (** route as presented to the map (pre-policy) *)
  w_out : Bgp.Attr.t option;  (** what the whole map produced *)
}
(** One observed evaluation of a contested prefix that the suspect
    entry decided. *)

type suspect = {
  su_site : site;
  su_score : int;
  su_witnesses : witness list;  (** deduplicated, capped, sorted *)
  su_alt_pref : int;
      (** best effective local-pref among competing final-state RIB
          candidates at the router for the witnessed prefixes,
          excluding candidates carrying a local-pref the suspect entry
          itself sets; 100 (the default pref) when none were seen *)
  su_map : Bgp.Policy.t;
      (** the live route map containing the suspect entry (captured
          post-mutation); empty for a [Network_site] *)
}

type evidence = {
  ev_target : Dice.Signature.t;
  ev_baseline : Dice.Signature.t list;
      (** every signature of the instrumented replay — the verifier's
          "no new signatures" reference set *)
  ev_fault_nodes : int list;  (** nodes named by any replay fault *)
  ev_suspects : suspect list;  (** ranked, best first *)
}

val run :
  ?negative:string list ->
  ?max_suspects:int ->
  target:Dice.Signature.t ->
  Triage.Scenario.t ->
  (evidence, string) result
(** Replay [scenario] once with instrumentation and build the ranked
    suspect list for [target].  [negative] is a list of
    {!Bgp.Clause_cov} point ids known uncovered in this repro (e.g.
    from a fuzzing campaign's coverage report): any site whose action
    point is among them is excluded.  [max_suspects] caps the ranking
    (default 16).

    Errors: wire scenarios, replays that fail to set up, and replays
    that do not reproduce [target].  Side effects: the process-global
    coverage registry is reset and re-registered from the deployed
    configs; prior enablement is restored on exit. *)
