module J = Telemetry.Json
module M = Confuzz.Mutation

let schema_version = "dice-repair/1"

let signature_json s = J.String (Dice.Signature.to_string s)

let witness_count (su : Localize.suspect) = List.length su.Localize.su_witnesses

let suspect_json (su : Localize.suspect) =
  J.Obj
    [ ("site", Localize.site_to_json su.Localize.su_site);
      ("id", J.String (Localize.site_id su.Localize.su_site));
      ("score", J.Int su.Localize.su_score);
      ("witnesses", J.Int (witness_count su));
      ("alt_pref", J.Int su.Localize.su_alt_pref) ]

let candidate_json (c : Search.candidate) =
  J.Obj
    ([ ("site", J.String (Localize.site_id c.Search.ca_site));
       ("model", J.Obj (List.map (fun (n, v) -> (n, J.Int v)) c.Search.ca_model));
       ("patch", J.List (List.map M.to_json c.Search.ca_patch));
       ("describe", J.String (Patch.describe c.Search.ca_patch));
       ("verified", J.Bool c.Search.ca_verified);
       ( "replay",
         J.Obj
           ([ ( "signatures",
                J.List (List.map signature_json c.Search.ca_replay_sigs) ) ]
           @
           match c.Search.ca_replay_error with
           | None -> []
           | Some e -> [ ("error", J.String e) ]) ) ]
    )

let of_outcome (o : Search.outcome) =
  let status =
    match (o.Search.re_verified, o.Search.re_candidates) with
    | Some _, _ -> "verified"
    | None, _ :: _ -> "candidate"
    | None, [] -> "none-found"
  in
  let ev = o.Search.re_evidence in
  J.Obj
    ([ ("schema", J.String schema_version);
       ("status", J.String status);
       ("target", signature_json o.Search.re_target);
       ( "baseline",
         J.List (List.map signature_json ev.Localize.ev_baseline) );
       ( "fault_nodes",
         J.List (List.map (fun n -> J.Int n) ev.Localize.ev_fault_nodes) );
       ("suspects", J.List (List.map suspect_json ev.Localize.ev_suspects));
       ("candidates", J.List (List.map candidate_json o.Search.re_candidates))
     ]
    @
    match o.Search.re_verified with
    | None -> []
    | Some c ->
        [ ("patch", J.List (List.map M.to_json c.Search.ca_patch)) ])

let status r =
  match J.member "status" r with Some (J.String s) -> s | _ -> "none"

let decode_patch = function
  | J.List ms ->
      let rec go = function
        | [] -> Ok ()
        | m :: rest -> (
            match M.of_json m with Ok _ -> go rest | Error e -> Error e)
      in
      go ms
  | _ -> Error "patch is not a list"

let validate r =
  let ( let* ) = Result.bind in
  let* () =
    match J.member "schema" r with
    | Some (J.String s) when s = schema_version -> Ok ()
    | Some (J.String s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing schema tag"
  in
  let* st =
    match J.member "status" r with
    | Some (J.String ("verified" | "candidate" | "none-found" as s)) -> Ok s
    | Some (J.String s) -> Error (Printf.sprintf "unknown status %S" s)
    | _ -> Error "missing status"
  in
  let* () =
    match J.member "target" r with
    | Some (J.String s) -> (
        match Dice.Signature.of_string s with
        | Ok _ -> Ok ()
        | Error e -> Error (Printf.sprintf "bad target signature: %s" e))
    | _ -> Error "missing target"
  in
  let* () =
    match J.member "candidates" r with
    | Some (J.List cs) ->
        let rec go = function
          | [] -> Ok ()
          | c :: rest -> (
              match J.member "patch" c with
              | Some p -> (
                  match decode_patch p with
                  | Ok () -> go rest
                  | Error e -> Error (Printf.sprintf "candidate patch: %s" e))
              | None -> Error "candidate without patch")
        in
        go cs
    | Some _ -> Error "candidates is not a list"
    | None -> Error "missing candidates"
  in
  if st = "verified" then
    match J.member "patch" r with
    | Some p -> (
        match decode_patch p with
        | Ok () -> Ok ()
        | Error e -> Error (Printf.sprintf "verified patch: %s" e))
    | None -> Error "verified record without top-level patch"
  else Ok ()

let pp_summary ppf r =
  let suspects =
    match J.member "suspects" r with Some (J.List l) -> List.length l | _ -> 0
  in
  let candidates =
    match J.member "candidates" r with Some (J.List l) -> List.length l | _ -> 0
  in
  let patch_desc =
    match J.member "candidates" r with
    | Some (J.List cs) ->
        List.find_map
          (fun c ->
            match (J.member "verified" c, J.member "describe" c) with
            | Some (J.Bool true), Some (J.String d) -> Some d
            | _ -> None)
          cs
    | _ -> None
  in
  Format.fprintf ppf "status=%s suspects=%d candidates=%d" (status r) suspects
    candidates;
  match patch_desc with
  | Some d -> Format.fprintf ppf "@.  patch: %s" d
  | None -> ()
