module P = Bgp.Policy
module M = Confuzz.Mutation

let value model (b : Symbolize.binding) =
  match Concolic.Solver.model_value model b.Symbolize.b_var with
  | Some v -> v
  | None -> b.Symbolize.b_orig

(* Bindings of one const_slot shape, as (slot, orig, model value). *)
let slot_values model bindings pick =
  List.filter_map
    (fun (b : Symbolize.binding) ->
      match b.Symbolize.b_slot with
      | Symbolize.Policy_slot s -> (
          match pick s with
          | Some key -> Some (key, b.Symbolize.b_orig, value model b)
          | None -> None)
      | Symbolize.Originate -> None)
    bindings

let policy_patch ~node ~map ~seq ~bindings model =
  let changed = ref false in
  let unexpressible = ref false in
  (* local-pref: [Pref_const] rewrites every set clause in the entry to
     one value, and [apply_set] folds left so the last wins — the last
     slot's model value is the entry's effective preference. *)
  let lp = slot_values model bindings (function P.S_local_pref i -> Some i | _ -> None) in
  let pref_mut =
    match List.rev lp with
    | [] -> []
    | (_, _, last) :: _ ->
        if List.exists (fun (_, o, v) -> o <> v) lp then begin
          changed := true;
          [ M.Pref_const { node; map; seq; value = last } ]
        end
        else []
  in
  let med = slot_values model bindings (function P.S_med i -> Some i | _ -> None) in
  let med_mut =
    match List.rev med with
    | [] -> []
    | (_, _, last) :: _ ->
        if List.exists (fun (_, o, v) -> o <> v) med then begin
          changed := true;
          [ M.Med_const { node; map; seq; value = Some last } ]
        end
        else []
  in
  (* prefix bounds: [Prefix_widen] replaces the bounds of {e every}
     rule in the clause, so all rules must land on the same pair. *)
  let bounds =
    slot_values model bindings (function
      | P.S_match_ge (i, j) -> Some (i, j, `Ge)
      | P.S_match_le (i, j) -> Some (i, j, `Le)
      | _ -> None)
  in
  let clause_idxs =
    List.sort_uniq Int.compare (List.map (fun ((i, _, _), _, _) -> i) bounds)
  in
  let widen_muts =
    List.filter_map
      (fun i ->
        let here = List.filter (fun ((i', _, _), _, _) -> i' = i) bounds in
        if not (List.exists (fun (_, o, v) -> o <> v) here) then None
        else
          let side s =
            List.filter_map
              (fun ((_, _, s'), _, v) -> if s' = s then Some v else None)
              here
          in
          let agree = function
            | [] -> Some None
            | v :: rest ->
                if List.for_all (( = ) v) rest then Some (Some v) else None
          in
          match (agree (side `Ge), agree (side `Le)) with
          | Some ge, Some le ->
              changed := true;
              Some (M.Prefix_widen { node; map; seq; idx = i; ge; le })
          | _ ->
              unexpressible := true;
              None)
      clause_idxs
  in
  (* communities: [Community_rewrite] drives every match/add reference
     in the entry to one community; mixed targets are unexpressible. *)
  let comms =
    slot_values model bindings (function
      | P.S_match_community i -> Some (`M, i)
      | P.S_add_community i -> Some (`A, i)
      | _ -> None)
  in
  let comm_mut =
    if not (List.exists (fun (_, o, v) -> o <> v) comms) then []
    else
      match comms with
      | [] -> []
      | (_, _, v) :: rest when List.for_all (fun (_, _, v') -> v' = v) rest ->
          changed := true;
          [ M.Community_rewrite
              { node; map; seq; community = Bgp.Community.of_int32_exn v } ]
      | _ ->
          unexpressible := true;
          []
  in
  let action =
    slot_values model bindings (function P.S_action -> Some () | _ -> None)
  in
  let action_mut =
    if List.exists (fun (_, o, v) -> o <> v) action then begin
      changed := true;
      [ M.Action_flip { node; map; seq } ]
    end
    else []
  in
  if !unexpressible || not !changed then None
  else Some (pref_mut @ med_mut @ widen_muts @ comm_mut @ action_mut)

let of_model ~site ~bindings model =
  match site with
  | Localize.Network_site { ns_node; ns_prefix } -> (
      match bindings with
      | [ ({ Symbolize.b_slot = Symbolize.Originate; _ } as b) ] ->
          if value model b = 0 then
            Some [ M.Network_drop { node = ns_node; prefix = ns_prefix } ]
          else None
      | _ -> None)
  | Localize.Policy_site { ps_node; ps_map; ps_seq } ->
      policy_patch ~node:ps_node ~map:ps_map ~seq:ps_seq ~bindings model

let describe muts = String.concat "; " (List.map M.describe muts)
