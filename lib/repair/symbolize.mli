(** Selective symbolization of a suspect site.

    Lifts the suspect's concrete constants into {!Concolic.Expr}
    variables (through the {!Bgp.Policy.symbolize} hook for policy
    entries; a single 0/1 originate bit for network statements) and
    compiles the fault's {e detection predicate} over the localized
    witnesses: a formula that is true exactly when, under a candidate
    assignment to the constants, the suspect still produces the
    behavior the checker flagged.  The search stage then asks
    {!Concolic.Solver.solve_negated} for an assignment that falsifies
    it.

    The witness evaluations run in a {!Concolic.Ctx}: entries ahead of
    the suspect are branched on concretely (they are not being
    repaired), the suspect itself contributes a pure symbolic formula —
    branching on it would pin the path in the direction the buggy
    config took and hide every repair that flips a match. *)

type slot_ref =
  | Policy_slot of Bgp.Policy.const_slot
  | Originate  (** a network statement's keep/drop bit (1 = originate) *)

type binding = {
  b_var : Concolic.Expr.var;
  b_slot : slot_ref;
  b_orig : int;  (** the deployed config's concrete value *)
}

type t = {
  sy_suspect : Localize.suspect;
  sy_detection : Concolic.Expr.t;
      (** true iff the fault's detection predicate still fires *)
  sy_constraints : Concolic.Expr.t list;
      (** side conditions a well-formed assignment must satisfy
          (ge <= le, recorded path conditions) *)
  sy_bindings : binding list;
      (** in slot order — also the search's preferred repair order *)
}

val var_name : site:Localize.site -> string -> string
(** ["rep.<site-id>.<slot-id>"] — interned, so repeated repairs of the
    same entry reuse the same solver variables. *)

val suspect :
  target:Dice.Signature.t -> Localize.suspect -> t option
(** [None] when the suspect cannot explain the fault: no symbolizable
    constants, no witness reaches the entry, or the detection predicate
    does not evaluate true under the original values (the reproduce
    gate — a suspect whose symbolic model doesn't reproduce the fault
    would let the solver "fix" it by changing nothing). *)
