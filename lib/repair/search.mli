(** The repair driver: localize → symbolize → solve → verify.

    For each ranked suspect, asks {!Concolic.Solver.solve_negated} for
    an assignment falsifying the fault's detection predicate —
    preferring minimal repairs by first pinning all but one constant to
    its deployed value, one constant at a time in the symbolizer's
    gentlest-first order, before freeing everything — concretizes the
    model into a {!Patch} and accepts it only when a fresh deterministic
    replay of the patched scenario confirms: no setup error, the target
    signature gone, no signature that the instrumented baseline replay
    did not already produce (so convergence faults introduced by the
    patch reject it). *)

type candidate = {
  ca_site : Localize.site;
  ca_model : (string * int) list;
      (** changed constants only: variable name -> repaired value *)
  ca_patch : Confuzz.Mutation.t list;
  ca_verified : bool;
  ca_replay_sigs : Dice.Signature.t list;  (** the patched replay's signatures *)
  ca_replay_error : string option;
}

type outcome = {
  re_target : Dice.Signature.t;
  re_evidence : Localize.evidence;
  re_candidates : candidate list;  (** in discovery order *)
  re_verified : candidate option;  (** first verified candidate *)
}

val patched_scenario :
  Triage.Scenario.t -> Confuzz.Mutation.t list -> Triage.Scenario.t
(** The repair appended to [dp_confuzz] — how a patch replays and how
    it is stored. *)

val run :
  ?negative:string list ->
  ?all:bool ->
  ?max_candidates:int ->
  target:Dice.Signature.t ->
  Triage.Scenario.t ->
  (outcome, string) result
(** [all] keeps searching after the first verified candidate (default
    stops).  [max_candidates] caps solver-produced candidates across
    all suspects (default 8).  [negative] is forwarded to
    {!Localize.run}.  Errors: unrepairable fault classes
    ([Programming_error], [Cascade]), wire scenarios, and localization
    failures. *)
