(** Concretize a solver model into a config patch.

    A patch is a list of {!Confuzz.Mutation} values — the same
    vocabulary the fuzzer perturbs configs with, so a repair replays by
    appending to the scenario's mutation list and round-trips through
    the corpus unchanged.

    [None] when the model changes nothing (the solver kept every
    constant at its deployed value) or when a change is not expressible
    in the mutation catalog (e.g. two community constants in one entry
    driven to different values, which {!Confuzz.Mutation.Community_rewrite}
    cannot encode).  The verifier, not this translation, is the ground
    truth: an expressible-but-wrong patch is rejected by replay. *)

val of_model :
  site:Localize.site ->
  bindings:Symbolize.binding list ->
  Concolic.Solver.model ->
  Confuzz.Mutation.t list option

val describe : Confuzz.Mutation.t list -> string
(** Semicolon-joined one-liners, for logs and reports. *)
