module P = Bgp.Policy
module E = Concolic.Expr

type slot_ref = Policy_slot of P.const_slot | Originate

type binding = { b_var : E.var; b_slot : slot_ref; b_orig : int }

type t = {
  sy_suspect : Localize.suspect;
  sy_detection : E.t;
  sy_constraints : E.t list;
  sy_bindings : binding list;
}

let var_name ~site slot = Printf.sprintf "rep.%s.%s" (Localize.site_id site) slot

let slot_domain = function
  | P.S_action -> (0, 1)
  | P.S_local_pref _ -> (0, 1000)
  | P.S_med _ -> (0, 65535)
  | P.S_match_ge _ | P.S_match_le _ -> (0, 32)
  | P.S_match_community _ | P.S_add_community _ -> (0, 0xFFFFFFFF)

(* The search wants to try the gentlest knob first: preference values,
   then MED, then match bounds and communities, and only then the
   permit/deny bit (an action flip is the bluntest possible repair). *)
let slot_rank = function
  | P.S_local_pref _ -> 0
  | P.S_med _ -> 1
  | P.S_match_ge _ | P.S_match_le _ -> 2
  | P.S_match_community _ -> 3
  | P.S_add_community _ -> 4
  | P.S_action -> 5

let bool_e b = E.Const (if b then 1 else 0)
let conj = function [] -> E.tru | e :: es -> List.fold_left (fun a b -> E.And (a, b)) e es
let disj = function [] -> E.fls | e :: es -> List.fold_left (fun a b -> E.Or (a, b)) e es

let lookup bindings =
  fun (v : E.var) ->
    match
      List.find_opt (fun b -> b.b_var.E.v_id = v.E.v_id) bindings
    with
    | Some b -> b.b_orig
    | None -> v.E.v_lo

(* Split the map at the first entry carrying the suspect seq — the one
   [Policy.apply] reaches first and the one [Policy.symbolize]
   rebuilds. *)
let split_at_seq seq map =
  let rec go before = function
    | [] -> None
    | (e : P.entry) :: rest ->
        if e.P.seq = seq then Some (List.rev before, e, rest)
        else go (e :: before) rest
  in
  go [] map

let field_var ctx ~site slot orig =
  let lo, hi = slot_domain slot in
  let cv =
    Concolic.Ctx.field ctx (var_name ~site (P.slot_id slot)) ~lo ~hi
      ~default:orig
  in
  match cv.Concolic.Cval.sym with E.Var v -> v | _ -> assert false

let var_of bindings slot =
  List.find_map
    (fun b ->
      match b.b_slot with
      | Policy_slot s when s = slot -> Some b.b_var
      | _ -> None)
    bindings

(* Symbolic truth of one match clause of the suspect entry against a
   witness route.  Clauses without a symbolized constant evaluate
   concretely. *)
let sym_match bindings (w : Localize.witness) i clause =
  match clause with
  | P.Match_prefix rules ->
      let qlen = Bgp.Prefix.len w.Localize.w_prefix in
      disj
        (List.mapi
           (fun j (r : P.prefix_rule) ->
             if r.P.ge = None && r.P.le = None then
               bool_e (P.prefix_rule_matches r w.Localize.w_prefix)
             else
               let base = Bgp.Prefix.len r.P.rule_prefix in
               let sub = Bgp.Prefix.subsumes r.P.rule_prefix w.Localize.w_prefix in
               let lo_e =
                 match (r.P.ge, var_of bindings (P.S_match_ge (i, j))) with
                 | Some _, Some v -> E.Var v
                 | _ -> E.Const base
               in
               let hi_e =
                 match (r.P.le, var_of bindings (P.S_match_le (i, j))) with
                 | Some _, Some v -> E.Var v
                 | _ -> if r.P.ge <> None then E.Const 32 else E.Const base
               in
               conj
                 [ bool_e sub;
                   E.Le (lo_e, E.Const qlen);
                   E.Le (E.Const qlen, hi_e) ])
           rules)
  | P.Match_community _ -> (
      match var_of bindings (P.S_match_community i) with
      | None -> bool_e (P.matches_route clause w.Localize.w_prefix w.Localize.w_attrs_in)
      | Some v ->
          disj
            (List.map
               (fun c -> E.Eq (E.Var v, E.Const (Bgp.Community.to_int c)))
               w.Localize.w_attrs_in.Bgp.Attr.communities))
  | P.Match_as_path _ | P.Match_origin _ | P.Match_next_hop _ ->
      bool_e (P.matches_route clause w.Localize.w_prefix w.Localize.w_attrs_in)

let policy_site ~target (su : Localize.suspect) site seq =
  match P.symbolize ~seq su.Localize.su_map with
  | None -> None
  | Some (slots, _rebuild) -> (
      match split_at_seq seq su.Localize.su_map with
      | None -> None
      | Some (before, entry, after) ->
          let slots =
            List.stable_sort
              (fun (a, _) (b, _) -> Int.compare (slot_rank a) (slot_rank b))
              slots
          in
          let ctx = Concolic.Ctx.create [] in
          let bindings =
            List.map
              (fun (slot, orig) ->
                { b_var = field_var ctx ~site slot orig;
                  b_slot = Policy_slot slot;
                  b_orig = orig })
              slots
          in
          let conflict =
            target.Dice.Signature.sg_class = Dice.Fault.Policy_conflict
          in
          let alt = su.Localize.su_alt_pref in
          let action_var =
            match var_of bindings P.S_action with
            | Some v -> v
            | None -> assert false (* symbolize always emits the action *)
          in
          let lp_var =
            (* [apply_set] folds left, so the last Set_local_pref wins. *)
            List.fold_left
              (fun acc b ->
                match b.b_slot with
                | Policy_slot (P.S_local_pref _) -> Some b.b_var
                | _ -> acc)
              None bindings
          in
          let witness_detected (w : Localize.witness) =
            (* A witness an earlier entry already decides never reaches
               the suspect; record the concrete branch and move on. *)
            let reaches =
              List.for_all
                (fun (e : P.entry) ->
                  let decided =
                    List.for_all
                      (fun m ->
                        P.matches_route m w.Localize.w_prefix
                          w.Localize.w_attrs_in)
                      e.P.matches
                  in
                  ignore
                    (Concolic.Ctx.branch ctx
                       (Concolic.Cval.concrete (if decided then 0 else 1)));
                  not decided)
                before
            in
            if not reaches then None
            else
              let m =
                conj
                  (List.mapi (fun i c -> sym_match bindings w i c) entry.P.matches)
              in
              let a = E.Eq (E.Var action_var, E.Const 1) in
              let pref_out =
                match lp_var with
                | Some v -> E.Var v
                | None ->
                    E.Const
                      (Bgp.Attr.effective_local_pref
                         (match w.Localize.w_out with
                         | Some o -> o
                         | None -> w.Localize.w_attrs_in))
              in
              let d_here =
                if conflict then E.Lt (E.Const alt, pref_out) else E.tru
              in
              let d_later =
                match P.apply after w.Localize.w_prefix w.Localize.w_attrs_in with
                | None -> E.fls
                | Some out ->
                    if conflict then
                      bool_e (Bgp.Attr.effective_local_pref out > alt)
                    else E.tru
              in
              Some
                (E.Or
                   ( E.And (m, E.And (a, d_here)),
                     E.And (E.Not m, d_later) ))
          in
          let env = lookup bindings in
          (* Reproduce gate: only witnesses whose symbolic detection is
             true under the deployed values constrain the solver — a
             non-reproducing witness would let it "repair" the fault by
             changing nothing. *)
          let detections =
            List.filter_map
              (fun w ->
                match witness_detected w with
                | Some dw when E.eval env dw <> 0 -> Some dw
                | _ -> None)
              su.Localize.su_witnesses
          in
          if detections = [] then None
          else
            let bound_pairs =
              List.filter_map
                (fun (slot, _) ->
                  match slot with
                  | P.S_match_ge (i, j) -> (
                      match var_of bindings (P.S_match_le (i, j)) with
                      | Some le -> (
                          match var_of bindings (P.S_match_ge (i, j)) with
                          | Some ge -> Some (E.Le (E.Var ge, E.Var le))
                          | None -> None)
                      | None -> None)
                  | _ -> None)
                slots
            in
            let path_conds =
              List.map
                (fun (e, dir) -> if dir then e else E.negate e)
                (Concolic.Ctx.path ctx)
            in
            Some
              { sy_suspect = su;
                sy_detection = disj detections;
                sy_constraints = bound_pairs @ path_conds;
                sy_bindings = bindings })

let network_site (su : Localize.suspect) site =
  let ctx = Concolic.Ctx.create [] in
  let cv = Concolic.Ctx.field ctx (var_name ~site "originate") ~lo:0 ~hi:1 ~default:1 in
  let v = match cv.Concolic.Cval.sym with E.Var v -> v | _ -> assert false in
  Some
    { sy_suspect = su;
      sy_detection = E.Eq (E.Var v, E.Const 1);
      sy_constraints = [];
      sy_bindings = [ { b_var = v; b_slot = Originate; b_orig = 1 } ] }

let suspect ~target (su : Localize.suspect) =
  match su.Localize.su_site with
  | Localize.Network_site _ -> network_site su su.Localize.su_site
  | Localize.Policy_site { ps_seq; _ } ->
      policy_site ~target su su.Localize.su_site ps_seq
