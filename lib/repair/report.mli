(** The [dice-repair/1] record — a repair attempt's durable result.

    Stored verbatim inside the corpus entry it repairs (the entry's
    optional ["repair"] member), uploaded as a CI artifact, and
    validated by [telemetry_check --repair].  Contains {e no}
    timestamps and no host-dependent data: running the same repair
    twice over the same entry must produce byte-identical records. *)

val schema_version : string
(** ["dice-repair/1"]. *)

val of_outcome : Search.outcome -> Telemetry.Json.t
(** [status] is ["verified"] when a candidate survived replay,
    ["candidate"] when the solver produced patches but none verified,
    ["none-found"] otherwise; the top-level ["patch"] member (the
    mutation list a replayer appends to [dp_confuzz]) is present only
    when verified. *)

val status : Telemetry.Json.t -> string
(** The record's ["status"], or ["none"] when absent/malformed. *)

val validate : Telemetry.Json.t -> (unit, string) result
(** Structural check: schema tag, status enum, target parses as a
    signature, candidates carry decodable patches, a ["verified"]
    record has a top-level patch whose mutations decode. *)

val pp_summary : Format.formatter -> Telemetry.Json.t -> unit
(** One paragraph for the CLI: status, suspect count, the winning
    patch's description. *)
