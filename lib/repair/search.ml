module E = Concolic.Expr
module Solver = Concolic.Solver
module Scenario = Triage.Scenario

type candidate = {
  ca_site : Localize.site;
  ca_model : (string * int) list;
  ca_patch : Confuzz.Mutation.t list;
  ca_verified : bool;
  ca_replay_sigs : Dice.Signature.t list;
  ca_replay_error : string option;
}

type outcome = {
  re_target : Dice.Signature.t;
  re_evidence : Localize.evidence;
  re_candidates : candidate list;
  re_verified : candidate option;
}

let default_max_candidates = 8

let patched_scenario scenario patch =
  match scenario with
  | Scenario.Wire _ -> scenario
  | Scenario.Deploy d ->
      Scenario.Deploy { d with Scenario.dp_confuzz = d.Scenario.dp_confuzz @ patch }

(* Changed constants only — the report's human-facing model. *)
let changed_assignment (sy : Symbolize.t) model =
  List.filter_map
    (fun (b : Symbolize.binding) ->
      match Solver.model_value model b.Symbolize.b_var with
      | Some v when v <> b.Symbolize.b_orig ->
          Some (b.Symbolize.b_var.E.v_name, v)
      | _ -> None)
    sy.Symbolize.sy_bindings

let verify ~target ~baseline scenario patch =
  let o = Scenario.run (patched_scenario scenario patch) in
  let fresh =
    List.filter
      (fun s -> not (List.exists (Dice.Signature.equal s) baseline))
      o.Scenario.o_signatures
  in
  let ok =
    o.Scenario.o_error = None
    && (not (List.exists (Dice.Signature.equal target) o.Scenario.o_signatures))
    && fresh = []
  in
  (ok, o.Scenario.o_signatures, o.Scenario.o_error)

(* Solver queries for one symbolized suspect, minimal-change first:
   each query frees exactly one constant and pins the rest, in binding
   (gentlest-first) order; the all-free query is the last resort. *)
let queries (sy : Symbolize.t) =
  let pin_others free =
    List.filter_map
      (fun (b : Symbolize.binding) ->
        if b.Symbolize.b_var.E.v_id = free.Symbolize.b_var.E.v_id then None
        else
          Some (E.Eq (E.Var b.Symbolize.b_var, E.Const b.Symbolize.b_orig)))
      sy.Symbolize.sy_bindings
  in
  let single =
    match sy.Symbolize.sy_bindings with
    | [ _ ] -> [] (* one constant: the all-free query is already minimal *)
    | bs -> List.map (fun b -> pin_others b @ sy.Symbolize.sy_constraints) bs
  in
  single @ [ sy.Symbolize.sy_constraints ]

let repairable = function
  | Dice.Fault.Operator_mistake | Dice.Fault.Policy_conflict -> true
  | Dice.Fault.Programming_error | Dice.Fault.Cascade -> false

let run ?negative ?(all = false) ?(max_candidates = default_max_candidates)
    ~target scenario =
  if not (repairable target.Dice.Signature.sg_class) then
    Error
      (Printf.sprintf "fault class %s is not config-repairable"
         (Dice.Fault.class_to_string target.Dice.Signature.sg_class))
  else
    match Localize.run ?negative ~target scenario with
    | Error e -> Error e
    | Ok ev ->
        let baseline = ev.Localize.ev_baseline in
        let candidates = ref [] in
        let verified = ref None in
        let seen_patches = ref [] in
        let try_suspect su =
          match Symbolize.suspect ~target su with
          | None -> ()
          | Some sy ->
              List.iter
                (fun constraints ->
                  if
                    List.length !candidates < max_candidates
                    && ((not all) && !verified = None || all)
                  then
                    match
                      Solver.solve_negated
                        ~detection:sy.Symbolize.sy_detection constraints
                    with
                    | Solver.Unsat | Solver.Unknown -> ()
                    | Solver.Sat model -> (
                        match
                          Patch.of_model ~site:su.Localize.su_site
                            ~bindings:sy.Symbolize.sy_bindings model
                        with
                        | None -> ()
                        | Some patch ->
                            let key = Patch.describe patch in
                            if not (List.mem key !seen_patches) then begin
                              seen_patches := key :: !seen_patches;
                              let ok, sigs, err =
                                verify ~target ~baseline scenario patch
                              in
                              let c =
                                { ca_site = su.Localize.su_site;
                                  ca_model = changed_assignment sy model;
                                  ca_patch = patch;
                                  ca_verified = ok;
                                  ca_replay_sigs = sigs;
                                  ca_replay_error = err }
                              in
                              candidates := c :: !candidates;
                              if ok && !verified = None then verified := Some c
                            end))
                (queries sy)
        in
        List.iter
          (fun su ->
            if (all || !verified = None)
               && List.length !candidates < max_candidates
            then try_suspect su)
          ev.Localize.ev_suspects;
        Ok
          { re_target = target;
            re_evidence = ev;
            re_candidates = List.rev !candidates;
            re_verified = !verified }
