module J = Telemetry.Json
module P = Bgp.Policy
module C = Bgp.Config
module Scenario = Triage.Scenario

type site =
  | Policy_site of { ps_node : int; ps_map : string; ps_seq : int }
  | Network_site of { ns_node : int; ns_prefix : Bgp.Prefix.t }

let site_id = function
  | Policy_site s -> Printf.sprintf "n%d/%s/e%d" s.ps_node s.ps_map s.ps_seq
  | Network_site s ->
      Printf.sprintf "n%d/net/%s" s.ns_node (Bgp.Prefix.to_string s.ns_prefix)

let compare_site a b = String.compare (site_id a) (site_id b)

let site_to_json = function
  | Policy_site s ->
      J.Obj
        [ ("kind", J.String "policy");
          ("node", J.Int s.ps_node);
          ("map", J.String s.ps_map);
          ("seq", J.Int s.ps_seq) ]
  | Network_site s ->
      J.Obj
        [ ("kind", J.String "network");
          ("node", J.Int s.ns_node);
          ("prefix", J.String (Bgp.Prefix.to_string s.ns_prefix)) ]

type witness = {
  w_prefix : Bgp.Prefix.t;
  w_attrs_in : Bgp.Attr.t;
  w_out : Bgp.Attr.t option;
}

type suspect = {
  su_site : site;
  su_score : int;
  su_witnesses : witness list;
  su_alt_pref : int;
  su_map : P.t;
}

type evidence = {
  ev_target : Dice.Signature.t;
  ev_baseline : Dice.Signature.t list;
  ev_fault_nodes : int list;
  ev_suspects : suspect list;
}

(* The routes a fault is {e about}: inject victims and mutation targets
   named by the scenario itself, plus anything the live configs
   originate without owning it (covers hijacks applied by injection,
   which edit networks in place). *)
let scenario_prefixes (d : Scenario.deploy) =
  let inject =
    match d.Scenario.dp_inject with
    | Some (Dice.Inject.Prefix_hijack { victim; _ })
    | Some (Dice.Inject.Policy_dispute { victim; _ }) ->
        [ Topology.Gao_rexford.prefix_of_node victim ]
    | Some _ | None -> []
  in
  let mutated =
    List.filter_map
      (function
        | Confuzz.Mutation.Te_pin { prefix; _ }
        | Confuzz.Mutation.Originate_foreign { prefix; _ }
        | Confuzz.Mutation.Network_drop { prefix; _ } ->
            Some prefix
        | _ -> None)
      d.Scenario.dp_confuzz
  in
  inject @ mutated

let foreign_networks gt configs =
  List.concat_map
    (fun (node, cfg) ->
      List.filter_map
        (fun p ->
          if gt.Dice.Checks.owner_of p = Some cfg.C.asn then None
          else Some (node, p))
        cfg.C.networks)
    configs

(* First entry in list order whose matches all hold — exactly the one
   {!Bgp.Policy.apply} lets decide. *)
let deciding_entry map prefix attrs =
  List.find_opt
    (fun (e : P.entry) ->
      List.for_all (fun m -> P.matches_route m prefix attrs) e.P.matches)
    map

let prefs_set_by (e : P.entry) =
  List.filter_map
    (function P.Set_local_pref v -> Some v | _ -> None)
    e.P.sets

let default_max_suspects = 16

let compare_witness a b =
  let c = String.compare (Bgp.Prefix.to_string a.w_prefix) (Bgp.Prefix.to_string b.w_prefix) in
  if c <> 0 then c
  else
    let c = Bgp.Attr.compare a.w_attrs_in b.w_attrs_in in
    if c <> 0 then c
    else Option.compare Bgp.Attr.compare a.w_out b.w_out

let dedupe_witnesses ws =
  let sorted = List.sort compare_witness ws in
  let rec uniq = function
    | a :: (b :: _ as rest) ->
        if compare_witness a b = 0 then uniq rest else a :: uniq rest
    | l -> l
  in
  List.filteri (fun i _ -> i < 8) (uniq sorted)

let take n l = List.filteri (fun i _ -> i < n) l

let run ?(negative = []) ?(max_suspects = default_max_suspects) ~target
    scenario =
  match scenario with
  | Scenario.Wire _ -> Error "wire scenarios have no configuration to repair"
  | Scenario.Deploy d ->
      let graph = Scenario.graph_of d in
      let gt = Dice.Checks.ground_truth_of_graph graph in
      let contested = ref [] in
      let configs = ref [] in
      (* node -> (prefix, candidate effective local-prefs) *)
      let rib_cands : (int * (Bgp.Prefix.t * int list) list) list ref =
        ref []
      in
      let lock = Mutex.create () in
      let witnesses : ((int * string) * witness) list ref = ref [] in
      let on_deployed (build : Topology.Build.t) =
        let cfgs =
          List.map
            (fun (node, sp) ->
              let cfg = sp.Bgp.Speaker.sp_config () in
              Bgp.Clause_cov.register_config ~node cfg;
              (node, cfg))
            build.Topology.Build.speakers
        in
        configs := cfgs;
        let ps =
          scenario_prefixes d @ List.map snd (foreign_networks gt cfgs)
        in
        contested :=
          List.sort_uniq
            (fun a b ->
              String.compare (Bgp.Prefix.to_string a) (Bgp.Prefix.to_string b))
            ps
      in
      let on_finished (build : Topology.Build.t) _faults =
        rib_cands :=
          List.map
            (fun (node, sp) ->
              let rib = sp.Bgp.Speaker.sp_rib () in
              ( node,
                List.map
                  (fun p ->
                    let prefs =
                      List.map
                        (fun (r : Bgp.Rib.route) ->
                          Bgp.Attr.effective_local_pref r.Bgp.Rib.attrs)
                        (Bgp.Rib.candidates p rib)
                    in
                    (p, prefs))
                  !contested ))
            build.Topology.Build.speakers
      in
      let tracer (s : P.cov_site) prefix attrs_in out =
        if List.exists (Bgp.Prefix.equal prefix) !contested then begin
          Mutex.lock lock;
          witnesses :=
            ( (s.P.cs_node, s.P.cs_map),
              { w_prefix = prefix; w_attrs_in = attrs_in; w_out = out } )
            :: !witnesses;
          Mutex.unlock lock
        end
      in
      let was_enabled = Bgp.Clause_cov.enabled () in
      Bgp.Clause_cov.reset ();
      Bgp.Clause_cov.enable ();
      P.set_trace_observer (Some tracer);
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            P.set_trace_observer None;
            if not was_enabled then Bgp.Clause_cov.disable ())
          (fun () -> Scenario.run_observed ~on_deployed ~on_finished scenario)
      in
      let fault_nodes =
        List.sort_uniq Int.compare
          (List.map (fun f -> f.Dice.Fault.f_node) outcome.Scenario.o_faults)
      in
      let reproduced =
        List.exists (Dice.Signature.equal target) outcome.Scenario.o_signatures
      in
      (match outcome.Scenario.o_error with
      | Some e -> Error (Printf.sprintf "replay failed: %s" e)
      | None when not reproduced ->
          Error "replay did not reproduce the target signature"
      | None ->
          let mutated_nodes =
            List.map Confuzz.Mutation.node_of d.Scenario.dp_confuzz
          in
          let alt_pref_of node prefixes excluded =
            let prefs =
              match List.assoc_opt node !rib_cands with
              | None -> []
              | Some per_prefix ->
                  List.concat_map
                    (fun (p, prefs) ->
                      if List.exists (Bgp.Prefix.equal p) prefixes then prefs
                      else [])
                    per_prefix
            in
            let prefs = List.filter (fun v -> not (List.mem v excluded)) prefs in
            List.fold_left max 100 prefs
          in
          (* Policy suspects: group witnesses by the entry that decided
             them; a fallthrough (no deciding entry) has no config text
             to symbolize and is dropped. *)
          let by_map = Hashtbl.create 16 in
          List.iter
            (fun (key, w) ->
              let l =
                match Hashtbl.find_opt by_map key with Some l -> l | None -> []
              in
              Hashtbl.replace by_map key (w :: l))
            !witnesses;
          let policy_suspects =
            Hashtbl.fold
              (fun (node, map_name) ws acc ->
                match
                  Option.bind
                    (List.assoc_opt node !configs)
                    (fun cfg -> C.find_route_map cfg map_name)
                with
                | None -> acc
                | Some map ->
                    let by_seq = Hashtbl.create 4 in
                    List.iter
                      (fun w ->
                        match deciding_entry map w.w_prefix w.w_attrs_in with
                        | None -> ()
                        | Some e ->
                            let l =
                              match Hashtbl.find_opt by_seq e.P.seq with
                              | Some l -> l
                              | None -> []
                            in
                            Hashtbl.replace by_seq e.P.seq (w :: l))
                      ws;
                    Hashtbl.fold
                      (fun seq ws acc ->
                        let action_id =
                          Printf.sprintf "n%d/%s/e%d/act" node map_name seq
                        in
                        if List.mem action_id negative then acc
                        else
                          let entry =
                            List.find
                              (fun (e : P.entry) -> e.P.seq = seq)
                              map
                          in
                          let ws = dedupe_witnesses ws in
                          let prefixes =
                            List.sort_uniq Bgp.Prefix.compare
                              (List.map (fun w -> w.w_prefix) ws)
                          in
                          let sets_pref = prefs_set_by entry <> [] in
                          let score =
                            (if node = target.Dice.Signature.sg_node then 100
                             else 0)
                            + (if List.mem node fault_nodes then 50 else 0)
                            + (if List.mem node mutated_nodes then 40 else 0)
                            + (if
                                 sets_pref
                                 && target.Dice.Signature.sg_class
                                    = Dice.Fault.Policy_conflict
                               then 30
                               else 0)
                            + (10 * min 5 (List.length ws))
                          in
                          { su_site =
                              Policy_site
                                { ps_node = node; ps_map = map_name;
                                  ps_seq = seq };
                            su_score = score;
                            su_witnesses = ws;
                            su_alt_pref =
                              alt_pref_of node prefixes (prefs_set_by entry);
                            su_map = map }
                          :: acc)
                      by_seq acc)
              by_map []
          in
          let network_suspects =
            List.map
              (fun (node, p) ->
                { su_site = Network_site { ns_node = node; ns_prefix = p };
                  su_score =
                    200
                    + (if node = target.Dice.Signature.sg_node then 100 else 0)
                    + (if List.mem node fault_nodes then 50 else 0);
                  su_witnesses = [];
                  su_alt_pref = 100;
                  su_map = [] })
              (foreign_networks gt !configs)
          in
          let suspects =
            List.sort
              (fun a b ->
                let c = Int.compare b.su_score a.su_score in
                if c <> 0 then c else compare_site a.su_site b.su_site)
              (network_suspects @ policy_suspects)
          in
          Ok
            { ev_target = target;
              ev_baseline = outcome.Scenario.o_signatures;
              ev_fault_nodes = fault_nodes;
              ev_suspects = take max_suspects suspects })
