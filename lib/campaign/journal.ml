module J = Telemetry.Json

type status = Passed | Failed of string | Hung

let status_to_string = function
  | Passed -> "ok"
  | Failed _ -> "error"
  | Hung -> "hung"

type record =
  | Campaign of { name : string; spec_digest : string; jobs : int }
  | Scheduled of { job : int; template : string; seed : int }
  | Started of { job : int; attempt : int }
  | Verdict of {
      job : int;
      attempt : int;
      status : status;
      signatures : string list;
      cascades : string list;
      final : bool;
      wall_s : float;
    }
  | Quarantined of { template : string; step : int; strikes : int; until : int }
  | Unquarantined of { template : string; step : int }
  | Filed of { job : int; signature : string; file : string }
  | Checkpoint of { completed : int; filed : int; digest : string }
  | End of { outcome : string }

let strings l = J.List (List.map (fun s -> J.String s) l)

let to_json = function
  | Campaign { name; spec_digest; jobs } ->
      J.Obj
        [ ("rec", J.String "campaign"); ("name", J.String name);
          ("spec", J.String spec_digest); ("jobs", J.Int jobs) ]
  | Scheduled { job; template; seed } ->
      J.Obj
        [ ("rec", J.String "scheduled"); ("job", J.Int job);
          ("template", J.String template); ("seed", J.Int seed) ]
  | Started { job; attempt } ->
      J.Obj
        [ ("rec", J.String "started"); ("job", J.Int job);
          ("attempt", J.Int attempt) ]
  | Verdict { job; attempt; status; signatures; cascades; final; wall_s } ->
      let error =
        match status with Failed e -> [ ("error", J.String e) ] | _ -> []
      in
      J.Obj
        ([ ("rec", J.String "verdict"); ("job", J.Int job);
           ("attempt", J.Int attempt);
           ("status", J.String (status_to_string status)) ]
        @ error
        @ [ ("signatures", strings signatures); ("cascades", strings cascades);
            ("final", J.Bool final); ("wall_s", J.Float wall_s) ])
  | Quarantined { template; step; strikes; until } ->
      J.Obj
        [ ("rec", J.String "quarantined"); ("template", J.String template);
          ("step", J.Int step); ("strikes", J.Int strikes);
          ("until", J.Int until) ]
  | Unquarantined { template; step } ->
      J.Obj
        [ ("rec", J.String "unquarantined"); ("template", J.String template);
          ("step", J.Int step) ]
  | Filed { job; signature; file } ->
      J.Obj
        [ ("rec", J.String "filed"); ("job", J.Int job);
          ("signature", J.String signature); ("file", J.String file) ]
  | Checkpoint { completed; filed; digest } ->
      J.Obj
        [ ("rec", J.String "checkpoint"); ("completed", J.Int completed);
          ("filed", J.Int filed); ("digest", J.String digest) ]
  | End { outcome } ->
      J.Obj [ ("rec", J.String "end"); ("outcome", J.String outcome) ]

let ( let* ) = Result.bind

let str name json =
  match J.member name json with
  | Some (J.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string %S" name)

let int name json =
  match J.member name json with
  | Some (J.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-integer %S" name)

let flt name json =
  match J.member name json with
  | Some (J.Float f) -> Ok f
  | Some (J.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing or non-number %S" name)

let str_list name json =
  match J.member name json with
  | Some (J.List l) ->
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match s with
          | J.String s -> Ok (s :: acc)
          | _ -> Error (Printf.sprintf "non-string element in %S" name))
        (Ok []) l
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "missing or non-list %S" name)

let of_json json =
  let* kind = str "rec" json in
  match kind with
  | "campaign" ->
      let* name = str "name" json in
      let* spec_digest = str "spec" json in
      let* jobs = int "jobs" json in
      Ok (Campaign { name; spec_digest; jobs })
  | "scheduled" ->
      let* job = int "job" json in
      let* template = str "template" json in
      let* seed = int "seed" json in
      Ok (Scheduled { job; template; seed })
  | "started" ->
      let* job = int "job" json in
      let* attempt = int "attempt" json in
      Ok (Started { job; attempt })
  | "verdict" ->
      let* job = int "job" json in
      let* attempt = int "attempt" json in
      let* status =
        let* s = str "status" json in
        match s with
        | "ok" -> Ok Passed
        | "hung" -> Ok Hung
        | "error" ->
            let e =
              match J.member "error" json with
              | Some (J.String e) -> e
              | _ -> "unknown error"
            in
            Ok (Failed e)
        | s -> Error (Printf.sprintf "unknown verdict status %S" s)
      in
      let* signatures = str_list "signatures" json in
      let* cascades = str_list "cascades" json in
      let* final =
        match J.member "final" json with
        | Some (J.Bool b) -> Ok b
        | _ -> Error "missing or non-bool \"final\""
      in
      let* wall_s = flt "wall_s" json in
      Ok (Verdict { job; attempt; status; signatures; cascades; final; wall_s })
  | "quarantined" ->
      let* template = str "template" json in
      let* step = int "step" json in
      let* strikes = int "strikes" json in
      let* until = int "until" json in
      Ok (Quarantined { template; step; strikes; until })
  | "unquarantined" ->
      let* template = str "template" json in
      let* step = int "step" json in
      Ok (Unquarantined { template; step })
  | "filed" ->
      let* job = int "job" json in
      let* signature = str "signature" json in
      let* file = str "file" json in
      Ok (Filed { job; signature; file })
  | "checkpoint" ->
      let* completed = int "completed" json in
      let* filed = int "filed" json in
      let* digest = str "digest" json in
      Ok (Checkpoint { completed; filed; digest })
  | "end" ->
      let* outcome = str "outcome" json in
      Ok (End { outcome })
  | k -> Error (Printf.sprintf "unknown journal record %S" k)

let state_digest ~finals ~filed =
  let finals =
    List.sort compare
      (List.map (fun (j, st) -> Printf.sprintf "%d=%s" j (status_to_string st))
         finals)
  in
  let filed = List.sort String.compare filed in
  Digest.to_hex
    (Digest.string (String.concat ";" finals ^ "|" ^ String.concat ";" filed))

(* --- durability helpers ------------------------------------------------ *)

(* fsync the directory itself so file creations and renames are
   durable: after a power cut the fully-fsync'd journal must not be
   missing from the directory.  Directory fds can legitimately refuse
   fsync on some filesystems — that only weakens durability, never
   atomicity, so errors are swallowed (same contract as
   [Triage.Corpus]). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* tmp + fsync + rename + fsync(dir): a kill -9 at any instant leaves
   either the old file or the new one, never a torn half-write. *)
let write_atomic ~path contents =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length contents in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd contents !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

(* --- writer ----------------------------------------------------------- *)

type writer = { w_fd : Unix.file_descr; mutable w_closed : bool }

let open_writer ?truncate_at path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  (match truncate_at with
  | None -> ()
  | Some n ->
      (* Cut the torn tail a crash left behind so the first append
         starts on a fresh line instead of concatenating onto the
         partial record (which would read as interior corruption and
         make the journal permanently unrecoverable).  O_APPEND writes
         land at the new, truncated end. *)
      Unix.ftruncate fd n;
      Unix.fsync fd);
  { w_fd = fd; w_closed = false }

(* One line per record in a single write(2): on a local filesystem the
   O_APPEND write is atomic with respect to other appenders, and a
   kill -9 can only tear the line currently being written — exactly
   the case [read] forgives. *)
let append w record =
  if w.w_closed then invalid_arg "Journal.append: writer is closed";
  let line = J.to_string (to_json record) ^ "\n" in
  let n = String.length line in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring w.w_fd line !written (n - !written)
  done;
  Unix.fsync w.w_fd

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    try Unix.close w.w_fd with Unix.Unix_error _ -> ()
  end

(* --- reader ----------------------------------------------------------- *)

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents ->
      let lines = String.split_on_char '\n' contents in
      let n_elems = List.length lines in
      (* Element i was newline-terminated iff something followed it in
         the split.  Only newline-terminated records are {e committed}:
         the writer emits line + '\n' in a single write, so an
         unterminated line — parseable or not — is a torn tail from a
         kill -9 mid-append.  [committed] tracks the byte offset just
         past the last committed record so resume can truncate the torn
         residue before appending. *)
      let last_nonblank =
        let last = ref (-1) in
        List.iteri (fun i l -> if String.trim l <> "" then last := i) lines;
        !last
      in
      let rec go i off acc warnings committed = function
        | [] -> Ok (List.rev acc, List.rev warnings, committed)
        | line :: rest -> (
            let terminated = i < n_elems - 1 in
            let next = off + String.length line + (if terminated then 1 else 0) in
            if String.trim line = "" then
              if i > last_nonblank then
                (* Blank residue after the last record: not committed. *)
                go (i + 1) next acc warnings committed rest
              else
                Error (Printf.sprintf "%s:%d: blank interior line" path (i + 1))
            else
              let parsed =
                match J.of_string line with
                | Error e -> Error e
                | Ok json -> of_json json
              in
              match parsed with
              | Ok r when terminated ->
                  go (i + 1) next (r :: acc) warnings next rest
              | Ok _ ->
                  (* Parses, but the '\n' never hit the disk: the append
                     was torn mid-write, so the record was never
                     committed.  Dropped like any other torn tail. *)
                  go (i + 1) next acc
                    (Printf.sprintf
                       "%s:%d: dropped unterminated final line" path (i + 1)
                    :: warnings)
                    committed rest
              | Error e when i = last_nonblank ->
                  (* Torn tail from a kill -9 mid-append: forgiven. *)
                  go (i + 1) next acc
                    (Printf.sprintf
                       "%s:%d: dropped torn final line (%s)" path (i + 1) e
                    :: warnings)
                    committed rest
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path (i + 1) e))
      in
      let* records, warnings, committed = go 0 0 [] [] 0 lines in
      (match records with
      | Campaign _ :: _ -> Ok (records, warnings, committed)
      | [] -> Error (Printf.sprintf "%s: empty journal" path)
      | _ -> Error (Printf.sprintf "%s: journal does not start with a campaign header" path))
