(** The [dice-campaign/1] final report.

    One JSON object on one line: job totals, per-template outcome
    breakdowns, the deduplicated signature census, the filed-to-corpus
    list, and the cascade health gate.  The report derives {e only}
    from the deterministic campaign state — final verdicts, quarantine
    counts, filed signatures — never from wall-clock times or journal
    line counts, and every list is canonically sorted, so a campaign
    that was [kill -9]ed and resumed serializes byte-identically to
    one that ran uninterrupted. *)

val version : string
(** ["dice-campaign/1"] — shared with the spec; [doc] is ["report"]. *)

type job_final = {
  f_job : int;
  f_template : string;
  f_seed : int;
  f_status : Journal.status;
  f_attempts : int;  (** total attempts, retries included *)
  f_signatures : string list;
  f_cascades : string list;  (** online-monitor cascade roots *)
}

type t = {
  r_json : Telemetry.Json.t;
  r_outcome : string;  (** ["passed"] / ["degraded"] / ["failed"] *)
  r_gate_failed : bool;
      (** the cascade health gate: true iff any job's online monitor
          saw a self-sustaining failure — the campaign's exit-code
          criterion *)
}

val build :
  name:string ->
  spec_digest:string ->
  templates:string list ->
  total:int ->
  finals:job_final list ->
  quarantines:(string * int) list ->
  filed:string list ->
  t
(** [templates] in spec order (the report preserves it); [quarantines]
    maps template name to quarantine count; [filed] is the set of
    signatures filed to the corpus.  Outcome: [failed] when the health
    gate trips, else [degraded] when any job erred/hung, any template
    was quarantined, or jobs are missing final verdicts, else
    [passed]. *)

val write : path:string -> Telemetry.Json.t -> unit
(** One line of JSON plus a newline, written atomically
    ({!Journal.write_atomic}) so a crash mid-write never leaves a torn
    report. *)

val validate : Telemetry.Json.t -> (unit, string) result

val validate_file : string -> (Telemetry.Json.t, string list) result
(** Parse and validate a report file ([telemetry_check --campaign]'s
    path); returns the parsed document on success. *)
