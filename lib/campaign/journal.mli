(** The campaign journal: an append-only, fsync'd JSONL log of every
    driver state transition.

    The journal is the campaign's only durable state.  Each record is
    one JSON object on one line, written with a single [write] and
    [fsync]ed before the driver takes the action it describes becomes
    observable elsewhere (corpus files are the one documented
    exception — see {!Run}).  A record is {e committed} once its
    terminating newline is on disk.  After a [kill -9] the file is a
    valid prefix of the uninterrupted journal, possibly ending in one
    torn line: {!read} tolerates exactly that — a malformed or
    unterminated {e final} line is reported and dropped, while
    malformed interior lines mean real corruption and fail the whole
    read.  {!read} also reports the committed byte length so
    {!Run.resume} can truncate the torn residue before appending;
    without the cut, the first new record would concatenate onto the
    partial line and turn a forgivable torn tail into fatal interior
    corruption on the next read.

    {!Checkpoint} records carry a digest of the replay-relevant state
    (final verdicts + filed signatures) so {!Run.resume} can verify the
    journal is internally consistent while replaying it. *)

type status = Passed | Failed of string  (** scenario raised/errored *)
            | Hung  (** watchdog expired *)

val status_to_string : status -> string
(** ["ok"] / ["error"] / ["hung"]. *)

type record =
  | Campaign of { name : string; spec_digest : string; jobs : int }
      (** first record of every journal *)
  | Scheduled of { job : int; template : string; seed : int }
  | Started of { job : int; attempt : int }
  | Verdict of {
      job : int;
      attempt : int;
      status : status;
      signatures : string list;  (** detected fault signatures *)
      cascades : string list;  (** online-monitor cascade roots *)
      final : bool;  (** false = will be retried *)
      wall_s : float;  (** informational; never enters the report *)
    }
  | Quarantined of { template : string; step : int; strikes : int; until : int }
  | Unquarantined of { template : string; step : int }
  | Filed of { job : int; signature : string; file : string }
  | Checkpoint of { completed : int; filed : int; digest : string }
  | End of { outcome : string }

val to_json : record -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (record, string) result

val state_digest :
  finals:(int * status) list -> filed:string list -> string
(** The digest pinned by {!Checkpoint} records: md5 over the sorted
    final verdict statuses and sorted filed signatures.  Order of the
    input lists does not matter. *)

val fsync_dir : string -> unit
(** fsync a directory so creations/renames inside it are durable.
    Errors are swallowed: some filesystems refuse directory fsync, which
    weakens durability but never atomicity. *)

val write_atomic : path:string -> string -> unit
(** tmp + fsync + rename + {!fsync_dir}: a [kill -9] at any instant
    leaves the old file or the new one, never a torn half-write. *)

type writer

val open_writer : ?truncate_at:int -> string -> writer
(** Open (creating if needed) for append.  [truncate_at] cuts the file
    to that byte length first (fsync'd) — resume passes {!read}'s
    committed length so appends never land on a torn tail.  Raises
    [Unix.Unix_error]. *)

val append : writer -> record -> unit
(** One line, one [write], one [fsync]. *)

val close : writer -> unit

val read : string -> (record list * string list * int, string) result
(** All committed records in order, warnings (the torn-final-line
    report, if any), and the committed byte length — the offset just
    past the last newline-terminated valid record, i.e. where an
    appender may safely resume.  Errors: unreadable file, malformed
    interior line, or a journal that does not start with
    {!Campaign}. *)
