module J = Telemetry.Json

let version = "dice-campaign/1"

type job_final = {
  f_job : int;
  f_template : string;
  f_seed : int;
  f_status : Journal.status;
  f_attempts : int;
  f_signatures : string list;
  f_cascades : string list;
}

type t = {
  r_json : J.t;
  r_outcome : string;
  r_gate_failed : bool;
}

let strings l = J.List (List.map (fun s -> J.String s) l)

let count p l = List.length (List.filter p l)

let is_ok f = match f.f_status with Journal.Passed -> true | _ -> false
let is_error f = match f.f_status with Journal.Failed _ -> true | _ -> false
let is_hung f = match f.f_status with Journal.Hung -> true | _ -> false

let build ~name ~spec_digest ~templates ~total ~finals ~quarantines ~filed =
  let finals = List.sort (fun a b -> Int.compare a.f_job b.f_job) finals in
  let retried =
    List.fold_left (fun acc f -> acc + max 0 (f.f_attempts - 1)) 0 finals
  in
  let quarantine_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 quarantines
  in
  let template_json tpl =
    let mine = List.filter (fun f -> String.equal f.f_template tpl) finals in
    let signatures =
      List.sort_uniq String.compare (List.concat_map (fun f -> f.f_signatures) mine)
    in
    let q =
      match List.assoc_opt tpl quarantines with Some n -> n | None -> 0
    in
    J.Obj
      [ ("name", J.String tpl);
        ("completed", J.Int (List.length mine));
        ("ok", J.Int (count is_ok mine));
        ("error", J.Int (count is_error mine));
        ("hung", J.Int (count is_hung mine));
        ("quarantines", J.Int q);
        ("signatures", strings signatures) ]
  in
  let signature_census =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun f ->
        List.iter
          (fun sg ->
            Hashtbl.replace tbl sg
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl sg)))
          (List.sort_uniq String.compare f.f_signatures))
      finals;
    Hashtbl.fold (fun sg n acc -> (sg, n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (sg, n) ->
           J.Obj [ ("signature", J.String sg); ("jobs", J.Int n) ])
  in
  let cascades =
    List.sort_uniq String.compare (List.concat_map (fun f -> f.f_cascades) finals)
  in
  let gate_failed = cascades <> [] in
  let completed = List.length finals in
  let degraded =
    completed < total || count is_error finals > 0 || count is_hung finals > 0
    || quarantine_total > 0
  in
  let outcome =
    if gate_failed then "failed" else if degraded then "degraded" else "passed"
  in
  let json =
    J.Obj
      [ ("schema", J.String version);
        ("doc", J.String "report");
        ("name", J.String name);
        ("spec", J.String spec_digest);
        ( "jobs",
          J.Obj
            [ ("total", J.Int total);
              ("completed", J.Int completed);
              ("ok", J.Int (count is_ok finals));
              ("error", J.Int (count is_error finals));
              ("hung", J.Int (count is_hung finals));
              ("retried", J.Int retried) ] );
        ("templates", J.List (List.map template_json templates));
        ("signatures", J.List signature_census);
        ("filed", strings (List.sort String.compare filed));
        ( "health",
          J.Obj
            [ ("cascades", strings cascades);
              ("gate", J.String (if gate_failed then "failed" else "ok")) ] );
        ("outcome", J.String outcome) ]
  in
  { r_json = json; r_outcome = outcome; r_gate_failed = gate_failed }

(* Atomic (tmp + fsync + rename): a campaign killed mid-write must
   leave the previous report or the new one, never a torn report.json
   that [telemetry_check --campaign] and CI consumers fail to parse. *)
let write ~path json = Journal.write_atomic ~path (J.to_string json ^ "\n")

(* --- validation ------------------------------------------------------- *)

let ( let* ) = Result.bind

let str_field name json =
  match J.member name json with
  | Some (J.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string %S field" name)

let int_fields names json =
  List.fold_left
    (fun acc name ->
      let* () = acc in
      match J.member name json with
      | Some (J.Int i) when i >= 0 -> Ok ()
      | Some (J.Int _) -> Error (Printf.sprintf "negative %S count" name)
      | _ -> Error (Printf.sprintf "missing or non-integer %S field" name))
    (Ok ()) names

let str_list_field name json =
  match J.member name json with
  | Some (J.List l)
    when List.for_all (function J.String _ -> true | _ -> false) l ->
      Ok (List.map (function J.String s -> s | _ -> assert false) l)
  | _ -> Error (Printf.sprintf "missing or non-string-list %S field" name)

let validate json =
  let* schema = str_field "schema" json in
  let* () =
    if String.equal schema version then Ok ()
    else
      Error (Printf.sprintf "unsupported schema %S (want %S)" schema version)
  in
  let* doc = str_field "doc" json in
  let* () =
    if String.equal doc "report" then Ok ()
    else Error (Printf.sprintf "document is a %S, not a campaign report" doc)
  in
  let* _name = str_field "name" json in
  let* _spec = str_field "spec" json in
  let* jobs =
    match J.member "jobs" json with
    | Some (J.Obj _ as o) -> Ok o
    | _ -> Error "missing or non-object \"jobs\" field"
  in
  let* () =
    int_fields [ "total"; "completed"; "ok"; "error"; "hung"; "retried" ] jobs
  in
  let* () =
    match (J.member "total" jobs, J.member "completed" jobs) with
    | Some (J.Int t), Some (J.Int c) when c > t ->
        Error "more completed jobs than total"
    | _ -> Ok ()
  in
  let* templates =
    match J.member "templates" json with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing or non-list \"templates\" field"
  in
  let* () =
    List.fold_left
      (fun acc t ->
        let* () = acc in
        let* name = str_field "name" t in
        let in_tpl msg = Printf.sprintf "template %S: %s" name msg in
        let* () =
          Result.map_error in_tpl
            (int_fields
               [ "completed"; "ok"; "error"; "hung"; "quarantines" ]
               t)
        in
        let* _ = Result.map_error in_tpl (str_list_field "signatures" t) in
        Ok ())
      (Ok ()) templates
  in
  let* () =
    match J.member "signatures" json with
    | Some (J.List l) ->
        List.fold_left
          (fun acc s ->
            let* () = acc in
            let* _ = str_field "signature" s in
            match J.member "jobs" s with
            | Some (J.Int n) when n > 0 -> Ok ()
            | _ -> Error "signature census entry needs a positive \"jobs\"")
          (Ok ()) l
    | _ -> Error "missing or non-list \"signatures\" field"
  in
  let* _filed = str_list_field "filed" json in
  let* health =
    match J.member "health" json with
    | Some (J.Obj _ as o) -> Ok o
    | _ -> Error "missing or non-object \"health\" field"
  in
  let* cascades = str_list_field "cascades" health in
  let* gate = str_field "gate" health in
  let* () =
    match gate with
    | "ok" when cascades = [] -> Ok ()
    | "failed" when cascades <> [] -> Ok ()
    | "ok" | "failed" -> Error "health gate disagrees with cascade list"
    | g -> Error (Printf.sprintf "unknown health gate %S" g)
  in
  let* outcome = str_field "outcome" json in
  let* () =
    match outcome with
    | "passed" | "degraded" | "failed" -> Ok ()
    | o -> Error (Printf.sprintf "unknown outcome %S" o)
  in
  let* () =
    match (gate, outcome) with
    | "failed", ("passed" | "degraded") ->
        Error "outcome must be \"failed\" when the health gate failed"
    | "ok", "failed" -> Error "outcome \"failed\" requires a failed health gate"
    | _ -> Ok ()
  in
  Ok ()

let validate_file path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error [ e ]
  | contents -> (
      match J.of_string contents with
      | Error e -> Error [ Printf.sprintf "%s: %s" path e ]
      | Ok json -> (
          match validate json with
          | Ok () -> Ok json
          | Error e -> Error [ Printf.sprintf "%s: %s" path e ]))
