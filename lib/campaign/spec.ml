module J = Telemetry.Json

let schema_version = "dice-campaign/1"

type template = {
  t_name : string;
  t_seeds : int list;
  t_scenario : Triage.Scenario.t;
}

type t = {
  c_name : string;
  c_templates : template list;
  c_scenario_budget_s : float;
  c_budget_s : float option;
  c_retries : int;
  c_max_strikes : int;
  c_backoff : int;
  c_checkpoint_every : int;
}

(* Clamped to the same bounds [validate] enforces on JSON input: a
   programmatic caller passing [checkpoint_every <= 0] would otherwise
   divide by zero at the driver's checkpoint cadence, and negative
   [retries] would silently shrink max_attempts below one. *)
let make ?(scenario_budget_s = 60.) ?budget_s ?(retries = 1) ?(max_strikes = 2)
    ?(backoff = 2) ?(checkpoint_every = 8) ~name templates =
  { c_name = name; c_templates = templates;
    c_scenario_budget_s = scenario_budget_s; c_budget_s = budget_s;
    c_retries = max 0 retries; c_max_strikes = max 1 max_strikes;
    c_backoff = max 1 backoff; c_checkpoint_every = max 1 checkpoint_every }

type job = {
  j_id : int;
  j_template : string;
  j_seed : int;
  j_scenario : Triage.Scenario.t;
}

let jobs spec =
  let next = ref 0 in
  List.concat_map
    (fun tpl ->
      List.map
        (fun seed ->
          let id = !next in
          incr next;
          { j_id = id; j_template = tpl.t_name; j_seed = seed;
            j_scenario = Triage.Scenario.with_seed seed tpl.t_scenario })
        tpl.t_seeds)
    spec.c_templates

let template_to_json tpl =
  J.Obj
    [ ("name", J.String tpl.t_name);
      ("seeds", J.List (List.map (fun s -> J.Int s) tpl.t_seeds));
      ("scenario", Triage.Scenario.to_json tpl.t_scenario) ]

let to_json spec =
  J.Obj
    [ ("schema", J.String schema_version);
      ("doc", J.String "spec");
      ("name", J.String spec.c_name);
      ("scenario_budget_sec", J.Float spec.c_scenario_budget_s);
      ( "budget_sec",
        match spec.c_budget_s with None -> J.Null | Some b -> J.Float b );
      ("retries", J.Int spec.c_retries);
      ("max_strikes", J.Int spec.c_max_strikes);
      ("backoff", J.Int spec.c_backoff);
      ("checkpoint_every", J.Int spec.c_checkpoint_every);
      ("templates", J.List (List.map template_to_json spec.c_templates)) ]

let digest spec = Digest.to_hex (Digest.string (J.to_string (to_json spec)))

(* --- validation ------------------------------------------------------- *)

let ( let* ) = Result.bind

let str_field name json =
  match J.member name json with
  | Some (J.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string %S field" name)

let int_field ~default name json =
  match J.member name json with
  | None -> Ok default
  | Some (J.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let float_field ~default name json =
  match J.member name json with
  | None -> Ok default
  | Some (J.Float f) -> Ok f
  | Some (J.Int i) -> Ok (float_of_int i)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

(* Seed sweeps come in two spellings: an explicit list, or a compact
   range object for wide sweeps. *)
let seeds_of_json = function
  | J.List l ->
      let* seeds =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            match s with
            | J.Int i -> Ok (i :: acc)
            | _ -> Error "seeds list must contain only integers")
          (Ok []) l
      in
      if seeds = [] then Error "seeds list is empty" else Ok (List.rev seeds)
  | J.Obj _ as o ->
      let* from = int_field ~default:0 "from" o in
      let* count =
        match J.member "count" o with
        | Some (J.Int c) -> Ok c
        | _ -> Error "seed range needs an integer \"count\""
      in
      if count <= 0 then Error "seed range \"count\" must be positive"
      else Ok (List.init count (fun i -> from + i))
  | _ -> Error "\"seeds\" must be a list of integers or a {from, count} range"

let template_of_json json =
  let* name = str_field "name" json in
  let in_tpl msg = Printf.sprintf "template %S: %s" name msg in
  let* seeds =
    match J.member "seeds" json with
    | None -> Error (in_tpl "missing \"seeds\"")
    | Some s -> Result.map_error in_tpl (seeds_of_json s)
  in
  let* scenario =
    match J.member "scenario" json with
    | None -> Error (in_tpl "missing \"scenario\"")
    | Some s ->
        Result.map_error in_tpl (Triage.Scenario.of_json s)
  in
  Ok { t_name = name; t_seeds = seeds; t_scenario = scenario }

let validate json =
  let* schema = str_field "schema" json in
  let* () =
    if String.equal schema schema_version then Ok ()
    else Error (Printf.sprintf "unsupported schema %S (want %S)" schema
                  schema_version)
  in
  let* () =
    match J.member "doc" json with
    | None | Some (J.String "spec") -> Ok ()
    | Some (J.String d) ->
        Error (Printf.sprintf "document is a %S, not a campaign spec" d)
    | Some _ -> Error "field \"doc\" must be a string"
  in
  let* name = str_field "name" json in
  let* scenario_budget_s = float_field ~default:60. "scenario_budget_sec" json in
  let* budget_s =
    match J.member "budget_sec" json with
    | None | Some J.Null -> Ok None
    | Some (J.Float f) -> Ok (Some f)
    | Some (J.Int i) -> Ok (Some (float_of_int i))
    | Some _ -> Error "field \"budget_sec\" must be a number or null"
  in
  let* retries = int_field ~default:1 "retries" json in
  let* max_strikes = int_field ~default:2 "max_strikes" json in
  let* backoff = int_field ~default:2 "backoff" json in
  let* checkpoint_every = int_field ~default:8 "checkpoint_every" json in
  let* () =
    if retries < 0 then Error "\"retries\" must be >= 0"
    else if max_strikes < 1 then Error "\"max_strikes\" must be >= 1"
    else if backoff < 1 then Error "\"backoff\" must be >= 1"
    else if checkpoint_every < 1 then Error "\"checkpoint_every\" must be >= 1"
    else Ok ()
  in
  let* templates =
    match J.member "templates" json with
    | Some (J.List (_ :: _ as l)) ->
        List.fold_left
          (fun acc t ->
            let* acc = acc in
            let* tpl = template_of_json t in
            Ok (tpl :: acc))
          (Ok []) l
        |> Result.map List.rev
    | Some (J.List []) -> Error "campaign has no templates"
    | _ -> Error "missing or non-list \"templates\" field"
  in
  let* () =
    let names = List.map (fun t -> t.t_name) templates in
    let dup =
      List.find_opt
        (fun n -> List.length (List.filter (String.equal n) names) > 1)
        names
    in
    match dup with
    | Some n -> Error (Printf.sprintf "duplicate template name %S" n)
    | None -> Ok ()
  in
  Ok
    { c_name = name; c_templates = templates;
      c_scenario_budget_s = scenario_budget_s; c_budget_s = budget_s;
      c_retries = retries; c_max_strikes = max_strikes; c_backoff = backoff;
      c_checkpoint_every = checkpoint_every }

let of_string s =
  let* json = J.of_string s in
  validate json

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents ->
      Result.map_error (Printf.sprintf "%s: %s" path) (of_string contents)

(* Atomic: resume reloads this file, so a kill -9 during [save] must
   not be able to leave a torn spec.json behind. *)
let save ~path spec =
  Journal.write_atomic ~path (J.to_string (to_json spec) ^ "\n")
