(** The campaign driver: a supervising scheduler that treats every
    scenario run as an untrusted job.

    Each job (template × seed) executes on a worker domain under a
    wall-clock watchdog ({!Parallel.Pool.await_timeout}); a job that
    raises is absorbed into an [error] verdict, a job that exceeds the
    budget becomes [hung] — either way the fleet keeps going.  Flaky
    verdicts are retried up to the spec's [retries]; a template whose
    jobs keep failing is quarantined with exponential backoff
    ({!Dice.Supervise}) while the other templates progress.  Every
    fault signature is deduplicated campaign-wide before being filed
    to the corpus, and each job runs under its own
    {!Cascade.Online.with_monitor} so the health gate ("no
    self-sustaining failures") is part of the job's journaled verdict.

    {2 Crash safety}

    Every state transition is journaled ({!Journal}) before the driver
    moves on.  {!resume} replays the journal into the {e same}
    deterministic scheduler: jobs with journaled final verdicts are fed
    to the state machine without re-executing, everything else runs
    live.  Because the report derives only from verdict content (never
    wall time or journal shape), a campaign killed with [kill -9] and
    resumed produces a byte-identical [report.json] and the same filed
    corpus — provided the scenarios themselves are deterministic, which
    {!Triage.Scenario.run} guarantees as long as the watchdog never
    fires spuriously.  The one at-least-once corner: a crash between
    [Corpus.add] and the [filed] journal record refiles that signature
    on resume, bumping the corpus entry's hit count; the set of corpus
    files and the report are unaffected.

    {2 Directory layout}

    [DIR/spec.json] (the validated spec, for resume), [DIR/journal.jsonl],
    [DIR/report.json] (rewritten at the end of every invocation) and
    [DIR/corpus/] (default filing target). *)

type result_t = {
  r_report : Report.t;
  r_total : int;
  r_completed : int;  (** jobs with a final verdict, replay included *)
  r_executed : int;  (** jobs executed live this invocation *)
  r_replayed : int;  (** jobs satisfied from the journal *)
  r_filed : string list;  (** signatures filed this invocation *)
  r_warnings : string list;  (** e.g. the torn-final-line report *)
}

val start :
  ?runner:(Triage.Scenario.t -> Triage.Scenario.outcome) ->
  ?pool:Parallel.Pool.t ->
  ?log:(string -> unit) ->
  ?crash_after:int ->
  ?corpus_dir:string ->
  dir:string ->
  Spec.t ->
  (result_t, string) result
(** Create [dir], persist the spec, journal the header and schedule,
    and drive the campaign to completion (or to the campaign budget).
    Fails if [dir] already holds a journal — use {!resume}.

    [runner] replaces {!Triage.Scenario.run} (tests inject hangs and
    crashes with it); [pool] supplies the worker pool (owned by the
    caller; otherwise a 1-domain pool is created, and leaked rather
    than joined if a job hung); [crash_after n] simulates a [kill -9]
    by [Unix._exit 137] immediately after the [n]-th live final
    verdict reaches the journal — the deterministic half of the CI
    kill-and-resume smoke. *)

val resume :
  ?runner:(Triage.Scenario.t -> Triage.Scenario.outcome) ->
  ?pool:Parallel.Pool.t ->
  ?log:(string -> unit) ->
  ?crash_after:int ->
  ?corpus_dir:string ->
  dir:string ->
  unit ->
  (result_t, string) result
(** Reload [DIR/spec.json], replay the journal (verifying the spec
    digest and every checkpoint), truncate any torn final line off the
    journal so new appends start on a fresh line, then skip completed
    work and continue.  Idempotent: resuming a finished campaign just
    rebuilds the report. *)
