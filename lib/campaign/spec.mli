(** Declarative campaign specs — the [dice-campaign/1] input document.

    A campaign is a list of scenario {e templates} (each a complete
    {!Triage.Scenario} plus a seed sweep) and the supervision knobs the
    driver runs them under: the per-scenario watchdog, the
    whole-campaign wall budget, the retry count for flaky verdicts and
    the strike/backoff quarantine policy.  {!jobs} expands the
    templates into the concrete job list — template × seed, in a fixed
    deterministic order — which is the unit everything downstream
    (journal, scheduler, report) speaks in.

    {v
    { "schema": "dice-campaign/1",
      "doc":    "spec",
      "name":   "nightly",
      "scenario_budget_sec": 60.0,       // watchdog per scenario run
      "budget_sec": null,                // whole-campaign wall budget
      "retries": 1,                      // extra attempts per flaky job
      "max_strikes": 2, "backoff": 2,    // template quarantine policy
      "checkpoint_every": 8,             // journal checkpoint cadence
      "templates": [
        { "name": "hijack-sweep",
          "seeds": [1, 2, 3],            // or {"from": 1, "count": 8}
          "scenario": { ... Triage.Scenario.to_json ... } } ] }
    v} *)

val schema_version : string
(** ["dice-campaign/1"] — shared with the final report; the ["doc"]
    field distinguishes specs from reports. *)

type template = {
  t_name : string;  (** unique within the spec *)
  t_seeds : int list;
  t_scenario : Triage.Scenario.t;
      (** the base scenario; each seed expands it via
          {!Triage.Scenario.with_seed} *)
}

type t = {
  c_name : string;
  c_templates : template list;
  c_scenario_budget_s : float;
      (** per-scenario watchdog (host seconds); [<= 0.] disables it *)
  c_budget_s : float option;  (** whole-campaign wall budget *)
  c_retries : int;  (** extra attempts before a flaky job is final *)
  c_max_strikes : int;  (** consecutive final failures before quarantine *)
  c_backoff : int;  (** base quarantine length in scheduler steps *)
  c_checkpoint_every : int;  (** journal checkpoint cadence, in verdicts *)
}

val make : ?scenario_budget_s:float -> ?budget_s:float -> ?retries:int ->
  ?max_strikes:int -> ?backoff:int -> ?checkpoint_every:int ->
  name:string -> template list -> t
(** Defaults: 60 s watchdog, no campaign budget, 1 retry, 2 strikes,
    backoff 2, checkpoint every 8 verdicts.  Knobs are clamped to the
    bounds {!validate} enforces ([retries >= 0]; [max_strikes],
    [backoff], [checkpoint_every >= 1]). *)

type job = {
  j_id : int;  (** dense, stable: the journal's job key *)
  j_template : string;
  j_seed : int;
  j_scenario : Triage.Scenario.t;  (** already seed-expanded *)
}

val jobs : t -> job list
(** Template-major expansion in spec order: template 0's seeds, then
    template 1's, … — ids are the positions in this list, so the same
    spec always expands to the same jobs on every host. *)

val digest : t -> string
(** md5 hex of the canonical JSON encoding — journals pin it so
    [resume] can refuse a directory whose spec changed underneath. *)

val to_json : t -> Telemetry.Json.t
val validate : Telemetry.Json.t -> (t, string) result
(** The single schema gate: the CLI, the demo's [--campaign] path and
    the driver's resume all load specs through it. *)

val of_string : string -> (t, string) result
val load : string -> (t, string) result
(** Read and validate a spec file. *)

val save : path:string -> t -> unit
(** Atomic write ({!Journal.write_atomic}): a crash mid-save leaves the
    old spec file or the new one, never a torn half-write. *)
