module J = Telemetry.Json

type result_t = {
  r_report : Report.t;
  r_total : int;
  r_completed : int;
  r_executed : int;
  r_replayed : int;
  r_filed : string list;
  r_warnings : string list;
}

let ( let* ) = Result.bind

let m_ok = Telemetry.Metrics.counter "campaign.jobs_ok"
let m_error = Telemetry.Metrics.counter "campaign.jobs_error"
let m_hung = Telemetry.Metrics.counter "campaign.jobs_hung"
let m_replayed = Telemetry.Metrics.counter "campaign.jobs_replayed"
let m_retries = Telemetry.Metrics.counter "campaign.retries"
let m_quarantines = Telemetry.Metrics.counter "campaign.quarantines"
let m_filed = Telemetry.Metrics.counter "campaign.filed"

let journal_file dir = Filename.concat dir "journal.jsonl"
let spec_file dir = Filename.concat dir "spec.json"
let report_file dir = Filename.concat dir "report.json"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let is_ok = function Journal.Passed -> true | Journal.Failed _ | Journal.Hung -> false

(* --- journal replay --------------------------------------------------- *)

type replay = {
  rp_finals :
    (int, Journal.status * string list * string list * int) Hashtbl.t;
      (** job -> (status, signatures, cascades, attempts) *)
  rp_attempts : (int, int) Hashtbl.t;  (** job -> failed non-final attempts *)
  rp_filed : (string, string) Hashtbl.t;  (** signature -> corpus file *)
  rp_parked : (string, int) Hashtbl.t;  (** template -> unreleased parks *)
}

let empty_replay () =
  { rp_finals = Hashtbl.create 64; rp_attempts = Hashtbl.create 16;
    rp_filed = Hashtbl.create 16; rp_parked = Hashtbl.create 8 }

(* Rebuild the replay state while verifying every checkpoint against the
   records before it: a checkpoint whose digest disagrees means the
   journal is internally inconsistent (interleaved writers, manual
   edits), which resume must refuse rather than silently continue. *)
let replay_of_records records =
  let rp = empty_replay () in
  let* () =
    List.fold_left
      (fun acc r ->
        let* () = acc in
        match r with
        | Journal.Verdict { job; attempt; status; signatures; cascades; final; _ }
          ->
            if final then
              Hashtbl.replace rp.rp_finals job (status, signatures, cascades, attempt)
            else
              Hashtbl.replace rp.rp_attempts job
                (max attempt
                   (Option.value ~default:0 (Hashtbl.find_opt rp.rp_attempts job)));
            Ok ()
        | Journal.Filed { signature; file; _ } ->
            if not (Hashtbl.mem rp.rp_filed signature) then
              Hashtbl.add rp.rp_filed signature file;
            Ok ()
        | Journal.Quarantined { template; _ } ->
            Hashtbl.replace rp.rp_parked template
              (1 + Option.value ~default:0 (Hashtbl.find_opt rp.rp_parked template));
            Ok ()
        | Journal.Unquarantined { template; _ } ->
            Hashtbl.replace rp.rp_parked template
              (max 0
                 (Option.value ~default:0 (Hashtbl.find_opt rp.rp_parked template)
                 - 1));
            Ok ()
        | Journal.Checkpoint { completed; filed; digest } ->
            let finals =
              Hashtbl.fold (fun j (st, _, _, _) acc -> (j, st) :: acc)
                rp.rp_finals []
            in
            let filed_l = Hashtbl.fold (fun s _ acc -> s :: acc) rp.rp_filed [] in
            if
              List.length finals = completed
              && List.length filed_l = filed
              && String.equal digest
                   (Journal.state_digest ~finals ~filed:filed_l)
            then Ok ()
            else Error "journal checkpoint mismatch: journal is inconsistent"
        | Journal.Campaign _ | Journal.Scheduled _ | Journal.Started _
        | Journal.End _ ->
            Ok ())
      (Ok ()) records
  in
  Ok rp

(* --- the driver ------------------------------------------------------- *)

let drive ?runner ?pool ?(log = ignore) ?crash_after ?corpus_dir ~dir ~writer
    ~spec ~replay ~warnings () =
  let runner = Option.value ~default:Triage.Scenario.run runner in
  let corpus_dir =
    Option.value ~default:(Filename.concat dir "corpus") corpus_dir
  in
  let spec_digest = Spec.digest spec in
  let jobs = Spec.jobs spec in
  let total = List.length jobs in
  let templates =
    Array.of_list (List.map (fun t -> t.Spec.t_name) spec.Spec.c_templates)
  in
  let n = Array.length templates in
  let tindex name =
    let rec go i = if String.equal templates.(i) name then i else go (i + 1) in
    go 0
  in
  let queues = Array.make n [] in
  List.iter
    (fun (j : Spec.job) ->
      let ti = tindex j.j_template in
      queues.(ti) <- j :: queues.(ti))
    jobs;
  Array.iteri (fun i q -> queues.(i) <- List.rev q) queues;
  let strikes =
    Dice.Supervise.create ~max_strikes:spec.Spec.c_max_strikes
      ~backoff:spec.Spec.c_backoff n
  in
  (* Quarantine records are advisory (replay never reads them back);
     [announce] tracks which parks still owe an unquarantine line so a
     resumed journal stays readable without duplicating records. *)
  let announce =
    Array.init n (fun i ->
        Option.value ~default:0 (Hashtbl.find_opt replay.rp_parked templates.(i))
        > 0)
  in
  let quarantine_counts = Array.make n 0 in
  let finals : Report.job_final option array = Array.make total None in
  let filed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter (fun sg _ -> Hashtbl.replace filed sg ()) replay.rp_filed;
  let filed_now = ref [] in
  let step = ref 0 and cursor = ref 0 in
  let completed = ref 0 and executed = ref 0 and replayed = ref 0 in
  let live_finals = ref 0 in
  let owned_pool = ref None in
  let worker () =
    match pool with
    | Some p -> p
    | None -> (
        match !owned_pool with
        | Some p -> p
        | None ->
            (* Two domains: a spawned worker runs the job while the
               caller keeps the watchdog clock.  A 1-domain pool would
               execute the job on the awaiting caller itself, and no
               timeout could ever fire. *)
            let p = Parallel.Pool.create ~domains:2 () in
            owned_pool := Some p;
            p)
  in
  let t_start = Unix.gettimeofday () in
  let out_of_time () =
    match spec.Spec.c_budget_s with
    | None -> false
    | Some b -> Unix.gettimeofday () -. t_start > b
  in
  let max_attempts = 1 + spec.Spec.c_retries in
  (* One attempt: journal [started], run the scenario on a worker domain
     under the watchdog, absorb exceptions into an [error] status.  The
     per-job online cascade monitor runs inside the job body so its
     roots land in the journaled verdict — which is what makes the
     health gate deterministic under resume. *)
  let execute (job : Spec.job) attempt =
    Journal.append writer (Journal.Started { job = job.j_id; attempt });
    let body () =
      match
        Cascade.Online.with_monitor ~capacity:65536 (fun mon ->
            let o = runner job.j_scenario in
            let roots =
              List.sort_uniq String.compare
                (List.map Dice.Fault.root (Cascade.Online.probe mon))
            in
            (o, roots))
      with
      | v -> Ok v
      | exception e -> Error (Printexc.to_string e)
    in
    let t0 = Unix.gettimeofday () in
    let res =
      Telemetry.with_span "campaign.job"
        ~attrs:
          [ ("job", J.Int job.j_id); ("template", J.String job.j_template);
            ("seed", J.Int job.j_seed); ("attempt", J.Int attempt) ]
        (fun _ ->
          if spec.Spec.c_scenario_budget_s > 0. then
            let task = Parallel.Pool.submit (worker ()) body in
            (* [~help:false]: a helping await would steal the job off
               the queue and run it inline, defeating the watchdog. *)
            Parallel.Pool.await_timeout ~help:false task
              ~timeout_s:spec.Spec.c_scenario_budget_s
          else Some (body ()))
    in
    let wall = Unix.gettimeofday () -. t0 in
    match res with
    | None ->
        (* The worker domain is wedged on the abandoned job; drop the
           pool so later jobs get a fresh worker instead of queueing
           behind it.  OCaml domains cannot be killed, so the wedged
           pool is leaked on purpose (a user-supplied pool is the
           caller's to manage and is kept as-is). *)
        if Option.is_none pool then owned_pool := None;
        (Journal.Hung, [], [], wall)
    | Some (Error e) -> (Journal.Failed e, [], [], wall)
    | Some (Ok (o, roots)) -> (
        let sigs =
          List.sort_uniq String.compare
            (List.map Dice.Signature.to_string
               o.Triage.Scenario.o_signatures)
        in
        match o.Triage.Scenario.o_error with
        | Some e -> (Journal.Failed e, sigs, roots, wall)
        | None -> (Journal.Passed, sigs, roots, wall))
  in
  let run_job (job : Spec.job) =
    let start_at =
      1 + Option.value ~default:0 (Hashtbl.find_opt replay.rp_attempts job.j_id)
    in
    let rec attempt k =
      let status, sigs, roots, wall = execute job k in
      let final = is_ok status || k >= max_attempts in
      Journal.append writer
        (Journal.Verdict
           { job = job.j_id; attempt = k; status; signatures = sigs;
             cascades = roots; final; wall_s = wall });
      (match status with
      | Journal.Passed -> Telemetry.Metrics.incr m_ok
      | Journal.Failed _ -> Telemetry.Metrics.incr m_error
      | Journal.Hung -> Telemetry.Metrics.incr m_hung);
      if final then begin
        incr live_finals;
        (match crash_after with
        | Some limit when !live_finals >= limit ->
            (* Simulated kill -9 for the CI smoke: no cleanup, no
               buffered writes, not even at_exit handlers. *)
            Unix._exit 137
        | _ -> ());
        (status, sigs, roots, k)
      end
      else begin
        Telemetry.Metrics.incr m_retries;
        log
          (Printf.sprintf "job %d (%s seed %d): attempt %d %s; retrying"
             job.j_id job.j_template job.j_seed k
             (Journal.status_to_string status));
        attempt (k + 1)
      end
    in
    attempt start_at
  in
  let file_signatures (job : Spec.job) sigs =
    List.iter
      (fun sg_str ->
        if not (Hashtbl.mem filed sg_str) then
          match Dice.Signature.of_string sg_str with
          | Error e ->
              log
                (Printf.sprintf "job %d: cannot file signature %S: %s"
                   job.j_id sg_str e)
          | Ok sg ->
              ignore (Triage.Corpus.add ~dir:corpus_dir sg job.j_scenario);
              let file = Triage.Corpus.filename_of sg in
              Journal.append writer
                (Journal.Filed { job = job.j_id; signature = sg_str; file });
              Hashtbl.replace filed sg_str ();
              filed_now := sg_str :: !filed_now;
              Telemetry.Metrics.incr m_filed;
              log
                (Printf.sprintf "job %d (%s seed %d): filed %s" job.j_id
                   job.j_template job.j_seed file))
      sigs
  in
  let checkpoint () =
    let finals_l =
      Array.to_list finals
      |> List.filter_map
           (Option.map (fun f -> (f.Report.f_job, f.Report.f_status)))
    in
    let filed_l = Hashtbl.fold (fun s _ acc -> s :: acc) filed [] in
    Journal.append writer
      (Journal.Checkpoint
         { completed = List.length finals_l; filed = List.length filed_l;
           digest = Journal.state_digest ~finals:finals_l ~filed:filed_l })
  in
  let record_final (job : Spec.job) ti status sigs roots attempts ~live =
    finals.(job.j_id) <-
      Some
        { Report.f_job = job.j_id; f_template = job.j_template;
          f_seed = job.j_seed; f_status = status; f_attempts = attempts;
          f_signatures = sigs; f_cascades = roots };
    incr completed;
    (match
       Dice.Supervise.record strikes ~slot:ti ~step:!step ~ok:(is_ok status)
     with
    | None -> ()
    | Some q ->
        Telemetry.Metrics.incr m_quarantines;
        quarantine_counts.(ti) <- quarantine_counts.(ti) + 1;
        if live then begin
          announce.(ti) <- true;
          Journal.append writer
            (Journal.Quarantined
               { template = templates.(ti); step = q.Dice.Supervise.qu_step;
                 strikes = q.Dice.Supervise.qu_strikes;
                 until = q.Dice.Supervise.qu_until });
          log
            (Printf.sprintf
               "template %s quarantined until step %d (%d strikes)"
               templates.(ti) q.Dice.Supervise.qu_until
               q.Dice.Supervise.qu_strikes)
        end);
    incr step;
    file_signatures job sigs;
    if live && !live_finals mod spec.Spec.c_checkpoint_every = 0 then
      checkpoint ()
  in
  Telemetry.with_span "campaign"
    ~attrs:[ ("name", J.String spec.Spec.c_name); ("jobs", J.Int total) ]
    (fun _ ->
      let remaining = ref total in
      while !remaining > 0 do
        List.iter
          (fun slot ->
            if announce.(slot) then begin
              announce.(slot) <- false;
              Journal.append writer
                (Journal.Unquarantined
                   { template = templates.(slot); step = !step })
            end)
          (Dice.Supervise.release_due strikes ~step:!step);
        let picked = ref None in
        let i = ref 0 in
        while !picked = None && !i < n do
          let ti = (!cursor + !i) mod n in
          (match queues.(ti) with
          | [] -> ()
          | job :: rest ->
              if not (Dice.Supervise.quarantined strikes ~slot:ti ~step:!step)
              then begin
                queues.(ti) <- rest;
                cursor := (ti + 1) mod n;
                picked := Some (job, ti)
              end);
          incr i
        done;
        match !picked with
        | None ->
            (* Every template with work left is parked: idle steps tick
               the clock so backoffs expire. *)
            incr step
        | Some (job, ti) -> (
            decr remaining;
            match Hashtbl.find_opt replay.rp_finals job.Spec.j_id with
            | Some (status, sigs, roots, attempts) ->
                incr replayed;
                Telemetry.Metrics.incr m_replayed;
                record_final job ti status sigs roots attempts ~live:false
            | None ->
                if out_of_time () then
                  log
                    (Printf.sprintf
                       "campaign budget exhausted; skipping job %d (%s seed %d)"
                       job.Spec.j_id job.Spec.j_template job.Spec.j_seed)
                else begin
                  incr executed;
                  let status, sigs, roots, attempts = run_job job in
                  record_final job ti status sigs roots attempts ~live:true
                end)
      done);
  let finals_l = Array.to_list finals |> List.filter_map Fun.id in
  let quarantines =
    Array.to_list (Array.mapi (fun i c -> (templates.(i), c)) quarantine_counts)
  in
  let filed_all = Hashtbl.fold (fun s _ acc -> s :: acc) filed [] in
  let report =
    Report.build ~name:spec.Spec.c_name ~spec_digest
      ~templates:(Array.to_list templates) ~total ~finals:finals_l
      ~quarantines ~filed:filed_all
  in
  Journal.append writer (Journal.End { outcome = report.Report.r_outcome });
  Report.write ~path:(report_file dir) report.Report.r_json;
  (* Any pool still held here is healthy by construction: a hang
     replaces it with [None] at the verdict.  Wedged pools stay
     leaked. *)
  (match !owned_pool with
  | Some p -> Parallel.Pool.shutdown p
  | None -> ());
  { r_report = report; r_total = total; r_completed = !completed;
    r_executed = !executed; r_replayed = !replayed;
    r_filed = List.rev !filed_now; r_warnings = warnings }

(* --- entry points ----------------------------------------------------- *)

let start ?runner ?pool ?log ?crash_after ?corpus_dir ~dir spec =
  if Sys.file_exists (journal_file dir) then
    Error
      (Printf.sprintf "%s already contains a campaign journal; use resume" dir)
  else begin
    mkdir_p dir;
    Spec.save ~path:(spec_file dir) spec;
    let writer = Journal.open_writer (journal_file dir) in
    (* Make the creations of spec.json and journal.jsonl durable: the
       appends below fsync the journal's {e contents}, but without a
       directory fsync a power cut could leave the fully-fsync'd file
       missing from the directory altogether. *)
    Journal.fsync_dir dir;
    Fun.protect ~finally:(fun () -> Journal.close writer) (fun () ->
        let jobs = Spec.jobs spec in
        Journal.append writer
          (Journal.Campaign
             { name = spec.Spec.c_name; spec_digest = Spec.digest spec;
               jobs = List.length jobs });
        List.iter
          (fun (j : Spec.job) ->
            Journal.append writer
              (Journal.Scheduled
                 { job = j.j_id; template = j.j_template; seed = j.j_seed }))
          jobs;
        Ok
          (drive ?runner ?pool ?log ?crash_after ?corpus_dir ~dir ~writer ~spec
             ~replay:(empty_replay ()) ~warnings:[] ()))
  end

let resume ?runner ?pool ?log ?crash_after ?corpus_dir ~dir () =
  let* spec = Spec.load (spec_file dir) in
  let* records, warnings, committed = Journal.read (journal_file dir) in
  let* () =
    match records with
    | Journal.Campaign { spec_digest; jobs; _ } :: _ ->
        if not (String.equal spec_digest (Spec.digest spec)) then
          Error
            (Printf.sprintf
               "%s: spec.json does not match the journal's spec digest" dir)
        else if jobs <> List.length (Spec.jobs spec) then
          Error (Printf.sprintf "%s: journal job count disagrees with spec" dir)
        else Ok ()
    | _ -> Error (Printf.sprintf "%s: journal has no campaign header" dir)
  in
  let* replay = replay_of_records records in
  (* [committed] stops at the last newline-terminated record: opening
     with [truncate_at] cuts any torn tail the kill left, so the first
     append starts a fresh line instead of concatenating onto the
     partial one — which would make every later read (a second crash +
     resume, auto-resume from the demo) fail as interior corruption. *)
  let writer = Journal.open_writer ~truncate_at:committed (journal_file dir) in
  Fun.protect ~finally:(fun () -> Journal.close writer) (fun () ->
      Ok
        (drive ?runner ?pool ?log ?crash_after ?corpus_dir ~dir ~writer ~spec
           ~replay ~warnings ()))
