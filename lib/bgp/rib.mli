(** Routing information bases.

    Persistent: every mutation returns a new value, so a checkpoint of a
    router's routing state is a single pointer copy. *)

type source = {
  peer_addr : Ipv4.t;  (** 0.0.0.0 for locally-originated networks *)
  peer_as : int;
  peer_bgp_id : Ipv4.t;
  ebgp : bool;
  igp_metric : int;
}

val local_source : source
(** Source for locally-originated (network statement) routes. *)

type route = { attrs : Attr.t; source : source }

val is_local : route -> bool

type t = private {
  adj_in : route Prefix.Map.t Ipv4.Map.t;  (** keyed by peer address *)
  cands : route Ipv4.Map.t Prefix_trie.t;
      (** [adj_in] transposed: candidate routes per prefix, keyed by
          peer.  Maintained by the mutators below; what makes
          {!candidates} — and hence incremental re-decision — one trie
          walk instead of a fold over every peer's table. *)
  loc : route Prefix.Map.t;  (** selected best per prefix *)
  adj_out : Attr.t Prefix.Map.t Ipv4.Map.t;  (** last advertised, per peer *)
}

val empty : t

val make :
  adj_in:route Prefix.Map.t Ipv4.Map.t ->
  loc:route Prefix.Map.t ->
  adj_out:Attr.t Prefix.Map.t Ipv4.Map.t ->
  t
(** Build a RIB from explicit tables, reconstructing the candidate
    index (for codecs and alternate implementations that assemble the
    record wholesale). *)

(* --- Adj-RIB-In --- *)

val adj_in_set : Ipv4.t -> Prefix.t -> route -> t -> t
val adj_in_del : Ipv4.t -> Prefix.t -> t -> t
val adj_in_get : Ipv4.t -> Prefix.t -> t -> route option
val adj_in_peer : Ipv4.t -> t -> route Prefix.Map.t

val adj_in_update : Ipv4.t -> Prefix.t -> route option -> t -> t * bool
(** [adj_in_update peer prefix route t] sets ([Some]) or deletes
    ([None]) the peer's entry and reports whether the prefix's
    candidate set actually changed.  [false] means the decision process
    can skip the prefix entirely: re-announcements importing to an
    identical route and withdrawals of never-advertised prefixes are
    no-ops. *)

val drop_peer : Ipv4.t -> t -> t
(** Remove a peer's Adj-RIB-In and Adj-RIB-Out (session down). *)

val candidates : Prefix.t -> t -> route list
(** All Adj-RIB-In entries for the prefix, over all peers.  One trie
    walk plus a fold over the (typically small) per-prefix peer map —
    independent of table size and peer count. *)

val has_candidates : Prefix.t -> t -> bool

val prefixes_from_peer : Ipv4.t -> t -> Prefix.t list

(* --- Loc-RIB --- *)

val loc_set : Prefix.t -> route -> t -> t
val loc_del : Prefix.t -> t -> t
val loc_get : Prefix.t -> t -> route option
val loc_prefixes : t -> Prefix.t list
val loc_cardinal : t -> int

(* --- Adj-RIB-Out --- *)

val adj_out_set : Ipv4.t -> Prefix.t -> Attr.t -> t -> t
val adj_out_del : Ipv4.t -> Prefix.t -> t -> t
val adj_out_get : Ipv4.t -> Prefix.t -> t -> Attr.t option
val adj_out_peer : Ipv4.t -> t -> Attr.t Prefix.Map.t

val total_adj_in : t -> int
val pp : Format.formatter -> t -> unit
