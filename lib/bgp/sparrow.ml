(* An independent BGP speaker.  Shares only the wire codec, the policy
   engine and the configuration format with Router — its session
   handling, RIB organization and decision logic are written
   separately. *)

type phase = Down | Greeting | Up

type peer = {
  p_cfg : Config.neighbor;
  mutable p_phase : phase;
  mutable p_sent_open : bool;
  mutable p_got_open : bool;
  mutable p_in : Attr.t Prefix_trie.t;  (* post-import-policy *)
  mutable p_out : Attr.t Prefix_trie.t; (* last advertised *)
  mutable p_hold : Netsim.Engine.timer option;  (* liveness watchdog *)
  mutable p_retry : Netsim.Engine.timer option; (* re-greet loop *)
}

type t = {
  node : int;
  mutable cfg : Config.t;
  net : string Netsim.Network.t;
  eng : Netsim.Engine.t;
  mutable peers : (Ipv4.t * peer) list;
  (* loc: best attrs + the peer it came from (own address for local). *)
  mutable loc : (Attr.t * Ipv4.t) Prefix_trie.t;
  stats : Netsim.Stats.t;
  mutable bugs : Router.bugs;
  liveness : bool;
}

let node t = t.node
let config t = t.cfg
let stats t = t.stats
let address t = Router.addr_of_node t.node

let peer_of t addr = List.assoc_opt addr t.peers

let established_peers t =
  List.filter_map (fun (a, p) -> if p.p_phase = Up then Some a else None) t.peers

let send t dst_addr msg =
  Netsim.Stats.incr t.stats ("tx_" ^ String.lowercase_ascii (Msg.kind msg));
  Netsim.Network.send t.net ~src:t.node ~dst:(Router.node_of_addr dst_addr)
    (Wire.encode msg)

let is_ibgp t (p : peer) = p.p_cfg.Config.remote_as = t.cfg.Config.asn

(* ------------------------------------------------------------------ *)
(* Decision process (independent implementation, same RFC semantics)   *)
(* ------------------------------------------------------------------ *)

(* Candidates are (attrs, via) where via = own address for the local
   route.  The comparison chain is written against RFC 4271 9.1.2.2
   directly. *)
let better t (a_attrs, a_via) (b_attrs, b_via) =
  let local via = Ipv4.equal via (address t) in
  let lp x = Attr.effective_local_pref x in
  let plen (x : Attr.t) = As_path.length x.Attr.as_path in
  let ocode (x : Attr.t) = Attr.origin_code x.Attr.origin in
  let med (x : Attr.t) = Option.value x.Attr.med ~default:0 in
  let neighbor (x : Attr.t) = As_path.neighbor_as x.Attr.as_path in
  if local a_via <> local b_via then local a_via
  else if lp a_attrs <> lp b_attrs then lp a_attrs > lp b_attrs
  else if plen a_attrs <> plen b_attrs then plen a_attrs < plen b_attrs
  else if ocode a_attrs <> ocode b_attrs then ocode a_attrs < ocode b_attrs
  else if
    (t.cfg.Config.always_compare_med
    || (neighbor a_attrs <> None && neighbor a_attrs = neighbor b_attrs))
    && med a_attrs <> med b_attrs
  then med a_attrs < med b_attrs
  else Ipv4.compare a_via b_via < 0

let acceptable t (attrs : Attr.t) =
  t.bugs.Router.skip_loop_check
  || not (As_path.contains t.cfg.Config.asn attrs.Attr.as_path)

let candidates_for t prefix =
  let local =
    if List.exists (Prefix.equal prefix) t.cfg.Config.networks then
      [ (Attr.make ~origin:Attr.Igp ~next_hop:(address t) (), address t) ]
    else []
  in
  let learned =
    List.filter_map
      (fun (addr, p) ->
        match Prefix_trie.find prefix p.p_in with
        | Some attrs when acceptable t attrs -> Some (attrs, addr)
        | Some _ | None -> None)
      t.peers
  in
  local @ learned

let select t prefix =
  match candidates_for t prefix with
  | [] -> None
  | first :: rest ->
      Some (List.fold_left (fun best c -> if better t c best then c else best) first rest)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let export_attrs t (p : peer) prefix (attrs, via) =
  if Ipv4.equal via p.p_cfg.Config.addr then None
  else if Attr.has_community Community.no_advertise attrs then None
  else
    let ebgp = not (is_ibgp t p) in
    if ebgp && Attr.has_community Community.no_export attrs then None
    else
      let attrs =
        if ebgp then { attrs with Attr.local_pref = None; med = None } else attrs
      in
      match
        Policy.apply
          ?site:(Clause_cov.site ~node:t.node p.p_cfg.Config.export_map)
          (Config.export_policy t.cfg p.p_cfg)
          prefix attrs
      with
      | None -> None
      | Some attrs ->
          if not ebgp then Some attrs
          else
            Some
              { attrs with
                Attr.as_path = As_path.prepend t.cfg.Config.asn attrs.Attr.as_path;
                next_hop = address t }

(* One UPDATE per prefix: Sparrow never batches. *)
let push_export t (_addr, p) prefix =
  if p.p_phase = Up then begin
    let wanted =
      match Prefix_trie.find prefix t.loc with
      | Some chosen -> export_attrs t p prefix chosen
      | None -> None
    in
    let current = Prefix_trie.find prefix p.p_out in
    match (wanted, current) with
    | None, None -> ()
    | None, Some _ ->
        p.p_out <- Prefix_trie.remove prefix p.p_out;
        send t p.p_cfg.Config.addr (Msg.update ~withdrawn:[ prefix ] ())
    | Some a, Some b when Attr.equal a b -> ()
    | Some a, (Some _ | None) ->
        p.p_out <- Prefix_trie.add prefix a p.p_out;
        send t p.p_cfg.Config.addr (Msg.update ~attrs:(Some a) ~nlri:[ prefix ] ())
  end

let reselect t prefix =
  let before = Prefix_trie.find prefix t.loc in
  let after = select t prefix in
  if before <> after then begin
    (match after with
    | Some chosen -> t.loc <- Prefix_trie.add prefix chosen t.loc
    | None -> t.loc <- Prefix_trie.remove prefix t.loc);
    List.iter (fun entry -> push_export t entry prefix) t.peers
  end

let full_table_to t addr =
  match peer_of t addr with
  | None -> ()
  | Some p ->
      Prefix_trie.fold (fun prefix _ () -> push_export t (addr, p) prefix) t.loc ()

(* ------------------------------------------------------------------ *)
(* Import                                                              *)
(* ------------------------------------------------------------------ *)

let crash_check t (attrs : Attr.t) =
  match t.bugs.Router.crash_community with
  | Some c when Attr.has_community c attrs ->
      raise
        (Router.Crash
           (Printf.sprintf "sparrow community module crash on %s" (Community.to_string c)))
  | Some _ | None -> ()

let handle_update t (p : peer) (u : Msg.update) =
  Netsim.Stats.incr t.stats "rx_update";
  List.iter
    (fun prefix ->
      p.p_in <- Prefix_trie.remove prefix p.p_in;
      reselect t prefix)
    u.Msg.withdrawn;
  match (u.Msg.attrs, u.Msg.nlri) with
  | Some attrs, (_ :: _ as nlri) ->
      crash_check t attrs;
      let ebgp = not (is_ibgp t p) in
      let attrs = if ebgp then { attrs with Attr.local_pref = None } else attrs in
      List.iter
        (fun prefix ->
          (match
             Policy.apply
               ?site:(Clause_cov.site ~node:t.node p.p_cfg.Config.import_map)
               (Config.import_policy t.cfg p.p_cfg)
               prefix attrs
           with
          | Some imported -> p.p_in <- Prefix_trie.add prefix imported p.p_in
          | None -> p.p_in <- Prefix_trie.remove prefix p.p_in);
          reselect t prefix)
        nlri
  | _, _ -> ()

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let open_msg t =
  Msg.Open
    { version = 4; my_as = t.cfg.Config.asn; hold_time = t.cfg.Config.hold_time;
      bgp_id = t.cfg.Config.router_id }

let cancel_opt = function
  | Some tm -> Netsim.Engine.cancel tm
  | None -> ()

(* Hold watchdog, re-greet loop and the session phases are mutually
   recursive: greeting arms the watchdog, the watchdog tears the session
   down, teardown starts the re-greet loop, the loop greets again. *)
let rec arm_hold t (p : peer) =
  if t.liveness && t.cfg.Config.hold_time > 0 then begin
    cancel_opt p.p_hold;
    p.p_hold <-
      Some
        (Netsim.Engine.schedule t.eng
           ~after:(Netsim.Time.span_sec (float_of_int t.cfg.Config.hold_time))
           (fun () ->
             if p.p_phase <> Down then begin
               Netsim.Stats.incr t.stats "hold_expired";
               session_down t p.p_cfg.Config.addr p
             end))
  end

and greet t (p : peer) =
  if not p.p_sent_open then begin
    p.p_sent_open <- true;
    p.p_phase <- Greeting;
    send t p.p_cfg.Config.addr (open_msg t);
    (* A peer that never answers must not leave us greeting forever. *)
    arm_hold t p
  end

and session_up t addr (p : peer) =
  if p.p_phase <> Up then begin
    p.p_phase <- Up;
    cancel_opt p.p_retry;
    p.p_retry <- None;
    Netsim.Stats.incr t.stats "session_up";
    full_table_to t addr;
    (* Periodic keepalives so FSM-based peers do not expire their hold
       timers. *)
    if t.liveness then begin
      let rec tick () =
        if p.p_phase = Up then begin
          send t addr Msg.keepalive;
          ignore (Netsim.Engine.schedule t.eng ~after:(Netsim.Time.span_sec 20.) tick)
        end
      in
      ignore (Netsim.Engine.schedule t.eng ~after:(Netsim.Time.span_sec 20.) tick)
    end
  end

and session_down t addr (p : peer) =
  Netsim.Stats.incr t.stats "session_down";
  p.p_phase <- Down;
  p.p_sent_open <- false;
  p.p_got_open <- false;
  cancel_opt p.p_hold;
  p.p_hold <- None;
  let lost = Prefix_trie.fold (fun prefix _ acc -> prefix :: acc) p.p_in [] in
  p.p_in <- Prefix_trie.empty;
  p.p_out <- Prefix_trie.empty;
  List.iter (reselect t) lost;
  (* Reactive retry: keep re-greeting until the peer answers (it may be
     down for a while).  One loop per peer; a fresh session_down resets
     it. *)
  if t.liveness then begin
    cancel_opt p.p_retry;
    let rec retry () =
      if p.p_phase <> Up then begin
        p.p_sent_open <- false;
        p.p_got_open <- false;
        greet t p;
        p.p_retry <-
          Some (Netsim.Engine.schedule t.eng ~after:(Netsim.Time.span_sec 15.) retry)
      end
      else p.p_retry <- None
    in
    p.p_retry <-
      Some (Netsim.Engine.schedule t.eng ~after:(Netsim.Time.span_sec 15.) retry)
  end;
  ignore addr

let handle_msg t addr (p : peer) = function
  | Msg.Open o ->
      if o.Msg.my_as <> p.p_cfg.Config.remote_as then begin
        send t addr
          (Msg.Notification
             { code = Msg.Error.open_message; subcode = Msg.Error.bad_peer_as; data = "" });
        session_down t addr p
      end
      else begin
        p.p_got_open <- true;
        greet t p;
        send t addr Msg.keepalive
      end
  | Msg.Keepalive -> if p.p_sent_open && p.p_got_open then session_up t addr p
  | Msg.Update u ->
      (* Lenient: Sparrow processes UPDATEs as soon as the greeting
         completed, and silently ignores truly early ones. *)
      if p.p_phase <> Down then handle_update t p u
  | Msg.Notification _ -> session_down t addr p

let process_raw t ~from_node raw =
  let addr = Router.addr_of_node from_node in
  match peer_of t addr with
  | None -> Netsim.Stats.incr t.stats "rx_unknown_peer"
  | Some p -> (
      let crash_check (e : Wire.error) =
        if Wire.is_codec_crash e then raise (Router.Crash e.Wire.reason);
        if t.bugs.Router.fragile_decode then
          raise (Router.Crash (Printf.sprintf "fragile decode: %s" e.Wire.reason))
      in
      let reject (e : Wire.error) =
        Netsim.Stats.incr t.stats "rx_malformed";
        send t addr
          (Msg.Notification { code = e.Wire.code; subcode = e.Wire.subcode; data = "" });
        session_down t addr p
      in
      match Wire.decode_graceful raw with
      | Wire.Msg msg ->
          Netsim.Stats.incr t.stats ("rx_" ^ String.lowercase_ascii (Msg.kind msg));
          handle_msg t addr p msg;
          (* Any message from a live peer resets the hold watchdog. *)
          if p.p_phase <> Down then arm_hold t p
      | Wire.Treat_as_withdraw { withdrawn; nlri; err } ->
          crash_check err;
          if p.p_phase <> Down then begin
            (* RFC 7606, same as Router: unusable attributes, known
               prefixes — withdraw them all, keep the session. *)
            Netsim.Stats.incr t.stats "rx_treat_as_withdraw";
            handle_update t p
              { Msg.withdrawn = withdrawn @ nlri; attrs = None; nlri = [] };
            arm_hold t p
          end
          else reject err
      | Wire.Reset err ->
          crash_check err;
          reject err)

let inject_update t ~from u =
  match peer_of t from with
  | None -> invalid_arg "Sparrow.inject_update: unknown peer"
  | Some p -> handle_update t p u

let start t = List.iter (fun (_, p) -> greet t p) t.peers

let create ?(liveness_timers = true) ?(bugs = Router.no_bugs) ~net ~node cfg =
  let t =
    { node; cfg; net; eng = Netsim.Network.engine net;
      peers =
        List.map
          (fun (n : Config.neighbor) ->
            ( n.Config.addr,
              { p_cfg = n; p_phase = Down; p_sent_open = false; p_got_open = false;
                p_in = Prefix_trie.empty; p_out = Prefix_trie.empty;
                p_hold = None; p_retry = None } ))
          cfg.Config.neighbors;
      loc = Prefix_trie.empty;
      stats = Netsim.Stats.create ();
      bugs;
      liveness = liveness_timers }
  in
  Netsim.Network.set_handler net node (fun ~src raw -> process_raw t ~from_node:src raw);
  List.iter (fun prefix -> reselect t prefix) cfg.Config.networks;
  t

(* ------------------------------------------------------------------ *)
(* Rib view and speaker wrapping                                       *)
(* ------------------------------------------------------------------ *)

let source_of t via =
  if Ipv4.equal via (address t) then Rib.local_source
  else
    let remote_as =
      match peer_of t via with
      | Some p -> p.p_cfg.Config.remote_as
      | None -> 0
    in
    { Rib.peer_addr = via; peer_as = remote_as; peer_bgp_id = via;
      ebgp = remote_as <> t.cfg.Config.asn; igp_metric = 0 }

let rib_view t =
  let adj_in =
    List.fold_left
      (fun acc (addr, p) ->
        let pm =
          Prefix_trie.fold
            (fun prefix attrs pm ->
              Prefix.Map.add prefix
                { Rib.attrs; source = source_of t addr }
                pm)
            p.p_in Prefix.Map.empty
        in
        if Prefix.Map.is_empty pm then acc else Ipv4.Map.add addr pm acc)
      Ipv4.Map.empty t.peers
  in
  let loc =
    Prefix_trie.fold
      (fun prefix (attrs, via) acc ->
        Prefix.Map.add prefix { Rib.attrs; source = source_of t via } acc)
      t.loc Prefix.Map.empty
  in
  let adj_out =
    List.fold_left
      (fun acc (addr, p) ->
        let pm =
          Prefix_trie.fold
            (fun prefix attrs pm -> Prefix.Map.add prefix attrs pm)
            p.p_out Prefix.Map.empty
        in
        if Prefix.Map.is_empty pm then acc else Ipv4.Map.add addr pm acc)
      Ipv4.Map.empty t.peers
  in
  Rib.make ~adj_in ~loc ~adj_out

let restore_view t ~rib ~established =
  t.loc <- Prefix_trie.empty;
  Prefix.Map.iter
    (fun prefix (r : Rib.route) ->
      t.loc <- Prefix_trie.add prefix (r.Rib.attrs, r.Rib.source.Rib.peer_addr) t.loc)
    rib.Rib.loc;
  List.iter
    (fun (addr, p) ->
      let of_peer m =
        Option.value (Ipv4.Map.find_opt addr m) ~default:Prefix.Map.empty
      in
      p.p_in <-
        Prefix.Map.fold
          (fun prefix (r : Rib.route) acc -> Prefix_trie.add prefix r.Rib.attrs acc)
          (of_peer rib.Rib.adj_in) Prefix_trie.empty;
      p.p_out <-
        Prefix.Map.fold
          (fun prefix attrs acc -> Prefix_trie.add prefix attrs acc)
          (of_peer rib.Rib.adj_out) Prefix_trie.empty;
      let up = List.exists (Ipv4.equal addr) established in
      p.p_phase <- (if up then Up else Down);
      p.p_sent_open <- up;
      p.p_got_open <- up)
    t.peers

type image = {
  im_cfg : Config.t;
  im_loc : (Attr.t * Ipv4.t) Prefix_trie.t;
  im_peers : (Ipv4.t * phase * Attr.t Prefix_trie.t * Attr.t Prefix_trie.t) list;
}

let capture_image t =
  { im_cfg = t.cfg;
    im_loc = t.loc;
    im_peers =
      List.map (fun (a, p) -> (a, p.p_phase, p.p_in, p.p_out)) t.peers }

let restore_image t image =
  t.cfg <- image.im_cfg;
  t.loc <- image.im_loc;
  List.iter
    (fun (a, phase, p_in, p_out) ->
      match peer_of t a with
      | Some p ->
          p.p_phase <- phase;
          p.p_sent_open <- phase <> Down;
          p.p_got_open <- phase <> Down;
          p.p_in <- p_in;
          p.p_out <- p_out
      | None -> ())
    image.im_peers

let route_count t =
  Prefix_trie.cardinal t.loc
  + List.fold_left (fun acc (_, p) -> acc + Prefix_trie.cardinal p.p_in) 0 t.peers

let rec speaker t =
  { Speaker.sp_node = t.node;
    sp_impl = "sparrow";
    sp_config = (fun () -> t.cfg);
    sp_set_config =
      (fun cfg ->
        t.cfg <- cfg;
        List.iter (reselect t) cfg.Config.networks);
    sp_rib = (fun () -> rib_view t);
    sp_bugs = (fun () -> t.bugs);
    sp_set_bugs = (fun b -> t.bugs <- b);
    sp_start = (fun () -> start t);
    sp_established = (fun () -> established_peers t);
    sp_process_raw = (fun ~from_node raw -> process_raw t ~from_node raw);
    sp_inject_update = (fun ~from u -> inject_update t ~from u);
    sp_stats = (fun () -> t.stats);
    sp_capture = (fun () -> capture t) }

and capture t =
  let image = capture_image t in
  { Speaker.cap_node = t.node;
    cap_impl = "sparrow";
    cap_config = t.cfg;
    cap_route_count = lazy (route_count t);
    cap_respawn =
      (fun ~net ~bugs ->
        let clone = create ~liveness_timers:false ~bugs ~net ~node:t.node t.cfg in
        restore_image clone image;
        speaker clone) }
