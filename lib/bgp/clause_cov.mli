(** Clause-coverage registry for policy evaluation.

    A coverage {e point} is one observable event of the policy
    interpreter on one router: "match clause [idx] of entry [seq] in
    map [map] on router [node] evaluated to [outcome]", "entry [seq]
    decided a route", "set clause [idx] was applied", or "the map fell
    through to the default deny".  Points have stable textual ids and
    are backed by {!Telemetry.Metrics} counters
    ([confuzz.cov.<id>]), so hit counts survive into metric snapshots
    and telemetry reports.

    The {e universe} is seeded from the deployed configurations
    ({!register_config} walks every route map referenced by a neighbor
    — unreferenced maps are dead text, see {!Config.lint}) and grows
    when evaluation reaches points outside it (mutated configs).
    Coverage = registered points with a nonzero hit count.

    Enabling installs the process-global {!Policy.set_cov_observer};
    while disabled, policy evaluation takes the uninstrumented path and
    is bit-identical to a build without this module. *)

type what =
  | Wmatch of int * bool  (** match clause index, outcome *)
  | Waction
  | Wset of int
  | Wfall  (** per-map default-deny fallthrough; [pt_seq] = -1 *)

type point = { pt_node : int; pt_map : string; pt_seq : int; pt_what : what }

val id_of : point -> string
(** Stable id, e.g. ["n4/FROM-PEER/e10/m0=T"]. *)

val compare_point : point -> point -> int

val enable : unit -> unit
(** Install the observer.  Idempotent. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Clear the universe and zero all hit counters — a fresh campaign.
    Does not change enablement. *)

val register_config : node:int -> Config.t -> unit
(** Register every coverage point of the configuration's referenced
    route maps (both outcomes of every match clause, the action and
    set points of every entry, and one fallthrough point per map). *)

val universe_size : unit -> int
val covered : unit -> int
(** Number of registered points with at least one hit. *)

val hits : point -> int
val uncovered : unit -> point list
(** Registered points never hit, sorted by {!compare_point}. *)

val snapshot : unit -> (point * int) list
(** Every registered point with its hit count, sorted. *)

val site : node:int -> string option -> Policy.cov_site option
(** The [?site] argument for a policy evaluation: [Some] only when
    coverage is enabled and the neighbor actually names a map (an
    implicit accept-all has no clauses to cover). *)
