type step =
  | Local_origin
  | Local_pref
  | As_path_length
  | Origin
  | Med
  | Ebgp_over_ibgp
  | Igp_metric
  | Router_id
  | Peer_addr
  | Equal

let step_to_string = function
  | Local_origin -> "local-origin"
  | Local_pref -> "local-pref"
  | As_path_length -> "as-path-length"
  | Origin -> "origin"
  | Med -> "med"
  | Ebgp_over_ibgp -> "ebgp-over-ibgp"
  | Igp_metric -> "igp-metric"
  | Router_id -> "router-id"
  | Peer_addr -> "peer-addr"
  | Equal -> "equal"

type config = { always_compare_med : bool }

let default_config = { always_compare_med = false }

let med_value (r : Rib.route) = Option.value r.attrs.Attr.med ~default:0

let same_neighbor_as (a : Rib.route) (b : Rib.route) =
  match
    ( As_path.neighbor_as a.attrs.Attr.as_path,
      As_path.neighbor_as b.attrs.Attr.as_path )
  with
  | Some x, Some y -> x = y
  | _ -> false

let compare_routes cfg (a : Rib.route) (b : Rib.route) =
  let ( >>= ) (c, step) k = if c <> 0 then (c, step) else k () in
  (* Each step yields (cmp, step); negative prefers [a].  Locally
     originated (network statement) routes win outright — the
     administrative-weight rule every real implementation applies. *)
  (Bool.compare (Rib.is_local b) (Rib.is_local a), Local_origin)
  >>= fun () ->
  ( Int.compare
      (Attr.effective_local_pref b.attrs)
      (Attr.effective_local_pref a.attrs),
    Local_pref )
  >>= fun () ->
  ( Int.compare
      (As_path.length a.attrs.Attr.as_path)
      (As_path.length b.attrs.Attr.as_path),
    As_path_length )
  >>= fun () ->
  ( Int.compare (Attr.origin_code a.attrs.Attr.origin) (Attr.origin_code b.attrs.Attr.origin),
    Origin )
  >>= fun () ->
  (if cfg.always_compare_med || same_neighbor_as a b then
     (Int.compare (med_value a) (med_value b), Med)
   else (0, Med))
  >>= fun () ->
  (Bool.compare b.source.Rib.ebgp a.source.Rib.ebgp, Ebgp_over_ibgp) >>= fun () ->
  (Int.compare a.source.Rib.igp_metric b.source.Rib.igp_metric, Igp_metric)
  >>= fun () ->
  (Ipv4.compare a.source.Rib.peer_bgp_id b.source.Rib.peer_bgp_id, Router_id)
  >>= fun () ->
  (Ipv4.compare a.source.Rib.peer_addr b.source.Rib.peer_addr, Peer_addr)
  >>= fun () -> (0, Equal)

let best cfg = function
  | [] -> None
  | first :: rest ->
      let pick acc r =
        let c, _ = compare_routes cfg acc r in
        if c <= 0 then acc else r
      in
      Some (List.fold_left pick first rest)

(* [select] is [best] plus the seeded MED-inversion bug: with
   [invert_med] the sign of the MED comparison flips, so selection
   prefers the *worst* exit.  Routers and the full-recompute oracle in
   the test suite share this single entry point, which is what lets a
   property test pin incremental re-decision against a from-scratch
   recompute. *)
let select cfg ?(invert_med = false) = function
  | [] -> None
  | candidates when not invert_med -> best cfg candidates
  | first :: rest ->
      let pick acc r =
        let c, step = compare_routes cfg acc r in
        let c = if step = Med then -c else c in
        if c <= 0 then acc else r
      in
      Some (List.fold_left pick first rest)

let acceptable ~local_as (r : Rib.route) =
  (not (As_path.contains local_as r.attrs.Attr.as_path))
  && not (Ipv4.is_martian r.attrs.Attr.next_hop && not (Rib.is_local r))
