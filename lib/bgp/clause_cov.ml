type what =
  | Wmatch of int * bool
  | Waction
  | Wset of int
  | Wfall

type point = { pt_node : int; pt_map : string; pt_seq : int; pt_what : what }

let what_rank = function
  | Wmatch _ -> 0
  | Waction -> 1
  | Wset _ -> 2
  | Wfall -> 3

let compare_what a b =
  match (a, b) with
  | Wmatch (i, oi), Wmatch (j, oj) ->
      let c = Int.compare i j in
      if c <> 0 then c else Bool.compare oi oj
  | Wset i, Wset j -> Int.compare i j
  | _ -> Int.compare (what_rank a) (what_rank b)

let compare_point a b =
  let c = Int.compare a.pt_node b.pt_node in
  if c <> 0 then c
  else
    let c = String.compare a.pt_map b.pt_map in
    if c <> 0 then c
    else
      let c = Int.compare a.pt_seq b.pt_seq in
      if c <> 0 then c else compare_what a.pt_what b.pt_what

let id_of p =
  let what =
    match p.pt_what with
    | Wmatch (i, o) -> Printf.sprintf "m%d=%c" i (if o then 'T' else 'F')
    | Waction -> "act"
    | Wset i -> Printf.sprintf "s%d" i
    | Wfall -> "fall"
  in
  Printf.sprintf "n%d/%s/e%d/%s" p.pt_node p.pt_map p.pt_seq what

(* Universe and counter cache.  The mutex guards the hashtables only;
   hit counts themselves are Metrics counters (atomic) so the observer
   takes the lock once per new point, not per hit. *)
let lock = Mutex.create ()
let universe : (string, point) Hashtbl.t = Hashtbl.create 512
let counters : (string, Telemetry.Metrics.counter) Hashtbl.t = Hashtbl.create 512

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter_of id =
  match Hashtbl.find_opt counters id with
  | Some c -> c
  | None ->
      let c = Telemetry.Metrics.counter ("confuzz.cov." ^ id) in
      Hashtbl.add counters id c;
      c

let add_point p =
  let id = id_of p in
  if not (Hashtbl.mem universe id) then Hashtbl.add universe id p;
  counter_of id

let on = Atomic.make false
let enabled () = Atomic.get on

let record site ~seq pt =
  let what =
    match (pt : Policy.cov_point) with
    | Policy.Cov_match { idx; outcome } -> Wmatch (idx, outcome)
    | Policy.Cov_action -> Waction
    | Policy.Cov_set i -> Wset i
    | Policy.Cov_fallthrough -> Wfall
  in
  let p =
    { pt_node = site.Policy.cs_node;
      pt_map = site.Policy.cs_map;
      pt_seq = seq;
      pt_what = what }
  in
  let c = with_lock (fun () -> add_point p) in
  Telemetry.Metrics.incr c

let enable () =
  Atomic.set on true;
  Policy.set_cov_observer (Some record)

let disable () =
  Atomic.set on false;
  Policy.set_cov_observer None

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Telemetry.Metrics.reset c) counters;
      Hashtbl.reset universe)

let register_config ~node (cfg : Config.t) =
  with_lock (fun () ->
      List.iter
        (fun (name, map) ->
          let pt seq what = { pt_node = node; pt_map = name; pt_seq = seq; pt_what = what } in
          List.iter
            (fun (e : Policy.entry) ->
              List.iteri
                (fun i _ ->
                  ignore (add_point (pt e.Policy.seq (Wmatch (i, true))));
                  ignore (add_point (pt e.Policy.seq (Wmatch (i, false)))))
                e.Policy.matches;
              ignore (add_point (pt e.Policy.seq Waction));
              List.iteri
                (fun i _ -> ignore (add_point (pt e.Policy.seq (Wset i))))
                e.Policy.sets)
            map;
          ignore (add_point (pt (-1) Wfall)))
        (Config.referenced_maps cfg))

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun id p acc -> (p, Telemetry.Metrics.value (counter_of id)) :: acc)
        universe [])
  |> List.sort (fun (a, _) (b, _) -> compare_point a b)

let universe_size () = with_lock (fun () -> Hashtbl.length universe)

let covered () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun id _ acc ->
          if Telemetry.Metrics.value (counter_of id) > 0 then acc + 1 else acc)
        universe 0)

let hits p =
  let id = id_of p in
  with_lock (fun () ->
      if Hashtbl.mem universe id then Telemetry.Metrics.value (counter_of id) else 0)

let uncovered () =
  snapshot () |> List.filter_map (fun (p, n) -> if n = 0 then Some p else None)

let site ~node map =
  match map with
  | Some m when enabled () -> Some { Policy.cs_node = node; cs_map = m }
  | _ -> None
