type prefix_rule = { rule_prefix : Prefix.t; ge : int option; le : int option }

let prefix_rule ?ge ?le p =
  let check = function
    | Some n when n < Prefix.len p || n > 32 ->
        invalid_arg "Policy.prefix_rule: bound out of range"
    | Some _ | None -> ()
  in
  check ge;
  check le;
  { rule_prefix = p; ge; le }

(* Cisco prefix-list semantics: no bound = exact length; [ge] alone
   opens the range up to /32; [le] alone starts it at the rule's own
   length. *)
let prefix_rule_matches r q =
  let base = Prefix.len r.rule_prefix in
  let lo = Option.value r.ge ~default:base in
  let hi =
    match (r.le, r.ge) with
    | Some le, _ -> le
    | None, Some _ -> 32
    | None, None -> base
  in
  Prefix.subsumes r.rule_prefix q && Prefix.len q >= lo && Prefix.len q <= hi

type as_path_test =
  | Path_contains of int
  | Path_originated_by of int
  | Path_neighbor_is of int
  | Path_length_at_most of int
  | Path_length_at_least of int

type match_clause =
  | Match_prefix of prefix_rule list
  | Match_as_path of as_path_test
  | Match_community of Community.t
  | Match_origin of Attr.origin
  | Match_next_hop of Ipv4.t

type set_clause =
  | Set_local_pref of int
  | Set_med of int option
  | Set_origin of Attr.origin
  | Add_community of Community.t
  | Del_community of Community.t
  | Prepend_as of int * int
  | Set_next_hop of Ipv4.t

type action = Permit | Deny

type entry = {
  seq : int;
  action : action;
  matches : match_clause list;
  sets : set_clause list;
}

type t = entry list

let entry ?(matches = []) ?(sets = []) seq action = { seq; action; matches; sets }
let accept_all = [ entry 65535 Permit ]
let deny_all = []

let normalize t = List.sort (fun a b -> Int.compare a.seq b.seq) t

let path_test test path =
  match test with
  | Path_contains asn -> As_path.contains asn path
  | Path_originated_by asn -> As_path.origin_as path = Some asn
  | Path_neighbor_is asn -> As_path.neighbor_as path = Some asn
  | Path_length_at_most n -> As_path.length path <= n
  | Path_length_at_least n -> As_path.length path >= n

let matches_route clause prefix (attrs : Attr.t) =
  match clause with
  | Match_prefix rules -> List.exists (fun r -> prefix_rule_matches r prefix) rules
  | Match_as_path test -> path_test test attrs.as_path
  | Match_community c -> Attr.has_community c attrs
  | Match_origin o -> attrs.origin = o
  | Match_next_hop nh -> Ipv4.equal attrs.next_hop nh

let apply_set clause (attrs : Attr.t) =
  match clause with
  | Set_local_pref v -> Attr.with_local_pref v attrs
  | Set_med v -> Attr.with_med v attrs
  | Set_origin o -> { attrs with origin = o }
  | Add_community c -> Attr.add_community c attrs
  | Del_community c -> Attr.remove_community c attrs
  | Prepend_as (asn, n) ->
      { attrs with as_path = As_path.prepend_n asn n attrs.as_path }
  | Set_next_hop nh -> { attrs with next_hop = nh }

(* --- clause coverage ------------------------------------------------ *)

type cov_site = { cs_node : int; cs_map : string }

type cov_point =
  | Cov_match of { idx : int; outcome : bool }
  | Cov_action
  | Cov_set of int
  | Cov_fallthrough

type cov_observer = cov_site -> seq:int -> cov_point -> unit

let observer : cov_observer option Atomic.t = Atomic.make None
let set_cov_observer f = Atomic.set observer f
let cov_on () = Atomic.get observer <> None

let apply_plain t prefix attrs =
  let rec go = function
    | [] -> None
    | e :: rest ->
        if List.for_all (fun m -> matches_route m prefix attrs) e.matches then
          match e.action with
          | Deny -> None
          | Permit -> Some (List.fold_left (fun a s -> apply_set s a) attrs e.sets)
        else go rest
  in
  go t

(* Same evaluation order and short-circuiting as [apply_plain]: a match
   clause after a failing one is never evaluated, so a shadowed clause
   never records a hit. *)
let apply_observed obs t prefix attrs =
  let rec go = function
    | [] ->
        obs ~seq:(-1) Cov_fallthrough;
        None
    | e :: rest ->
        let rec all i = function
          | [] -> true
          | m :: ms ->
              let r = matches_route m prefix attrs in
              obs ~seq:e.seq (Cov_match { idx = i; outcome = r });
              r && all (i + 1) ms
        in
        if all 0 e.matches then begin
          obs ~seq:e.seq Cov_action;
          match e.action with
          | Deny -> None
          | Permit ->
              let _, attrs =
                List.fold_left
                  (fun (i, a) s ->
                    obs ~seq:e.seq (Cov_set i);
                    (i + 1, apply_set s a))
                  (0, attrs) e.sets
              in
              Some attrs
        end
        else go rest
  in
  go t

(* --- route tracing -------------------------------------------------- *)

type trace_observer = cov_site -> Prefix.t -> Attr.t -> Attr.t option -> unit

let tracer : trace_observer option Atomic.t = Atomic.make None
let set_trace_observer f = Atomic.set tracer f

let apply ?site t prefix attrs =
  let result =
    match site with
    | None -> apply_plain t prefix attrs
    | Some s -> (
        match Atomic.get observer with
        | None -> apply_plain t prefix attrs
        | Some f -> apply_observed (fun ~seq pt -> f s ~seq pt) t prefix attrs)
  in
  (match site with
  | None -> ()
  | Some s -> (
      match Atomic.get tracer with
      | None -> ()
      | Some f -> f s prefix attrs result));
  result

(* --- constant symbolization ----------------------------------------- *)

type const_slot =
  | S_action
  | S_local_pref of int
  | S_med of int
  | S_match_ge of int * int
  | S_match_le of int * int
  | S_match_community of int
  | S_add_community of int

let slot_id = function
  | S_action -> "action"
  | S_local_pref i -> Printf.sprintf "s%d.lp" i
  | S_med i -> Printf.sprintf "s%d.med" i
  | S_match_ge (i, j) -> Printf.sprintf "m%d.r%d.ge" i j
  | S_match_le (i, j) -> Printf.sprintf "m%d.r%d.le" i j
  | S_match_community i -> Printf.sprintf "m%d.comm" i
  | S_add_community i -> Printf.sprintf "s%d.comm" i

let int_of_action = function Permit -> 1 | Deny -> 0
let action_of_int v = if v <> 0 then Permit else Deny

let entry_slots e =
  let slots = ref [] in
  let add s v = slots := (s, v) :: !slots in
  add S_action (int_of_action e.action);
  List.iteri
    (fun i m ->
      match m with
      | Match_prefix rules ->
          List.iteri
            (fun j r ->
              (match r.ge with
              | Some g -> add (S_match_ge (i, j)) g
              | None -> ());
              match r.le with
              | Some l -> add (S_match_le (i, j)) l
              | None -> ())
            rules
      | Match_community c -> add (S_match_community i) (Community.to_int c)
      | Match_as_path _ | Match_origin _ | Match_next_hop _ -> ())
    e.matches;
  List.iteri
    (fun i s ->
      match s with
      | Set_local_pref v -> add (S_local_pref i) v
      | Set_med (Some v) -> add (S_med i) v
      | Add_community c -> add (S_add_community i) (Community.to_int c)
      | Set_med None | Set_origin _ | Del_community _ | Prepend_as _
      | Set_next_hop _ ->
          ())
    e.sets;
  List.rev !slots

let rebuild_entry e subst =
  let action = action_of_int (subst S_action (int_of_action e.action)) in
  let matches =
    List.mapi
      (fun i m ->
        match m with
        | Match_prefix rules ->
            Match_prefix
              (List.mapi
                 (fun j r ->
                   {
                     r with
                     ge = Option.map (fun g -> subst (S_match_ge (i, j)) g) r.ge;
                     le = Option.map (fun l -> subst (S_match_le (i, j)) l) r.le;
                   })
                 rules)
        | Match_community c ->
            Match_community
              (Community.of_int32_exn
                 (subst (S_match_community i) (Community.to_int c)))
        | (Match_as_path _ | Match_origin _ | Match_next_hop _) as m -> m)
      e.matches
  in
  let sets =
    List.mapi
      (fun i s ->
        match s with
        | Set_local_pref v -> Set_local_pref (subst (S_local_pref i) v)
        | Set_med (Some v) -> Set_med (Some (subst (S_med i) v))
        | Add_community c ->
            Add_community
              (Community.of_int32_exn (subst (S_add_community i) (Community.to_int c)))
        | ( Set_med None | Set_origin _ | Del_community _ | Prepend_as _
          | Set_next_hop _ ) as s ->
            s)
      e.sets
  in
  { e with action; matches; sets }

(* [apply] decides on the FIRST list-order entry with a given seq (maps
   are not normalized on the hot path), so symbolization targets that
   same entry: rebuild substitutes into the first occurrence only. *)
let symbolize ~seq t =
  match List.find_opt (fun e -> e.seq = seq) t with
  | None -> None
  | Some e ->
      let rebuild subst =
        let replaced = ref false in
        List.map
          (fun e' ->
            if (not !replaced) && e'.seq = seq then begin
              replaced := true;
              rebuild_entry e' subst
            end
            else e')
          t
      in
      Some (entry_slots e, rebuild)

let pp_action ppf = function
  | Permit -> Format.pp_print_string ppf "permit"
  | Deny -> Format.pp_print_string ppf "deny"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "entry %d %a (%d matches, %d sets)@ " e.seq pp_action
        e.action (List.length e.matches) (List.length e.sets))
    t;
  Format.fprintf ppf "@]"
