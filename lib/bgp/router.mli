(** A BGP router bound to a simulator node.

    Stands in for BIRD: wire-encoded messages arrive from the network,
    are decoded, drive the per-peer session FSM, and UPDATEs flow
    through import policy → Adj-RIB-In → decision process → Loc-RIB →
    export policy → Adj-RIB-Out.

    The routing state ([state]) is a persistent value: checkpointing a
    router is reading one field.  Timers live outside the state and are
    re-derived, which is what makes checkpoints "lightweight". *)

type t

type state = {
  rib : Rib.t;
  sessions : Fsm.t Ipv4.Map.t;
}
(** The checkpointable routing state. *)

(** Seeded programming errors for the fault-injection experiments; all
    off by default.  Each flag twists one concrete code path, mirroring
    the bug classes the paper detects. *)
type bugs = {
  skip_loop_check : bool;  (** accept AS paths containing our own AS *)
  invert_med : bool;  (** prefer *higher* MED (wrong comparison) *)
  crash_community : Community.t option;
      (** raise on routes carrying this community (crash bug) *)
  prepend_overflow : bool;  (** 8-bit wraparound of the prepend count *)
  fragile_decode : bool;
      (** die ({!Crash}) on any malformed input instead of handling it
          — the BIRD-style UPDATE-parser crash the paper demonstrates *)
}

val no_bugs : bugs

(* --- Addressing scheme: node id <-> router address --- *)

val addr_of_node : int -> Ipv4.t
(** Node [n] owns 10.a.b.c where a.b.c encodes [n + 1]. *)

val node_of_addr : Ipv4.t -> int

val create :
  ?auto_restart:bool ->
  ?liveness_timers:bool ->
  ?connect_delay:Netsim.Time.span ->
  ?bugs:bugs ->
  net:string Netsim.Network.t ->
  node:int ->
  Config.t ->
  t
(** Registers the message handler on network node [node] (which must
    already exist).  Local networks are installed into the Loc-RIB
    immediately; sessions stay Idle until [start].
    [liveness_timers:false] disables hold and keepalive timers — used
    by shadow clones, whose virtual time only advances while routing
    work remains, so liveness machinery would fire spuriously. *)

val start : t -> unit
(** Manual-start every configured session. *)

val stop_session : t -> Ipv4.t -> unit
val start_session : t -> Ipv4.t -> unit

val node : t -> int
val address : t -> Ipv4.t
val config : t -> Config.t
val set_config : t -> Config.t -> unit
(** Replace the configuration (operator action).  Re-evaluates local
    networks and re-announces exports under the new policies. *)

val set_bugs : t -> bugs -> unit
val bugs : t -> bugs

val state : t -> state
val restore : t -> state -> unit
(** Restore routing state (used when cloning snapshots).  Timers are
    not restored; callers on shadow clones drive the router manually. *)

val rib : t -> Rib.t
val loc_rib : t -> Rib.route Prefix.Map.t
val session_state : t -> Ipv4.t -> Fsm.state option
val established_peers : t -> Ipv4.t list
val stats : t -> Netsim.Stats.t

val inject_update : t -> from:Ipv4.t -> Msg.update -> unit
(** Process an UPDATE as if received from [from] on an Established
    session (exploration entry point; bypasses the wire codec). *)

val process_raw : t -> from_node:int -> string -> unit
(** The network-facing entry point (decodes, drives the FSM). *)

exception Crash of string
(** Raised by seeded crash bugs; the explorer catches it as a
    programming-error fault. *)
