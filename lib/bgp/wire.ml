type error = { code : int; subcode : int; reason : string }

let header_length = 19
let max_length = 4096

let pp_error ppf e =
  Format.fprintf ppf "%s (%s)" e.reason (Msg.Error.to_string e.code e.subcode)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u16 b (v lsr 16);
  put_u16 b (v land 0xFFFF)

(* A prefix is encoded as a length byte followed by ceil(len/8) bytes. *)
let put_prefix b p =
  let len = Prefix.len p in
  put_u8 b len;
  let a = Ipv4.to_int (Prefix.addr p) in
  let nbytes = (len + 7) / 8 in
  for i = 0 to nbytes - 1 do
    put_u8 b ((a lsr (24 - (8 * i))) land 0xFF)
  done

let put_as_path b path =
  let seg (kind, asns) =
    put_u8 b kind;
    put_u8 b (List.length asns);
    List.iter (put_u16 b) asns
  in
  List.iter
    (function
      | As_path.Set asns -> seg (1, asns)
      | As_path.Seq asns -> seg (2, asns))
    path

let put_attr b ~flags ~code value =
  let len = String.length value in
  if len > 255 then begin
    put_u8 b (flags lor Attr.flag_extended);
    put_u8 b code;
    put_u16 b len
  end
  else begin
    put_u8 b flags;
    put_u8 b code;
    put_u8 b len
  end;
  Buffer.add_string b value

let in_buffer f =
  let b = Buffer.create 32 in
  f b;
  Buffer.contents b

let encode_attrs (a : Attr.t) =
  let b = Buffer.create 64 in
  let wk = Attr.flag_transitive in
  let opt_trans = Attr.flag_optional lor Attr.flag_transitive in
  let opt_nontrans = Attr.flag_optional in
  put_attr b ~flags:wk ~code:Attr.code_origin
    (in_buffer (fun b -> put_u8 b (Attr.origin_code a.origin)));
  put_attr b ~flags:wk ~code:Attr.code_as_path (in_buffer (fun b -> put_as_path b a.as_path));
  put_attr b ~flags:wk ~code:Attr.code_next_hop
    (in_buffer (fun b -> put_u32 b (Ipv4.to_int a.next_hop)));
  (match a.med with
  | Some v -> put_attr b ~flags:opt_nontrans ~code:Attr.code_med (in_buffer (fun b -> put_u32 b v))
  | None -> ());
  (match a.local_pref with
  | Some v -> put_attr b ~flags:wk ~code:Attr.code_local_pref (in_buffer (fun b -> put_u32 b v))
  | None -> ());
  if a.atomic_aggregate then put_attr b ~flags:wk ~code:Attr.code_atomic_aggregate "";
  (match a.aggregator with
  | Some (asn, ip) ->
      put_attr b ~flags:opt_trans ~code:Attr.code_aggregator
        (in_buffer (fun b ->
             put_u16 b asn;
             put_u32 b (Ipv4.to_int ip)))
  | None -> ());
  (match a.communities with
  | [] -> ()
  | cs ->
      put_attr b ~flags:opt_trans ~code:Attr.code_communities
        (in_buffer (fun b -> List.iter (fun c -> put_u32 b (Community.to_int c)) cs)));
  List.iter
    (fun (u : Attr.unknown) -> put_attr b ~flags:u.u_flags ~code:u.u_type u.u_value)
    a.unknown;
  Buffer.contents b

let encode_body = function
  | Msg.Keepalive -> ""
  | Msg.Open o ->
      in_buffer (fun b ->
          put_u8 b o.version;
          put_u16 b o.my_as;
          put_u16 b o.hold_time;
          put_u32 b (Ipv4.to_int o.bgp_id);
          put_u8 b 0 (* no optional parameters *))
  | Msg.Notification n ->
      in_buffer (fun b ->
          put_u8 b n.code;
          put_u8 b n.subcode;
          Buffer.add_string b n.data)
  | Msg.Update u ->
      in_buffer (fun b ->
          let withdrawn = in_buffer (fun b -> List.iter (put_prefix b) u.withdrawn) in
          put_u16 b (String.length withdrawn);
          Buffer.add_string b withdrawn;
          let attrs =
            match u.attrs with
            | Some a when u.nlri <> [] || u.withdrawn = [] -> encode_attrs a
            | Some a -> encode_attrs a
            | None -> ""
          in
          put_u16 b (String.length attrs);
          Buffer.add_string b attrs;
          List.iter (put_prefix b) u.nlri)

let type_code = function
  | Msg.Open _ -> 1
  | Msg.Update _ -> 2
  | Msg.Notification _ -> 3
  | Msg.Keepalive -> 4

let encode msg =
  let body = encode_body msg in
  let total = header_length + String.length body in
  if total > max_length then
    invalid_arg (Printf.sprintf "Wire.encode: message of %d bytes exceeds limit" total);
  in_buffer (fun b ->
      for _ = 1 to 16 do
        put_u8 b 0xFF
      done;
      put_u16 b total;
      put_u8 b (type_code msg);
      Buffer.add_string b body)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of error

let fail code subcode fmt =
  Printf.ksprintf (fun reason -> raise (Fail { code; subcode; reason })) fmt

module E = Msg.Error

(* A cursor over a sub-range of the buffer.  Decoding never copies the
   input: section boundaries (withdrawn routes, attribute list, each
   attribute value) are expressed by temporarily *narrowing* [stop] on
   the one cursor rather than slicing out substrings.  The only
   [String.sub] left on the decode side materializes payloads that
   outlive the call (unknown transitive attribute values, NOTIFICATION
   data). *)
type cursor = { buf : string; mutable pos : int; mutable stop : int }

let remaining c = c.stop - c.pos

let need c n ~code ~subcode what =
  if remaining c < n then
    fail code subcode "truncated %s: need %d bytes, have %d" what n (remaining c)

let u8 c ~code ~subcode what =
  need c 1 ~code ~subcode what;
  let v = Char.code (String.unsafe_get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c ~code ~subcode what =
  need c 2 ~code ~subcode what;
  let hi = Char.code (String.unsafe_get c.buf c.pos) in
  let lo = Char.code (String.unsafe_get c.buf (c.pos + 1)) in
  c.pos <- c.pos + 2;
  (hi lsl 8) lor lo

let u32 c ~code ~subcode what =
  let hi = u16 c ~code ~subcode what in
  let lo = u16 c ~code ~subcode what in
  (hi lsl 16) lor lo

let take c n ~code ~subcode what =
  need c n ~code ~subcode what;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

(* Narrow [c] to its next [n] bytes, run [f], then restore the outer
   window with the cursor positioned after the section — whether or not
   [f] consumed it all.  No allocation; exceptions propagate with the
   cursor state irrelevant (decoders abandon the cursor on failure). *)
let within c n ~code ~subcode what f =
  need c n ~code ~subcode what;
  let outer_stop = c.stop in
  let section_stop = c.pos + n in
  c.stop <- section_stop;
  let v = f c in
  c.stop <- outer_stop;
  c.pos <- section_stop;
  v

let get_prefix c ~code ~subcode =
  let len = u8 c ~code ~subcode "prefix length" in
  if len > 32 then fail code subcode "prefix length %d > 32" len;
  let nbytes = (len + 7) / 8 in
  need c nbytes ~code ~subcode "prefix bytes";
  let a = ref 0 in
  for i = 0 to nbytes - 1 do
    a := !a lor (Char.code c.buf.[c.pos + i] lsl (24 - (8 * i)))
  done;
  c.pos <- c.pos + nbytes;
  let addr = Ipv4.of_int32_exn (!a land 0xFFFF_FFFF) in
  (* RFC: trailing bits are irrelevant; canonicalize by masking. *)
  Prefix.make addr len

let get_prefixes c ~code ~subcode =
  let rec go acc = if remaining c = 0 then List.rev acc else go (get_prefix c ~code ~subcode :: acc) in
  go []

(* Parses the (already narrowed) cursor to exhaustion. *)
let get_as_path c =
  let code = E.update_message and subcode = E.malformed_as_path in
  let rec segs acc =
    if remaining c = 0 then List.rev acc
    else begin
      let kind = u8 c ~code ~subcode "AS_PATH segment type" in
      let count = u8 c ~code ~subcode "AS_PATH segment count" in
      if count = 0 then fail code subcode "empty AS_PATH segment";
      let asns = List.init count (fun _ -> u16 c ~code ~subcode "ASN") in
      match kind with
      | 1 -> segs (As_path.Set asns :: acc)
      | 2 -> segs (As_path.Seq asns :: acc)
      | k -> fail code subcode "bad AS_PATH segment type %d" k
    end
  in
  segs []

type partial_attrs = {
  mutable p_origin : Attr.origin option;
  mutable p_as_path : As_path.t option;
  mutable p_next_hop : Ipv4.t option;
  mutable p_med : int option;
  mutable p_local_pref : int option;
  mutable p_atomic : bool;
  mutable p_aggregator : (int * Ipv4.t) option;
  mutable p_communities : Community.t list;
  mutable p_unknown : Attr.unknown list;
  mutable p_seen_mask : int;  (** bitset for type codes 0..62 *)
  mutable p_seen_hi : int list;  (** the rare codes above 62 *)
}

let seen_before p typ =
  if typ < 63 then begin
    let bit = 1 lsl typ in
    let dup = p.p_seen_mask land bit <> 0 in
    p.p_seen_mask <- p.p_seen_mask lor bit;
    dup
  end
  else begin
    let dup = List.mem typ p.p_seen_hi in
    p.p_seen_hi <- typ :: p.p_seen_hi;
    dup
  end

let check_flags ~flags ~code ~well_known ~transitive =
  let has f = flags land f <> 0 in
  let attr_err sub = fail E.update_message sub "bad flags 0x%02x on attribute %d" flags code in
  if well_known then begin
    if has Attr.flag_optional then attr_err E.attribute_flags;
    if not (has Attr.flag_transitive) then attr_err E.attribute_flags
  end
  else begin
    if not (has Attr.flag_optional) then attr_err E.attribute_flags;
    match transitive with
    | Some true -> if not (has Attr.flag_transitive) then attr_err E.attribute_flags
    | Some false -> if has Attr.flag_transitive then attr_err E.attribute_flags
    | None -> ()
  end

let decode_one_attr c p =
  let code = E.update_message in
  let flags = u8 c ~code ~subcode:E.malformed_attribute_list "attribute flags" in
  let typ = u8 c ~code ~subcode:E.malformed_attribute_list "attribute type" in
  let len =
    if flags land Attr.flag_extended <> 0 then
      u16 c ~code ~subcode:E.malformed_attribute_list "attribute length"
    else u8 c ~code ~subcode:E.malformed_attribute_list "attribute length"
  in
  need c len ~code ~subcode:E.attribute_length "attribute value";
  if seen_before p typ then
    fail code E.malformed_attribute_list "duplicate attribute %d" typ;
  let expect_len n =
    if len <> n then fail code E.attribute_length "attribute %d: length %d, expected %d" typ len n
  in
  within c len ~code ~subcode:E.attribute_length "attribute value" @@ fun c ->
  if typ = Attr.code_origin then begin
    check_flags ~flags ~code:typ ~well_known:true ~transitive:None;
    expect_len 1;
    let v = Char.code (String.unsafe_get c.buf c.pos) in
    match Attr.origin_of_code v with
    | Some o -> p.p_origin <- Some o
    | None -> fail code E.invalid_origin "bad ORIGIN value %d" v
  end
  else if typ = Attr.code_as_path then begin
    check_flags ~flags ~code:typ ~well_known:true ~transitive:None;
    p.p_as_path <- Some (get_as_path c)
  end
  else if typ = Attr.code_next_hop then begin
    check_flags ~flags ~code:typ ~well_known:true ~transitive:None;
    expect_len 4;
    let v = u32 c ~code ~subcode:E.invalid_next_hop "NEXT_HOP" in
    p.p_next_hop <- Some (Ipv4.of_int32_exn v)
  end
  else if typ = Attr.code_med then begin
    check_flags ~flags ~code:typ ~well_known:false ~transitive:(Some false);
    expect_len 4;
    p.p_med <- Some (u32 c ~code ~subcode:E.attribute_length "MED")
  end
  else if typ = Attr.code_local_pref then begin
    check_flags ~flags ~code:typ ~well_known:true ~transitive:None;
    expect_len 4;
    p.p_local_pref <- Some (u32 c ~code ~subcode:E.attribute_length "LOCAL_PREF")
  end
  else if typ = Attr.code_atomic_aggregate then begin
    check_flags ~flags ~code:typ ~well_known:true ~transitive:None;
    expect_len 0;
    p.p_atomic <- true
  end
  else if typ = Attr.code_aggregator then begin
    check_flags ~flags ~code:typ ~well_known:false ~transitive:(Some true);
    expect_len 6;
    let asn = u16 c ~code ~subcode:E.attribute_length "AGGREGATOR" in
    let ip = u32 c ~code ~subcode:E.attribute_length "AGGREGATOR" in
    p.p_aggregator <- Some (asn, Ipv4.of_int32_exn ip)
  end
  else if typ = Attr.code_communities then begin
    check_flags ~flags ~code:typ ~well_known:false ~transitive:(Some true);
    if len mod 4 <> 0 then fail code E.attribute_length "COMMUNITIES length %d not multiple of 4" len;
    let n = len / 4 in
    p.p_communities <-
      List.init n (fun _ ->
          Community.of_int32_exn (u32 c ~code ~subcode:E.attribute_length "community"))
  end
  else if flags land Attr.flag_optional = 0 then
    (* Unrecognized well-known attribute. *)
    fail code E.unrecognized_wellknown "unrecognized well-known attribute %d" typ
  else if flags land Attr.flag_transitive <> 0 then
    (* Unrecognized optional transitive: keep, set Partial.  The value
       outlives this decode, so this is the one place attribute bytes
       are copied out. *)
    p.p_unknown <-
      { u_type = typ; u_flags = flags lor Attr.flag_partial;
        u_value = String.sub c.buf c.pos len }
      :: p.p_unknown
  else (* Unrecognized optional non-transitive: silently drop. *)
    ()

(* [c] is a cursor over exactly the attribute bytes. *)
let decode_attrs c ~has_nlri =
  let p =
    { p_origin = None; p_as_path = None; p_next_hop = None; p_med = None;
      p_local_pref = None; p_atomic = false; p_aggregator = None;
      p_communities = []; p_unknown = []; p_seen_mask = 0; p_seen_hi = [] }
  in
  while remaining c > 0 do
    decode_one_attr c p
  done;
  if not has_nlri then
    (* Pure withdrawal may omit all attributes. *)
    match (p.p_origin, p.p_as_path, p.p_next_hop) with
    | None, None, None -> None
    | _ ->
        Some
          (Attr.make
             ~origin:(Option.value p.p_origin ~default:Attr.Incomplete)
             ~as_path:(Option.value p.p_as_path ~default:As_path.empty)
             ~med:p.p_med ~local_pref:p.p_local_pref ~atomic_aggregate:p.p_atomic
             ~aggregator:p.p_aggregator ~communities:p.p_communities
             ~unknown:(List.rev p.p_unknown)
             ~next_hop:(Option.value p.p_next_hop ~default:Ipv4.any)
             ())
  else begin
    let missing what = fail E.update_message E.missing_wellknown "missing well-known attribute %s" what in
    let origin = match p.p_origin with Some o -> o | None -> missing "ORIGIN" in
    let as_path = match p.p_as_path with Some x -> x | None -> missing "AS_PATH" in
    let next_hop = match p.p_next_hop with Some x -> x | None -> missing "NEXT_HOP" in
    Some
      (Attr.make ~origin ~as_path ~med:p.p_med ~local_pref:p.p_local_pref
         ~atomic_aggregate:p.p_atomic ~aggregator:p.p_aggregator
         ~communities:p.p_communities ~unknown:(List.rev p.p_unknown) ~next_hop ())
  end

(* The UPDATE envelope: withdrawn routes, a cursor over the raw
   attribute bytes, and the NLRI.  Failures here mean the affected
   prefixes cannot be determined, so RFC 7606 mandates a session reset;
   failures inside the attribute bytes (parsed later) are scoped to
   this UPDATE's prefixes and are eligible for treat-as-withdraw. *)
let decode_update_envelope c =
  let code = E.update_message in
  let wlen = u16 c ~code ~subcode:E.malformed_attribute_list "withdrawn length" in
  let withdrawn =
    within c wlen ~code ~subcode:E.malformed_attribute_list "withdrawn routes"
      (get_prefixes ~code ~subcode:E.invalid_network_field)
  in
  let alen = u16 c ~code ~subcode:E.malformed_attribute_list "attributes length" in
  need c alen ~code ~subcode:E.malformed_attribute_list "attributes";
  let acur = { buf = c.buf; pos = c.pos; stop = c.pos + alen } in
  c.pos <- c.pos + alen;
  let nlri = get_prefixes c ~code ~subcode:E.invalid_network_field in
  (withdrawn, acur, nlri)

let decode_update c =
  let withdrawn, acur, nlri = decode_update_envelope c in
  let attrs = decode_attrs acur ~has_nlri:(nlri <> []) in
  Msg.Update { withdrawn; attrs; nlri }

let decode_open c =
  let code = E.open_message in
  let version = u8 c ~code ~subcode:E.unsupported_version "version" in
  if version <> 4 then fail code E.unsupported_version "unsupported BGP version %d" version;
  let my_as = u16 c ~code ~subcode:E.bad_peer_as "my-AS" in
  if my_as = 0 then fail code E.bad_peer_as "AS number 0";
  let hold_time = u16 c ~code ~subcode:E.unacceptable_hold_time "hold time" in
  if hold_time = 1 || hold_time = 2 then
    fail code E.unacceptable_hold_time "hold time %d" hold_time;
  let bgp_id = u32 c ~code ~subcode:E.bad_bgp_id "BGP identifier" in
  if bgp_id = 0 then fail code E.bad_bgp_id "BGP identifier 0";
  let opt_len = u8 c ~code ~subcode:E.unsupported_version "optional parameters length" in
  need c opt_len ~code ~subcode:E.unsupported_version "optional parameters";
  c.pos <- c.pos + opt_len;
  Msg.Open { version; my_as; hold_time; bgp_id = Ipv4.of_int32_exn bgp_id }

let decode_notification c =
  let code = E.message_header in
  let ecode = u8 c ~code ~subcode:E.bad_length "error code" in
  let subcode = u8 c ~code ~subcode:E.bad_length "error subcode" in
  let data = take c (remaining c) ~code ~subcode:E.bad_length "data" in
  Msg.Notification { code = ecode; subcode; data }

(* Header validation.  Cursor-arithmetic audit: every byte access below
   and in the body decoders goes through [u8]/[u16]/[u32]/[take]/
   [within], all of which bounds-check via [need] before touching
   [buf] (the [unsafe_get]s in [u8]/[u16] sit directly behind those
   checks); [get_prefix] masks its accumulated address to 32 bits
   before [Ipv4.of_int32_exn]; a declared [len] that disagrees with the
   real buffer length is rejected here before any body decoder runs.
   The only failure mode of the strict decoders is therefore [Fail].
   On success the returned cursor *is* the body: body decoders read the
   original buffer in place rather than a copied-out substring. *)
let decode_header buf =
  let c = { buf; pos = 0; stop = String.length buf } in
  let code = E.message_header in
  for _ = 1 to 16 do
    if u8 c ~code ~subcode:E.bad_marker "marker" <> 0xFF then
      fail code E.bad_marker "marker byte not 0xFF"
  done;
  let len = u16 c ~code ~subcode:E.bad_length "length" in
  if len <> String.length buf then
    fail code E.bad_length "length field %d but buffer has %d bytes" len
      (String.length buf);
  if len < header_length || len > max_length then
    fail code E.bad_length "length %d outside [19,4096]" len;
  let typ = u8 c ~code ~subcode:E.bad_type "type" in
  (typ, c)

let decode_body typ c =
  let code = E.message_header in
  match typ with
  | 1 -> decode_open c
  | 2 -> decode_update c
  | 3 -> decode_notification c
  | 4 ->
      if remaining c = 0 then Msg.Keepalive
      else fail code E.bad_length "KEEPALIVE with a body"
  | t -> fail code E.bad_type "unknown message type %d" t

(* A decoder escaping with anything but [Fail] is a codec bug — the
   class of programming error DiCE is built to detect.  We convert it
   into a structured error with the reserved code 0 (no RFC 4271
   notification code is 0) so callers can classify it, instead of
   letting it tear down the simulation. *)
let crash_error exn =
  { code = 0; subcode = 0; reason = "codec crash: " ^ Printexc.to_string exn }

let is_codec_crash e = e.code = 0

type graceful =
  | Msg of Msg.t
  | Treat_as_withdraw of {
      withdrawn : Prefix.t list;
      nlri : Prefix.t list;
      err : error;
    }
  | Reset of error

let decode_graceful buf =
  match decode_header buf with
  | exception Fail e -> Reset e
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  | exception e -> Reset (crash_error e)
  | 2, c -> (
      (* RFC 7606: errors confined to the path attributes of an UPDATE
         whose NLRI fields parse are downgraded to treat-as-withdraw;
         errors in the envelope still reset the session. *)
      match decode_update_envelope c with
      | exception Fail e -> Reset e
      | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
      | exception e -> Reset (crash_error e)
      | withdrawn, acur, nlri -> (
          match decode_attrs acur ~has_nlri:(nlri <> []) with
          | attrs -> Msg (Msg.Update { withdrawn; attrs; nlri })
          | exception Fail err -> Treat_as_withdraw { withdrawn; nlri; err }
          | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
          | exception e -> Treat_as_withdraw { withdrawn; nlri; err = crash_error e }))
  | typ, c -> (
      match decode_body typ c with
      | m -> Msg m
      | exception Fail e -> Reset e
      | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
      | exception e -> Reset (crash_error e))

let decode buf =
  match decode_graceful buf with
  | Msg m -> Ok m
  | Treat_as_withdraw { err; _ } | Reset err -> Error err
