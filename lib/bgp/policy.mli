(** Routing policy: route maps.

    A route map is an ordered list of entries.  The first entry whose
    match clauses all hold decides: [Permit] applies the set clauses and
    accepts, [Deny] rejects.  If no entry matches the route is rejected
    (default-deny, as in BIRD filters). *)

type prefix_rule = { rule_prefix : Prefix.t; ge : int option; le : int option }
(** Matches prefixes subsumed by [rule_prefix] whose length satisfies
    [ge <= len <= le]; both default to the rule's own length (exact
    match). *)

val prefix_rule : ?ge:int -> ?le:int -> Prefix.t -> prefix_rule
val prefix_rule_matches : prefix_rule -> Prefix.t -> bool

type as_path_test =
  | Path_contains of int
  | Path_originated_by of int
  | Path_neighbor_is of int
  | Path_length_at_most of int
  | Path_length_at_least of int

type match_clause =
  | Match_prefix of prefix_rule list  (** disjunction *)
  | Match_as_path of as_path_test
  | Match_community of Community.t
  | Match_origin of Attr.origin
  | Match_next_hop of Ipv4.t

type set_clause =
  | Set_local_pref of int
  | Set_med of int option
  | Set_origin of Attr.origin
  | Add_community of Community.t
  | Del_community of Community.t
  | Prepend_as of int * int  (** asn, count *)
  | Set_next_hop of Ipv4.t

type action = Permit | Deny

type entry = {
  seq : int;
  action : action;
  matches : match_clause list;  (** conjunction; empty matches anything *)
  sets : set_clause list;
}

type t = entry list

val accept_all : t
val deny_all : t
(** [deny_all] is the empty route map (default deny). *)

val entry : ?matches:match_clause list -> ?sets:set_clause list -> int -> action -> entry

val normalize : t -> t
(** Sort entries by sequence number. *)

val matches_route : match_clause -> Prefix.t -> Attr.t -> bool
val apply_set : set_clause -> Attr.t -> Attr.t

(** {1 Clause coverage instrumentation}

    When a coverage observer is installed ({!set_cov_observer}) and the
    caller identifies the evaluation with a [?site], {!apply} reports
    every clause it evaluates and the outcome.  Evaluation order and
    short-circuiting are identical to the uninstrumented path: a match
    clause after a failing one in the same entry is never evaluated and
    therefore never reported, and an entry shadowed by an earlier
    deciding entry records nothing — shadowed policy text shows up as
    uncovered, which is exactly the signal the config fuzzer steers by. *)

type cov_site = { cs_node : int; cs_map : string }
(** Which router and which route map an evaluation belongs to. *)

type cov_point =
  | Cov_match of { idx : int; outcome : bool }
      (** match clause [idx] of the entry evaluated to [outcome] *)
  | Cov_action  (** the entry decided the route (all matches held) *)
  | Cov_set of int  (** set clause [idx] was applied (Permit only) *)
  | Cov_fallthrough  (** no entry matched: default deny ([seq] = -1) *)

type cov_observer = cov_site -> seq:int -> cov_point -> unit

val set_cov_observer : cov_observer option -> unit
(** Install (or clear) the process-global observer.  Observation costs
    one [Atomic.get] per {!apply} when no [?site] is passed. *)

val cov_on : unit -> bool
(** Is an observer currently installed? *)

val apply : ?site:cov_site -> t -> Prefix.t -> Attr.t -> Attr.t option
(** [None] when the route is rejected.  [site] is only used for
    coverage reporting and never changes the result. *)

(** {1 Route tracing}

    A second, independent observer that records whole evaluations
    (input route, output route) rather than clause hits.  The repair
    localizer installs one to harvest witness routes for suspect
    sites.  Like the coverage observer it only fires when the caller
    passes a [?site] and never changes the result. *)

type trace_observer = cov_site -> Prefix.t -> Attr.t -> Attr.t option -> unit
(** [f site prefix attrs_in result]: one call per {!apply} with a
    site; [result] is exactly what [apply] returns. *)

val set_trace_observer : trace_observer option -> unit

(** {1 Constant symbolization}

    The repair engine's hook (DESIGN.md §2.6j): enumerate the tunable integer constants of one entry so a symbolic
    layer can lift them into solver variables, and rebuild the map with
    a substitution applied.  Only constants with a natural integer
    encoding are exposed: the permit/deny bit (1/0), [Set_local_pref]
    and concrete [Set_med] values, community literals in
    [Match_community]/[Add_community] (via {!Community.to_int}), and
    prefix-rule [ge]/[le] bounds that are actually present ([None]
    bounds stay [None] — absence is structure, not a constant). *)

type const_slot =
  | S_action  (** permit=1 / deny=0 *)
  | S_local_pref of int  (** set-clause index *)
  | S_med of int  (** set-clause index (concrete MED only) *)
  | S_match_ge of int * int  (** match-clause index, rule index *)
  | S_match_le of int * int  (** match-clause index, rule index *)
  | S_match_community of int  (** match-clause index *)
  | S_add_community of int  (** set-clause index *)

val slot_id : const_slot -> string
(** Stable short id, e.g. ["s0.lp"], ["m1.r0.ge"] — used to name
    solver variables. *)

val symbolize :
  seq:int -> t -> ((const_slot * int) list * ((const_slot -> int -> int) -> t)) option
(** [symbolize ~seq t] targets the {e first} entry in list order with
    sequence number [seq] (the one {!apply} would reach first, since
    maps are evaluated unnormalized).  Returns [None] when no entry has
    that seq; otherwise the slots of that entry with their current
    values, and a rebuild function: [rebuild subst] is [t] with each
    slot [s] of value [v] replaced by [subst s v] in that entry.
    [rebuild (fun _ v -> v)] is structurally equal to [t]. *)

val pp : Format.formatter -> t -> unit
