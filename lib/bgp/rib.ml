type source = {
  peer_addr : Ipv4.t;
  peer_as : int;
  peer_bgp_id : Ipv4.t;
  ebgp : bool;
  igp_metric : int;
}

let local_source =
  { peer_addr = Ipv4.any; peer_as = 0; peer_bgp_id = Ipv4.any; ebgp = false;
    igp_metric = 0 }

type route = { attrs : Attr.t; source : source }

let is_local r = Ipv4.equal r.source.peer_addr Ipv4.any

(* [cands] mirrors [adj_in] transposed: for each prefix, the candidate
   routes keyed by advertising peer.  It is what makes the decision
   process incremental — looking up a prefix's candidate set is one trie
   walk instead of a fold over every peer's Adj-RIB-In — and is
   maintained by the same mutators, so the two views cannot drift. *)
type t = {
  adj_in : route Prefix.Map.t Ipv4.Map.t;
  cands : route Ipv4.Map.t Prefix_trie.t;
  loc : route Prefix.Map.t;
  adj_out : Attr.t Prefix.Map.t Ipv4.Map.t;
}

let empty =
  { adj_in = Ipv4.Map.empty; cands = Prefix_trie.empty; loc = Prefix.Map.empty;
    adj_out = Ipv4.Map.empty }

let peer_map peer m = Option.value (Ipv4.Map.find_opt peer m) ~default:Prefix.Map.empty

let update_peer_map peer f m =
  let pm = f (peer_map peer m) in
  if Prefix.Map.is_empty pm then Ipv4.Map.remove peer m else Ipv4.Map.add peer pm m

let cands_add peer prefix route cands =
  let pm = Option.value (Prefix_trie.find prefix cands) ~default:Ipv4.Map.empty in
  Prefix_trie.add prefix (Ipv4.Map.add peer route pm) cands

let cands_del peer prefix cands =
  match Prefix_trie.find prefix cands with
  | None -> cands
  | Some pm ->
      let pm = Ipv4.Map.remove peer pm in
      if Ipv4.Map.is_empty pm then Prefix_trie.remove prefix cands
      else Prefix_trie.add prefix pm cands

let adj_in_set peer prefix route t =
  { t with
    adj_in = update_peer_map peer (Prefix.Map.add prefix route) t.adj_in;
    cands = cands_add peer prefix route t.cands }

let adj_in_del peer prefix t =
  { t with
    adj_in = update_peer_map peer (Prefix.Map.remove prefix) t.adj_in;
    cands = cands_del peer prefix t.cands }

let adj_in_get peer prefix t = Prefix.Map.find_opt prefix (peer_map peer t.adj_in)
let adj_in_peer peer t = peer_map peer t.adj_in

(* The incremental-decision entry point: apply the route (or its
   absence) and report whether the prefix's candidate set actually
   changed.  Re-announcements that import to an identical route and
   withdrawals of prefixes the peer never advertised leave the
   candidate set — and therefore the decision — untouched. *)
let adj_in_update peer prefix route t =
  let current = adj_in_get peer prefix t in
  match (route, current) with
  | None, None -> (t, false)
  | Some r, Some c when r = c -> (t, false)
  | Some r, _ -> (adj_in_set peer prefix r t, true)
  | None, Some _ -> (adj_in_del peer prefix t, true)

let drop_peer peer t =
  let cands =
    Prefix.Map.fold
      (fun prefix _ cands -> cands_del peer prefix cands)
      (peer_map peer t.adj_in) t.cands
  in
  { t with
    adj_in = Ipv4.Map.remove peer t.adj_in;
    cands;
    adj_out = Ipv4.Map.remove peer t.adj_out }

let candidates prefix t =
  match Prefix_trie.find prefix t.cands with
  | None -> []
  | Some pm -> Ipv4.Map.fold (fun _ r acc -> r :: acc) pm []

let has_candidates prefix t = Prefix_trie.find prefix t.cands <> None

let prefixes_from_peer peer t =
  Prefix.Map.fold (fun p _ acc -> p :: acc) (peer_map peer t.adj_in) [] |> List.rev

let loc_set prefix route t = { t with loc = Prefix.Map.add prefix route t.loc }
let loc_del prefix t = { t with loc = Prefix.Map.remove prefix t.loc }
let loc_get prefix t = Prefix.Map.find_opt prefix t.loc
let loc_prefixes t = Prefix.Map.fold (fun p _ acc -> p :: acc) t.loc [] |> List.rev
let loc_cardinal t = Prefix.Map.cardinal t.loc

let adj_out_set peer prefix attrs t =
  { t with adj_out = update_peer_map peer (Prefix.Map.add prefix attrs) t.adj_out }

let adj_out_del peer prefix t =
  { t with adj_out = update_peer_map peer (Prefix.Map.remove prefix) t.adj_out }

let adj_out_get peer prefix t = Prefix.Map.find_opt prefix (peer_map peer t.adj_out)
let adj_out_peer peer t = peer_map peer t.adj_out

let make ~adj_in ~loc ~adj_out =
  let cands =
    Ipv4.Map.fold
      (fun peer pm cands ->
        Prefix.Map.fold (fun prefix r cands -> cands_add peer prefix r cands) pm cands)
      adj_in Prefix_trie.empty
  in
  { adj_in; cands; loc; adj_out }

let total_adj_in t =
  Ipv4.Map.fold (fun _ pm acc -> acc + Prefix.Map.cardinal pm) t.adj_in 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Prefix.Map.iter
    (fun p r ->
      Format.fprintf ppf "%a via %a [%a]@ " Prefix.pp p Ipv4.pp r.source.peer_addr
        As_path.pp r.attrs.Attr.as_path)
    t.loc;
  Format.fprintf ppf "@]"
