(** Router configuration: AST, validation, and the textual configuration
    language.

    The language is line-oriented, BIRD/IOS-flavoured:

    {v
    router bgp 65001
    router-id 10.0.0.1
    hold-time 90
    network 10.1.0.0/16
    neighbor 10.0.0.2 remote-as 65002 import PEER-IN export PEER-OUT
    route-map PEER-IN
      entry 10 permit
        match prefix 10.0.0.0/8 le 24
        match community 65001:100
        set local-pref 200
      entry 20 deny
    end
    v} *)

type neighbor = {
  addr : Ipv4.t;
  remote_as : int;
  import_map : string option;  (** [None] accepts everything *)
  export_map : string option;  (** [None] exports everything *)
}

type t = {
  asn : int;
  router_id : Ipv4.t;
  hold_time : int;
  networks : Prefix.t list;
  neighbors : neighbor list;
  route_maps : (string * Policy.t) list;
  always_compare_med : bool;
}

val make :
  ?hold_time:int ->
  ?networks:Prefix.t list ->
  ?neighbors:neighbor list ->
  ?route_maps:(string * Policy.t) list ->
  ?always_compare_med:bool ->
  asn:int ->
  router_id:Ipv4.t ->
  unit ->
  t

val neighbor : ?import_map:string -> ?export_map:string -> Ipv4.t -> remote_as:int -> neighbor

val find_route_map : t -> string -> Policy.t option
val find_neighbor : t -> Ipv4.t -> neighbor option

val import_policy : t -> neighbor -> Policy.t
(** The neighbor's import route map, or accept-all. *)

val export_policy : t -> neighbor -> Policy.t

val validate : t -> (unit, string list) result
(** Checks referential integrity (route-map names), uniqueness of
    neighbor addresses, ASN ranges, and hold-time validity. *)

val lint : t -> string list
(** Warnings on a {e valid} configuration: route-maps that are defined
    but referenced by no neighbor, and duplicate entry sequence numbers
    within one map.  Kept separate from {!validate} so tooling (the
    config fuzzer in particular) can distinguish "invalid config" from
    "valid but suspect config". *)

val referenced_maps : t -> (string * Policy.t) list
(** Route maps referenced by at least one neighbor, in definition
    order, first binding per name.  This is the clause-coverage
    universe: unreferenced maps are dead text (see {!lint}). *)

type parse_error = { line : int; message : string }

val parse : string -> (t, parse_error) result
val parse_exn : string -> t
val pp_parse_error : Format.formatter -> parse_error -> unit
val to_text : t -> string
(** Render back to the configuration language ([parse] round-trips). *)
