(** RFC 4271 binary message codec.

    One BGP message per buffer.  Decoding validates the header, the
    attribute flags and lengths, and the NLRI encoding; violations are
    reported with the notification (code, subcode) a conforming speaker
    would send, which the session FSM forwards to the peer. *)

type error = { code : int; subcode : int; reason : string }

val encode : Msg.t -> string
(** @raise Invalid_argument if the message exceeds the 4096-byte limit. *)

val decode : string -> (Msg.t, error) result
(** Decodes exactly one message occupying the whole buffer.  Total on
    arbitrary byte strings: it returns [Ok] or [Error] and never
    raises.  An unexpected exception inside a decoder (a codec bug) is
    reported as an error with {!is_codec_crash} true rather than
    escaping. *)

(** How a receiver should react to a buffer, per RFC 7606. *)
type graceful =
  | Msg of Msg.t  (** well-formed *)
  | Treat_as_withdraw of {
      withdrawn : Prefix.t list;
      nlri : Prefix.t list;
      err : error;
    }
      (** an UPDATE whose envelope (withdrawn routes + NLRI) parsed but
          whose path attributes are malformed: the session survives and
          every prefix the UPDATE carried must be treated as withdrawn *)
  | Reset of error
      (** header, OPEN, envelope or other unrecoverable error: send the
          NOTIFICATION and reset the session *)

val decode_graceful : string -> graceful
(** Like {!decode} but classifies the failure per RFC 7606 error
    handling.  Total: never raises (except [Stack_overflow] /
    [Out_of_memory]). *)

val is_codec_crash : error -> bool
(** [true] iff the error reports a decoder escaping with an unexpected
    exception (reserved code 0) — a programming error in the codec
    itself, as opposed to malformed input detected by it. *)

val header_length : int
(** 19 *)

val max_length : int
(** 4096 *)

val pp_error : Format.formatter -> error -> unit
