type state = { rib : Rib.t; sessions : Fsm.t Ipv4.Map.t }

type bugs = {
  skip_loop_check : bool;
  invert_med : bool;
  crash_community : Community.t option;
  prepend_overflow : bool;
  fragile_decode : bool;
}

let no_bugs =
  { skip_loop_check = false; invert_med = false; crash_community = None;
    prepend_overflow = false; fragile_decode = false }

exception Crash of string

type peer_timers = {
  mutable hold : Netsim.Engine.timer option;
  mutable keepalive : Netsim.Engine.timer option;
  mutable connect : Netsim.Engine.timer option;
  mutable restart : Netsim.Engine.timer option;
}

type t = {
  node : int;
  mutable cfg : Config.t;
  net : string Netsim.Network.t;
  eng : Netsim.Engine.t;
  mutable st : state;
  timers : (Ipv4.t, peer_timers) Hashtbl.t;
  stats : Netsim.Stats.t;
  mutable bug_flags : bugs;
  auto_restart : bool;
  liveness_timers : bool;
  connect_delay : Netsim.Time.span;
}

let addr_of_node n =
  if n < 0 || n > 0x00FF_FFFE then invalid_arg "Router.addr_of_node: node out of range";
  Ipv4.of_int32_exn (0x0A00_0000 lor (n + 1))

let node_of_addr a =
  let v = Ipv4.to_int a in
  if v lsr 24 <> 10 then invalid_arg "Router.node_of_addr: not a router address";
  (v land 0x00FF_FFFF) - 1

let node t = t.node
let address t = addr_of_node t.node
let config t = t.cfg
let state t = t.st
let rib t = t.st.rib
let loc_rib t = t.st.rib.Rib.loc
let stats t = t.stats
let bugs t = t.bug_flags
let set_bugs t b = t.bug_flags <- b

let session_state t peer =
  Option.map (fun (f : Fsm.t) -> f.Fsm.state) (Ipv4.Map.find_opt peer t.st.sessions)

let established_peers t =
  Ipv4.Map.fold
    (fun peer (f : Fsm.t) acc ->
      if f.Fsm.state = Fsm.Established then peer :: acc else acc)
    t.st.sessions []
  |> List.rev

let timers_of t peer =
  match Hashtbl.find_opt t.timers peer with
  | Some x -> x
  | None ->
      let x = { hold = None; keepalive = None; connect = None; restart = None } in
      Hashtbl.add t.timers peer x;
      x

let cancel_timer = function
  | Some timer -> Netsim.Engine.cancel timer
  | None -> ()

let fsm_config t (n : Config.neighbor) : Fsm.config =
  { my_as = t.cfg.Config.asn; bgp_id = t.cfg.Config.router_id;
    hold_time = t.cfg.Config.hold_time; peer_as = n.Config.remote_as }

let session t peer =
  Option.value (Ipv4.Map.find_opt peer t.st.sessions) ~default:(Fsm.create ())

let set_session t peer fsm =
  t.st <- { t.st with sessions = Ipv4.Map.add peer fsm t.st.sessions }

let is_ibgp t (n : Config.neighbor) = n.Config.remote_as = t.cfg.Config.asn

let trace t kind detail =
  match Netsim.Network.trace t.net with
  | Some tr ->
      Netsim.Trace.emit tr ~at:(Netsim.Engine.now t.eng) ~node:t.node ~kind detail
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Export path                                                         *)
(* ------------------------------------------------------------------ *)

(* Mandatory eBGP transformations around the export route map: the
   AS-internal attributes (LOCAL_PREF, inherited MED) are stripped
   before the map runs, so a map that sets a MED for the neighbor still
   takes effect; prepending our AS and rewriting NEXT_HOP happen
   after. *)
(* The prepend-overflow bug: the prepend repeat count is stored in an
   8-bit field, so a count of 256 silently becomes 0. *)
let effective_policy t policy =
  if not t.bug_flags.prepend_overflow then policy
  else
    List.map
      (fun (e : Policy.entry) ->
        { e with
          Policy.sets =
            List.map
              (function
                | Policy.Prepend_as (asn, n) -> Policy.Prepend_as (asn, n land 0xFF)
                | s -> s)
              e.Policy.sets })
      policy

let export_for t (n : Config.neighbor) prefix (route : Rib.route) =
  if Attr.has_community Community.no_advertise route.attrs then None
  else if
    (* Do not advertise a route back to the peer it was learned from. *)
    Ipv4.equal route.source.Rib.peer_addr n.Config.addr
  then None
  else if
    (* No iBGP-to-iBGP reflection. *)
    (not route.source.Rib.ebgp) && (not (Rib.is_local route)) && is_ibgp t n
  then None
  else
    let ebgp = not (is_ibgp t n) in
    (* NO_EXPORT binds the AS that *received* the tagged route: it is
       checked against the imported attributes, so an egress policy that
       adds the tag still announces the route (tag included). *)
    if ebgp && Attr.has_community Community.no_export route.attrs then None
    else
    let attrs =
      if ebgp then { route.attrs with Attr.local_pref = None; med = None }
      else route.attrs
    in
    match
      Policy.apply
        ?site:(Clause_cov.site ~node:t.node n.Config.export_map)
        (effective_policy t (Config.export_policy t.cfg n))
        prefix attrs
    with
    | None -> None
    | Some attrs ->
        if not ebgp then Some attrs
        else
          let attrs =
            { attrs with
              Attr.as_path = As_path.prepend t.cfg.Config.asn attrs.Attr.as_path }
          in
          Some { attrs with Attr.next_hop = address t }

let send_msg t peer msg =
  let dst = node_of_addr peer in
  Netsim.Stats.incr t.stats ("tx_" ^ String.lowercase_ascii (Msg.kind msg));
  Netsim.Network.send t.net ~src:t.node ~dst (Wire.encode msg)

(* Group (prefix, attrs) pairs sharing identical attributes into one
   UPDATE each, plus one UPDATE carrying all withdrawals. *)
let flush_exports t peer ~announce ~withdraw =
  if withdraw <> [] then
    send_msg t peer (Msg.update ~withdrawn:withdraw ());
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (p, attrs) ->
      let key = attrs in
      let cur = Option.value (Hashtbl.find_opt groups key) ~default:[] in
      Hashtbl.replace groups key (p :: cur))
    announce;
  Hashtbl.iter
    (fun attrs prefixes ->
      send_msg t peer (Msg.update ~attrs:(Some attrs) ~nlri:(List.rev prefixes) ()))
    groups

(* Re-evaluate Adj-RIB-Out for [prefixes] toward every Established peer
   and emit the diffs. *)
let update_exports t prefixes =
  List.iter
    (fun peer ->
      match Config.find_neighbor t.cfg peer with
      | None -> ()
      | Some n ->
          let announce = ref [] and withdraw = ref [] in
          List.iter
            (fun prefix ->
              let wanted =
                match Rib.loc_get prefix t.st.rib with
                | Some route -> export_for t n prefix route
                | None -> None
              in
              let current = Rib.adj_out_get peer prefix t.st.rib in
              match (wanted, current) with
              | None, None -> ()
              | None, Some _ ->
                  t.st <- { t.st with rib = Rib.adj_out_del peer prefix t.st.rib };
                  withdraw := prefix :: !withdraw
              | Some attrs, Some cur when Attr.equal attrs cur -> ()
              | Some attrs, (Some _ | None) ->
                  t.st <- { t.st with rib = Rib.adj_out_set peer prefix attrs t.st.rib };
                  announce := (prefix, attrs) :: !announce)
            prefixes;
          if !announce <> [] || !withdraw <> [] then
            flush_exports t peer ~announce:!announce ~withdraw:!withdraw)
    (established_peers t)

(* ------------------------------------------------------------------ *)
(* Decision process                                                    *)
(* ------------------------------------------------------------------ *)

let local_route t prefix =
  if List.exists (Prefix.equal prefix) t.cfg.Config.networks then
    Some
      { Rib.attrs = Attr.make ~origin:Attr.Igp ~next_hop:(address t) ();
        source = Rib.local_source }
  else None

let decision_config t : Decision.config =
  { always_compare_med = t.cfg.Config.always_compare_med }

let best_route t candidates =
  Decision.select (decision_config t) ~invert_med:t.bug_flags.invert_med
    candidates

let run_decision t prefixes =
  let changed = ref [] in
  List.iter
    (fun prefix ->
      let candidates =
        Rib.candidates prefix t.st.rib
        |> List.filter (fun (r : Rib.route) ->
               t.bug_flags.skip_loop_check
               || Decision.acceptable ~local_as:t.cfg.Config.asn r)
      in
      let candidates =
        match local_route t prefix with
        | Some r -> r :: candidates
        | None -> candidates
      in
      let best = best_route t candidates in
      let current = Rib.loc_get prefix t.st.rib in
      let same =
        match (best, current) with
        | None, None -> true
        | Some a, Some b -> a = b
        | Some _, None | None, Some _ -> false
      in
      if not same then begin
        (match best with
        | Some r ->
            t.st <- { t.st with rib = Rib.loc_set prefix r t.st.rib };
            trace t "loc-rib"
              (Printf.sprintf "%s via %s" (Prefix.to_string prefix)
                 (Ipv4.to_string r.Rib.source.Rib.peer_addr))
        | None ->
            t.st <- { t.st with rib = Rib.loc_del prefix t.st.rib };
            trace t "loc-rib" (Printf.sprintf "%s unreachable" (Prefix.to_string prefix)));
        changed := prefix :: !changed
      end)
    prefixes;
  if !changed <> [] then update_exports t !changed

(* ------------------------------------------------------------------ *)
(* Import path                                                         *)
(* ------------------------------------------------------------------ *)

let check_crash_bug t (attrs : Attr.t) =
  match t.bug_flags.crash_community with
  | Some c when Attr.has_community c attrs ->
      raise (Crash (Printf.sprintf "community handler crash on %s" (Community.to_string c)))
  | Some _ | None -> ()

let import_route t (n : Config.neighbor) prefix (attrs : Attr.t) =
  check_crash_bug t attrs;
  let ebgp = not (is_ibgp t n) in
  (* RFC 4271: LOCAL_PREF received over eBGP must be ignored. *)
  let attrs = if ebgp then { attrs with Attr.local_pref = None } else attrs in
  match
    Policy.apply
      ?site:(Clause_cov.site ~node:t.node n.Config.import_map)
      (effective_policy t (Config.import_policy t.cfg n))
      prefix attrs
  with
  | None -> None
  | Some attrs ->
      Some
        { Rib.attrs;
          source =
            { Rib.peer_addr = n.Config.addr; peer_as = n.Config.remote_as;
              peer_bgp_id =
                Option.value (session t n.Config.addr).Fsm.peer_bgp_id
                  ~default:n.Config.addr;
              ebgp; igp_metric = 0 } }

let process_update t (n : Config.neighbor) (u : Msg.update) =
  Netsim.Stats.incr t.stats "rx_update";
  let peer = n.Config.addr in
  (* Dirty-prefix worklist: only prefixes whose candidate set actually
     changed reach the decision process.  [seen] (a prefix trie used as
     a set) dedups within the message without the old quadratic
     [List.exists] scan. *)
  let dirty = ref [] in
  let seen = ref Prefix_trie.empty in
  let apply p route =
    let rib, changed = Rib.adj_in_update peer p route t.st.rib in
    if changed then begin
      t.st <- { t.st with rib };
      if Prefix_trie.find p !seen = None then begin
        seen := Prefix_trie.add p () !seen;
        dirty := p :: !dirty
      end
    end
  in
  List.iter (fun p -> apply p None) u.Msg.withdrawn;
  (match (u.Msg.attrs, u.Msg.nlri) with
  | Some attrs, (_ :: _ as nlri) ->
      List.iter (fun p -> apply p (import_route t n p attrs)) nlri
  | _, [] -> ()
  | None, _ :: _ ->
      (* Codec guarantees attrs for non-empty NLRI; defensive. *)
      ());
  if !dirty <> [] then run_decision t !dirty

(* ------------------------------------------------------------------ *)
(* Session management                                                  *)
(* ------------------------------------------------------------------ *)

let rec drive t (n : Config.neighbor) event =
  let peer = n.Config.addr in
  let before = session t peer in
  let after, actions = Fsm.handle (fsm_config t n) before event in
  set_session t peer after;
  if before.Fsm.state <> after.Fsm.state then
    trace t "fsm"
      (Printf.sprintf "%s: %s -> %s" (Ipv4.to_string peer)
         (Fsm.state_to_string before.Fsm.state)
         (Fsm.state_to_string after.Fsm.state));
  List.iter (do_action t n) actions;
  rearm_timers t n before after

and do_action t (n : Config.neighbor) action =
  let peer = n.Config.addr in
  match action with
  | Fsm.Send msg -> send_msg t peer msg
  | Fsm.Start_connect ->
      let tm = timers_of t peer in
      cancel_timer tm.connect;
      tm.connect <-
        Some
          (Netsim.Engine.schedule t.eng ~after:t.connect_delay (fun () ->
               drive t n Fsm.Tcp_established))
  | Fsm.Session_up ->
      Netsim.Stats.incr t.stats "session_up";
      trace t "session" (Printf.sprintf "up %s" (Ipv4.to_string peer));
      (* Advertise our Loc-RIB to the fresh peer. *)
      let announce =
        Prefix.Map.fold
          (fun prefix route acc ->
            match export_for t n prefix route with
            | Some attrs ->
                t.st <- { t.st with rib = Rib.adj_out_set peer prefix attrs t.st.rib };
                (prefix, attrs) :: acc
            | None -> acc)
          t.st.rib.Rib.loc []
      in
      if announce <> [] then flush_exports t peer ~announce ~withdraw:[]
  | Fsm.Session_down reason ->
      Netsim.Stats.incr t.stats "session_down";
      trace t "session" (Printf.sprintf "down %s: %s" (Ipv4.to_string peer) reason);
      let lost = Rib.prefixes_from_peer peer t.st.rib in
      t.st <- { t.st with rib = Rib.drop_peer peer t.st.rib };
      run_decision t lost;
      if t.auto_restart then begin
        let tm = timers_of t peer in
        cancel_timer tm.restart;
        tm.restart <-
          Some
            (Netsim.Engine.schedule t.eng ~after:(Netsim.Time.span_sec 10.) (fun () ->
                 drive t n Fsm.Manual_start))
      end
  | Fsm.Deliver_update u -> process_update t n u

and rearm_timers t (n : Config.neighbor) before after =
  if not t.liveness_timers then ()
  else begin
  let peer = n.Config.addr in
  let tm = timers_of t peer in
  let open Fsm in
  (* Hold timer: armed in OpenSent and beyond; re-armed by the caller on
     every received message. *)
  (match after.state with
  | OpenSent | OpenConfirm | Established -> ()
  | Idle | Connect | Active ->
      cancel_timer tm.hold;
      tm.hold <- None;
      cancel_timer tm.keepalive;
      tm.keepalive <- None);
  (* Entering OpenSent arms the hold timer immediately: a peer that
     never answers our OPEN (crashed, partitioned away) must tear the
     session down rather than leave it stuck in OpenSent forever. *)
  (match (before.state, after.state) with
  | (Idle | Connect | Active), OpenSent ->
      let hold = t.cfg.Config.hold_time in
      if hold > 0 then begin
        cancel_timer tm.hold;
        tm.hold <-
          Some
            (Netsim.Engine.schedule t.eng
               ~after:(Netsim.Time.span_sec (float_of_int hold))
               (fun () -> drive t n Fsm.Hold_timer_expired))
      end
  | _ -> ());
  (* Keepalive timer: periodic from OpenConfirm on. *)
  match (before.state, after.state) with
  | (Idle | Connect | Active | OpenSent), (OpenConfirm | Established) ->
      let interval = Fsm.keepalive_interval after in
      if interval > 0 then begin
        let rec tick () =
          let st = session t peer in
          match st.Fsm.state with
          | OpenConfirm | Established ->
              drive t n Keepalive_timer_expired;
              tm.keepalive <-
                Some
                  (Netsim.Engine.schedule t.eng
                     ~after:(Netsim.Time.span_sec (float_of_int interval))
                     tick)
          | Idle | Connect | Active | OpenSent -> ()
        in
        cancel_timer tm.keepalive;
        tm.keepalive <-
          Some
            (Netsim.Engine.schedule t.eng
               ~after:(Netsim.Time.span_sec (float_of_int interval))
               tick)
      end
  | _ -> ()
  end

let reset_hold_timer t (n : Config.neighbor) =
  if not t.liveness_timers then ()
  else
  let peer = n.Config.addr in
  let st = session t peer in
  let hold =
    match st.Fsm.state with
    | Fsm.OpenSent -> t.cfg.Config.hold_time
    | Fsm.OpenConfirm | Fsm.Established -> st.Fsm.negotiated_hold
    | Fsm.Idle | Fsm.Connect | Fsm.Active -> 0
  in
  if hold > 0 then begin
    let tm = timers_of t peer in
    cancel_timer tm.hold;
    tm.hold <-
      Some
        (Netsim.Engine.schedule t.eng ~after:(Netsim.Time.span_sec (float_of_int hold))
           (fun () -> drive t n Fsm.Hold_timer_expired))
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let process_raw t ~from_node raw =
  let peer = addr_of_node from_node in
  match Config.find_neighbor t.cfg peer with
  | None -> Netsim.Stats.incr t.stats "rx_unknown_peer"
  | Some n -> (
      (* A decode that crashed (codec bug) is a programming error, not
         a protocol error: let it kill the router so the explorer (or
         the network's crash policy) detects it.  [fragile_decode]
         seeds the same class of bug artificially — the router dies on
         any malformed input instead of handling it. *)
      let crash_check (e : Wire.error) =
        if Wire.is_codec_crash e then raise (Crash e.Wire.reason);
        if t.bug_flags.fragile_decode then
          raise (Crash (Printf.sprintf "fragile decode: %s" e.Wire.reason))
      in
      let reject (e : Wire.error) =
        Netsim.Stats.incr t.stats "rx_malformed";
        trace t "decode-error" (Format.asprintf "%a" Wire.pp_error e);
        send_msg t peer
          (Msg.Notification { code = e.Wire.code; subcode = e.Wire.subcode; data = "" });
        drive t n Fsm.Manual_stop
      in
      match Wire.decode_graceful raw with
      | Wire.Msg msg ->
          Netsim.Stats.incr t.stats ("rx_" ^ String.lowercase_ascii (Msg.kind msg));
          drive t n (Fsm.Msg_received msg);
          reset_hold_timer t n
      | Wire.Treat_as_withdraw { withdrawn; nlri; err } ->
          crash_check err;
          if (session t peer).Fsm.state = Fsm.Established then begin
            (* RFC 7606: the attributes are unusable but the prefixes
               are known — withdraw them all and keep the session. *)
            Netsim.Stats.incr t.stats "rx_treat_as_withdraw";
            trace t "treat-as-withdraw" (Format.asprintf "%a" Wire.pp_error err);
            process_update t n
              { Msg.withdrawn = withdrawn @ nlri; attrs = None; nlri = [] };
            reset_hold_timer t n
          end
          else
            (* An UPDATE outside Established is an FSM violation no
               matter how its attributes parse. *)
            reject err
      | Wire.Reset err ->
          crash_check err;
          reject err)

let inject_update t ~from u =
  match Config.find_neighbor t.cfg from with
  | None -> invalid_arg "Router.inject_update: unknown peer"
  | Some n -> process_update t n u

let create ?(auto_restart = true) ?(liveness_timers = true)
    ?(connect_delay = Netsim.Time.span_ms 50) ?(bugs = no_bugs) ~net ~node
    (cfg : Config.t) =
  let t =
    { node; cfg; net; eng = Netsim.Network.engine net;
      st = { rib = Rib.empty; sessions = Ipv4.Map.empty };
      timers = Hashtbl.create 8; stats = Netsim.Stats.create ();
      bug_flags = bugs; auto_restart; liveness_timers; connect_delay }
  in
  Netsim.Network.set_handler net node (fun ~src raw -> process_raw t ~from_node:src raw);
  (* Install locally-originated networks. *)
  run_decision t cfg.Config.networks;
  t

let start t =
  List.iter (fun n -> drive t n Fsm.Manual_start) t.cfg.Config.neighbors

let stop_session t peer =
  match Config.find_neighbor t.cfg peer with
  | Some n -> drive t n Fsm.Manual_stop
  | None -> invalid_arg "Router.stop_session: unknown peer"

let start_session t peer =
  match Config.find_neighbor t.cfg peer with
  | Some n -> drive t n Fsm.Manual_start
  | None -> invalid_arg "Router.start_session: unknown peer"

let set_config t cfg =
  t.cfg <- cfg;
  (* Operator action: recompute everything our neighbors see. *)
  let all_prefixes =
    List.sort_uniq Prefix.compare
      (cfg.Config.networks @ Rib.loc_prefixes t.st.rib
      @ Ipv4.Map.fold
          (fun _ pm acc -> Prefix.Map.fold (fun p _ acc -> p :: acc) pm acc)
          t.st.rib.Rib.adj_in [])
  in
  (* Re-apply import policies to Adj-RIB-In under the new config. *)
  Ipv4.Map.iter
    (fun peer pm ->
      match Config.find_neighbor cfg peer with
      | None -> t.st <- { t.st with rib = Rib.drop_peer peer t.st.rib }
      | Some n ->
          Prefix.Map.iter
            (fun prefix (r : Rib.route) ->
              match import_route t n prefix r.Rib.attrs with
              | Some route ->
                  t.st <- { t.st with rib = Rib.adj_in_set peer prefix route t.st.rib }
              | None -> t.st <- { t.st with rib = Rib.adj_in_del peer prefix t.st.rib })
            pm)
    t.st.rib.Rib.adj_in;
  run_decision t all_prefixes;
  update_exports t all_prefixes

let restore t st = t.st <- st
