(** Sparrow: a second, independent BGP speaker implementation.

    Interoperates with {!Router} purely over RFC 4271 wire messages —
    the "multiple implementations of open interfaces" that make the
    paper's target systems heterogeneous.  Differences from the
    reference implementation (all within spec latitude, or documented
    leniencies):

    - reactive session bring-up (greets on start, answers OPEN with
      OPEN + KEEPALIVE) instead of the full RFC state machine;
    - tolerates early UPDATEs instead of sending an FSM-error
      NOTIFICATION;
    - radix tries and per-peer association lists instead of persistent
      maps; its own decision-process implementation;
    - one UPDATE per prefix on the wire (no attribute batching);
    - supports only the [crash_community], [skip_loop_check] and
      [fragile_decode] seeded bugs ({!Router.bugs} flags it does not
      model are ignored). *)

type t

val create :
  ?liveness_timers:bool ->
  ?bugs:Router.bugs ->
  net:string Netsim.Network.t ->
  node:int ->
  Config.t ->
  t

val start : t -> unit
val node : t -> int
val config : t -> Config.t
val rib_view : t -> Rib.t
(** Materialize the Rib-shaped view of the current state. *)

val established_peers : t -> Ipv4.t list
val process_raw : t -> from_node:int -> string -> unit
val inject_update : t -> from:Ipv4.t -> Msg.update -> unit
val stats : t -> Netsim.Stats.t

val restore_view : t -> rib:Rib.t -> established:Ipv4.t list -> unit
(** Load routing state from a Rib-shaped view (used by checkpoint
    import); peers in [established] come back up. *)

val speaker : t -> Speaker.t
