type neighbor = {
  addr : Ipv4.t;
  remote_as : int;
  import_map : string option;
  export_map : string option;
}

type t = {
  asn : int;
  router_id : Ipv4.t;
  hold_time : int;
  networks : Prefix.t list;
  neighbors : neighbor list;
  route_maps : (string * Policy.t) list;
  always_compare_med : bool;
}

let make ?(hold_time = 90) ?(networks = []) ?(neighbors = []) ?(route_maps = [])
    ?(always_compare_med = false) ~asn ~router_id () =
  { asn; router_id; hold_time; networks; neighbors; route_maps; always_compare_med }

let neighbor ?import_map ?export_map addr ~remote_as =
  { addr; remote_as; import_map; export_map }

let find_route_map t name = List.assoc_opt name t.route_maps
let find_neighbor t addr = List.find_opt (fun n -> Ipv4.equal n.addr addr) t.neighbors

let policy_of t = function
  | None -> Policy.accept_all
  | Some name -> (
      match find_route_map t name with
      | Some p -> Policy.normalize p
      | None -> Policy.deny_all)

let import_policy t n = policy_of t n.import_map
let export_policy t n = policy_of t n.export_map

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if t.asn <= 0 || t.asn > 0xFFFF then err "ASN %d out of range" t.asn;
  if t.hold_time <> 0 && t.hold_time < 3 then err "hold-time %d invalid" t.hold_time;
  if Ipv4.equal t.router_id Ipv4.any then err "router-id must be set";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n.addr then
        err "duplicate neighbor %s" (Ipv4.to_string n.addr);
      Hashtbl.replace seen n.addr ();
      if n.remote_as <= 0 || n.remote_as > 0xFFFF then
        err "neighbor %s: remote-as %d out of range" (Ipv4.to_string n.addr)
          n.remote_as;
      let check_map = function
        | Some name when find_route_map t name = None ->
            err "neighbor %s references undefined route-map %s"
              (Ipv4.to_string n.addr) name
        | Some _ | None -> ()
      in
      check_map n.import_map;
      check_map n.export_map)
    t.neighbors;
  match !errs with [] -> Ok () | l -> Error (List.rev l)

let referenced_map_names t =
  List.concat_map
    (fun n -> List.filter_map Fun.id [ n.import_map; n.export_map ])
    t.neighbors
  |> List.sort_uniq String.compare

let referenced_maps t =
  let used = referenced_map_names t in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (name, _) ->
      if Hashtbl.mem seen name || not (List.mem name used) then false
      else begin
        Hashtbl.add seen name ();
        true
      end)
    t.route_maps

let lint t =
  let warns = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warns := s :: !warns) fmt in
  let used = referenced_map_names t in
  List.iter
    (fun (name, map) ->
      if not (List.mem name used) then
        warn "route-map %s is defined but never referenced" name;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (e : Policy.entry) ->
          if Hashtbl.mem seen e.Policy.seq then
            warn "route-map %s: duplicate entry sequence %d" name e.Policy.seq
          else Hashtbl.add seen e.Policy.seq ())
        map)
    t.route_maps;
  List.rev !warns

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type parse_error = { line : int; message : string }

let pp_parse_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse of parse_error

let perror line fmt = Printf.ksprintf (fun message -> raise (Parse { line; message })) fmt

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s

let int_arg line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> perror line "expected integer for %s, got %S" what s

let ip_arg line s =
  match Ipv4.of_string s with Ok a -> a | Error e -> perror line "%s" e

let prefix_arg line s =
  match Prefix.of_string s with Ok p -> p | Error e -> perror line "%s" e

let community_arg line s =
  match Community.of_string s with Ok c -> c | Error e -> perror line "%s" e

let origin_arg line = function
  | "igp" -> Attr.Igp
  | "egp" -> Attr.Egp
  | "incomplete" -> Attr.Incomplete
  | s -> perror line "unknown origin %S" s

(* One [match ...] clause inside a route-map entry. *)
let parse_match line = function
  | "prefix" :: p :: rest ->
      let base = prefix_arg line p in
      let rec bounds ge le = function
        | "ge" :: v :: rest -> bounds (Some (int_arg line "ge" v)) le rest
        | "le" :: v :: rest -> bounds ge (Some (int_arg line "le" v)) rest
        | [] -> (ge, le)
        | w :: _ -> perror line "unexpected token %S in match prefix" w
      in
      let ge, le = bounds None None rest in
      Policy.Match_prefix [ Policy.prefix_rule ?ge ?le base ]
  | [ "community"; c ] -> Policy.Match_community (community_arg line c)
  | [ "origin"; o ] -> Policy.Match_origin (origin_arg line o)
  | [ "next-hop"; ip ] -> Policy.Match_next_hop (ip_arg line ip)
  | [ "as-path"; "contains"; asn ] ->
      Policy.Match_as_path (Policy.Path_contains (int_arg line "asn" asn))
  | [ "as-path"; "originated-by"; asn ] ->
      Policy.Match_as_path (Policy.Path_originated_by (int_arg line "asn" asn))
  | [ "as-path"; "neighbor"; asn ] ->
      Policy.Match_as_path (Policy.Path_neighbor_is (int_arg line "asn" asn))
  | [ "as-path"; "length-le"; n ] ->
      Policy.Match_as_path (Policy.Path_length_at_most (int_arg line "n" n))
  | [ "as-path"; "length-ge"; n ] ->
      Policy.Match_as_path (Policy.Path_length_at_least (int_arg line "n" n))
  | toks -> perror line "cannot parse match clause: %s" (String.concat " " toks)

let parse_set line = function
  | [ "local-pref"; v ] -> Policy.Set_local_pref (int_arg line "local-pref" v)
  | [ "med"; "none" ] -> Policy.Set_med None
  | [ "med"; v ] -> Policy.Set_med (Some (int_arg line "med" v))
  | [ "origin"; o ] -> Policy.Set_origin (origin_arg line o)
  | [ "community"; "add"; c ] -> Policy.Add_community (community_arg line c)
  | [ "community"; "del"; c ] -> Policy.Del_community (community_arg line c)
  | [ "prepend"; asn; n ] ->
      Policy.Prepend_as (int_arg line "asn" asn, int_arg line "count" n)
  | [ "next-hop"; ip ] -> Policy.Set_next_hop (ip_arg line ip)
  | toks -> perror line "cannot parse set clause: %s" (String.concat " " toks)

type builder = {
  mutable b_asn : int option;
  mutable b_router_id : Ipv4.t option;
  mutable b_hold : int;
  mutable b_networks : Prefix.t list;
  mutable b_neighbors : neighbor list;
  mutable b_maps : (string * Policy.t) list;
  mutable b_med : bool;
}

let parse_neighbor line rest =
  match rest with
  | addr :: "remote-as" :: asn :: opts ->
      let addr = ip_arg line addr in
      let remote_as = int_arg line "remote-as" asn in
      let rec go import_map export_map = function
        | "import" :: name :: rest -> go (Some name) export_map rest
        | "export" :: name :: rest -> go import_map (Some name) rest
        | [] -> { addr; remote_as; import_map; export_map }
        | w :: _ -> perror line "unexpected token %S in neighbor" w
      in
      go None None opts
  | _ -> perror line "expected: neighbor <ip> remote-as <asn> [import M] [export M]"

(* Parse the body of one route-map block; returns the map and the number
   of lines consumed (up to and including "end"). *)
let parse_route_map lines start =
  let entries = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some e -> entries := e :: !entries
    | None -> ()
  in
  let rec go i =
    if i >= Array.length lines then perror (start + 1) "route-map not closed by 'end'"
    else
      let lineno = i + 1 in
      match words (strip_comment lines.(i)) with
      | [] -> go (i + 1)
      | [ "end" ] ->
          flush ();
          (Policy.normalize (List.rev !entries), i + 1)
      | "entry" :: seq :: action :: [] ->
          flush ();
          let action =
            match action with
            | "permit" -> Policy.Permit
            | "deny" -> Policy.Deny
            | a -> perror lineno "expected permit/deny, got %S" a
          in
          current :=
            Some (Policy.entry (int_arg lineno "sequence" seq) action);
          go (i + 1)
      | "match" :: rest -> (
          match !current with
          | None -> perror lineno "match outside entry"
          | Some e ->
              current := Some { e with Policy.matches = e.Policy.matches @ [ parse_match lineno rest ] };
              go (i + 1))
      | "set" :: rest -> (
          match !current with
          | None -> perror lineno "set outside entry"
          | Some e ->
              current := Some { e with Policy.sets = e.Policy.sets @ [ parse_set lineno rest ] };
              go (i + 1))
      | toks -> perror lineno "unexpected in route-map: %s" (String.concat " " toks)
  in
  go start

let parse text =
  try
    let lines = Array.of_list (String.split_on_char '\n' text) in
    let b =
      { b_asn = None; b_router_id = None; b_hold = 90; b_networks = [];
        b_neighbors = []; b_maps = []; b_med = false }
    in
    let rec go i =
      if i >= Array.length lines then ()
      else
        let lineno = i + 1 in
        match words (strip_comment lines.(i)) with
        | [] -> go (i + 1)
        | [ "router"; "bgp"; asn ] ->
            b.b_asn <- Some (int_arg lineno "asn" asn);
            go (i + 1)
        | [ "router-id"; ip ] ->
            b.b_router_id <- Some (ip_arg lineno ip);
            go (i + 1)
        | [ "hold-time"; v ] ->
            b.b_hold <- int_arg lineno "hold-time" v;
            go (i + 1)
        | [ "network"; p ] ->
            b.b_networks <- b.b_networks @ [ prefix_arg lineno p ];
            go (i + 1)
        | [ "always-compare-med" ] ->
            b.b_med <- true;
            go (i + 1)
        | "neighbor" :: rest ->
            b.b_neighbors <- b.b_neighbors @ [ parse_neighbor lineno rest ];
            go (i + 1)
        | [ "route-map"; name ] ->
            let map, next = parse_route_map lines (i + 1) in
            b.b_maps <- b.b_maps @ [ (name, map) ];
            go next
        | toks -> perror lineno "unexpected directive: %s" (String.concat " " toks)
    in
    go 0;
    let asn = match b.b_asn with Some a -> a | None -> perror 1 "missing 'router bgp <asn>'" in
    let router_id =
      match b.b_router_id with Some r -> r | None -> perror 1 "missing 'router-id'"
    in
    Ok
      (make ~hold_time:b.b_hold ~networks:b.b_networks ~neighbors:b.b_neighbors
         ~route_maps:b.b_maps ~always_compare_med:b.b_med ~asn ~router_id ())
  with Parse e -> Error e

let parse_exn text =
  match parse text with
  | Ok t -> t
  | Error e -> invalid_arg (Format.asprintf "Config.parse_exn: %a" pp_parse_error e)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let match_to_text = function
  | Policy.Match_prefix rules ->
      rules
      |> List.map (fun (r : Policy.prefix_rule) ->
             Printf.sprintf "match prefix %s%s%s"
               (Prefix.to_string r.rule_prefix)
               (match r.ge with Some v -> Printf.sprintf " ge %d" v | None -> "")
               (match r.le with Some v -> Printf.sprintf " le %d" v | None -> ""))
      |> String.concat "\n    "
  | Policy.Match_as_path (Policy.Path_contains a) -> Printf.sprintf "match as-path contains %d" a
  | Policy.Match_as_path (Policy.Path_originated_by a) ->
      Printf.sprintf "match as-path originated-by %d" a
  | Policy.Match_as_path (Policy.Path_neighbor_is a) ->
      Printf.sprintf "match as-path neighbor %d" a
  | Policy.Match_as_path (Policy.Path_length_at_most n) ->
      Printf.sprintf "match as-path length-le %d" n
  | Policy.Match_as_path (Policy.Path_length_at_least n) ->
      Printf.sprintf "match as-path length-ge %d" n
  | Policy.Match_community c -> Printf.sprintf "match community %s" (Community.to_string c)
  | Policy.Match_origin o ->
      Printf.sprintf "match origin %s" (String.lowercase_ascii (Attr.origin_to_string o))
  | Policy.Match_next_hop ip -> Printf.sprintf "match next-hop %s" (Ipv4.to_string ip)

let set_to_text = function
  | Policy.Set_local_pref v -> Printf.sprintf "set local-pref %d" v
  | Policy.Set_med None -> "set med none"
  | Policy.Set_med (Some v) -> Printf.sprintf "set med %d" v
  | Policy.Set_origin o ->
      Printf.sprintf "set origin %s" (String.lowercase_ascii (Attr.origin_to_string o))
  | Policy.Add_community c -> Printf.sprintf "set community add %s" (Community.to_string c)
  | Policy.Del_community c -> Printf.sprintf "set community del %s" (Community.to_string c)
  | Policy.Prepend_as (a, n) -> Printf.sprintf "set prepend %d %d" a n
  | Policy.Set_next_hop ip -> Printf.sprintf "set next-hop %s" (Ipv4.to_string ip)

let to_text t =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "router bgp %d" t.asn;
  line "router-id %s" (Ipv4.to_string t.router_id);
  line "hold-time %d" t.hold_time;
  if t.always_compare_med then line "always-compare-med";
  List.iter (fun p -> line "network %s" (Prefix.to_string p)) t.networks;
  List.iter
    (fun n ->
      line "neighbor %s remote-as %d%s%s" (Ipv4.to_string n.addr) n.remote_as
        (match n.import_map with Some m -> " import " ^ m | None -> "")
        (match n.export_map with Some m -> " export " ^ m | None -> ""))
    t.neighbors;
  List.iter
    (fun (name, map) ->
      line "route-map %s" name;
      List.iter
        (fun (e : Policy.entry) ->
          line "  entry %d %s" e.seq
            (match e.action with Policy.Permit -> "permit" | Policy.Deny -> "deny");
          List.iter (fun m -> line "    %s" (match_to_text m)) e.matches;
          List.iter (fun s -> line "    %s" (set_to_text s)) e.sets)
        map;
      line "end")
    t.route_maps;
  Buffer.contents buf
