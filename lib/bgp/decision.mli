(** The BGP decision process (RFC 4271 §9.1.2.2).

    Tie-break order: LOCAL_PREF, AS_PATH length, ORIGIN, MED, eBGP over
    iBGP, IGP metric to next hop, lowest BGP identifier, lowest peer
    address.  Exposed step-by-step so the exploration layer can reason
    about *which* rule decided. *)

type step =
  | Local_origin  (** locally-originated routes win (administrative weight) *)
  | Local_pref
  | As_path_length
  | Origin
  | Med
  | Ebgp_over_ibgp
  | Igp_metric
  | Router_id
  | Peer_addr
  | Equal

val step_to_string : step -> string

type config = { always_compare_med : bool }

val default_config : config

val compare_routes : config -> Rib.route -> Rib.route -> int * step
(** [compare_routes cfg a b] is negative when [a] is preferred, with the
    first step that discriminated.  MED only discriminates between
    routes learned from the same neighboring AS unless
    [always_compare_med]; a missing MED compares as 0. *)

val best : config -> Rib.route list -> Rib.route option
(** Fold of [compare_routes] over the candidates (deterministic given
    candidate order; MED's non-transitivity is inherited from the
    protocol, see EXPERIMENTS.md T4). *)

val select : config -> ?invert_med:bool -> Rib.route list -> Rib.route option
(** [best], optionally with the seeded MED-inversion bug ([invert_med]
    flips the sign of the MED comparison so selection prefers the worst
    exit).  The single selection entry point shared by routers and the
    full-recompute oracle used to pin incremental decision semantics. *)

val acceptable : local_as:int -> Rib.route -> bool
(** Sanity gate before a route enters the decision process: AS-path
    loop check and martian next-hop check. *)
