module J = Telemetry.Json

type step = { st_stage : string; st_before : int; st_after : int; st_tests : int }

type result = {
  r_signature : Dice.Signature.t;
  r_original : Scenario.t;
  r_minimized : Scenario.t;
  r_original_size : int;
  r_minimized_size : int;
  r_steps : step list;
  r_tests : int;
}

let default_max_tests = 200

(* ------------------------------------------------------------------ *)
(* Budgeted ddmin (Zeller & Hildebrandt)                               *)
(* ------------------------------------------------------------------ *)

(* Split [items] into [n] contiguous chunks of near-equal length. *)
let chunks n items =
  let len = List.length items in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i = n then List.rev acc
    else
      let k = base + if i < extra then 1 else 0 in
      let rec take k rest front =
        if k = 0 then (List.rev front, rest)
        else match rest with
          | [] -> (List.rev front, [])
          | x :: tl -> take (k - 1) tl (x :: front)
      in
      let chunk, rest = take k rest [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 items [] |> List.filter (fun c -> c <> [])

let indices items = List.mapi (fun i _ -> i) items

(* [ddmin ~test items]: a locally-minimal sublist of [items] for which
   [test] holds, assuming [test items] holds.  Works over positions so
   duplicate elements are handled structurally; the search order is
   fixed, so a pure [test] makes the result deterministic. *)
let ddmin ~test items =
  if items = [] || test [] then []
  else
    let select idxs = List.filteri (fun i _ -> List.mem i idxs) items in
    let rec go idxs n =
      let len = List.length idxs in
      if len <= 1 then idxs
      else
        let parts = chunks (min n len) idxs in
        match List.find_opt (fun part -> test (select part)) parts with
        | Some part -> go part 2
        | None -> (
            let complements =
              if List.length parts <= 2 then []
              else
                List.map
                  (fun part -> List.filter (fun i -> not (List.mem i part)) idxs)
                  parts
            in
            match List.find_opt (fun c -> test (select c)) complements with
            | Some c -> go c (max (n - 1) 2)
            | None -> if n < len then go idxs (min len (2 * n)) else idxs)
    in
    select (go (indices items) 2)

(* ------------------------------------------------------------------ *)
(* Scenario surgery helpers                                            *)
(* ------------------------------------------------------------------ *)

let nodes_of_inject = function
  | None -> []
  | Some (Dice.Inject.Prefix_hijack { at; victim }) -> [ at; victim ]
  | Some (Dice.Inject.Bogus_netmask { at }) -> [ at ]
  | Some (Dice.Inject.Policy_dispute { cycle; victim }) -> victim :: cycle
  | Some (Dice.Inject.Loop_check_bug { at }) -> [ at ]
  | Some (Dice.Inject.Inverted_med_bug { at }) -> [ at ]
  | Some (Dice.Inject.Crash_bug { at; _ }) -> [ at ]

let restrict_mangle keep m =
  let fragile =
    match m.Scenario.mg_fragile_node with
    | Some n when List.mem n keep -> Some n
    | _ -> None
  in
  { m with Scenario.mg_fragile_node = fragile }

let with_keep d keep =
  { d with
    Scenario.dp_keep = Some keep;
    dp_churn = Netsim.Churn.restrict ~nodes:keep d.Scenario.dp_churn;
    dp_mangle = Option.map (restrict_mangle keep) d.Scenario.dp_mangle }

let sorted_uniq l = List.sort_uniq compare l

(* ------------------------------------------------------------------ *)
(* The staged pipeline                                                 *)
(* ------------------------------------------------------------------ *)

type state = {
  target : Dice.Signature.t;
  mutable tests : int;
  max_tests : int;
  mutable current : Scenario.t;
  mutable steps : step list;
}

let check st candidate =
  if st.tests >= st.max_tests then false
  else begin
    st.tests <- st.tests + 1;
    Scenario.detects candidate st.target
  end

(* Run one named stage: [f] proposes and validates candidates via
   [check], returning the (possibly unchanged) scenario. *)
let stage st name f =
  let before_size = Scenario.size st.current in
  let before_tests = st.tests in
  Telemetry.with_span "triage.minimize.stage"
    ~attrs:[ ("stage", J.String name); ("size_before", J.Int before_size) ]
    (fun sp ->
      let next = f st.current in
      if not (Scenario.equal next st.current) then st.current <- next;
      let after_size = Scenario.size st.current in
      Telemetry.add_attr sp
        [ ("size_after", J.Int after_size);
          ("tests", J.Int (st.tests - before_tests)) ];
      st.steps <-
        { st_stage = name;
          st_before = before_size;
          st_after = after_size;
          st_tests = st.tests - before_tests }
        :: st.steps)

(* --- stage: Explore -> Direct ------------------------------------- *)

let direct_candidates d (target : Dice.Signature.t) hint_input =
  let graph = Scenario.graph_of d in
  let ids = Topology.Graph.node_ids graph in
  (* Detection node first: baseline faults surface from any explorer
     node's snapshot, but the manifesting node is the cheapest guess. *)
  let ordered =
    if target.Dice.Signature.sg_node >= 0 && List.mem target.Dice.Signature.sg_node ids
    then
      target.Dice.Signature.sg_node
      :: List.filter (fun n -> n <> target.Dice.Signature.sg_node) ids
    else ids
  in
  List.concat_map
    (fun node ->
      let base = Scenario.Direct { dr_node = node; dr_peer = 0; dr_input = None } in
      match hint_input with
      | None -> [ base ]
      | Some input ->
          [ Scenario.Direct { dr_node = node; dr_peer = 0; dr_input = Some input };
            base ])
    ordered

let to_direct st hint_input s =
  match s with
  | Scenario.Wire _ -> s
  | Scenario.Deploy d -> (
      match d.Scenario.dp_mode with
      | Scenario.Direct _ -> s
      | Scenario.Explore _ ->
          let candidates = direct_candidates d st.target hint_input in
          let found =
            List.find_opt
              (fun mode ->
                check st (Scenario.Deploy { d with Scenario.dp_mode = mode }))
              candidates
          in
          (match found with
          | Some mode -> Scenario.Deploy { d with Scenario.dp_mode = mode }
          | None -> s))

(* --- stage: topology ddmin ----------------------------------------- *)

let shrink_topology st s =
  match s with
  | Scenario.Wire _ -> s
  | Scenario.Deploy d ->
      let graph = Scenario.graph_of d in
      let ids = Topology.Graph.node_ids graph in
      let essential =
        sorted_uniq
          (List.filter
             (fun n -> List.mem n ids)
             ((if st.target.Dice.Signature.sg_node >= 0 then
                 [ st.target.Dice.Signature.sg_node ]
               else [])
             @ nodes_of_inject d.Scenario.dp_inject
             @ List.concat_map Confuzz.Mutation.nodes_of d.Scenario.dp_confuzz
             @ (match d.Scenario.dp_mode with
               | Scenario.Direct { dr_node; _ } -> [ dr_node ]
               | Scenario.Explore { ex_nodes; _ } -> ex_nodes)))
      in
      let optional = List.filter (fun n -> not (List.mem n essential)) ids in
      let test subset =
        let keep = sorted_uniq (essential @ subset) in
        keep <> [] && check st (Scenario.Deploy (with_keep d keep))
      in
      let kept_optional = ddmin ~test optional in
      let keep = sorted_uniq (essential @ kept_optional) in
      if List.length keep < List.length ids then Scenario.Deploy (with_keep d keep)
      else s

(* --- stage: churn ddmin -------------------------------------------- *)

let shrink_churn st s =
  match s with
  | Scenario.Wire _ | Scenario.Deploy { dp_churn = []; _ } -> s
  | Scenario.Deploy d ->
      let test entries =
        check st (Scenario.Deploy { d with Scenario.dp_churn = entries })
      in
      let kept = ddmin ~test d.Scenario.dp_churn in
      Scenario.Deploy { d with Scenario.dp_churn = kept }

(* --- stage: mangler ------------------------------------------------- *)

let shrink_mangle st s =
  match s with
  | Scenario.Wire _ | Scenario.Deploy { dp_mangle = None; _ } -> s
  | Scenario.Deploy ({ dp_mangle = Some m; _ } as d) ->
      if check st (Scenario.Deploy { d with Scenario.dp_mangle = None }) then
        Scenario.Deploy { d with Scenario.dp_mangle = None }
      else begin
        let test entries =
          check st
            (Scenario.Deploy
               { d with Scenario.dp_mangle = Some { m with Scenario.mg_schedule = entries } })
        in
        let kept = ddmin ~test m.Scenario.mg_schedule in
        Scenario.Deploy
          { d with Scenario.dp_mangle = Some { m with Scenario.mg_schedule = kept } }
      end

(* --- stage: config-mutation ddmin ----------------------------------- *)

let shrink_confuzz st s =
  match s with
  | Scenario.Wire _ | Scenario.Deploy { dp_confuzz = []; _ } -> s
  | Scenario.Deploy d ->
      let test ms =
        check st (Scenario.Deploy { d with Scenario.dp_confuzz = ms })
      in
      let kept = ddmin ~test d.Scenario.dp_confuzz in
      Scenario.Deploy { d with Scenario.dp_confuzz = kept }

(* --- stage: input ddmin --------------------------------------------- *)

let shrink_input st s =
  match s with
  | Scenario.Deploy
      ({ dp_mode = Scenario.Direct ({ dr_input = Some input; _ } as dr); _ } as d) ->
      let rebuild input =
        Scenario.Deploy
          { d with
            Scenario.dp_mode =
              Scenario.Direct
                { dr with dr_input = (match input with [] -> None | i -> Some i) } }
      in
      let test bindings = check st (rebuild bindings) in
      let kept = ddmin ~test input in
      rebuild kept
  | _ -> s

(* --- stage: settle shrink ------------------------------------------- *)

let shrink_settle st s =
  match s with
  | Scenario.Wire _ -> s
  | Scenario.Deploy d ->
      if d.Scenario.dp_settle_sec <= 0. then s
      else
        let candidates =
          [ 0.; d.Scenario.dp_settle_sec /. 8.; d.Scenario.dp_settle_sec /. 2. ]
        in
        let found =
          List.find_opt
            (fun sec ->
              sec < d.Scenario.dp_settle_sec
              && check st (Scenario.Deploy { d with Scenario.dp_settle_sec = sec }))
            candidates
        in
        (match found with
        | Some sec -> Scenario.Deploy { d with Scenario.dp_settle_sec = sec }
        | None -> s)

(* --- stage: exploration narrowing (fallback when Direct failed) ----- *)

let shrink_explore st s =
  match s with
  | Scenario.Deploy ({ dp_mode = Scenario.Explore e; _ } as d) ->
      let try_mode e' =
        check st (Scenario.Deploy { d with Scenario.dp_mode = Scenario.Explore e' })
      in
      let e =
        (* One round on the manifesting node beats a full sweep. *)
        let narrowed =
          if st.target.Dice.Signature.sg_node >= 0 then
            { e with
              Scenario.ex_rounds = 1;
              ex_nodes = [ st.target.Dice.Signature.sg_node ] }
          else { e with Scenario.ex_rounds = 1 }
        in
        if try_mode narrowed then narrowed else e
      in
      let e =
        let lean = { e with Scenario.ex_fuzz_extra = 0; ex_mangle_extra = 0 } in
        if (e.Scenario.ex_fuzz_extra > 0 || e.Scenario.ex_mangle_extra > 0)
           && try_mode lean
        then lean
        else e
      in
      let e =
        let halved = { e with Scenario.ex_max_inputs = max 1 (e.Scenario.ex_max_inputs / 2) } in
        if halved.Scenario.ex_max_inputs < e.Scenario.ex_max_inputs && try_mode halved
        then halved
        else e
      in
      Scenario.Deploy { d with Scenario.dp_mode = Scenario.Explore e }
  | _ -> s

(* --- stage: wire byte ddmin ----------------------------------------- *)

let shrink_wire st s =
  match s with
  | Scenario.Deploy _ -> s
  | Scenario.Wire bytes ->
      let chars = List.init (String.length bytes) (String.get bytes) in
      let test kept =
        check st (Scenario.Wire (String.init (List.length kept) (List.nth kept)))
      in
      let kept = ddmin ~test chars in
      Scenario.Wire (String.init (List.length kept) (List.nth kept))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?(max_tests = default_max_tests) ?hint_input ~target scenario =
  Telemetry.with_span "triage.minimize"
    ~attrs:
      [ ("signature", J.String (Dice.Signature.to_string target));
        ("original_size", J.Int (Scenario.size scenario)) ]
    (fun sp ->
      let st = { target; tests = 0; max_tests; current = scenario; steps = [] } in
      (match scenario with
      | Scenario.Wire _ -> stage st "wire-bytes" (shrink_wire st)
      | Scenario.Deploy _ ->
          stage st "to-direct" (to_direct st hint_input);
          stage st "topology" (shrink_topology st);
          stage st "churn" (shrink_churn st);
          stage st "mangle" (shrink_mangle st);
          stage st "confuzz" (shrink_confuzz st);
          stage st "input" (shrink_input st);
          stage st "explore" (shrink_explore st);
          stage st "settle" (shrink_settle st));
      let minimized = st.current in
      let r =
        { r_signature = target;
          r_original = scenario;
          r_minimized = minimized;
          r_original_size = Scenario.size scenario;
          r_minimized_size = Scenario.size minimized;
          r_steps = List.rev st.steps;
          r_tests = st.tests }
      in
      Telemetry.add_attr sp
        [ ("minimized_size", J.Int r.r_minimized_size);
          ("tests", J.Int r.r_tests) ];
      r)

let pp_result ppf r =
  Format.fprintf ppf "@[<v>minimized %s@ size %d -> %d in %d replays@ "
    (Dice.Signature.to_string r.r_signature)
    r.r_original_size r.r_minimized_size r.r_tests;
  List.iter
    (fun s ->
      if s.st_after <> s.st_before then
        Format.fprintf ppf "  %-10s %d -> %d (%d tests)@ " s.st_stage s.st_before
          s.st_after s.st_tests)
    r.r_steps;
  Format.fprintf ppf "@]"
