(** Auto-triage: live detections → minimized repros → corpus entries.

    A {!t} wraps the scenario a live run was launched from.  Wire its
    {!hook} into {!Dice.Orchestrator.run}'s [?on_fault] and every newly
    detected fault is (1) fingerprinted against the deployment graph,
    (2) confirmed by one headless replay of the scenario, (3) shrunk by
    {!Minimize.run} using the detection's own concolic input as a hint,
    and (4) filed into the corpus — all while the live run keeps going
    (nested replays save/restore the telemetry clock, see
    {!Scenario.run}). *)

type filed = {
  fd_fault : Dice.Fault.t;
  fd_signature : Dice.Signature.t;
  fd_result : Minimize.result option;  (** [None] when minimization was off *)
  fd_entry : Corpus.entry option;
      (** [None] when the headless replay never confirmed the signature
          (nothing was filed) *)
}

type t

val collector :
  ?minimize:bool ->
  ?max_tests:int ->
  ?repair:(Scenario.t -> Dice.Signature.t -> Telemetry.Json.t option) ->
  corpus_dir:string ->
  scenario:Scenario.t ->
  graph:Topology.Graph.t ->
  unit ->
  t
(** [scenario] must describe the run the faults come from (same
    topology, seed, schedules) — it is what gets minimized and stored.
    Each distinct signature is processed once per collector.

    [repair], when given, runs over each entry right after filing:
    called with the entry's (minimized) scenario and its signature, and
    any [dice-repair/1] record it returns is stored into the entry via
    {!Corpus.set_repair}.  Passed as a closure so this library does not
    depend on the repair engine — the CLI wires [Repair.Search] in. *)

val hook : t -> Dice.Fault.t -> unit
(** The function to pass as [?on_fault]. *)

val file_fault : t -> Dice.Fault.t -> filed option
(** Process one fault now; [None] if its signature was already seen. *)

val file_summary : t -> Dice.Orchestrator.summary -> filed list
(** After-the-fact filing: push every fault of a finished run through
    the collector, then return everything it has filed so far. *)

val filed : t -> filed list
(** In processing order. *)
