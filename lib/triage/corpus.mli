(** The persistent regression corpus: one JSON file per stable fault
    signature.

    Layout: a directory of [<md5(signature)>.json] files, each a single
    [dice-corpus/1] object:

    {v
    { "schema":     "dice-corpus/1",
      "signature":  "<Signature.to_string>",
      "scenario":   { ... Scenario.to_json ... },
      "first_seen": 1754000000.0,      // unix seconds
      "last_seen":  1754000000.0,
      "hits":       3,
      "env":        { "ocaml": "...", "os": "...", "word_size": "64" } }
    v}

    {!validate} is the {e single} schema gate — the CLI, the wire
    fuzzer's failure filing and the CI replay job all load entries
    through it, so there is exactly one definition of a well-formed
    corpus entry. *)

val schema_version : string
(** ["dice-corpus/1"]. *)

type entry = {
  e_signature : Dice.Signature.t;
  e_scenario : Scenario.t;  (** the (minimized) repro *)
  e_first_seen : float;  (** unix seconds *)
  e_last_seen : float;
  e_hits : int;  (** distinct filings of this signature *)
  e_env : (string * string) list;  (** toolchain fingerprint of the last filing *)
  e_repair : Telemetry.Json.t option;
      (** optional [dice-repair/1] record from the repair engine.
          Entries without one serialize byte-for-byte as before the
          field existed; {!validate} only checks the schema tag here —
          full structure is [telemetry_check --repair]'s job.  Filing a
          {e smaller} repro via {!add} drops the record (it targeted
          the replaced scenario). *)
}

val env_fingerprint : unit -> (string * string) list

val filename_of : Dice.Signature.t -> string
(** [md5_hex (Signature.to_string sg) ^ ".json"] — stable across runs
    and hosts. *)

val entry_to_json : entry -> Telemetry.Json.t
val validate : Telemetry.Json.t -> (entry, string) result
val entry_of_string : string -> (entry, string) result

(** {1 Store operations} *)

val add : dir:string -> ?now:float -> Dice.Signature.t -> Scenario.t -> entry
(** File a detection: creates [dir] if needed; a fresh signature gets a
    new entry, a known one bumps [hits]/[last_seen] and keeps whichever
    repro is {e smaller} ({!Scenario.size}).  Writes are atomic
    (tmp + rename).  [now] defaults to wall clock — tests pass it
    explicitly. *)

val load : dir:string -> (string * (entry, string) result) list
(** Every [.json] file in [dir], sorted by filename, each through
    {!validate}.  Empty list for a missing directory. *)

val find : dir:string -> Dice.Signature.t -> entry option
val remove : dir:string -> Dice.Signature.t -> bool

(** {1 Repair record} *)

val repair_schema_version : string
(** ["dice-repair/1"]. *)

type repair_status = [ `None | `Candidate | `Verified ]

val repair_status : entry -> repair_status
(** [`None] also covers a stored record whose status is "none-found"
    (a repair ran and produced nothing). *)

val repair_status_name : repair_status -> string

val set_repair : dir:string -> entry -> Telemetry.Json.t -> entry
(** Store a repair record into the entry's file (atomic rewrite, like
    {!add}) and return the updated entry. *)

val patched_scenario : entry -> Scenario.t option
(** The stored scenario with the repair record's winning ["patch"]
    mutations appended to [dp_confuzz] — the scenario whose replay the
    verifier accepted.  [None] when there is no record, no patch, the
    patch fails to decode, or the scenario is a wire repro. *)

(** {1 Replay} *)

type verdict =
  | Confirmed of Dice.Signature.t list
      (** the stored signature was detected again; the list holds any
          {e other} signatures the replay reported alongside it (the
          strict CI replay flags ones missing from the corpus) *)
  | Vanished of Dice.Signature.t list
      (** replay ran but reported different (possibly zero) signatures *)
  | Replay_error of string  (** the scenario could not be replayed *)

val replay : entry -> verdict
(** One deterministic {!Scenario.run} of the stored repro, checked
    against the stored signature. *)

val pp_verdict : Format.formatter -> verdict -> unit

val gc : dir:string -> (string * string) list
(** Drop entries that are invalid or whose replay no longer confirms;
    returns the removed [(path, reason)] pairs. *)
