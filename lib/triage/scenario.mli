(** Replayable fault scenarios — the unit the minimizer shrinks and
    the corpus stores.

    A scenario is a {e complete}, seeded description of one detection
    attempt: which topology to deploy (and which induced node subset to
    keep), what to inject, how long to settle, the churn and mangler
    schedules, and how to look for the fault (a full orchestrated
    exploration, or one direct snapshot-and-replay).  Everything is
    driven by explicit seeds and simulated time, so {!run} is
    deterministic: the same scenario value detects the same signatures
    on every host, every time.

    Wire scenarios are the degenerate case used by the codec fuzzer:
    just the bytes, replayed through {!Bgp.Wire.decode}. *)

type topo =
  | Demo27
  | Gadget  (** {!Topology.Gadget.embedded}, 12 nodes *)
  | Bad_gadget  (** {!Topology.Gadget.bad_gadget}, 4 nodes *)
  | Random of { r_seed : int; r_tier1 : int; r_transit : int; r_stub : int }

type mangle = {
  mg_seed : int;
  mg_rate : float;
  mg_kinds : Netsim.Mangler.kind list;  (** [[]] means all kinds *)
  mg_schedule : Netsim.Mangler.schedule;
  mg_fragile_node : int option;
      (** node seeded with the fragile-decode bug, as in the demo's
          adversary mode *)
}

type exploration = {
  ex_rounds : int;  (** [0] = one round per explorer node *)
  ex_nodes : int list;  (** explorer nodes; [[]] = every node *)
  ex_max_inputs : int;
  ex_max_branches : int;
  ex_solver_nodes : int;
  ex_fuzz_extra : int;
  ex_mangle_extra : int;
  ex_mangle_seed : int;
  ex_peers_per_node : int;
  ex_shadow_budget : int;
  ex_deadline_sec : float option;
}

type mode =
  | Explore of exploration
  | Direct of { dr_node : int; dr_peer : int; dr_input : (string * int) list option }
      (** one snapshot from [dr_node]: baseline checks, plus — when
          [dr_input] is given — a single shadow replay of that concolic
          input over session [dr_peer] *)

type deploy = {
  dp_topo : topo;
  dp_keep : int list option;  (** induced-subgraph node subset *)
  dp_seed : int;
  dp_inject : Dice.Inject.scenario option;
  dp_settle_sec : float;
      (** simulated settle time between injection and arming the churn
          and mangler schedules *)
  dp_churn : Netsim.Churn.schedule;
  dp_mangle : mangle option;
  dp_confuzz : Confuzz.Mutation.t list;
      (** operator-error config mutations, applied in order to the live
          speakers after [dp_inject] and before settling; an
          inapplicable mutation aborts the replay (setup failure).
          Absent in pre-confuzz corpus entries (decodes as [[]]). *)
  dp_cascade : bool;
      (** run the cascade detector over the replay's own telemetry and
          add any cascade found to the outcome — set for scenarios
          whose detection is a {!Dice.Fault.Cascade}.  Absent in
          pre-cascade corpus entries (decodes as [false]). *)
  dp_mode : mode;
}

type t = Deploy of deploy | Wire of string

val default_exploration : exploration
(** {!Dice.Explorer.default_params} lifted into scenario form:
    [ex_rounds = 0], all nodes. *)

val base_graph : topo -> Topology.Graph.t

val graph_of : deploy -> Topology.Graph.t
(** [base_graph] restricted to [dp_keep] when present.
    @raise Invalid_argument if [dp_keep] names unknown nodes. *)

(** {1 Template expansion} *)

val with_seed : int -> t -> t
(** Seed-sweep expansion: one campaign template × N seeds = N distinct
    scenarios.  Rebinds every seed the deployment draws at run time —
    [dp_seed] itself, the mangler stream ([mg_seed], derived as
    [seed lxor 0xAD5E], matching the demo's adversary mode) and the
    explorer's mangled-input stream ([ex_mangle_seed], derived as
    [seed lxor 0x5EED] when mangled exploration is on) — while the
    topology (including a [Random] topology's [r_seed]) stays fixed,
    so a sweep explores N behaviors of the {e same} network.  Wire
    scenarios have no seed and are returned unchanged. *)

(** {1 Size} *)

val size : t -> int
(** The minimizer's objective: bytes for wire scenarios; nodes +
    schedule events + work units (inputs, rounds) for deployments.
    Strictly monotone in each of the components ddmin shrinks. *)

(** {1 Replay} *)

type outcome = {
  o_signatures : Dice.Signature.t list;
  o_faults : Dice.Fault.t list;
  o_error : string option;
      (** set when the scenario could not even be deployed (e.g. the
          inject target was pruned away) — the run detects nothing *)
}

val run : t -> outcome
(** Deterministic headless replay.  Installs and tears down its own
    simulation; the caller's telemetry clock is saved and restored, so
    running a scenario from inside a live run's hook does not corrupt
    the outer timeline.  Never raises: setup failures land in
    [o_error]. *)

val run_observed :
  ?on_deployed:(Topology.Build.t -> unit) ->
  ?on_finished:(Topology.Build.t -> Dice.Fault.t list -> unit) ->
  t ->
  outcome
(** {!run} with observation hooks for the repair engine (both ignored
    for [Wire] scenarios).  [on_deployed] fires once the deployment is
    fully configured — inject and confuzz mutations applied — but
    before settling, the point to harvest live configs or arm
    {!Bgp.Clause_cov}.  [on_finished] fires after fault collection with
    the network still alive, so RIBs and final configs are readable.
    Hook exceptions propagate into [o_error] like any setup failure;
    the hooks never change what the replay detects. *)

val detects : t -> Dice.Signature.t -> bool
(** [detects t sg] — does one replay of [t] report [sg]?  The
    minimizer's acceptance test. *)

(** {1 Persistence} *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
(** Round-trip guarantee: [of_string (to_string t) = Ok t']
    with [equal t t']. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
