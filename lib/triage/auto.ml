type filed = {
  fd_fault : Dice.Fault.t;
  fd_signature : Dice.Signature.t;
  fd_result : Minimize.result option;  (* None when minimization was off *)
  fd_entry : Corpus.entry option;  (* None when the replay never confirmed *)
}

type t = {
  corpus_dir : string;
  scenario : Scenario.t;
  graph : Topology.Graph.t;
  minimize : bool;
  max_tests : int;
  repair : (Scenario.t -> Dice.Signature.t -> Telemetry.Json.t option) option;
  mutable seen : string list;  (* signature strings already processed *)
  mutable filed : filed list;  (* newest first *)
}

let collector ?(minimize = true) ?(max_tests = Minimize.default_max_tests)
    ?repair ~corpus_dir ~scenario ~graph () =
  { corpus_dir; scenario; graph; minimize; max_tests; repair;
    seen = []; filed = [] }

(* Run the repair hook over a freshly filed entry; a produced record is
   stored back into the entry on disk.  The hook lives behind a
   function value so triage does not depend on the repair library. *)
let attempt_repair t (entry : Corpus.entry) sg =
  match t.repair with
  | None -> entry
  | Some f -> (
      match f entry.Corpus.e_scenario sg with
      | None -> entry
      | Some record -> Corpus.set_repair ~dir:t.corpus_dir entry record)

let file_fault t (f : Dice.Fault.t) =
  let sg = Dice.Signature.of_fault ~graph:t.graph f in
  let key = Dice.Signature.to_string sg in
  if List.mem key t.seen then None
  else begin
    t.seen <- key :: t.seen;
    let filed =
      (* Confirm the scenario reproduces the signature headlessly before
         spending the minimization budget; a non-reproducing detection
         (which a fully seeded scenario should never yield) is recorded
         but not filed. *)
      if not (Scenario.detects t.scenario sg) then
        { fd_fault = f; fd_signature = sg; fd_result = None; fd_entry = None }
      else if t.minimize then begin
        let r =
          Minimize.run ~max_tests:t.max_tests ?hint_input:f.Dice.Fault.f_input
            ~target:sg t.scenario
        in
        let entry = Corpus.add ~dir:t.corpus_dir sg r.Minimize.r_minimized in
        let entry = attempt_repair t entry sg in
        { fd_fault = f; fd_signature = sg; fd_result = Some r; fd_entry = Some entry }
      end
      else
        let entry = Corpus.add ~dir:t.corpus_dir sg t.scenario in
        let entry = attempt_repair t entry sg in
        { fd_fault = f; fd_signature = sg; fd_result = None; fd_entry = Some entry }
    in
    t.filed <- filed :: t.filed;
    Some filed
  end

let hook t f = ignore (file_fault t f)

let filed t = List.rev t.filed

let file_summary t (summary : Dice.Orchestrator.summary) =
  List.iter (fun f -> ignore (file_fault t f)) summary.Dice.Orchestrator.faults;
  filed t
