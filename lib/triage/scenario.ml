module J = Telemetry.Json

type topo =
  | Demo27
  | Gadget
  | Bad_gadget
  | Random of { r_seed : int; r_tier1 : int; r_transit : int; r_stub : int }

type mangle = {
  mg_seed : int;
  mg_rate : float;
  mg_kinds : Netsim.Mangler.kind list;  (* [] = all kinds *)
  mg_schedule : Netsim.Mangler.schedule;
  mg_fragile_node : int option;  (* fragile-decode bug seeded here *)
}

type exploration = {
  ex_rounds : int;
  ex_nodes : int list;  (* explorer nodes; [] = every node *)
  ex_max_inputs : int;
  ex_max_branches : int;
  ex_solver_nodes : int;
  ex_fuzz_extra : int;
  ex_mangle_extra : int;
  ex_mangle_seed : int;
  ex_peers_per_node : int;
  ex_shadow_budget : int;
  ex_deadline_sec : float option;
}

type mode =
  | Explore of exploration
  | Direct of { dr_node : int; dr_peer : int; dr_input : (string * int) list option }

type deploy = {
  dp_topo : topo;
  dp_keep : int list option;
  dp_seed : int;
  dp_inject : Dice.Inject.scenario option;
  dp_settle_sec : float;
  dp_churn : Netsim.Churn.schedule;
  dp_mangle : mangle option;
  dp_confuzz : Confuzz.Mutation.t list;
  dp_cascade : bool;
  dp_mode : mode;
}

type t = Deploy of deploy | Wire of string

let default_exploration =
  let d = Dice.Explorer.default_params in
  { ex_rounds = 0;
    ex_nodes = [];
    ex_max_inputs = d.Dice.Explorer.limits.Concolic.Engine.max_inputs;
    ex_max_branches = d.Dice.Explorer.limits.Concolic.Engine.max_branches;
    ex_solver_nodes = d.Dice.Explorer.limits.Concolic.Engine.solver_nodes;
    ex_fuzz_extra = d.Dice.Explorer.fuzz_extra;
    ex_mangle_extra = d.Dice.Explorer.mangle_extra;
    ex_mangle_seed = d.Dice.Explorer.mangle_seed;
    ex_peers_per_node = d.Dice.Explorer.peers_per_node;
    ex_shadow_budget = d.Dice.Explorer.shadow_budget;
    ex_deadline_sec = None }

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let base_graph = function
  | Demo27 -> Topology.Demo27.graph
  | Gadget -> Topology.Gadget.embedded ()
  | Bad_gadget -> Topology.Gadget.bad_gadget ()
  | Random r ->
      Topology.Generate.generate
        ~params:
          { Topology.Generate.default_params with
            n_tier1 = r.r_tier1; n_transit = r.r_transit; n_stub = r.r_stub }
        (Netsim.Rng.create r.r_seed)

let graph_of d =
  let g = base_graph d.dp_topo in
  match d.dp_keep with None -> g | Some keep -> Topology.Graph.induced g keep

(* ------------------------------------------------------------------ *)
(* Template expansion                                                  *)
(* ------------------------------------------------------------------ *)

(* One campaign template x N seeds = N distinct scenarios over the same
   network: the deployment seed and both fault-stream seeds rotate (the
   xor constants match the demo's --adversary wiring, so a template
   lifted from a demo run sweeps exactly like the live command line),
   the topology stays fixed. *)
let with_seed seed = function
  | Wire _ as w -> w
  | Deploy d ->
      let dp_mangle =
        Option.map (fun m -> { m with mg_seed = seed lxor 0xAD5E }) d.dp_mangle
      in
      let dp_mode =
        match d.dp_mode with
        | Direct _ as m -> m
        | Explore e ->
            if e.ex_mangle_extra > 0 then
              Explore { e with ex_mangle_seed = seed lxor 0x5EED }
            else Explore e
      in
      Deploy { d with dp_seed = seed; dp_mangle; dp_mode }

(* ------------------------------------------------------------------ *)
(* Size: what the minimizer shrinks                                    *)
(* ------------------------------------------------------------------ *)

let node_count d =
  match d.dp_keep with
  | Some keep -> List.length keep
  | None -> Topology.Graph.size (base_graph d.dp_topo)

let schedule_events d =
  List.length d.dp_churn
  + List.length d.dp_confuzz
  + (match d.dp_mangle with
    | None -> 0
    | Some m -> 1 + List.length m.mg_schedule)

let work_units d =
  match d.dp_mode with
  | Direct { dr_input; _ } ->
      1 + (match dr_input with Some i -> List.length i | None -> 0)
  | Explore e ->
      let rounds =
        if e.ex_rounds > 0 then e.ex_rounds
        else match e.ex_nodes with [] -> node_count d | l -> List.length l
      in
      rounds * (e.ex_max_inputs + e.ex_fuzz_extra + e.ex_mangle_extra)

let size = function
  | Wire bytes -> String.length bytes
  | Deploy d -> node_count d + schedule_events d + work_units d

(* ------------------------------------------------------------------ *)
(* Headless replay                                                     *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_signatures : Dice.Signature.t list;
  o_faults : Dice.Fault.t list;
  o_error : string option;
}

let no_outcome err = { o_signatures = []; o_faults = []; o_error = err }

let wire_signature_of_error (e : Bgp.Wire.error) =
  if Bgp.Wire.is_codec_crash e then
    Some
      (Dice.Signature.make ~role:Dice.Signature.wire_role ~node:(-1)
         ~property:"codec-crash" Dice.Fault.Programming_error e.Bgp.Wire.reason)
  else None

let run_wire bytes =
  match Bgp.Wire.decode bytes with
  | Ok _ -> no_outcome None
  | Error e -> (
      match wire_signature_of_error e with
      | Some sg -> { o_signatures = [ sg ]; o_faults = []; o_error = None }
      | None -> no_outcome None)
  | exception exn ->
      { o_signatures =
          [ Dice.Signature.make ~role:Dice.Signature.wire_role ~node:(-1)
              ~property:"codec-escape" Dice.Fault.Programming_error
              (Printexc.to_string exn) ];
        o_faults = [];
        o_error = None }

let explorer_params (e : exploration) churned =
  { Dice.Explorer.default_params with
    Dice.Explorer.limits =
      { Concolic.Engine.max_inputs = e.ex_max_inputs;
        max_branches = e.ex_max_branches;
        solver_nodes = e.ex_solver_nodes };
    fuzz_extra = e.ex_fuzz_extra;
    mangle_extra = e.ex_mangle_extra;
    mangle_seed = e.ex_mangle_seed;
    peers_per_node = e.ex_peers_per_node;
    shadow_budget = e.ex_shadow_budget;
    snapshot_deadline =
      (match e.ex_deadline_sec with
      | Some s -> Some (Netsim.Time.span_sec s)
      | None ->
          (* A churned or mangled deployment can cost the cut a marker;
             never let a minimization replay stall on it. *)
          if churned then Some (Netsim.Time.span_sec 30.) else None) }

let run_deploy_base ?(on_deployed = fun (_ : Topology.Build.t) -> ())
    ?(on_finished = fun (_ : Topology.Build.t) (_ : Dice.Fault.t list) -> ()) d
    =
  let graph = graph_of d in
  let build = Topology.Build.deploy ~seed:d.dp_seed graph in
  Topology.Build.start_all build;
  ignore (Topology.Build.converge build);
  (match d.dp_inject with
  | None -> ()
  | Some s -> Dice.Inject.apply build s);
  (* Config mutations land after injection, like a live [--confuzz]
     run: each is one operator edit applied to the target speaker.  An
     inapplicable mutation (pruned map or entry) aborts the replay —
     the minimizer treats that as a rejected step. *)
  List.iter
    (fun m ->
      match Confuzz.Mutation.apply_speaker (Topology.Build.speaker build) m with
      | Ok () -> ()
      | Error e ->
          failwith (Printf.sprintf "confuzz: %s: %s" (Confuzz.Mutation.describe m) e))
    d.dp_confuzz;
  (* The deployment is now fully configured (inject + confuzz applied)
     but has not yet settled: the observation point for harvesting live
     configs or arming coverage before any route re-propagation. *)
  on_deployed build;
  (* Settle between injection and the fault schedules — the same
     sequencing as the live demo, so a scenario lifted from a demo run
     reproduces its detections. *)
  if d.dp_settle_sec > 0. then
    Topology.Build.run_for build (Netsim.Time.span_sec d.dp_settle_sec);
  let net = build.Topology.Build.net in
  (match d.dp_mangle with
  | None -> ()
  | Some m ->
      Netsim.Network.set_crash_policy net
        (Netsim.Network.Absorb { restart_after = Some (Netsim.Time.span_sec 10.) });
      let mg =
        Netsim.Mangler.create ~rate:m.mg_rate
          ?kinds:(match m.mg_kinds with [] -> None | ks -> Some ks)
          ~seed:m.mg_seed ()
      in
      Netsim.Mangler.install mg net;
      ignore (Netsim.Mangler.apply mg net m.mg_schedule);
      (match m.mg_fragile_node with
      | Some node when Netsim.Network.has_node net node ->
          let sp = Topology.Build.speaker build node in
          sp.Bgp.Speaker.sp_set_bugs
            { (sp.Bgp.Speaker.sp_bugs ()) with Bgp.Router.fragile_decode = true }
      | Some _ | None -> ()));
  ignore (Netsim.Churn.apply net d.dp_churn);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let churned = d.dp_churn <> [] || d.dp_mangle <> None in
  let faults =
    match d.dp_mode with
    | Direct { dr_node; dr_peer; dr_input } ->
        let cut =
          Snapshot.Cut.create
            ~speakers:(fun id -> Topology.Build.speaker build id)
            net
        in
        let params =
          { Dice.Explorer.default_params with
            Dice.Explorer.snapshot_deadline = Some (Netsim.Time.span_sec 30.) }
        in
        Dice.Explorer.replay_direct ~params ~build ~cut ~gt ~node:dr_node
          ~peer_index:dr_peer ?input:dr_input ()
    | Explore e ->
        let params = explorer_params e churned in
        let nodes = match e.ex_nodes with [] -> None | l -> Some l in
        let rounds =
          if e.ex_rounds > 0 then e.ex_rounds
          else match nodes with None -> Topology.Graph.size graph | Some l -> List.length l
        in
        let summary = Dice.Orchestrator.run ~params ?nodes ~build ~gt ~rounds () in
        summary.Dice.Orchestrator.faults
  in
  (* The network is still alive here: [on_finished] can read RIBs and
     speaker configs for the final state the checkers judged. *)
  on_finished build faults;
  { o_signatures = List.map (Dice.Signature.of_fault ~graph) faults;
    o_faults = faults;
    o_error = None }

(* A cascade scenario re-runs the whole-timeline detector over the
   replay's own telemetry: a ring wide enough for the full deployment
   captures the loc-rib flips and supervisor decisions, and any
   cascade found joins the outcome exactly as in the live run — so
   [detects] and the corpus replayer treat cascade signatures like any
   other. *)
let run_deploy ?on_deployed ?on_finished d =
  if not d.dp_cascade then run_deploy_base ?on_deployed ?on_finished d
  else
    Cascade.Online.with_monitor ~capacity:65536 @@ fun mon ->
    let o = run_deploy_base ?on_deployed ?on_finished d in
    let cascade_faults = Cascade.Online.probe mon in
    let graph = graph_of d in
    { o with
      o_faults = o.o_faults @ cascade_faults;
      o_signatures =
        o.o_signatures
        @ List.map (Dice.Signature.of_fault ~graph) cascade_faults }

let run_observed ?on_deployed ?on_finished t =
  (* A nested deployment installs its own telemetry clock; restore the
     caller's so an outer live run's timeline survives the replay. *)
  let saved_clock = Telemetry.current_clock () in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_clock saved_clock)
    (fun () ->
      match t with
      | Wire bytes -> run_wire bytes
      | Deploy d -> (
          try run_deploy ?on_deployed ?on_finished d
          with e ->
            (* A scenario that cannot even be set up (pruned-away inject
               target, missing speaker, stalled cut) detects nothing —
               the minimizer treats that as a rejected step. *)
            no_outcome (Some (Printexc.to_string e))))

let run t = run_observed t

let detects t sg =
  List.exists (Dice.Signature.equal sg) (run t).o_signatures

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let json_of_topo = function
  | Demo27 -> J.Obj [ ("name", J.String "demo27") ]
  | Gadget -> J.Obj [ ("name", J.String "gadget") ]
  | Bad_gadget -> J.Obj [ ("name", J.String "bad-gadget") ]
  | Random r ->
      J.Obj
        [ ("name", J.String "random");
          ("seed", J.Int r.r_seed);
          ("tier1", J.Int r.r_tier1);
          ("transit", J.Int r.r_transit);
          ("stub", J.Int r.r_stub) ]

let json_of_inject (s : Dice.Inject.scenario) =
  match s with
  | Dice.Inject.Prefix_hijack { at; victim } ->
      J.Obj [ ("kind", J.String "prefix-hijack"); ("at", J.Int at); ("victim", J.Int victim) ]
  | Dice.Inject.Bogus_netmask { at } ->
      J.Obj [ ("kind", J.String "bogus-netmask"); ("at", J.Int at) ]
  | Dice.Inject.Policy_dispute { cycle; victim } ->
      J.Obj
        [ ("kind", J.String "policy-dispute");
          ("cycle", J.List (List.map (fun n -> J.Int n) cycle));
          ("victim", J.Int victim) ]
  | Dice.Inject.Loop_check_bug { at } ->
      J.Obj [ ("kind", J.String "loop-check-bug"); ("at", J.Int at) ]
  | Dice.Inject.Inverted_med_bug { at } ->
      J.Obj [ ("kind", J.String "inverted-med-bug"); ("at", J.Int at) ]
  | Dice.Inject.Crash_bug { at; community } ->
      J.Obj
        [ ("kind", J.String "crash-bug"); ("at", J.Int at);
          ("community", J.String (Bgp.Community.to_string community)) ]

let json_of_churn_event (ev : Netsim.Churn.event) =
  match ev with
  | Netsim.Churn.Node_down n -> J.Obj [ ("ev", J.String "node-down"); ("node", J.Int n) ]
  | Netsim.Churn.Node_up n -> J.Obj [ ("ev", J.String "node-up"); ("node", J.Int n) ]
  | Netsim.Churn.Link_down (a, b) ->
      J.Obj [ ("ev", J.String "link-down"); ("a", J.Int a); ("b", J.Int b) ]
  | Netsim.Churn.Link_up (a, b) ->
      J.Obj [ ("ev", J.String "link-up"); ("a", J.Int a); ("b", J.Int b) ]
  | Netsim.Churn.Partition (xs, ys) ->
      J.Obj
        [ ("ev", J.String "partition");
          ("xs", J.List (List.map (fun n -> J.Int n) xs));
          ("ys", J.List (List.map (fun n -> J.Int n) ys)) ]
  | Netsim.Churn.Heal -> J.Obj [ ("ev", J.String "heal") ]

let json_of_churn_entry (e : Netsim.Churn.entry) =
  match json_of_churn_event e.Netsim.Churn.ev with
  | J.Obj fields -> J.Obj (("at_us", J.Int e.Netsim.Churn.at) :: fields)
  | _ -> assert false

let json_of_links = function
  | None -> J.Null
  | Some links ->
      J.List (List.map (fun (a, b) -> J.List [ J.Int a; J.Int b ]) links)

let json_of_mangle_entry (e : Netsim.Mangler.entry) =
  let fields =
    match e.Netsim.Mangler.ev with
    | Netsim.Mangler.Set_rate r -> [ ("set", J.String "rate"); ("rate", J.Float r) ]
    | Netsim.Mangler.Set_kinds ks ->
        [ ("set", J.String "kinds");
          ("kinds", J.List (List.map (fun k -> J.String (Netsim.Mangler.kind_name k)) ks)) ]
    | Netsim.Mangler.Set_links links ->
        [ ("set", J.String "links"); ("links", json_of_links links) ]
  in
  J.Obj (("at_us", J.Int e.Netsim.Mangler.at) :: fields)

let json_of_mangle m =
  J.Obj
    [ ("seed", J.Int m.mg_seed);
      ("rate", J.Float m.mg_rate);
      ("kinds", J.List (List.map (fun k -> J.String (Netsim.Mangler.kind_name k)) m.mg_kinds));
      ("schedule", J.List (List.map json_of_mangle_entry m.mg_schedule));
      ("fragile_node", match m.mg_fragile_node with Some n -> J.Int n | None -> J.Null) ]

let json_of_input input =
  J.Obj (List.map (fun (k, v) -> (k, J.Int v)) input)

let json_of_mode = function
  | Direct { dr_node; dr_peer; dr_input } ->
      J.Obj
        [ ("mode", J.String "direct");
          ("node", J.Int dr_node);
          ("peer", J.Int dr_peer);
          ("input", match dr_input with Some i -> json_of_input i | None -> J.Null) ]
  | Explore e ->
      J.Obj
        [ ("mode", J.String "explore");
          ("rounds", J.Int e.ex_rounds);
          ("nodes", J.List (List.map (fun n -> J.Int n) e.ex_nodes));
          ("max_inputs", J.Int e.ex_max_inputs);
          ("max_branches", J.Int e.ex_max_branches);
          ("solver_nodes", J.Int e.ex_solver_nodes);
          ("fuzz_extra", J.Int e.ex_fuzz_extra);
          ("mangle_extra", J.Int e.ex_mangle_extra);
          ("mangle_seed", J.Int e.ex_mangle_seed);
          ("peers_per_node", J.Int e.ex_peers_per_node);
          ("shadow_budget", J.Int e.ex_shadow_budget);
          ("deadline_sec",
           match e.ex_deadline_sec with Some s -> J.Float s | None -> J.Null) ]

let to_json = function
  | Wire bytes ->
      let hex =
        String.concat ""
          (List.init (String.length bytes) (fun i ->
               Printf.sprintf "%02x" (Char.code bytes.[i])))
      in
      J.Obj [ ("scenario", J.String "wire"); ("bytes_hex", J.String hex) ]
  | Deploy d ->
      J.Obj
        [ ("scenario", J.String "deploy");
          ("topo", json_of_topo d.dp_topo);
          ("keep",
           match d.dp_keep with
           | Some keep -> J.List (List.map (fun n -> J.Int n) keep)
           | None -> J.Null);
          ("seed", J.Int d.dp_seed);
          ("inject", match d.dp_inject with Some s -> json_of_inject s | None -> J.Null);
          ("settle_sec", J.Float d.dp_settle_sec);
          ("churn", J.List (List.map json_of_churn_entry d.dp_churn));
          ("mangle", match d.dp_mangle with Some m -> json_of_mangle m | None -> J.Null);
          ("confuzz", J.List (List.map Confuzz.Mutation.to_json d.dp_confuzz));
          ("cascade", J.Bool d.dp_cascade);
          ("run", json_of_mode d.dp_mode) ]

(* --- decoding ----------------------------------------------------- *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_field name j =
  match J.member name j with Some J.Null | None -> None | Some v -> Some v

let as_int = function
  | J.Int n -> Ok n
  | j -> Error (Printf.sprintf "expected int, got %s" (J.to_string j))

let as_float = function
  | J.Float f -> Ok f
  | J.Int n -> Ok (float_of_int n)
  | j -> Error (Printf.sprintf "expected number, got %s" (J.to_string j))

let as_string = function
  | J.String s -> Ok s
  | j -> Error (Printf.sprintf "expected string, got %s" (J.to_string j))

let as_list = function
  | J.List l -> Ok l
  | j -> Error (Printf.sprintf "expected list, got %s" (J.to_string j))

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let int_field name j = let* v = field name j in as_int v
let string_field name j = let* v = field name j in as_string v
let float_field name j = let* v = field name j in as_float v

let int_list_field name j =
  let* v = field name j in
  let* l = as_list v in
  map_result as_int l

let topo_of_json j =
  let* name = string_field "name" j in
  match name with
  | "demo27" -> Ok Demo27
  | "gadget" -> Ok Gadget
  | "bad-gadget" -> Ok Bad_gadget
  | "random" ->
      let* r_seed = int_field "seed" j in
      let* r_tier1 = int_field "tier1" j in
      let* r_transit = int_field "transit" j in
      let* r_stub = int_field "stub" j in
      Ok (Random { r_seed; r_tier1; r_transit; r_stub })
  | other -> Error (Printf.sprintf "unknown topo %S" other)

let inject_of_json j =
  let* kind = string_field "kind" j in
  match kind with
  | "prefix-hijack" ->
      let* at = int_field "at" j in
      let* victim = int_field "victim" j in
      Ok (Dice.Inject.Prefix_hijack { at; victim })
  | "bogus-netmask" ->
      let* at = int_field "at" j in
      Ok (Dice.Inject.Bogus_netmask { at })
  | "policy-dispute" ->
      let* cycle = int_list_field "cycle" j in
      let* victim = int_field "victim" j in
      Ok (Dice.Inject.Policy_dispute { cycle; victim })
  | "loop-check-bug" ->
      let* at = int_field "at" j in
      Ok (Dice.Inject.Loop_check_bug { at })
  | "inverted-med-bug" ->
      let* at = int_field "at" j in
      Ok (Dice.Inject.Inverted_med_bug { at })
  | "crash-bug" ->
      let* at = int_field "at" j in
      let* c = string_field "community" j in
      let* community = Bgp.Community.of_string c in
      Ok (Dice.Inject.Crash_bug { at; community })
  | other -> Error (Printf.sprintf "unknown inject kind %S" other)

let churn_entry_of_json j =
  let* at = int_field "at_us" j in
  let* ev = string_field "ev" j in
  let* event =
    match ev with
    | "node-down" -> let* n = int_field "node" j in Ok (Netsim.Churn.Node_down n)
    | "node-up" -> let* n = int_field "node" j in Ok (Netsim.Churn.Node_up n)
    | "link-down" ->
        let* a = int_field "a" j in
        let* b = int_field "b" j in
        Ok (Netsim.Churn.Link_down (a, b))
    | "link-up" ->
        let* a = int_field "a" j in
        let* b = int_field "b" j in
        Ok (Netsim.Churn.Link_up (a, b))
    | "partition" ->
        let* xs = int_list_field "xs" j in
        let* ys = int_list_field "ys" j in
        Ok (Netsim.Churn.Partition (xs, ys))
    | "heal" -> Ok Netsim.Churn.Heal
    | other -> Error (Printf.sprintf "unknown churn event %S" other)
  in
  Ok (Netsim.Churn.entry ~at event)

let kind_of_json j =
  let* s = as_string j in
  match Netsim.Mangler.kind_of_string s with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "unknown mangler kind %S" s)

let links_of_json = function
  | J.Null -> Ok None
  | J.List l ->
      let* pairs =
        map_result
          (function
            | J.List [ J.Int a; J.Int b ] -> Ok (a, b)
            | j -> Error (Printf.sprintf "expected [a,b], got %s" (J.to_string j)))
          l
      in
      Ok (Some pairs)
  | j -> Error (Printf.sprintf "expected links list, got %s" (J.to_string j))

let mangle_entry_of_json j =
  let* at = int_field "at_us" j in
  let* set = string_field "set" j in
  let* ev =
    match set with
    | "rate" -> let* r = float_field "rate" j in Ok (Netsim.Mangler.Set_rate r)
    | "kinds" ->
        let* v = field "kinds" j in
        let* l = as_list v in
        let* ks = map_result kind_of_json l in
        Ok (Netsim.Mangler.Set_kinds ks)
    | "links" ->
        let* v = field "links" j in
        let* links = links_of_json v in
        Ok (Netsim.Mangler.Set_links links)
    | other -> Error (Printf.sprintf "unknown mangle set %S" other)
  in
  Ok (Netsim.Mangler.entry ~at ev)

let mangle_of_json j =
  let* mg_seed = int_field "seed" j in
  let* mg_rate = float_field "rate" j in
  let* kinds_v = field "kinds" j in
  let* kinds_l = as_list kinds_v in
  let* mg_kinds = map_result kind_of_json kinds_l in
  let* sched_v = field "schedule" j in
  let* sched_l = as_list sched_v in
  let* mg_schedule = map_result mangle_entry_of_json sched_l in
  let mg_fragile_node =
    match opt_field "fragile_node" j with Some (J.Int n) -> Some n | _ -> None
  in
  Ok { mg_seed; mg_rate; mg_kinds; mg_schedule; mg_fragile_node }

let input_of_json = function
  | J.Obj fields ->
      map_result
        (fun (k, v) ->
          let* n = as_int v in
          Ok (k, n))
        fields
  | j -> Error (Printf.sprintf "expected input object, got %s" (J.to_string j))

let mode_of_json j =
  let* mode = string_field "mode" j in
  match mode with
  | "direct" ->
      let* dr_node = int_field "node" j in
      let* dr_peer = int_field "peer" j in
      let* dr_input =
        match opt_field "input" j with
        | None -> Ok None
        | Some v -> let* i = input_of_json v in Ok (Some i)
      in
      Ok (Direct { dr_node; dr_peer; dr_input })
  | "explore" ->
      let* ex_rounds = int_field "rounds" j in
      let* ex_nodes = int_list_field "nodes" j in
      let* ex_max_inputs = int_field "max_inputs" j in
      let* ex_max_branches = int_field "max_branches" j in
      let* ex_solver_nodes = int_field "solver_nodes" j in
      let* ex_fuzz_extra = int_field "fuzz_extra" j in
      let* ex_mangle_extra = int_field "mangle_extra" j in
      let* ex_mangle_seed = int_field "mangle_seed" j in
      let* ex_peers_per_node = int_field "peers_per_node" j in
      let* ex_shadow_budget = int_field "shadow_budget" j in
      let ex_deadline_sec =
        match opt_field "deadline_sec" j with
        | Some (J.Float f) -> Some f
        | Some (J.Int n) -> Some (float_of_int n)
        | _ -> None
      in
      Ok
        (Explore
           { ex_rounds; ex_nodes; ex_max_inputs; ex_max_branches; ex_solver_nodes;
             ex_fuzz_extra; ex_mangle_extra; ex_mangle_seed; ex_peers_per_node;
             ex_shadow_budget; ex_deadline_sec })
  | other -> Error (Printf.sprintf "unknown mode %S" other)

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    try
      Ok
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "bad hex string"

let of_json j =
  let* scenario = string_field "scenario" j in
  match scenario with
  | "wire" ->
      let* hex = string_field "bytes_hex" j in
      let* bytes = bytes_of_hex hex in
      Ok (Wire bytes)
  | "deploy" ->
      let* topo_v = field "topo" j in
      let* dp_topo = topo_of_json topo_v in
      let* dp_keep =
        match opt_field "keep" j with
        | None -> Ok None
        | Some v ->
            let* l = as_list v in
            let* keep = map_result as_int l in
            Ok (Some keep)
      in
      let* dp_seed = int_field "seed" j in
      let* dp_inject =
        match opt_field "inject" j with
        | None -> Ok None
        | Some v -> let* s = inject_of_json v in Ok (Some s)
      in
      let* dp_settle_sec = float_field "settle_sec" j in
      let* churn_v = field "churn" j in
      let* churn_l = as_list churn_v in
      let* dp_churn = map_result churn_entry_of_json churn_l in
      let* dp_mangle =
        match opt_field "mangle" j with
        | None -> Ok None
        | Some v -> let* m = mangle_of_json v in Ok (Some m)
      in
      let* dp_confuzz =
        (* Absent in scenarios filed before the config fuzzer existed. *)
        match opt_field "confuzz" j with
        | None -> Ok []
        | Some v ->
            let* l = as_list v in
            map_result Confuzz.Mutation.of_json l
      in
      (* Absent in scenarios filed before the cascade detector existed. *)
      let dp_cascade =
        match opt_field "cascade" j with Some (J.Bool b) -> b | _ -> false
      in
      let* run_v = field "run" j in
      let* dp_mode = mode_of_json run_v in
      Ok
        (Deploy
           { dp_topo; dp_keep; dp_seed; dp_inject; dp_settle_sec; dp_churn;
             dp_mangle; dp_confuzz; dp_cascade; dp_mode })
  | other -> Error (Printf.sprintf "unknown scenario %S" other)

let to_string t = J.to_string (to_json t)

let of_string s =
  let* j = J.of_string s in
  of_json j

let equal a b = String.equal (to_string a) (to_string b)

let pp ppf t = Format.pp_print_string ppf (to_string t)
