(** Delta-debugging scenario minimizer.

    Shrinks a detecting {!Scenario.t} while preserving detection of one
    target {!Dice.Signature.t}: a candidate step is accepted iff a
    fresh headless replay of the candidate still reports the exact same
    signature ({!Scenario.detects}).  Every replay is deterministic, so
    minimizing the same scenario against the same signature twice gives
    byte-identical results.

    The pipeline is staged cheapest-reduction-first:

    + [to-direct] — replace a full orchestrated exploration with a
      single snapshot-and-replay from one node (the dominant cost
      saving; uses the detecting input as a hint when the caller has
      one);
    + [topology] — ddmin over the removable node set (the inject
      targets and the manifesting node are pinned), rebuilding churn
      and mangler schedules for the pruned graph;
    + [churn], [mangle], [input] — ddmin over schedule entries and
      concolic input bindings (the mangler is dropped wholesale first
      when detection survives without it);
    + [explore] — if the scenario is still exploration-based, narrow
      rounds/nodes/budgets;
    + [settle] — shrink the settle window.

    Wire scenarios get plain byte-level ddmin.

    Each stage emits a [triage.minimize.stage] telemetry span with
    [size_before]/[size_after]/[tests] attributes under one enclosing
    [triage.minimize] span. *)

type step = {
  st_stage : string;
  st_before : int;  (** {!Scenario.size} before the stage *)
  st_after : int;
  st_tests : int;  (** replays the stage spent *)
}

type result = {
  r_signature : Dice.Signature.t;
  r_original : Scenario.t;
  r_minimized : Scenario.t;
  r_original_size : int;
  r_minimized_size : int;
  r_steps : step list;  (** in execution order *)
  r_tests : int;  (** total replays *)
}

val default_max_tests : int
(** 200. *)

val ddmin : test:('a list -> bool) -> 'a list -> 'a list
(** The generic engine, exposed for tests: a locally-minimal sublist
    satisfying [test], assuming the full list does.  [test []] is
    always probed first. *)

val run :
  ?max_tests:int ->
  ?hint_input:Concolic.Ctx.input ->
  target:Dice.Signature.t ->
  Scenario.t ->
  result
(** Minimize [scenario] against [target].  [max_tests] caps the total
    number of replays across all stages (budget exhausted = remaining
    candidates rejected, so the result is always a valid detecting
    scenario — at worst the original).  [hint_input] seeds the
    [to-direct] stage with the concolic input that triggered the
    original detection ({!Dice.Fault.t.f_input}). *)

val pp_result : Format.formatter -> result -> unit
