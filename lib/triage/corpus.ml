module J = Telemetry.Json

let schema_version = "dice-corpus/1"

type entry = {
  e_signature : Dice.Signature.t;
  e_scenario : Scenario.t;
  e_first_seen : float;  (* unix seconds *)
  e_last_seen : float;
  e_hits : int;
  e_env : (string * string) list;
  e_repair : J.t option;  (* dice-repair/1 record, when a repair ran *)
}

let env_fingerprint () =
  [ ("ocaml", Sys.ocaml_version);
    ("os", Sys.os_type);
    ("word_size", string_of_int Sys.word_size) ]

let filename_of sg =
  Digest.to_hex (Digest.string (Dice.Signature.to_string sg)) ^ ".json"

let path_of dir sg = Filename.concat dir (filename_of sg)

(* ------------------------------------------------------------------ *)
(* Codec — [validate] is the single schema gate: the CLI, the fuzzer   *)
(* unification and the CI replay job all load entries through it.      *)
(* ------------------------------------------------------------------ *)

let entry_to_json e =
  J.Obj
    ([ ("schema", J.String schema_version);
       ("signature", J.String (Dice.Signature.to_string e.e_signature));
       ("scenario", Scenario.to_json e.e_scenario);
       ("first_seen", J.Float e.e_first_seen);
       ("last_seen", J.Float e.e_last_seen);
       ("hits", J.Int e.e_hits);
       ("env", J.Obj (List.map (fun (k, v) -> (k, J.String v)) e.e_env)) ]
    (* The repair record is strictly additive: entries without one
       serialize exactly as before it existed (legacy byte-for-byte
       round-trip, pinned by test). *)
    @ match e.e_repair with None -> [] | Some r -> [ ("repair", r) ])

let ( let* ) = Result.bind

let str_field name j =
  match J.member name j with
  | Some (J.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let num_field name j =
  match J.member name j with
  | Some (J.Float f) -> Ok f
  | Some (J.Int n) -> Ok (float_of_int n)
  | Some _ -> Error (Printf.sprintf "field %S is not a number" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let repair_schema_version = "dice-repair/1"

let validate j =
  let* schema = str_field "schema" j in
  if not (String.equal schema schema_version) then
    Error (Printf.sprintf "schema %S, want %S" schema schema_version)
  else
    let* sg_s = str_field "signature" j in
    let* e_signature = Dice.Signature.of_string sg_s in
    let* scenario_j =
      match J.member "scenario" j with
      | Some v -> Ok v
      | None -> Error "missing field \"scenario\""
    in
    let* e_scenario = Scenario.of_json scenario_j in
    let* e_first_seen = num_field "first_seen" j in
    let* e_last_seen = num_field "last_seen" j in
    let* e_hits =
      match J.member "hits" j with
      | Some (J.Int n) when n >= 1 -> Ok n
      | Some _ -> Error "field \"hits\" is not a positive int"
      | None -> Error "missing field \"hits\""
    in
    let e_env =
      match J.member "env" j with
      | Some (J.Obj fields) ->
          List.filter_map
            (function k, J.String v -> Some (k, v) | _ -> None)
            fields
      | _ -> []
    in
    (* Optional: entries filed before the repair engine existed have no
       record; when one is present only its schema tag is checked here
       (the full structure is the repair reporter's contract, validated
       by [telemetry_check --repair]). *)
    let* e_repair =
      match J.member "repair" j with
      | None | Some J.Null -> Ok None
      | Some r -> (
          match J.member "schema" r with
          | Some (J.String s) when String.equal s repair_schema_version ->
              Ok (Some r)
          | Some (J.String s) ->
              Error
                (Printf.sprintf "repair schema %S, want %S" s
                   repair_schema_version)
          | Some _ | None -> Error "repair record missing \"schema\"")
    in
    Ok
      { e_signature; e_scenario; e_first_seen; e_last_seen; e_hits; e_env;
        e_repair }

let entry_of_string s =
  let* j = J.of_string s in
  validate j

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* fsync the directory itself so the rename is durable: a kill -9 (or
   power cut) right after [add] must not be able to roll the entry
   back.  Directory fds can legitimately refuse fsync on some
   filesystems — that only weakens durability, never atomicity, so
   errors are swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_file path contents =
  (* tmp + fsync + rename + fsync(dir): the tmp file is fully on disk
     before the rename publishes it, and the rename itself is on disk
     before [add] returns — a campaign killed at any instant leaves
     either the old entry or the new one, never a torn file and never
     a "filed" journal record pointing at data the crash rolled back. *)
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length contents in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write_substring fd contents !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let ensure_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let load_entry path =
  (* Every failure mode of one entry — unreadable file, torn/truncated
     JSON, schema drift — degrades to [Error] for that entry alone;
     a long campaign's corpus load must never abort wholesale because
     one file is damaged. *)
  match entry_of_string (read_file path) with
  | r -> r
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error "truncated entry (torn write?)"
  | exception e -> Error (Printexc.to_string e)

let add ~dir ?now sg scenario =
  ensure_dir dir;
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let path = path_of dir sg in
  let entry =
    match if Sys.file_exists path then load_entry path |> Result.to_option else None with
    | Some prev ->
        (* Keep the smaller repro across runs: minimization only ever
           tightens the corpus.  A stored repair record targets the
           stored scenario — replacing the repro invalidates it. *)
        let scenario =
          if Scenario.size scenario < Scenario.size prev.e_scenario then scenario
          else prev.e_scenario
        in
        let e_repair =
          if Scenario.equal scenario prev.e_scenario then prev.e_repair
          else None
        in
        { prev with
          e_scenario = scenario;
          e_last_seen = now;
          e_hits = prev.e_hits + 1;
          e_env = env_fingerprint ();
          e_repair }
    | None ->
        { e_signature = sg;
          e_scenario = scenario;
          e_first_seen = now;
          e_last_seen = now;
          e_hits = 1;
          e_env = env_fingerprint ();
          e_repair = None }
  in
  write_file path (J.to_string (entry_to_json entry) ^ "\n");
  entry

let files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

let load ~dir = List.map (fun path -> (path, load_entry path)) (files dir)

let find ~dir sg =
  let path = path_of dir sg in
  if Sys.file_exists path then load_entry path |> Result.to_option else None

let remove ~dir sg =
  let path = path_of dir sg in
  if Sys.file_exists path then begin
    Sys.remove path;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Repair record                                                       *)
(* ------------------------------------------------------------------ *)

type repair_status = [ `None | `Candidate | `Verified ]

let repair_status e =
  match e.e_repair with
  | None -> `None
  | Some r -> (
      match J.member "status" r with
      | Some (J.String "verified") -> `Verified
      | Some (J.String "candidate") -> `Candidate
      | _ -> `None)

let repair_status_name = function
  | `None -> "none"
  | `Candidate -> "candidate"
  | `Verified -> "verified"

let set_repair ~dir entry repair =
  ensure_dir dir;
  let entry = { entry with e_repair = Some repair } in
  write_file
    (path_of dir entry.e_signature)
    (J.to_string (entry_to_json entry) ^ "\n");
  entry

let patched_scenario e =
  match e.e_repair with
  | None -> None
  | Some r -> (
      match J.member "patch" r with
      | Some (J.List ms) -> (
          let rec decode acc = function
            | [] -> Some (List.rev acc)
            | m :: rest -> (
                match Confuzz.Mutation.of_json m with
                | Ok m -> decode (m :: acc) rest
                | Error _ -> None)
          in
          match (decode [] ms, e.e_scenario) with
          | Some (_ :: _ as patch), Scenario.Deploy d ->
              Some
                (Scenario.Deploy
                   { d with Scenario.dp_confuzz = d.Scenario.dp_confuzz @ patch })
          | _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Confirmed of Dice.Signature.t list
      (** the stored signature was detected again; the list holds any
          {e other} signatures the replay reported alongside it *)
  | Vanished of Dice.Signature.t list
      (** replay ran but reported different (possibly zero) signatures *)
  | Replay_error of string  (** the scenario could not be replayed *)

let replay e =
  let o = Scenario.run e.e_scenario in
  match o.Scenario.o_error with
  | Some err -> Replay_error err
  | None ->
      let mine, others =
        List.partition (Dice.Signature.equal e.e_signature) o.Scenario.o_signatures
      in
      if mine <> [] then Confirmed others else Vanished o.Scenario.o_signatures

let pp_verdict ppf = function
  | Confirmed _ -> Format.pp_print_string ppf "confirmed"
  | Vanished [] -> Format.pp_print_string ppf "vanished (no signature detected)"
  | Vanished sgs ->
      Format.fprintf ppf "vanished (detected instead: %s)"
        (String.concat ", " (List.map Dice.Signature.to_string sgs))
  | Replay_error e -> Format.fprintf ppf "replay error: %s" e

let gc ~dir =
  List.filter_map
    (fun (path, r) ->
      let drop reason =
        Sys.remove path;
        Some (path, reason)
      in
      match r with
      | Error e -> drop (Printf.sprintf "invalid entry: %s" e)
      | Ok entry -> (
          match replay entry with
          | Confirmed _ -> None
          | v -> drop (Format.asprintf "%a" pp_verdict v)))
    (load ~dir)
