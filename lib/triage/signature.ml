(* Re-export so triage users (the CLI, tests) can say
   [Triage.Signature] without also depending on the core library's
   module path. *)
include Dice.Signature
