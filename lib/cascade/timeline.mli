(** Normalized view of a telemetry timeline — the cascade analyzer's
    input.

    Ingests a [dice-telemetry/1] event stream (a JSONL artifact or a
    live sink's buffered events) and keeps exactly what causal
    stitching needs: the round spans, every fault with its enclosing
    round, every infrastructure [sys] record, and every loc-rib
    flip-flop reconstructed from the simulator trace records.

    Ingestion is tolerant by design: a bounded ring window starts
    mid-run, so missing run headers, unmatched span ends and fault
    span paths naming evicted spans are all fine — the affected record
    just loses its round attribution, never the whole analysis. *)

type span = {
  sp_id : int;
  sp_name : string;
  sp_parent : int option;
  sp_start_us : int;
  sp_end_us : int option;
}

type fault = {
  fl_t_us : int;
  fl_class : string;
  fl_property : string;
  fl_node : int;
  fl_detail : string;
  fl_round : int option;
      (** index of the innermost enclosing [round] span, when the
          span path resolves *)
}

type sys = {
  sy_t_us : int;
  sy_kind : string;
  sy_nodes : int list;
  sy_detail : string;
}

type flip = {
  fp_t_us : int;
  fp_node : int;
  fp_prefix : string;
  fp_state : string;  (** ["via <peer>"] or ["unreachable"] *)
}

type t = {
  tl_records : int;  (** events ingested, of any type *)
  tl_spans : int;
  tl_rounds : int;  (** distinct [round] spans seen *)
  tl_faults : fault list;  (** in emission order *)
  tl_sys : sys list;  (** in emission order *)
  tl_flips : flip list;  (** in emission order *)
  tl_first_us : int;
  tl_last_us : int;
}

val of_events : (int * Telemetry.Sink.event) list -> t
(** Ingest a buffering sink's [(seq, event)] list (see
    {!Telemetry.Sink.events}) — the online monitor's path. *)

val of_file : string -> (t, string list) result
(** Stream a JSONL artifact via {!Telemetry.Sink.fold_file} without
    loading it whole.  Malformed lines are fatal: every one is
    reported as ["line N: msg"]. *)

val parse_locrib : string -> (string * string) option
(** [(prefix, state)] from a loc-rib trace detail, [None] for payloads
    of any other shape. *)

val duration_us : t -> int
