module Json = Telemetry.Json

let version = "dice-cascade/1"

let cascade_to_json ?graph (c : Detect.cascade) =
  let node = match c.Detect.c_nodes with n :: _ -> n | [] -> -1 in
  let signature =
    Dice.Signature.make ?graph ~node ~property:(Detect.kind_to_string c.Detect.c_kind)
      Dice.Fault.Cascade c.Detect.c_detail
  in
  Json.Obj
    [ ("kind", Json.String (Detect.kind_to_string c.Detect.c_kind));
      ("nodes", Json.List (List.map (fun n -> Json.Int n) c.Detect.c_nodes));
      ("prefixes", Json.List (List.map (fun p -> Json.String p) c.Detect.c_prefixes));
      ("count", Json.Int c.Detect.c_count);
      ("period_us",
       match c.Detect.c_period_us with Some p -> Json.Int p | None -> Json.Null);
      ("first_us", Json.Int c.Detect.c_first_us);
      ("last_us", Json.Int c.Detect.c_last_us);
      ("detail", Json.String c.Detect.c_detail);
      ("signature", Json.String (Dice.Signature.to_string signature)) ]

(* Everything in the report derives from event content and sim time —
   no sequence numbers, no span ids — and the cascade list arrives in
   canonical order, so a pooled and a sequential run of the same
   deployment serialize to the same bytes. *)
let to_json ?graph ~timeline ~propagation cascades =
  let tl = (timeline : Timeline.t) in
  Json.Obj
    [ ("schema", Json.String version);
      ("source",
       Json.Obj
         [ ("records", Json.Int tl.Timeline.tl_records);
           ("spans", Json.Int tl.Timeline.tl_spans);
           ("rounds", Json.Int tl.Timeline.tl_rounds);
           ("faults", Json.Int (List.length tl.Timeline.tl_faults));
           ("sys", Json.Int (List.length tl.Timeline.tl_sys));
           ("flips", Json.Int (List.length tl.Timeline.tl_flips));
           ("first_us", Json.Int tl.Timeline.tl_first_us);
           ("last_us", Json.Int tl.Timeline.tl_last_us) ]);
      ("graph",
       Json.Obj
         [ ("vertices", Json.Int (Graph.vertex_count propagation));
           ("edges", Json.Int (Graph.edge_count propagation));
           ("cycles", Json.Int (List.length (Graph.sccs propagation))) ]);
      ("cascades", Json.List (List.map (cascade_to_json ?graph) cascades)) ]

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

let str_member key j =
  match Json.member key j with Some (Json.String s) -> Some s | _ -> None

let int_member key j =
  match Json.member key j with Some (Json.Int i) -> Some i | _ -> None

let validate json =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* () =
    match str_member "schema" json with
    | Some s when String.equal s version -> Ok ()
    | Some s -> fail "schema mismatch: expected %s, got %s" version s
    | None -> fail "missing schema field"
  in
  let* () =
    match Json.member "source" json with
    | Some (Json.Obj _ as src) ->
        let required = [ "records"; "rounds"; "faults"; "sys"; "flips" ] in
        List.fold_left
          (fun acc k ->
            let* () = acc in
            match int_member k src with
            | Some n when n >= 0 -> Ok ()
            | Some n -> fail "source.%s is negative (%d)" k n
            | None -> fail "source.%s missing or not an int" k)
          (Ok ()) required
    | _ -> fail "missing source object"
  in
  let* cascades =
    match Json.member "cascades" json with
    | Some (Json.List l) -> Ok l
    | _ -> fail "missing cascades list"
  in
  let check_cascade i c =
    let* kind =
      match str_member "kind" c with
      | Some k -> Ok k
      | None -> fail "cascades[%d]: missing kind" i
    in
    let* () =
      match Detect.kind_of_string kind with
      | Some _ -> Ok ()
      | None -> fail "cascades[%d]: unknown kind %s" i kind
    in
    let* () =
      match Json.member "nodes" c with
      | Some (Json.List (_ :: _ as l))
        when List.for_all (function Json.Int _ -> true | _ -> false) l ->
          Ok ()
      | _ -> fail "cascades[%d]: nodes must be a non-empty int list" i
    in
    let* () =
      match (int_member "count" c, int_member "first_us" c, int_member "last_us" c) with
      | Some n, _, _ when n < 1 -> fail "cascades[%d]: count < 1" i
      | _, Some f, Some l when f > l -> fail "cascades[%d]: first_us > last_us" i
      | Some _, Some _, Some _ -> Ok ()
      | _ -> fail "cascades[%d]: count/first_us/last_us missing" i
    in
    let* () =
      match str_member "detail" c with
      | Some "" | None -> fail "cascades[%d]: missing detail" i
      | Some _ -> Ok ()
    in
    match str_member "signature" c with
    | None -> fail "cascades[%d]: missing signature" i
    | Some s -> (
        match Dice.Signature.of_string s with
        | Ok sg when sg.Dice.Signature.sg_class = Dice.Fault.Cascade -> Ok ()
        | Ok _ -> fail "cascades[%d]: signature class is not cascade" i
        | Error e -> fail "cascades[%d]: bad signature: %s" i e)
  in
  let rec all i = function
    | [] -> Ok ()
    | c :: rest ->
        let* () = check_cascade i c in
        all (i + 1) rest
  in
  all 0 cascades

let validate_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string (String.trim content) with
  | Error msg -> Error [ Printf.sprintf "not a JSON document: %s" msg ]
  | Ok json -> (
      match validate json with Ok () -> Ok json | Error msg -> Error [ msg ])

let dot_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot propagation =
  let buf = Buffer.create 4096 in
  let cyclic = Graph.cyclic_states propagation in
  Buffer.add_string buf "digraph cascade {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  Array.iteri
    (fun i st ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d [label=\"%s\"%s];\n" i
           (dot_escape (Graph.state_label st))
           (if cyclic.(i) then ", style=filled, fillcolor=mistyrose" else "")))
    (Graph.states propagation);
  List.iter
    (fun (u, v, kind) ->
      let color =
        match kind with
        | Graph.Recurrence -> "red"
        | Graph.Induced -> "darkorange"
        | Graph.Flap -> "blue"
      in
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [color=%s, label=\"%s\", fontsize=8];\n" u
           v color
           (Graph.edge_kind_to_string kind)))
    (Graph.edges propagation);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot ~path propagation =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot propagation))
