type t = {
  n : int;
  first_us : int;
  last_us : int;
  period_us : int option;
}

let empty = { n = 0; first_us = 0; last_us = 0; period_us = None }

(* The period estimate is the median inter-arrival gap, reported only
   when the gaps are regular (max <= 4x median): a timer-driven
   oscillation repeats on a steady beat, a convergence transient is a
   burst with nothing after it. *)
let of_times times =
  match List.sort Int.compare times with
  | [] -> empty
  | [ t ] -> { n = 1; first_us = t; last_us = t; period_us = None }
  | first :: _ as sorted ->
      let n = List.length sorted in
      let last = List.nth sorted (n - 1) in
      let gaps =
        List.rev
          (snd
             (List.fold_left
                (fun (prev, acc) t -> (t, (t - prev) :: acc))
                (first, []) (List.tl sorted)))
      in
      let period_us =
        if n < 3 then None
        else
          let sorted_gaps = List.sort Int.compare gaps in
          let median = List.nth sorted_gaps (List.length sorted_gaps / 2) in
          let max_gap = List.nth sorted_gaps (List.length sorted_gaps - 1) in
          if median > 0 && max_gap <= 4 * median then Some median else None
      in
      { n; first_us = first; last_us = last; period_us }
