(** Online cascade monitoring over a bounded window of recent
    telemetry.

    [install] tees the current sink with a bounded ring (capacity in
    events, oldest dropped); [probe] re-analyzes the window and
    returns the {e newly seen} cascades as {!Dice.Fault.Cascade}
    faults — wire it to {!Dice.Orchestrator.run}'s [?probe] and
    [?on_cascade] to get cascade detection while the deployment is
    still running:

    {[
      Cascade.Online.with_monitor @@ fun mon ->
      Dice.Orchestrator.run
        ~probe:(fun () -> Cascade.Online.probe mon)
        ~on_cascade:handle ... ()
    ]}

    Each cascade root is reported once per monitor; the window keeps
    sliding underneath, so re-detections of the same root are
    swallowed.  [uninstall] restores the previous sink (idempotent;
    [with_monitor] does it on exception too). *)

type t

val default_capacity : int
(** 8192 events. *)

val install : ?capacity:int -> ?params:Detect.params -> unit -> t
val probe : t -> Dice.Fault.t list
val uninstall : t -> unit
val with_monitor : ?capacity:int -> ?params:Detect.params -> (t -> 'a) -> 'a
