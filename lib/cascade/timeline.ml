module Sink = Telemetry.Sink

type span = {
  sp_id : int;
  sp_name : string;
  sp_parent : int option;
  sp_start_us : int;
  sp_end_us : int option;
}

type fault = {
  fl_t_us : int;
  fl_class : string;
  fl_property : string;
  fl_node : int;
  fl_detail : string;
  fl_round : int option;
}

type sys = {
  sy_t_us : int;
  sy_kind : string;
  sy_nodes : int list;
  sy_detail : string;
}

type flip = { fp_t_us : int; fp_node : int; fp_prefix : string; fp_state : string }

type t = {
  tl_records : int;
  tl_spans : int;
  tl_rounds : int;
  tl_faults : fault list;
  tl_sys : sys list;
  tl_flips : flip list;
  tl_first_us : int;
  tl_last_us : int;
}

(* A loc-rib trace detail is exactly "<prefix> via <peer>" or
   "<prefix> unreachable" (see Bgp.Router); anything else is some other
   trace kind's payload and is ignored. *)
let parse_locrib detail =
  match String.index_opt detail ' ' with
  | None -> None
  | Some i ->
      let prefix = String.sub detail 0 i in
      let state = String.sub detail (i + 1) (String.length detail - i - 1) in
      if
        String.equal state "unreachable"
        || (String.length state > 4 && String.equal (String.sub state 0 4) "via ")
      then Some (prefix, state)
      else None

type builder = {
  mutable b_records : int;
  b_spans : (int, span) Hashtbl.t;
  (* round span id -> round index (from the span's [index] attribute) *)
  b_rounds : (int, int) Hashtbl.t;
  mutable b_faults : fault list;
  mutable b_sys : sys list;
  mutable b_flips : flip list;
  mutable b_first_us : int option;
  mutable b_last_us : int;
}

let builder () =
  { b_records = 0; b_spans = Hashtbl.create 64; b_rounds = Hashtbl.create 16;
    b_faults = []; b_sys = []; b_flips = []; b_first_us = None; b_last_us = 0 }

let see_time b t_us =
  (match b.b_first_us with
  | None -> b.b_first_us <- Some t_us
  | Some f -> if t_us < f then b.b_first_us <- Some t_us);
  if t_us > b.b_last_us then b.b_last_us <- t_us

(* Innermost enclosing round span wins: the path is root-first, so scan
   from the right. *)
let round_of_path b path =
  List.fold_left
    (fun acc id -> match Hashtbl.find_opt b.b_rounds id with Some i -> Some i | None -> acc)
    None path

let add b (event : Sink.event) =
  b.b_records <- b.b_records + 1;
  match event with
  | Sink.Run _ -> ()
  | Sink.Span_start { id; parent; name; t_us; attrs } ->
      see_time b t_us;
      Hashtbl.replace b.b_spans id
        { sp_id = id; sp_name = name; sp_parent = parent; sp_start_us = t_us;
          sp_end_us = None };
      if String.equal name "round" then (
        match List.assoc_opt "index" attrs with
        | Some (Telemetry.Json.Int i) -> Hashtbl.replace b.b_rounds id i
        | _ -> Hashtbl.replace b.b_rounds id (Hashtbl.length b.b_rounds))
  | Sink.Span_end { id; t_us; _ } -> (
      see_time b t_us;
      match Hashtbl.find_opt b.b_spans id with
      | Some sp -> Hashtbl.replace b.b_spans id { sp with sp_end_us = Some t_us }
      | None -> ())
  | Sink.Fault { t_us; fault_class; property; node; detail; span_path; _ } ->
      see_time b t_us;
      b.b_faults <-
        { fl_t_us = t_us; fl_class = fault_class; fl_property = property;
          fl_node = node; fl_detail = detail;
          fl_round = round_of_path b span_path }
        :: b.b_faults
  | Sink.Metric _ -> ()
  | Sink.Trace { t_us; node; kind; detail } ->
      see_time b t_us;
      if String.equal kind "loc-rib" then (
        match parse_locrib detail with
        | Some (prefix, state) ->
            b.b_flips <-
              { fp_t_us = t_us; fp_node = node; fp_prefix = prefix;
                fp_state = state }
              :: b.b_flips
        | None -> ())
  | Sink.Sys { t_us; kind; nodes; detail } ->
      see_time b t_us;
      b.b_sys <-
        { sy_t_us = t_us; sy_kind = kind; sy_nodes = nodes; sy_detail = detail }
        :: b.b_sys

let finish b =
  { tl_records = b.b_records;
    tl_spans = Hashtbl.length b.b_spans;
    tl_rounds = Hashtbl.length b.b_rounds;
    tl_faults = List.rev b.b_faults;
    tl_sys = List.rev b.b_sys;
    tl_flips = List.rev b.b_flips;
    tl_first_us = Option.value b.b_first_us ~default:0;
    tl_last_us = b.b_last_us }

let of_events events =
  let b = builder () in
  List.iter (fun (_seq, ev) -> add b ev) events;
  finish b

let of_file path =
  let b = builder () in
  let errors =
    Sink.fold_file path ~init:[] ~f:(fun errs ~line r ->
        match r with
        | Ok (_seq, ev) ->
            add b ev;
            errs
        | Error msg -> Printf.sprintf "line %d: %s" line msg :: errs)
  in
  match errors with [] -> Ok (finish b) | errs -> Error (List.rev errs)

let duration_us t = max 0 (t.tl_last_us - t.tl_first_us)
