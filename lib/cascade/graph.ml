type state =
  | Fault_sig of { key : string; node : int }
  | Sys_state of { kind : string; node : int }
  | Rib_state of { node : int; prefix : string; state : string }

type edge_kind = Recurrence | Induced | Flap

type t = {
  g_states : state array;
  g_edges : (int * int * edge_kind) list;  (* deduped, deterministic order *)
  g_succ : int list array;
  g_index : (state, int) Hashtbl.t;
}

let find_state t st = Hashtbl.find_opt t.g_index st

let states t = t.g_states
let edges t = t.g_edges
let vertex_count t = Array.length t.g_states
let edge_count t = List.length t.g_edges

let state_label = function
  | Fault_sig { key; node } -> Printf.sprintf "fault %s @%d" key node
  | Sys_state { kind; node } -> Printf.sprintf "sys %s @%d" kind node
  | Rib_state { node; prefix; state } ->
      Printf.sprintf "rib %s %s @%d" prefix state node

let edge_kind_to_string = function
  | Recurrence -> "recurrence"
  | Induced -> "induced"
  | Flap -> "flap"

let default_induce_window_us = 30_000_000

(* The fault equivalence for rule (a): what {!Dice.Signature} keeps
   minus the node — two reports anywhere in the deployment with the
   same class, property and normalized detail are "the same signature
   recurring". *)
let fault_key (f : Timeline.fault) =
  Printf.sprintf "%s|%s|%s" f.Timeline.fl_class f.Timeline.fl_property
    (Dice.Fault.normalize_detail f.Timeline.fl_detail)

type builder = {
  mutable n : int;
  index : (state, int) Hashtbl.t;
  mutable order : state list;  (* reverse interning order *)
  edge_set : (int * int * edge_kind, unit) Hashtbl.t;
  mutable edge_order : (int * int * edge_kind) list;  (* reverse *)
}

let intern b st =
  match Hashtbl.find_opt b.index st with
  | Some id -> id
  | None ->
      let id = b.n in
      b.n <- id + 1;
      Hashtbl.add b.index st id;
      b.order <- st :: b.order;
      id

let add_edge b u v kind =
  let e = (u, v, kind) in
  if not (Hashtbl.mem b.edge_set e) then begin
    Hashtbl.add b.edge_set e ();
    b.edge_order <- e :: b.edge_order
  end

(* Stable grouping: [key] per element, first-appearance group order,
   elements keep their relative order. *)
let group_by key items =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun it ->
      let k = key it in
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.add tbl k [ it ];
          order := k :: !order
      | Some l -> Hashtbl.replace tbl k (it :: l))
    items;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let build ?(induce_window_us = default_induce_window_us) (tl : Timeline.t) =
  let b =
    { n = 0; index = Hashtbl.create 256; order = [];
      edge_set = Hashtbl.create 1024; edge_order = [] }
  in
  (* Rule (c) — flap edges: per (node, prefix), each observed loc-rib
     transition is an edge between the two rib states.  Revisiting a
     state closes a cycle; a monotone convergence sequence never
     does. *)
  List.iter
    (fun ((node, prefix), flips) ->
      ignore node;
      ignore prefix;
      let rec walk = function
        | (a : Timeline.flip) :: (b' :: _ as rest) ->
            let u =
              intern b
                (Rib_state
                   { node = a.Timeline.fp_node; prefix = a.Timeline.fp_prefix;
                     state = a.Timeline.fp_state })
            in
            let v =
              intern b
                (Rib_state
                   { node = b'.Timeline.fp_node; prefix = b'.Timeline.fp_prefix;
                     state = b'.Timeline.fp_state })
            in
            add_edge b u v Flap;
            walk rest
        | [ f ] ->
            ignore
              (intern b
                 (Rib_state
                    { node = f.Timeline.fp_node; prefix = f.Timeline.fp_prefix;
                      state = f.Timeline.fp_state }))
        | [] -> ()
      in
      walk flips)
    (group_by
       (fun (f : Timeline.flip) -> (f.Timeline.fp_node, f.Timeline.fp_prefix))
       tl.Timeline.tl_flips);
  (* Rule (a) — recurrence edges: consecutive occurrences of the same
     fault signature in different rounds (or at different times when
     round attribution is unavailable, as in a ring window). *)
  List.iter
    (fun (key, occurrences) ->
      let rec walk = function
        | (f1 : Timeline.fault) :: (f2 :: _ as rest) ->
            let recurs =
              match (f1.Timeline.fl_round, f2.Timeline.fl_round) with
              | Some r1, Some r2 -> r1 <> r2
              | _ -> f2.Timeline.fl_t_us > f1.Timeline.fl_t_us
            in
            if recurs then begin
              let u = intern b (Fault_sig { key; node = f1.Timeline.fl_node }) in
              let v = intern b (Fault_sig { key; node = f2.Timeline.fl_node }) in
              add_edge b u v Recurrence
            end;
            walk rest
        | [ f ] ->
            ignore (intern b (Fault_sig { key; node = f.Timeline.fl_node }))
        | [] -> ()
      in
      walk occurrences)
    (group_by fault_key tl.Timeline.tl_faults);
  (* Rule (b) — induced edges: per node, the chronological chain of
     infrastructure events and faults touching it.  sys->sys is always
     linked (the quarantine/churn ping-pong chain); fault->sys and
     sys->fault only within the induction window. *)
  let touches = Hashtbl.create 64 in
  let touch node item = Hashtbl.add touches node item in
  List.iteri
    (fun i (f : Timeline.fault) ->
      touch f.Timeline.fl_node (f.Timeline.fl_t_us, i, `F f))
    tl.Timeline.tl_faults;
  List.iteri
    (fun i (s : Timeline.sys) ->
      List.iter
        (fun node -> touch node (s.Timeline.sy_t_us, i, `S s))
        (List.sort_uniq Int.compare s.Timeline.sy_nodes))
    tl.Timeline.tl_sys;
  let nodes =
    List.sort_uniq Int.compare
      (Hashtbl.fold (fun node _ acc -> node :: acc) touches [])
  in
  List.iter
    (fun node ->
      let items =
        List.sort
          (fun (t1, i1, _) (t2, i2, _) ->
            match Int.compare t1 t2 with 0 -> Int.compare i1 i2 | c -> c)
          (Hashtbl.find_all touches node)
      in
      let vertex = function
        | `F (f : Timeline.fault) ->
            intern b (Fault_sig { key = fault_key f; node = f.Timeline.fl_node })
        | `S (s : Timeline.sys) ->
            intern b (Sys_state { kind = s.Timeline.sy_kind; node })
      in
      let rec walk = function
        | (t1, _, it1) :: ((t2, _, it2) :: _ as rest) ->
            (match (it1, it2) with
            | `S _, `S _ -> add_edge b (vertex it1) (vertex it2) Induced
            | (`F _, `S _ | `S _, `F _) when t2 - t1 <= induce_window_us ->
                add_edge b (vertex it1) (vertex it2) Induced
            | _ -> ());
            walk rest
        | [ _ ] | [] -> ()
      in
      walk items)
    nodes;
  let g_states = Array.of_list (List.rev b.order) in
  let g_edges = List.rev b.edge_order in
  let g_succ = Array.make (Array.length g_states) [] in
  List.iter (fun (u, v, _) -> g_succ.(u) <- v :: g_succ.(u)) g_edges;
  Array.iteri (fun i l -> g_succ.(i) <- List.rev l) g_succ;
  { g_states; g_edges; g_succ; g_index = b.index }

(* Tarjan, iterative: vertex counts are bounded by distinct *states*
   (not events), but an adversarial artifact could still chain many
   distinct states, so no recursion on the input. *)
let sccs t =
  let n = Array.length t.g_states in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let self_loop = Array.make n false in
  List.iter (fun (u, v, _) -> if u = v then self_loop.(u) <- true) t.g_edges;
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* Explicit DFS frames: (vertex, remaining successors). *)
      let frames = ref [ (root, ref t.g_succ.(root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, succs) :: rest -> (
            match !succs with
            | w :: tl ->
                succs := tl;
                if index.(w) < 0 then begin
                  index.(w) <- !next_index;
                  lowlink.(w) <- !next_index;
                  incr next_index;
                  stack := w :: !stack;
                  on_stack.(w) <- true;
                  frames := (w, ref t.g_succ.(w)) :: !frames
                end
                else if on_stack.(w) then
                  lowlink.(v) <- min lowlink.(v) index.(w)
            | [] ->
                frames := rest;
                (match rest with
                | (parent, _) :: _ ->
                    lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
                | [] -> ());
                if lowlink.(v) = index.(v) then begin
                  let rec pop acc =
                    match !stack with
                    | w :: tl ->
                        stack := tl;
                        on_stack.(w) <- false;
                        if w = v then w :: acc else pop (w :: acc)
                    | [] -> acc
                  in
                  let comp = pop [] in
                  components := List.sort Int.compare comp :: !components
                end)
      done
    end
  done;
  let nontrivial = function
    | [ v ] -> self_loop.(v)
    | [] -> false
    | _ -> true
  in
  List.sort
    (fun a b -> Int.compare (List.hd a) (List.hd b))
    (List.filter nontrivial !components)

let cyclic_states t =
  let cyc = Array.make (Array.length t.g_states) false in
  List.iter (fun comp -> List.iter (fun v -> cyc.(v) <- true) comp) (sccs t);
  cyc
