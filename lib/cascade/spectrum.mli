(** Per-series flap spectrum over sim time.

    Given the timestamps of one flip-flop series (e.g. every loc-rib
    change of one prefix at one node), estimate whether the series
    repeats on a steady beat.  [period_us] is the median inter-arrival
    gap, present only when the gaps are regular (maximum gap at most
    4x the median) — a timer-driven oscillation qualifies, a one-off
    convergence burst does not. *)

type t = {
  n : int;  (** number of events in the series *)
  first_us : int;
  last_us : int;
  period_us : int option;
}

val empty : t
val of_times : int list -> t
