type kind = Route_oscillation | Flap_storm | Quarantine_pingpong

let kind_to_string = function
  | Route_oscillation -> "route-oscillation"
  | Flap_storm -> "flap-storm"
  | Quarantine_pingpong -> "quarantine-pingpong"

let kind_of_string = function
  | "route-oscillation" -> Some Route_oscillation
  | "flap-storm" -> Some Flap_storm
  | "quarantine-pingpong" -> Some Quarantine_pingpong
  | _ -> None

type cascade = {
  c_kind : kind;
  c_nodes : int list;
  c_prefixes : string list;
  c_count : int;
  c_period_us : int option;
  c_first_us : int;
  c_last_us : int;
  c_detail : string;
}

type params = {
  min_flips : int;
  storm_prefixes : int;
  min_quarantines : int;
  induce_window_us : int;
}

let default_params =
  { min_flips = 6; storm_prefixes = 8; min_quarantines = 2;
    induce_window_us = Graph.default_induce_window_us }

(* A self-sustaining oscillation keeps flipping for as long as anyone
   watches — at least about once per two exploration rounds.  Long
   timelines (hours-long campaign artifacts) therefore raise the bar
   proportionally: a prefix that flipped 6 times during 40 rounds is
   convergence chatter, not a cascade.  The fixed floor is the lower
   bound — short timelines tune to exactly [base.min_flips], so
   existing reports never churn. *)
let auto_params ?(base = default_params) (tl : Timeline.t) =
  { base with min_flips = max base.min_flips (tl.Timeline.tl_rounds / 2) }

(* Same stable grouping as the graph builder. *)
let group_by key items =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun it ->
      let k = key it in
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.add tbl k [ it ];
          order := k :: !order
      | Some l -> Hashtbl.replace tbl k (it :: l))
    items;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let pp_period ppf = function
  | Some p -> Format.fprintf ppf " (period ~%.1fs)" (float_of_int p /. 1e6)
  | None -> ()

let run ?(params = default_params) (tl : Timeline.t) =
  let g = Graph.build ~induce_window_us:params.induce_window_us tl in
  let cyclic = Graph.cyclic_states g in
  let in_cycle st =
    match Graph.find_state g st with Some v -> cyclic.(v) | None -> false
  in
  (* A (node, prefix) flip series oscillates when it is long enough AND
     its rib states close a cycle in the propagation graph.  Flap edges
     never leave a (node, prefix) series, so a cyclic rib state means
     this very series revisited a route it had already abandoned —
     one-way convergence, however chatty, stays acyclic. *)
  let qualifying =
    List.filter_map
      (fun ((node, prefix), flips) ->
        let spectrum =
          Spectrum.of_times (List.map (fun f -> f.Timeline.fp_t_us) flips)
        in
        let cyclic_series =
          List.exists
            (fun (f : Timeline.flip) ->
              in_cycle
                (Graph.Rib_state
                   { node = f.Timeline.fp_node; prefix = f.Timeline.fp_prefix;
                     state = f.Timeline.fp_state }))
            flips
        in
        if spectrum.Spectrum.n >= params.min_flips && cyclic_series then
          Some (node, prefix, spectrum)
        else None)
      (group_by
         (fun (f : Timeline.flip) -> (f.Timeline.fp_node, f.Timeline.fp_prefix))
         tl.Timeline.tl_flips)
  in
  let by_prefix = group_by (fun (_, prefix, _) -> prefix) qualifying in
  let prefix_cascade (prefix, series) =
    let nodes = List.sort_uniq Int.compare (List.map (fun (n, _, _) -> n) series) in
    let count = List.fold_left (fun acc (_, _, s) -> acc + s.Spectrum.n) 0 series in
    let first_us =
      List.fold_left (fun acc (_, _, s) -> min acc s.Spectrum.first_us)
        max_int series
    in
    let last_us =
      List.fold_left (fun acc (_, _, s) -> max acc s.Spectrum.last_us) 0 series
    in
    let period_us =
      List.fold_left
        (fun acc (_, _, s) ->
          match (acc, s.Spectrum.period_us) with
          | None, p | p, None -> p
          | Some a, Some b -> Some (min a b))
        None series
    in
    let detail =
      Format.asprintf "prefix %s flip-flopped %d times across %d node(s)%a"
        prefix count (List.length nodes) pp_period period_us
    in
    { c_kind = Route_oscillation; c_nodes = nodes; c_prefixes = [ prefix ];
      c_count = count; c_period_us = period_us; c_first_us = first_us;
      c_last_us = last_us; c_detail = detail }
  in
  let oscillations = List.map prefix_cascade by_prefix in
  (* Many prefixes oscillating at once is one storm, not N oscillation
     reports: aggregate so the triage corpus gets a single stable
     signature for the systemic event. *)
  let route_cascades =
    if List.length oscillations >= params.storm_prefixes then begin
      let nodes =
        List.sort_uniq Int.compare (List.concat_map (fun c -> c.c_nodes) oscillations)
      in
      let prefixes =
        List.sort_uniq String.compare
          (List.concat_map (fun c -> c.c_prefixes) oscillations)
      in
      let count = List.fold_left (fun acc c -> acc + c.c_count) 0 oscillations in
      let first_us =
        List.fold_left (fun acc c -> min acc c.c_first_us) max_int oscillations
      in
      let last_us =
        List.fold_left (fun acc c -> max acc c.c_last_us) 0 oscillations
      in
      let period_us =
        List.fold_left
          (fun acc c ->
            match (acc, c.c_period_us) with
            | None, p | p, None -> p
            | Some a, Some b -> Some (min a b))
          None oscillations
      in
      [ { c_kind = Flap_storm; c_nodes = nodes; c_prefixes = prefixes;
          c_count = count; c_period_us = period_us; c_first_us = first_us;
          c_last_us = last_us;
          c_detail =
            Format.asprintf "%d prefixes flapping concurrently (%d flips across %d node(s))%a"
              (List.length prefixes) count (List.length nodes) pp_period
              period_us } ]
    end
    else oscillations
  in
  (* Quarantine ping-pong: a node quarantined, released, and quarantined
     again — the supervisor itself is oscillating.  The evidence is the
     per-node q -> uq -> q chain, which rule (b) turns into a cycle on
     the node's [Sys_state]s. *)
  let pingpongs =
    let sys_of node =
      List.filter
        (fun (s : Timeline.sys) -> List.mem node s.Timeline.sy_nodes)
        tl.Timeline.tl_sys
    in
    let nodes =
      List.sort_uniq Int.compare
        (List.concat_map
           (fun (s : Timeline.sys) ->
             if String.equal s.Timeline.sy_kind "quarantine" then
               s.Timeline.sy_nodes
             else [])
           tl.Timeline.tl_sys)
    in
    List.filter_map
      (fun node ->
        let events = sys_of node in
        let quarantines =
          List.filter
            (fun (s : Timeline.sys) ->
              String.equal s.Timeline.sy_kind "quarantine")
            events
        in
        (* Re-quarantined = a release happened between two quarantines. *)
        let rec pingpong saw_q = function
          | [] -> false
          | (s : Timeline.sys) :: rest -> (
              match s.Timeline.sy_kind with
              | "quarantine" -> saw_q = `Released || pingpong `Quarantined rest
              | "unquarantine" ->
                  pingpong (if saw_q = `Quarantined then `Released else saw_q) rest
              | _ -> pingpong saw_q rest)
        in
        if
          List.length quarantines >= params.min_quarantines
          && pingpong `None events
        then begin
          let times = List.map (fun (s : Timeline.sys) -> s.Timeline.sy_t_us) quarantines in
          let spectrum = Spectrum.of_times times in
          Some
            { c_kind = Quarantine_pingpong; c_nodes = [ node ]; c_prefixes = [];
              c_count = List.length quarantines;
              c_period_us = spectrum.Spectrum.period_us;
              c_first_us = spectrum.Spectrum.first_us;
              c_last_us = spectrum.Spectrum.last_us;
              c_detail =
                Printf.sprintf "node %d re-quarantined %d times" node
                  (List.length quarantines) }
        end
        else None)
      nodes
  in
  let kind_rank = function
    | Route_oscillation -> 0
    | Flap_storm -> 1
    | Quarantine_pingpong -> 2
  in
  let cascades =
    List.sort
      (fun a b ->
        match Int.compare (kind_rank a.c_kind) (kind_rank b.c_kind) with
        | 0 -> (
            match Int.compare a.c_first_us b.c_first_us with
            | 0 -> compare (a.c_nodes, a.c_prefixes) (b.c_nodes, b.c_prefixes)
            | c -> c)
        | c -> c)
      (route_cascades @ pingpongs)
  in
  (g, cascades)

let detect ?params tl = snd (run ?params tl)

let root_of c =
  let node = match c.c_nodes with n :: _ -> n | [] -> -1 in
  Printf.sprintf "%s|%s|%d"
    (Dice.Fault.class_to_string Dice.Fault.Cascade)
    (kind_to_string c.c_kind) node

let to_fault c =
  let node = match c.c_nodes with n :: _ -> n | [] -> -1 in
  Dice.Fault.make
    ~at:(Netsim.Time.of_us (max 0 c.c_last_us))
    ~node ~property:(kind_to_string c.c_kind) Dice.Fault.Cascade c.c_detail

let pp ppf c =
  Format.fprintf ppf "%s: %s [%d event(s), nodes %s]"
    (kind_to_string c.c_kind) c.c_detail c.c_count
    (String.concat "," (List.map string_of_int c.c_nodes))
