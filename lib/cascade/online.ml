type t = {
  o_ring : Telemetry.Sink.t;
  o_prev : Telemetry.Sink.t;
  o_params : Detect.params;
  o_seen : (string, unit) Hashtbl.t;
  mutable o_installed : bool;
}

let default_capacity = 8192

let install ?(capacity = default_capacity) ?(params = Detect.default_params) () =
  let prev = Telemetry.sink () in
  let ring = Telemetry.Sink.ring ~capacity in
  (* Tee so the run's own sink (artifact, memory, ...) keeps seeing
     everything; with no sink installed the ring alone turns recording
     on, which is the monitor's whole point. *)
  Telemetry.set_sink (Telemetry.Sink.tee prev ring);
  { o_ring = ring; o_prev = prev; o_params = params;
    o_seen = Hashtbl.create 4; o_installed = true }

let probe t =
  let timeline = Timeline.of_events (Telemetry.Sink.events t.o_ring) in
  let cascades = Detect.detect ~params:t.o_params timeline in
  (* Fresh roots only: the window keeps sliding, so the same cascade
     re-detects on every probe — report each root once per monitor. *)
  List.filter_map
    (fun c ->
      let root = Detect.root_of c in
      if Hashtbl.mem t.o_seen root then None
      else begin
        Hashtbl.add t.o_seen root ();
        Some (Detect.to_fault c)
      end)
    cascades

let uninstall t =
  if t.o_installed then begin
    t.o_installed <- false;
    Telemetry.set_sink t.o_prev
  end

let with_monitor ?capacity ?params f =
  let t = install ?capacity ?params () in
  Fun.protect ~finally:(fun () -> uninstall t) (fun () -> f t)
