(** The [dice-cascade/1] analysis report and the DOT rendering of the
    propagation graph.

    A report is one JSON object (written as a single line):
    [schema], a [source] block (record counts and the sim-time extent
    of the analyzed timeline), a [graph] block (vertex/edge/cycle
    counts), and the canonical [cascades] list — each cascade with its
    kind, nodes, prefixes, evidence count, period and the stable
    {!Dice.Signature} wire form.  Everything derives from event
    content and sim time (never sequence numbers or span ids), so a
    pooled and a sequential run serialize byte-identically. *)

val version : string
(** ["dice-cascade/1"]. *)

val to_json :
  ?graph:Topology.Graph.t ->
  timeline:Timeline.t ->
  propagation:Graph.t ->
  Detect.cascade list ->
  Telemetry.Json.t
(** [graph], when given, canonicalizes node roles in the embedded
    signatures (as {!Dice.Signature.make} does). *)

val write : path:string -> Telemetry.Json.t -> unit
(** One line of JSON plus a newline. *)

val validate : Telemetry.Json.t -> (unit, string) result

val validate_file : string -> (Telemetry.Json.t, string list) result
(** Parse and validate a report file ([telemetry_check --cascade]'s
    path); returns the parsed document on success. *)

val to_dot : Graph.t -> string
(** Graphviz rendering: one box per state (cycle members filled),
    edges colored by inference rule. *)

val write_dot : path:string -> Graph.t -> unit
