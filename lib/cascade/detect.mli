(** The cascade classifier: SCC evidence + flap spectrum -> cascade
    reports.

    A cascade is a self-sustaining failure pattern, detected by its
    shape over the whole timeline rather than by any single-snapshot
    property:

    - {b Route_oscillation} — one prefix whose loc-rib entry at some
      node(s) keeps revisiting abandoned routes: the flip series is at
      least [min_flips] long {e and} closes a cycle in the propagation
      graph (so one-way convergence never qualifies, however long);
    - {b Flap_storm} — at least [storm_prefixes] distinct prefixes
      oscillating in one timeline, aggregated into a single systemic
      report instead of N per-prefix ones;
    - {b Quarantine_pingpong} — a node the supervisor quarantined,
      released and quarantined again: the supervision loop itself is
      oscillating.

    Each cascade maps to a {!Dice.Fault.t} of class {!Dice.Fault.Cascade}
    whose property is the cascade kind and whose detail normalizes to a
    stable string, so cascades flow through the existing
    signature/triage/corpus machinery unchanged. *)

type kind = Route_oscillation | Flap_storm | Quarantine_pingpong

val kind_to_string : kind -> string
(** ["route-oscillation"] / ["flap-storm"] / ["quarantine-pingpong"] —
    also the synthesized fault's property. *)

val kind_of_string : string -> kind option

type cascade = {
  c_kind : kind;
  c_nodes : int list;  (** sorted, distinct *)
  c_prefixes : string list;  (** sorted, distinct; [[]] for ping-pong *)
  c_count : int;  (** flips (route kinds) or quarantines (ping-pong) *)
  c_period_us : int option;  (** dominant period, when regular *)
  c_first_us : int;
  c_last_us : int;
  c_detail : string;
}

type params = {
  min_flips : int;  (** per (node, prefix) series; default 6 *)
  storm_prefixes : int;
      (** oscillating prefixes that make a storm; default 8 *)
  min_quarantines : int;  (** per node for ping-pong; default 2 *)
  induce_window_us : int;  (** rule (b) window; default 30 s *)
}

val default_params : params

val auto_params : ?base:params -> Timeline.t -> params
(** Tune [min_flips] to the observed round cadence: a genuine
    self-sustaining oscillation flips at least about once per two
    rounds for the whole window, so [min_flips] becomes
    [max base.min_flips (rounds / 2)] — long campaign timelines demand
    proportionally more evidence, while [base.min_flips] (the fixed
    floor) is a hard lower bound, so short timelines are classified
    exactly as before. *)

val run : ?params:params -> Timeline.t -> Graph.t * cascade list
(** Cascades in canonical order (kind, then first occurrence, then
    nodes/prefixes) — derived only from event content and sim time,
    never from sequence numbers, so a pooled run and a sequential run
    of the same deployment produce identical lists. *)

val detect : ?params:params -> Timeline.t -> cascade list

val to_fault : cascade -> Dice.Fault.t
(** Synthesize the {!Dice.Fault.Cascade}-class fault (also emits the
    fault telemetry record, like every [Fault.make]). *)

val root_of : cascade -> string
(** {!Dice.Fault.root} of [to_fault c], without synthesizing (or
    emitting) the fault — the online monitor's dedupe key. *)

val pp : Format.formatter -> cascade -> unit
