(** The causal fault-propagation graph.

    Vertices are {e states}, not event occurrences: a fault signature
    at a node, an infrastructure condition at a node, a loc-rib entry
    for a prefix at a node.  Edges are observed temporal transitions
    between states, inferred by three rules:

    - {b (a) recurrence} — the same fault signature (class, property,
      normalized detail) reported again in a later round links the two
      per-node signature states (a self-loop when it is the same
      node);
    - {b (b) induction} — a fault followed by a churn application or a
      quarantine decision touching the same node (within a window),
      and such an infrastructure event followed by a fault on a node
      it touches, are linked; consecutive infrastructure events on one
      node are always linked (the quarantine ping-pong chain);
    - {b (c) flap} — every observed loc-rib transition of one prefix
      at one node links its two rib states.

    Because vertices are states, a self-sustaining failure {e must}
    revisit a vertex, i.e. close a cycle: the strongly connected
    components of this graph (size two or more, or a self-loop) are
    exactly the cascade evidence, while any one-way convergence
    sequence — however long — stays acyclic. *)

type state =
  | Fault_sig of { key : string; node : int }
      (** [key] is ["class|property|normalized-detail"] *)
  | Sys_state of { kind : string; node : int }
  | Rib_state of { node : int; prefix : string; state : string }

type edge_kind = Recurrence | Induced | Flap

type t

val default_induce_window_us : int
(** 30 simulated seconds. *)

val build : ?induce_window_us:int -> Timeline.t -> t

val states : t -> state array
(** Vertex id = array index; interning order is deterministic in the
    timeline's event order. *)

val edges : t -> (int * int * edge_kind) list
val vertex_count : t -> int
val edge_count : t -> int

val sccs : t -> int list list
(** Nontrivial strongly connected components (size >= 2, or a single
    vertex with a self-loop), each sorted ascending, ordered by
    smallest member. *)

val cyclic_states : t -> bool array
(** [cyclic.(v)] iff vertex [v] belongs to a nontrivial SCC. *)

val find_state : t -> state -> int option

val fault_key : Timeline.fault -> string
val state_label : state -> string
val edge_kind_to_string : edge_kind -> string
