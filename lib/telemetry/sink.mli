(** Telemetry events and sinks.

    Every observable thing in a run — span boundaries, detected
    faults, simulator trace records, end-of-run metric values — is one
    {!event}.  A {!t} receives events: [Noop] discards them (the
    default; recording must be near-zero-cost when nobody listens),
    [Memory] buffers them for tests, [Jsonl] writes one JSON object
    per line in the [dice-telemetry/1] schema.

    Sinks are domain-safe: a mutex serialises emission, and the
    per-sink sequence number is assigned under that lock, so file
    order always equals [seq] order even when pool workers emit
    concurrently.

    Timestamps ([t_us]) are {e simulated} microseconds — wall time
    appears only in the run-header attributes written by the
    exporter. *)

type event =
  | Run of { schema : string; attrs : (string * Json.t) list }
      (** First line of an artifact: schema version + run metadata. *)
  | Span_start of {
      id : int;
      parent : int option;
      name : string;
      t_us : int;
      attrs : (string * Json.t) list;
    }
  | Span_end of { id : int; t_us : int; attrs : (string * Json.t) list }
  | Fault of {
      t_us : int;
      fault_class : string;
      property : string;
      node : int;
      detail : string;
      input : string option;
      span_path : int list;  (** root-first chain of enclosing span ids *)
    }
  | Metric of { t_us : int; name : string; value : Json.t }
  | Trace of { t_us : int; node : int; kind : string; detail : string }

type t

val noop : t
val memory : unit -> t

val jsonl : out_channel -> t
(** The caller owns the channel; {!flush} before closing it. *)

val is_noop : t -> bool
val emit : t -> event -> unit

val events : t -> (int * event) list
(** Buffered [(seq, event)] pairs in ascending [seq] order; [[]] for
    non-[Memory] sinks. *)

val flush : t -> unit

val to_json : seq:int -> event -> Json.t
val of_json : Json.t -> (int * event, string) result
(** Inverse of {!to_json}: decode one line back to [(seq, event)]. *)
