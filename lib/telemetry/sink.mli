(** Telemetry events and sinks.

    Every observable thing in a run — span boundaries, detected
    faults, simulator trace records, end-of-run metric values — is one
    {!event}.  A {!t} receives events: [Noop] discards them (the
    default; recording must be near-zero-cost when nobody listens),
    [Memory] buffers them for tests, [Jsonl] writes one JSON object
    per line in the [dice-telemetry/1] schema.

    Sinks are domain-safe: a mutex serialises emission, and the
    per-sink sequence number is assigned under that lock, so file
    order always equals [seq] order even when pool workers emit
    concurrently.

    Timestamps ([t_us]) are {e simulated} microseconds — wall time
    appears only in the run-header attributes written by the
    exporter. *)

type event =
  | Run of { schema : string; attrs : (string * Json.t) list }
      (** First line of an artifact: schema version + run metadata. *)
  | Span_start of {
      id : int;
      parent : int option;
      name : string;
      t_us : int;
      attrs : (string * Json.t) list;
    }
  | Span_end of { id : int; t_us : int; attrs : (string * Json.t) list }
  | Fault of {
      t_us : int;
      fault_class : string;
      property : string;
      node : int;
      detail : string;
      input : string option;
      span_path : int list;  (** root-first chain of enclosing span ids *)
    }
  | Metric of { t_us : int; name : string; value : Json.t }
  | Trace of { t_us : int; node : int; kind : string; detail : string }
  | Sys of { t_us : int; kind : string; nodes : int list; detail : string }
      (** Infrastructure state change: churn applications
          ([churn.node-down], [churn.link-up], [churn.partition],
          [churn.heal], …) and supervisor decisions ([quarantine],
          [unquarantine]).  [nodes] lists every node the change
          touches — the cascade stitcher links faults through these
          without parsing [detail]. *)

type t

val noop : t
val memory : unit -> t

val jsonl : out_channel -> t
(** The caller owns the channel; {!flush} before closing it. *)

val ring : capacity:int -> t
(** A bounded [memory]: keeps the most recent [capacity] events,
    dropping the oldest — the online cascade monitor's window. *)

val tee : t -> t -> t
(** Every event goes to both sinks; each keeps its own sequence
    counter, so a [jsonl] branch remains a well-formed artifact and a
    [ring] branch a well-formed window. *)

val is_noop : t -> bool
val emit : t -> event -> unit

val events : t -> (int * event) list
(** Buffered [(seq, event)] pairs in ascending [seq] order; [[]] for
    non-buffering sinks ([Noop], [Jsonl]).  For a tee, the first
    buffering branch wins. *)

val flush : t -> unit

val to_json : seq:int -> event -> Json.t
val of_json : Json.t -> (int * event, string) result
(** Inverse of {!to_json}: decode one line back to [(seq, event)]. *)

(** {1 Streaming artifact reader} *)

val fold_file :
  string ->
  init:'a ->
  f:('a -> line:int -> ((int * event, string) result) -> 'a) ->
  'a
(** Iterate a JSONL artifact one line at a time without loading it
    whole.  [f] sees every non-blank physical line with its 1-based
    line number: [Ok (seq, event)] for well-formed records, [Error msg]
    for lines that are not JSON or not telemetry events — the caller
    decides whether a malformed line is fatal. *)

val iter_file :
  string -> f:(line:int -> ((int * event, string) result) -> unit) -> unit
