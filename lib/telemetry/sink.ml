type event =
  | Run of { schema : string; attrs : (string * Json.t) list }
  | Span_start of {
      id : int;
      parent : int option;
      name : string;
      t_us : int;
      attrs : (string * Json.t) list;
    }
  | Span_end of { id : int; t_us : int; attrs : (string * Json.t) list }
  | Fault of {
      t_us : int;
      fault_class : string;
      property : string;
      node : int;
      detail : string;
      input : string option;
      span_path : int list;
    }
  | Metric of { t_us : int; name : string; value : Json.t }
  | Trace of { t_us : int; node : int; kind : string; detail : string }
  | Sys of { t_us : int; kind : string; nodes : int list; detail : string }

type t =
  | Noop
  | Memory of { mutable buf : (int * event) list; m_lock : Mutex.t; mutable m_seq : int }
  | Jsonl of { oc : out_channel; j_lock : Mutex.t; mutable j_seq : int }
  | Ring of {
      r_buf : (int * event) Queue.t;
      r_cap : int;
      r_lock : Mutex.t;
      mutable r_seq : int;
    }
  | Tee of t * t

let noop = Noop
let memory () = Memory { buf = []; m_lock = Mutex.create (); m_seq = 0 }
let jsonl oc = Jsonl { oc; j_lock = Mutex.create (); j_seq = 0 }

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  Ring { r_buf = Queue.create (); r_cap = capacity; r_lock = Mutex.create (); r_seq = 0 }

let tee a b = Tee (a, b)

let rec is_noop = function
  | Noop -> true
  | Memory _ | Jsonl _ | Ring _ -> false
  | Tee (a, b) -> is_noop a && is_noop b

(* ------------------------------------------------------------------ *)
(* JSON codec (schema dice-telemetry/1)                                *)
(* ------------------------------------------------------------------ *)

let attrs_field attrs = ("attrs", Json.Obj attrs)

let to_json ~seq event =
  let base ty rest = Json.Obj (("type", Json.String ty) :: ("seq", Json.Int seq) :: rest) in
  match event with
  | Run { schema; attrs } ->
      base "run" [ ("schema", Json.String schema); attrs_field attrs ]
  | Span_start { id; parent; name; t_us; attrs } ->
      base "span_start"
        [ ("id", Json.Int id);
          ("parent", match parent with Some p -> Json.Int p | None -> Json.Null);
          ("name", Json.String name);
          ("t_us", Json.Int t_us);
          attrs_field attrs ]
  | Span_end { id; t_us; attrs } ->
      base "span_end" [ ("id", Json.Int id); ("t_us", Json.Int t_us); attrs_field attrs ]
  | Fault { t_us; fault_class; property; node; detail; input; span_path } ->
      base "fault"
        [ ("t_us", Json.Int t_us);
          ("class", Json.String fault_class);
          ("property", Json.String property);
          ("node", Json.Int node);
          ("detail", Json.String detail);
          ("input", match input with Some i -> Json.String i | None -> Json.Null);
          ("span_path", Json.List (List.map (fun i -> Json.Int i) span_path)) ]
  | Metric { t_us; name; value } ->
      base "metric"
        [ ("t_us", Json.Int t_us); ("name", Json.String name); ("value", value) ]
  | Trace { t_us; node; kind; detail } ->
      base "trace"
        [ ("t_us", Json.Int t_us);
          ("node", Json.Int node);
          ("kind", Json.String kind);
          ("detail", Json.String detail) ]
  | Sys { t_us; kind; nodes; detail } ->
      base "sys"
        [ ("t_us", Json.Int t_us);
          ("kind", Json.String kind);
          ("nodes", Json.List (List.map (fun n -> Json.Int n) nodes));
          ("detail", Json.String detail) ]

let of_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name =
    match Json.member name json with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let str name =
    let* v = field name in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "field %S: expected string" name)
  in
  let int name =
    let* v = field name in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "field %S: expected int" name)
  in
  let attrs () =
    let* v = field "attrs" in
    match v with
    | Json.Obj fields -> Ok fields
    | _ -> Error "field \"attrs\": expected object"
  in
  let* ty = str "type" in
  let* seq = int "seq" in
  let* event =
    match ty with
    | "run" ->
        let* schema = str "schema" in
        let* attrs = attrs () in
        Ok (Run { schema; attrs })
    | "span_start" ->
        let* id = int "id" in
        let* parent =
          let* v = field "parent" in
          match v with
          | Json.Null -> Ok None
          | Json.Int p -> Ok (Some p)
          | _ -> Error "field \"parent\": expected int or null"
        in
        let* name = str "name" in
        let* t_us = int "t_us" in
        let* attrs = attrs () in
        Ok (Span_start { id; parent; name; t_us; attrs })
    | "span_end" ->
        let* id = int "id" in
        let* t_us = int "t_us" in
        let* attrs = attrs () in
        Ok (Span_end { id; t_us; attrs })
    | "fault" ->
        let* t_us = int "t_us" in
        let* fault_class = str "class" in
        let* property = str "property" in
        let* node = int "node" in
        let* detail = str "detail" in
        let* input =
          let* v = field "input" in
          match v with
          | Json.Null -> Ok None
          | Json.String s -> Ok (Some s)
          | _ -> Error "field \"input\": expected string or null"
        in
        let* span_path =
          let* v = field "span_path" in
          match v with
          | Json.List items ->
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  match item with
                  | Json.Int i -> Ok (i :: acc)
                  | _ -> Error "span_path: expected ints")
                (Ok []) items
              |> fun r ->
              let* l = r in
              Ok (List.rev l)
          | _ -> Error "field \"span_path\": expected list"
        in
        Ok (Fault { t_us; fault_class; property; node; detail; input; span_path })
    | "metric" ->
        let* t_us = int "t_us" in
        let* name = str "name" in
        let* value = field "value" in
        Ok (Metric { t_us; name; value })
    | "trace" ->
        let* t_us = int "t_us" in
        let* node = int "node" in
        let* kind = str "kind" in
        let* detail = str "detail" in
        Ok (Trace { t_us; node; kind; detail })
    | "sys" ->
        let* t_us = int "t_us" in
        let* kind = str "kind" in
        let* nodes =
          let* v = field "nodes" in
          match v with
          | Json.List items ->
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  match item with
                  | Json.Int i -> Ok (i :: acc)
                  | _ -> Error "nodes: expected ints")
                (Ok []) items
              |> fun r ->
              let* l = r in
              Ok (List.rev l)
          | _ -> Error "field \"nodes\": expected list"
        in
        let* detail = str "detail" in
        Ok (Sys { t_us; kind; nodes; detail })
    | other -> Error (Printf.sprintf "unknown event type %S" other)
  in
  Ok (seq, event)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let rec emit t event =
  match t with
  | Noop -> ()
  | Memory m ->
      Mutex.lock m.m_lock;
      let seq = m.m_seq in
      m.m_seq <- seq + 1;
      m.buf <- (seq, event) :: m.buf;
      Mutex.unlock m.m_lock
  | Jsonl j ->
      Mutex.lock j.j_lock;
      let seq = j.j_seq in
      j.j_seq <- seq + 1;
      output_string j.oc (Json.to_string (to_json ~seq event));
      output_char j.oc '\n';
      Mutex.unlock j.j_lock
  | Ring r ->
      Mutex.lock r.r_lock;
      let seq = r.r_seq in
      r.r_seq <- seq + 1;
      Queue.push (seq, event) r.r_buf;
      if Queue.length r.r_buf > r.r_cap then ignore (Queue.pop r.r_buf);
      Mutex.unlock r.r_lock
  | Tee (a, b) ->
      (* Each branch keeps its own seq counter: a Jsonl branch stays a
         valid artifact on its own, a Ring branch stays a valid window. *)
      emit a event;
      emit b event

let rec events = function
  | Memory m ->
      Mutex.lock m.m_lock;
      let all = m.buf in
      Mutex.unlock m.m_lock;
      List.rev all
  | Ring r ->
      Mutex.lock r.r_lock;
      let all = List.of_seq (Queue.to_seq r.r_buf) in
      Mutex.unlock r.r_lock;
      all
  | Tee (a, b) -> ( match events a with [] -> events b | evs -> evs)
  | Noop | Jsonl _ -> []

let rec flush = function
  | Jsonl j ->
      Mutex.lock j.j_lock;
      Stdlib.flush j.oc;
      Mutex.unlock j.j_lock
  | Tee (a, b) ->
      flush a;
      flush b
  | Noop | Memory _ | Ring _ -> ()

(* ------------------------------------------------------------------ *)
(* Streaming reader                                                    *)
(* ------------------------------------------------------------------ *)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref init in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if String.trim line <> "" then begin
             let parsed =
               match Json.of_string line with
               | Error msg -> Error (Printf.sprintf "not valid JSON: %s" msg)
               | Ok json -> (
                   match of_json json with
                   | Error msg ->
                       Error (Printf.sprintf "not a telemetry event: %s" msg)
                   | Ok ev -> Ok ev)
             in
             acc := f !acc ~line:!line_no parsed
           end
         done
       with End_of_file -> ());
      !acc)

let iter_file path ~f = fold_file path ~init:() ~f:(fun () ~line r -> f ~line r)
