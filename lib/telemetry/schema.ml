type stats = {
  v_lines : int;
  v_spans : int;
  v_faults : int;
  v_metrics : int;
  v_traces : int;
  v_sys : int;
}

let version = "dice-telemetry/1"

type state = {
  mutable errors : string list;  (* newest first *)
  mutable last_seq : int;
  mutable line_no : int;
  started : (int, unit) Hashtbl.t;
  open_spans : (int, int) Hashtbl.t;  (* span id -> line started *)
  mutable lines : int;
  mutable spans : int;
  mutable faults : int;
  mutable metrics : int;
  mutable traces : int;
  mutable sys : int;
}

let err st fmt =
  Printf.ksprintf (fun msg ->
      st.errors <- Printf.sprintf "line %d: %s" st.line_no msg :: st.errors)
    fmt

let fresh_state () =
  { errors = []; last_seq = min_int; line_no = 0;
    started = Hashtbl.create 256; open_spans = Hashtbl.create 64;
    lines = 0; spans = 0; faults = 0; metrics = 0; traces = 0; sys = 0 }

(* One decoded record; the caller owns line accounting. *)
let check_event st (seq, event) =
  st.lines <- st.lines + 1;
  if st.lines = 1 then begin
    match event with
    | Sink.Run { schema; _ } ->
        if not (String.equal schema version) then
          err st "schema %S, expected %S" schema version
    | _ -> err st "first line must be the run header"
  end;
  if st.lines > 1 && seq <= st.last_seq then
    err st "seq %d not increasing (previous %d)" seq st.last_seq;
  st.last_seq <- seq;
  match event with
  | Sink.Run _ -> if st.lines > 1 then err st "duplicate run header"
  | Sink.Span_start { id; parent; _ } ->
      st.spans <- st.spans + 1;
      if Hashtbl.mem st.started id then err st "duplicate span id %d" id
      else begin
        Hashtbl.add st.started id ();
        Hashtbl.add st.open_spans id st.line_no
      end;
      (match parent with
      | Some p when not (Hashtbl.mem st.started p) ->
          err st "span %d: parent %d never started" id p
      | Some _ | None -> ())
  | Sink.Span_end { id; _ } ->
      if Hashtbl.mem st.open_spans id then Hashtbl.remove st.open_spans id
      else err st "span_end for %d, which is not open" id
  | Sink.Fault { span_path; _ } ->
      st.faults <- st.faults + 1;
      List.iter
        (fun id ->
          if not (Hashtbl.mem st.started id) then
            err st "fault references span %d, which never started" id)
        span_path
  | Sink.Metric { name; _ } ->
      st.metrics <- st.metrics + 1;
      if String.length name = 0 then err st "metric with empty name"
  | Sink.Trace _ -> st.traces <- st.traces + 1
  | Sink.Sys { kind; _ } ->
      st.sys <- st.sys + 1;
      if String.length kind = 0 then err st "sys event with empty kind"

let check_line st line =
  match Json.of_string line with
  | Error msg ->
      st.lines <- st.lines + 1;
      err st "not valid JSON: %s" msg
  | Ok json -> (
      match Sink.of_json json with
      | Error msg ->
          st.lines <- st.lines + 1;
          err st "not a telemetry event: %s" msg
      | Ok ev -> check_event st ev)

let finish st =
  if st.lines = 0 then st.errors <- [ "empty artifact" ];
  Hashtbl.iter
    (fun id line ->
      st.errors <-
        Printf.sprintf "span %d (started line %d) never closed" id line :: st.errors)
    st.open_spans;
  match st.errors with
  | [] ->
      Ok
        { v_lines = st.lines; v_spans = st.spans; v_faults = st.faults;
          v_metrics = st.metrics; v_traces = st.traces; v_sys = st.sys }
  | errors -> Error (List.rev errors)

let validate_lines lines =
  let st = fresh_state () in
  List.iter
    (fun line ->
      st.line_no <- st.line_no + 1;
      if String.trim line <> "" then check_line st line)
    lines;
  finish st

(* Streams through [Sink.fold_file]: a 100k-record artifact validates
   without ever holding more than one line in memory, and every
   malformed record is reported with its line number. *)
let validate_file path =
  let st = fresh_state () in
  Sink.fold_file path ~init:() ~f:(fun () ~line r ->
      st.line_no <- line;
      match r with
      | Ok ev -> check_event st ev
      | Error msg ->
          st.lines <- st.lines + 1;
          err st "%s" msg);
  finish st

let pp_stats ppf s =
  Format.fprintf ppf
    "%d lines: %d spans, %d faults, %d metrics, %d trace events, %d sys events"
    s.v_lines s.v_spans s.v_faults s.v_metrics s.v_traces s.v_sys
