(** The observability spine: causal spans, a metrics registry and
    JSONL run artifacts.

    One process-global sink receives every event.  The default sink is
    {!Sink.noop} and every recording entry point checks {!enabled}
    first, so an uninstrumented run pays (almost) nothing — the pin
    that a disabled sink changes no exploration results is part of the
    test suite.

    {b Determinism.}  Event timestamps come from the installed
    {!set_clock} — the orchestrator and the demo wire it to
    [Netsim.Engine.now], so a given seed yields the same timestamps on
    every host.  Wall-clock time appears only in the run-header
    attributes written by {!run_header}.

    {b Domain safety.}  The span context is domain-local
    ([Domain.DLS]); spans recorded from pool workers keep their causal
    parent when the submitting code wraps tasks with {!with_path}.
    Sinks serialise emission internally. *)

module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Sink = Sink
module Schema = Schema

val schema_version : string
(** ["dice-telemetry/1"]. *)

(** {1 Sink management} *)

val set_sink : Sink.t -> unit
val sink : unit -> Sink.t

val enabled : unit -> bool
(** [false] iff the installed sink is [Noop]. *)

val set_clock : (unit -> int) -> unit
(** Install the timestamp source (simulated microseconds).  The
    default clock returns [0]. *)

val current_clock : unit -> unit -> int
(** The installed timestamp source — save it before running a nested
    simulation (which installs its own clock) and re-install it after,
    so an outer run's timeline survives inner headless replays (the
    triage minimizer does this). *)

val now_us : unit -> int

(** {1 Spans} *)

type span
(** Handle passed to a {!with_span} body; lets it attach result
    attributes that are emitted with the closing event.  A no-op
    handle when telemetry is disabled. *)

val add_attr : span -> (string * Json.t) list -> unit

val with_span :
  ?attrs:(string * Json.t) list -> string -> (span -> 'a) -> 'a
(** [with_span name f] opens a span (parent = innermost span open on
    this domain), runs [f], closes the span — also on exception, with
    an [error] attribute.  When disabled, [f] runs with no allocation
    beyond its closure. *)

val span_path : unit -> int list
(** Ids of the spans currently open on this domain, root first. *)

val with_path : int list -> (unit -> 'a) -> 'a
(** Run [f] under the given span path — the bridge for pool workers:
    capture [span_path ()] before submitting a task, wrap the task
    body with [with_path], and spans or faults recorded inside keep
    their causal chain even though they execute on another domain. *)

(** {1 Events} *)

val run_header : ?attrs:(string * Json.t) list -> unit -> unit
(** Emit the artifact's first line: schema id, caller attributes, and
    a [wall_unix] timestamp (the only wall-clock value in the file). *)

val fault :
  ?t_us:int ->
  fault_class:string ->
  property:string ->
  node:int ->
  detail:string ->
  input:string option ->
  unit ->
  unit
(** Emit a fault record carrying the current span path, linking the
    detection to the round / cut / exploration / replay that produced
    it.  [t_us] defaults to the clock (pass the fault's own detection
    time when it differs). *)

val trace_event : t_us:int -> node:int -> kind:string -> detail:string -> unit
(** Simulator trace record ([Netsim.Trace] routes through this so sim
    events and spans land in one timeline). *)

val sys_event :
  ?t_us:int -> kind:string -> nodes:int list -> detail:string -> unit -> unit
(** Infrastructure state-change record: churn applications
    ([churn.node-down] etc.) and supervisor decisions ([quarantine] /
    [unquarantine]).  First-class so the cascade stitcher sees them
    without reverse-engineering trace details.  [t_us] defaults to the
    clock. *)

val metrics_snapshot : unit -> unit
(** Emit one [metric] event per registered metric — call once at end
    of run before closing the sink. *)

(** {1 Exporter conveniences} *)

val with_jsonl :
  ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_jsonl path f]: open [path], install a JSONL sink, emit the
    run header, run [f], then append a metrics snapshot, restore the
    previous sink and close the file (also on exception). *)

val report : Format.formatter -> unit -> unit
(** Human-readable end-of-run report over the metrics registry. *)
