type t = {
  h_name : string;
  le : float array;  (* inclusive upper bounds, strictly increasing *)
  counts : int array;  (* length le + 1; last slot is overflow *)
  mutable n : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
  mutable rev_samples : float list;  (* newest first *)
  lock : Mutex.t;
}

let default_buckets =
  [| 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1e6; 1e7; 1e8; 1e9 |]

let create ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Histogram.create: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && not (buckets.(i - 1) < b) then
        invalid_arg "Histogram.create: buckets must be strictly increasing")
    buckets;
  { h_name = name;
    le = Array.copy buckets;
    counts = Array.make (Array.length buckets + 1) 0;
    n = 0;
    total = 0.;
    lo = infinity;
    hi = neg_infinity;
    rev_samples = [];
    lock = Mutex.create () }

let name t = t.h_name

let bucket_index le v =
  (* First bucket whose upper bound admits [v]; length le = overflow. *)
  let n = Array.length le in
  let rec go i = if i >= n then n else if v <= le.(i) then i else go (i + 1) in
  go 0

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let observe t v =
  locked t (fun () ->
      t.counts.(bucket_index t.le v) <- t.counts.(bucket_index t.le v) + 1;
      t.n <- t.n + 1;
      t.total <- t.total +. v;
      if v < t.lo then t.lo <- v;
      if v > t.hi then t.hi <- v;
      t.rev_samples <- v :: t.rev_samples)

let count t = locked t (fun () -> t.n)
let sum t = locked t (fun () -> t.total)

let mean t =
  locked t (fun () -> if t.n = 0 then nan else t.total /. float_of_int t.n)

let min_value t = locked t (fun () -> if t.n = 0 then nan else t.lo)
let max_value t = locked t (fun () -> if t.n = 0 then nan else t.hi)

(* Nearest-rank on a sorted array.  The historical formula
   [ceil (p * n)] yields rank 0 at [p = 0.] — an out-of-range index
   that the old code papered over with clamping; [max 1] makes the
   edge explicit: p = 0 is the minimum, p = 1 the maximum. *)
let percentile_of_sorted a p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg "Histogram.percentile: p must be within [0, 1]";
  let n = Array.length a in
  if n = 0 then nan
  else
    let rank = max 1 (min n (int_of_float (ceil (p *. float_of_int n)))) in
    a.(rank - 1)

let percentile t p =
  (* Validate [p] even when empty so bad callers fail deterministically. *)
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg "Histogram.percentile: p must be within [0, 1]";
  let samples = locked t (fun () -> t.rev_samples) in
  let a = Array.of_list samples in
  Array.sort Float.compare a;
  percentile_of_sorted a p

let buckets t =
  locked t (fun () ->
      let bounded =
        Array.to_list (Array.mapi (fun i le -> (le, t.counts.(i))) t.le)
      in
      bounded @ [ (infinity, t.counts.(Array.length t.le)) ])

let samples t = locked t (fun () -> List.rev t.rev_samples)

let clear t =
  locked t (fun () ->
      Array.fill t.counts 0 (Array.length t.counts) 0;
      t.n <- 0;
      t.total <- 0.;
      t.lo <- infinity;
      t.hi <- neg_infinity;
      t.rev_samples <- [])

let pp ppf t =
  let n = count t in
  if n = 0 then Format.fprintf ppf "%s: empty" t.h_name
  else
    Format.fprintf ppf "%s: n=%d mean=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f"
      t.h_name n (mean t) (min_value t) (percentile t 0.5) (percentile t 0.99)
      (max_value t)
