type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : int Atomic.t }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register name make use =
  Mutex.lock registry_lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add registry name m;
        m
  in
  Mutex.unlock registry_lock;
  match use m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as another kind" name)

let counter name =
  register name
    (fun () -> Counter { c_name = name; c = Atomic.make 0 })
    (function Counter c -> Some c | Gauge _ | Hist _ -> None)

let incr c = Atomic.incr c.c
let add c n = ignore (Atomic.fetch_and_add c.c n)
let value c = Atomic.get c.c
let reset c = Atomic.set c.c 0

let gauge name =
  register name
    (fun () -> Gauge { g_name = name; g = Atomic.make 0 })
    (function Gauge g -> Some g | Counter _ | Hist _ -> None)

let set g n = Atomic.set g.g n
let gauge_value g = Atomic.get g.g

let histogram ?buckets name =
  register name
    (fun () -> Hist (Histogram.create ?buckets name))
    (function Hist h -> Some h | Counter _ | Gauge _ -> None)

let entries () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let reset_all () =
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c -> reset c
      | Gauge g -> set g 0
      | Hist h -> Histogram.clear h)
    (entries ())

let float_or_null f = if Float.is_finite f then Json.Float f else Json.Null

let hist_json h =
  let n = Histogram.count h in
  let stat f = if n = 0 then Json.Null else float_or_null (f h) in
  Json.Obj
    [ ("kind", Json.String "histogram");
      ("count", Json.Int n);
      ("sum", float_or_null (Histogram.sum h));
      ("min", stat Histogram.min_value);
      ("max", stat Histogram.max_value);
      ("p50", stat (fun h -> Histogram.percentile h 0.5));
      ("p99", stat (fun h -> Histogram.percentile h 0.99));
      ("buckets",
       Json.List
         (List.map
            (fun (le, c) ->
              Json.Obj
                [ ("le", if Float.is_finite le then Json.Float le else Json.Null);
                  ("n", Json.Int c) ])
            (Histogram.buckets h))) ]

let snapshot () =
  List.map
    (fun (name, m) ->
      let v =
        match m with
        | Counter c ->
            Json.Obj
              [ ("kind", Json.String "counter"); ("value", Json.Int (value c)) ]
        | Gauge g ->
            Json.Obj
              [ ("kind", Json.String "gauge");
                ("value", Json.Int (gauge_value g)) ]
        | Hist h -> hist_json h
      in
      (name, v))
    (entries ())

let filtered ~prefix () =
  List.filter (fun (name, _) -> String.starts_with ~prefix name) (snapshot ())

let pp_report ppf () =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c ->
          if value c <> 0 then Format.fprintf ppf "%s = %d@ " name (value c)
      | Gauge g ->
          if gauge_value g <> 0 then
            Format.fprintf ppf "%s = %d@ " name (gauge_value g)
      | Hist h -> if Histogram.count h > 0 then Format.fprintf ppf "%a@ " Histogram.pp h)
    (entries ())
