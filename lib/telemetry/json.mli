(** Minimal JSON values — encoder and decoder for the telemetry JSONL
    artifacts.

    Hand-rolled on purpose: the schema is small, the container must not
    grow a dependency for it, and the decoder lets tests and the CI
    smoke check round-trip every line we emit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Non-finite floats encode as [null]
    (JSON has no representation for them); integral floats keep a
    trailing [.0] so they decode back as [Float]. *)

val of_string : string -> (t, string) result
(** Parse exactly one JSON value; surrounding whitespace is allowed,
    trailing garbage is an error.  Numbers without [.], [e] or [E]
    decode as [Int]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors or a missing
    field. *)

val equal : t -> t -> bool
(** Structural equality; [Obj] fields compare order-insensitively. *)
