(** Validation of [dice-telemetry/1] JSONL artifacts.

    Checks, line by line:
    - every line parses as a JSON object and decodes to a known event;
    - the first line is a [run] header carrying the expected schema id;
    - [seq] is strictly increasing (file order = emission order);
    - span ids are unique, every [span_end] matches an open span, every
      [parent] and every fault [span_path] entry names a span already
      started, and no span is left open at end of file.

    Used by the [telemetry_check] executable (CI smoke) and the test
    suite. *)

val version : string
(** ["dice-telemetry/1"]. *)

type stats = {
  v_lines : int;
  v_spans : int;
  v_faults : int;
  v_metrics : int;
  v_traces : int;
  v_sys : int;
}

val validate_lines : string list -> (stats, string list) result
(** Blank lines are ignored.  On failure, one message per offending
    line (validation keeps going to report everything at once). *)

val validate_file : string -> (stats, string list) result
(** Streams via {!Sink.fold_file}: a large artifact validates without
    loading it whole, and every malformed record is reported with its
    line number. *)

val pp_stats : Format.formatter -> stats -> unit
