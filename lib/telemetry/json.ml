type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string b "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | String s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal l v =
    let len = String.length l in
    if !pos + len <= n && String.sub s !pos len = l then begin
      pos := !pos + len;
      v
    end
    else fail "bad literal"
  in
  let add_utf8 b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents b
        | '\\' ->
            incr pos;
            if !pos >= n then fail "dangling escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'; incr pos
            | '\\' -> Buffer.add_char b '\\'; incr pos
            | '/' -> Buffer.add_char b '/'; incr pos
            | 'n' -> Buffer.add_char b '\n'; incr pos
            | 't' -> Buffer.add_char b '\t'; incr pos
            | 'r' -> Buffer.add_char b '\r'; incr pos
            | 'b' -> Buffer.add_char b '\b'; incr pos
            | 'f' -> Buffer.add_char b '\012'; incr pos
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | Some code -> add_utf8 b code
                | None -> fail "bad \\u escape");
                pos := !pos + 5
            | _ -> fail "unknown escape");
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | String x, String y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      let sort = List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) in
      let xs = sort xs and ys = sort ys in
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false
