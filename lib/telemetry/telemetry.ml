module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Sink = Sink
module Schema = Schema

let schema_version = Schema.version

(* The sink and the enabled flag are separate atomics so the hot-path
   check is one load of an immediate bool, not a variant match. *)
let sink_ref = Atomic.make Sink.noop
let enabled_flag = Atomic.make false

let set_sink s =
  Atomic.set sink_ref s;
  Atomic.set enabled_flag (not (Sink.is_noop s))

let sink () = Atomic.get sink_ref
let enabled () = Atomic.get enabled_flag

let clock : (unit -> int) Atomic.t = Atomic.make (fun () -> 0)
let set_clock f = Atomic.set clock f
let current_clock () = Atomic.get clock
let now_us () = (Atomic.get clock) ()

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let next_span_id = Atomic.make 1

(* Innermost-first stack of open span ids, per domain. *)
let stack_key : int list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let span_path () = List.rev (Domain.DLS.get stack_key)

let with_path path f =
  if not (enabled ()) then f ()
  else begin
    let saved = Domain.DLS.get stack_key in
    Domain.DLS.set stack_key (List.rev path);
    match f () with
    | v ->
        Domain.DLS.set stack_key saved;
        v
    | exception e ->
        Domain.DLS.set stack_key saved;
        raise e
  end

type span = No_span | Span of { id : int; mutable end_attrs : (string * Json.t) list }

let add_attr sp attrs =
  match sp with
  | No_span -> ()
  | Span s -> s.end_attrs <- s.end_attrs @ attrs

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f No_span
  else begin
    let id = Atomic.fetch_and_add next_span_id 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match stack with [] -> None | p :: _ -> Some p in
    Sink.emit (sink ()) (Sink.Span_start { id; parent; name; t_us = now_us (); attrs });
    Domain.DLS.set stack_key (id :: stack);
    let sp = Span { id; end_attrs = [] } in
    let finish extra =
      Domain.DLS.set stack_key stack;
      let recorded = match sp with Span s -> s.end_attrs | No_span -> [] in
      Sink.emit (sink ())
        (Sink.Span_end { id; t_us = now_us (); attrs = recorded @ extra })
    in
    match f sp with
    | v ->
        finish [];
        v
    | exception e ->
        finish [ ("error", Json.String (Printexc.to_string e)) ];
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let run_header ?(attrs = []) () =
  if enabled () then
    Sink.emit (sink ())
      (Sink.Run
         { schema = schema_version;
           attrs = attrs @ [ ("wall_unix", Json.Float (Unix.gettimeofday ())) ] })

let fault ?t_us ~fault_class ~property ~node ~detail ~input () =
  if enabled () then
    Sink.emit (sink ())
      (Sink.Fault
         { t_us = (match t_us with Some t -> t | None -> now_us ());
           fault_class;
           property;
           node;
           detail;
           input;
           span_path = span_path () })

let trace_event ~t_us ~node ~kind ~detail =
  if enabled () then Sink.emit (sink ()) (Sink.Trace { t_us; node; kind; detail })

let sys_event ?t_us ~kind ~nodes ~detail () =
  if enabled () then
    Sink.emit (sink ())
      (Sink.Sys
         { t_us = (match t_us with Some t -> t | None -> now_us ());
           kind;
           nodes;
           detail })

let metrics_snapshot () =
  if enabled () then begin
    let s = sink () in
    List.iter
      (fun (name, value) ->
        Sink.emit s (Sink.Metric { t_us = now_us (); name; value }))
      (Metrics.snapshot ())
  end

(* ------------------------------------------------------------------ *)
(* Exporter conveniences                                               *)
(* ------------------------------------------------------------------ *)

let with_jsonl ?attrs path f =
  let oc = open_out path in
  let previous = sink () in
  set_sink (Sink.jsonl oc);
  run_header ?attrs ();
  let finish () =
    metrics_snapshot ();
    set_sink previous;
    close_out oc
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let report ppf () =
  Format.fprintf ppf "@[<v>telemetry report@ ";
  Metrics.pp_report ppf ();
  Format.fprintf ppf "@]"
