(** Fixed-bucket histograms with exact-sample quantiles.

    A histogram accumulates float observations into fixed buckets
    (inclusive upper bounds, plus an implicit overflow bucket) while
    also retaining the raw samples, so reports can show both a stable
    bucket shape and exact nearest-rank percentiles.  All operations
    are domain-safe: a single mutex guards each histogram, and pool
    workers may observe concurrently.

    This is {e the} quantile implementation for the repository —
    [Netsim.Stats] delegates its distribution queries here rather than
    keeping a second (subtly different) nearest-rank formula alive. *)

type t

val default_buckets : float array
(** Decades from [1.0] to [1e9] — a sensible default for microsecond
    durations and event counts. *)

val create : ?buckets:float array -> string -> t
(** [create name] makes an empty histogram.  [buckets] must be strictly
    increasing (checked); values above the last bound land in the
    overflow bucket.
    @raise Invalid_argument if [buckets] is empty or not increasing. *)

val name : t -> string
val observe : t -> float -> unit
val count : t -> int
val sum : t -> float

val mean : t -> float
(** [nan] when no sample was recorded — as are {!min_value},
    {!max_value} and {!percentile}.  Callers must test with
    [Float.is_nan], never with [=]. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] is the nearest-rank percentile of the recorded
    samples for [p] in [\[0, 1\]]: rank [max 1 (ceil (p * n))], so
    [p = 0.] is exactly the minimum and [p = 1.] exactly the maximum
    (no off-by-one at either edge).  [nan] on an empty histogram.
    @raise Invalid_argument if [p] is outside [\[0, 1\]] or NaN. *)

val percentile_of_sorted : float array -> float -> float
(** The underlying nearest-rank formula on an already-sorted array;
    exposed so other sample stores (e.g. [Netsim.Stats]) share one
    implementation.  Same edge behaviour as {!percentile}. *)

val buckets : t -> (float * int) list
(** [(upper_bound, count)] per bucket in increasing bound order; the
    final entry is [(infinity, overflow_count)].  A value [v] is
    counted in the first bucket with [v <= upper_bound]. *)

val samples : t -> float list
(** Recorded samples, oldest first. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
