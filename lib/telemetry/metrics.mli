(** Global named metrics registry — typed counters, gauges and
    histograms.

    Metrics are process-global and always on: registering and bumping
    them is independent of whether a telemetry sink is installed (a
    counter increment is one [Atomic] op).  Subsystems declare their
    metrics once at module initialisation and bump them from any
    domain; exporters and reports read the registry at the end of a
    run.

    Names are dot-separated ([subsystem.metric], e.g.
    [solver.cache_hits]).  Re-registering a name returns the existing
    metric; registering it as a different kind raises. *)

type counter
type gauge

val counter : string -> counter
(** Find-or-register. @raise Invalid_argument if [name] is registered
    as a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset : counter -> unit

val gauge : string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : ?buckets:float array -> string -> Histogram.t
(** Find-or-register; [buckets] only applies on first registration. *)

val reset_all : unit -> unit
(** Zero every counter and gauge and clear every histogram; the
    registry keeps its entries.  For tests and benchmark sections that
    need isolated accounting. *)

val snapshot : unit -> (string * Json.t) list
(** One [(name, value)] pair per registered metric, sorted by name.
    Counters and gauges render as
    [{"kind": ..., "value": n}]; histograms as
    [{"kind": "histogram", "count": n, "sum": s, "min": .., "max": ..,
    "p50": .., "p99": .., "buckets": [{"le": b, "n": c}, ...]}] with
    [null] for the undefined fields of an empty histogram. *)

val filtered : prefix:string -> unit -> (string * Json.t) list
(** {!snapshot} restricted to metric names starting with [prefix]
    (e.g. [~prefix:"confuzz.cov."] for the clause-coverage bitmap). *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable dump of the registry, one metric per line, sorted;
    empty histograms and zero counters are skipped. *)
