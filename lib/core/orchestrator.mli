(** Continuous exploration alongside the live system.

    Round-robin over explorer nodes: each round takes a snapshot,
    explores it in isolation, then lets the live system run for the
    configured interval before the next node starts.  This is the
    "operates alongside the deployed system but in isolation from it"
    loop of the paper. *)

type round = {
  rd_index : int;
  rd_started_at : Netsim.Time.t;
  rd_exploration : Explorer.exploration;
}

type summary = {
  rounds : round list;
  faults : Fault.t list;  (** deduplicated across rounds *)
  first_detection : (Fault.fault_class * Netsim.Time.t * int) list;
      (** per detected class: simulated detection time and rounds used *)
  total_inputs : int;
  total_shadow_runs : int;
  total_wall_seconds : float;
}

val run :
  ?params:Explorer.params ->
  ?pool:Parallel.Pool.t ->
  ?interval:Netsim.Time.span ->
  ?nodes:int list ->
  build:Topology.Build.t ->
  gt:Checks.ground_truth ->
  rounds:int ->
  unit ->
  summary
(** [nodes] defaults to every node of the deployment; [interval]
    (default 5 s simulated) separates successive snapshots.  [pool],
    when given, parallelizes each round's shadow replays (and, for
    [peers_per_node > 1], the per-session explorations) over the
    caller's domain pool; the default path stays sequential and
    deterministic. *)

val run_until_detection :
  ?params:Explorer.params ->
  ?pool:Parallel.Pool.t ->
  ?interval:Netsim.Time.span ->
  ?nodes:int list ->
  ?max_rounds:int ->
  build:Topology.Build.t ->
  gt:Checks.ground_truth ->
  expect:Fault.fault_class ->
  unit ->
  summary * round option
(** Stop at the first round whose exploration reports a fault of class
    [expect]; [None] if [max_rounds] (default: 2 passes over the node
    list) were exhausted. *)

val pp_summary : Format.formatter -> summary -> unit
