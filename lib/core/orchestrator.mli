(** Continuous exploration alongside the live system, under
    supervision.

    Round-robin over explorer nodes: each round takes a snapshot,
    explores it in isolation, then lets the live system run for the
    configured interval before the next node starts.  This is the
    "operates alongside the deployed system but in isolation from it"
    loop of the paper.

    {b Supervision.} On a churning deployment a round can go wrong —
    the cut aborts into a partial snapshot, the exploration takes too
    long, or it raises.  Each round therefore runs under exception
    containment and produces a {!round_outcome} instead of
    propagating: [Ok] for a clean round, [Degraded] when the round
    produced results from a partial cut or blew its wall budget, and
    [Failed] when the exploration raised (the live system still
    advances by [interval] so later rounds see fresh state).  A node
    whose rounds fail {!supervisor.max_strikes} times consecutively is
    quarantined — skipped by the scheduler — for
    [backoff_rounds * 2^(previous quarantines)] rounds. *)

type exn_info = { ei_exn : string; ei_backtrace : string }

type round_outcome =
  | Ok of Explorer.exploration
  | Degraded of Explorer.exploration * string
      (** results were produced but coverage or budget suffered; the
          string says why *)
  | Failed of exn_info

type round = {
  rd_index : int;
  rd_node : int;  (** the explorer node this round ran on *)
  rd_started_at : Netsim.Time.t;
  rd_outcome : round_outcome;
}

val round_exploration : round -> Explorer.exploration option
(** [None] exactly for [Failed] rounds. *)

val round_exploration_exn : round -> Explorer.exploration
(** @raise Invalid_argument on a [Failed] round — for callers that know
    the round produced results (e.g. the detection round returned by
    {!run_until_detection}). *)

type quarantine_event = {
  q_node : int;
  q_round : int;  (** round index whose failure triggered it *)
  q_strikes : int;
  q_until_round : int;  (** first round index the node is eligible again *)
}

type supervisor = {
  max_strikes : int;  (** consecutive failures before quarantine *)
  backoff_rounds : int;  (** base quarantine length; doubles each time *)
  round_wall_budget : float option;
      (** host seconds per round; an over-budget round is flagged
          [Degraded] (domains cannot be killed, so enforcement is by
          observation, not preemption) *)
}

val default_supervisor : supervisor
(** 3 strikes, 2-round base backoff, no wall budget. *)

type summary = {
  rounds : round list;
  faults : Fault.t list;  (** deduplicated across rounds *)
  signatures : (Signature.t * int) list;
      (** every distinct stable fingerprint detected during the run
          (derived with the deployment's graph, so roles are
          canonicalized), with its hit count across rounds; in
          first-detection order *)
  first_detection : (Fault.fault_class * Netsim.Time.t * int) list;
      (** per detected class: the {e earliest} simulated detection time
          across all signatures of that class, and the (1-based) round
          that achieved it; sorted by detection time *)
  total_inputs : int;
  total_shadow_runs : int;
  total_wall_seconds : float;
  ok_rounds : int;
  degraded_rounds : int;
  failed_rounds : int;
  quarantines : quarantine_event list;  (** in trigger order *)
  leaked_snapshots : int;
      (** cuts still active when the run ended — 0 unless a cut without
          a deadline stalled *)
}

val run :
  ?params:Explorer.params ->
  ?pool:Parallel.Pool.t ->
  ?interval:Netsim.Time.span ->
  ?nodes:int list ->
  ?supervisor:supervisor ->
  ?on_fault:(Fault.t -> unit) ->
  ?probe:(unit -> Fault.t list) ->
  ?on_cascade:(Fault.t -> unit) ->
  build:Topology.Build.t ->
  gt:Checks.ground_truth ->
  rounds:int ->
  unit ->
  summary
(** [nodes] defaults to every node of the deployment; [interval]
    (default 5 s simulated) separates successive snapshots.  [pool],
    when given, parallelizes each round's shadow replays (and, for
    [peers_per_node > 1], the per-session explorations) over the
    caller's domain pool; the default path stays sequential and
    deterministic.  [on_fault] fires once per newly-seen fault root as
    soon as the detecting round completes (live crash faults fire at
    end of run) — the hook the triage layer uses to auto-minimize and
    file detections without the core depending on it.  [probe] is
    polled after every round; any faults it returns join the summary's
    fault list and signatures and flow through the notification hooks
    — the cascade monitor ([Cascade.Online]) plugs in here, analysing
    its ring of recent telemetry without the core depending on the
    analysis layer.  [on_cascade] fires once per newly-seen
    {!Fault.Cascade} root (from probe or exploration).  Rounds never
    propagate exploration exceptions — see the supervision notes
    above. *)

val run_until_detection :
  ?params:Explorer.params ->
  ?pool:Parallel.Pool.t ->
  ?interval:Netsim.Time.span ->
  ?nodes:int list ->
  ?supervisor:supervisor ->
  ?max_rounds:int ->
  ?on_fault:(Fault.t -> unit) ->
  ?probe:(unit -> Fault.t list) ->
  ?on_cascade:(Fault.t -> unit) ->
  build:Topology.Build.t ->
  gt:Checks.ground_truth ->
  expect:Fault.fault_class ->
  unit ->
  summary * round option
(** Stop at the first round whose exploration (or [probe]) reports a
    fault of class [expect]; [None] if [max_rounds] (default: 2 passes
    over the node list) were exhausted. *)

val pp_outcome : Format.formatter -> round_outcome -> unit
val pp_summary : Format.formatter -> summary -> unit
