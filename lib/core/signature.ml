type t = {
  sg_class : Fault.fault_class;
  sg_property : string;
  sg_role : string;
  sg_node : int;
  sg_detail : string;
}

(* Field values must stay free of the '|' separator and of newlines so
   [to_string] is unambiguous and one signature is one line. *)
let sanitize s =
  String.map
    (function '|' -> '/' | '\n' | '\r' | '\t' -> ' ' | c -> c)
    s

let wire_role = "wire"

let role_of_graph graph node =
  match graph with
  | None -> "-"
  | Some g -> (
      if node < 0 then wire_role
      else
        try Topology.Graph.tier_to_string (Topology.Graph.tier_of g node)
        with Invalid_argument _ -> "-")

let make ?graph ?role ~node ~property cls detail =
  { sg_class = cls;
    sg_property = sanitize property;
    sg_role =
      (match role with Some r -> sanitize r | None -> role_of_graph graph node);
    sg_node = node;
    sg_detail = Fault.normalize_detail detail }

let of_fault ?graph ?role (f : Fault.t) =
  make ?graph ?role ~node:f.Fault.f_node ~property:f.Fault.f_property
    f.Fault.f_class f.Fault.f_detail

let to_string t =
  Printf.sprintf "%s|%s|%s|%d|%s"
    (Fault.class_to_string t.sg_class)
    t.sg_property t.sg_role t.sg_node t.sg_detail

let of_string s =
  match String.split_on_char '|' s with
  | cls :: property :: role :: node :: detail -> (
      match (Fault.class_of_string cls, int_of_string_opt node) with
      | Some sg_class, Some sg_node ->
          Ok
            { sg_class; sg_property = property; sg_role = role; sg_node;
              (* Lenient: a detail that somehow grew a '|' still parses. *)
              sg_detail = String.concat "/" detail }
      | None, _ -> Error (Printf.sprintf "Signature.of_string: bad class %S" cls)
      | _, None -> Error (Printf.sprintf "Signature.of_string: bad node %S" node))
  | _ -> Error "Signature.of_string: expected class|property|role|node|detail"

let equal a b = String.equal (to_string a) (to_string b)
let compare a b = String.compare (to_string a) (to_string b)

let root t =
  Printf.sprintf "%s|%s|%d"
    (Fault.class_to_string t.sg_class)
    t.sg_property t.sg_node

let matches_fault t (f : Fault.t) = String.equal (root t) (Fault.root f)

let pp ppf t = Format.pp_print_string ppf (to_string t)
