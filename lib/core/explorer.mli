(** Per-node exploration: the core DiCE loop of Figure 2.

    1. trigger a consistent snapshot from the explorer node;
    2. derive inputs by concolic execution of the node's instrumented
       handler (plus grammar-based fuzzing);
    3. subject an isolated clone of the snapshot to each input and
       observe system-wide consequences through the property checkers;
    4. aggregate remote verdicts only as privacy-preserving digests.

    Step 3 is embarrassingly parallel — each clone owns its engine,
    network and speakers — and fans out across a [Parallel.Pool] when
    [domains > 1] (or when a pool is passed in).  Results are merged in
    input order, so the reported faults, digests and dedup are
    identical to the sequential run. *)

type params = {
  limits : Concolic.Engine.limits;
  fuzz_extra : int;  (** grammar-fuzzed inputs on top of concolic ones *)
  mangle_extra : int;
      (** byte-level mangled wire inputs on top of everything else:
          derived inputs are concretized and corrupted with the
          {!Netsim.Mangler} corpus, exercising the codec's error paths
          and surfacing decode crashes; 0 (the default) adds none *)
  mangle_seed : int;  (** seed for the mangled-input streams *)
  peers_per_node : int;  (** explore the first k sessions of the node *)
  shadow_budget : int;  (** event budget per shadow run *)
  check_convergence : bool;
  domains : int;
      (** parallelism for shadow replay; 1 (the default) is strictly
          sequential and allocates no pool *)
  snapshot_deadline : Netsim.Time.span option;
      (** abort the cut into a [Partial] after this much simulated time;
          [None] (the default) waits the full 120 s horizon and fails if
          the cut never closes *)
}

val default_params : params

type exploration = {
  x_node : int;
  x_snapshot : Snapshot.Cut.snapshot;
  x_partial : bool;  (** the cut aborted at its deadline *)
  x_stalled : (int * int) list;
      (** channels whose marker never arrived (empty when complete) *)
  x_faults : Fault.t list;  (** deduplicated *)
  x_digests : Privacy.digest list;  (** remote check results *)
  x_inputs : int;  (** concolic executions of the instrumented handler *)
  x_shadow_runs : int;  (** clones subjected to inputs *)
  x_mangled : int;  (** of which mangled wire-byte inputs *)
  x_distinct_paths : int;
  x_crashes : int;
  x_snapshot_span : Netsim.Time.span;  (** sim time to collect the cut *)
  x_wall_seconds : float;  (** host time spent exploring (elapsed) *)
  x_work_seconds : float;
      (** summed task time across derivation and replays; work/wall is
          the observed parallel speedup *)
  x_domains : int;  (** pool size the exploration ran with *)
}

val take_snapshot :
  ?deadline:Netsim.Time.span ->
  build:Topology.Build.t ->
  cut:Snapshot.Cut.t ->
  node:int ->
  unit ->
  Snapshot.Cut.result
(** Initiate from [node] and drive the live engine until the cut
    settles — [Complete], or [Partial] once [deadline] elapses.
    @raise Failure if the cut is still open after 120 s of simulated
    time (or the engine goes idle with it open) and no deadline
    intervened. *)

val explore_node :
  ?params:params ->
  ?pool:Parallel.Pool.t ->
  build:Topology.Build.t ->
  cut:Snapshot.Cut.t ->
  gt:Checks.ground_truth ->
  node:int ->
  unit ->
  exploration
(** [pool] overrides [params.domains]: when given, replays are fanned
    out over it (and the caller is responsible for its lifetime); when
    absent and [params.domains > 1], a pool is created for this call. *)

val replay_direct :
  ?params:params ->
  build:Topology.Build.t ->
  cut:Snapshot.Cut.t ->
  gt:Checks.ground_truth ->
  node:int ->
  ?peer_index:int ->
  ?input:Concolic.Ctx.input ->
  unit ->
  Fault.t list
(** Headless single-shot replay for delta-minimized repros: take a
    snapshot from [node], run the baseline checkers against the
    unperturbed clone, and — when [input] is given — subject one fresh
    clone to that single concolic input over session [peer_index]
    (default 0, out-of-range yields no input faults).  Returns the
    deduplicated faults.  No concolic derivation, no fuzzing, no
    parallel fan-out: the cheap acceptance test the minimizer runs
    after every shrink step. *)

val coverage : exploration -> int * int
(** [(nodes checkpointed, channels in the cut)] — how much of the
    deployment the snapshot actually covered. *)

val pp_exploration : Format.formatter -> exploration -> unit
