type quarantine = {
  qu_slot : int;
  qu_step : int;
  qu_strikes : int;
  qu_until : int;
}

type health = {
  mutable h_strikes : int;
  mutable h_until : int;  (* quarantined while step < h_until *)
  mutable h_quarantines : int;  (* drives the exponential backoff *)
  mutable h_parked : bool;  (* currently quarantined (for the release event) *)
}

type t = {
  t_health : health array;
  t_max_strikes : int;
  t_backoff : int;
  mutable t_events : quarantine list;  (* newest first *)
}

let create ?(max_strikes = 3) ?(backoff = 2) n =
  { t_health =
      Array.init (max 0 n) (fun _ ->
          { h_strikes = 0; h_until = 0; h_quarantines = 0; h_parked = false });
    t_max_strikes = max 1 max_strikes;
    t_backoff = max 1 backoff;
    t_events = [] }

let slots t = Array.length t.t_health

let quarantined t ~slot ~step = t.t_health.(slot).h_until > step

let release_due t ~step =
  let released = ref [] in
  Array.iteri
    (fun idx h ->
      if h.h_parked && h.h_until <= step then begin
        h.h_parked <- false;
        released := idx :: !released
      end)
    t.t_health;
  List.rev !released

let record t ~slot ~step ~ok =
  let h = t.t_health.(slot) in
  if ok then begin
    h.h_strikes <- 0;
    None
  end
  else begin
    h.h_strikes <- h.h_strikes + 1;
    if h.h_strikes < t.t_max_strikes then None
    else begin
      let len = t.t_backoff * (1 lsl h.h_quarantines) in
      h.h_until <- step + 1 + len;
      h.h_quarantines <- h.h_quarantines + 1;
      h.h_strikes <- 0;
      h.h_parked <- true;
      let q =
        { qu_slot = slot; qu_step = step; qu_strikes = t.t_max_strikes;
          qu_until = h.h_until }
      in
      t.t_events <- q :: t.t_events;
      Some q
    end
  end

let quarantines t = List.rev t.t_events
