type round = {
  rd_index : int;
  rd_started_at : Netsim.Time.t;
  rd_exploration : Explorer.exploration;
}

type summary = {
  rounds : round list;
  faults : Fault.t list;
  first_detection : (Fault.fault_class * Netsim.Time.t * int) list;
  total_inputs : int;
  total_shadow_runs : int;
  total_wall_seconds : float;
}

let summarize rounds =
  let faults =
    Fault.dedupe
      (List.concat_map (fun r -> r.rd_exploration.Explorer.x_faults) rounds)
  in
  let first_detection =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc (f : Fault.t) ->
            if List.mem_assoc f.Fault.f_class acc then acc
            else (f.Fault.f_class, (f.Fault.f_detected_at, r.rd_index + 1)) :: acc)
          acc r.rd_exploration.Explorer.x_faults)
      [] rounds
    |> List.map (fun (c, (t, n)) -> (c, t, n))
  in
  { rounds;
    faults;
    first_detection;
    total_inputs =
      List.fold_left (fun a r -> a + r.rd_exploration.Explorer.x_inputs) 0 rounds;
    total_shadow_runs =
      List.fold_left (fun a r -> a + r.rd_exploration.Explorer.x_shadow_runs) 0 rounds;
    total_wall_seconds =
      List.fold_left (fun a r -> a +. r.rd_exploration.Explorer.x_wall_seconds) 0. rounds }

let make_cut build =
  Snapshot.Cut.create
    ~speakers:(fun id -> Topology.Build.speaker build id)
    build.Topology.Build.net

let one_round ~params ~pool ~build ~cut ~gt ~interval ~index node =
  let started_at = Netsim.Engine.now build.Topology.Build.engine in
  let exploration = Explorer.explore_node ?params ?pool ~build ~cut ~gt ~node () in
  (* Let the live system make progress before the next explorer. *)
  Topology.Build.run_for build interval;
  { rd_index = index; rd_started_at = started_at; rd_exploration = exploration }

let run ?params ?pool ?(interval = Netsim.Time.span_sec 5.) ?nodes ~build ~gt ~rounds () =
  let all_nodes =
    match nodes with
    | Some l -> l
    | None -> Topology.Graph.node_ids build.Topology.Build.graph
  in
  let cut = make_cut build in
  let n = List.length all_nodes in
  let result =
    List.init rounds (fun i ->
        one_round ~params ~pool ~build ~cut ~gt ~interval ~index:i
          (List.nth all_nodes (i mod n)))
  in
  summarize result

let run_until_detection ?params ?pool ?(interval = Netsim.Time.span_sec 5.) ?nodes
    ?max_rounds ~build ~gt ~expect () =
  let all_nodes =
    match nodes with
    | Some l -> l
    | None -> Topology.Graph.node_ids build.Topology.Build.graph
  in
  let cut = make_cut build in
  let n = List.length all_nodes in
  let max_rounds = Option.value max_rounds ~default:(2 * n) in
  let rec go i acc =
    if i >= max_rounds then (summarize (List.rev acc), None)
    else begin
      let round =
        one_round ~params ~pool ~build ~cut ~gt ~interval ~index:i
          (List.nth all_nodes (i mod n))
      in
      let hit =
        List.exists
          (fun (f : Fault.t) -> f.Fault.f_class = expect)
          round.rd_exploration.Explorer.x_faults
      in
      if hit then (summarize (List.rev (round :: acc)), Some round)
      else go (i + 1) (round :: acc)
    end
  in
  go 0 []

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>%d rounds, %d inputs, %d shadow runs, %.2fs wall@ "
    (List.length s.rounds) s.total_inputs s.total_shadow_runs s.total_wall_seconds;
  List.iter (fun f -> Format.fprintf ppf "%a@ " Fault.pp f) s.faults;
  Format.fprintf ppf "@]"
