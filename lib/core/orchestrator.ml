type exn_info = { ei_exn : string; ei_backtrace : string }

type round_outcome =
  | Ok of Explorer.exploration
  | Degraded of Explorer.exploration * string
  | Failed of exn_info

type round = {
  rd_index : int;
  rd_node : int;
  rd_started_at : Netsim.Time.t;
  rd_outcome : round_outcome;
}

let round_exploration r =
  match r.rd_outcome with
  | Ok x | Degraded (x, _) -> Some x
  | Failed _ -> None

let round_exploration_exn r =
  match round_exploration r with
  | Some x -> x
  | None -> invalid_arg "Orchestrator.round_exploration_exn: round Failed"

type quarantine_event = {
  q_node : int;
  q_round : int;  (** round index whose failure triggered it *)
  q_strikes : int;
  q_until_round : int;  (** first round index the node is eligible again *)
}

type supervisor = {
  max_strikes : int;
  backoff_rounds : int;
  round_wall_budget : float option;
}

let default_supervisor =
  { max_strikes = 3; backoff_rounds = 2; round_wall_budget = None }

type summary = {
  rounds : round list;
  faults : Fault.t list;
  signatures : (Signature.t * int) list;
  first_detection : (Fault.fault_class * Netsim.Time.t * int) list;
  total_inputs : int;
  total_shadow_runs : int;
  total_wall_seconds : float;
  ok_rounds : int;
  degraded_rounds : int;
  failed_rounds : int;
  quarantines : quarantine_event list;
  leaked_snapshots : int;
}

let summarize ?(quarantines = []) ?(leaked_snapshots = 0) ?(live_faults = []) ~graph
    rounds =
  let explorations = List.filter_map round_exploration rounds in
  let faults =
    Fault.dedupe
      (live_faults @ List.concat_map (fun x -> x.Explorer.x_faults) explorations)
  in
  (* A live fault (e.g. a router dying on mangled traffic) happens
     between explorations; attribute it to the round in progress at
     its detection time. *)
  let round_of_time at =
    let n =
      List.fold_left
        (fun n r ->
          if Netsim.Time.(r.rd_started_at <= at) then max n (r.rd_index + 1) else n)
        0 rounds
    in
    max 1 n
  in
  (* Signature-keyed detection aggregation: every report of every round
     collapses onto its stable fingerprint, carrying a hit count and
     the earliest detection (time, round).  [first_detection] is the
     per-class projection of this table. *)
  let by_sig : (string, Signature.t * int * Netsim.Time.t * int) Hashtbl.t =
    Hashtbl.create 32
  in
  let sig_order = ref [] in
  let consider ~round (f : Fault.t) =
    let sg = Signature.of_fault ~graph f in
    let key = Signature.to_string sg in
    match Hashtbl.find_opt by_sig key with
    | None ->
        Hashtbl.add by_sig key (sg, 1, f.Fault.f_detected_at, round);
        sig_order := key :: !sig_order
    | Some (sg, n, t, r) ->
        let t, r =
          if Netsim.Time.(f.Fault.f_detected_at < t) then
            (f.Fault.f_detected_at, round)
          else (t, r)
        in
        Hashtbl.replace by_sig key (sg, n + 1, t, r)
  in
  List.iter
    (fun r ->
      match round_exploration r with
      | None -> ()
      | Some x ->
          List.iter (consider ~round:(r.rd_index + 1)) x.Explorer.x_faults)
    rounds;
  List.iter
    (fun (f : Fault.t) ->
      consider ~round:(round_of_time f.Fault.f_detected_at) f)
    live_faults;
  let sig_entries =
    List.rev_map (fun key -> Hashtbl.find by_sig key) !sig_order
  in
  let signatures = List.map (fun (sg, n, _, _) -> (sg, n)) sig_entries in
  let first_detection =
    List.fold_left
      (fun acc (sg, _, t, r) ->
        let cls = sg.Signature.sg_class in
        match List.assoc_opt cls acc with
        | Some (t0, _) when Netsim.Time.(t0 <= t) -> acc
        | Some _ | None -> (cls, (t, r)) :: List.remove_assoc cls acc)
      [] sig_entries
    |> List.map (fun (c, (t, n)) -> (c, t, n))
    |> List.sort (fun (_, t1, _) (_, t2, _) -> Netsim.Time.compare t1 t2)
  in
  let count pred = List.length (List.filter pred rounds) in
  let sum f = List.fold_left (fun a x -> a + f x) 0 explorations in
  { rounds;
    faults;
    signatures;
    first_detection;
    total_inputs = sum (fun x -> x.Explorer.x_inputs);
    total_shadow_runs = sum (fun x -> x.Explorer.x_shadow_runs);
    total_wall_seconds =
      List.fold_left (fun a x -> a +. x.Explorer.x_wall_seconds) 0. explorations;
    ok_rounds = count (fun r -> match r.rd_outcome with Ok _ -> true | _ -> false);
    degraded_rounds =
      count (fun r -> match r.rd_outcome with Degraded _ -> true | _ -> false);
    failed_rounds =
      count (fun r -> match r.rd_outcome with Failed _ -> true | _ -> false);
    quarantines;
    leaked_snapshots }

let make_cut build =
  Snapshot.Cut.create
    ~speakers:(fun id -> Topology.Build.speaker build id)
    build.Topology.Build.net

(* A router that died on live traffic (e.g. mangled bytes) and was
   absorbed by the network's crash policy is a first-class
   programming-error detection, not an infrastructure hiccup. *)
let live_crash_faults build =
  List.map
    (fun (c : Netsim.Network.crash) ->
      Fault.make ~at:c.Netsim.Network.cr_at ~node:c.Netsim.Network.cr_node
        ~property:"node-crash" Fault.Programming_error
        (Printf.sprintf "handler died on message from node %d: %s"
           c.Netsim.Network.cr_src c.Netsim.Network.cr_exn))
    (Netsim.Network.crashes build.Topology.Build.net)

let m_rounds_ok = lazy (Telemetry.Metrics.counter "orchestrator.rounds_ok")
let m_rounds_degraded = lazy (Telemetry.Metrics.counter "orchestrator.rounds_degraded")
let m_rounds_failed = lazy (Telemetry.Metrics.counter "orchestrator.rounds_failed")
let m_quarantines = lazy (Telemetry.Metrics.counter "orchestrator.quarantines")
let m_leaked = lazy (Telemetry.Metrics.gauge "orchestrator.leaked_snapshots")

let outcome_label = function
  | Ok _ -> "ok"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"

let note_outcome outcome =
  Telemetry.Metrics.incr
    (Lazy.force
       (match outcome with
       | Ok _ -> m_rounds_ok
       | Degraded _ -> m_rounds_degraded
       | Failed _ -> m_rounds_failed))

(* Timestamps in the artifact come from simulated time: runs replay
   bit-identically for a given seed whatever the host. *)
let install_clock build =
  let eng = build.Topology.Build.engine in
  Telemetry.set_clock (fun () -> Netsim.Time.to_us (Netsim.Engine.now eng))

(* One supervised round: the exploration runs under exception
   containment, and the live system advances by [interval] afterwards
   whatever the outcome — a crashing explorer must not stall the
   deployment or the remaining rounds. *)
let one_round ~params ~pool ~supervisor ~build ~cut ~gt ~interval ~index node =
  Telemetry.with_span "round"
    ~attrs:[ ("index", Telemetry.Json.Int index);
             ("node", Telemetry.Json.Int node) ]
  @@ fun rsp ->
  let started_at = Netsim.Engine.now build.Topology.Build.engine in
  let outcome =
    match Explorer.explore_node ?params ?pool ~build ~cut ~gt ~node () with
    | x ->
        if x.Explorer.x_partial then
          Degraded
            ( x,
              Printf.sprintf "partial cut: %d channel(s) never closed"
                (List.length x.Explorer.x_stalled) )
        else (
          match supervisor.round_wall_budget with
          | Some budget when x.Explorer.x_wall_seconds > budget ->
              (* Domains cannot be killed, so the budget is enforced by
                 observation: the round still yields its results but is
                 flagged as over budget. *)
              Degraded
                ( x,
                  Printf.sprintf "wall budget exceeded: %.2fs > %.2fs"
                    x.Explorer.x_wall_seconds budget )
          | Some _ | None -> Ok x)
    | exception e ->
        Failed
          { ei_exn = Printexc.to_string e;
            ei_backtrace = Printexc.get_backtrace () }
  in
  note_outcome outcome;
  Telemetry.add_attr rsp
    [ ("outcome", Telemetry.Json.String (outcome_label outcome)) ];
  Topology.Build.run_for build interval;
  { rd_index = index; rd_node = node; rd_started_at = started_at;
    rd_outcome = outcome }

(* The strike/backoff policy itself lives in {!Supervise} (the campaign
   driver reuses it for scenario templates); the orchestrator keeps the
   node mapping and the telemetry side effects. *)
type sched = {
  s_nodes : int array;
  s_strikes : Supervise.t;
  mutable s_events : quarantine_event list;
}

let sched_make sup nodes =
  let s_nodes = Array.of_list nodes in
  { s_nodes;
    s_strikes =
      Supervise.create ~max_strikes:sup.max_strikes
        ~backoff:sup.backoff_rounds (Array.length s_nodes);
    s_events = [] }

(* Quarantine expirations become first-class telemetry records the
   moment they take effect — the cascade stitcher pairs them with the
   quarantine records to spot ping-pong without guessing at backoff
   arithmetic. *)
let sched_release s i =
  List.iter
    (fun idx ->
      Telemetry.sys_event ~kind:"unquarantine" ~nodes:[ s.s_nodes.(idx) ]
        ~detail:(Printf.sprintf "eligible again at round %d" (i + 1))
        ())
    (Supervise.release_due s.s_strikes ~step:i)

(* Round-robin with quarantine skipping: start at the scheduled slot and
   take the first healthy node; if everyone is quarantined, run the
   scheduled node anyway (the system must keep testing). *)
let sched_pick s i =
  let n = Array.length s.s_nodes in
  let rec probe k = if k >= n then i mod n
    else
      let idx = (i + k) mod n in
      if Supervise.quarantined s.s_strikes ~slot:idx ~step:i then probe (k + 1)
      else idx
  in
  probe 0

let sched_record s ~round_index ~slot outcome =
  let ok = match outcome with Ok _ | Degraded _ -> true | Failed _ -> false in
  match Supervise.record s.s_strikes ~slot ~step:round_index ~ok with
  | None -> ()
  | Some q ->
      Telemetry.Metrics.incr (Lazy.force m_quarantines);
      Telemetry.sys_event ~kind:"quarantine" ~nodes:[ s.s_nodes.(slot) ]
        ~detail:
          (Printf.sprintf "%d strikes at round %d, until round %d"
             q.Supervise.qu_strikes (round_index + 1) q.Supervise.qu_until)
        ();
      s.s_events <-
        { q_node = s.s_nodes.(slot); q_round = round_index;
          q_strikes = q.Supervise.qu_strikes;
          q_until_round = q.Supervise.qu_until }
        :: s.s_events

let node_list nodes build =
  match nodes with
  | Some l -> l
  | None -> Topology.Graph.node_ids build.Topology.Build.graph

(* The [?on_fault] hook fires once per newly-seen fault root, as soon
   as the round that detected it completes — this is where the triage
   layer plugs in auto-minimization and corpus filing without the core
   depending on it. *)
let make_notifier on_fault =
  match on_fault with
  | None -> fun _ -> ()
  | Some f ->
      let seen = Hashtbl.create 16 in
      fun faults ->
        List.iter
          (fun fault ->
            let k = Fault.root fault in
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.add seen k ();
              f fault
            end)
          faults

(* [?on_cascade] is the cascade analogue of [?on_fault]: it fires once
   per newly-seen {!Fault.Cascade} root, whether the cascade came from
   the per-round [?probe] or from an exploration.  The detector itself
   lives in [lib/cascade]; the orchestrator only provides the poll
   point, so the core does not depend on the analysis layer. *)
let make_cascade_notifier on_cascade =
  match on_cascade with
  | None -> fun _ -> ()
  | Some f ->
      let seen = Hashtbl.create 4 in
      fun faults ->
        List.iter
          (fun (fault : Fault.t) ->
            if fault.Fault.f_class = Fault.Cascade then begin
              let k = Fault.root fault in
              if not (Hashtbl.mem seen k) then begin
                Hashtbl.add seen k ();
                f fault
              end
            end)
          faults

let run ?params ?pool ?(interval = Netsim.Time.span_sec 5.) ?nodes
    ?(supervisor = default_supervisor) ?on_fault ?probe ?on_cascade ~build ~gt
    ~rounds () =
  install_clock build;
  let notify = make_notifier on_fault in
  let notify_cascade = make_cascade_notifier on_cascade in
  let probed = ref [] in
  let poll () =
    match probe with
    | None -> ()
    | Some p ->
        let pf = p () in
        probed := !probed @ pf;
        notify pf;
        notify_cascade pf
  in
  let sched = sched_make supervisor (node_list nodes build) in
  let cut = make_cut build in
  let result =
    List.init rounds (fun i ->
        sched_release sched i;
        let slot = sched_pick sched i in
        let r =
          one_round ~params ~pool ~supervisor ~build ~cut ~gt ~interval ~index:i
            sched.s_nodes.(slot)
        in
        sched_record sched ~round_index:i ~slot r.rd_outcome;
        (match round_exploration r with
        | Some x ->
            notify x.Explorer.x_faults;
            notify_cascade x.Explorer.x_faults
        | None -> ());
        poll ();
        r)
  in
  Telemetry.Metrics.set (Lazy.force m_leaked) (Snapshot.Cut.active cut);
  let live_faults = live_crash_faults build in
  notify live_faults;
  summarize ~quarantines:(List.rev sched.s_events)
    ~leaked_snapshots:(Snapshot.Cut.active cut)
    ~live_faults:(live_faults @ !probed) ~graph:build.Topology.Build.graph result

let run_until_detection ?params ?pool ?(interval = Netsim.Time.span_sec 5.) ?nodes
    ?(supervisor = default_supervisor) ?max_rounds ?on_fault ?probe ?on_cascade
    ~build ~gt ~expect () =
  install_clock build;
  let notify = make_notifier on_fault in
  let notify_cascade = make_cascade_notifier on_cascade in
  let probed = ref [] in
  let sched = sched_make supervisor (node_list nodes build) in
  let cut = make_cut build in
  let n = Array.length sched.s_nodes in
  let max_rounds = Option.value max_rounds ~default:(2 * n) in
  let finish acc =
    Telemetry.Metrics.set (Lazy.force m_leaked) (Snapshot.Cut.active cut);
    let live_faults = live_crash_faults build in
    notify live_faults;
    summarize ~quarantines:(List.rev sched.s_events)
      ~leaked_snapshots:(Snapshot.Cut.active cut)
      ~live_faults:(live_faults @ !probed) ~graph:build.Topology.Build.graph acc
  in
  let crashes_seen = ref (List.length (Netsim.Network.crashes build.Topology.Build.net)) in
  let rec go i acc =
    if i >= max_rounds then (finish (List.rev acc), None)
    else begin
      sched_release sched i;
      let slot = sched_pick sched i in
      let round =
        one_round ~params ~pool ~supervisor ~build ~cut ~gt ~interval ~index:i
          sched.s_nodes.(slot)
      in
      sched_record sched ~round_index:i ~slot round.rd_outcome;
      (match round_exploration round with
      | Some x ->
          notify x.Explorer.x_faults;
          notify_cascade x.Explorer.x_faults
      | None -> ());
      let round_probed =
        match probe with
        | None -> []
        | Some p ->
            let pf = p () in
            probed := !probed @ pf;
            notify pf;
            notify_cascade pf;
            pf
      in
      let hit =
        (match round_exploration round with
        | Some x ->
            List.exists
              (fun (f : Fault.t) -> f.Fault.f_class = expect)
              x.Explorer.x_faults
        | None -> false)
        || List.exists (fun (f : Fault.t) -> f.Fault.f_class = expect) round_probed
      in
      (* A live crash absorbed during this round also counts as a
         detection of the programming-error class. *)
      let hit_live =
        let n = List.length (Netsim.Network.crashes build.Topology.Build.net) in
        let grew = n > !crashes_seen in
        crashes_seen := n;
        grew && expect = Fault.Programming_error
      in
      if hit || hit_live then (finish (List.rev (round :: acc)), Some round)
      else go (i + 1) (round :: acc)
    end
  in
  go 0 []

let pp_outcome ppf = function
  | Ok _ -> Format.fprintf ppf "ok"
  | Degraded (_, why) -> Format.fprintf ppf "degraded (%s)" why
  | Failed e -> Format.fprintf ppf "FAILED: %s" e.ei_exn

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d rounds (%d ok, %d degraded, %d failed), %d inputs, %d shadow runs, %.2fs wall@ "
    (List.length s.rounds) s.ok_rounds s.degraded_rounds s.failed_rounds
    s.total_inputs s.total_shadow_runs s.total_wall_seconds;
  (let st = Concolic.Solver.stats () in
   let solves = st.Concolic.Solver.cache_hits + st.Concolic.Solver.cache_misses in
   if solves > 0 then
     Format.fprintf ppf "solver cache: %d/%d hits (%.0f%%)@ "
       st.Concolic.Solver.cache_hits solves
       (100. *. float_of_int st.Concolic.Solver.cache_hits /. float_of_int solves));
  (let mangled, dropped, duplicated, _passed = Netsim.Mangler.totals () in
   if mangled + dropped + duplicated > 0 then begin
     Format.fprintf ppf "adversary: %d message(s) mangled, %d dropped, %d duplicated"
       mangled dropped duplicated;
     (match Netsim.Mangler.kind_counts () with
     | [] -> ()
     | kinds ->
         Format.fprintf ppf " (%s)"
           (String.concat ", "
              (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) kinds)));
     Format.fprintf ppf "@ "
   end);
  List.iter
    (fun q ->
      Format.fprintf ppf "quarantined node %d after round %d (until round %d)@ "
        q.q_node (q.q_round + 1) q.q_until_round)
    s.quarantines;
  if s.leaked_snapshots > 0 then
    Format.fprintf ppf "WARNING: %d snapshot(s) still active@ " s.leaked_snapshots;
  List.iter (fun f -> Format.fprintf ppf "%a@ " Fault.pp f) s.faults;
  List.iter
    (fun (sg, hits) ->
      Format.fprintf ppf "signature %a (x%d)@ " Signature.pp sg hits)
    s.signatures;
  Format.fprintf ppf "@]"
