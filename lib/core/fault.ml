type fault_class = Operator_mistake | Policy_conflict | Programming_error

let class_to_string = function
  | Operator_mistake -> "operator-mistake"
  | Policy_conflict -> "policy-conflict"
  | Programming_error -> "programming-error"

type t = {
  f_class : fault_class;
  f_property : string;
  f_node : int;
  f_detail : string;
  f_input : Concolic.Ctx.input option;
  f_detected_at : Netsim.Time.t;
}

let make ?input ~at ~node ~property f_class detail =
  (* Every detection lands in the telemetry artifact with the span path
     of whatever produced it (round / cut / peer / shadow replay). *)
  Telemetry.fault ~t_us:(Netsim.Time.to_us at)
    ~fault_class:(class_to_string f_class) ~property ~node ~detail
    ~input:(Option.map Concolic.Ctx.input_to_string input) ();
  { f_class; f_property = property; f_node = node; f_detail = detail;
    f_input = input; f_detected_at = at }

let same_root a b =
  a.f_class = b.f_class && String.equal a.f_property b.f_property
  && a.f_node = b.f_node

let dedupe faults =
  List.fold_left
    (fun acc f -> if List.exists (same_root f) acc then acc else f :: acc)
    [] faults
  |> List.rev

let pp ppf t =
  Format.fprintf ppf "[%a] %s %s at node %d: %s%s" Netsim.Time.pp t.f_detected_at
    (class_to_string t.f_class) t.f_property t.f_node t.f_detail
    (match t.f_input with
    | Some [] -> " (input: defaults)"
    | Some i -> " (input: " ^ Concolic.Ctx.input_to_string i ^ ")"
    | None -> " (baseline state)")
