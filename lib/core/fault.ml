type fault_class = Operator_mistake | Policy_conflict | Programming_error | Cascade

let class_to_string = function
  | Operator_mistake -> "operator-mistake"
  | Policy_conflict -> "policy-conflict"
  | Programming_error -> "programming-error"
  | Cascade -> "cascade"

let class_of_string = function
  | "operator-mistake" -> Some Operator_mistake
  | "policy-conflict" -> Some Policy_conflict
  | "programming-error" -> Some Programming_error
  | "cascade" -> Some Cascade
  | _ -> None

type t = {
  f_class : fault_class;
  f_property : string;
  f_node : int;
  f_detail : string;
  f_input : Concolic.Ctx.input option;
  f_detected_at : Netsim.Time.t;
}

let make ?input ~at ~node ~property f_class detail =
  (* Every detection lands in the telemetry artifact with the span path
     of whatever produced it (round / cut / peer / shadow replay). *)
  Telemetry.fault ~t_us:(Netsim.Time.to_us at)
    ~fault_class:(class_to_string f_class) ~property ~node ~detail
    ~input:(Option.map Concolic.Ctx.input_to_string input) ();
  { f_class; f_property = property; f_node = node; f_detail = detail;
    f_input = input; f_detected_at = at }

(* Detail strings carry run-specific payloads (prefixes, ASNs, message
   hex, counters).  Normalization erases exactly those so that the same
   root cause yields the same string on every replay: digit runs become
   ['#'], and ['#'] groups joined only by separator characters collapse
   into one (so "10.0.2.0/24" and "1009 1005 1011" both normalize to
   "#" — an AS path keeps the same shape whatever its length). *)
let normalize_detail s =
  let is_digit c = c >= '0' && c <= '9' in
  let is_sep = function
    | ' ' | ',' | '.' | ':' | ';' | '/' | '-' | '_' | '(' | ')' | '[' | ']'
    | '<' | '>' | '=' | '+' | 'x' ->
        true
    | _ -> false
  in
  (* Pass 1: digit runs -> '#'; structural characters that would collide
     with the signature encoding -> ' '. *)
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if is_digit s.[!i] then begin
      Buffer.add_char b '#';
      while !i < n && is_digit s.[!i] do incr i done
    end
    else begin
      (match s.[!i] with
      | '\n' | '\r' | '\t' | '|' -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c);
      incr i
    end
  done;
  let s = Buffer.contents b in
  (* Pass 2: collapse '#'-groups and whitespace runs. *)
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '#' then begin
      Buffer.add_char b '#';
      incr i;
      let merging = ref true in
      while !merging do
        let j = ref !i in
        while !j < n && is_sep s.[!j] do incr j done;
        if !j < n && s.[!j] = '#' then i := !j + 1 else merging := false
      done
    end
    else if s.[!i] = ' ' then begin
      Buffer.add_char b ' ';
      while !i < n && s.[!i] = ' ' do incr i done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  let s = String.trim (Buffer.contents b) in
  if String.length s > 160 then String.sub s 0 160 else s

let root t =
  Printf.sprintf "%s|%s|%d" (class_to_string t.f_class) t.f_property t.f_node

let same_root a b = String.equal (root a) (root b)

(* Deduplicate by root, keeping the representative with the earliest
   [f_detected_at] (first occurrence wins a tie); output order is the
   order in which each root first appears in the input. *)
let dedupe faults =
  let best : (string, t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun f ->
      let k = root f in
      match Hashtbl.find_opt best k with
      | None ->
          Hashtbl.add best k f;
          order := k :: !order
      | Some g ->
          if Netsim.Time.(f.f_detected_at < g.f_detected_at) then
            Hashtbl.replace best k f)
    faults;
  List.rev_map (fun k -> Hashtbl.find best k) !order

let pp ppf t =
  Format.fprintf ppf "[%a] %s %s at node %d: %s%s" Netsim.Time.pp t.f_detected_at
    (class_to_string t.f_class) t.f_property t.f_node t.f_detail
    (match t.f_input with
    | Some [] -> " (input: defaults)"
    | Some i -> " (input: " ^ Concolic.Ctx.input_to_string i ^ ")"
    | None -> " (baseline state)")
