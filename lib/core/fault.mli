(** Fault reports — what DiCE detects.

    The first three classes are the paper's: operator mistakes
    (misconfiguration), policy conflicts across domains, and
    programming errors in the implementation.  [Cascade] is the
    self-sustaining failure class the cascade detector adds: route
    oscillations, flap storms and quarantine ping-pong, found by
    causally stitching individual fault propagations across rounds
    rather than by any single-snapshot property. *)

type fault_class = Operator_mistake | Policy_conflict | Programming_error | Cascade

val class_to_string : fault_class -> string
val class_of_string : string -> fault_class option

type t = {
  f_class : fault_class;
  f_property : string;  (** property whose violation was detected *)
  f_node : int;  (** node at which the violation manifests *)
  f_detail : string;
  f_input : Concolic.Ctx.input option;  (** triggering explored input *)
  f_detected_at : Netsim.Time.t;  (** simulated time of detection *)
}

val make :
  ?input:Concolic.Ctx.input ->
  at:Netsim.Time.t ->
  node:int ->
  property:string ->
  fault_class ->
  string ->
  t

val normalize_detail : string -> string
(** Erase run-specific payload from a detail string: digit runs become
    ['#'] and ['#'] groups joined only by separator characters collapse
    into one, so the same root cause produces the same normalized
    detail on every replay (the basis of {!Signature} stability). *)

val root : t -> string
(** ["class|property|node"] — the replay-independent deduplication key.
    Coarser than a {!Signature.t} (no role, no detail): two reports are
    the same root cause iff they name the same violated property at the
    same node. *)

val same_root : t -> t -> bool
(** [root] equality — used to deduplicate reports across explored
    inputs. *)

val dedupe : t list -> t list
(** One representative per {!root}: the {e earliest} [f_detected_at]
    (first occurrence wins ties), in first-appearance order. *)

val pp : Format.formatter -> t -> unit
