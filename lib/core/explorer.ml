type params = {
  limits : Concolic.Engine.limits;
  fuzz_extra : int;
  mangle_extra : int;
  mangle_seed : int;
  peers_per_node : int;
  shadow_budget : int;
  check_convergence : bool;
  domains : int;
  snapshot_deadline : Netsim.Time.span option;
}

let default_params =
  { limits =
      { Concolic.Engine.max_inputs = 48; max_branches = 48; solver_nodes = 20_000 };
    fuzz_extra = 12;
    mangle_extra = 0;
    mangle_seed = 0;
    peers_per_node = 1;
    shadow_budget = 30_000;
    check_convergence = true;
    domains = 1;
    snapshot_deadline = None }

type exploration = {
  x_node : int;
  x_snapshot : Snapshot.Cut.snapshot;
  x_partial : bool;
  x_stalled : (int * int) list;
  x_faults : Fault.t list;
  x_digests : Privacy.digest list;
  x_inputs : int;
  x_shadow_runs : int;
  x_mangled : int;
  x_distinct_paths : int;
  x_crashes : int;
  x_snapshot_span : Netsim.Time.span;
  x_wall_seconds : float;
  x_work_seconds : float;
  x_domains : int;
}

let take_snapshot ?deadline ~build ~cut ~node () =
  Telemetry.with_span "cut"
    ~attrs:[ ("initiator", Telemetry.Json.Int node) ]
    (fun sp ->
      let eng = build.Topology.Build.engine in
      let result = ref None in
      let _id =
        Snapshot.Cut.initiate ?deadline cut ~initiator:node
          ~on_result:(fun r -> result := Some r)
      in
      (* Drive the live system until the markers have flooded the graph (or,
         with a deadline, until the cut aborts into a Partial). *)
      let horizon = Netsim.Time.span_sec 120. in
      let give_up = Netsim.Time.add (Netsim.Engine.now eng) horizon in
      let rec wait () =
        match !result with
        | Some r -> r
        | None ->
            if Netsim.Time.(give_up <= Netsim.Engine.now eng) then
              failwith "Explorer.take_snapshot: cut did not complete within horizon"
            else if not (Netsim.Engine.step eng) then
              (* Event queue drained with the cut still open: nothing can
                 close it anymore. *)
              failwith "Explorer.take_snapshot: engine idle with cut still open"
            else wait ()
      in
      let r = wait () in
      Telemetry.add_attr sp
        [ ( "result",
            Telemetry.Json.String
              (match r with
              | Snapshot.Cut.Complete _ -> "complete"
              | Snapshot.Cut.Partial _ -> "partial") );
          ("stalled", Telemetry.Json.Int (List.length (Snapshot.Cut.stalled_of r))) ];
      r)

(* Live bug flags per node, so clones run the same (buggy) code.
   Captured once per exploration into a hash table: the lookup sits
   inside every shadow spawn, and the captured records are immutable,
   so sharing them across pool domains is safe. *)
let bugs_of_build build =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (id, (sp : Bgp.Speaker.t)) -> Hashtbl.replace tbl id (sp.Bgp.Speaker.sp_bugs ()))
    build.Topology.Build.speakers;
  fun id ->
    match Hashtbl.find_opt tbl id with
    | Some bugs -> bugs
    | None -> Bgp.Router.no_bugs

let verdicts_to_results ~self ~now ?input ~checker_class verdicts : Fault.t list * Privacy.digest list =
  List.fold_left
    (fun (faults, digests) (v : Checks.verdict) ->
      if v.Checks.v_node = self then
        if v.Checks.v_ok then (faults, digests)
        else
          ( Fault.make ?input ~at:now ~node:v.Checks.v_node
              ~property:v.Checks.v_property checker_class v.Checks.v_evidence
            :: faults,
            digests )
      else
        let d =
          Privacy.digest ~node:v.Checks.v_node ~property:v.Checks.v_property
            ~ok:v.Checks.v_ok ~evidence:v.Checks.v_evidence
        in
        let faults =
          if v.Checks.v_ok then faults
          else
            (* Only the digest crossed the domain boundary: the report
               carries no remote evidence. *)
            Fault.make ?input ~at:now ~node:v.Checks.v_node
              ~property:v.Checks.v_property checker_class
              "remote check digest reported a violation"
            :: faults
        in
        (faults, d :: digests))
    ([], []) verdicts

(* Baseline (state) properties: checked once per exploration against
   the unperturbed clone of the snapshot, after it quiesces.  Hoisted
   out of the per-peer loop — every peer saw the same snapshot, so the
   per-peer recomputation was pure waste. *)
let baseline_results ~params ~bugs_of ~baseline ~snapshot ~node ~now =
  match baseline with
  | [] -> ([], [])
  | checkers ->
      let pristine = Snapshot.Store.spawn ~bugs_of snapshot in
      ignore
        (Snapshot.Store.run_to_quiescence ~max_events:params.shadow_budget pristine);
      List.fold_left
        (fun (faults_acc, digests_acc) (c : Checks.checker) ->
          let faults, digests =
            verdicts_to_results ~self:node ~now ~checker_class:c.Checks.fault_class
              (c.Checks.run pristine)
          in
          (faults_acc @ List.rev faults, digests_acc @ List.rev digests))
        ([], []) checkers

(* Replay one raw byte string over its own fresh clone and run the
   per-input property checkers.  Self-contained and free of shared
   mutable state, so it is the unit of parallelism: the shadow owns its
   engine, network and speakers, and everything reachable from
   [snapshot] / [per_input] is immutable.  [crash_property] classifies
   a [Crash] escaping the shadow: "handler-crash" for concretized
   concolic inputs, "codec-crash" for mangled wire bytes. *)
let replay_raw ~params ~bugs_of ~per_input ~snapshot ~node ~peer_addr ~now ?input
    ~crash_property raw =
  Telemetry.with_span "shadow_replay" (fun _sp ->
  let t0 = Unix.gettimeofday () in
  let shadow = Snapshot.Store.spawn ~bugs_of snapshot in
  let target = Snapshot.Store.speaker shadow node in
  let crash_faults =
    match
      target.Bgp.Speaker.sp_process_raw
        ~from_node:(Bgp.Router.node_of_addr peer_addr) raw
    with
    | () -> []
    | exception Bgp.Router.Crash detail ->
        [ Fault.make ?input ~at:now ~node ~property:crash_property
            Fault.Programming_error detail ]
  in
  (* Observe system-wide consequences. *)
  let conv_verdicts =
    if params.check_convergence then
      Checks.convergence ~budget:params.shadow_budget shadow
    else begin
      ignore (Snapshot.Store.run_to_quiescence ~max_events:params.shadow_budget shadow);
      []
    end
  in
  let verdicts =
    List.concat_map
      (fun (c : Checks.checker) ->
        List.map (fun v -> (c.Checks.fault_class, v)) (c.Checks.run shadow))
      per_input
    @ List.map (fun v -> (Fault.Policy_conflict, v)) conv_verdicts
  in
  let faults, digests =
    List.fold_left
      (fun (faults_acc, digests_acc) (cls, v) ->
        let faults, digests =
          verdicts_to_results ~self:node ~now ?input ~checker_class:cls [ v ]
        in
        (faults_acc @ faults, digests_acc @ digests))
      (crash_faults, []) verdicts
  in
  (faults, digests, Unix.gettimeofday () -. t0))

let replay_input ~params ~bugs_of ~per_input ~view ~snapshot ~node ~peer_addr ~now
    input =
  replay_raw ~params ~bugs_of ~per_input ~snapshot ~node ~peer_addr ~now ~input
    ~crash_property:"handler-crash"
    (Sym_handler.concretize view input)

type peer_result = {
  pr_faults : Fault.t list;  (* deduped, canonical input order *)
  pr_digests : Privacy.digest list;
  pr_result : Sym_handler.outcome Concolic.Engine.result;
  pr_shadow_runs : int;
  pr_mangled : int;
  pr_work_seconds : float;  (* summed task time, incl. concolic derivation *)
}

let explore_peer ~params ~pool ~bugs_of ~suite ~build ~snapshot ~node ~peer_addr =
  Telemetry.with_span "peer"
    ~attrs:[ ("node", Telemetry.Json.Int node);
             ("peer", Telemetry.Json.String (Bgp.Ipv4.to_string peer_addr)) ]
    (fun sp ->
  let t0 = Unix.gettimeofday () in
  let now = Netsim.Engine.now build.Topology.Build.engine in
  (* Probe clone: gives the instrumented handler a consistent view. *)
  let probe = Snapshot.Store.spawn ~bugs_of snapshot in
  let probe_speaker = Snapshot.Store.speaker probe node in
  let view = Sym_handler.view_of_speaker probe_speaker ~peer:peer_addr in
  (* Step 2: derive inputs by concolic execution. *)
  let result =
    Concolic.Engine.explore ~limits:params.limits ~seeds:(Sym_handler.seeds view)
      (Sym_handler.run view)
  in
  (* Crashes in the instrumented mirror are programming-error faults. *)
  let crash_faults =
    List.filter_map
      (fun (r : _ Concolic.Engine.run) ->
        match r.Concolic.Engine.run_outcome with
        | Concolic.Engine.Raised (Bgp.Router.Crash detail) ->
            Some
              (Fault.make ~input:r.Concolic.Engine.run_input ~at:now ~node
                 ~property:"handler-crash" Fault.Programming_error detail)
        | Concolic.Engine.Raised e ->
            Some
              (Fault.make ~input:r.Concolic.Engine.run_input ~at:now ~node
                 ~property:"handler-exception" Fault.Programming_error
                 (Printexc.to_string e))
        | Concolic.Engine.Value _ -> None)
      result.Concolic.Engine.runs
  in
  let derive_seconds = Unix.gettimeofday () -. t0 in
  (* Step 3: subject clones to each derived input.  Each replay is
     independent; fan them out across the pool and merge in input
     order, so faults and dedup are identical to the sequential run. *)
  let rng = Netsim.Rng.create (0xF0 + node) in
  let inputs =
    List.map (fun (r : _ Concolic.Engine.run) -> r.Concolic.Engine.run_input)
      result.Concolic.Engine.runs
    @ Sym_handler.fuzz_inputs view rng params.fuzz_extra
  in
  let per_input =
    List.filter (fun (c : Checks.checker) -> c.Checks.scope = Checks.Per_input) suite
  in
  (* Mangled exploration seeds: concretize derived inputs to wire bytes
     and corrupt them with the adversary's byte-level corpus, cycling
     through the fault kinds so each one is exercised.  Deterministic:
     the stream is keyed only by [mangle_seed], the node and the peer. *)
  let mangled =
    if params.mangle_extra <= 0 || inputs = [] then []
    else begin
      let mrng =
        Netsim.Rng.create
          (params.mangle_seed
          lxor (node * 0x9E3779B1)
          lxor Bgp.Ipv4.to_int peer_addr)
      in
      let kinds = Array.of_list Netsim.Mangler.corpus_kinds in
      let base = Array.of_list inputs in
      List.init params.mangle_extra (fun i ->
          let kind = kinds.(i mod Array.length kinds) in
          let input = base.(i mod Array.length base) in
          let raw = Sym_handler.concretize view input in
          Netsim.Mangler.mutate mrng kind raw)
    end
  in
  let tasks =
    List.map (fun i -> `Input i) inputs @ List.map (fun raw -> `Mangled raw) mangled
  in
  let replay = function
    | `Input input ->
        replay_input ~params ~bugs_of ~per_input ~view ~snapshot ~node ~peer_addr
          ~now input
    | `Mangled raw ->
        replay_raw ~params ~bugs_of ~per_input ~snapshot ~node ~peer_addr ~now
          ~crash_property:"codec-crash" raw
  in
  let replayed =
    match pool with
    | Some p when Parallel.Pool.size p > 1 ->
        (* Pool tasks run on other domains, where the DLS span stack is
           empty; re-establish this peer's span path around each replay
           so its shadow_replay spans and faults keep their parent.

           One job per replay is too fine: a shadow replay on a small
           snapshot runs tens of microseconds, comparable to the
           submit/await handshake, which is how domains=4 used to lose
           to domains=1.  Aim for ~4 chunks per domain — enough slack
           for load balancing, coarse enough that coordination is
           noise. *)
        let chunk =
          max 1 (List.length tasks / (4 * Parallel.Pool.size p))
        in
        let path = Telemetry.span_path () in
        Parallel.Pool.map_list ~chunk p
          (fun task -> Telemetry.with_path path (fun () -> replay task))
          tasks
    | Some _ | None -> List.map replay tasks
  in
  let faults =
    crash_faults @ List.concat_map (fun (faults, _, _) -> faults) replayed
  in
  let digests = List.concat_map (fun (_, digests, _) -> digests) replayed in
  let work =
    List.fold_left (fun acc (_, _, dt) -> acc +. dt) derive_seconds replayed
  in
  Telemetry.add_attr sp
    [ ("inputs", Telemetry.Json.Int (List.length inputs));
      ("mangled", Telemetry.Json.Int (List.length mangled));
      ("paths", Telemetry.Json.Int result.Concolic.Engine.distinct_paths) ];
  { pr_faults = Fault.dedupe faults;
    pr_digests = digests;
    pr_result = result;
    pr_shadow_runs = List.length tasks;
    pr_mangled = List.length mangled;
    pr_work_seconds = work })

(* Exploration-level accounting; the per-round story lives in spans,
   these registry totals feed the end-of-run report and BENCH.json. *)
let m_inputs = lazy (Telemetry.Metrics.counter "explorer.inputs")
let m_shadow_runs = lazy (Telemetry.Metrics.counter "explorer.shadow_runs")
let m_mangled = lazy (Telemetry.Metrics.counter "explorer.mangled_inputs")
let m_crashes = lazy (Telemetry.Metrics.counter "explorer.crashes")
let m_faults = lazy (Telemetry.Metrics.counter "explorer.faults")
let m_snapshot_span =
  lazy
    (Telemetry.Metrics.histogram
       ~buckets:[| 100.; 1e3; 1e4; 1e5; 1e6; 1e7 |]
       "explorer.snapshot_span_us")

let m_clause_covered = lazy (Telemetry.Metrics.gauge "explorer.clause_covered")
let m_clause_universe = lazy (Telemetry.Metrics.gauge "explorer.clause_universe")

(* When a confuzz campaign has clause coverage enabled, every
   exploration refreshes the coverage gauges so live telemetry shows
   the frontier advancing, not just the final report. *)
let record_clause_coverage () =
  if Bgp.Clause_cov.enabled () then begin
    Telemetry.Metrics.set (Lazy.force m_clause_covered) (Bgp.Clause_cov.covered ());
    Telemetry.Metrics.set
      (Lazy.force m_clause_universe)
      (Bgp.Clause_cov.universe_size ())
  end

let explore_node ?(params = default_params) ?pool ~build ~cut ~gt ~node () =
  let go pool =
    Telemetry.with_span "explore"
      ~attrs:[ ("node", Telemetry.Json.Int node) ]
    @@ fun xsp ->
    (* Step 1: consistent snapshot.  Under churn the cut may abort at
       its deadline; we then explore the nodes we did checkpoint (the
       initiator is always among them) and report the gap honestly. *)
    let cut_result =
      take_snapshot ?deadline:params.snapshot_deadline ~build ~cut ~node ()
    in
    let snapshot = Snapshot.Cut.snapshot_of cut_result in
    let stalled = Snapshot.Cut.stalled_of cut_result in
    let t0 = Unix.gettimeofday () in
    let now = Netsim.Engine.now build.Topology.Build.engine in
    let span =
      Netsim.Time.diff snapshot.Snapshot.Cut.completed_at
        snapshot.Snapshot.Cut.started_at
    in
    let bugs_of = bugs_of_build build in
    let suite = Checks.standard_suite gt in
    let baseline =
      List.filter (fun (c : Checks.checker) -> c.Checks.scope = Checks.Baseline) suite
    in
    let cfg = (Topology.Build.speaker build node).Bgp.Speaker.sp_config () in
    let peers =
      List.filteri (fun i _ -> i < params.peers_per_node) cfg.Bgp.Config.neighbors
    in
    let base_faults, base_digests =
      baseline_results ~params ~bugs_of ~baseline ~snapshot ~node ~now
    in
    let explore (n : Bgp.Config.neighbor) =
      explore_peer ~params ~pool ~bugs_of ~suite ~build ~snapshot ~node
        ~peer_addr:n.Bgp.Config.addr
    in
    (* Sessions fan out across the same pool; nested per-input jobs are
       safe because Pool.await helps drain the queue. *)
    let merged =
      match pool with
      | Some p when Parallel.Pool.size p > 1 && List.length peers > 1 ->
          let path = Telemetry.span_path () in
          Parallel.Pool.map_list p
            (fun peer -> Telemetry.with_path path (fun () -> explore peer))
            peers
      | Some _ | None -> List.map explore peers
    in
    let faults = base_faults @ List.concat_map (fun pr -> pr.pr_faults) merged in
    let digests = base_digests @ List.concat_map (fun pr -> pr.pr_digests) merged in
    let sum f = List.fold_left (fun acc pr -> acc + f pr) 0 merged in
    let inputs = sum (fun pr -> pr.pr_result.Concolic.Engine.inputs_executed) in
    let paths = sum (fun pr -> pr.pr_result.Concolic.Engine.distinct_paths) in
    let crashes = sum (fun pr -> List.length pr.pr_result.Concolic.Engine.crashes) in
    let shadows = sum (fun pr -> pr.pr_shadow_runs) in
    let mangled = sum (fun pr -> pr.pr_mangled) in
    let work =
      List.fold_left (fun acc pr -> acc +. pr.pr_work_seconds) 0. merged
    in
    let deduped = Fault.dedupe faults in
    Telemetry.Metrics.add (Lazy.force m_inputs) inputs;
    Telemetry.Metrics.add (Lazy.force m_shadow_runs) shadows;
    Telemetry.Metrics.add (Lazy.force m_mangled) mangled;
    Telemetry.Metrics.add (Lazy.force m_crashes) crashes;
    Telemetry.Metrics.add (Lazy.force m_faults) (List.length deduped);
    Telemetry.Histogram.observe
      (Lazy.force m_snapshot_span)
      (float_of_int span);
    record_clause_coverage ();
    Telemetry.add_attr xsp
      [ ("inputs", Telemetry.Json.Int inputs);
        ("faults", Telemetry.Json.Int (List.length deduped));
        ("partial", Telemetry.Json.Bool (stalled <> [])) ];
    { x_node = node;
      x_snapshot = snapshot;
      x_partial = stalled <> [];
      x_stalled = stalled;
      x_faults = deduped;
      x_digests = digests;
      x_inputs = inputs;
      x_shadow_runs = shadows;
      x_mangled = mangled;
      x_distinct_paths = paths;
      x_crashes = crashes;
      x_snapshot_span = span;
      x_wall_seconds = Unix.gettimeofday () -. t0;
      x_work_seconds = work;
      x_domains = (match pool with Some p -> Parallel.Pool.size p | None -> 1) }
  in
  match pool with
  | Some _ -> go pool
  | None when params.domains > 1 ->
      Parallel.Pool.with_pool ~domains:params.domains (fun p -> go (Some p))
  | None -> go None

(* Headless single-shot replay for the triage minimizer: one snapshot,
   the baseline (state) checkers, and optionally one recorded concolic
   input against one session — no concolic derivation, no fuzzing, no
   fan-out.  This is what a delta-minimized repro runs instead of the
   full exploration haystack. *)
let replay_direct ?(params = default_params) ~build ~cut ~gt ~node
    ?(peer_index = 0) ?input () =
  Telemetry.with_span "direct_replay"
    ~attrs:[ ("node", Telemetry.Json.Int node) ]
  @@ fun _sp ->
  let cut_result =
    take_snapshot ?deadline:params.snapshot_deadline ~build ~cut ~node ()
  in
  let snapshot = Snapshot.Cut.snapshot_of cut_result in
  let now = Netsim.Engine.now build.Topology.Build.engine in
  let bugs_of = bugs_of_build build in
  let suite = Checks.standard_suite gt in
  let baseline =
    List.filter (fun (c : Checks.checker) -> c.Checks.scope = Checks.Baseline) suite
  in
  let base_faults, _ =
    baseline_results ~params ~bugs_of ~baseline ~snapshot ~node ~now
  in
  (* The exploration path checks convergence on every shadow replay; a
     direct repro must too, or minimized policy-conflict scenarios
     would stop detecting. *)
  let conv_faults =
    if not params.check_convergence then []
    else begin
      let probe = Snapshot.Store.spawn ~bugs_of snapshot in
      let verdicts = Checks.convergence ~budget:params.shadow_budget probe in
      let faults, _ =
        verdicts_to_results ~self:node ~now ~checker_class:Fault.Policy_conflict
          verdicts
      in
      faults
    end
  in
  let input_faults =
    match input with
    | None -> []
    | Some input -> (
        let cfg = (Topology.Build.speaker build node).Bgp.Speaker.sp_config () in
        match List.nth_opt cfg.Bgp.Config.neighbors peer_index with
        | None -> []
        | Some (peer : Bgp.Config.neighbor) ->
            let per_input =
              List.filter
                (fun (c : Checks.checker) -> c.Checks.scope = Checks.Per_input)
                suite
            in
            let probe = Snapshot.Store.spawn ~bugs_of snapshot in
            let view =
              Sym_handler.view_of_speaker
                (Snapshot.Store.speaker probe node)
                ~peer:peer.Bgp.Config.addr
            in
            let faults, _digests, _dt =
              replay_input ~params ~bugs_of ~per_input ~view ~snapshot ~node
                ~peer_addr:peer.Bgp.Config.addr ~now input
            in
            faults)
  in
  Fault.dedupe (base_faults @ conv_faults @ input_faults)

let coverage x =
  ( List.length x.x_snapshot.Snapshot.Cut.checkpoints,
    List.length x.x_snapshot.Snapshot.Cut.channels )

let pp_exploration ppf x =
  Format.fprintf ppf
    "@[<v>node %d: %d inputs, %d paths, %d shadow runs, %d crashes, snapshot %dus, %.2fs wall"
    x.x_node x.x_inputs x.x_distinct_paths x.x_shadow_runs x.x_crashes
    x.x_snapshot_span x.x_wall_seconds;
  if x.x_mangled > 0 then Format.fprintf ppf " (%d mangled)" x.x_mangled;
  if x.x_partial then begin
    let nodes, chans = coverage x in
    Format.fprintf ppf
      " [PARTIAL cut: %d nodes checkpointed, %d/%d channels closed]" nodes
      (chans - List.length x.x_stalled)
      chans
  end;
  if x.x_domains > 1 then
    Format.fprintf ppf " (pool: %d domains, %.2fs work, %.2fx speedup)" x.x_domains
      x.x_work_seconds
      (if x.x_wall_seconds > 0. then x.x_work_seconds /. x.x_wall_seconds else 1.);
  Format.fprintf ppf "@ ";
  List.iter (fun f -> Format.fprintf ppf "  %a@ " Fault.pp f) x.x_faults;
  Format.fprintf ppf "@]"
