(** Strike/quarantine bookkeeping shared by every supervising driver.

    The orchestrator quarantines explorer {e nodes} whose rounds keep
    failing; the campaign driver quarantines scenario {e templates}
    whose jobs keep hanging or crashing.  Both follow the same policy —
    [max_strikes] consecutive failures park the slot for
    [backoff * 2^(previous quarantines)] scheduling steps — so the
    policy lives here once, slot-indexed and unit-free: a "step" is
    whatever the caller schedules by (round index, job attempt).

    The tracker is deliberately pure bookkeeping: it never emits
    telemetry and never sleeps.  Callers translate {!quarantine}
    records into their own sys events / journal records, which keeps
    the decisions deterministic and replayable. *)

type quarantine = {
  qu_slot : int;
  qu_step : int;  (** step whose failure triggered the quarantine *)
  qu_strikes : int;  (** the strike count that tripped it *)
  qu_until : int;  (** first step the slot is eligible again *)
}

type t

val create : ?max_strikes:int -> ?backoff:int -> int -> t
(** [create n] tracks [n] slots.  [max_strikes] (default 3)
    consecutive failures trigger a quarantine of
    [backoff * 2^(previous quarantines)] steps (base [backoff]
    default 2).  Values [< 1] are clamped to [1]. *)

val slots : t -> int

val quarantined : t -> slot:int -> step:int -> bool
(** Is [slot] parked at [step]?  Pure — never mutates. *)

val release_due : t -> step:int -> int list
(** Slots whose quarantine expires at [step] (ascending), marking them
    released — call once per step so each release is reported once;
    the caller turns these into unquarantine events. *)

val record : t -> slot:int -> step:int -> ok:bool -> quarantine option
(** Record the outcome of [slot]'s work at [step].  [ok] resets the
    slot's strikes; a failure increments them and, at [max_strikes],
    starts a quarantine (strikes reset, backoff doubles for next
    time) returned as [Some q]. *)

val quarantines : t -> quarantine list
(** Every quarantine recorded so far, in trigger order. *)
