(** Stable, replay-independent fault fingerprints.

    A signature identifies a detection by {e what} was detected — fault
    class, violated property, canonicalized node role, node id, and the
    {!Fault.normalize_detail}-normalized detail — and by nothing about
    {e how} it was detected: no timestamps, no triggering input, no
    exploration round.  Two runs of the same scenario (sequential or
    pooled, original or delta-minimized) that surface the same root
    cause therefore produce equal signatures, which is what makes the
    triage corpus and the regression replayer possible.

    The canonical wire form ([to_string]/[of_string]) is one line:
    ["class|property|role|node|detail"]. *)

type t = {
  sg_class : Fault.fault_class;
  sg_property : string;
  sg_role : string;
      (** canonicalized node role: the topology tier ([tier1] /
          [transit] / [stub]) when a graph is supplied, ["wire"] for
          node-less codec findings (node -1), ["-"] when unknown *)
  sg_node : int;
  sg_detail : string;  (** normalized — see {!Fault.normalize_detail} *)
}

val wire_role : string
(** ["wire"] — role given to deployment-less codec findings (e.g. the
    wire fuzzer's). *)

val make :
  ?graph:Topology.Graph.t ->
  ?role:string ->
  node:int ->
  property:string ->
  Fault.fault_class ->
  string ->
  t
(** [make cls detail] normalizes [detail] and derives the role from
    [graph] (explicit [role] wins). *)

val of_fault : ?graph:Topology.Graph.t -> ?role:string -> Fault.t -> t

val to_string : t -> string
val of_string : string -> (t, string) result
val equal : t -> t -> bool
val compare : t -> t -> int

val root : t -> string
(** The coarser ["class|property|node"] key — equal to {!Fault.root} of
    any fault the signature was derived from. *)

val matches_fault : t -> Fault.t -> bool
(** Root-level match: same class, property and node (detail and role
    ignored) — the deduplication relation. *)

val pp : Format.formatter -> t -> unit
