type job = Job : (unit -> unit) -> job

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  n : int;
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a task = {
  t_pool : t;
  t_lock : Mutex.t;
  t_cond : Condition.t;
  mutable t_state : 'a state;
}

let default_domains () = Domain.recommended_domain_count ()

let size pool = pool.n

(* Registry metrics are process-global; lazy so the registry mutex is
   only touched on first use, not at module load. *)
let m_submitted = lazy (Telemetry.Metrics.counter "pool.jobs_submitted")
let m_depth = lazy (Telemetry.Metrics.gauge "pool.queue_depth")
let m_timeouts = lazy (Telemetry.Metrics.counter "pool.await_timeouts")

(* Call with [pool.lock] held: the gauge mirrors the queue length. *)
let note_depth pool =
  Telemetry.Metrics.set (Lazy.force m_depth) (Queue.length pool.jobs)

(* Take the next job, blocking until one arrives or the pool closes. *)
let rec next_job pool =
  match Queue.take_opt pool.jobs with
  | Some j ->
      note_depth pool;
      Some j
  | None ->
      if pool.closed then None
      else begin
        Condition.wait pool.nonempty pool.lock;
        next_job pool
      end

let rec worker_loop pool =
  Mutex.lock pool.lock;
  let j = next_job pool in
  Mutex.unlock pool.lock;
  match j with
  | None -> ()
  | Some (Job run) ->
      run ();
      worker_loop pool

let create ?domains () =
  let n = max 1 (Option.value domains ~default:(default_domains ())) in
  let pool =
    { lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      closed = false;
      workers = [];
      n }
  in
  pool.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let submit pool f =
  let task =
    { t_pool = pool;
      t_lock = Mutex.create ();
      t_cond = Condition.create ();
      t_state = Pending }
  in
  let run () =
    let result =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock task.t_lock;
    task.t_state <- result;
    Condition.broadcast task.t_cond;
    Mutex.unlock task.t_lock
  in
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add (Job run) pool.jobs;
  Telemetry.Metrics.incr (Lazy.force m_submitted);
  note_depth pool;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock;
  task

(* Run one queued job inline, if any; [false] means the queue was
   empty at the time of the check. *)
let try_help pool =
  Mutex.lock pool.lock;
  let j = Queue.take_opt pool.jobs in
  if Option.is_some j then note_depth pool;
  Mutex.unlock pool.lock;
  match j with
  | Some (Job run) ->
      run ();
      true
  | None -> false

let rec await task =
  Mutex.lock task.t_lock;
  match task.t_state with
  | Done v ->
      Mutex.unlock task.t_lock;
      v
  | Failed (e, bt) ->
      Mutex.unlock task.t_lock;
      Printexc.raise_with_backtrace e bt
  | Pending ->
      Mutex.unlock task.t_lock;
      if try_help task.t_pool then await task
      else begin
        (* Queue empty: our job is either running on another domain or
           just finished.  Block until its completion broadcast. *)
        Mutex.lock task.t_lock;
        (match task.t_state with
        | Pending -> Condition.wait task.t_cond task.t_lock
        | Done _ | Failed _ -> ());
        Mutex.unlock task.t_lock;
        await task
      end

let await_timeout ?(help = true) task ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  (* The stdlib has no timed [Condition.wait], so once the queue is dry
     we spin politely on the task state instead of blocking. *)
  let rec loop () =
    Mutex.lock task.t_lock;
    let st = task.t_state in
    Mutex.unlock task.t_lock;
    match st with
    | Done v -> Some v
    | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending ->
        if Unix.gettimeofday () >= deadline then begin
          Telemetry.Metrics.incr (Lazy.force m_timeouts);
          None
        end
        else begin
          if help then begin
            if not (try_help task.t_pool) then Domain.cpu_relax ()
          end
          else Unix.sleepf 0.001;
          loop ()
        end
  in
  loop ()

(* Split into contiguous runs of [size]; the last run may be short. *)
let chunked size xs =
  let rec go acc run k = function
    | [] -> List.rev (List.rev run :: acc)
    | x :: tl when k = size -> go (List.rev run :: acc) [ x ] 1 tl
    | x :: tl -> go acc (x :: run) (k + 1) tl
  in
  match xs with [] -> [] | x :: tl -> go [] [ x ] 1 tl

let map_list ?(chunk = 1) pool f xs =
  if chunk <= 1 then
    let tasks = List.map (fun x -> submit pool (fun () -> f x)) xs in
    List.map await tasks
  else
    (* One job per contiguous chunk.  Inside a chunk, [f] runs
       left-to-right on one domain; chunks are awaited in input order.
       Both the result order and the which-exception-wins rule are
       therefore the same as with [chunk = 1]: the earliest failing
       element's exception is the one re-raised. *)
    let tasks =
      List.map (fun g -> submit pool (fun () -> List.map f g)) (chunked chunk xs)
    in
    List.concat_map await tasks

let shutdown pool =
  Mutex.lock pool.lock;
  let workers = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter Domain.join workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
