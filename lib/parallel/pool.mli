(** A fixed-size domain pool for embarrassingly parallel fan-out.

    Design points, in order of importance:

    - {b Deterministic merges.} [map_list] returns results in input
      order regardless of completion order, so callers that fold the
      results observe exactly the sequential fold.  With [domains = 1]
      jobs additionally {e execute} in submission order on the calling
      domain, so the degenerate pool is bit-identical to a [List.map].
    - {b Help-first await.} [await] drains pending jobs from the queue
      while its task is incomplete.  Nested submission (a pool job that
      itself submits to the same pool and awaits) therefore cannot
      deadlock: the blocked awaiter executes the queued children
      itself.  This is what lets the explorer fan out across peers and,
      inside each peer, across derived inputs, with one shared pool.
    - {b No work stealing.} A single mutex-protected FIFO is ample for
      our job granularity (every job spawns and replays a whole shadow
      topology, i.e. hundreds of microseconds at minimum), and keeps
      the ordering semantics trivial to reason about. *)

type t
(** A pool of [size t] domains: [size t - 1] spawned workers plus the
    caller, which participates whenever it awaits. *)

type 'a task

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains
    ([domains] defaults to {!default_domains}; values [< 1] are
    clamped to [1], giving a purely sequential pool). *)

val size : t -> int

val submit : t -> (unit -> 'a) -> 'a task
(** Enqueue a job.  Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a task -> 'a
(** Block until the task completes, helping to drain the pool's queue
    in the meantime.  Re-raises (with its original backtrace) any
    exception the job raised. *)

val await_timeout : ?help:bool -> 'a task -> timeout_s:float -> 'a option
(** Like {!await} but gives up after [timeout_s] wall-clock seconds,
    returning [None].  The job itself is {e not} cancelled — OCaml
    domains cannot be killed — so an abandoned job may still complete
    later; the caller has merely stopped waiting for it.

    By default the caller helps drain the queue while waiting, then
    polls.  Pass [~help:false] to poll without helping: required when
    the caller is using the timeout as a watchdog over the awaited job
    itself, since a helping caller may steal that very job from the
    queue and execute it inline, at which point no timeout can fire
    until the job finishes on its own. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ?chunk pool f xs] runs [f] on every element concurrently
    and returns the results in input order.  If several jobs raise, the
    exception of the {e lowest-indexed} failing element is re-raised —
    again matching what sequential [List.map] would have done.

    [chunk] (default [1]) groups [chunk] consecutive elements into one
    pool job.  Fine-grained work — think tens of microseconds per
    element — drowns in submit/await synchronisation at [chunk = 1];
    batching restores the compute-to-coordination ratio.  Results,
    ordering and exception choice are identical for every [chunk]
    value, so callers can tune it freely. *)

val shutdown : t -> unit
(** Finish queued jobs, then join all workers.  Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], robust to exceptions. *)
