(** Structured event trace.

    A bounded ring of timestamped records, shared by the simulator and
    the systems built on it.  Used by tests to assert on event ordering
    and by the demo to display activity.

    Every record written to the ring is also forwarded to the global
    telemetry sink (when one is installed), so simulator events, spans
    and fault records land in one JSONL timeline.

    {b Cost control.}  A trace can be disabled ({!set_enabled}) or
    restricted to {!Info}-level events ({!set_level}); use
    {!emit_lazy} (or guard on {!interested}) at chatty call sites so
    the detail string is never even built when nobody listens. *)

type level = Debug | Info
(** [Debug] is the chatty per-message tier (send/deliver); [Info] is
    state changes worth keeping under a raised threshold (churn,
    drops, session events). *)

type record = {
  at : Time.t;
  node : int;  (** -1 when not attributable to a node *)
  kind : string;
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Enabled, threshold [Debug] (record everything) by default. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val set_level : t -> level -> unit
(** Records below this threshold are dropped ([Info] drops [Debug]). *)

val level : t -> level

val interested : ?level:level -> t -> bool
(** Would an [emit] at [level] (default [Info]) reach the ring or the
    telemetry sink?  Check before building an expensive detail. *)

val emit : ?level:level -> t -> at:Time.t -> node:int -> kind:string -> string -> unit
(** Default level [Info]. *)

val emit_lazy :
  ?level:level -> t -> at:Time.t -> node:int -> kind:string -> (unit -> string) -> unit
(** Like {!emit} but the detail thunk only runs when {!interested}. *)

val to_list : t -> record list
(** Oldest first. *)

val length : t -> int
(** Number of records currently retained. *)

val total : t -> int
(** Number of records ever admitted to the ring (including evicted
    ones); filtered records are not counted. *)

val find : t -> kind:string -> record list
val clear : t -> unit
val pp_record : Format.formatter -> record -> unit
