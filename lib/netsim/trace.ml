type level = Debug | Info

type record = { at : Time.t; node : int; kind : string; detail : string }

type t = {
  capacity : int;
  ring : record option array;
  mutable next : int;
  mutable count : int;
  mutable enabled : bool;
  mutable min_level : level;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; count = 0;
    enabled = true; min_level = Debug }

let set_enabled t b = t.enabled <- b
let enabled t = t.enabled
let set_level t l = t.min_level <- l
let level t = t.min_level

let admits level threshold =
  match (threshold, level) with
  | Debug, _ -> true
  | Info, Info -> true
  | Info, Debug -> false

let interested ?(level = Info) t =
  (t.enabled && admits level t.min_level) || Telemetry.enabled ()

let record t r =
  t.ring.(t.next) <- Some r;
  t.next <- (t.next + 1) mod t.capacity;
  t.count <- t.count + 1

let emit ?(level = Info) t ~at ~node ~kind detail =
  if t.enabled && admits level t.min_level then
    record t { at; node; kind; detail };
  (* The ring and the telemetry sink see the same timeline: sim events
     recorded here also land in the JSONL artifact, interleaved with
     spans and faults by sequence number. *)
  if Telemetry.enabled () then
    Telemetry.trace_event ~t_us:(Time.to_us at) ~node ~kind ~detail

let emit_lazy ?level t ~at ~node ~kind f =
  (* The point of the thunk: nobody listening => [f] never runs, so
     call sites stop paying for [Printf.sprintf] on every event. *)
  if interested ?level t then emit ?level t ~at ~node ~kind (f ())

let length t = min t.count t.capacity
let total t = t.count

let to_list t =
  let n = length t in
  let start = if t.count <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some r -> r
      | None -> assert false)

let find t ~kind = List.filter (fun r -> String.equal r.kind kind) (to_list t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let pp_record ppf r =
  Format.fprintf ppf "[%a] node=%d %s: %s" Time.pp r.at r.node r.kind r.detail
