type state = Pending | Cancelled | Fired

type timer = { mutable state : state; action : unit -> unit; live : int ref }

type t = {
  mutable clock : Time.t;
  queue : timer Pqueue.t;
  root_rng : Rng.t;
  live : int ref;
  mutable stopping : bool;
}

let create ?(seed = 0x51CE) () =
  { clock = Time.zero; queue = Pqueue.create (); root_rng = Rng.create seed;
    live = ref 0; stopping = false }

let now t = t.clock
let rng t = t.root_rng

let at t when_ f =
  let when_ = if Time.(when_ < t.clock) then t.clock else when_ in
  let timer = { state = Pending; action = f; live = t.live } in
  Pqueue.push t.queue ~prio:(Time.to_us when_) timer;
  incr t.live;
  timer

let schedule t ~after f = at t (Time.add t.clock (max 0 after)) f

let cancel = function
  | { state = Pending; _ } as timer ->
      timer.state <- Cancelled;
      decr timer.live
  | { state = Cancelled | Fired; _ } -> ()

let is_cancelled timer = timer.state = Cancelled

let pending t = !(t.live)

(* The stepping path is allocation-free: [min_prio]/[pop_value] avoid
   the [Some (prio, value)] wrapping of [Pqueue.pop], and the batched
   queue reuses its cells, so draining same-timestamp event bursts
   costs no minor words beyond what the actions themselves allocate.
   Cancelled timers still occupy a queue slot and still count as a
   step — [max_events] accounting must not depend on cancellation
   timing or corpus replays would diverge. *)
let step t =
  if Pqueue.is_empty t.queue then false
  else begin
    let prio = Pqueue.min_prio t.queue in
    let timer = Pqueue.pop_value t.queue in
    (match timer.state with
    | Cancelled | Fired -> ()
    | Pending ->
        timer.state <- Fired;
        decr t.live;
        t.clock <- Time.of_us prio;
        timer.action ());
    true
  end

let run ?until ?max_events t =
  t.stopping <- false;
  let horizon = match until with Some u -> Time.to_us u | None -> max_int in
  let limit = match max_events with Some m -> m | None -> max_int in
  let fired = ref 0 in
  let continue = ref true in
  (* [step] inlined so the queue's minimum is inspected once per event. *)
  while !continue do
    if t.stopping || !fired >= limit || Pqueue.is_empty t.queue then
      continue := false
    else begin
      let prio = Pqueue.min_prio t.queue in
      if prio > horizon then continue := false
      else begin
        let timer = Pqueue.pop_value t.queue in
        (match timer.state with
        | Cancelled | Fired -> ()
        | Pending ->
            timer.state <- Fired;
            decr t.live;
            t.clock <- Time.of_us prio;
            timer.action ());
        incr fired
      end
    end
  done;
  (* When bounded by [until], advance the clock to the horizon so repeated
     bounded runs observe monotonic time. *)
  match until with
  | Some u when Time.(t.clock < u) && not t.stopping -> t.clock <- u
  | Some _ | None -> ()

let stop t = t.stopping <- true
