(** Declarative failure schedules.

    A {!schedule} is a list of churn events at offsets relative to the
    moment {!apply} is called; applying it arms one engine timer per
    entry, so churn is as deterministic as everything else in the
    simulation.  Link events are applied symmetrically (both directions
    of the adjacency go down and come back together). *)

type event =
  | Node_down of int
  | Node_up of int
  | Link_down of int * int  (** symmetric: both directions *)
  | Link_up of int * int
  | Partition of int list * int list
  | Heal  (** restore every down link (nodes stay down) *)

type entry = { at : Time.span; ev : event }
(** [at] is an offset from the instant the schedule is applied. *)

type schedule = entry list

val entry : at:Time.span -> event -> entry

(** {1 Builders} *)

val crash : ?restore_after:Time.span -> node:int -> at:Time.span -> unit -> schedule
(** Crash [node] at offset [at]; restore it [restore_after] later if
    given, else it stays down. *)

val flap :
  a:int -> b:int -> from_:Time.span -> every:Time.span -> down_for:Time.span ->
  times:int -> schedule
(** Flap the (symmetric) link [a <-> b]: starting at [from_], take it
    down every [every] for [down_for], [times] times.
    @raise Invalid_argument if [down_for >= every] or [times < 0]. *)

val random :
  rng:Rng.t ->
  nodes:int list ->
  links:(int * int) list ->
  start:Time.span ->
  duration:Time.span ->
  ?node_fraction:float ->
  ?link_fraction:float ->
  unit ->
  schedule
(** A deterministic (given [rng]) schedule that crashes-and-restores
    [node_fraction] (default 0.2) of [nodes] and flaps [link_fraction]
    (default 0.2) of [links] inside the window
    [\[start, start + duration\]]. *)

(** {1 Inspection} *)

val sort : schedule -> schedule
(** Stable sort by offset. *)

val node_crashes : schedule -> int
(** Number of [Node_down] entries. *)

val link_downs : schedule -> int
(** Number of [Link_down] (or [Partition]) entries. *)

val involved_nodes : schedule -> int list
(** Sorted ids of every node any entry references. *)

val restrict : nodes:int list -> schedule -> schedule
(** Drop entries that reference nodes outside [nodes]; partitions are
    narrowed to the surviving members (and dropped when a side empties).
    Used by the triage minimizer so a pruned topology carries a pruned
    schedule instead of silently-skipped events. *)

val event_equal : event -> event -> bool
val entry_equal : entry -> entry -> bool

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> schedule -> unit

(** {1 Execution} *)

val apply : ?policy:Network.link_policy -> 'msg Network.t -> schedule -> Engine.timer list
(** Arm one engine timer per entry (offsets measured from "now").
    Events naming unknown nodes or channels are skipped silently, so a
    schedule can be generated from a topology superset.  Returns the
    timers so a caller may {!cancel} the remainder early. *)

val cancel : Engine.timer list -> unit
