(* Thin shim over the telemetry subsystem: counters stay local refs
   (they are per-component, single-domain), but distributions are
   [Telemetry.Histogram]s so there is exactly one quantile
   implementation in the tree. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  dists : (string, Telemetry.Histogram.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; dists = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let dist t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> d
  | None ->
      let d = Telemetry.Histogram.create name in
      Hashtbl.add t.dists name d;
      d

let observe t name v = Telemetry.Histogram.observe (dist t name) v

let count t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> Telemetry.Histogram.count d
  | None -> 0

let with_dist t name f =
  match Hashtbl.find_opt t.dists name with
  | Some d when Telemetry.Histogram.count d > 0 -> f d
  | Some _ | None -> nan

let mean t name = with_dist t name Telemetry.Histogram.mean
let min_value t name = with_dist t name Telemetry.Histogram.min_value
let max_value t name = with_dist t name Telemetry.Histogram.max_value
let percentile t name p = with_dist t name (fun d -> Telemetry.Histogram.percentile d p)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into ~dst src =
  Hashtbl.iter (fun k r -> add dst k !r) src.counters;
  Hashtbl.iter
    (fun k d -> List.iter (observe dst k) (Telemetry.Histogram.samples d))
    src.dists

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.dists

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%d@ " k v) (counters t)
