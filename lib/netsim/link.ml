type t = {
  latency : Time.span;
  jitter : Time.span;
  loss : float;
  retransmit : Time.span;
  max_retries : int;
}

let make ?(jitter = 0) ?(loss = 0.) ?(retransmit = Time.span_ms 300)
    ?(max_retries = 8) latency =
  if latency < 0 || jitter < 0 || retransmit < 0 then
    invalid_arg "Link.make: negative delay";
  if loss < 0. || loss >= 1. then invalid_arg "Link.make: loss must be in [0,1)";
  if max_retries < 0 then invalid_arg "Link.make: negative max_retries";
  { latency; jitter; loss; retransmit; max_retries }

let ideal = make (Time.span_ms 1)

let cap_hits = lazy (Telemetry.Metrics.counter "link.retransmit_cap_hits")

let delay t rng =
  let base = t.latency + (if t.jitter > 0 then Rng.int rng (t.jitter + 1) else 0) in
  (* Each lost transmission costs one retransmit timeout; bound the number
     of retries so a pathological RNG stream cannot stall the channel.
     Cap hits are counted so the loss-understatement bound documented in
     the interface is observable, not only derivable. *)
  let rec retries n acc =
    if t.loss <= 0. then acc
    else if n >= t.max_retries then begin
      Telemetry.Metrics.incr (Lazy.force cap_hits);
      acc
    end
    else if Rng.chance rng t.loss then retries (n + 1) (acc + t.retransmit)
    else acc
  in
  base + retries 0 0

let pp ppf t =
  Format.fprintf ppf "link(lat=%dus jit=%dus loss=%.2f)" t.latency t.jitter t.loss
