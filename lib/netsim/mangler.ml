type kind =
  | Bit_flip
  | Truncate
  | Corrupt_length
  | Corrupt_marker
  | Duplicate
  | Garbage_prepend
  | Garbage_append
  | Drop

let all_kinds =
  [ Bit_flip; Truncate; Corrupt_length; Corrupt_marker; Duplicate;
    Garbage_prepend; Garbage_append; Drop ]

let corpus_kinds =
  [ Bit_flip; Truncate; Corrupt_length; Corrupt_marker; Garbage_prepend;
    Garbage_append ]

let kind_name = function
  | Bit_flip -> "bit_flip"
  | Truncate -> "truncate"
  | Corrupt_length -> "corrupt_length"
  | Corrupt_marker -> "corrupt_marker"
  | Duplicate -> "duplicate"
  | Garbage_prepend -> "garbage_prepend"
  | Garbage_append -> "garbage_append"
  | Drop -> "drop"

let kind_of_string s =
  List.find_opt (fun k -> String.equal (kind_name k) s) all_kinds

(* BGP framing constants the targeted mutations aim at; [mutate] stays
   total on arbitrary strings regardless. *)
let marker_len = 16
let header_len = 19

let random_bytes rng n = String.init n (fun _ -> Char.chr (Rng.int rng 256))

let with_byte s i b =
  let bs = Bytes.of_string s in
  Bytes.set bs i (Char.chr b);
  Bytes.to_string bs

let mutate rng kind s =
  let len = String.length s in
  match kind with
  | Drop | Duplicate -> s
  | Bit_flip ->
      if len = 0 then random_bytes rng 1
      else
        let i = Rng.int rng len in
        with_byte s i (Char.code s.[i] lxor (1 lsl Rng.int rng 8))
  | Truncate ->
      (* Strictly shorter, so a framed message always loses bytes. *)
      if len = 0 then s else String.sub s 0 (Rng.int rng len)
  | Corrupt_length ->
      (* The BGP header length field lives at offsets 16-17; corrupt it
         (or the nearest thing to it on short inputs) to a value that
         disagrees with the real length. *)
      if len = 0 then random_bytes rng header_len
      else
        let i = if len > marker_len + 1 then marker_len + 1 else len - 1 in
        let forged = (Char.code s.[i] + 1 + Rng.int rng 255) land 0xFF in
        with_byte s i forged
  | Corrupt_marker ->
      (* Any non-0xFF byte in the first 16 positions breaks the marker. *)
      if len = 0 then random_bytes rng 1
      else
        let i = Rng.int rng (min marker_len len) in
        with_byte s i (Rng.int rng 0xFF)
  | Garbage_prepend -> random_bytes rng (1 + Rng.int rng 8) ^ s
  | Garbage_append -> s ^ random_bytes rng (1 + Rng.int rng 8)

(* ------------------------------------------------------------------ *)
(* Registry accounting                                                  *)
(* ------------------------------------------------------------------ *)

let c_passed = lazy (Telemetry.Metrics.counter "mangler.passed")
let c_mangled = lazy (Telemetry.Metrics.counter "mangler.mangled")
let c_dropped = lazy (Telemetry.Metrics.counter "mangler.dropped")
let c_duplicated = lazy (Telemetry.Metrics.counter "mangler.duplicated")

let c_kind k = lazy (Telemetry.Metrics.counter ("mangler.mangled." ^ kind_name k))

let kind_counters = List.map (fun k -> (k, c_kind k)) all_kinds

let bump_kind k =
  Telemetry.Metrics.incr (Lazy.force (List.assq k kind_counters))

let totals () =
  let v c = Telemetry.Metrics.value (Lazy.force c) in
  (v c_mangled, v c_dropped, v c_duplicated, v c_passed)

let kind_counts () =
  List.filter_map
    (fun (k, c) ->
      match Telemetry.Metrics.value (Lazy.force c) with
      | 0 -> None
      | n -> Some (kind_name k, n))
    kind_counters

(* ------------------------------------------------------------------ *)
(* The injector                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  m_seed : int;
  mutable m_rate : float;
  mutable m_kinds : kind array;
  mutable m_links : (int * int) list option;  (* None = every link *)
  (* One independent stream per directed link, so adding traffic on one
     link never perturbs the fault pattern of another. *)
  m_rngs : (int * int, Rng.t) Hashtbl.t;
}

let create ?(rate = 0.) ?(kinds = all_kinds) ?links ~seed () =
  if rate < 0. || rate > 1. then invalid_arg "Mangler.create: rate must be in [0,1]";
  if kinds = [] then invalid_arg "Mangler.create: empty kind list";
  { m_seed = seed; m_rate = rate; m_kinds = Array.of_list kinds;
    m_links = links; m_rngs = Hashtbl.create 64 }

let set_rate t rate =
  if rate < 0. || rate > 1. then invalid_arg "Mangler.set_rate: rate must be in [0,1]";
  t.m_rate <- rate

let rate t = t.m_rate

let set_kinds t kinds =
  if kinds = [] then invalid_arg "Mangler.set_kinds: empty kind list";
  t.m_kinds <- Array.of_list kinds

let set_links t links = t.m_links <- links

let rng_for t src dst =
  match Hashtbl.find_opt t.m_rngs (src, dst) with
  | Some rng -> rng
  | None ->
      let rng =
        Rng.create (t.m_seed lxor (src * 0x1000003) lxor (dst * 0x10000019))
      in
      Hashtbl.add t.m_rngs (src, dst) rng;
      rng

let targets t src dst =
  match t.m_links with
  | None -> true
  | Some links -> List.mem (src, dst) links

(* At rate 0 no RNG is consulted and every message passes untouched, so
   an installed-but-idle mangler leaves a run bit-identical to one with
   no mangler at all. *)
let transform t ~src ~dst msg =
  if t.m_rate <= 0. || not (targets t src dst) then [ msg ]
  else
    let rng = rng_for t src dst in
    if not (Rng.chance rng t.m_rate) then begin
      Telemetry.Metrics.incr (Lazy.force c_passed);
      [ msg ]
    end
    else begin
      let kind = t.m_kinds.(Rng.int rng (Array.length t.m_kinds)) in
      bump_kind kind;
      match kind with
      | Drop ->
          Telemetry.Metrics.incr (Lazy.force c_dropped);
          []
      | Duplicate ->
          Telemetry.Metrics.incr (Lazy.force c_duplicated);
          [ msg; msg ]
      | k ->
          Telemetry.Metrics.incr (Lazy.force c_mangled);
          [ mutate rng k msg ]
    end

let install t net = Network.set_transform net (Some (fun ~src ~dst m -> transform t ~src ~dst m))
let remove net = Network.set_transform net None

(* ------------------------------------------------------------------ *)
(* Declarative schedules, in the style of Churn                         *)
(* ------------------------------------------------------------------ *)

type event =
  | Set_rate of float
  | Set_kinds of kind list
  | Set_links of (int * int) list option

type entry = { at : Time.span; ev : event }
type schedule = entry list

let entry ~at ev = { at; ev }

let window ?kinds ~rate ~from_ ~until_ () =
  if until_ <= from_ then invalid_arg "Mangler.window: empty window";
  List.concat
    [ (match kinds with Some ks -> [ { at = from_; ev = Set_kinds ks } ] | None -> []);
      [ { at = from_; ev = Set_rate rate }; { at = until_; ev = Set_rate 0. } ] ]

let sort sched = List.stable_sort (fun x y -> Int.compare x.at y.at) sched

let events_applied = lazy (Telemetry.Metrics.counter "mangler.events_applied")

let apply_event t ev =
  Telemetry.Metrics.incr (Lazy.force events_applied);
  match ev with
  | Set_rate r -> set_rate t r
  | Set_kinds ks -> set_kinds t ks
  | Set_links ls -> set_links t ls

let apply t net sched =
  let eng = Network.engine net in
  List.map
    (fun { at; ev } -> Engine.schedule eng ~after:at (fun () -> apply_event t ev))
    (sort sched)

let cancel timers = List.iter Engine.cancel timers

let pp_event ppf = function
  | Set_rate r -> Format.fprintf ppf "mangle rate -> %.3f" r
  | Set_kinds ks ->
      Format.fprintf ppf "kinds -> {%s}" (String.concat "," (List.map kind_name ks))
  | Set_links None -> Format.fprintf ppf "links -> all"
  | Set_links (Some ls) ->
      Format.fprintf ppf "links -> {%s}"
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) ls))

let pp ppf sched =
  List.iter
    (fun { at; ev } ->
      Format.fprintf ppf "  t+%.1fs %a@." (float_of_int at /. 1e6) pp_event ev)
    sched
