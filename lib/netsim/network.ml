type control = Marker of { snapshot : int; initiator : int }

type 'msg envelope = Data of 'msg | Control of control

type link_policy = Drop_while_down | Queue_while_down

type crash_policy = Propagate | Absorb of { restart_after : Time.span option }

type crash = {
  cr_node : int;
  cr_src : int;
  cr_at : Time.t;
  cr_exn : string;
}

type 'msg channel = {
  link : Link.t;
  chan_rng : Rng.t;
  mutable last_delivery : Time.t;  (* FIFO floor for the next delivery *)
  mutable ch_up : bool;
  mutable ch_policy : link_policy;
  (* Envelopes held back while the link is down under [Queue_while_down],
     oldest first. *)
  mutable ch_held : 'msg envelope list;
  mutable ch_down_since : Time.t option;
}

type 'msg node = {
  mutable handler : src:int -> 'msg -> unit;
  mutable nd_up : bool;
  mutable nd_down_since : Time.t option;
}

(* Global (registry) accounting, created only for labeled networks so
   the live deployment's traffic is not polluted by the thousands of
   shadow clones the explorer spawns. *)
type net_metrics = {
  nm_sent : Telemetry.Metrics.counter;
  nm_delivered : Telemetry.Metrics.counter;
  nm_dropped : Telemetry.Metrics.counter;
  nm_node_downs : Telemetry.Metrics.counter;
  nm_link_downs : Telemetry.Metrics.counter;
  nm_handler_crashes : Telemetry.Metrics.counter;
  nm_node_downtime : Telemetry.Histogram.t;
  nm_link_downtime : Telemetry.Histogram.t;
}

(* Decades of microseconds: 1ms .. 1000s, apt for simulated outages. *)
let downtime_buckets = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let net_metrics label =
  let name suffix = Printf.sprintf "net.%s.%s" label suffix in
  { nm_sent = Telemetry.Metrics.counter (name "sent");
    nm_delivered = Telemetry.Metrics.counter (name "delivered");
    nm_dropped = Telemetry.Metrics.counter (name "dropped");
    nm_node_downs = Telemetry.Metrics.counter (name "node_downs");
    nm_link_downs = Telemetry.Metrics.counter (name "link_downs");
    nm_handler_crashes = Telemetry.Metrics.counter (name "handler_crashes");
    nm_node_downtime =
      Telemetry.Metrics.histogram ~buckets:downtime_buckets (name "node_downtime_us");
    nm_link_downtime =
      Telemetry.Metrics.histogram ~buckets:downtime_buckets (name "link_downtime_us") }

type 'msg t = {
  eng : Engine.t;
  tr : Trace.t option;
  metrics : net_metrics option;
  node_tbl : (int, 'msg node) Hashtbl.t;
  chan_tbl : (int * int, 'msg channel) Hashtbl.t;
  net_rng : Rng.t;
  mutable control_handler : self:int -> src:int -> control -> unit;
  mutable tap : (dst:int -> src:int -> 'msg -> unit) option;
  mutable transform : (src:int -> dst:int -> 'msg -> 'msg list) option;
  mutable crash_policy : crash_policy;
  mutable crash_log : crash list;  (* newest first *)
  mutable sent : int;
  mutable delivered : int;
  mutable flying : int;
  mutable dropped : int;
}

let create ?trace ?label eng =
  {
    eng;
    tr = trace;
    metrics = Option.map net_metrics label;
    node_tbl = Hashtbl.create 64;
    chan_tbl = Hashtbl.create 256;
    net_rng = Rng.split (Engine.rng eng);
    control_handler = (fun ~self:_ ~src:_ _ -> ());
    tap = None;
    transform = None;
    crash_policy = Propagate;
    crash_log = [];
    sent = 0;
    delivered = 0;
    flying = 0;
    dropped = 0;
  }

let engine t = t.eng
let trace t = t.tr

let bump t f = match t.metrics with Some m -> f m | None -> ()

let add_node t id handler =
  if Hashtbl.mem t.node_tbl id then
    invalid_arg (Printf.sprintf "Network.add_node: node %d exists" id);
  Hashtbl.add t.node_tbl id { handler; nd_up = true; nd_down_since = None }

let set_handler t id handler =
  match Hashtbl.find_opt t.node_tbl id with
  | Some n -> n.handler <- handler
  | None -> invalid_arg (Printf.sprintf "Network.set_handler: no node %d" id)

let connect t a b link =
  if not (Hashtbl.mem t.node_tbl a) then
    invalid_arg (Printf.sprintf "Network.connect: no node %d" a);
  if not (Hashtbl.mem t.node_tbl b) then
    invalid_arg (Printf.sprintf "Network.connect: no node %d" b);
  if Hashtbl.mem t.chan_tbl (a, b) then
    invalid_arg (Printf.sprintf "Network.connect: channel %d->%d exists" a b);
  Hashtbl.add t.chan_tbl (a, b)
    { link; chan_rng = Rng.split t.net_rng; last_delivery = Time.zero;
      ch_up = true; ch_policy = Drop_while_down; ch_held = [];
      ch_down_since = None }

let connect_sym t a b link =
  connect t a b link;
  connect t b a link

let emit ?level t ~node ~kind detail =
  match t.tr with
  | Some tr -> Trace.emit ?level tr ~at:(Engine.now t.eng) ~node ~kind detail
  | None -> ()

(* Per-message events are chatty; the thunk keeps the sprintf off the
   hot path when the trace is filtered and no telemetry sink is up. *)
let emit_lazy ?level t ~node ~kind f =
  match t.tr with
  | Some tr -> Trace.emit_lazy ?level tr ~at:(Engine.now t.eng) ~node ~kind f
  | None -> ()

let downtime_us t since =
  Time.to_us (Engine.now t.eng) - Time.to_us since

(* ------------------------------------------------------------------ *)
(* Failure state                                                       *)
(* ------------------------------------------------------------------ *)

let node_of t id =
  match Hashtbl.find_opt t.node_tbl id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Network: no node %d" id)

let chan_of t a b =
  match Hashtbl.find_opt t.chan_tbl (a, b) with
  | Some ch -> ch
  | None -> invalid_arg (Printf.sprintf "Network: no channel %d->%d" a b)

let node_is_up t id = (node_of t id).nd_up
let link_is_up t a b = (chan_of t a b).ch_up

let set_node_down t id =
  let n = node_of t id in
  if n.nd_up then begin
    n.nd_up <- false;
    n.nd_down_since <- Some (Engine.now t.eng);
    bump t (fun m -> Telemetry.Metrics.incr m.nm_node_downs);
    emit t ~node:id ~kind:"churn" "node down"
  end

let set_node_up t id =
  let n = node_of t id in
  if not n.nd_up then begin
    n.nd_up <- true;
    (match n.nd_down_since with
    | Some since ->
        n.nd_down_since <- None;
        bump t (fun m ->
            Telemetry.Histogram.observe m.nm_node_downtime
              (float_of_int (downtime_us t since)))
    | None -> ());
    emit t ~node:id ~kind:"churn" "node up"
  end

let drop t ~src env =
  t.dropped <- t.dropped + 1;
  bump t (fun m -> Telemetry.Metrics.incr m.nm_dropped);
  match env with
  | Data _ -> emit t ~node:src ~kind:"drop" "message lost to churn"
  | Control _ -> emit t ~node:src ~kind:"drop" "marker lost to churn"

let deliver t ~src ~dst env =
  t.flying <- t.flying - 1;
  let ch = chan_of t src dst in
  let dst_node = node_of t dst in
  if not dst_node.nd_up then drop t ~src env
  else if not ch.ch_up then
    (* The link failed while the message was in flight. *)
    (match ch.ch_policy with
    | Drop_while_down -> drop t ~src env
    | Queue_while_down -> ch.ch_held <- ch.ch_held @ [ env ])
  else
    match env with
    | Control c -> t.control_handler ~self:dst ~src c
    | Data m -> (
        t.delivered <- t.delivered + 1;
        bump t (fun mt -> Telemetry.Metrics.incr mt.nm_delivered);
        (match t.tap with Some f -> f ~dst ~src m | None -> ());
        emit_lazy ~level:Trace.Debug t ~node:dst ~kind:"deliver" (fun () ->
            Printf.sprintf "from %d" src);
        match t.crash_policy with
        | Propagate -> dst_node.handler ~src m
        | Absorb { restart_after } -> (
            try dst_node.handler ~src m with
            | (Stack_overflow | Out_of_memory) as e -> raise e
            | e ->
                (* The node died processing input: record it as a
                   first-class event, take the node down (its timers
                   keep firing but it is silent, like a crashed
                   process), and optionally respawn it. *)
                let detail = Printexc.to_string e in
                t.crash_log <-
                  { cr_node = dst; cr_src = src; cr_at = Engine.now t.eng;
                    cr_exn = detail }
                  :: t.crash_log;
                bump t (fun mt -> Telemetry.Metrics.incr mt.nm_handler_crashes);
                emit t ~node:dst ~kind:"crash"
                  (Printf.sprintf "handler died on message from %d: %s" src detail);
                set_node_down t dst;
                match restart_after with
                | Some d ->
                    ignore (Engine.schedule t.eng ~after:d (fun () -> set_node_up t dst))
                | None -> ()))

let schedule_delivery t ~src ~dst ch env =
  let now = Engine.now t.eng in
  let arrival = Time.add now (Link.delay ch.link ch.chan_rng) in
  (* Clamp to the previous delivery instant to preserve FIFO order. *)
  let arrival =
    if Time.(arrival < ch.last_delivery) then ch.last_delivery else arrival
  in
  ch.last_delivery <- arrival;
  t.flying <- t.flying + 1;
  ignore (Engine.at t.eng arrival (fun () -> deliver t ~src ~dst env))

let transmit t ~src ~dst env =
  match Hashtbl.find_opt t.chan_tbl (src, dst) with
  | None -> invalid_arg (Printf.sprintf "Network.send: no channel %d->%d" src dst)
  | Some ch ->
      (* A down node is silent: its timers may still fire, but nothing it
         tries to send reaches the wire. *)
      if not (node_of t src).nd_up then drop t ~src env
      else if not ch.ch_up then
        (match ch.ch_policy with
        | Drop_while_down -> drop t ~src env
        | Queue_while_down ->
            (* Ride the normal delay path; [deliver] holds the envelope
               at arrival, so the held queue is in arrival order and FIFO
               survives messages already in flight when the link failed. *)
            schedule_delivery t ~src ~dst ch env)
      else schedule_delivery t ~src ~dst ch env

let set_link_down ?(policy = Drop_while_down) t a b =
  let ch = chan_of t a b in
  ch.ch_policy <- policy;
  if ch.ch_up then begin
    ch.ch_up <- false;
    ch.ch_down_since <- Some (Engine.now t.eng);
    bump t (fun m -> Telemetry.Metrics.incr m.nm_link_downs);
    emit_lazy t ~node:a ~kind:"churn" (fun () ->
        Printf.sprintf "link %d->%d down" a b)
  end

let set_link_up t a b =
  let ch = chan_of t a b in
  if not ch.ch_up then begin
    ch.ch_up <- true;
    (match ch.ch_down_since with
    | Some since ->
        ch.ch_down_since <- None;
        bump t (fun m ->
            Telemetry.Histogram.observe m.nm_link_downtime
              (float_of_int (downtime_us t since)))
    | None -> ());
    emit_lazy t ~node:a ~kind:"churn" (fun () ->
        Printf.sprintf "link %d->%d up" a b);
    (* Release held-back traffic in arrival order through the normal
       delay path; the FIFO floor keeps the order intact. *)
    let held = ch.ch_held in
    ch.ch_held <- [];
    List.iter (fun env -> schedule_delivery t ~src:a ~dst:b ch env) held
  end

let set_link_down_sym ?policy t a b =
  set_link_down ?policy t a b;
  set_link_down ?policy t b a

let set_link_up_sym t a b =
  set_link_up t a b;
  set_link_up t b a

let partition ?policy t xs ys =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Hashtbl.mem t.chan_tbl (a, b) then set_link_down ?policy t a b;
          if Hashtbl.mem t.chan_tbl (b, a) then set_link_down ?policy t b a)
        ys)
    xs

let heal t =
  (* [set_link_up] only mutates channel records, never the table
     structure, so iterating directly is safe. *)
  Hashtbl.iter (fun (a, b) ch -> if not ch.ch_up then set_link_up t a b) t.chan_tbl

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  bump t (fun m -> Telemetry.Metrics.incr m.nm_sent);
  emit_lazy ~level:Trace.Debug t ~node:src ~kind:"send" (fun () ->
      Printf.sprintf "to %d" dst);
  (* The wire transform only sees application data — control markers
     belong to the snapshot algorithm and must stay intact. *)
  match t.transform with
  | None -> transmit t ~src ~dst (Data msg)
  | Some f -> List.iter (fun m -> transmit t ~src ~dst (Data m)) (f ~src ~dst msg)

let send_control t ~src ~dst c = transmit t ~src ~dst (Control c)

let set_control_handler t f = t.control_handler <- f
let set_delivery_tap t tap = t.tap <- tap
let set_transform t f = t.transform <- f
let set_crash_policy t p = t.crash_policy <- p
let crash_policy t = t.crash_policy
let crashes t = List.rev t.crash_log

let nodes t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.node_tbl [] |> List.sort Int.compare

let has_node t id = Hashtbl.mem t.node_tbl id

let neighbors_out t id =
  Hashtbl.fold (fun (a, b) _ acc -> if a = id then b :: acc else acc) t.chan_tbl []
  |> List.sort Int.compare

let neighbors_in t id =
  Hashtbl.fold (fun (a, b) _ acc -> if b = id then a :: acc else acc) t.chan_tbl []
  |> List.sort Int.compare

let channels t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.chan_tbl [] |> List.sort compare

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let in_flight t = t.flying
let messages_dropped t = t.dropped
