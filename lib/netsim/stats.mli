(** Counters and simple distributions for experiment reporting. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 for a counter never touched. *)

val observe : t -> string -> float -> unit
(** Record one sample of the named distribution. *)

val count : t -> string -> int
val mean : t -> string -> float
val min_value : t -> string -> float
val max_value : t -> string -> float
val percentile : t -> string -> float -> float
(** [percentile t name 0.99]; nearest-rank on the recorded samples,
    delegated to {!Telemetry.Histogram.percentile} (one quantile
    implementation in the tree): [p = 0.] is exactly the minimum,
    [p = 1.] exactly the maximum.  Distribution queries return [nan]
    when no sample was recorded — test with [Float.is_nan].
    @raise Invalid_argument if [p] is outside [\[0, 1\]] or NaN (and
    samples exist). *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val merge_into : dst:t -> t -> unit
val clear : t -> unit
val pp : Format.formatter -> t -> unit
