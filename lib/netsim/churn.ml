type event =
  | Node_down of int
  | Node_up of int
  | Link_down of int * int
  | Link_up of int * int
  | Partition of int list * int list
  | Heal

type entry = { at : Time.span; ev : event }
type schedule = entry list

let entry ~at ev = { at; ev }

let crash ?restore_after ~node ~at () =
  let down = { at; ev = Node_down node } in
  match restore_after with
  | None -> [ down ]
  | Some d -> [ down; { at = at + d; ev = Node_up node } ]

let flap ~a ~b ~from_ ~every ~down_for ~times =
  if times < 0 then invalid_arg "Churn.flap: negative times";
  if down_for >= every then invalid_arg "Churn.flap: down_for must be < every";
  List.concat
    (List.init times (fun i ->
         let t0 = from_ + (i * every) in
         [ { at = t0; ev = Link_down (a, b) };
           { at = t0 + down_for; ev = Link_up (a, b) } ]))

let sort sched =
  (* Stable: simultaneous events keep their declaration order. *)
  List.stable_sort (fun x y -> Int.compare x.at y.at) sched

let random ~rng ~nodes ~links ~start ~duration ?(node_fraction = 0.2)
    ?(link_fraction = 0.2) () =
  if duration <= 0 then invalid_arg "Churn.random: non-positive duration";
  let pick_count frac n =
    let c = int_of_float (ceil (frac *. float_of_int n)) in
    min n (max 0 c)
  in
  let shuffle l =
    (* Deterministic Fisher-Yates driven by [rng]. *)
    let a = Array.of_list l in
    for i = Array.length a - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.to_list a
  in
  let victims = ref [] in
  let n_nodes = pick_count node_fraction (List.length nodes) in
  let chosen_nodes =
    match shuffle nodes with l -> List.filteri (fun i _ -> i < n_nodes) l
  in
  List.iter
    (fun node ->
      let at = start + Rng.int rng (duration / 2) in
      let restore_after = (duration / 4) + Rng.int rng (max 1 (duration / 4)) in
      victims := !victims @ crash ~node ~at ~restore_after ())
    chosen_nodes;
  let n_links = pick_count link_fraction (List.length links) in
  let chosen_links =
    match shuffle links with l -> List.filteri (fun i _ -> i < n_links) l
  in
  List.iter
    (fun (a, b) ->
      let every = max 2 (duration / 3) in
      let down_for = max 1 (every / 3) in
      let from_ = start + Rng.int rng (max 1 (duration / 3)) in
      victims := !victims @ flap ~a ~b ~from_ ~every ~down_for ~times:2)
    chosen_links;
  sort !victims

let node_crashes sched =
  List.length (List.filter (fun e -> match e.ev with Node_down _ -> true | _ -> false) sched)

let link_downs sched =
  List.length
    (List.filter
       (fun e ->
         match e.ev with Link_down _ | Partition _ -> true | _ -> false)
       sched)

let event_nodes = function
  | Node_down n | Node_up n -> [ n ]
  | Link_down (a, b) | Link_up (a, b) -> [ a; b ]
  | Partition (xs, ys) -> xs @ ys
  | Heal -> []

let involved_nodes sched =
  List.sort_uniq Int.compare (List.concat_map (fun e -> event_nodes e.ev) sched)

let restrict ~nodes sched =
  let keep n = List.mem n nodes in
  List.filter_map
    (fun e ->
      match e.ev with
      | Node_down n | Node_up n -> if keep n then Some e else None
      | Link_down (a, b) | Link_up (a, b) ->
          if keep a && keep b then Some e else None
      | Partition (xs, ys) -> (
          (* A partition survives pruning as the partition of whatever
             remains on each side; one empty side means no cut at all. *)
          match (List.filter keep xs, List.filter keep ys) with
          | [], _ | _, [] -> None
          | xs', ys' -> Some { e with ev = Partition (xs', ys') })
      | Heal -> Some e)
    sched

let event_equal a b =
  match (a, b) with
  | Partition (xs, ys), Partition (xs', ys') ->
      List.equal Int.equal xs xs' && List.equal Int.equal ys ys'
  | _ -> a = b

let entry_equal a b = a.at = b.at && event_equal a.ev b.ev

let pp_event ppf = function
  | Node_down n -> Format.fprintf ppf "node %d down" n
  | Node_up n -> Format.fprintf ppf "node %d up" n
  | Link_down (a, b) -> Format.fprintf ppf "link %d<->%d down" a b
  | Link_up (a, b) -> Format.fprintf ppf "link %d<->%d up" a b
  | Partition (xs, ys) ->
      Format.fprintf ppf "partition {%s} | {%s}"
        (String.concat "," (List.map string_of_int xs))
        (String.concat "," (List.map string_of_int ys))
  | Heal -> Format.fprintf ppf "heal"

let pp ppf sched =
  List.iter
    (fun { at; ev } -> Format.fprintf ppf "  t+%.1fs %a@." (float_of_int at /. 1e6) pp_event ev)
    sched

let events_applied = lazy (Telemetry.Metrics.counter "churn.events_applied")

let event_kind = function
  | Node_down _ -> "churn.node-down"
  | Node_up _ -> "churn.node-up"
  | Link_down _ -> "churn.link-down"
  | Link_up _ -> "churn.link-up"
  | Partition _ -> "churn.partition"
  | Heal -> "churn.heal"

let apply_event ?policy net ev =
  Telemetry.Metrics.incr (Lazy.force events_applied);
  Telemetry.sys_event ~kind:(event_kind ev) ~nodes:(event_nodes ev)
    ~detail:(Format.asprintf "%a" pp_event ev) ();
  match ev with
  | Node_down n -> if Network.has_node net n then Network.set_node_down net n
  | Node_up n -> if Network.has_node net n then Network.set_node_up net n
  | Link_down (a, b) ->
      if Network.has_node net a && Network.has_node net b then begin
        (* Link events are symmetric: physical failures take out both
           directions of the adjacency. *)
        (try Network.set_link_down ?policy net a b with Invalid_argument _ -> ());
        try Network.set_link_down ?policy net b a with Invalid_argument _ -> ()
      end
  | Link_up (a, b) ->
      if Network.has_node net a && Network.has_node net b then begin
        (try Network.set_link_up net a b with Invalid_argument _ -> ());
        try Network.set_link_up net b a with Invalid_argument _ -> ()
      end
  | Partition (xs, ys) -> Network.partition ?policy net xs ys
  | Heal -> Network.heal net

let apply ?policy net sched =
  let eng = Network.engine net in
  List.map
    (fun { at; ev } ->
      Engine.schedule eng ~after:at (fun () -> apply_event ?policy net ev))
    (sort sched)

let cancel timers = List.iter Engine.cancel timers
