(** Adversarial wire-fault injection.

    A mangler corrupts byte-string messages on their way through
    {!Network.send}: per delivery, with probability [rate], one fault
    [kind] is drawn and applied.  Everything is driven by deterministic
    per-link RNG streams split from a single seed, so a given
    [(seed, rate, kinds)] configuration injects the identical fault
    pattern on every run — adversarial runs are replayable.

    {b Identity guarantee.} At [rate = 0] the transform consults no RNG
    and passes every message through untouched: a run with an idle
    mangler installed is bit-identical to a run without one.

    Faults are byte-level and protocol-agnostic, but three kinds
    ([Truncate], [Corrupt_length], [Corrupt_marker]) are aimed at BGP
    framing (RFC 4271 header: 16-byte marker, 2-byte length) so they
    reliably exercise the codec's error paths.  Control markers (the
    snapshot algorithm's traffic) are never touched — see
    {!Network.set_transform}.

    Registry counters: [mangler.mangled] / [mangler.dropped] /
    [mangler.duplicated] / [mangler.passed], plus per-kind
    [mangler.mangled.<kind>]. *)

type kind =
  | Bit_flip  (** flip one random bit *)
  | Truncate  (** cut to a strictly shorter prefix *)
  | Corrupt_length  (** forge the header length field *)
  | Corrupt_marker  (** overwrite a marker byte with non-0xFF *)
  | Duplicate  (** deliver the message twice *)
  | Garbage_prepend  (** 1-8 random bytes before the message *)
  | Garbage_append  (** 1-8 random bytes after the message *)
  | Drop  (** silently discard *)

val all_kinds : kind list

val corpus_kinds : kind list
(** The kinds that produce a mutated byte string (everything except
    [Duplicate] and [Drop]) — the corpus for fuzzing and for the
    explorer's mangled exploration seeds. *)

val kind_name : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_name} — lets schedules round-trip through the
    triage corpus' JSON form. *)

val mutate : Rng.t -> kind -> string -> string
(** [mutate rng kind s] is one byte-level mutation of [s].  Total on
    any string including the empty one; [Duplicate] and [Drop] return
    [s] unchanged (they are delivery-level, not byte-level, faults).
    [Truncate] and [Corrupt_marker] guarantee the result is not a valid
    framed BGP message. *)

type t

val create :
  ?rate:float -> ?kinds:kind list -> ?links:(int * int) list -> seed:int -> unit -> t
(** [create ~seed ()] — defaults: [rate = 0.], all kinds, every link.
    [links] restricts injection to the given directed channels.
    @raise Invalid_argument if [rate] is outside [0,1] or [kinds] is
    empty. *)

val install : t -> string Network.t -> unit
(** Install as the network's wire transform (replacing any previous
    transform). *)

val remove : string Network.t -> unit
(** Clear the network's wire transform. *)

val transform : t -> src:int -> dst:int -> string -> string list
(** The raw transform, exposed for tests. *)

val set_rate : t -> float -> unit
val rate : t -> float
val set_kinds : t -> kind list -> unit
val set_links : t -> (int * int) list option -> unit

val totals : unit -> int * int * int * int
(** [(mangled, dropped, duplicated, passed)] from the registry. *)

val kind_counts : unit -> (string * int) list
(** Per-kind mangle counts, zero entries omitted. *)

(** {1 Declarative schedules}

    Same shape as {!Churn}: a sorted list of timed events armed on the
    network's engine. *)

type event =
  | Set_rate of float
  | Set_kinds of kind list
  | Set_links of (int * int) list option

type entry = { at : Time.span; ev : event }
type schedule = entry list

val entry : at:Time.span -> event -> entry

val window :
  ?kinds:kind list -> rate:float -> from_:Time.span -> until_:Time.span -> unit -> schedule
(** Mangle at [rate] (optionally restricted to [kinds]) between [from_]
    and [until_], then fall back to silence. *)

val apply : t -> 'msg Network.t -> schedule -> Engine.timer list
(** Arm the schedule on the network's engine; returns the timers for
    {!cancel}. *)

val cancel : Engine.timer list -> unit

val pp : Format.formatter -> schedule -> unit
