(** Message-passing network over the event engine.

    Nodes are integers; channels are directed and FIFO, and — on a
    healthy substrate — reliable.  The network is polymorphic in the
    application message type.

    Two hooks exist for the snapshot subsystem:
    - control messages ([Marker]) travel on the same FIFO channels as
      data but are delivered to the control handler instead of the node;
    - a delivery tap observes every data message just before it reaches
      its destination handler (used to record in-flight messages).

    {b Churn.} Deployed systems are not always healthy: nodes and links
    can be taken down and restored at runtime ({!set_node_down},
    {!set_link_down}, {!partition}).  A down node neither receives nor
    sends — deliveries to it are dropped and anything its (still
    firing) timers try to transmit is silenced.  A down link either
    drops traffic or holds it back for redelivery on recovery,
    according to its {!link_policy}.  Dropped messages are counted in
    {!messages_dropped}.  See {!Churn} for declarative failure
    schedules driven by engine timers. *)

type control = Marker of { snapshot : int; initiator : int }

type link_policy =
  | Drop_while_down  (** traffic on a down link is lost (default) *)
  | Queue_while_down
      (** traffic is held back and redelivered, in order, when the link
          comes back up *)

(** What happens when a destination handler raises during delivery. *)
type crash_policy =
  | Propagate
      (** the exception escapes through the engine to the caller
          (default — a handler bug aborts the simulation run) *)
  | Absorb of { restart_after : Time.span option }
      (** the exception is caught: the crash is recorded (see
          {!crashes}), the node is taken down as if it had churned, and
          — when [restart_after] is set — brought back up that much
          later.  [Stack_overflow] and [Out_of_memory] always
          propagate. *)

(** One absorbed handler death. *)
type crash = {
  cr_node : int;  (** the node whose handler raised *)
  cr_src : int;  (** sender of the fatal message *)
  cr_at : Time.t;
  cr_exn : string;  (** [Printexc.to_string] of the exception *)
}

type 'msg t

(** [create ?trace ?label eng] builds an empty network.
    [label] opts this network into the global telemetry registry:
    counters [net.<label>.sent/delivered/dropped/node_downs/link_downs]
    and downtime histograms [net.<label>.node_downtime_us] /
    [net.<label>.link_downtime_us].  Leave it unset for throwaway
    networks (shadow replays) so they do not pollute the live run's
    accounting. *)
val create : ?trace:Trace.t -> ?label:string -> Engine.t -> 'msg t
val engine : 'msg t -> Engine.t
val trace : 'msg t -> Trace.t option

val add_node : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** @raise Invalid_argument if the node already exists. *)

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Replace an existing node's message handler. *)

val connect : 'msg t -> int -> int -> Link.t -> unit
(** [connect t a b link] creates the directed channel [a -> b].
    @raise Invalid_argument if either endpoint is unknown or the channel
    exists. *)

val connect_sym : 'msg t -> int -> int -> Link.t -> unit
(** Both directions with the same link model. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** @raise Invalid_argument if the channel does not exist. *)

val send_control : 'msg t -> src:int -> dst:int -> control -> unit

val set_control_handler : 'msg t -> (self:int -> src:int -> control -> unit) -> unit
val set_delivery_tap : 'msg t -> (dst:int -> src:int -> 'msg -> unit) option -> unit

val set_transform : 'msg t -> (src:int -> dst:int -> 'msg -> 'msg list) option -> unit
(** Install (or clear) a wire transform applied by {!send} before a
    data message enters the channel: the message is replaced by the
    returned list — [[]] drops it, two elements duplicate it, and a
    mutated singleton corrupts it.  Control markers are never
    transformed.  See {!Mangler} for a declarative, deterministically
    seeded fault-injection transform. *)

val set_crash_policy : 'msg t -> crash_policy -> unit
(** Default {!Propagate}. *)

val crash_policy : 'msg t -> crash_policy

val crashes : 'msg t -> crash list
(** Handler deaths absorbed so far, oldest first. *)

(** {1 Failure injection} *)

val set_node_down : 'msg t -> int -> unit
(** Crash a node: deliveries to it are dropped (data {e and} control
    markers), and nothing it transmits reaches the wire.  Idempotent.
    @raise Invalid_argument on an unknown node. *)

val set_node_up : 'msg t -> int -> unit
(** Restore a crashed node.  Sessions re-establish through the
    application layer's own timers; the network does not replay
    anything dropped while the node was down. *)

val node_is_up : 'msg t -> int -> bool

val set_link_down : ?policy:link_policy -> 'msg t -> int -> int -> unit
(** Take the directed channel [a -> b] down.  [policy] (default
    [Drop_while_down]) governs both new transmissions and messages
    already in flight when they reach their delivery instant.
    @raise Invalid_argument on an unknown channel. *)

val set_link_up : 'msg t -> int -> int -> unit
(** Restore a link; under [Queue_while_down] the held-back messages are
    redelivered in their original order. *)

val set_link_down_sym : ?policy:link_policy -> 'msg t -> int -> int -> unit
val set_link_up_sym : 'msg t -> int -> int -> unit

val link_is_up : 'msg t -> int -> int -> bool

val partition : ?policy:link_policy -> 'msg t -> int list -> int list -> unit
(** [partition t xs ys] takes down every channel (in both directions)
    between a node of [xs] and a node of [ys].  Pairs with no channel
    are skipped. *)

val heal : 'msg t -> unit
(** Bring every down link (not node) back up. *)

(** {1 Introspection} *)

val nodes : 'msg t -> int list
(** Sorted. *)

val has_node : 'msg t -> int -> bool
val neighbors_out : 'msg t -> int -> int list
val neighbors_in : 'msg t -> int -> int list
val channels : 'msg t -> (int * int) list

val messages_sent : 'msg t -> int
(** Data messages ever submitted to [send]. *)

val messages_delivered : 'msg t -> int
val in_flight : 'msg t -> int

val messages_dropped : 'msg t -> int
(** Data and control messages lost to down nodes or down links. *)
