(** Imperative stable priority queue.

    A ring buffer absorbs the common monotone case — pushes at or
    after the current tail priority — in O(1); everything else goes to
    a pairing heap of same-priority *batches* (values pushed
    back-to-back at one priority share a heap node and value array,
    recycled through a free list), so bursts of same-timestamp events
    cost near-zero allocation.  Entries with equal priority dequeue in
    insertion order (stability) without per-entry sequence numbers —
    the dispatch rule makes ring entries provably older than any
    equal-priority heap batch — which keeps the discrete-event engine
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> prio:int -> 'a -> unit
(** Lower [prio] dequeues first. *)

val min_prio : 'a t -> int
(** Priority of the next entry to dequeue, without allocating.
    @raise Invalid_argument on an empty queue. *)

val pop_value : 'a t -> 'a
(** Removes and returns the minimum entry, without allocating.
    @raise Invalid_argument on an empty queue. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum entry as [(prio, value)]. *)

val peek_prio : 'a t -> int option
val clear : 'a t -> unit
