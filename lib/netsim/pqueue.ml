(* Two cooperating structures behind one queue:

   - A *monotone tail ring*: pushes whose priority is >= every priority
     already in the ring append to a circular array.  Discrete-event
     engines schedule overwhelmingly into the future, so the common
     case is two array stores per push and two loads per pop — no
     allocation, no pointer chasing.

   - A pairing heap of *batches* for out-of-order pushes: runs of
     values pushed at the same priority share one heap node and one
     value array, so a burst of same-timestamp events costs one meld
     and (amortized) zero allocations.  Exhausted batch records —
     array included — go on a small free list and are reused by later
     pushes, arena-style.

   Stability is by construction rather than by per-value sequence
   numbers.  The dispatch rule is: append to the ring when the ring is
   non-empty and [prio >= ring-last] — or when the whole queue is
   empty; push to the heap otherwise.  In particular, once the ring
   drains while the heap still holds values, everything goes to the
   heap until the heap drains too.  Two consequences:

   - Ring priorities are non-decreasing from head to tail, and any
     ring entry pushed *after* a heap batch was created has a strictly
     greater priority than that batch (the batch's priority was below
     the ring tail at creation, and the tail only grows while the ring
     is non-empty).  So when the ring head and the heap root tie on
     priority, the ring entry is necessarily the older one: ties
     always dequeue from the ring.

   - A same-priority ring append while a batch is live is impossible
     for the same reason, so a batch only ever receives appends while
     it is the most recent heap insertion ([last]) and its values form
     one contiguous run.  Batches carry a creation stamp to order
     equal-priority batches among themselves.

   Popped ring slots and recycled batch arrays keep stale references
   to their values until overwritten by a later push; both are capped,
   so the retention is bounded and short-lived in a running engine. *)

type 'a batch = {
  mutable prio : int;
  mutable stamp : int;  (* creation order among batches *)
  mutable values : 'a array;
  mutable head : int;  (* next slot to pop *)
  mutable count : int;  (* slots filled *)
  mutable children : 'a batch list;
}

type 'a t = {
  (* batched pairing heap *)
  mutable root : 'a batch;  (* meaningful iff [heap_n > 0] *)
  mutable heap_n : int;  (* values in the heap *)
  mutable last : 'a batch;  (* append target; [sentinel] when invalid *)
  mutable free : 'a batch list;
  mutable free_n : int;
  mutable next_stamp : int;
  sentinel : 'a batch;
  (* monotone tail ring; capacity is a power of two *)
  mutable r_val : 'a array;
  mutable r_prio : int array;
  mutable r_head : int;
  mutable r_len : int;
}

let max_free = 32

let create () =
  let sentinel =
    { prio = 0; stamp = 0; values = [||]; head = 0; count = 0; children = [] }
  in
  { root = sentinel; heap_n = 0; last = sentinel; free = []; free_n = 0;
    next_stamp = 0; sentinel; r_val = [||]; r_prio = [||]; r_head = 0;
    r_len = 0 }

let length t = t.heap_n + t.r_len
let is_empty t = t.heap_n = 0 && t.r_len = 0

(* --- heap side --- *)

let before a b = a.prio < b.prio || (a.prio = b.prio && a.stamp < b.stamp)

let meld a b =
  if before a b then begin
    a.children <- b :: a.children;
    a
  end
  else begin
    b.children <- a :: b.children;
    b
  end

(* Two-pass pairing over a non-empty child list: meld adjacent pairs
   left-to-right, then fold right-to-left.  No [option] wrapping on the
   hot path. *)
let rec merge_pairs = function
  | [ x ] -> x
  | a :: b :: rest -> (
      let ab = meld a b in
      match rest with [] -> ab | rest -> meld ab (merge_pairs rest))
  | [] -> assert false

let append b v =
  let n = b.count in
  let cap = Array.length b.values in
  if n = cap then begin
    let values = Array.make (if cap = 0 then 4 else 2 * cap) v in
    Array.blit b.values 0 values 0 n;
    b.values <- values
  end
  else b.values.(n) <- v;
  b.count <- n + 1

let acquire t prio v =
  match t.free with
  | b :: tl ->
      t.free <- tl;
      t.free_n <- t.free_n - 1;
      b.prio <- prio;
      b.head <- 0;
      b.count <- 0;
      append b v;
      b
  | [] ->
      { prio; stamp = 0; values = Array.make 1 v; head = 0; count = 1;
        children = [] }

let heap_push t prio value =
  if t.last != t.sentinel && t.last.prio = prio then append t.last value
  else begin
    let b = acquire t prio value in
    b.stamp <- t.next_stamp;
    t.next_stamp <- t.next_stamp + 1;
    if t.heap_n = 0 then t.root <- b else t.root <- meld b t.root;
    t.last <- b
  end;
  t.heap_n <- t.heap_n + 1

let recycle t b =
  if t.last == b then t.last <- t.sentinel;
  b.children <- [];
  if t.free_n < max_free then begin
    t.free <- b :: t.free;
    t.free_n <- t.free_n + 1
  end

let heap_pop t =
  let b = t.root in
  let v = b.values.(b.head) in
  b.head <- b.head + 1;
  t.heap_n <- t.heap_n - 1;
  if b.head = b.count then begin
    (* Exhausted: every remaining heap value lives under the children. *)
    (match b.children with [] -> () | ch -> t.root <- merge_pairs ch);
    recycle t b
  end;
  v

(* --- ring side --- *)

let ring_grow t v =
  let cap = Array.length t.r_val in
  let cap' = if cap = 0 then 128 else 2 * cap in
  let r_val = Array.make cap' v in
  let r_prio = Array.make cap' 0 in
  for k = 0 to t.r_len - 1 do
    let i = (t.r_head + k) land (cap - 1) in
    Array.unsafe_set r_val k (Array.unsafe_get t.r_val i);
    Array.unsafe_set r_prio k (Array.unsafe_get t.r_prio i)
  done;
  t.r_val <- r_val;
  t.r_prio <- r_prio;
  t.r_head <- 0

let ring_append t prio value =
  if t.r_len = Array.length t.r_val then ring_grow t value;
  (* Masked indices are < capacity by construction (power of two), so
     the unchecked accesses here and in the pop path are in range. *)
  let i = (t.r_head + t.r_len) land (Array.length t.r_val - 1) in
  Array.unsafe_set t.r_val i value;
  Array.unsafe_set t.r_prio i prio;
  t.r_len <- t.r_len + 1
  [@@inline]

let ring_last_prio t =
  Array.unsafe_get t.r_prio
    ((t.r_head + t.r_len - 1) land (Array.length t.r_val - 1))
  [@@inline]

let ring_pop t =
  let i = t.r_head in
  let v = Array.unsafe_get t.r_val i in
  t.r_head <- (i + 1) land (Array.length t.r_val - 1);
  t.r_len <- t.r_len - 1;
  v
  [@@inline]

(* --- public API --- *)

let push t ~prio value =
  if t.r_len > 0 then
    if prio >= ring_last_prio t then ring_append t prio value
    else heap_push t prio value
  else if t.heap_n = 0 then ring_append t prio value
  else heap_push t prio value
  [@@inline]

let min_prio t =
  if t.heap_n = 0 then
    if t.r_len = 0 then invalid_arg "Pqueue.min_prio: empty queue"
    else Array.unsafe_get t.r_prio t.r_head
  else if t.r_len = 0 then t.root.prio
  else
    let rp = Array.unsafe_get t.r_prio t.r_head in
    if rp < t.root.prio then rp else t.root.prio
  [@@inline]

let pop_value t =
  if t.heap_n = 0 then
    if t.r_len = 0 then invalid_arg "Pqueue.pop_value: empty queue"
    else ring_pop t
  else if t.r_len = 0 then heap_pop t
  else if
    (* Ties dequeue from the ring: see the stability argument above. *)
    Array.unsafe_get t.r_prio t.r_head <= t.root.prio
  then ring_pop t
  else heap_pop t
  [@@inline]

let pop t =
  if is_empty t then None
  else
    let prio = min_prio t in
    Some (prio, pop_value t)

let peek_prio t = if is_empty t then None else Some (min_prio t)

let clear t =
  t.root <- t.sentinel;
  t.last <- t.sentinel;
  t.heap_n <- 0;
  t.free <- [];
  t.free_n <- 0;
  t.r_val <- [||];
  t.r_prio <- [||];
  t.r_head <- 0;
  t.r_len <- 0
