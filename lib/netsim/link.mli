(** Directed link model: propagation latency, jitter and loss.

    Channels are reliable and FIFO (the systems we simulate run over
    TCP): a "lost" transmission is modelled as one or more retransmit
    timeouts added to the delivery delay, never as an actual drop.

    {b Loss understatement bound.} The retransmit loop is capped at
    [max_retries] attempts, after which the message is delivered anyway.
    A message therefore experiences at most
    [max_retries * retransmit] of loss-induced delay, and the chance
    that the cap truncates a loss streak is [loss ^ max_retries] — i.e.
    the link faithfully models any configured loss probability up to
    about [1 - (1 - loss) ^ max_retries]; configured loss beyond that is
    understated.  With the default [max_retries = 8], a [loss] of 0.5
    is truncated with probability [0.5^8 ≈ 0.4%]; raise [max_retries]
    when simulating very lossy links whose tail delays matter.  Every
    truncated streak bumps the registry counter
    [link.retransmit_cap_hits], so the understatement is observable per
    run.

    Actual unavailability (messages that never arrive) is modelled one
    level up, by {!Network.set_link_down} / {!Network.set_node_down}. *)

type t = {
  latency : Time.span;  (** base one-way propagation delay *)
  jitter : Time.span;  (** uniform extra delay in [\[0, jitter\]] *)
  loss : float;  (** per-transmission loss probability, in [\[0, 1)] *)
  retransmit : Time.span;  (** delay added per lost transmission *)
  max_retries : int;  (** cap on simulated retransmissions per message *)
}

val make :
  ?jitter:Time.span ->
  ?loss:float ->
  ?retransmit:Time.span ->
  ?max_retries:int ->
  Time.span ->
  t
(** [make latency] — defaults: no jitter, no loss, 300 ms retransmit,
    at most 8 retries (see the loss understatement bound above). *)

val ideal : t
(** 1 ms, no jitter, no loss. *)

val delay : t -> Rng.t -> Time.span
(** Sample a delivery delay (includes simulated retransmissions, capped
    at [max_retries]). *)

val pp : Format.formatter -> t -> unit
