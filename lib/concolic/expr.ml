type var = { v_id : int; v_name : string; v_lo : int; v_hi : int }

let intern_table : (string * int * int, var) Hashtbl.t = Hashtbl.create 64
let intern_lock = Mutex.create ()
let next_id = ref 0

(* The intern table is global; instrumented handlers may run on pool
   worker domains, so interning must be serialized. *)
let var name ~lo ~hi =
  if lo > hi then invalid_arg "Expr.var: empty domain";
  let key = (name, lo, hi) in
  Mutex.lock intern_lock;
  let v =
    match Hashtbl.find_opt intern_table key with
    | Some v -> v
    | None ->
        let v = { v_id = !next_id; v_name = name; v_lo = lo; v_hi = hi } in
        incr next_id;
        Hashtbl.add intern_table key v;
        v
  in
  Mutex.unlock intern_lock;
  v

type t =
  | Const of int
  | Var of var
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Band of t * t
  | Eq of t * t
  | Lt of t * t
  | Le of t * t
  | And of t * t
  | Or of t * t
  | Not of t

let const n = Const n
let tru = Const 1
let fls = Const 0

let b2i b = if b then 1 else 0

let rec eval env = function
  | Const n -> n
  | Var v -> env v
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Band (a, b) -> eval env a land eval env b
  | Eq (a, b) -> b2i (eval env a = eval env b)
  | Lt (a, b) -> b2i (eval env a < eval env b)
  | Le (a, b) -> b2i (eval env a <= eval env b)
  | And (a, b) -> b2i (eval env a <> 0 && eval env b <> 0)
  | Or (a, b) -> b2i (eval env a <> 0 || eval env b <> 0)
  | Not a -> b2i (eval env a = 0)

let is_true env e = eval env e <> 0

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v.v_id) then begin
          Hashtbl.add seen v.v_id ();
          acc := v :: !acc
        end
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Band (a, b)
    | Eq (a, b) | Lt (a, b) | Le (a, b) | And (a, b) | Or (a, b) ->
        go a;
        go b
    | Not a -> go a
  in
  go e;
  List.rev !acc

let negate = function
  | Not e -> e
  | Lt (a, b) -> Le (b, a)
  | Le (a, b) -> Lt (b, a)
  | Const n -> Const (b2i (n = 0))
  | e -> Not e

let rec size = function
  | Const _ | Var _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Band (a, b)
  | Eq (a, b) | Lt (a, b) | Le (a, b) | And (a, b) | Or (a, b) ->
      1 + size a + size b
  | Not a -> 1 + size a

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let rec pp ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Var v -> Format.pp_print_string ppf v.v_name
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Band (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Eq (a, b) -> Format.fprintf ppf "(%a = %a)" pp a pp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp a pp b
  | Le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp a pp b
  | And (a, b) -> Format.fprintf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Not a -> Format.fprintf ppf "!%a" pp a

let to_string e = Format.asprintf "%a" pp e
