type model = (Expr.var * int) list

type outcome = Sat of model | Unsat | Unknown

(* Accounting lives in the global telemetry registry (registry
   counters are atomics, so concurrent solves on pool worker domains
   don't race).  [stats] reads them back for the bench harness. *)
type stats = {
  solved_sat : int;
  solved_unsat : int;
  solved_unknown : int;
  search_nodes : int;
  cache_hits : int;
  cache_misses : int;
}

let m_sat = lazy (Telemetry.Metrics.counter "solver.sat")
let m_unsat = lazy (Telemetry.Metrics.counter "solver.unsat")
let m_unknown = lazy (Telemetry.Metrics.counter "solver.unknown")
let m_nodes = lazy (Telemetry.Metrics.counter "solver.search_nodes")
let m_hits = lazy (Telemetry.Metrics.counter "solver.cache_hits")
let m_misses = lazy (Telemetry.Metrics.counter "solver.cache_misses")

let all_counters () =
  List.map Lazy.force [ m_sat; m_unsat; m_unknown; m_nodes; m_hits; m_misses ]

let stats () =
  match List.map Telemetry.Metrics.value (all_counters ()) with
  | [ sat; unsat; unknown; nodes; hits; misses ] ->
      { solved_sat = sat; solved_unsat = unsat; solved_unknown = unknown;
        search_nodes = nodes; cache_hits = hits; cache_misses = misses }
  | _ -> assert false

let reset_stats () = List.iter Telemetry.Metrics.reset (all_counters ())

(* Wide sentinels that survive interval arithmetic without overflow. *)
let neg_big = -(1 lsl 40)
let pos_big = 1 lsl 40

let top = Interval.make neg_big pos_big

module Vmap = Map.Make (Int)

type domains = Interval.t Vmap.t

exception Contradiction

let dom ds (v : Expr.var) =
  Option.value (Vmap.find_opt v.Expr.v_id ds) ~default:(Interval.of_var v)

(* Forward interval evaluation. *)
let rec ieval ds (e : Expr.t) : Interval.t =
  match e with
  | Expr.Const n -> Interval.point n
  | Expr.Var v -> dom ds v
  | Expr.Add (a, b) -> Interval.add (ieval ds a) (ieval ds b)
  | Expr.Sub (a, b) -> Interval.sub (ieval ds a) (ieval ds b)
  | Expr.Mul (a, b) -> Interval.mul (ieval ds a) (ieval ds b)
  | Expr.Band (a, b) -> Interval.band (ieval ds a) (ieval ds b)
  | Expr.Eq (a, b) -> (
      let ia = ieval ds a and ib = ieval ds b in
      match Interval.inter ia ib with
      | None -> Interval.point 0
      | Some _ ->
          if Interval.is_point ia && Interval.is_point ib then Interval.point 1
          else Interval.make 0 1)
  | Expr.Lt (a, b) ->
      let ia = ieval ds a and ib = ieval ds b in
      if ia.Interval.hi < ib.Interval.lo then Interval.point 1
      else if ia.Interval.lo >= ib.Interval.hi then Interval.point 0
      else Interval.make 0 1
  | Expr.Le (a, b) ->
      let ia = ieval ds a and ib = ieval ds b in
      if ia.Interval.hi <= ib.Interval.lo then Interval.point 1
      else if ia.Interval.lo > ib.Interval.hi then Interval.point 0
      else Interval.make 0 1
  | Expr.And (a, b) ->
      let ia = ieval ds a and ib = ieval ds b in
      if ia.Interval.lo > 0 || ia.Interval.hi < 0 then
        (* a definitely true *)
        if ib.Interval.lo > 0 || ib.Interval.hi < 0 then Interval.point 1
        else if Interval.is_point ib && ib.Interval.lo = 0 then Interval.point 0
        else Interval.make 0 1
      else if Interval.is_point ia && ia.Interval.lo = 0 then Interval.point 0
      else Interval.make 0 1
  | Expr.Or (a, b) ->
      let ia = ieval ds a and ib = ieval ds b in
      let def_true (i : Interval.t) = i.Interval.lo > 0 || i.Interval.hi < 0 in
      let def_false (i : Interval.t) = Interval.is_point i && i.Interval.lo = 0 in
      if def_true ia || def_true ib then Interval.point 1
      else if def_false ia && def_false ib then Interval.point 0
      else Interval.make 0 1
  | Expr.Not a ->
      let ia = ieval ds a in
      if Interval.is_point ia && ia.Interval.lo = 0 then Interval.point 1
      else if ia.Interval.lo > 0 || ia.Interval.hi < 0 then Interval.point 0
      else Interval.make 0 1

let def_true (i : Interval.t) = i.Interval.lo > 0 || i.Interval.hi < 0
let def_false (i : Interval.t) = Interval.is_point i && i.Interval.lo = 0

(* Backward contractor: refine [ds] so that [e]'s value can lie in [i].
   Raises [Contradiction] when impossible.  Conservative: operators we
   cannot invert precisely keep the current domains. *)
let rec narrow ds (e : Expr.t) (i : Interval.t) : domains =
  match e with
  | Expr.Const n -> if Interval.mem n i then ds else raise Contradiction
  | Expr.Var v -> (
      match Interval.inter (dom ds v) i with
      | Some d -> Vmap.add v.Expr.v_id d ds
      | None -> raise Contradiction)
  | Expr.Add (a, b) ->
      let ia = ieval ds a and ib = ieval ds b in
      let ds = narrow ds a (Interval.sub i ib) in
      narrow ds b (Interval.sub i ia)
  | Expr.Sub (a, b) ->
      (* a - b in i  =>  a in i + ib,  b in ia - i *)
      let ia = ieval ds a and ib = ieval ds b in
      let ds = narrow ds a (Interval.add i ib) in
      narrow ds b (Interval.sub ia i)
  | Expr.Mul (a, b) ->
      (* Invert only through a positive constant factor. *)
      let invert_const c other =
        if c > 0 then
          let lo = Interval.(i.lo) and hi = Interval.(i.hi) in
          let div_lo = if lo >= 0 then (lo + c - 1) / c else lo / c in
          let div_hi = if hi >= 0 then hi / c else (hi - c + 1) / c in
          if div_lo > div_hi then raise Contradiction
          else narrow ds other (Interval.make div_lo div_hi)
        else ds
      in
      (match (a, b) with
      | Expr.Const c, other -> invert_const c other
      | other, Expr.Const c -> invert_const c other
      | _ ->
          if Interval.inter (ieval ds e) i = None then raise Contradiction else ds)
  | Expr.Band _ ->
      if Interval.inter (ieval ds e) i = None then raise Contradiction else ds
  | Expr.Eq (a, b) ->
      if not (Interval.mem 0 i) then begin
        (* must be true: both sides share the intersection *)
        let ia = ieval ds a and ib = ieval ds b in
        match Interval.inter ia ib with
        | None -> raise Contradiction
        | Some common ->
            let ds = narrow ds a common in
            narrow ds b common
      end
      else if def_false i then begin
        (* must be false: prune only when one side is a point *)
        let ia = ieval ds a and ib = ieval ds b in
        if Interval.is_point ia && Interval.is_point ib && ia = ib then
          raise Contradiction
        else ds
      end
      else ds
  | Expr.Lt (a, b) ->
      if not (Interval.mem 0 i) then begin
        (* a < b *)
        let ia = ieval ds a and ib = ieval ds b in
        let ds = narrow ds a (Interval.make neg_big (ib.Interval.hi - 1)) in
        narrow ds b (Interval.make (ia.Interval.lo + 1) pos_big)
      end
      else if def_false i then begin
        (* b <= a *)
        let ia = ieval ds a and ib = ieval ds b in
        let ds = narrow ds b (Interval.make neg_big ia.Interval.hi) in
        narrow ds a (Interval.make ib.Interval.lo pos_big)
      end
      else ds
  | Expr.Le (a, b) ->
      if not (Interval.mem 0 i) then begin
        let ia = ieval ds a and ib = ieval ds b in
        let ds = narrow ds a (Interval.make neg_big ib.Interval.hi) in
        narrow ds b (Interval.make ia.Interval.lo pos_big)
      end
      else if def_false i then begin
        (* b < a *)
        let ia = ieval ds a and ib = ieval ds b in
        let ds = narrow ds b (Interval.make neg_big (ia.Interval.hi - 1)) in
        narrow ds a (Interval.make (ib.Interval.lo + 1) pos_big)
      end
      else ds
  | Expr.And (a, b) ->
      if not (Interval.mem 0 i) then
        let ds = narrow ds a (Interval.make 1 pos_big) in
        narrow ds b (Interval.make 1 pos_big)
      else if def_false i then begin
        let ia = ieval ds a and ib = ieval ds b in
        if def_true ia then narrow ds b (Interval.point 0)
        else if def_true ib then narrow ds a (Interval.point 0)
        else ds
      end
      else ds
  | Expr.Or (a, b) ->
      if not (Interval.mem 0 i) then begin
        let ia = ieval ds a and ib = ieval ds b in
        if def_false ia then narrow ds b (Interval.make 1 pos_big)
        else if def_false ib then narrow ds a (Interval.make 1 pos_big)
        else ds
      end
      else if def_false i then
        let ds = narrow ds a (Interval.point 0) in
        narrow ds b (Interval.point 0)
      else ds
  | Expr.Not a ->
      if not (Interval.mem 0 i) then narrow ds a (Interval.point 0)
      else if def_false i then narrow ds a (Interval.make 1 pos_big)
      else ds

let assert_true ds e = narrow ds e (Interval.make 1 pos_big)

(* Comparisons treat any nonzero as true, but branch conditions are
   boolean-shaped; asserting value >= 1 is correct for all our
   constructors (booleans are 0/1, and branch() normalizes). *)

let propagate constraints ds =
  let rec fix ds n =
    if n = 0 then ds
    else
      let ds' = List.fold_left assert_true ds constraints in
      if Vmap.equal (fun a b -> a = b) ds ds' then ds else fix ds' (n - 1)
  in
  fix ds 8

let all_vars constraints =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun c ->
      List.iter
        (fun (v : Expr.var) ->
          if not (Hashtbl.mem tbl v.Expr.v_id) then begin
            Hashtbl.add tbl v.Expr.v_id v;
            order := v :: !order
          end)
        (Expr.vars c))
    constraints;
  List.rev !order

let model_value m v =
  List.find_map
    (fun ((v' : Expr.var), x) -> if v'.Expr.v_id = v.Expr.v_id then Some x else None)
    m

let env_of_model m (v : Expr.var) =
  match model_value m v with Some x -> x | None -> v.Expr.v_lo

let check m constraints = List.for_all (Expr.is_true (env_of_model m)) constraints

(* Interesting values for a variable: constants appearing in the
   constraints, shifted by +-1, clipped to the domain. *)
let interesting_values constraints (v : Expr.var) (d : Interval.t) =
  let consts = ref [] in
  let rec collect (e : Expr.t) =
    match e with
    | Expr.Const n -> consts := n :: !consts
    | Expr.Var _ -> ()
    | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Band (a, b)
    | Expr.Eq (a, b) | Expr.Lt (a, b) | Expr.Le (a, b) | Expr.And (a, b)
    | Expr.Or (a, b) ->
        collect a;
        collect b
    | Expr.Not a -> collect a
  in
  List.iter
    (fun c -> if List.exists (fun (u : Expr.var) -> u.Expr.v_id = v.Expr.v_id) (Expr.vars c) then collect c)
    constraints;
  let candidates =
    d.Interval.lo :: d.Interval.hi
    :: ((d.Interval.lo + d.Interval.hi) / 2)
    :: List.concat_map (fun n -> [ n; n - 1; n + 1 ]) !consts
  in
  List.sort_uniq Int.compare (List.filter (fun n -> Interval.mem n d) candidates)

(* ------------------------------------------------------------------ *)
(* Memoization                                                         *)
(*                                                                     *)
(* Generational search re-solves many shared constraint sets: distinct *)
(* runs that reach the same path flip the same branches, and repeated  *)
(* explorations of the same handler (one per orchestrator round)       *)
(* regenerate identical path conditions wholesale.  The solver is      *)
(* deterministic, so a canonical fingerprint of the constraint set     *)
(* (plus the node budget, which changes Unknown answers) is a sound    *)
(* memo key.                                                           *)
(* ------------------------------------------------------------------ *)

(* Structural rendering keyed on [v_id]: interning makes ids unique per
   (name, lo, hi), so ids capture variable identity including domains
   (Expr.to_string prints names only and could alias). *)
let fingerprint ~max_nodes constraints =
  let b = Buffer.create 256 in
  let rec render (e : Expr.t) =
    match e with
    | Expr.Const n ->
        Buffer.add_char b 'c';
        Buffer.add_string b (string_of_int n)
    | Expr.Var v ->
        Buffer.add_char b 'v';
        Buffer.add_string b (string_of_int v.Expr.v_id)
    | Expr.Add (x, y) -> bin '+' x y
    | Expr.Sub (x, y) -> bin '-' x y
    | Expr.Mul (x, y) -> bin '*' x y
    | Expr.Band (x, y) -> bin '&' x y
    | Expr.Eq (x, y) -> bin '=' x y
    | Expr.Lt (x, y) -> bin '<' x y
    | Expr.Le (x, y) -> bin 'L' x y
    | Expr.And (x, y) -> bin 'A' x y
    | Expr.Or (x, y) -> bin 'O' x y
    | Expr.Not x ->
        Buffer.add_char b '!';
        render x
  and bin op x y =
    Buffer.add_char b '(';
    Buffer.add_char b op;
    render x;
    Buffer.add_char b ',';
    render y;
    Buffer.add_char b ')'
  in
  (* Conjunction order is irrelevant to the outcome: canonicalize by
     sorting the rendered constraints so permuted sets share a key. *)
  let rendered =
    List.sort String.compare
      (List.map
         (fun c ->
           Buffer.clear b;
           render c;
           Buffer.contents b)
         constraints)
  in
  Buffer.clear b;
  Buffer.add_string b (string_of_int max_nodes);
  List.iter
    (fun s ->
      Buffer.add_char b ';';
      Buffer.add_string b s)
    rendered;
  Digest.string (Buffer.contents b)

let cache : (string, outcome) Hashtbl.t = Hashtbl.create 1024
let cache_lock = Mutex.create ()
let cache_enabled = Atomic.make true
let cache_capacity = 1 lsl 16

let set_cache_enabled b = Atomic.set cache_enabled b

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Mutex.unlock cache_lock

let cache_find key =
  Mutex.lock cache_lock;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_lock;
  r

let cache_store key outcome =
  Mutex.lock cache_lock;
  (* Generational eviction: a full cache is wiped rather than LRU-ed;
     the hot prefixes repopulate it within one exploration round. *)
  if Hashtbl.length cache >= cache_capacity then Hashtbl.reset cache;
  Hashtbl.replace cache key outcome;
  Mutex.unlock cache_lock

let solve_uncached ~max_nodes constraints =
  let vars = all_vars constraints in
  let nodes = ref 0 in
  let exception Found of model in
  let record outcome =
    Telemetry.Metrics.incr
      (Lazy.force
         (match outcome with
         | Sat _ -> m_sat
         | Unsat -> m_unsat
         | Unknown -> m_unknown));
    (* One atomic add per solve, not per search node. *)
    Telemetry.Metrics.add (Lazy.force m_nodes) !nodes;
    outcome
  in
  let budget_hit = ref false in
  let sampled = ref false in
  (* Depth-first: propagate, check, pick the tightest unfixed variable,
     try its interesting values. *)
  let rec search ds =
    incr nodes;
    if !nodes > max_nodes then budget_hit := true
    else
      match propagate constraints ds with
      | exception Contradiction -> ()
      | ds ->
          let candidate_model =
            List.map (fun v -> (v, (dom ds v).Interval.lo)) vars
          in
          if check candidate_model constraints then raise (Found candidate_model);
          (* choose branching variable: smallest non-point domain *)
          let unfixed =
            List.filter_map
              (fun v ->
                let d = dom ds v in
                if Interval.is_point d then None else Some (v, d))
              vars
          in
          let by_width (_, (a : Interval.t)) (_, (b : Interval.t)) =
            Int.compare (Interval.width a) (Interval.width b)
          in
          match List.sort by_width unfixed with
          | [] -> () (* all fixed but check failed: dead branch *)
          | (v, d) :: _ ->
              let values =
                if Interval.width d <= 64 then
                  List.init (Interval.width d) (fun i -> d.Interval.lo + i)
                else begin
                  (* Non-exhaustive: failure below no longer proves Unsat. *)
                  sampled := true;
                  interesting_values constraints v d
                end
              in
              List.iter
                (fun value ->
                  if not !budget_hit then
                    match Interval.inter d (Interval.point value) with
                    | Some _ ->
                        search (Vmap.add v.Expr.v_id (Interval.point value) ds)
                    | None -> ())
                values
  in
  match search Vmap.empty with
  | () -> if !budget_hit || !sampled then record Unknown else record Unsat
  | exception Found m -> record (Sat m)
  | exception Contradiction -> record Unsat

let outcome_name = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"

let solve ?(max_nodes = 20_000) constraints =
  Telemetry.with_span "solve"
    ~attrs:[ ("constraints", Telemetry.Json.Int (List.length constraints)) ]
    (fun sp ->
      let note ~cached outcome =
        Telemetry.add_attr sp
          [ ("outcome", Telemetry.Json.String (outcome_name outcome));
            ("cached", Telemetry.Json.Bool cached) ];
        outcome
      in
      if not (Atomic.get cache_enabled) then
        note ~cached:false (solve_uncached ~max_nodes constraints)
      else
        let key = fingerprint ~max_nodes constraints in
        match cache_find key with
        | Some outcome ->
            Telemetry.Metrics.incr (Lazy.force m_hits);
            note ~cached:true outcome
        | None ->
            Telemetry.Metrics.incr (Lazy.force m_misses);
            let outcome = solve_uncached ~max_nodes constraints in
            cache_store key outcome;
            note ~cached:false outcome)

let _ = ignore top

(* The repair query: find values under which [detection] can no longer
   fire while the side conditions still hold.  Just a named spelling of
   [solve (negate detection :: constraints)], so it shares the memo
   cache with every other query. *)
let solve_negated ?max_nodes ~detection constraints =
  solve ?max_nodes (Expr.negate detection :: constraints)

let pp_model ppf m =
  Format.fprintf ppf "@[<h>";
  List.iter
    (fun ((v : Expr.var), x) -> Format.fprintf ppf "%s=%d@ " v.Expr.v_name x)
    m;
  Format.fprintf ppf "@]"
