(** Constraint solver for path conditions.

    Interval (bounds) propagation with a contractor per operator,
    followed by branch-and-propagate search over the remaining domains.
    Complete enough for the linear / bitfield constraints that message
    parsing and policy evaluation generate; answers:

    - [Sat model] — the model is {e verified} by concrete evaluation of
      every constraint before being returned, so SAT answers are sound
      unconditionally;
    - [Unsat] — sound because contractors only ever remove values that
      cannot appear in any solution;
    - [Unknown] — search budget exhausted. *)

type model = (Expr.var * int) list

type outcome = Sat of model | Unsat | Unknown

type stats = {
  solved_sat : int;
  solved_unsat : int;
  solved_unknown : int;
  search_nodes : int;
  cache_hits : int;  (** memoized answers served *)
  cache_misses : int;  (** full solves behind the cache *)
}

val stats : unit -> stats
(** Snapshot of the solver's accounting.  The live counters are
    [solver.*] entries in {!Telemetry.Metrics} (atomic, so concurrent
    solves from [Parallel.Pool] workers don't race); this reads them
    back for the benchmark harness. *)

val reset_stats : unit -> unit

val solve : ?max_nodes:int -> Expr.t list -> outcome
(** [max_nodes] bounds the search tree (default 20_000).

    Answers are memoized (when the cache is enabled, the default) on a
    canonical fingerprint of the constraint set: structural rendering
    of each conjunct keyed on interned variable ids, sorted so that
    permutations of the same set share an entry, plus [max_nodes]
    (which changes [Unknown] answers).  The solver is deterministic,
    so serving a cached outcome is indistinguishable from re-solving. *)

val solve_negated :
  ?max_nodes:int -> detection:Expr.t -> Expr.t list -> outcome
(** The repair engine's query: a model under which [detection] is
    false (the fault's detection predicate cannot fire) while every
    side [constraint] still holds.  Equivalent to
    [solve (Expr.negate detection :: constraints)] and shares the memo
    cache; [Sat model] means the model falsifies [detection]. *)

val set_cache_enabled : bool -> unit
(** Turn memoization on/off (on by default).  Existing entries are
    kept; use {!clear_cache} to drop them. *)

val clear_cache : unit -> unit

val check : model -> Expr.t list -> bool
(** Do all constraints evaluate true under the model (unbound variables
    default to their domain minimum)? *)

val model_value : model -> Expr.var -> int option
val pp_model : Format.formatter -> model -> unit
