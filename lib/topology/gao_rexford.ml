let asn_of_node id =
  if id < 0 || id > 64000 then invalid_arg "Gao_rexford.asn_of_node: out of range";
  1000 + id

let node_of_asn asn = asn - 1000

let prefix_of_node id =
  if id < 0 || id > 0xFFFF then invalid_arg "Gao_rexford.prefix_of_node: out of range";
  Bgp.Prefix.make (Bgp.Ipv4.of_octets 192 (id lsr 8) (id land 0xFF) 0) 24

let community_customer = Bgp.Community.make 65000 100
let community_peer = Bgp.Community.make 65000 200
let community_provider = Bgp.Community.make 65000 300

let local_pref_customer = 200
let local_pref_peer = 150
let local_pref_provider = 100

let import_map_name = function
  | Graph.Customer -> "FROM-CUSTOMER"
  | Graph.Peer -> "FROM-PEER"
  | Graph.Provider -> "FROM-PROVIDER"

let export_map_name = function
  | Graph.Customer -> "TO-CUSTOMER"
  | Graph.Peer -> "TO-PEER"
  | Graph.Provider -> "TO-PROVIDER"

(* Standard ingress hygiene: drop martian space and bogus netmasks
   before anything else.  Entries 1-4 of every import map. *)
let martian_filter =
  let p = Bgp.Prefix.of_string_exn in
  let deny seq rule =
    Bgp.Policy.entry seq Bgp.Policy.Deny ~matches:[ Bgp.Policy.Match_prefix [ rule ] ]
  in
  [ deny 1 (Bgp.Policy.prefix_rule ~ge:0 ~le:7 (p "0.0.0.0/0"));   (* bogus short masks *)
    deny 2 (Bgp.Policy.prefix_rule ~ge:25 ~le:32 (p "0.0.0.0/0")); (* too specific *)
    deny 3 (Bgp.Policy.prefix_rule ~le:32 (p "127.0.0.0/8"));      (* loopback *)
    deny 4 (Bgp.Policy.prefix_rule ~ge:4 ~le:32 (p "240.0.0.0/4")); (* class E *)
    deny 5 (Bgp.Policy.prefix_rule ~le:32 (p "0.0.0.0/8"))         (* current network *) ]

(* Tag with the relationship community (clearing any inbound tag so a
   malicious or misconfigured neighbor cannot spoof "customer") and set
   the Gao-Rexford local preference. *)
let import_map role =
  let community, pref =
    match role with
    | Graph.Customer -> (community_customer, local_pref_customer)
    | Graph.Peer -> (community_peer, local_pref_peer)
    | Graph.Provider -> (community_provider, local_pref_provider)
  in
  martian_filter
  @ [ Bgp.Policy.entry 10 Bgp.Policy.Permit
        ~sets:
          [ Bgp.Policy.Del_community community_customer;
            Bgp.Policy.Del_community community_peer;
            Bgp.Policy.Del_community community_provider;
            Bgp.Policy.Add_community community;
            Bgp.Policy.Set_local_pref pref ] ]

(* Export: to a customer, everything; to a peer or provider, only our
   own routes (empty AS path before export prepending) and routes
   tagged customer-learned. *)
let export_map role =
  match role with
  | Graph.Customer -> Bgp.Policy.accept_all
  | Graph.Peer | Graph.Provider ->
      [ Bgp.Policy.entry 10 Bgp.Policy.Permit
          ~matches:[ Bgp.Policy.Match_as_path (Bgp.Policy.Path_length_at_most 0) ];
        Bgp.Policy.entry 20 Bgp.Policy.Permit
          ~matches:[ Bgp.Policy.Match_community community_customer ] ]

let config_of graph id =
  let neighbors =
    Graph.neighbors graph id
    |> List.filter_map (fun nb ->
           match Graph.role_of graph ~self:id ~neighbor:nb with
           | None -> None
           | Some role ->
               Some
                 (Bgp.Config.neighbor
                    (Bgp.Router.addr_of_node nb)
                    ~remote_as:(asn_of_node nb)
                    ~import_map:(import_map_name role)
                    ~export_map:(export_map_name role)))
  in
  let route_maps =
    List.concat_map
      (fun role ->
        [ (import_map_name role, import_map role);
          (export_map_name role, export_map role) ])
      [ Graph.Customer; Graph.Peer; Graph.Provider ]
  in
  Bgp.Config.make ~asn:(asn_of_node id)
    ~router_id:(Bgp.Router.addr_of_node id)
    ~networks:[ prefix_of_node id ]
    ~neighbors ~route_maps ()

(* A node path a-b-c-... is valley-free iff it climbs customer->provider
   edges (and at most one peer edge at the apex) then descends
   provider->customer edges. *)
let valley_free graph path =
  let rec steps = function
    | a :: (b :: _ as rest) -> (
        match Graph.role_of graph ~self:a ~neighbor:b with
        | None -> None
        | Some role -> Option.map (fun tl -> role :: tl) (steps rest))
    | [ _ ] | [] -> Some []
  in
  match steps path with
  | None -> false
  | Some roles ->
      (* Phases: Up (towards providers) -> at most one Peer -> Down. *)
      let rec up = function
        | Graph.Provider :: rest -> up rest
        | rest -> peer rest
      and peer = function
        | Graph.Peer :: rest -> down rest
        | rest -> down rest
      and down = function
        | [] -> true
        | Graph.Customer :: rest -> down rest
        | Graph.Provider :: _ | Graph.Peer :: _ -> false
      in
      up roles

(* Canonical tiering for an N-router Gao-Rexford topology: a small
   tier-1 clique (~2%, at least 3 so the clique is a clique), ~18%
   transit, the rest stubs — the 80/20 edge-heavy shape of the real
   AS graph, scaled down.  Keeping the split here means the demo
   driver, the scale benchmark and replayed triage scenarios all build
   the same graph for the same (nodes, seed). *)
let tiering ~nodes =
  if nodes < 5 then invalid_arg "Gao_rexford.tiering: need at least 5 nodes";
  let t1 = max 3 (nodes / 50) in
  let transit = max 1 (nodes * 18 / 100) in
  (t1, transit, max 1 (nodes - t1 - transit))

let scale_params ~nodes =
  let n_tier1, n_transit, n_stub = tiering ~nodes in
  { Generate.default_params with Generate.n_tier1; n_transit; n_stub }

let scale_graph ~nodes ~seed =
  Generate.generate ~params:(scale_params ~nodes) (Netsim.Rng.create seed)
