type rel = Customer_provider | Peer_peer

type edge = { a : int; b : int; rel : rel }

type tier = Tier1 | Transit | Stub

type t = { nodes : (int * tier) list; edges : edge list }

let tier_to_string = function
  | Tier1 -> "tier1"
  | Transit -> "transit"
  | Stub -> "stub"

let make ~nodes ~edges =
  let nodes = List.sort (fun (a, _) (b, _) -> Int.compare a b) nodes in
  let ids = List.map fst nodes in
  let id_set = Hashtbl.create 64 in
  List.iter
    (fun id ->
      if Hashtbl.mem id_set id then
        invalid_arg (Printf.sprintf "Graph.make: duplicate node %d" id);
      Hashtbl.add id_set id ())
    ids;
  let pair_seen = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.a = e.b then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" e.a);
      if not (Hashtbl.mem id_set e.a) then
        invalid_arg (Printf.sprintf "Graph.make: unknown node %d" e.a);
      if not (Hashtbl.mem id_set e.b) then
        invalid_arg (Printf.sprintf "Graph.make: unknown node %d" e.b);
      let key = (min e.a e.b, max e.a e.b) in
      if Hashtbl.mem pair_seen key then
        invalid_arg (Printf.sprintf "Graph.make: duplicate edge %d-%d" e.a e.b);
      Hashtbl.add pair_seen key ())
    edges;
  { nodes; edges }

let size t = List.length t.nodes
let node_ids t = List.map fst t.nodes

let tier_of t id =
  match List.assoc_opt id t.nodes with
  | Some tier -> tier
  | None -> invalid_arg (Printf.sprintf "Graph.tier_of: unknown node %d" id)

let providers_of t id =
  List.filter_map
    (fun e ->
      match e.rel with
      | Customer_provider when e.a = id -> Some e.b
      | Customer_provider | Peer_peer -> None)
    t.edges

let customers_of t id =
  List.filter_map
    (fun e ->
      match e.rel with
      | Customer_provider when e.b = id -> Some e.a
      | Customer_provider | Peer_peer -> None)
    t.edges

let peers_of t id =
  List.filter_map
    (fun e ->
      match e.rel with
      | Peer_peer when e.a = id -> Some e.b
      | Peer_peer when e.b = id -> Some e.a
      | Peer_peer | Customer_provider -> None)
    t.edges

let neighbors t id =
  List.filter_map
    (fun e -> if e.a = id then Some e.b else if e.b = id then Some e.a else None)
    t.edges
  |> List.sort_uniq Int.compare

let edge_between t x y =
  List.find_opt (fun e -> (e.a = x && e.b = y) || (e.a = y && e.b = x)) t.edges

type role = Customer | Provider | Peer

let role_to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"

let role_of t ~self ~neighbor =
  match edge_between t self neighbor with
  | None -> None
  | Some { rel = Peer_peer; _ } -> Some Peer
  | Some { rel = Customer_provider; a; _ } ->
      (* [a] is the customer end. *)
      if a = self then Some Provider (* neighbor provides transit to us *)
      else Some Customer

let induced t keep =
  let kept = Hashtbl.create 64 in
  List.iter
    (fun id ->
      if not (List.mem_assoc id t.nodes) then
        invalid_arg (Printf.sprintf "Graph.induced: unknown node %d" id);
      Hashtbl.replace kept id ())
    keep;
  if Hashtbl.length kept = 0 then invalid_arg "Graph.induced: empty node set";
  make
    ~nodes:(List.filter (fun (id, _) -> Hashtbl.mem kept id) t.nodes)
    ~edges:
      (List.filter (fun e -> Hashtbl.mem kept e.a && Hashtbl.mem kept e.b) t.edges)

let is_connected t =
  match node_ids t with
  | [] -> true
  | first :: _ ->
      let visited = Hashtbl.create 64 in
      let rec dfs id =
        if not (Hashtbl.mem visited id) then begin
          Hashtbl.add visited id ();
          List.iter dfs (neighbors t id)
        end
      in
      dfs first;
      Hashtbl.length visited = size t
