type t = {
  graph : Graph.t;
  engine : Netsim.Engine.t;
  net : string Netsim.Network.t;
  speakers : (int * Bgp.Speaker.t) list;
  trace : Netsim.Trace.t;
}

let deploy ?(seed = 42) ?(config_of = Gao_rexford.config_of)
    ?(bugs_of = fun _ -> Bgp.Router.no_bugs) ?(links_of = Generate.link_model)
    ?(sparrow_nodes = []) graph =
  let engine = Netsim.Engine.create ~seed () in
  let trace = Netsim.Trace.create () in
  let net = Netsim.Network.create ~trace ~label:"live" engine in
  let link_rng = Netsim.Rng.split (Netsim.Engine.rng engine) in
  List.iter
    (fun id -> Netsim.Network.add_node net id (fun ~src:_ _ -> ()))
    (Graph.node_ids graph);
  List.iter
    (fun (e : Graph.edge) ->
      Netsim.Network.connect_sym net e.a e.b (links_of link_rng graph e.a e.b))
    graph.Graph.edges;
  let speakers =
    List.map
      (fun id ->
        let cfg = config_of graph id in
        let sp =
          if List.mem id sparrow_nodes then
            Bgp.Sparrow.speaker (Bgp.Sparrow.create ~bugs:(bugs_of id) ~net ~node:id cfg)
          else
            Bgp.Speaker.of_router
              (Bgp.Router.create ~bugs:(bugs_of id) ~net ~node:id cfg)
        in
        (id, sp))
      (Graph.node_ids graph)
  in
  { graph; engine; net; speakers; trace }

let speaker t id =
  match List.assoc_opt id t.speakers with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Build.speaker: unknown node %d" id)

let start_all t = List.iter (fun (_, sp) -> sp.Bgp.Speaker.sp_start ()) t.speakers

let run_for t span =
  Netsim.Engine.run ~until:(Netsim.Time.add (Netsim.Engine.now t.engine) span) t.engine

let loc_rib_snapshot t =
  List.map
    (fun (id, sp) ->
      let entries =
        Bgp.Prefix.Map.fold
          (fun p (route : Bgp.Rib.route) acc ->
            let via =
              if Bgp.Rib.is_local route then -1
              else Bgp.Router.node_of_addr route.Bgp.Rib.source.Bgp.Rib.peer_addr
            in
            (p, via) :: acc)
          (Bgp.Speaker.loc_rib sp) []
      in
      (id, List.rev entries))
    t.speakers

let total_updates_sent t =
  List.fold_left
    (fun acc (_, sp) -> acc + Netsim.Stats.get (sp.Bgp.Speaker.sp_stats ()) "tx_update")
    0 t.speakers

(* Quiescence = selections stable over a whole window AND no UPDATE
   traffic during it; comparing snapshots alone can alias when an
   oscillation's period lines up with the window. *)
let converge ?(window = Netsim.Time.span_sec 30.) ?(timeout = Netsim.Time.span_sec 600.) t =
  let deadline = Netsim.Time.add (Netsim.Engine.now t.engine) timeout in
  let rec go previous sent_before =
    if Netsim.Time.(deadline <= Netsim.Engine.now t.engine) then false
    else begin
      run_for t window;
      let current = loc_rib_snapshot t in
      let sent_now = total_updates_sent t in
      if current = previous && sent_now = sent_before then true
      else go current sent_now
    end
  in
  go (loc_rib_snapshot t) (total_updates_sent t)

let total_loc_routes t =
  List.fold_left
    (fun acc (_, sp) -> acc + Bgp.Prefix.Map.cardinal (Bgp.Speaker.loc_rib sp))
    0 t.speakers

let established_sessions t =
  List.fold_left
    (fun acc (_, sp) -> acc + List.length (sp.Bgp.Speaker.sp_established ()))
    0 t.speakers
