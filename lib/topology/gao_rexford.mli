(** Gao–Rexford routing policies.

    Turns a relationship-labelled topology into per-router BGP
    configurations implementing the canonical export rules — routes
    learned from a provider or peer are re-exported only to customers —
    and the canonical preferences (customer > peer > provider).

    Relationship tagging uses communities in the reserved [65000:*]
    space at import; export maps match on them.  The generated
    configurations therefore exercise the whole policy engine, which is
    exactly the "configuration interpreter" surface DiCE instruments. *)

val asn_of_node : int -> int
(** 1000 + id (16-bit safe for topologies up to ~64k nodes). *)

val node_of_asn : int -> int

val prefix_of_node : int -> Bgp.Prefix.t
(** The /24 each AS originates: 192.{id/256}.{id mod 256}.0/24. *)

val community_customer : Bgp.Community.t
(** 65000:100 — route learned from a customer. *)

val community_peer : Bgp.Community.t
(** 65000:200 *)

val community_provider : Bgp.Community.t
(** 65000:300 *)

val local_pref_customer : int
val local_pref_peer : int
val local_pref_provider : int

val martian_filter : Bgp.Policy.entry list
(** Deny entries for martian space and bogus netmasks, prepended to
    every generated import map (entries 1-4). *)

val import_map_name : Graph.role -> string
val export_map_name : Graph.role -> string

val import_map : Graph.role -> Bgp.Policy.t
(** Martian filter + relationship tagging + Gao-Rexford preference. *)

val export_map : Graph.role -> Bgp.Policy.t
(** To customers: everything; to peers/providers: own and
    customer-learned routes only. *)

val config_of : Graph.t -> int -> Bgp.Config.t
(** The full configuration for one node: neighbors with role-specific
    import/export maps, its own network statement, and the shared
    route-map definitions. *)

val valley_free : Graph.t -> int list -> bool
(** Is the node path valley-free (and peering used at most once at the
    top)?  Ground truth for property tests. *)

val tiering : nodes:int -> int * int * int
(** [(tier1, transit, stub)] counts for an [nodes]-router Internet-like
    topology: ~2% tier-1 (min 3), ~18% transit, the rest stubs.
    @raise Invalid_argument when [nodes < 5]. *)

val scale_params : nodes:int -> Generate.params
val scale_graph : nodes:int -> seed:int -> Graph.t
(** The canonical [nodes]-router Gao-Rexford benchmark topology for a
    seed; shared by [dice_demo --topo gao-rexford:N], the [bench scale]
    workload, and replayed scenarios so they agree on the graph. *)
