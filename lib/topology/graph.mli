(** AS-level topology graphs with business relationships.

    Each node models one autonomous system running one BGP router
    (node ids double as simulator node ids). *)

type rel =
  | Customer_provider  (** the edge's [a] end is the customer *)
  | Peer_peer

type edge = { a : int; b : int; rel : rel }

type tier = Tier1 | Transit | Stub

type t = {
  nodes : (int * tier) list;  (** sorted by node id *)
  edges : edge list;
}

val make : nodes:(int * tier) list -> edges:edge list -> t
(** Sorts and validates: endpoints exist, no self-loops, no duplicate
    (unordered) pairs.  @raise Invalid_argument on violation. *)

val size : t -> int
val node_ids : t -> int list
val tier_of : t -> int -> tier

val providers_of : t -> int -> int list
(** Nodes this node buys transit from. *)

val customers_of : t -> int -> int list
val peers_of : t -> int -> int list
val neighbors : t -> int -> int list
val edge_between : t -> int -> int -> edge option

(** Relationship of [neighbor] as seen from [self]. *)
type role = Customer | Provider | Peer

val role_of : t -> self:int -> neighbor:int -> role option
val role_to_string : role -> string

val induced : t -> int list -> t
(** Subgraph on the given node set: node ids, tiers and surviving edges
    are preserved (so per-node identities — ASN, prefix — are stable
    under pruning).  Duplicates in the list are ignored.  The result
    may be disconnected.
    @raise Invalid_argument on an empty set or an unknown node. *)

val is_connected : t -> bool
val tier_to_string : tier -> string
