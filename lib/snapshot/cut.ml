type channel_record = { ch_from : int; ch_to : int; ch_messages : string list }

type snapshot = {
  snap_id : int;
  initiator : int;
  started_at : Netsim.Time.t;
  completed_at : Netsim.Time.t;
  checkpoints : (int * Checkpoint.t) list;
  channels : channel_record list;
  control_messages : int;
}

type result = Complete of snapshot | Partial of snapshot * (int * int) list

let snapshot_of = function Complete s | Partial (s, _) -> s
let stalled_of = function Complete _ -> [] | Partial (_, st) -> st

let in_flight_total snapshot =
  List.fold_left (fun acc c -> acc + List.length c.ch_messages) 0 snapshot.channels

type chan_status = Recording of string list ref | Closed of string list

type active_snap = {
  a_id : int;
  a_initiator : int;
  a_started : Netsim.Time.t;
  a_checkpoints : (int, Checkpoint.t) Hashtbl.t;
  a_channels : (int * int, chan_status) Hashtbl.t;
  a_markers_seen : (int * int, unit) Hashtbl.t;
  mutable a_markers_sent : int;
  (* The channel set pinned at initiation time: completion accounting is
     judged against this, so channels appearing later cannot corrupt it
     and channels that stall show up in the Partial result. *)
  a_expected : (int * int) list;
  mutable a_timer : Netsim.Engine.timer option;
  a_on_result : result -> unit;
}

type t = {
  net : string Netsim.Network.t;
  speakers : int -> Bgp.Speaker.t;
  active_tbl : (int, active_snap) Hashtbl.t;
  mutable done_list : result list;
  mutable next_id : int;
}

let now t = Netsim.Engine.now (Netsim.Network.engine t.net)

let build_snapshot t a =
  let checkpoints =
    Hashtbl.fold (fun node cp acc -> (node, cp) :: acc) a.a_checkpoints []
    |> List.sort (fun (x, _) (y, _) -> Int.compare x y)
  in
  (* One record per expected channel: gathered messages where we have
     them, empty otherwise — so a shadow spawned from a partial cut
     still knows the full channel structure. *)
  let channels =
    List.map
      (fun (f, d) ->
        let msgs =
          match Hashtbl.find_opt a.a_channels (f, d) with
          | Some (Recording r) -> List.rev !r
          | Some (Closed m) -> m
          | None -> []
        in
        { ch_from = f; ch_to = d; ch_messages = msgs })
      a.a_expected
    |> List.sort compare
  in
  { snap_id = a.a_id;
    initiator = a.a_initiator;
    started_at = a.a_started;
    completed_at = now t;
    checkpoints;
    channels;
    control_messages = a.a_markers_sent }

let m_complete = lazy (Telemetry.Metrics.counter "cut.complete")
let m_partial = lazy (Telemetry.Metrics.counter "cut.partial")
let m_stalled = lazy (Telemetry.Metrics.counter "cut.stalled_channels")

let settle t a result =
  (match a.a_timer with Some tm -> Netsim.Engine.cancel tm | None -> ());
  a.a_timer <- None;
  Hashtbl.remove t.active_tbl a.a_id;
  t.done_list <- result :: t.done_list;
  (match result with
  | Complete _ -> Telemetry.Metrics.incr (Lazy.force m_complete)
  | Partial (_, stalled) ->
      Telemetry.Metrics.incr (Lazy.force m_partial);
      Telemetry.Metrics.add (Lazy.force m_stalled) (List.length stalled));
  a.a_on_result result

let finish t a = settle t a (Complete (build_snapshot t a))

let abort t a =
  if Hashtbl.mem t.active_tbl a.a_id then begin
    let stalled =
      List.filter (fun c -> not (Hashtbl.mem a.a_markers_seen c)) a.a_expected
    in
    settle t a (Partial (build_snapshot t a, stalled))
  end

(* First involvement of [node] in snapshot [a]: checkpoint it, start
   recording every incoming channel, and flood markers downstream.
   [closed_from] is the incoming channel whose marker triggered this
   (recorded empty per the algorithm); [None] at the initiator. *)
let engage t a node ~closed_from =
  Hashtbl.replace a.a_checkpoints node (Checkpoint.take ~at:(now t) (t.speakers node));
  List.iter
    (fun src ->
      let key = (src, node) in
      match closed_from with
      | Some c when c = src -> Hashtbl.replace a.a_channels key (Closed [])
      | Some _ | None -> Hashtbl.replace a.a_channels key (Recording (ref [])))
    (Netsim.Network.neighbors_in t.net node);
  List.iter
    (fun dst ->
      a.a_markers_sent <- a.a_markers_sent + 1;
      Netsim.Network.send_control t.net ~src:node ~dst
        (Netsim.Network.Marker { snapshot = a.a_id; initiator = a.a_initiator }))
    (Netsim.Network.neighbors_out t.net node)

let check_done t a =
  let closed =
    List.for_all (fun c -> Hashtbl.mem a.a_markers_seen c) a.a_expected
  in
  if closed then finish t a

let on_marker t ~self ~src ~snapshot ~initiator =
  match Hashtbl.find_opt t.active_tbl snapshot with
  | None -> () (* marker of an already-finished snapshot: stale, ignore *)
  | Some a ->
      if Hashtbl.mem a.a_markers_seen (src, self) then ()
      else begin
        Hashtbl.replace a.a_markers_seen (src, self) ();
        (if not (Hashtbl.mem a.a_checkpoints self) then
           engage t a self ~closed_from:(Some src)
         else
           match Hashtbl.find_opt a.a_channels (src, self) with
           | Some (Recording r) ->
               Hashtbl.replace a.a_channels (src, self) (Closed (List.rev !r))
           | Some (Closed _) | None -> ());
        ignore initiator;
        check_done t a
      end

let on_delivery t ~dst ~src msg =
  Hashtbl.iter
    (fun _ a ->
      match Hashtbl.find_opt a.a_channels (src, dst) with
      | Some (Recording r) -> r := msg :: !r
      | Some (Closed _) | None -> ())
    t.active_tbl

let create ~speakers net =
  let t =
    { net; speakers; active_tbl = Hashtbl.create 4; done_list = []; next_id = 0 }
  in
  Netsim.Network.set_control_handler net (fun ~self ~src control ->
      match control with
      | Netsim.Network.Marker { snapshot; initiator } ->
          on_marker t ~self ~src ~snapshot ~initiator);
  Netsim.Network.set_delivery_tap net (Some (fun ~dst ~src msg -> on_delivery t ~dst ~src msg));
  t

let initiate ?deadline t ~initiator ~on_result =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let a =
    { a_id = id; a_initiator = initiator; a_started = now t;
      a_checkpoints = Hashtbl.create 32; a_channels = Hashtbl.create 64;
      a_markers_seen = Hashtbl.create 64; a_markers_sent = 0;
      a_expected = Netsim.Network.channels t.net;
      a_timer = None;
      a_on_result = on_result }
  in
  Hashtbl.replace t.active_tbl id a;
  (match deadline with
  | Some d ->
      a.a_timer <-
        Some
          (Netsim.Engine.schedule
             (Netsim.Network.engine t.net)
             ~after:d
             (fun () -> abort t a))
  | None -> ());
  (* If engaging the initiator raises (e.g. its speaker is gone), the
     cut must not stay registered — nothing would ever settle it. *)
  (try engage t a initiator ~closed_from:None
   with e ->
     (match a.a_timer with Some tm -> Netsim.Engine.cancel tm | None -> ());
     Hashtbl.remove t.active_tbl id;
     raise e);
  (* A trivial topology (no channels) completes immediately. *)
  check_done t a;
  id

let active t = Hashtbl.length t.active_tbl
let results t = List.rev t.done_list

let completed t =
  List.filter_map (function Complete s -> Some s | Partial _ -> None) (results t)

let aborted t =
  List.filter_map (function Partial (s, st) -> Some (s, st) | Complete _ -> None)
    (results t)
