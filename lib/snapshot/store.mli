(** Shadow clones: isolated re-instantiations of a consistent snapshot.

    A shadow owns a fresh event engine and network — nothing it does
    can reach the live system (Figure 2, steps 3-5: "explore input k
    over cloned snapshot k").  Cloning is cheap because checkpoints are
    persistent values; the expensive parts (fresh speaker shells,
    re-delivery of in-flight messages) are proportional to topology
    size, not RIB size.  Each node is respawned with its original
    implementation, so heterogeneous deployments clone
    heterogeneously. *)

type shadow = {
  sh_engine : Netsim.Engine.t;
  sh_net : string Netsim.Network.t;
  sh_speakers : (int * Bgp.Speaker.t) list;  (** sorted by node id *)
  sh_by_id : (int, Bgp.Speaker.t) Hashtbl.t;
      (** O(1) index behind {!speaker}; [speaker] sits in the explorer's
          per-input hot loop, where the assoc-list scan was O(nodes) *)
  sh_from : int;  (** snapshot id this shadow was cloned from *)
}

val spawn :
  ?bugs_of:(int -> Bgp.Router.bugs) ->
  ?deliver_in_flight:bool ->
  Cut.snapshot ->
  shadow
(** Rebuilds every checkpointed node with its captured configuration
    and state on an isolated network (ideal links), then re-injects the
    snapshot's in-flight channel messages ([deliver_in_flight]
    defaults to [true]). *)

val speaker : shadow -> int -> Bgp.Speaker.t
val run : shadow -> Netsim.Time.span -> unit
(** Advance the shadow's virtual time. *)

val run_to_quiescence : ?max_events:int -> shadow -> bool
(** Run until the shadow's queue drains ([true]) or the event budget is
    hit ([false]).  Shadow speakers have no liveness timers, so
    quiescence is reachable. *)

val loc_rib_fingerprint : shadow -> int
(** Hash of every speaker's Loc-RIB — used by isolation and oscillation
    checks. *)
