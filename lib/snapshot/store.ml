type shadow = {
  sh_engine : Netsim.Engine.t;
  sh_net : string Netsim.Network.t;
  sh_speakers : (int * Bgp.Speaker.t) list;
  sh_by_id : (int, Bgp.Speaker.t) Hashtbl.t;
  sh_from : int;
}

let spawn ?(bugs_of = fun _ -> Bgp.Router.no_bugs) ?(deliver_in_flight = true)
    (snap : Cut.snapshot) =
  let engine = Netsim.Engine.create ~seed:(0xD1CE + snap.Cut.snap_id) () in
  let net = Netsim.Network.create engine in
  (* A partial cut's channel list can reference nodes the sweep never
     checkpointed; give those black-hole stand-ins so checkpointed
     speakers can still talk toward them. *)
  let nodes =
    List.sort_uniq Int.compare
      (List.map fst snap.Cut.checkpoints
      @ List.concat_map
          (fun (c : Cut.channel_record) -> [ c.Cut.ch_from; c.Cut.ch_to ])
          snap.Cut.channels)
  in
  List.iter (fun id -> Netsim.Network.add_node net id (fun ~src:_ _ -> ())) nodes;
  (* Recreate exactly the channels the snapshot saw, with ideal links:
     shadow exploration cares about ordering and content, not latency. *)
  List.iter
    (fun (c : Cut.channel_record) ->
      Netsim.Network.connect net c.Cut.ch_from c.Cut.ch_to Netsim.Link.ideal)
    snap.Cut.channels;
  let speakers =
    List.map
      (fun (id, cp) -> (id, Checkpoint.respawn cp ~net ~bugs:(bugs_of id)))
      snap.Cut.checkpoints
  in
  if deliver_in_flight then
    List.iter
      (fun (c : Cut.channel_record) ->
        List.iter
          (fun msg ->
            Netsim.Network.send net ~src:c.Cut.ch_from ~dst:c.Cut.ch_to msg)
          c.Cut.ch_messages)
      snap.Cut.channels;
  let by_id = Hashtbl.create (List.length speakers) in
  List.iter (fun (id, sp) -> Hashtbl.replace by_id id sp) speakers;
  { sh_engine = engine;
    sh_net = net;
    sh_speakers = speakers;
    sh_by_id = by_id;
    sh_from = snap.Cut.snap_id }

let speaker sh id =
  match Hashtbl.find_opt sh.sh_by_id id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Store.speaker: node %d not in shadow" id)

let run sh span =
  Netsim.Engine.run ~until:(Netsim.Time.add (Netsim.Engine.now sh.sh_engine) span)
    sh.sh_engine

let run_to_quiescence ?(max_events = 100_000) sh =
  let budget = ref max_events in
  let rec go () =
    if !budget <= 0 then false
    else if Netsim.Engine.pending sh.sh_engine = 0 then true
    else begin
      decr budget;
      ignore (Netsim.Engine.step sh.sh_engine);
      go ()
    end
  in
  go ()

(* Full-content digest: [Hashtbl.hash] samples only a prefix of large
   structures, which would let distinct global states collide (or
   changed states alias) and confuse the oscillation detector. *)
let loc_rib_fingerprint sh =
  let b = Buffer.create 4096 in
  List.iter
    (fun (id, sp) ->
      Buffer.add_string b (string_of_int id);
      Buffer.add_char b ':';
      Bgp.Prefix.Map.iter
        (fun p (route : Bgp.Rib.route) ->
          Buffer.add_string b (Bgp.Prefix.to_string p);
          Buffer.add_char b '>';
          Buffer.add_string b
            (Bgp.Ipv4.to_string route.Bgp.Rib.source.Bgp.Rib.peer_addr);
          Buffer.add_char b '[';
          Buffer.add_string b
            (Bgp.As_path.to_string route.Bgp.Rib.attrs.Bgp.Attr.as_path);
          Buffer.add_string b "];")
        (Bgp.Speaker.loc_rib sp);
      Buffer.add_char b '\n')
    sh.sh_speakers;
  Hashtbl.hash (Digest.string (Buffer.contents b))
