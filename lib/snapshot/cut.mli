(** Consistent global snapshots via the Chandy–Lamport marker
    algorithm, run over the live simulation's FIFO channels.

    On initiation the initiator checkpoints itself and floods markers;
    every node checkpoints on its first marker and records each
    incoming channel until that channel's marker arrives.  The result
    is a causally consistent cut including in-flight messages — the
    "consistent shadow snapshot of local node checkpoints" of the
    paper's Figure 2 (step 2).

    {b Deadlines.} On a churning substrate a marker can be lost (dead
    node, down link) and a cut would otherwise stall forever.
    {!initiate} therefore accepts a [?deadline]: when it fires before
    the cut closes, the cut {e aborts} into a {!result.Partial} carrying
    everything gathered so far plus the list of channels whose marker
    never arrived.  Completion accounting is pinned to the channel set
    at initiation time, so mid-snapshot topology churn cannot corrupt
    it.  Every initiated cut settles exactly once — completed or
    aborted, it leaves the active table. *)

type channel_record = {
  ch_from : int;
  ch_to : int;
  ch_messages : string list;  (** in arrival order *)
}

type snapshot = {
  snap_id : int;
  initiator : int;
  started_at : Netsim.Time.t;
  completed_at : Netsim.Time.t;
  checkpoints : (int * Checkpoint.t) list;  (** sorted by node *)
  channels : channel_record list;
      (** one record per channel expected at initiation (empty messages
          for channels the sweep never reached) *)
  control_messages : int;  (** markers sent — the overhead metric *)
}

type result =
  | Complete of snapshot
  | Partial of snapshot * (int * int) list
      (** the cut aborted at its deadline; the second component names
          the channels whose marker never arrived *)

val snapshot_of : result -> snapshot
val stalled_of : result -> (int * int) list
(** [\[\]] for [Complete]. *)

val in_flight_total : snapshot -> int

type t
(** The snapshot controller: owns the network's control handler and
    delivery tap.  Create exactly one per network. *)

val create : speakers:(int -> Bgp.Speaker.t) -> string Netsim.Network.t -> t

val initiate :
  ?deadline:Netsim.Time.span -> t -> initiator:int -> on_result:(result -> unit) -> int
(** Starts the marker algorithm from [initiator]; returns the snapshot
    id.  [on_result] fires (via the event engine) exactly once: with
    [Complete] once every channel has been closed by its marker, or with
    [Partial] when [deadline] elapses first.  Without a [deadline] a cut
    that cannot complete stays active indefinitely.  Multiple snapshots
    may be in flight concurrently. *)

val active : t -> int
(** Number of snapshots still collecting. *)

val results : t -> result list
(** Every settled cut, oldest first. *)

val completed : t -> snapshot list
(** The [Complete] subset of {!results}. *)

val aborted : t -> (snapshot * (int * int) list) list
(** The [Partial] subset of {!results}. *)
