(** Regression gate over BENCH.json.

    Compares a freshly measured BENCH.json against a checked-in
    baseline, metric by metric, with per-family noise margins.  The
    comparison logic lives here — as a library — so the thresholds are
    unit-testable; [bin/bench_check] is a thin CLI over {!check}.

    A metric passes when it is within the rule's margin of the
    baseline; a gated metric present in the baseline but {e missing}
    from the fresh file fails (a benchmark silently dropped is itself a
    regression).  Metrics only the fresh file has are ignored — adding
    a benchmark must not require regenerating the baseline first. *)

type direction =
  | Lower_is_better  (** latencies, allocation, memory *)
  | Higher_is_better  (** throughputs *)

type matcher =
  | Prefix of string  (** metric path starts with... *)
  | Suffix of string  (** metric path ends with... *)

type rule = {
  sel : matcher;
  dir : direction;
  ratio : float;
      (** allowed multiplicative drift: [fresh <= base * ratio] for
          lower-is-better, [fresh >= base / ratio] for higher. *)
  slack : float;
      (** absolute grace added on top of the ratio, so near-zero
          baselines don't gate on measurement dust. *)
}

val default_rules : rule list
(** First match wins.  Covers [micro_ns_per_op.*],
    [micro_minor_words_per_op.*] and the [scale.*] per-config metrics;
    workload descriptors (node counts, route totals) match no rule and
    are not gated. *)

type verdict = {
  metric : string;
  base : float;
  fresh : float option;  (** [None]: gated metric missing from fresh *)
  limit : float;  (** the bound [fresh] had to satisfy *)
  dir : direction;
  ok : bool;
}

val metrics : Telemetry.Json.t -> (string * float) list
(** Flattens the gated families of a BENCH.json document into
    dot-joined [path, value] pairs, e.g.
    ["micro_ns_per_op.dice/wire/decode-update"] or
    ["scale.lite.shadows_per_s"]. *)

val check :
  ?rules:rule list -> baseline:Telemetry.Json.t -> fresh:Telemetry.Json.t ->
  unit -> verdict list
(** One verdict per baseline metric that matches a rule, in baseline
    order. *)

val all_ok : verdict list -> bool

val load : string -> (Telemetry.Json.t, string) result
(** Read and parse a BENCH.json file. *)

val pp_verdict : Format.formatter -> verdict -> unit
