module Json = Telemetry.Json

type direction = Lower_is_better | Higher_is_better
type matcher = Prefix of string | Suffix of string

type rule = {
  sel : matcher;
  dir : direction;
  ratio : float;
  slack : float;
}

(* Margins are sized for a noisy shared host measuring with
   min-of-passes: sub-microsecond micro benches have been observed 2.5x
   off on a loaded 1-core box even after min-of-3, so they get 2.0x —
   still strictly below the pre-optimization hot-path costs, which is
   the regression the gate exists to catch.  Coarser wall-clock
   families get ~1.6-2x, allocation counts are near-deterministic and
   get a tight 1.25x.  Suffix rules come first so they beat the family
   catch-alls. *)
let default_rules =
  [ { sel = Suffix ".records_per_s"; dir = Higher_is_better; ratio = 2.0; slack = 0. };
    { sel = Suffix ".shadows_per_s"; dir = Higher_is_better; ratio = 1.6; slack = 0.5 };
    { sel = Suffix ".updates_per_s"; dir = Higher_is_better; ratio = 1.6; slack = 0. };
    { sel = Suffix ".peak_rss_mb"; dir = Lower_is_better; ratio = 1.5; slack = 32. };
    { sel = Suffix ".deploy_s"; dir = Lower_is_better; ratio = 2.0; slack = 1. };
    { sel = Suffix ".converge_s"; dir = Lower_is_better; ratio = 1.8; slack = 2. };
    { sel = Suffix ".fill_s"; dir = Lower_is_better; ratio = 1.8; slack = 1. };
    { sel = Suffix ".lpm_ns"; dir = Lower_is_better; ratio = 1.6; slack = 100. };
    { sel = Suffix ".update_ns"; dir = Lower_is_better; ratio = 1.6; slack = 500. };
    { sel = Suffix ".update_minor_words"; dir = Lower_is_better; ratio = 1.25;
      slack = 16. };
    { sel = Prefix "micro_ns_per_op."; dir = Lower_is_better; ratio = 2.0; slack = 50. };
    { sel = Prefix "micro_minor_words_per_op."; dir = Lower_is_better; ratio = 1.25;
      slack = 8. } ]

type verdict = {
  metric : string;
  base : float;
  fresh : float option;
  limit : float;
  dir : direction;
  ok : bool;
}

let matches metric = function
  | Prefix p -> String.starts_with ~prefix:p metric
  | Suffix s -> String.ends_with ~suffix:s metric

let rule_for rules metric = List.find_opt (fun r -> matches metric r.sel) rules

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Obj _ -> None

(* The gated families.  [micro_*] maps are one level deep (benchmark
   names contain '/', not nesting); [cascade] is a flat metric map;
   [scale] is config -> metric. *)
let metrics doc =
  let field name =
    match doc with
    | Json.Obj fields -> (
        match List.assoc_opt name fields with Some (Json.Obj f) -> f | _ -> [])
    | _ -> []
  in
  let flat prefix =
    List.filter_map (fun (k, v) ->
        Option.map (fun x -> (prefix ^ "." ^ k, x)) (number v))
  in
  flat "micro_ns_per_op" (field "micro_ns_per_op")
  @ flat "micro_minor_words_per_op" (field "micro_minor_words_per_op")
  @ flat "cascade" (field "cascade")
  @ List.concat_map
      (fun (config, v) ->
        match v with
        | Json.Obj inner -> flat ("scale." ^ config) inner
        | _ -> [])
      (field "scale")

let judge (rule : rule) ~base ~fresh =
  match rule.dir with
  | Lower_is_better ->
      let limit = (base *. rule.ratio) +. rule.slack in
      (limit, (match fresh with Some f -> f <= limit | None -> false))
  | Higher_is_better ->
      let limit = Float.max 0. ((base /. rule.ratio) -. rule.slack) in
      (limit, (match fresh with Some f -> f >= limit | None -> false))

let check ?(rules = default_rules) ~baseline ~fresh () =
  let fresh_metrics = metrics fresh in
  List.filter_map
    (fun (metric, base) ->
      match rule_for rules metric with
      | None -> None
      | Some rule ->
          let fresh = List.assoc_opt metric fresh_metrics in
          let limit, ok = judge rule ~base ~fresh in
          Some { metric; base; fresh; limit; dir = rule.dir; ok })
    (metrics baseline)

let all_ok = List.for_all (fun v -> v.ok)

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Json.of_string s

let pp_verdict ppf v =
  let bound = match v.dir with
    | Lower_is_better -> "<="
    | Higher_is_better -> ">="
  in
  Format.fprintf ppf "%-5s %-55s base %12.2f  fresh %12s  (need %s %.2f)"
    (if v.ok then "ok" else "FAIL")
    v.metric v.base
    (match v.fresh with Some f -> Printf.sprintf "%.2f" f | None -> "missing")
    bound v.limit
