(* CI regression gate: compare a fresh BENCH.json against the
   checked-in baseline and exit nonzero if any gated metric regressed
   past its noise margin.  All comparison logic (and its tests) lives
   in Benchgate.Gate; this is only argument parsing and rendering. *)

let run baseline_path fresh_path =
  let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
  let load what path =
    match Benchgate.Gate.load path with
    | Ok doc -> doc
    | Error msg -> die "bench_check: cannot read %s %s: %s" what path msg
  in
  let baseline = load "baseline" baseline_path in
  let fresh = load "fresh" fresh_path in
  let verdicts = Benchgate.Gate.check ~baseline ~fresh () in
  if verdicts = [] then die "bench_check: no gated metrics in %s" baseline_path;
  List.iter (fun v -> Format.printf "%a@." Benchgate.Gate.pp_verdict v) verdicts;
  let failed = List.filter (fun v -> not v.Benchgate.Gate.ok) verdicts in
  Format.printf "%d metric(s) gated, %d regression(s)@." (List.length verdicts)
    (List.length failed);
  if failed <> [] then exit 1

open Cmdliner

let baseline =
  let doc = "Checked-in BENCH.json to gate against." in
  Arg.(required & opt (some file) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let fresh =
  let doc = "Freshly measured BENCH.json." in
  Arg.(required & opt (some file) None & info [ "fresh" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "fail when BENCH.json regressed against a baseline" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Compares the gated metric families (micro ns/op, micro minor \
         words/op, the cascade analyzer throughput and the per-config \
         scale results) of two BENCH.json \
         files.  Each family has a noise margin sized for a shared CI \
         host; a gated metric missing from the fresh file counts as a \
         regression.  Exit status: 0 all within margin, 1 regression, \
         2 usage or parse error." ]
  in
  Cmd.v (Cmd.info "bench_check" ~version:"1.0.0" ~doc ~man)
    Term.(const run $ baseline $ fresh)

let () = exit (Cmd.eval cmd)
