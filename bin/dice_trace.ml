(* Offline cascade analysis: reconstruct the causal propagation graph
   from a dice-telemetry/1 artifact and report self-sustaining failure
   patterns.  Exit status: 0 = clean, 1 = cascade(s) detected, 2 =
   unusable artifact or bad usage — so CI can gate on it directly. *)

let analyze file report_out dot_out min_flips storm_prefixes min_quarantines
    auto_tune =
  match Cascade.Timeline.of_file file with
  | exception Sys_error msg ->
      Printf.eprintf "dice_trace: %s\n" msg;
      2
  | Error msgs ->
      Printf.eprintf "dice_trace: %s is not a valid artifact:\n" file;
      List.iter (fun m -> Printf.eprintf "  %s\n" m) msgs;
      2
  | Ok timeline ->
      let params =
        let base =
          { Cascade.Detect.default_params with
            Cascade.Detect.min_flips;
            storm_prefixes;
            min_quarantines }
        in
        if auto_tune then Cascade.Detect.auto_params ~base timeline else base
      in
      if auto_tune && params.Cascade.Detect.min_flips <> min_flips then
        Printf.printf "auto-tuned min-flips to %d (%d rounds observed)\n"
          params.Cascade.Detect.min_flips timeline.Cascade.Timeline.tl_rounds;
      let propagation, cascades = Cascade.Detect.run ~params timeline in
      Printf.printf
        "%s: %d record(s) over %.1fs sim time — %d round(s), %d fault(s), \
         %d sys event(s), %d loc-rib flip(s)\n"
        file timeline.Cascade.Timeline.tl_records
        (float_of_int (Cascade.Timeline.duration_us timeline) /. 1e6)
        timeline.Cascade.Timeline.tl_rounds
        (List.length timeline.Cascade.Timeline.tl_faults)
        (List.length timeline.Cascade.Timeline.tl_sys)
        (List.length timeline.Cascade.Timeline.tl_flips);
      Printf.printf "propagation graph: %d state(s), %d edge(s), %d cycle(s)\n"
        (Cascade.Graph.vertex_count propagation)
        (Cascade.Graph.edge_count propagation)
        (List.length (Cascade.Graph.sccs propagation));
      (match report_out with
      | None -> ()
      | Some path ->
          Cascade.Report.write ~path
            (Cascade.Report.to_json ~timeline ~propagation cascades);
          Printf.printf "wrote %s report to %s\n" Cascade.Report.version path);
      (match dot_out with
      | None -> ()
      | Some path ->
          Cascade.Report.write_dot ~path propagation;
          Printf.printf "wrote propagation graph to %s\n" path);
      (match cascades with
      | [] ->
          print_endline "no cascades detected.";
          0
      | cs ->
          Printf.printf "%d cascade(s) detected:\n" (List.length cs);
          List.iter (fun c -> Format.printf "  %a@." Cascade.Detect.pp c) cs;
          1)

open Cmdliner

let file =
  let doc = "The dice-telemetry/1 JSONL artifact to analyze." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let report_out =
  let doc = "Write the dice-cascade/1 JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"OUT.json" ~doc)

let dot_out =
  let doc = "Write a Graphviz rendering of the propagation graph to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"OUT.dot" ~doc)

let min_flips =
  let doc =
    "Minimum loc-rib changes in one (node, prefix) series before it can \
     count as oscillating (the series must also close a cycle in the \
     propagation graph)."
  in
  Arg.(
    value
    & opt int Cascade.Detect.default_params.Cascade.Detect.min_flips
    & info [ "min-flips" ] ~docv:"N" ~doc)

let storm_prefixes =
  let doc = "Distinct oscillating prefixes that aggregate into one flap storm." in
  Arg.(
    value
    & opt int Cascade.Detect.default_params.Cascade.Detect.storm_prefixes
    & info [ "storm-prefixes" ] ~docv:"N" ~doc)

let min_quarantines =
  let doc = "Quarantines of one node before ping-pong is considered." in
  Arg.(
    value
    & opt int Cascade.Detect.default_params.Cascade.Detect.min_quarantines
    & info [ "min-quarantines" ] ~docv:"N" ~doc)

let auto_tune =
  let doc =
    "Auto-tune --min-flips to the artifact's observed round cadence \
     (max(--min-flips, rounds/2)): long campaign timelines demand \
     proportionally more flip evidence, while --min-flips stays the \
     hard floor."
  in
  Arg.(value & flag & info [ "auto-min-flips" ] ~doc)

let analyze_cmd =
  let doc = "detect cascades in a telemetry artifact" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Reconstructs the per-round span forest and the causal \
         fault-propagation graph from a dice-telemetry/1 artifact: fault \
         records linked by signature recurrence across rounds, by \
         fault-to-churn/quarantine induction, and by per-prefix loc-rib \
         flip-flops.  Cycles in the state graph (strongly connected \
         components), gated by the per-prefix flap spectrum, classify \
         route oscillations, flap storms and quarantine ping-pong.";
      `S Manpage.s_exit_status;
      `P "0 on a clean timeline, 1 when cascades were detected, 2 when the \
          artifact could not be read." ]
  in
  Cmd.v
    (Cmd.info "analyze" ~doc ~man)
    Term.(
      const analyze $ file $ report_out $ dot_out $ min_flips $ storm_prefixes
      $ min_quarantines $ auto_tune)

let cmd =
  let doc = "causal cascade analysis over DiCE telemetry" in
  Cmd.group (Cmd.info "dice_trace" ~version:"1.0.0" ~doc) [ analyze_cmd ]

let () = exit (Cmd.eval' cmd)
