(* Standalone differential fuzzer for the BGP wire codec.

   Two corpora per run:
   - raw random byte strings (envelope fuzzing);
   - valid encoded messages corrupted by every {!Netsim.Mangler} corpus
     kind (structured fuzzing: reaches deep attribute parsing that raw
     bytes almost never frame correctly).

   The contract under test is totality: [Bgp.Wire.decode] must return
   [Ok] or [Error] on every input — any escaped exception, and any
   reserved codec-crash error report, is a decoder bug.  Failing
   buffers are byte-minimized with the triage delta debugger and filed
   into a dice-corpus/1 directory (one entry per stable signature, the
   same schema the orchestrated triage pipeline writes), so
   [dice_triage replay CORPUS_DIR] reproduces them; the process exits
   nonzero so CI can archive the corpus.

   Usage: fuzz_wire [CASES] [SEED] [CORPUS_DIR]   (also --budget/--seed/--corpus)
   Defaults: 10000 cases, seed 1, corpus dir "fuzz-corpus". *)

let hex s =
  String.concat ""
    (List.map
       (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let failures : (string * string) list ref = ref []

let record ~why buf = failures := (why, buf) :: !failures

let classify buf =
  match Bgp.Wire.decode buf with
  | Ok _ -> ()
  | Error e when Bgp.Wire.is_codec_crash e ->
      record ~why:("codec-crash: " ^ e.Bgp.Wire.reason) buf
  | Error _ -> ()
  | exception exn -> record ~why:("escaped: " ^ Printexc.to_string exn) buf

let random_bytes rng =
  let len = Netsim.Rng.int rng 96 in
  String.init len (fun _ -> Char.chr (Netsim.Rng.int rng 256))

(* A pool of well-formed messages to corrupt: every message type, plus
   UPDATEs with withdrawn routes, unknown attributes and fat paths. *)
let seed_messages =
  let ip = Bgp.Ipv4.of_string_exn in
  let p = Bgp.Prefix.of_string_exn in
  let attrs ?unknown path =
    Bgp.Attr.make ~origin:Bgp.Attr.Igp
      ~as_path:[ Bgp.As_path.Seq path ]
      ?unknown ~next_hop:(ip "10.0.0.1") ()
  in
  [ Bgp.Msg.Keepalive;
    Bgp.Msg.Open { version = 4; my_as = 65001; hold_time = 90; bgp_id = ip "10.0.0.1" };
    Bgp.Msg.Notification { code = 6; subcode = 0; data = "cease" };
    Bgp.Msg.Update { withdrawn = []; attrs = Some (attrs [ 65001 ]); nlri = [ p "192.0.2.0/24" ] };
    Bgp.Msg.Update
      { withdrawn = [ p "198.51.100.0/24" ];
        attrs = Some (attrs [ 65001; 65002; 65003 ]);
        nlri = [ p "192.0.2.0/25"; p "192.0.2.128/25" ] };
    Bgp.Msg.Update
      { withdrawn = [];
        attrs =
          Some
            (attrs
               ~unknown:[ { Bgp.Attr.u_type = 99; u_flags = 0xC0; u_value = "\x01\x02" } ]
               [ 65001 ]);
        nlri = [ p "203.0.113.0/24" ] };
    Bgp.Msg.Update { withdrawn = [ p "0.0.0.0/0" ]; attrs = None; nlri = [] } ]

let mangled_case rng =
  let raw =
    Bgp.Wire.encode (List.nth seed_messages (Netsim.Rng.int rng (List.length seed_messages)))
  in
  let kinds = Netsim.Mangler.corpus_kinds in
  let kind = List.nth kinds (Netsim.Rng.int rng (List.length kinds)) in
  Netsim.Mangler.mutate rng kind raw

let () =
  let { Confuzz.Cli.cl_budget = cases; cl_seed = seed; cl_corpus = corpus_dir } =
    Confuzz.Cli.parse ~prog:"fuzz_wire"
      ~defaults:
        { Confuzz.Cli.cl_budget = 10000; cl_seed = 1; cl_corpus = "fuzz-corpus" }
      Sys.argv
  in
  let rng = Netsim.Rng.create seed in
  for _ = 1 to cases do
    classify (random_bytes rng);
    classify (mangled_case rng)
  done;
  match !failures with
  | [] ->
      Printf.printf "fuzz_wire: %d raw + %d mangled cases, decode total, 0 failures\n"
        cases cases
  | fs ->
      List.iter
        (fun (why, buf) ->
          let scenario = Triage.Scenario.Wire buf in
          match (Triage.Scenario.run scenario).Triage.Scenario.o_signatures with
          | [] ->
              (* Should be unreachable: [classify] and [Scenario.run]
                 agree on what a wire failure is. *)
              Printf.eprintf "fuzz_wire: FAIL %s (%s) -- unclassifiable\n" (hex buf) why
          | sg :: _ ->
              let r =
                Triage.Minimize.run ~max_tests:2000 ~target:sg scenario
              in
              let entry =
                Triage.Corpus.add ~dir:corpus_dir sg r.Triage.Minimize.r_minimized
              in
              Printf.eprintf
                "fuzz_wire: FAIL %s (%s)\n  minimized %d -> %d bytes, filed %s (hits %d)\n"
                (hex buf) why r.Triage.Minimize.r_original_size
                r.Triage.Minimize.r_minimized_size
                (Filename.concat corpus_dir (Triage.Corpus.filename_of sg))
                entry.Triage.Corpus.e_hits)
        fs;
      Printf.eprintf
        "fuzz_wire: %d failing buffer(s) filed into %s/ (dice-corpus/1; replay \
         with `dice_triage replay %s`)\n"
        (List.length fs) corpus_dir corpus_dir;
      exit 1
