(* Coverage-guided configuration fuzzer.

   Deploys the embedded gadget topology (12 routers, Gao-Rexford
   policies over a potential dispute wheel), then spends the budget
   injecting seeded operator errors from the confuzz mutation catalog
   — guided by clause coverage of the deployed route maps: mutants
   that light up new policy clauses or surface new fault signatures
   stay in the pool and are mutated further.

   Every finding is a deterministic triage scenario (the mutation list
   is part of it), so it is delta-minimized like a wire repro — the
   mutation list itself is ddmin'd — and filed into a dice-corpus/1
   directory for `dice_triage replay CORPUS_DIR`.  The process exits
   nonzero when it finds anything, so CI can archive the corpus.

   Usage: fuzz_config [BUDGET [SEED [CORPUS_DIR]]] [flags]
   Defaults: budget 150 mutants, seed 1, corpus dir "confuzz-corpus". *)

let defaults =
  { Confuzz.Cli.cl_budget = 150; cl_seed = 1; cl_corpus = "confuzz-corpus" }

let scenario_of ~seed stack =
  let dr_node =
    match stack with m :: _ -> Confuzz.Mutation.node_of m | [] -> 0
  in
  Triage.Scenario.Deploy
    { Triage.Scenario.dp_topo = Triage.Scenario.Gadget;
      dp_keep = None;
      dp_seed = seed;
      dp_inject = None;
      dp_settle_sec = 5.;
      dp_churn = [];
      dp_mangle = None;
      dp_confuzz = stack;
      dp_cascade = false;
      dp_mode = Triage.Scenario.Direct { dr_node; dr_peer = 0; dr_input = None } }

let () =
  let report_path = ref "confuzz-report.json" in
  let compare_random = ref false in
  let max_stack = ref Confuzz.Loop.default_params.Confuzz.Loop.p_max_stack in
  let minimize_tests = ref 200 in
  let { Confuzz.Cli.cl_budget = budget; cl_seed = seed; cl_corpus = corpus_dir } =
    Confuzz.Cli.parse ~prog:"fuzz_config" ~defaults
      ~specs:
        [ Confuzz.Cli.Str
            ( "--report",
              (fun s -> report_path := s),
              "write the dice-confuzz-cov/1 coverage report here (default \
               confuzz-report.json)" );
          Confuzz.Cli.Flag
            ( "--compare-random",
              (fun () -> compare_random := true),
              "also run an unguided arm under the same seed and budget, \
               recorded in the report" );
          Confuzz.Cli.Int
            ( "--max-stack",
              (fun n -> max_stack := n),
              "mutations per mutant cap (default 4)" );
          Confuzz.Cli.Int
            ( "--minimize-tests",
              (fun n -> minimize_tests := n),
              "replay budget when minimizing each finding (default 200)" ) ]
      Sys.argv
  in
  let graph = Topology.Gadget.embedded () in
  let ctx = Confuzz.Mutation.ctx_of_graph graph in
  let run_mutant stack =
    (Triage.Scenario.run (scenario_of ~seed stack)).Triage.Scenario.o_signatures
  in
  let arm guided =
    Confuzz.Loop.run
      ~params:
        { Confuzz.Loop.p_budget = budget;
          p_seed = seed;
          p_guided = guided;
          p_max_stack = !max_stack }
      ~ctx ~run_mutant ()
  in
  (* The unguided comparison arm runs first so the final metric state
     in the report belongs to the guided campaign. *)
  let random = if !compare_random then Some (arm false) else None in
  let guided = arm true in
  Confuzz.Report.write ~path:!report_path
    (Confuzz.Report.to_json ~guided ?random ());
  Format.printf "%t%!" (fun ppf ->
      Confuzz.Report.pp_summary ppf ~guided ?random ());
  Printf.printf "fuzz_config: wrote coverage report to %s\n%!" !report_path;
  match guided.Confuzz.Loop.rs_findings with
  | [] ->
      Printf.printf "fuzz_config: %d mutant(s), no faults found\n" budget
  | findings ->
      List.iter
        (fun (f : Confuzz.Loop.finding) ->
          let scenario = scenario_of ~seed f.Confuzz.Loop.f_mutations in
          List.iter
            (fun m ->
              Printf.eprintf "fuzz_config: FAULT via %s\n"
                (Confuzz.Mutation.describe m))
            f.Confuzz.Loop.f_mutations;
          match f.Confuzz.Loop.f_signatures with
          | [] -> ()
          | sg :: _ ->
              let r =
                Triage.Minimize.run ~max_tests:!minimize_tests ~target:sg
                  scenario
              in
              let entry =
                Triage.Corpus.add ~dir:corpus_dir sg r.Triage.Minimize.r_minimized
              in
              Printf.eprintf
                "  %s\n  minimized size %d -> %d, filed %s (hits %d)\n"
                (Triage.Signature.to_string sg)
                r.Triage.Minimize.r_original_size
                r.Triage.Minimize.r_minimized_size
                (Filename.concat corpus_dir (Triage.Corpus.filename_of sg))
                entry.Triage.Corpus.e_hits)
        findings;
      Printf.eprintf
        "fuzz_config: %d finding(s) filed into %s/ (dice-corpus/1; replay \
         with `dice_triage replay %s`)\n"
        (List.length findings) corpus_dir corpus_dir;
      exit 1
