(* The demo driver: reproduces the paper's demonstration — DiCE
   executing an exploration experiment over a topology of 27 BGP
   routers under Internet-like conditions — and renders the view the
   demo GUI showed (Figure 1). *)

let setup_logging verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end

(* "gao-rexford:N" — N routers in the canonical Internet-like tiering;
   bare "gao-rexford" takes N from --nodes. *)
let gao_rexford_nodes topo nodes =
  if String.equal topo "gao-rexford" then Some nodes
  else
    match String.index_opt topo ':' with
    | Some i when String.equal (String.sub topo 0 i) "gao-rexford" -> (
        let arg = String.sub topo (i + 1) (String.length topo - i - 1) in
        match int_of_string_opt arg with
        | Some n when n >= 5 -> Some n
        | Some _ | None ->
            failwith
              (Printf.sprintf "gao-rexford:%s: expected a node count >= 5" arg))
    | Some _ | None -> None

let make_graph topo nodes seed =
  match gao_rexford_nodes topo nodes with
  | Some n -> Topology.Gao_rexford.scale_graph ~nodes:n ~seed
  | None -> (
      match topo with
      | "demo27" -> Topology.Demo27.graph
      | "gadget" -> Topology.Gadget.embedded ()
      | "bad-gadget" -> Topology.Gadget.bad_gadget ()
      | file when String.length file > 1 && file.[0] = '@' -> (
          match
            Topology.Topo_file.load (String.sub file 1 (String.length file - 1))
          with
          | Ok g -> g
          | Error msg -> failwith msg)
      | "random" ->
          let stub = max 1 (nodes / 2) in
          let transit = max 1 (nodes - stub - 2) in
          let t1 = max 1 (nodes - stub - transit) in
          Topology.Generate.generate
            ~params:
              { Topology.Generate.default_params with n_tier1 = t1;
                n_transit = transit; n_stub = stub }
            (Netsim.Rng.create seed)
      | other ->
          failwith
            (Printf.sprintf
               "unknown topology %S \
                (demo27|gadget|bad-gadget|random|gao-rexford[:N]|@file.topo)"
               other))

let scenario_of_fault fault =
  match fault with
    | "none" -> None
    | "hijack" -> Some (Dice.Inject.Prefix_hijack { at = 21; victim = 11 })
    | "martian" -> Some (Dice.Inject.Bogus_netmask { at = 12 })
    | "dispute" ->
        Some
          (Dice.Inject.Policy_dispute
             { cycle = Topology.Gadget.wheel; victim = Topology.Gadget.victim })
    | "loop-bug" -> Some (Dice.Inject.Loop_check_bug { at = 3 })
    | "med-bug" -> Some (Dice.Inject.Inverted_med_bug { at = 3 })
    | "crash-bug" ->
        Some (Dice.Inject.Crash_bug { at = 3; community = Bgp.Community.make 64999 13 })
    | other ->
        failwith
          (Printf.sprintf
             "unknown fault %S (none|hijack|martian|dispute|loop-bug|med-bug|crash-bug)"
             other)

let inject_scenario build scenario =
  match scenario with
  | None -> ()
  | Some s ->
      Dice.Inject.apply build s;
      Printf.printf "injected: %s\n%!" (Dice.Inject.describe s)

(* Under --churn: crash-and-restore ~20% of the nodes and flap ~20% of
   the links across the whole run, while cuts get a deadline so a lost
   marker aborts into a Partial instead of stalling the round.  The
   schedule is built separately from being armed so --corpus can store
   it in the run's scenario. *)
let churn_schedule graph seed rounds =
  let links =
    List.map (fun (e : Topology.Graph.edge) -> (e.Topology.Graph.a, e.Topology.Graph.b))
      graph.Topology.Graph.edges
  in
  Netsim.Churn.random
    ~rng:(Netsim.Rng.create (seed lxor 0xC4A0))
    ~nodes:(Topology.Graph.node_ids graph)
    ~links ~start:(Netsim.Time.span_sec 5.)
    ~duration:(Netsim.Time.span_sec (float_of_int rounds *. 10.))
    ()

let start_churn build schedule =
  Printf.printf "churn schedule: %d node crash(es), %d link flap(s)\n%!"
    (Netsim.Churn.node_crashes schedule)
    (Netsim.Churn.link_downs schedule);
  Format.printf "%a%!" Netsim.Churn.pp schedule;
  ignore (Netsim.Churn.apply build.Topology.Build.net schedule)

(* Under --adversary: mangle live wire traffic at [rate], absorb (and
   later restart) routers that die on it, seed a fragile-decode bug on
   one router so there is a real programming error to surface, and feed
   the explorer mangled exploration seeds.  At rate 0 the installed
   mangler draws no randomness and no bug is seeded, so the run is
   identical to one without --adversary. *)
let start_adversary build graph seed rate =
  if rate < 0. || rate > 1. then failwith "mangle rate must be in [0,1]";
  let net = build.Topology.Build.net in
  Netsim.Network.set_crash_policy net
    (Netsim.Network.Absorb { restart_after = Some (Netsim.Time.span_sec 10.) });
  let m = Netsim.Mangler.create ~seed:(seed lxor 0xAD5E) ~rate () in
  Netsim.Mangler.install m net;
  if rate > 0. then begin
    let ids = Topology.Graph.node_ids graph in
    let victim = List.nth ids (min 3 (List.length ids - 1)) in
    let sp = Topology.Build.speaker build victim in
    sp.Bgp.Speaker.sp_set_bugs
      { (sp.Bgp.Speaker.sp_bugs ()) with Bgp.Router.fragile_decode = true };
    Printf.printf
      "adversary: mangling wire traffic at rate %.3f; seeded fragile-decode bug \
       at node %d\n%!"
      rate victim;
    Some victim
  end
  else None

(* Under --confuzz: apply N seeded operator-error config mutations to
   the live routers before exploring, so DiCE hunts for faults caused
   by the configuration itself.  At 0 no RNG is created and no config
   is touched, so the run is identical to one without --confuzz. *)
let start_confuzz build graph seed n =
  if n <= 0 then []
  else begin
    let rng = Netsim.Rng.create (seed lxor 0xC0F2) in
    let ctx = Confuzz.Mutation.ctx_of_graph graph in
    let rec gen acc k tries =
      if k = 0 || tries = 0 then List.rev acc
      else
        match Confuzz.Mutation.random ~rng ~parent:(List.rev acc) ctx with
        | None -> gen acc k (tries - 1)
        | Some m -> (
            match
              Confuzz.Mutation.apply_speaker (Topology.Build.speaker build) m
            with
            | Ok () ->
                Printf.printf "confuzz: %s\n%!" (Confuzz.Mutation.describe m);
                gen (m :: acc) (k - 1) (tries - 1)
            | Error _ -> gen acc k (tries - 1))
    in
    gen [] n (8 * n)
  end

(* Under --corpus: describe this very run as a replayable triage
   scenario, so every live detection can be confirmed headlessly,
   delta-minimized and filed. *)
let scenario_of_run ~topo ~nodes ~seed ~inject ~rounds ~churn_sched ~mangle
    ~confuzz ~churned ~cascade =
  let scenario_topo =
    match gao_rexford_nodes topo nodes with
    | Some n ->
        (* Same generator and seed as [make_graph], so the replay
           rebuilds the identical graph. *)
        let r_tier1, r_transit, r_stub = Topology.Gao_rexford.tiering ~nodes:n in
        Some (Triage.Scenario.Random { r_seed = seed; r_tier1; r_transit; r_stub })
    | None -> (
        match topo with
        | "demo27" -> Some Triage.Scenario.Demo27
        | "gadget" -> Some Triage.Scenario.Gadget
        | "bad-gadget" -> Some Triage.Scenario.Bad_gadget
        | "random" ->
            let stub = max 1 (nodes / 2) in
            let transit = max 1 (nodes - stub - 2) in
            let t1 = max 1 (nodes - stub - transit) in
            Some
              (Triage.Scenario.Random
                 { r_seed = seed; r_tier1 = t1; r_transit = transit; r_stub = stub })
        | _ -> None  (* @file topologies have no self-contained description *))
  in
  Option.map
    (fun dp_topo ->
      Triage.Scenario.Deploy
        { Triage.Scenario.dp_topo;
          dp_keep = None;
          dp_seed = seed;
          dp_inject = inject;
          dp_settle_sec = 10.;
          dp_churn = Option.value churn_sched ~default:[];
          dp_mangle = mangle;
          dp_confuzz = confuzz;
          dp_cascade = cascade;
          dp_mode =
            Triage.Scenario.Explore
              { Triage.Scenario.default_exploration with
                Triage.Scenario.ex_rounds = rounds;
                ex_mangle_extra = (if mangle <> None then 6 else 0);
                ex_mangle_seed = (if mangle <> None then seed lxor 0x5EED else 0);
                ex_deadline_sec = (if churned then Some 30. else None) } })
    scenario_topo

(* Under --campaign: run a declarative dice-campaign/1 sweep through the
   supervising driver instead of a single demo deployment.  The demo's
   overlay flags compose onto every template: --churn adds a random
   churn schedule to templates that have none, --adversary arms the
   wire mangler at --mangle-rate, --cascade re-arms the per-replay
   detector, --corpus redirects filing, --telemetry wraps the whole
   campaign in a flight-recorder artifact.  A directory that already
   holds a journal is resumed rather than restarted. *)
let overlay_scenario ~churn ~adversary ~mangle_rate ~cascade scenario =
  match scenario with
  | Triage.Scenario.Wire _ -> scenario
  | Triage.Scenario.Deploy d ->
      let rounds =
        match d.Triage.Scenario.dp_mode with
        | Triage.Scenario.Explore e -> e.Triage.Scenario.ex_rounds
        | Triage.Scenario.Direct _ -> 3
      in
      let dp_churn =
        if churn && d.Triage.Scenario.dp_churn = [] then
          churn_schedule (Triage.Scenario.graph_of d) d.Triage.Scenario.dp_seed
            rounds
        else d.Triage.Scenario.dp_churn
      in
      let dp_mangle =
        if adversary && mangle_rate > 0. && d.Triage.Scenario.dp_mangle = None
        then
          Some
            { Triage.Scenario.mg_seed = d.Triage.Scenario.dp_seed lxor 0xAD5E;
              mg_rate = mangle_rate;
              mg_kinds = [];
              mg_schedule = [];
              mg_fragile_node = None }
        else d.Triage.Scenario.dp_mangle
      in
      Triage.Scenario.Deploy
        { d with
          Triage.Scenario.dp_churn;
          dp_mangle;
          dp_cascade = d.Triage.Scenario.dp_cascade || cascade }

let run_campaign spec_path dir ~churn ~adversary ~mangle_rate ~cascade
    ~corpus_dir ~telemetry_file ~verbose =
  let fail msg =
    Printf.eprintf "dice_demo: %s\n" msg;
    2
  in
  match Campaign.Spec.load spec_path with
  | Error e -> fail e
  | Ok spec -> (
      let spec =
        { spec with
          Campaign.Spec.c_templates =
            List.map
              (fun (t : Campaign.Spec.template) ->
                { t with
                  Campaign.Spec.t_scenario =
                    overlay_scenario ~churn ~adversary ~mangle_rate ~cascade
                      t.Campaign.Spec.t_scenario })
              spec.Campaign.Spec.c_templates }
      in
      let log = if verbose then prerr_endline else ignore in
      let go () =
        if Sys.file_exists (Filename.concat dir "journal.jsonl") then begin
          Printf.printf "resuming campaign in %s\n%!" dir;
          Campaign.Run.resume ~log ?corpus_dir ~dir ()
        end
        else begin
          Printf.printf "campaign %S: %d template(s), %d job(s) -> %s\n%!"
            spec.Campaign.Spec.c_name
            (List.length spec.Campaign.Spec.c_templates)
            (List.length (Campaign.Spec.jobs spec))
            dir;
          Campaign.Run.start ~log ?corpus_dir ~dir spec
        end
      in
      let result =
        match telemetry_file with
        | None -> go ()
        | Some path ->
            let r =
              Telemetry.with_jsonl path
                ~attrs:
                  [ ("campaign", Telemetry.Json.String spec.Campaign.Spec.c_name) ]
                go
            in
            Printf.printf "wrote telemetry to %s\n%!" path;
            r
      in
      match result with
      | Error e -> fail e
      | Ok r ->
          List.iter (fun w -> Printf.eprintf "warning: %s\n" w) r.Campaign.Run.r_warnings;
          Printf.printf
            "campaign %s: %d/%d job(s) complete (%d executed, %d replayed), \
             %d signature(s) filed\n"
            r.Campaign.Run.r_report.Campaign.Report.r_outcome
            r.Campaign.Run.r_completed r.Campaign.Run.r_total
            r.Campaign.Run.r_executed r.Campaign.Run.r_replayed
            (List.length r.Campaign.Run.r_filed);
          Printf.printf "report: %s\n" (Filename.concat dir "report.json");
          if r.Campaign.Run.r_report.Campaign.Report.r_gate_failed then begin
            print_endline "health gate FAILED: self-sustaining failure(s) observed";
            1
          end
          else 0)

let run topo nodes seed fault rounds churn adversary mangle_rate confuzz
    cascade corpus_dir dot_file telemetry_file report verbose campaign
    campaign_dir =
  (match campaign with
  | Some spec_path ->
      exit
        (run_campaign spec_path campaign_dir ~churn ~adversary ~mangle_rate
           ~cascade ~corpus_dir ~telemetry_file ~verbose)
  | None -> ());
  setup_logging verbose;
  let graph = make_graph topo nodes seed in
  Printf.printf "deploying %s\n%!" (Topology.Render.summary_line graph);
  let build = Topology.Build.deploy ~seed graph in
  Topology.Build.start_all build;
  if not (Topology.Build.converge build) then
    print_endline "warning: live system did not quiesce (expected under dispute wheels)";
  Printf.printf "live: %d routes, %d sessions established\n%!"
    (Topology.Build.total_loc_routes build)
    (Topology.Build.established_sessions build);
  let inject = scenario_of_fault fault in
  inject_scenario build inject;
  let confuzz_ms = start_confuzz build graph seed confuzz in
  Topology.Build.run_for build (Netsim.Time.span_sec 10.);
  let gt = Dice.Checks.ground_truth_of_graph graph in
  let rounds =
    match rounds with Some r -> r | None -> Topology.Graph.size graph
  in
  let fragile = if adversary then start_adversary build graph seed mangle_rate else None in
  let adversary_on = adversary && mangle_rate > 0. in
  let churn_sched = if churn then Some (churn_schedule graph seed rounds) else None in
  let params =
    let base =
      match churn_sched with
      | Some sched ->
          start_churn build sched;
          Some
            { Dice.Explorer.default_params with
              snapshot_deadline = Some (Netsim.Time.span_sec 30.) }
      | None -> None
    in
    if adversary_on then
      (* Mangled live traffic can cost the cut a marker (a crashed
         router drops everything until its restart), so adversarial
         runs need the deadline too. *)
      let p = Option.value base ~default:Dice.Explorer.default_params in
      Some
        { p with
          snapshot_deadline = Some (Netsim.Time.span_sec 30.);
          mangle_extra = 6;
          mangle_seed = seed lxor 0x5EED }
    else base
  in
  let collector =
    match corpus_dir with
    | None -> None
    | Some dir -> (
        let mangle =
          if adversary_on then
            Some
              { Triage.Scenario.mg_seed = seed lxor 0xAD5E;
                mg_rate = mangle_rate;
                mg_kinds = [];
                mg_schedule = [];
                mg_fragile_node = fragile }
          else None
        in
        match
          scenario_of_run ~topo ~nodes ~seed ~inject ~rounds ~churn_sched
            ~mangle ~confuzz:confuzz_ms ~churned:(churn || adversary_on)
            ~cascade
        with
        | None ->
            print_endline
              "warning: --corpus needs a self-contained topology \
               (demo27|gadget|random); detections will not be filed";
            None
        | Some scenario ->
            Printf.printf "corpus: filing minimized repros into %s\n%!" dir;
            Some
              (Triage.Auto.collector ~max_tests:60 ~corpus_dir:dir ~scenario
                 ~graph ()))
  in
  let on_fault = Option.map Triage.Auto.hook collector in
  Printf.printf "running DiCE for %d exploration rounds%s%s...\n%!" rounds
    (if churn then " under churn" else "")
    (if adversary_on then " under adversarial wire faults" else "");
  let explore () =
    if not cascade then Dice.Orchestrator.run ?params ?on_fault ~build ~gt ~rounds ()
    else
      (* The monitor tees whatever sink is current (the --telemetry
         artifact included) with its own bounded ring, and the
         orchestrator polls it after every round — cascades surface
         while the deployment is still oscillating, and flow into
         --corpus like any other detection. *)
      Cascade.Online.with_monitor @@ fun mon ->
      Dice.Orchestrator.run ?params ?on_fault
        ~probe:(fun () -> Cascade.Online.probe mon)
        ~on_cascade:(fun f -> Format.printf "cascade detected: %a@." Dice.Fault.pp f)
        ~build ~gt ~rounds ()
  in
  let summary =
    match telemetry_file with
    | None -> explore ()
    | Some path ->
        (* The orchestrator re-installs the sim clock at run entry, but
           the run header is written before that — install it here so
           even the header timestamp is simulated time. *)
        Telemetry.set_clock (fun () ->
            Netsim.Time.to_us (Netsim.Engine.now build.Topology.Build.engine));
        let summary =
          Telemetry.with_jsonl path
            ~attrs:
              [ ("topology", Telemetry.Json.String topo);
                ("seed", Telemetry.Json.Int seed);
                ("fault", Telemetry.Json.String fault);
                ("rounds", Telemetry.Json.Int rounds);
                ("churn", Telemetry.Json.Bool churn);
                ("adversary", Telemetry.Json.Bool adversary_on) ]
            explore
        in
        Printf.printf "wrote telemetry to %s\n%!" path;
        summary
  in
  let annotations =
    List.filter_map
      (fun (r : Dice.Orchestrator.round) ->
        match Dice.Orchestrator.round_exploration r with
        | None -> None
        | Some x ->
            Some
              ( x.Dice.Explorer.x_node,
                { Topology.Render.label =
                    Printf.sprintf "%din/%dp" x.Dice.Explorer.x_inputs
                      x.Dice.Explorer.x_distinct_paths;
                  highlight = x.Dice.Explorer.x_faults <> [] } ))
      summary.Dice.Orchestrator.rounds
  in
  print_newline ();
  print_string (Topology.Render.ascii ~annotations graph);
  print_newline ();
  Format.printf "%a@." Dice.Orchestrator.pp_summary summary;
  (match summary.Dice.Orchestrator.faults with
  | [] -> print_endline "no faults detected."
  | faults ->
      Printf.printf "%d fault(s) detected:\n" (List.length faults);
      List.iter (fun f -> Format.printf "  %a@." Dice.Fault.pp f) faults);
  (match collector with
  | None -> ()
  | Some c -> (
      match Triage.Auto.filed c with
      | [] -> print_endline "corpus: no detections to file."
      | filed ->
          List.iter
            (fun (fd : Triage.Auto.filed) ->
              match (fd.Triage.Auto.fd_entry, fd.Triage.Auto.fd_result) with
              | Some entry, Some r ->
                  Printf.printf "corpus: filed %s (size %d -> %d, hits %d)\n%!"
                    (Triage.Signature.to_string fd.Triage.Auto.fd_signature)
                    r.Triage.Minimize.r_original_size
                    r.Triage.Minimize.r_minimized_size
                    entry.Triage.Corpus.e_hits
              | Some entry, None ->
                  Printf.printf "corpus: filed %s (unminimized, hits %d)\n%!"
                    (Triage.Signature.to_string fd.Triage.Auto.fd_signature)
                    entry.Triage.Corpus.e_hits
              | None, _ ->
                  Printf.printf
                    "corpus: %s detected live but not reproduced headlessly; \
                     not filed\n%!"
                    (Triage.Signature.to_string fd.Triage.Auto.fd_signature))
            filed));
  if report then begin
    print_newline ();
    print_endline "telemetry report:";
    Format.printf "%a%!" Telemetry.report ()
  end;
  match dot_file with
  | Some path ->
      let oc = open_out path in
      output_string oc (Topology.Render.dot ~annotations graph);
      close_out oc;
      Printf.printf "wrote Graphviz rendering to %s\n" path
  | None -> ()

open Cmdliner

let topo =
  let doc =
    "Topology: demo27 (Figure 1), gadget, bad-gadget (the bare 4-node \
     dispute wheel), random, gao-rexford[:N] (N-router Internet-like \
     tiering, default N from --nodes), or @FILE (Topo_file format)."
  in
  Arg.(value & opt string "demo27" & info [ "t"; "topology" ] ~docv:"NAME" ~doc)

let nodes =
  let doc = "Approximate AS count for random topologies." in
  Arg.(value & opt int 27 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let seed =
  let doc = "Random seed (topology, link characteristics, exploration)." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let fault =
  let doc =
    "Fault to inject before exploring: none, hijack, martian, dispute \
     (requires -t gadget or -t bad-gadget), loop-bug, med-bug, crash-bug."
  in
  Arg.(value & opt string "none" & info [ "f"; "fault" ] ~docv:"FAULT" ~doc)

let rounds =
  let doc = "Exploration rounds (default: one per AS)." in
  Arg.(value & opt (some int) None & info [ "r"; "rounds" ] ~docv:"N" ~doc)

let churn =
  let doc =
    "Churn the deployment while DiCE runs: crash-and-restore ~20% of the \
     routers and flap ~20% of the links, with snapshot deadlines and the \
     supervised orchestrator keeping every round accounted for."
  in
  Arg.(value & flag & info [ "churn" ] ~doc)

let adversary =
  let doc =
    "Inject adversarial wire faults while DiCE runs: mangle live BGP \
     traffic byte-by-byte (bit flips, truncation, length/marker \
     corruption, duplication, garbage) at --mangle-rate, seed a \
     fragile-decode bug on one router, absorb-and-restart routers that \
     die on malformed input, and feed the explorer mangled exploration \
     seeds.  Composes with --churn and --telemetry."
  in
  Arg.(value & flag & info [ "adversary" ] ~doc)

let mangle_rate =
  let doc =
    "Per-message probability of a wire fault under --adversary.  At 0 \
     the run is bit-identical to one without --adversary."
  in
  Arg.(value & opt float 0.05 & info [ "mangle-rate" ] ~docv:"RATE" ~doc)

let confuzz =
  let doc =
    "Apply $(docv) seeded operator-error configuration mutations (from the \
     confuzz catalog: constant typos, flipped actions, dropped or shadowed \
     clauses, dangling map references, mis-tagged TE pins) to the live \
     routers before exploring.  At 0 the run is bit-identical to one \
     without --confuzz.  Composes with --churn, --adversary, --telemetry \
     and --corpus (mutations are recorded in filed scenarios and \
     delta-minimized like any other schedule)."
  in
  Arg.(value & opt int 0 & info [ "confuzz" ] ~docv:"N" ~doc)

let cascade =
  let doc =
    "Run the online cascade monitor alongside exploration: a bounded ring \
     of recent telemetry is re-analyzed after every round (causal \
     propagation graph + flap spectrum), and self-sustaining failures — \
     route oscillations, flap storms, quarantine ping-pong — surface as \
     cascade-class faults while the system is still misbehaving.  \
     Composes with --churn, --adversary, --telemetry and --corpus \
     (cascade repros replay with the detector re-armed)."
  in
  Arg.(value & flag & info [ "cascade" ] ~doc)

let corpus_dir =
  let doc =
    "File every detection into the regression corpus at $(docv) \
     (dice-corpus/1): each newly-seen fault signature is confirmed by a \
     headless replay of this very run's scenario, delta-minimized, and \
     stored as a deterministic repro (replay with `dice_triage replay \
     $(docv)`).  Composes with --churn, --adversary and --telemetry; \
     requires a self-contained topology (demo27|gadget|random)."
  in
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)

let dot_file =
  let doc = "Write a Graphviz .dot rendering of the annotated topology." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let telemetry_file =
  let doc =
    "Write the run's flight-recorder artifact (JSONL, schema \
     dice-telemetry/1) to $(docv): spans for every round / cut / \
     exploration / shadow replay, fault records with their causal span \
     path, simulator trace events, and a final metrics snapshot."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let report =
  let doc = "Print the metrics registry (counters, gauges, histograms) after the run." in
  Arg.(value & flag & info [ "report" ] ~doc)

let verbose =
  let doc = "Verbose logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let campaign =
  let doc =
    "Run the dice-campaign/1 spec at $(docv) through the supervising \
     campaign driver instead of a single demo deployment.  Composes with \
     --churn, --adversary, --cascade (overlaid onto every template), \
     --corpus (filing directory override) and --telemetry (one artifact \
     for the whole sweep).  If --campaign-dir already holds a journal the \
     campaign is resumed.  Exit status follows dice_campaign: 0 clean, 1 \
     health gate failed, 2 usage or spec errors."
  in
  Arg.(value & opt (some string) None & info [ "campaign" ] ~docv:"SPEC" ~doc)

let campaign_dir =
  let doc = "Campaign directory (journal, report, corpus) for --campaign." in
  Arg.(
    value & opt string "dice-campaign" & info [ "campaign-dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "online testing of federated and heterogeneous distributed systems" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Deploys a BGP topology on the built-in network simulator, optionally \
         injects a fault (operator mistake, policy conflict, or programming \
         error), and runs DiCE exploration rounds alongside the live system: \
         consistent snapshot, concolic input derivation, isolated replay over \
         clones, and privacy-preserving property checking.";
      `S Manpage.s_examples;
      `Pre "  dice_demo                       # healthy 27-router demo (Figure 1)";
      `Pre "  dice_demo -f hijack             # detect a prefix hijack";
      `Pre "  dice_demo -t gadget -f dispute  # detect a BAD GADGET dispute wheel";
      `Pre "  dice_demo --churn -f hijack     # keep detecting while routers crash";
      `Pre "  dice_demo --adversary           # mangle the wire, catch the codec crash";
      `Pre "  dice_demo -t gadget --confuzz 3 --corpus dice-corpus  # operator-error hunt";
      `Pre "  dice_demo -t bad-gadget -f dispute --cascade  # catch the oscillation as it spins";
      `Pre "  dice_demo -t gao-rexford:200 -r 3  # 200-router Internet-like tiering";
      `Pre "  dice_demo -f hijack --telemetry run.jsonl --report  # flight recorder";
      `Pre "  dice_demo -f hijack --corpus dice-corpus  # auto-minimize + file repros" ]
  in
  Cmd.v
    (Cmd.info "dice_demo" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ topo $ nodes $ seed $ fault $ rounds $ churn $ adversary
      $ mangle_rate $ confuzz $ cascade $ corpus_dir $ dot_file
      $ telemetry_file $ report $ verbose $ campaign $ campaign_dir)

let () = exit (Cmd.eval cmd)
